#!/usr/bin/env sh
# CI-grade verification: formatting, vet, build, the full test suite
# under the race detector, and a benchmark smoke run. The
# distributor/worker hand-off is concurrent by design, so every PR
# runs with -race.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Smoke-run the pattern kernel benchmarks so a change that breaks the
# steady-state harness (or its alloc accounting) fails CI rather than
# the next perf investigation.
echo "== bench smoke (pattern kernel)"
go test -run=NONE -bench=Pattern -benchtime=100x ./internal/algebra/

echo "== ci OK"
