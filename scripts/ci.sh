#!/usr/bin/env sh
# CI-grade verification: formatting, vet, build, the full test suite
# under the race detector, and a benchmark smoke run. The
# distributor/worker hand-off is concurrent by design, so every PR
# runs with -race.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

# staticcheck is optional tooling: gate on it when present, skip
# gracefully (with a note) when the box doesn't have it installed.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ./..."
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping"
fi

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Focused race pass over the telemetry layer and its runtime callers:
# the live-scrape contract (lock-free counters read while N workers
# write) is exactly what the race detector exercises here, with the
# stress tests' higher iteration counts.
echo "== go test -race (telemetry focus)"
go test -race -count=2 ./internal/telemetry/ ./internal/runtime/

# Smoke-run the pattern kernel benchmarks so a change that breaks the
# steady-state harness (or its alloc accounting) fails CI rather than
# the next perf investigation.
echo "== bench smoke (pattern kernel)"
go test -run=NONE -bench=Pattern -benchtime=100x ./internal/algebra/

# Zero-allocation guard: the PR1/PR2/PR4 hot paths must stay at 0
# allocs/op even with instrumentation compiled in. Parse -benchmem
# output and fail on any nonzero allocs/op figure.
check_zero_allocs() {
    out=$(go test -run=NONE -bench="$1" -benchmem -benchtime=200x "$2")
    echo "$out"
    bad=$(echo "$out" | awk '/allocs\/op/ && $(NF-1) != 0 { print }')
    if [ -n "$bad" ]; then
        echo "bench-guard: nonzero allocs/op on a zero-alloc hot path:" >&2
        echo "$bad" >&2
        exit 1
    fi
}
echo "== bench guard (0 allocs/op hot paths)"
check_zero_allocs 'BenchmarkPatternTwoStepJoin$' ./internal/algebra/
check_zero_allocs 'BenchmarkPatternExtensionHeavy$' ./internal/algebra/
check_zero_allocs 'BenchmarkPatternNegationHeavy$' ./internal/algebra/
check_zero_allocs 'BenchmarkDistributor$' ./internal/runtime/
check_zero_allocs 'BenchmarkShardRouter$' ./internal/runtime/
check_zero_allocs 'BenchmarkSpscRing$' ./internal/runtime/
check_zero_allocs 'BenchmarkIngestReader$' ./internal/event/

# PR 8: the dispatch-bound hot paths must stay allocation-free with
# the stage tracer enabled at sample rate 1 (every tick spanned) —
# pooled spans, seqlock recorder slots and atomic histograms only.
echo "== bench guard (0 allocs/op with stage tracing enabled)"
check_zero_allocs 'BenchmarkDistributorTraced$' ./internal/runtime/
check_zero_allocs 'BenchmarkEngineShardedTraced$' ./internal/runtime/

# PR 9: derived-event construction itself must be allocation-free in
# the sharded steady state — every event derives through the slab
# arena and slabs recycle behind the watermark.
echo "== bench guard (0 allocs/op derived-event arena)"
check_zero_allocs 'BenchmarkEngineDerivedHeavy$' ./internal/runtime/

# Whole-run alloc ceiling: unlike the steady-state harnesses above,
# BenchmarkEngineSharded rebuilds a full Run per op, so per-run
# incidentals (goroutines, ring channels, registration closures)
# remain. The ceiling catches construction cost creeping back into
# the per-run path; pre-arena this figure was 849 allocs/op.
check_alloc_ceiling() {
    out=$(go test -run=NONE -bench="$1" -benchmem -benchtime=30x "$2")
    echo "$out"
    bad=$(echo "$out" | awk -v max="$3" '/allocs\/op/ && $(NF-1) + 0 > max + 0 { print }')
    if [ -n "$bad" ]; then
        echo "bench-guard: allocs/op above ceiling $3:" >&2
        echo "$bad" >&2
        exit 1
    fi
}
echo "== bench guard (whole-run alloc ceilings)"
check_alloc_ceiling 'BenchmarkEngineSharded$/shards=2$' . 50
check_alloc_ceiling 'BenchmarkEngineContextAware$' . 7000

# Kernel differential under the race detector, at higher counts than
# the suite-wide pass: the shared-run automaton must stay emission-
# identical to the preserved legacy kernel, including under the
# pipelined multi-worker engine.
echo "== go test -race (kernel differential focus)"
go test -race -count=2 -run 'TestKernelDifferentialFuzz|TestPatternKernelEquivalence' ./internal/algebra/
go test -race -count=2 -run 'TestPatternKernelsByteIdentical' .

# Sharded runtime differential under the race detector: shards>1 must
# stay byte-identical to the shards=1 legacy pipeline (ring hand-off,
# per-shard completion marks, watermark and ordered output merge all
# race-checked at higher counts than the suite-wide pass).
echo "== go test -race (sharded runtime differential)"
go test -race -count=2 -run 'TestShardedMatchesLegacy|TestShardedOrderedOutput|TestSpscRing' ./internal/runtime/
go test -race -count=2 -run 'TestShardedTollByteIdentical' .

# Derived-event arena differential under the race detector: arena
# and heap construction must stay byte-identical across every
# execution mode while tiny slabs recycle mid-run, and cached-run
# reuse must reproduce a run exactly (PR 9, DESIGN.md §3.8).
echo "== go test -race (derived arena differential)"
go test -race -count=2 -run 'TestDerivedChainSurvivesReclamation|TestRunReuseIdenticalOutputs' ./internal/runtime/
go test -race -run 'TestDerivedArenaTollByteIdentical' .

# PR 10: crash recovery differential under the race detector — a run
# killed at a tick boundary and recovered (snapshot restore + WAL
# replay + live dedup) must reproduce an uninterrupted run's output
# byte for byte on both runtimes, plus the WAL torn-write fuzz and
# snapshot round-trip property tests. The WAL-disabled hot paths are
# covered by the 0 allocs/op guards above (BenchmarkDistributor and
# BenchmarkShardRouter run without a durable dir, so durability may
# add nothing but nil checks there).
echo "== go test -race (durability: crash recovery differential)"
go test -race -count=2 -run 'TestCrashRecoveryDifferential|TestDurableResumeAfterCleanFinish' ./internal/runtime/
go test -race -count=2 ./internal/durability/ ./internal/wire/

echo "== ci OK"
