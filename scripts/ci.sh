#!/usr/bin/env sh
# CI-grade verification: vet, build, and the full test suite under the
# race detector. The distributor/worker hand-off is concurrent by
# design, so every PR runs with -race.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== ci OK"
