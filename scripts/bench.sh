#!/usr/bin/env sh
# Benchmark harness: runs the BenchmarkPattern* family plus the engine
# end-to-end benchmarks into BENCH_pattern.json, the ingest pipeline
# family (decoder, batcher, end-to-end wire/batch/sync) into
# BENCH_ingest.json, the sharded runtime's scaling series
# (BenchmarkEngineSharded/shards=1..8 on the dispatch-bound workload,
# tracer on at the default rate) into BENCH_scaling.json, the
# stage tracer's per-stage latency breakdown (from
# BenchmarkEngineShardedTraced's custom metrics) into
# BENCH_stages.json, and the durability family (WAL append,
# snapshot round trip, recovery replay) into BENCH_durability.json,
# all at the repo root. Pure POSIX sh + awk; no dependencies beyond
# the go toolchain.
#
# Usage: scripts/bench.sh [count]   (default benchmark -count is 3;
# the median run per benchmark is reported)
set -eu
cd "$(dirname "$0")/.."

count=${1:-3}
tmp=$(mktemp)
tmp2=$(mktemp)
tmp3=$(mktemp)
tmp4=$(mktemp)
tmp5=$(mktemp)
trap 'rm -f "$tmp" "$tmp2" "$tmp3" "$tmp4" "$tmp5"' EXIT

echo "== running pattern kernel benchmarks (count=$count)" >&2
go test -run=NONE -bench='BenchmarkPattern' -benchmem -count="$count" \
    ./internal/algebra/ | tee -a "$tmp" >&2
echo "== running engine benchmarks (count=$count)" >&2
go test -run=NONE -bench='BenchmarkEngine(ContextAware$|DispatchBound)' -benchmem -count="$count" \
    . | tee -a "$tmp" >&2

echo "== running ingest benchmarks (count=$count)" >&2
go test -run=NONE -bench='BenchmarkIngest' -benchmem -count="$count" \
    ./internal/event/ | tee -a "$tmp2" >&2
go test -run=NONE -bench='BenchmarkEngine(WireIngest|BatchStream|SyncIngest)' -benchmem -count="$count" \
    . | tee -a "$tmp2" >&2

echo "== running shard scaling benchmarks (count=$count)" >&2
go test -run=NONE -bench='BenchmarkEngineSharded$' -benchmem -count="$count" \
    . | tee -a "$tmp3" >&2
go test -run=NONE -bench='BenchmarkEngineDerivedHeavy$' -benchmem -count="$count" \
    ./internal/runtime/ | tee -a "$tmp3" >&2

echo "== running stage tracing benchmarks (count=$count)" >&2
go test -run=NONE -bench='BenchmarkEngineShardedTraced|BenchmarkDistributorTraced' \
    -benchmem -count="$count" ./internal/runtime/ | tee -a "$tmp4" >&2

echo "== running durability benchmarks (count=$count)" >&2
go test -run=NONE -bench='BenchmarkWALAppend' -benchmem -count="$count" \
    ./internal/durability/ | tee -a "$tmp5" >&2
go test -run=NONE -bench='BenchmarkSnapshotRoundTrip|BenchmarkRecoveryReplay' \
    -benchmem -count="$count" ./internal/runtime/ | tee -a "$tmp5" >&2

# Parse `BenchmarkName  N  t ns/op [x ns/event|x events/op]  b B/op
# a allocs/op` lines, take the median ns/op run per benchmark, and
# emit JSON. Benchmarks that report events/op instead of ns/event
# (the engine end-to-end family) get ns_per_event derived as
# ns/op ÷ events/op.
render_json='
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = be = bop = aop = ev = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns  = $i
        if ($(i+1) == "ns/event")  be  = $i
        if ($(i+1) == "events/op") ev  = $i
        if ($(i+1) == "B/op")      bop = $i
        if ($(i+1) == "allocs/op") aop = $i
    }
    if (ns == "null") next
    if (be == "null" && ev != "null" && ev + 0 > 0) be = ns / ev
    n = ++runs[name]
    nsv[name, n] = ns; bev[name, n] = be
    bopv[name, n] = bop; aopv[name, n] = aop
    if (!(name in seen)) { order[++nb] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (k = 1; k <= nb; k++) {
        name = order[k]
        # median by ns/op: selection sort of the (few) run indices
        n = runs[name]
        for (i = 1; i <= n; i++) idx[i] = i
        for (i = 1; i <= n; i++)
            for (j = i + 1; j <= n; j++)
                if (nsv[name, idx[j]] + 0 < nsv[name, idx[i]] + 0) {
                    t = idx[i]; idx[i] = idx[j]; idx[j] = t
                }
        m = idx[int((n + 1) / 2)]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"ns_per_event\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, nsv[name, m], bev[name, m], bopv[name, m], aopv[name, m], \
            (k < nb ? "," : "")
    }
    printf "  ]\n}\n"
}'

awk "$render_json" "$tmp" > BENCH_pattern.json
echo "== wrote BENCH_pattern.json" >&2
cat BENCH_pattern.json

awk "$render_json" "$tmp2" > BENCH_ingest.json
echo "== wrote BENCH_ingest.json" >&2
cat BENCH_ingest.json

awk "$render_json" "$tmp3" > BENCH_scaling.json
echo "== wrote BENCH_scaling.json" >&2
cat BENCH_scaling.json

awk "$render_json" "$tmp5" > BENCH_durability.json
echo "== wrote BENCH_durability.json" >&2
cat BENCH_durability.json

# Parse the stage tracer's custom metrics (`v <stage>_pNN_ns` pairs on
# the traced benchmark lines), pick the median run by ns/op, and emit
# the per-stage latency breakdown.
render_stages='
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = aop = "null"; sm = ""
    for (i = 2; i < NF; i++) {
        u = $(i+1)
        if (u == "ns/op")          ns  = $i
        else if (u == "allocs/op") aop = $i
        else if (u ~ /_p(50|95|99)_ns$/) sm = sm u "=" $i ";"
    }
    if (ns == "null") next
    n = ++runs[name]
    nsv[name, n] = ns; aopv[name, n] = aop; smv[name, n] = sm
    if (!(name in seen)) { order[++nb] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (k = 1; k <= nb; k++) {
        name = order[k]
        n = runs[name]
        for (i = 1; i <= n; i++) idx[i] = i
        for (i = 1; i <= n; i++)
            for (j = i + 1; j <= n; j++)
                if (nsv[name, idx[j]] + 0 < nsv[name, idx[i]] + 0) {
                    t = idx[i]; idx[i] = idx[j]; idx[j] = t
                }
        m = idx[int((n + 1) / 2)]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"stages_ns\": {", \
            name, nsv[name, m], aopv[name, m]
        np = split(smv[name, m], pairs, ";")
        first = 1
        for (pi = 1; pi <= np; pi++) {
            if (pairs[pi] == "") continue
            split(pairs[pi], kv, "=")
            key = kv[1]
            sub(/_ns$/, "", key)
            printf "%s\"%s\": %s", (first ? "" : ", "), key, kv[2]
            first = 0
        }
        printf "}}%s\n", (k < nb ? "," : "")
    }
    printf "  ]\n}\n"
}'

awk "$render_stages" "$tmp4" > BENCH_stages.json
echo "== wrote BENCH_stages.json" >&2
cat BENCH_stages.json
