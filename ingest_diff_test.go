package caesar

import (
	"bytes"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
)

func tollGenConfig() LinearRoadConfig {
	gen := LinearRoadDefaults()
	gen.Segments = 4
	// Long enough that the watermark (which trails by 2·horizon, the
	// default horizon being 300) passes whole slabs mid-run.
	gen.Duration = 3600
	return gen
}

// runToll executes the Linear Road toll workload: it builds an engine
// with cfg, generates the benchmark stream against that engine's
// registry (schemas are matched by identity, so every run generates
// its own), executes run, and returns the Writer-rendered derived
// events (sorted, newline-joined — worker interleaving permutes
// emission order) plus the Stats.
func runToll(t *testing.T, cfg Config, run func(*Engine, []*Event) (*Stats, error)) (string, *Stats) {
	t.Helper()
	cfg.PartitionBy = LinearRoadPartitionBy()
	cfg.CollectOutputs = true
	eng, err := NewFromSource(LinearRoadModel(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := GenerateLinearRoad(tollGenConfig(), eng.Registry())
	if err != nil {
		t.Fatal(err)
	}
	st, err := run(eng, evs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewEventWriter(&buf)
	lines := make([]string, 0, len(st.Outputs))
	for _, e := range st.Outputs {
		buf.Reset()
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, buf.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, ""), st
}

// encodeWire renders events in the wire format.
func encodeWire(t *testing.T, evs []*Event) []byte {
	t.Helper()
	var wire bytes.Buffer
	w := NewEventWriter(&wire)
	for _, e := range evs {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return wire.Bytes()
}

// TestIngestPathsByteIdentical is the PR's acceptance differential:
// the preserved synchronous per-event loop, the pipelined batch path
// over GC-managed events, the wire decoder's arena path and the
// arena-backed generator must produce byte-identical derived events
// and identical run statistics on the toll-notification workload.
func TestIngestPathsByteIdentical(t *testing.T) {
	outSync, stSync := runToll(t, Config{Workers: 3, DisablePipeline: true}, func(e *Engine, evs []*Event) (*Stats, error) {
		return e.Run(NewSliceSource(evs))
	})
	outBatch, stBatch := runToll(t, Config{Workers: 3}, func(e *Engine, evs []*Event) (*Stats, error) {
		return e.Run(NewSliceSource(evs))
	})
	outWire, stWire := runToll(t, Config{Workers: 3, ReadAhead: 2}, func(e *Engine, evs []*Event) (*Stats, error) {
		return e.Run(NewEventReader(bytes.NewReader(encodeWire(t, evs)), e.Registry()))
	})
	outStream, stStream := runToll(t, Config{Workers: 3}, func(e *Engine, evs []*Event) (*Stats, error) {
		s, err := NewLinearRoadStream(tollGenConfig(), e.Registry())
		if err != nil {
			t.Fatal(err)
		}
		return e.RunBatches(s)
	})

	if outSync == "" {
		t.Fatal("toll workload derived nothing")
	}
	for name, out := range map[string]string{"batch": outBatch, "wire": outWire, "stream": outStream} {
		if out != outSync {
			t.Errorf("%s ingest output diverges from the synchronous path (%d vs %d bytes)",
				name, len(out), len(outSync))
		}
	}
	for name, st := range map[string]*Stats{"batch": stBatch, "wire": stWire, "stream": stStream} {
		if st.Events != stSync.Events || st.OutputCount != stSync.OutputCount ||
			st.Transitions != stSync.Transitions || st.Partitions != stSync.Partitions {
			t.Errorf("%s ingest stats diverge: %+v vs %+v", name, st, stSync)
		}
		if !reflect.DeepEqual(st.PerType, stSync.PerType) {
			t.Errorf("%s per-type counts diverge: %v vs %v", name, st.PerType, stSync.PerType)
		}
		if !reflect.DeepEqual(st.Contexts, stSync.Contexts) {
			t.Errorf("%s context stats diverge: %v vs %v", name, st.Contexts, stSync.Contexts)
		}
	}
	// The arena paths must actually have pipelined: batches counted,
	// and the wire reader's slabs reclaimed behind the watermark.
	if stBatch.Batches == 0 || stWire.Batches == 0 || stStream.Batches == 0 {
		t.Errorf("pipelined runs reported no batches: %d/%d/%d",
			stBatch.Batches, stWire.Batches, stStream.Batches)
	}
	if stSync.Batches != 0 {
		t.Errorf("synchronous run reported %d batches", stSync.Batches)
	}
	// Mid-run reclamation needs worker progress concurrent with decode:
	// the watermark follows the workers' completed marks, and on a
	// single P the buffered hand-off legitimately defers execution
	// until decode quiesces, so reclaim activity is only a meaningful
	// assertion with ≥2 scheduler threads (the correctness of the
	// reclaim bound itself is covered by the byte-identical diff above
	// and the arena unit tests).
	if runtime.GOMAXPROCS(0) > 1 && stWire.ReclaimedChunks == 0 {
		t.Error("wire ingest never reclaimed an arena slab")
	}
}
