// Package caesar is a context-aware complex event processing engine:
// a from-scratch Go implementation of the CAESAR system ("Context-
// aware Event Stream Analytics", Poppe, Lei, Rundensteiner and
// Dougherty, EDBT 2016).
//
// CAESAR treats application contexts — higher-order situations of
// unknown duration such as "congestion" or "accident" — as first-
// class citizens. Event queries are associated with contexts;
// context deriving queries initiate, switch and terminate context
// windows, and context processing queries run only while their
// window holds. The optimizer pushes context windows to the bottom
// of query plans, so whole plans suspend at constant cost while
// their context is inactive, and shares the workloads of overlapping
// context windows.
//
// # Quick start
//
//	src := `
//	EVENT Reading(sensor int, temp int, sec int)
//	EVENT Alarm(sensor int, temp int)
//
//	CONTEXT normal DEFAULT
//	CONTEXT overheated
//
//	SWITCH CONTEXT overheated
//	PATTERN Reading r
//	WHERE r.temp > 90
//	CONTEXT normal
//
//	SWITCH CONTEXT normal
//	PATTERN Reading r
//	WHERE r.temp < 70
//	CONTEXT overheated
//
//	DERIVE Alarm(r.sensor, r.temp)
//	PATTERN Reading r
//	CONTEXT overheated
//	`
//	eng, err := caesar.NewFromSource(src, caesar.Config{
//		PartitionBy:    []string{"sensor"},
//		CollectOutputs: true,
//	})
//	if err != nil { ... }
//	stats, err := eng.Run(source)
//
// The model language follows the paper's grammar (Fig. 4): queries
// are built from INITIATE/SWITCH/TERMINATE CONTEXT or DERIVE heads,
// a PATTERN clause (single events or SEQ with NOT negation), an
// optional WHERE predicate, an optional WITHIN horizon, and the
// CONTEXT clause naming the windows the query runs in.
package caesar

import (
	"io"
	"net/http"
	"time"

	"github.com/caesar-cep/caesar/internal/core"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/linearroad"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/pam"
	"github.com/caesar-cep/caesar/internal/runtime"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// Core engine types.
type (
	// Engine is a compiled, optimized, runnable CAESAR system.
	Engine = core.Engine
	// Config selects execution strategy and tuning knobs; the zero
	// value is the fully optimized context-aware configuration.
	Config = core.Config
	// Stats reports a run's measurements (maximal latency, counts,
	// suspension savings).
	Stats = runtime.Stats
	// ContextStats is one context type's window activity in Stats.
	ContextStats = runtime.ContextStats
	// Model is a compiled CAESAR model: context types with a default
	// context plus the compiled context-aware queries.
	Model = model.Model
)

// Telemetry types (see internal/telemetry and DESIGN.md §3.3, §3.7):
// a registry set on Config.Telemetry receives the engine's live
// metric families; a tracer on Config.Tracer records per-transaction
// spans; a stage tracer on Config.Stages samples tick timelines
// through every pipeline stage; a health set on Config.Health
// receives the run's liveness probes.
type (
	// TelemetryRegistry is a named view over the engine's lock-free
	// metric objects, scrapeable as Prometheus text or JSON.
	TelemetryRegistry = telemetry.Registry
	// Tracer records stream-transaction spans and logs slow ones.
	Tracer = telemetry.Tracer
	// StageTracer samples per-tick stage timelines into latency
	// histograms and a flight recorder, served on /tracez.
	StageTracer = telemetry.StageTracer
	// Health is an ordered set of liveness/readiness probes, served
	// on /healthz.
	Health = telemetry.Health
	// AdminConfig bundles the backing state of the admin HTTP
	// surface (see NewAdminHandler).
	AdminConfig = telemetry.Admin
)

// NewTelemetryRegistry creates an empty metrics registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// NewTracer creates a transaction tracer that logs transactions
// slower than threshold to w (nil w discards; see telemetry.NewTracer).
func NewTracer(threshold time.Duration, w io.Writer) *Tracer {
	return telemetry.NewTracer(threshold, w)
}

// NewStageTracer creates a stage tracer sampling one in sampleRate
// ticks into a flight recorder of depth timelines (0 picks defaults;
// see telemetry.NewStageTracer). Set it on Config.Stages.
func NewStageTracer(sampleRate, depth int) *StageTracer {
	return telemetry.NewStageTracer(sampleRate, depth)
}

// NewHealth creates an empty probe set. Set it on Config.Health and
// the run registers its engine/watermark/backlog probes.
func NewHealth() *Health { return telemetry.NewHealth() }

// TelemetryHandler serves a registry over HTTP: /metrics (Prometheus
// text), /statusz (JSON) and /debug/pprof.
func TelemetryHandler(r *TelemetryRegistry) http.Handler { return telemetry.Handler(r) }

// NewAdminHandler serves the full admin surface — /metrics, /statusz,
// /tracez, /healthz, /buildz and /debug/pprof — for whatever parts of
// a are set; unset parts degrade gracefully.
func NewAdminHandler(a AdminConfig) http.Handler { return telemetry.NewHandler(a) }

// Event model types.
type (
	// Event is a simple or complex event.
	Event = event.Event
	// Value is a typed attribute value.
	Value = event.Value
	// Schema describes an event type.
	Schema = event.Schema
	// Time is an application timestamp.
	Time = event.Time
	// Source yields events in non-decreasing time order.
	Source = event.Source
	// SliceSource replays a slice of events.
	SliceSource = event.SliceSource
	// Registry resolves event type names to schemas.
	Registry = event.Registry
	// Batch is one tick-aligned slice of an event stream.
	Batch = event.Batch
	// BatchSource yields tick-aligned event batches; sources
	// implementing it feed the engine's pipelined ingest path
	// (DESIGN.md §3.4).
	BatchSource = event.BatchSource
	// EventReader decodes the line format as a Source and BatchSource.
	EventReader = event.Reader
	// EventWriter encodes events in the line format.
	EventWriter = event.Writer
)

// NewEventReader decodes the engine's line format (TypeName|time|v...)
// from r against the registry. The reader serves both stream
// protocols: per-event Next and arena-backed, allocation-free
// NextBatch.
func NewEventReader(r io.Reader, reg *Registry) *EventReader { return event.NewReader(r, reg) }

// NewEventWriter encodes events in the engine's line format onto w,
// the inverse of NewEventReader.
func NewEventWriter(w io.Writer) *EventWriter { return event.NewWriter(w) }

// NewBatcher adapts a per-event Source to the batch protocol.
func NewBatcher(src Source) BatchSource { return event.NewBatcher(src) }

// New compiles and configures an engine for a model.
func New(m *Model, cfg Config) (*Engine, error) { return core.NewEngine(m, cfg) }

// NewFromSource parses a model file and builds an engine.
func NewFromSource(src string, cfg Config) (*Engine, error) {
	return core.NewEngineFromSource(src, cfg)
}

// ParseModel parses and compiles a CAESAR model file.
func ParseModel(src string) (*Model, error) { return model.CompileSource(src) }

// NewSliceSource wraps events as a Source. Events must be sorted by
// occurrence time (use SortByTime).
func NewSliceSource(events []*Event) *SliceSource { return event.NewSliceSource(events) }

// SortByTime stably sorts events by occurrence end time.
func SortByTime(events []*Event) { event.SortByTime(events) }

// Value constructors.
var (
	// Int64 builds an integer value.
	Int64 = event.Int64
	// Float64 builds a float value.
	Float64 = event.Float64
	// String builds a string value.
	String = event.String
	// Bool builds a boolean value.
	Bool = event.Bool
)

// NewEvent builds a simple event of schema s at time t.
func NewEvent(s *Schema, t Time, values ...Value) (*Event, error) {
	return event.New(s, t, values...)
}

// Built-in workloads: the Linear Road traffic benchmark and the
// physical activity monitoring data set used in the paper's
// evaluation (§7.1).

// LinearRoadModel renders the traffic-management CAESAR model with
// the processing workload replicated the given number of times.
func LinearRoadModel(replicas int) string { return linearroad.ModelSource(replicas) }

// LinearRoadConfig is the generator configuration for the traffic
// stream; see LinearRoadDefaults.
type LinearRoadConfig = linearroad.Config

// LinearRoadDefaults returns a laptop-scale traffic setup.
func LinearRoadDefaults() LinearRoadConfig { return linearroad.DefaultConfig() }

// GenerateLinearRoad produces the traffic event stream against the
// engine's registry.
func GenerateLinearRoad(cfg LinearRoadConfig, reg *Registry) ([]*Event, error) {
	return linearroad.Generate(cfg, reg)
}

// LinearRoadStream is the batch-oriented traffic generator: it emits
// ticks directly into an event slab arena (no per-event allocation)
// and reclaims slabs as the engine's watermark advances. Feed it to
// Engine.RunBatches.
type LinearRoadStream = linearroad.Stream

// NewLinearRoadStream builds the batch generator; it produces the
// same events as GenerateLinearRoad, in the same order.
func NewLinearRoadStream(cfg LinearRoadConfig, reg *Registry) (*LinearRoadStream, error) {
	return linearroad.NewStream(cfg, reg)
}

// LinearRoadPartitionBy is the partition key of the traffic model
// (one unidirectional road segment).
func LinearRoadPartitionBy() []string { return linearroad.PartitionBy() }

// PAMModel renders the physical-activity-monitoring CAESAR model.
func PAMModel(replicas int) string { return pam.ModelSource(replicas) }

// PAMConfig is the generator configuration for the activity stream.
type PAMConfig = pam.Config

// PAMDefaults returns a laptop-scale activity monitoring setup.
func PAMDefaults() PAMConfig { return pam.DefaultConfig() }

// GeneratePAM produces the activity event stream against the
// engine's registry.
func GeneratePAM(cfg PAMConfig, reg *Registry) ([]*Event, error) {
	return pam.Generate(cfg, reg)
}

// PAMPartitionBy is the partition key of the activity model (one
// subject).
func PAMPartitionBy() []string { return pam.PartitionBy() }
