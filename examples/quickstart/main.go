// Quickstart: a minimal context-aware monitoring pipeline.
//
// A machine reports temperatures. While the machine is in the
// "overheated" context, every reading derives an alarm; in the
// default "normal" context the alarm query is suspended and costs
// nothing. The two SWITCH queries are the context deriving queries;
// the DERIVE query is the context processing workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	caesar "github.com/caesar-cep/caesar"
)

const model = `
EVENT Reading(sensor int, temp int, sec int)
EVENT Alarm(sensor int, temp int)

CONTEXT normal DEFAULT
CONTEXT overheated

SWITCH CONTEXT overheated
PATTERN Reading r
WHERE r.temp > 90
CONTEXT normal

SWITCH CONTEXT normal
PATTERN Reading r
WHERE r.temp < 70
CONTEXT overheated

DERIVE Alarm(r.sensor, r.temp)
PATTERN Reading r
CONTEXT overheated
`

func main() {
	eng, err := caesar.NewFromSource(model, caesar.Config{
		PartitionBy:    []string{"sensor"},
		CollectOutputs: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	reading, _ := eng.Registry().Lookup("Reading")
	temps := []int64{55, 72, 93, 97, 95, 88, 65, 60, 91}
	var events []*caesar.Event
	for i, temp := range temps {
		e, err := caesar.NewEvent(reading, caesar.Time(i),
			caesar.Int64(1), caesar.Int64(temp), caesar.Int64(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
		events = append(events, e)
	}

	stats, err := eng.Run(caesar.NewSliceSource(events))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d readings, derived %d alarms\n",
		stats.Events, stats.PerType["Alarm"])
	for _, e := range stats.Outputs {
		fmt.Println(" ", e)
	}
	fmt.Printf("alarm plan suspended %d times while the machine was in the normal context\n",
		stats.SuspendedSkips)
}
