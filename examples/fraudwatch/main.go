// Fraud watch: context-aware card monitoring, an application the
// paper's introduction motivates (financial fraud detection).
//
// A card account enters the "abroad" context after a foreign
// transaction and the "flagged" context after a velocity violation.
// The expensive verification queries run only inside those contexts;
// domestic routine spending costs nothing beyond context derivation.
// The example also demonstrates negation: a charge with no matching
// point-of-sale confirmation within the horizon raises an alert.
//
//	go run ./examples/fraudwatch
package main

import (
	"fmt"
	"log"
	"math/rand"

	caesar "github.com/caesar-cep/caesar"
)

const model = `
EVENT Txn(card int, amount int, country int, sec int)
EVENT PosConfirm(card int, sec int)
EVENT ForeignAlert(card int, amount int, sec int)
EVENT VelocityAlert(card int, amount int, sec int)
EVENT GhostCharge(card int, amount int, sec int)

CONTEXT domestic DEFAULT
CONTEXT abroad
CONTEXT flagged

# A foreign transaction moves the card into the abroad context.
INITIATE CONTEXT abroad
PATTERN Txn t
WHERE t.country != 1
CONTEXT domestic

# Returning home: a domestic transaction abroad ends the context.
TERMINATE CONTEXT abroad
PATTERN Txn t
WHERE t.country = 1
CONTEXT abroad

# Two large transactions in quick succession flag the card.
INITIATE CONTEXT flagged
PATTERN SEQ(Txn a, Txn b)
WHERE a.card = b.card AND a.amount > 500 AND b.amount > 500 AND b.sec <= a.sec + 120
WITHIN 120
CONTEXT domestic, abroad

TERMINATE CONTEXT flagged
PATTERN Txn t
WHERE t.amount < 50
CONTEXT flagged

# Expensive verification only while abroad.
DERIVE ForeignAlert(t.card, t.amount, t.sec)
PATTERN Txn t
WHERE t.amount > 200
CONTEXT abroad

# Velocity review only while flagged.
DERIVE VelocityAlert(t.card, t.amount, t.sec)
PATTERN Txn t
WHERE t.amount > 100
CONTEXT flagged

# Negation: a flagged-card charge with no point-of-sale confirmation
# within 60 seconds is a ghost charge.
DERIVE GhostCharge(t.card, t.amount, t.sec)
PATTERN SEQ(Txn t, NOT PosConfirm p)
WHERE p.card = t.card AND p.sec <= t.sec + 60
WITHIN 60
CONTEXT flagged
`

func main() {
	eng, err := caesar.NewFromSource(model, caesar.Config{
		PartitionBy:    []string{"card"},
		CollectOutputs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	reg := eng.Registry()
	txn, _ := reg.Lookup("Txn")
	pos, _ := reg.Lookup("PosConfirm")

	rng := rand.New(rand.NewSource(7))
	var events []*caesar.Event
	add := func(e *caesar.Event, err error) {
		if err != nil {
			log.Fatal(err)
		}
		events = append(events, e)
	}
	// Card 1: routine domestic spending, then a trip abroad.
	for t := int64(0); t < 600; t += 60 {
		add(caesar.NewEvent(txn, caesar.Time(t),
			caesar.Int64(1), caesar.Int64(20+int64(rng.Intn(80))), caesar.Int64(1), caesar.Int64(t)))
	}
	add(caesar.NewEvent(txn, 650, caesar.Int64(1), caesar.Int64(300), caesar.Int64(33), caesar.Int64(650)))
	add(caesar.NewEvent(txn, 700, caesar.Int64(1), caesar.Int64(250), caesar.Int64(33), caesar.Int64(700)))
	add(caesar.NewEvent(txn, 900, caesar.Int64(1), caesar.Int64(40), caesar.Int64(1), caesar.Int64(900))) // home

	// Card 2: a burst of large charges, one confirmed, one not.
	add(caesar.NewEvent(txn, 100, caesar.Int64(2), caesar.Int64(600), caesar.Int64(1), caesar.Int64(100)))
	add(caesar.NewEvent(txn, 150, caesar.Int64(2), caesar.Int64(700), caesar.Int64(1), caesar.Int64(150)))
	add(caesar.NewEvent(txn, 200, caesar.Int64(2), caesar.Int64(400), caesar.Int64(1), caesar.Int64(200)))
	add(caesar.NewEvent(pos, 230, caesar.Int64(2), caesar.Int64(230)))
	add(caesar.NewEvent(txn, 300, caesar.Int64(2), caesar.Int64(350), caesar.Int64(1), caesar.Int64(300)))
	add(caesar.NewEvent(txn, 400, caesar.Int64(2), caesar.Int64(30), caesar.Int64(1), caesar.Int64(400))) // unflag

	caesar.SortByTime(events)
	stats, err := eng.Run(caesar.NewSliceSource(events))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d events across 2 cards, %d context transitions\n",
		stats.Events, stats.Transitions)
	for _, e := range stats.Outputs {
		fmt.Println(" ", e)
	}
	fmt.Printf("verification plans suspended %d times during routine spending\n",
		stats.SuspendedSkips)
}
