// Traffic control: the paper's motivating application (Fig. 1) on the
// Linear Road benchmark substrate.
//
// The example generates a seeded traffic stream (vehicles reporting
// every 30 simulated seconds across segments that pass through clear,
// congestion and accident phases), then runs the same workload three
// ways — CAESAR context-aware, CAESAR with workload sharing, and the
// state-of-the-art context-independent baseline — and compares cost.
//
//	go run ./examples/trafficcontrol
package main

import (
	"fmt"
	"log"

	caesar "github.com/caesar-cep/caesar"
)

func main() {
	const replicas = 6 // paper's "average workload" is ~10 queries per window

	cfg := caesar.LinearRoadDefaults()
	cfg.Roads = 1
	cfg.Segments = 10
	cfg.Duration = 1200

	type result struct {
		name  string
		stats *caesar.Stats
	}
	var results []result
	run := func(name string, engCfg caesar.Config) {
		eng, err := caesar.NewFromSource(caesar.LinearRoadModel(replicas), engCfg)
		if err != nil {
			log.Fatal(err)
		}
		events, err := caesar.GenerateLinearRoad(cfg, eng.Registry())
		if err != nil {
			log.Fatal(err)
		}
		stats, err := eng.Run(caesar.NewSliceSource(events))
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{name, stats})
	}

	base := caesar.Config{PartitionBy: caesar.LinearRoadPartitionBy(), Workers: 4}

	ca := base
	run("context-aware (CAESAR)", ca)

	shared := base
	shared.Sharing = true
	run("context-aware + sharing", shared)

	fused := base
	fused.Sharing = true
	fused.FusePatterns = true
	run("context-aware + sharing + fusion", fused)

	ci := base
	ci.ContextIndependent = true
	run("context-independent (baseline)", ci)

	fmt.Printf("Linear Road: %d segments, %d simulated seconds, %d toll/warning queries\n\n",
		cfg.Segments, cfg.Duration, 2*replicas)
	for _, r := range results {
		st := r.stats
		fmt.Printf("%-32s max latency %-10v events-fed %-9d tolls %-5d warnings %-5d suspensions %d\n",
			r.name, st.MaxLatency.Round(10_000), st.EventsFed,
			st.PerType["TollNotification"], st.PerType["AccidentWarning"], st.SuspendedSkips)
	}
	caStats, ciStats := results[0].stats, results[len(results)-1].stats
	fmt.Printf("\nwin ratio (CI max latency / CA max latency): %.1fx\n",
		float64(ciStats.MaxLatency)/float64(caStats.MaxLatency))
	fmt.Printf("effort ratio (CI events-fed / CA events-fed): %.1fx\n",
		float64(ciStats.EventsFed)/float64(caStats.EventsFed))
}
