// Datacenter monitoring: tumbling-window aggregation driving context
// transitions.
//
// Hosts stream per-second telemetry. A TUMBLE query condenses each
// host's raw samples into 30-second load summaries; the summaries
// drive the host between the "nominal", "hot" and "saturated"
// contexts. Expensive diagnostics (a sequence pattern correlating
// load spikes with error bursts) run only in the saturated context.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	caesar "github.com/caesar-cep/caesar"
)

const model = `
EVENT Sample(host int, cpu int, errs int, sec int)
EVENT Load(host int, avgCpu float, peakCpu int, errSum int, sec int)
EVENT Diagnosis(host int, peakCpu int, errSum int, sec int)
EVENT Page(host int, sec int)

CONTEXT nominal DEFAULT
CONTEXT hot
CONTEXT saturated

# Condense raw samples into 30 s load summaries; runs in all contexts.
DERIVE Load(s.host, avg(s.cpu), max(s.cpu), sum(s.errs), s.sec)
PATTERN Sample s
TUMBLE 30
CONTEXT nominal, hot, saturated

SWITCH CONTEXT hot
PATTERN Load l
WHERE l.avgCpu >= 70 AND l.avgCpu < 90
CONTEXT nominal

SWITCH CONTEXT nominal
PATTERN Load l
WHERE l.avgCpu < 70
CONTEXT hot, saturated

SWITCH CONTEXT saturated
PATTERN Load l
WHERE l.avgCpu >= 90
CONTEXT nominal, hot

# Diagnostics only while saturated: two consecutive summaries with
# error bursts.
DERIVE Diagnosis(l2.host, l2.peakCpu, l2.errSum, l2.sec)
PATTERN SEQ(Load l1, Load l2)
WHERE l1.host = l2.host AND l1.errSum > 5 AND l2.errSum > 5
WITHIN 90
CONTEXT saturated

# Page the operator on any error burst while saturated.
DERIVE Page(l.host, l.sec)
PATTERN Load l
WHERE l.errSum > 10
CONTEXT saturated
`

func main() {
	eng, err := caesar.NewFromSource(model, caesar.Config{
		PartitionBy:    []string{"host"},
		CollectOutputs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sample, _ := eng.Registry().Lookup("Sample")
	rng := rand.New(rand.NewSource(3))

	// Three hosts: host 0 stays nominal, host 1 runs hot, host 2
	// saturates mid-run with error bursts.
	var events []*caesar.Event
	const duration = 600
	for t := int64(0); t < duration; t++ {
		for host := int64(0); host < 3; host++ {
			var cpu, errs int64
			switch {
			case host == 0:
				cpu = 20 + int64(rng.Intn(20))
			case host == 1:
				cpu = 70 + int64(rng.Intn(15))
			case t < 200 || t >= 500:
				cpu = 40 + int64(rng.Intn(20))
			default: // host 2 saturated window
				cpu = 90 + int64(rng.Intn(10))
				errs = int64(rng.Intn(3))
			}
			e, err := caesar.NewEvent(sample, caesar.Time(t),
				caesar.Int64(host), caesar.Int64(cpu), caesar.Int64(errs), caesar.Int64(t))
			if err != nil {
				log.Fatal(err)
			}
			events = append(events, e)
		}
	}
	caesar.SortByTime(events)

	stats, err := eng.Run(caesar.NewSliceSource(events))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("samples: %d  load summaries: %d  diagnoses: %d  pages: %d\n",
		stats.Events, stats.PerType["Load"], stats.PerType["Diagnosis"], stats.PerType["Page"])
	fmt.Printf("context transitions: %d, diagnostics suspended %d times\n",
		stats.Transitions, stats.SuspendedSkips)
	for _, e := range stats.Outputs {
		if e.TypeName() == "Diagnosis" || e.TypeName() == "Page" {
			fmt.Println(" ", e)
		}
	}
}
