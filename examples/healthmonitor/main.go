// Health monitor: context-aware analytics over the physical activity
// monitoring stream (the paper's real-world data set, §7.1).
//
// Each of 14 subjects is a stream partition with its own contexts:
// resting (default), exercising, and peak effort. Sustained-peak
// alerts are derived only inside the peak context; cadence summaries
// only while exercising. Workload sharing merges the queries that the
// exercising and peak contexts have in common.
//
//	go run ./examples/healthmonitor
package main

import (
	"fmt"
	"log"
	"sort"

	caesar "github.com/caesar-cep/caesar"
)

func main() {
	eng, err := caesar.NewFromSource(caesar.PAMModel(3), caesar.Config{
		PartitionBy:    caesar.PAMPartitionBy(),
		Sharing:        true,
		Workers:        4,
		CollectOutputs: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := caesar.PAMDefaults()
	cfg.Duration = 1500
	events, err := caesar.GeneratePAM(cfg, eng.Registry())
	if err != nil {
		log.Fatal(err)
	}
	stats, err := eng.Run(caesar.NewSliceSource(events))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitored %d subjects for %d simulated seconds (%d readings)\n",
		cfg.Subjects, cfg.Duration, stats.Events)
	fmt.Printf("derived: %d alerts, %d summaries; %d context transitions\n",
		stats.PerType["Alert"], stats.PerType["Summary"], stats.Transitions)

	// Alerts per subject.
	perSubject := map[int64]int{}
	for _, e := range stats.Outputs {
		if e.TypeName() != "Alert" {
			continue
		}
		s, _ := e.Get("subj")
		perSubject[s.Int]++
	}
	subjects := make([]int64, 0, len(perSubject))
	for s := range perSubject {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })
	fmt.Println("sustained-peak alerts per subject:")
	for _, s := range subjects {
		fmt.Printf("  subject %2d: %d\n", s, perSubject[s])
	}
	fmt.Printf("query plans suspended %d times while subjects were resting\n",
		stats.SuspendedSkips)
}
