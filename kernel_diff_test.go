package caesar

import (
	"reflect"
	"testing"
)

// TestPatternKernelsByteIdentical is the engine-level acceptance
// differential for the shared-run automaton: the full Linear Road
// toll workload must produce byte-identical derived events and
// identical run statistics whether patterns execute on the automaton
// (the default) or on the preserved per-combination kernel, in both
// the plain plan and the shared/fused multi-query plan.
func TestPatternKernelsByteIdentical(t *testing.T) {
	run := func(e *Engine, evs []*Event) (*Stats, error) {
		return e.Run(NewSliceSource(evs))
	}
	outAuto, stAuto := runToll(t, Config{Workers: 3}, run)
	outLegacy, stLegacy := runToll(t, Config{Workers: 3, LegacyPatternKernel: true}, run)
	outAutoFused, _ := runToll(t, Config{Workers: 3, Sharing: true, FusePatterns: true}, run)
	outLegacyFused, _ := runToll(t, Config{Workers: 3, Sharing: true, FusePatterns: true, LegacyPatternKernel: true}, run)

	if outAuto == "" {
		t.Fatal("toll workload derived nothing")
	}
	if outLegacy != outAuto {
		t.Errorf("legacy kernel output diverges from the automaton (%d vs %d bytes)",
			len(outLegacy), len(outAuto))
	}
	if outAutoFused != outLegacyFused {
		t.Errorf("fused-plan outputs diverge across kernels (%d vs %d bytes)",
			len(outAutoFused), len(outLegacyFused))
	}
	if stLegacy.Events != stAuto.Events || stLegacy.OutputCount != stAuto.OutputCount ||
		stLegacy.Transitions != stAuto.Transitions || stLegacy.Partitions != stAuto.Partitions {
		t.Errorf("kernel stats diverge: %+v vs %+v", stLegacy, stAuto)
	}
	if !reflect.DeepEqual(stLegacy.PerType, stAuto.PerType) {
		t.Errorf("per-type counts diverge: %v vs %v", stLegacy.PerType, stAuto.PerType)
	}
	if !reflect.DeepEqual(stLegacy.Contexts, stAuto.Contexts) {
		t.Errorf("context stats diverge: %v vs %v", stLegacy.Contexts, stAuto.Contexts)
	}
}
