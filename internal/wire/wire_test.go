package wire

import (
	"math"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
)

func testRegistry(t *testing.T) *event.Registry {
	t.Helper()
	reg := event.NewRegistry()
	reg.MustRegister(event.MustSchema("A",
		event.Field{Name: "x", Kind: event.KindInt},
		event.Field{Name: "y", Kind: event.KindFloat},
	))
	reg.MustRegister(event.MustSchema("B",
		event.Field{Name: "s", Kind: event.KindString},
		event.Field{Name: "b", Kind: event.KindBool},
	))
	return reg
}

func TestPrimitivesRoundTrip(t *testing.T) {
	var e Enc
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Varint(-1)
	e.Varint(math.MinInt64)
	e.Varint(math.MaxInt64)
	e.Bool(true)
	e.Bool(false)
	e.Byte(0xfe)
	e.U64(0xdeadbeefcafef00d)
	e.String("")
	e.String("hello|world")
	e.Raw([]byte{1, 2, 3})
	e.Time(event.Time(-5))

	d := NewDec(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("uvarint 0: got %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Fatalf("uvarint 1<<40: got %d", got)
	}
	if got := d.Varint(); got != -1 {
		t.Fatalf("varint -1: got %d", got)
	}
	if got := d.Varint(); got != math.MinInt64 {
		t.Fatalf("varint min: got %d", got)
	}
	if got := d.Varint(); got != math.MaxInt64 {
		t.Fatalf("varint max: got %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool round trip failed")
	}
	if got := d.Byte(); got != 0xfe {
		t.Fatalf("byte: got %x", got)
	}
	if got := d.U64(); got != 0xdeadbeefcafef00d {
		t.Fatalf("u64: got %x", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty string: got %q", got)
	}
	if got := d.String(); got != "hello|world" {
		t.Fatalf("string: got %q", got)
	}
	raw := d.Raw()
	if len(raw) != 3 || raw[0] != 1 || raw[2] != 3 {
		t.Fatalf("raw: got %v", raw)
	}
	if got := d.Time(); got != event.Time(-5) {
		t.Fatalf("time: got %d", got)
	}
	if d.Err() != nil {
		t.Fatalf("unexpected err: %v", d.Err())
	}
	if d.Rem() != 0 {
		t.Fatalf("leftover bytes: %d", d.Rem())
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []event.Value{
		{},
		event.Int64(-42),
		event.Int64(math.MaxInt64),
		event.Float64(3.14159),
		event.Float64(math.Inf(-1)),
		event.String("toll"),
		event.Bool(true),
		event.Bool(false),
	}
	var e Enc
	for _, v := range vals {
		e.Value(v)
	}
	d := NewDec(e.Bytes())
	for i, want := range vals {
		got := d.Value()
		if got != want {
			t.Fatalf("value %d: got %#v want %#v", i, got, want)
		}
	}
	if d.Err() != nil || d.Rem() != 0 {
		t.Fatalf("err=%v rem=%d", d.Err(), d.Rem())
	}
}

func TestEventRoundTrip(t *testing.T) {
	reg := testRegistry(t)
	a, _ := reg.Lookup("A")
	b, _ := reg.Lookup("B")
	evs := []*event.Event{
		event.MustNew(a, 10, event.Int64(7), event.Float64(1.5)),
		event.MustNew(b, 20, event.String("k"), event.Bool(true)),
	}
	// A derived-style interval event.
	evs = append(evs, &event.Event{
		Schema: a,
		Time:   event.Interval{Start: 5, End: 30},
		Values: []event.Value{event.Int64(1), event.Float64(2)},
	})
	var e Enc
	for _, ev := range evs {
		e.Event(ev)
	}
	d := NewDec(e.Bytes())
	for i, want := range evs {
		got := d.Event(reg)
		if d.Err() != nil {
			t.Fatalf("event %d: %v", i, d.Err())
		}
		if !got.Equal(want) {
			t.Fatalf("event %d: got %v want %v", i, got, want)
		}
	}
}

func TestEventTablePreservesAliasing(t *testing.T) {
	reg := testRegistry(t)
	a, _ := reg.Lookup("A")
	shared := event.MustNew(a, 1, event.Int64(1), event.Float64(1))
	other := event.MustNew(a, 2, event.Int64(2), event.Float64(2))

	tab := NewEventTable()
	id1 := tab.ID(shared)
	id2 := tab.ID(other)
	id3 := tab.ID(shared) // same pointer → same id
	if id1 != id3 || id1 == id2 {
		t.Fatalf("interning broken: %d %d %d", id1, id2, id3)
	}
	if tab.ID(nil) != 0 {
		t.Fatal("nil must intern to 0")
	}

	var body Enc
	body.Uvarint(id1)
	body.Uvarint(id2)
	body.Uvarint(id3)

	var out Enc
	tab.Encode(&out)
	out.Raw(body.Bytes())

	d := NewDec(out.Bytes())
	restored := DecodeEventTable(d, reg)
	if d.Err() != nil {
		t.Fatalf("decode table: %v", d.Err())
	}
	if restored.Len() != 2 {
		t.Fatalf("restored %d events, want 2", restored.Len())
	}
	bd := NewDec(d.Raw())
	r1 := restored.Lookup(bd, bd.Uvarint())
	r2 := restored.Lookup(bd, bd.Uvarint())
	r3 := restored.Lookup(bd, bd.Uvarint())
	if bd.Err() != nil {
		t.Fatalf("decode body: %v", bd.Err())
	}
	if r1 != r3 {
		t.Fatal("aliasing lost: shared event restored to two pointers")
	}
	if r1 == r2 {
		t.Fatal("distinct events restored to one pointer")
	}
	if !r1.Equal(shared) || !r2.Equal(other) {
		t.Fatal("restored event content mismatch")
	}
	if r1 == shared {
		t.Fatal("restore must heap-copy, not alias the source event")
	}
}

func TestDecoderErrorsAreSticky(t *testing.T) {
	d := NewDec([]byte{0x80}) // truncated uvarint
	_ = d.Uvarint()
	if d.Err() == nil {
		t.Fatal("want error on truncated uvarint")
	}
	first := d.Err()
	_ = d.String()
	_ = d.Value()
	if d.Err() != first {
		t.Fatal("error must be sticky")
	}
}

func TestDecoderRejectsBadLengths(t *testing.T) {
	var e Enc
	e.Uvarint(1 << 50) // absurd string length
	d := NewDec(e.Bytes())
	_ = d.String()
	if d.Err() == nil {
		t.Fatal("want error on oversized string length")
	}

	var e2 Enc
	e2.Uvarint(99) // schema index out of range
	d2 := NewDec(e2.Bytes())
	_ = d2.Event(event.NewRegistry())
	if d2.Err() == nil {
		t.Fatal("want error on schema index out of range")
	}
}
