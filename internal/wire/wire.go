// Package wire implements the compact binary encoding used by the
// durability subsystem (internal/durability): varint primitives,
// attribute values, events, and an event table that preserves pointer
// aliasing across a snapshot round trip.
//
// The encoding is deliberately minimal — length-prefixed sections with
// CRC framing live one layer up, in the durability package. wire only
// knows how to lay out values; it imports nothing but internal/event.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/caesar-cep/caesar/internal/event"
)

// Enc accumulates an encoded byte stream. The zero value is ready to
// use; Bytes returns the accumulated buffer.
type Enc struct {
	b []byte
}

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.b }

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.b) }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Varint appends a zigzag-encoded signed varint.
func (e *Enc) Varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Byte appends one raw byte.
func (e *Enc) Byte(v byte) { e.b = append(e.b, v) }

// U64 appends a fixed-width little-endian uint64 (used for float bits
// and checksummable fixed fields).
func (e *Enc) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Raw appends a length-prefixed opaque byte section.
func (e *Enc) Raw(p []byte) {
	e.Uvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// Time appends an application timestamp.
func (e *Enc) Time(t event.Time) { e.Varint(int64(t)) }

// Value appends a tagged attribute value.
func (e *Enc) Value(v event.Value) {
	e.Byte(byte(v.Kind))
	switch v.Kind {
	case event.KindInt, event.KindBool:
		e.Varint(v.Int)
	case event.KindFloat:
		e.U64(math.Float64bits(v.Float))
	case event.KindString:
		e.String(v.Str)
	}
}

// Event appends a full event: schema index (dense registry position),
// time interval, arrival stamp, and all attribute values. Arrival is
// a wall-clock measurement artifact, not part of the event identity —
// it round-trips so a restored snapshot reproduces latency accounting
// exactly; WAL replay re-stamps it at dispatch regardless.
func (e *Enc) Event(ev *event.Event) {
	e.Uvarint(uint64(ev.Schema.Index()))
	e.Time(ev.Time.Start)
	e.Time(ev.Time.End)
	e.Varint(ev.Arrival)
	e.Uvarint(uint64(len(ev.Values)))
	for _, v := range ev.Values {
		e.Value(v)
	}
}

// Dec decodes a byte stream produced by Enc. Errors are sticky: after
// the first malformed read every subsequent read returns the zero
// value, and Err reports the failure. This lets restore code decode a
// whole section without per-call error plumbing.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over p.
func NewDec(p []byte) *Dec { return &Dec{b: p} }

// Err returns the first decoding error, or nil.
func (d *Dec) Err() error { return d.err }

// Rem returns the number of undecoded bytes remaining.
func (d *Dec) Rem() int { return len(d.b) - d.off }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format+" at offset %d", append(args, d.off)...)
	}
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

// Bool reads a boolean byte.
func (d *Dec) Bool() bool { return d.Byte() != 0 }

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// U64 reads a fixed-width little-endian uint64.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string length %d exceeds remaining %d", n, len(d.b)-d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Raw reads a length-prefixed opaque byte section. The returned slice
// aliases the decoder's buffer; callers must not retain it past the
// buffer's lifetime without copying.
func (d *Dec) Raw() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("section length %d exceeds remaining %d", n, len(d.b)-d.off)
		return nil
	}
	p := d.b[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return p
}

// Time reads an application timestamp.
func (d *Dec) Time() event.Time { return event.Time(d.Varint()) }

// Value reads a tagged attribute value.
func (d *Dec) Value() event.Value {
	k := event.Kind(d.Byte())
	switch k {
	case event.KindInvalid:
		return event.Value{}
	case event.KindInt, event.KindBool:
		return event.Value{Kind: k, Int: d.Varint()}
	case event.KindFloat:
		return event.Value{Kind: k, Float: math.Float64frombits(d.U64())}
	case event.KindString:
		return event.Value{Kind: k, Str: d.String()}
	default:
		d.fail("invalid value kind %d", k)
		return event.Value{}
	}
}

// Event reads a full event, resolving the schema through reg. The
// returned event is a fresh heap allocation.
func (d *Dec) Event(reg *event.Registry) *event.Event {
	idx := d.Uvarint()
	if d.err != nil {
		return nil
	}
	schemas := reg.Schemas()
	if idx >= uint64(len(schemas)) {
		d.fail("schema index %d out of range (%d registered)", idx, len(schemas))
		return nil
	}
	s := schemas[idx]
	start := d.Time()
	end := d.Time()
	arrival := d.Varint()
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Rem()) {
		d.fail("value count %d exceeds remaining bytes", n)
		return nil
	}
	vals := make([]event.Value, n)
	for i := range vals {
		vals[i] = d.Value()
	}
	if d.err != nil {
		return nil
	}
	return &event.Event{
		Schema:  s,
		Time:    event.Interval{Start: start, End: end},
		Arrival: arrival,
		Values:  vals,
	}
}

// EventTable interns event pointers for snapshot encoding so that
// aliasing survives the round trip: two operators holding the same
// *event.Event serialize one copy and restore to one shared pointer.
// IDs are assigned in first-use order; id 0 is reserved for nil.
type EventTable struct {
	ids map[*event.Event]uint64
	evs []*event.Event
}

// NewEventTable returns an empty table.
func NewEventTable() *EventTable {
	return &EventTable{ids: make(map[*event.Event]uint64)}
}

// ID interns ev and returns its table id (nil events get id 0; real
// events start at 1).
func (t *EventTable) ID(ev *event.Event) uint64 {
	if ev == nil {
		return 0
	}
	if id, ok := t.ids[ev]; ok {
		return id
	}
	t.evs = append(t.evs, ev)
	id := uint64(len(t.evs)) // 1-based
	t.ids[ev] = id
	return id
}

// Len returns the number of interned events.
func (t *EventTable) Len() int { return len(t.evs) }

// Encode appends the table to e: a count followed by each interned
// event in id order. Encode must run after every ID call (sections
// referencing the table are encoded first into a separate Enc, then
// stitched after the table by the caller).
func (t *EventTable) Encode(e *Enc) {
	e.Uvarint(uint64(len(t.evs)))
	for _, ev := range t.evs {
		e.Event(ev)
	}
}

// DecodeEventTable reads a table encoded by Encode and returns the
// restored events indexed so that Lookup(id) mirrors ID(ev). Every
// event is a fresh heap copy.
func DecodeEventTable(d *Dec, reg *event.Registry) *RestoredEvents {
	n := d.Uvarint()
	if d.err != nil {
		return &RestoredEvents{}
	}
	if n > uint64(d.Rem()) {
		d.fail("event table count %d exceeds remaining bytes", n)
		return &RestoredEvents{}
	}
	evs := make([]*event.Event, n)
	for i := range evs {
		evs[i] = d.Event(reg)
		if d.err != nil {
			return &RestoredEvents{}
		}
	}
	return &RestoredEvents{evs: evs}
}

// RestoredEvents resolves table ids back to restored event pointers.
type RestoredEvents struct {
	evs []*event.Event
}

// Lookup returns the event for a table id (0 → nil). Out-of-range ids
// record an error on d and return nil.
func (r *RestoredEvents) Lookup(d *Dec, id uint64) *event.Event {
	if id == 0 {
		return nil
	}
	if id > uint64(len(r.evs)) {
		d.fail("event table id %d out of range (%d events)", id, len(r.evs))
		return nil
	}
	return r.evs[id-1]
}

// Len returns the number of restored events.
func (r *RestoredEvents) Len() int { return len(r.evs) }
