// Package durability implements the durable-state subsystem: a
// segmented, CRC-framed write-ahead log of input batches appended at
// tick granularity, tick-aligned snapshots of per-partition runtime
// state written atomically, and the recovery scan that replays the WAL
// tail after a crash (DESIGN.md §3.9).
//
// The package owns file formats and framing only. What goes inside a
// snapshot section is opaque here — the runtime serializes operator
// state through internal/wire and hands this package byte sections.
package durability

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/wire"
)

// WAL file format: an 8-byte magic ("CAESWAL1") followed by frames.
// Each frame is a 4-byte little-endian payload length, a 4-byte
// CRC32 (IEEE) of the payload, then the payload: a zigzag-varint
// tick, a uvarint event count, and that many wire-encoded events.
// A frame is valid iff its length fits the file and its CRC matches;
// the first invalid frame ends the readable prefix of a segment.
const (
	walMagic   = "CAESWAL1"
	snapMagic  = "CAESNAP1"
	walSegMax  = 4 << 20 // rotate segments at ~4 MiB
	frameadmin = 8       // bytes of frame header (len + crc)
)

// SyncPolicy values for WAL.syncEvery: 1 fsyncs every appended tick,
// N>1 fsyncs every N ticks, and 0 is async — fsync only on segment
// rotation and Close.
const (
	SyncAsync   = 0
	SyncPerTick = 1
)

type segInfo struct {
	path      string
	firstTick event.Time
	size      int64
}

// WAL is an append-only, segmented write-ahead log of input ticks.
// It is not safe for concurrent use; the runtime appends from the
// single dispatch/router goroutine.
type WAL struct {
	dir       string
	syncEvery int

	f        *os.File // current open segment (nil until first append)
	fPath    string
	fFirst   event.Time
	fSize    int64
	lastTick event.Time
	haveTick bool

	// closed segments in tick order, oldest first. The open segment is
	// not in this list.
	segs []segInfo

	ticksSinceSync int
	totalBytes     int64 // bytes across all segments incl. open

	enc      wire.Enc
	scratch  []byte
	frameBuf [frameadmin]byte

	// FsyncObserve, when non-nil, receives the duration of every fsync
	// in nanoseconds (runtime bridges it into a latency histogram).
	FsyncObserve func(nanos int64)

	// counters the runtime polls for telemetry.
	frames uint64
	syncs  uint64
}

// OpenWAL opens (creating if needed) a WAL directory for appending.
// Pre-existing segments — the tail of a crashed run — are recorded so
// Truncate can reclaim them after the next checkpoint; appends always
// start a fresh segment. Leftover segments that hold no valid frame
// (a crash before the first frame became durable, or a torn first
// frame that replay truncated back to the header) are removed: the
// tick naming them was never replayed, so the resumed run re-appends
// it, and keeping the file would wedge that append — and every
// restart after it — on the O_EXCL segment create.
func OpenWAL(dir string, syncEvery int) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durability: open wal: %w", err)
	}
	w := &WAL{dir: dir, syncEvery: syncEvery}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		if !segmentHasFrame(s.path, s.size) {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("durability: remove empty segment: %w", err)
			}
			continue
		}
		w.segs = append(w.segs, s)
		w.totalBytes += s.size
	}
	return w, nil
}

// segmentHasFrame reports whether the segment at path starts with the
// WAL magic followed by at least one CRC-valid frame — i.e. whether
// replay can deliver anything from it. size is the segment's length on
// disk (from listSegments), bounding the frame header's length field.
func segmentHasFrame(path string, size int64) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [len(walMagic) + frameadmin]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	if string(hdr[:len(walMagic)]) != walMagic {
		return false
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[len(walMagic) : len(walMagic)+4]))
	crc := binary.LittleEndian.Uint32(hdr[len(walMagic)+4:])
	if int64(len(hdr))+plen > size {
		return false
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(f, payload); err != nil {
		return false
	}
	return crc32.ChecksumIEEE(payload) == crc
}

// listSegments returns the WAL segment files under dir sorted by
// first tick (parsed from the filename).
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durability: list wal segments: %w", err)
	}
	var segs []segInfo
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		tickStr := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
		tick, err := strconv.ParseInt(tickStr, 10, 64)
		if err != nil {
			continue // not ours
		}
		info, err := ent.Info()
		if err != nil {
			return nil, fmt.Errorf("durability: stat segment %s: %w", name, err)
		}
		segs = append(segs, segInfo{
			path:      filepath.Join(dir, name),
			firstTick: event.Time(tick),
			size:      info.Size(),
		})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstTick < segs[j].firstTick })
	return segs, nil
}

func segName(first event.Time) string {
	return fmt.Sprintf("wal-%d.seg", int64(first))
}

// Append logs one tick's events. Ticks must be appended in strictly
// increasing order. Depending on the sync policy the frame is fsynced
// before Append returns.
func (w *WAL) Append(tick event.Time, evs []*event.Event) error {
	if w.haveTick && tick <= w.lastTick {
		return fmt.Errorf("durability: wal append out of order: tick %d after %d", tick, w.lastTick)
	}
	if w.f != nil && w.fSize >= walSegMax {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if w.f == nil {
		if err := w.openSegment(tick); err != nil {
			return err
		}
	}
	w.enc = wire.Enc{}
	w.enc.Varint(int64(tick))
	w.enc.Uvarint(uint64(len(evs)))
	for _, ev := range evs {
		w.enc.Event(ev)
	}
	payload := w.enc.Bytes()
	binary.LittleEndian.PutUint32(w.frameBuf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.frameBuf[4:8], crc32.ChecksumIEEE(payload))
	w.scratch = append(w.scratch[:0], w.frameBuf[:]...)
	w.scratch = append(w.scratch, payload...)
	if _, err := w.f.Write(w.scratch); err != nil {
		return fmt.Errorf("durability: wal append: %w", err)
	}
	n := int64(len(w.scratch))
	w.fSize += n
	w.totalBytes += n
	w.lastTick = tick
	w.haveTick = true
	w.frames++
	w.ticksSinceSync++
	if w.syncEvery > 0 && w.ticksSinceSync >= w.syncEvery {
		if err := w.sync(); err != nil {
			return err
		}
	}
	return nil
}

func (w *WAL) openSegment(first event.Time) error {
	path := filepath.Join(w.dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durability: wal segment: %w", err)
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return fmt.Errorf("durability: wal segment header: %w", err)
	}
	w.f, w.fPath, w.fFirst = f, path, first
	w.fSize = int64(len(walMagic))
	w.totalBytes += w.fSize
	return nil
}

func (w *WAL) rotate() error {
	if w.f == nil {
		return nil
	}
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durability: wal rotate: %w", err)
	}
	w.segs = append(w.segs, segInfo{path: w.fPath, firstTick: w.fFirst, size: w.fSize})
	w.f = nil
	return nil
}

func (w *WAL) sync() error {
	if w.f == nil {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durability: wal fsync: %w", err)
	}
	if w.FsyncObserve != nil {
		w.FsyncObserve(time.Since(start).Nanoseconds())
	}
	w.syncs++
	w.ticksSinceSync = 0
	return nil
}

// Sync forces an fsync of the open segment.
func (w *WAL) Sync() error { return w.sync() }

// Close fsyncs and closes the open segment.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	err := w.f.Close()
	w.segs = append(w.segs, segInfo{path: w.fPath, firstTick: w.fFirst, size: w.fSize})
	w.f = nil
	if err != nil {
		return fmt.Errorf("durability: wal close: %w", err)
	}
	return nil
}

// Truncate deletes closed segments made obsolete by a snapshot at
// snapTick. A closed segment is deletable when the next segment's
// first tick is ≤ snapTick+1 — every tick it holds is then ≤ snapTick
// and covered by the snapshot. The open segment is never deleted.
func (w *WAL) Truncate(snapTick event.Time) error {
	keep := w.segs[:0]
	for i, s := range w.segs {
		var nextFirst event.Time
		switch {
		case i+1 < len(w.segs):
			nextFirst = w.segs[i+1].firstTick
		case w.f != nil:
			nextFirst = w.fFirst
		default:
			// No later segment: the bound on this segment's last tick
			// is unknown, keep it.
			keep = append(keep, s)
			continue
		}
		if nextFirst <= snapTick+1 {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("durability: wal truncate: %w", err)
			}
			w.totalBytes -= s.size
			continue
		}
		keep = append(keep, s)
	}
	w.segs = keep
	return nil
}

// Backlog returns the total bytes currently held across all WAL
// segments (shrinks when Truncate reclaims segments).
func (w *WAL) Backlog() int64 { return w.totalBytes }

// Frames returns the number of frames appended this run.
func (w *WAL) Frames() uint64 { return w.frames }

// Syncs returns the number of fsyncs issued this run.
func (w *WAL) Syncs() uint64 { return w.syncs }

// LastTick returns the highest tick appended this run.
func (w *WAL) LastTick() (event.Time, bool) { return w.lastTick, w.haveTick }

// ReplayWAL scans every segment under dir in tick order and calls fn
// once per valid frame, in strictly increasing tick order. Frames
// whose tick is ≤ the highest tick already delivered are skipped
// (overlap across segments after repeated crashes). An invalid frame
// — bad CRC, impossible length, torn tail — ends that segment's
// readable prefix. Only the final segment's tail can legitimately be
// torn (rotation fsyncs a segment before closing it), so the final
// segment is physically truncated to its valid prefix so the tail
// never resurfaces, while an invalid frame in a non-final segment is
// disk corruption: if any later segment still holds frames, replaying
// past the gap would silently diverge state, so recovery fails with
// an error instead. Returns the highest tick delivered (ok=false when
// the WAL held no valid frames).
func ReplayWAL(dir string, reg *event.Registry, fn func(tick event.Time, evs []*event.Event) error) (last event.Time, ok bool, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}
	for i, s := range segs {
		validLen, serr := replaySegment(s.path, reg, &last, &ok, fn)
		if serr != nil {
			return last, ok, serr
		}
		if validLen < 0 {
			continue // segment read cleanly end to end
		}
		if i == len(segs)-1 {
			// Torn tail on the final segment: truncate it away so a
			// later reopen appends after a clean prefix.
			if terr := os.Truncate(s.path, validLen); terr != nil {
				return last, ok, fmt.Errorf("durability: truncate torn tail: %w", terr)
			}
			continue
		}
		for _, later := range segs[i+1:] {
			if segmentHasFrame(later.path, later.size) {
				return last, ok, fmt.Errorf(
					"durability: segment %s is corrupt mid-log (valid prefix %d of %d bytes) with later frames in %s; refusing to replay past the gap",
					filepath.Base(s.path), validLen, s.size, filepath.Base(later.path))
			}
		}
	}
	return last, ok, nil
}

// replaySegment reads one segment, delivering valid frames through fn
// (with cross-segment tick dedup via *last / *ok). It returns the
// length of the valid prefix when the segment ends in an invalid
// frame, or -1 when the whole segment read cleanly.
func replaySegment(path string, reg *event.Registry, last *event.Time, ok *bool, fn func(event.Time, []*event.Event) error) (validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return -1, fmt.Errorf("durability: read segment: %w", err)
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return 0, nil // header torn or foreign: nothing readable
	}
	off := int64(len(walMagic))
	for {
		if off == int64(len(data)) {
			return -1, nil // clean end
		}
		if off+frameadmin > int64(len(data)) {
			return off, nil // torn header
		}
		plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+frameadmin+plen > int64(len(data)) {
			return off, nil // torn payload
		}
		payload := data[off+frameadmin : off+frameadmin+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil // corrupt frame
		}
		d := wire.NewDec(payload)
		tick := d.Time()
		n := d.Uvarint()
		if d.Err() != nil || n > uint64(d.Rem()) {
			return off, nil // framed but malformed: treat as corrupt
		}
		evs := make([]*event.Event, 0, n)
		for j := uint64(0); j < n; j++ {
			ev := d.Event(reg)
			if d.Err() != nil {
				return off, nil
			}
			evs = append(evs, ev)
		}
		off += frameadmin + plen
		if *ok && tick <= *last {
			continue // duplicate tick across segments
		}
		if err := fn(tick, evs); err != nil {
			return -1, err
		}
		*last, *ok = tick, true
	}
}
