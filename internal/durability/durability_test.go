package durability

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
)

func testRegistry() *event.Registry {
	reg := event.NewRegistry()
	reg.MustRegister(event.MustSchema("Pos",
		event.Field{Name: "vid", Kind: event.KindInt},
		event.Field{Name: "speed", Kind: event.KindFloat},
	))
	reg.MustRegister(event.MustSchema("Tag",
		event.Field{Name: "name", Kind: event.KindString},
	))
	return reg
}

func mkTick(reg *event.Registry, rng *rand.Rand, t event.Time) []*event.Event {
	pos, _ := reg.Lookup("Pos")
	tag, _ := reg.Lookup("Tag")
	n := 1 + rng.Intn(4)
	evs := make([]*event.Event, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			evs = append(evs, event.MustNew(tag, t, event.String("k")))
		} else {
			evs = append(evs, event.MustNew(pos, t,
				event.Int64(rng.Int63n(100)), event.Float64(rng.Float64()*80)))
		}
	}
	return evs
}

type tickLog struct {
	tick event.Time
	evs  []*event.Event
}

func collectReplay(t *testing.T, dir string, reg *event.Registry) ([]tickLog, event.Time, bool) {
	t.Helper()
	var got []tickLog
	last, ok, err := ReplayWAL(dir, reg, func(tk event.Time, evs []*event.Event) error {
		got = append(got, tickLog{tk, evs})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, last, ok
}

func sameTicks(t *testing.T, got []tickLog, want []tickLog) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d ticks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].tick != want[i].tick {
			t.Fatalf("tick %d: got %d want %d", i, got[i].tick, want[i].tick)
		}
		if len(got[i].evs) != len(want[i].evs) {
			t.Fatalf("tick %d: %d events, want %d", i, len(got[i].evs), len(want[i].evs))
		}
		for j := range want[i].evs {
			if !got[i].evs[j].Equal(want[i].evs[j]) {
				t.Fatalf("tick %d event %d: got %v want %v", i, j, got[i].evs[j], want[i].evs[j])
			}
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry()
	rng := rand.New(rand.NewSource(1))
	w, err := OpenWAL(dir, SyncPerTick)
	if err != nil {
		t.Fatal(err)
	}
	var want []tickLog
	for tk := event.Time(0); tk < 50; tk += 1 + event.Time(rng.Intn(3)) {
		evs := mkTick(reg, rng, tk)
		if err := w.Append(tk, evs); err != nil {
			t.Fatal(err)
		}
		want = append(want, tickLog{tk, evs})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, last, ok := collectReplay(t, dir, reg)
	if !ok || last != want[len(want)-1].tick {
		t.Fatalf("last=%d ok=%v, want %d", last, ok, want[len(want)-1].tick)
	}
	sameTicks(t, got, want)
}

func TestWALRejectsOutOfOrder(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry()
	rng := rand.New(rand.NewSource(2))
	w, err := OpenWAL(dir, SyncAsync)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(5, mkTick(reg, rng, 5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, mkTick(reg, rng, 5)); err == nil {
		t.Fatal("want error on duplicate tick")
	}
	if err := w.Append(3, mkTick(reg, rng, 3)); err == nil {
		t.Fatal("want error on backwards tick")
	}
}

func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry()
	rng := rand.New(rand.NewSource(3))
	w, err := OpenWAL(dir, SyncAsync)
	if err != nil {
		t.Fatal(err)
	}
	var want []tickLog
	for tk := event.Time(0); tk < 20; tk++ {
		evs := mkTick(reg, rng, tk)
		if err := w.Append(tk, evs); err != nil {
			t.Fatal(err)
		}
		want = append(want, tickLog{tk, evs})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %d", err, len(segs))
	}
	seg := segs[len(segs)-1].path
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop off the last 7 bytes (mid-frame).
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	got, last, ok := collectReplay(t, dir, reg)
	if !ok {
		t.Fatal("want at least one valid frame")
	}
	if len(got) != len(want)-1 || last != want[len(want)-2].tick {
		t.Fatalf("replayed %d ticks last=%d, want %d last=%d", len(got), last, len(want)-1, want[len(want)-2].tick)
	}
	sameTicks(t, got, want[:len(want)-1])
	// The torn tail must be physically truncated: a second replay
	// reads a clean file with identical content.
	got2, last2, ok2 := collectReplay(t, dir, reg)
	if !ok2 || last2 != last || len(got2) != len(got) {
		t.Fatal("second replay after tail truncation diverged")
	}
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= int64(len(data)) {
		t.Fatal("torn tail was not truncated")
	}
}

// TestWALTornWriteFuzz truncates and corrupts the WAL at every
// possible byte offset and requires replay to never panic, never
// return an error, and always yield a prefix of the original ticks.
func TestWALTornWriteFuzz(t *testing.T) {
	base := t.TempDir()
	reg := testRegistry()
	rng := rand.New(rand.NewSource(4))
	srcDir := filepath.Join(base, "src")
	w, err := OpenWAL(srcDir, SyncAsync)
	if err != nil {
		t.Fatal(err)
	}
	var want []tickLog
	for tk := event.Time(0); tk < 12; tk++ {
		evs := mkTick(reg, rng, tk)
		if err := w.Append(tk, evs); err != nil {
			t.Fatal(err)
		}
		want = append(want, tickLog{tk, evs})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(srcDir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d (%v)", len(segs), err)
	}
	orig, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0].path)

	checkPrefix := func(t *testing.T, dir string) {
		var got []tickLog
		last, ok, err := ReplayWAL(dir, reg, func(tk event.Time, evs []*event.Event) error {
			got = append(got, tickLog{tk, evs})
			return nil
		})
		if err != nil {
			t.Fatalf("replay errored: %v", err)
		}
		if len(got) > len(want) {
			t.Fatalf("replayed %d ticks from a damaged log of %d", len(got), len(want))
		}
		sameTicks(t, got, want[:len(got)])
		if ok && last != got[len(got)-1].tick {
			t.Fatalf("last=%d disagrees with final replayed tick %d", last, got[len(got)-1].tick)
		}
	}

	t.Run("truncate", func(t *testing.T) {
		for cut := 0; cut <= len(orig); cut++ {
			dir := filepath.Join(base, "trunc")
			os.RemoveAll(dir)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, segName), orig[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			checkPrefix(t, dir)
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		for off := 0; off < len(orig); off += 3 {
			dir := filepath.Join(base, "flip")
			os.RemoveAll(dir)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			mut := append([]byte(nil), orig...)
			mut[off] ^= 0x40
			if err := os.WriteFile(filepath.Join(dir, segName), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			// A bit flip may corrupt any frame; replay must yield some
			// subsequence of ticks without error. (Ticks after the
			// flipped frame are lost with the rest of the segment —
			// prefix property only holds per segment.)
			var got []tickLog
			_, _, err := ReplayWAL(dir, reg, func(tk event.Time, evs []*event.Event) error {
				got = append(got, tickLog{tk, evs})
				return nil
			})
			if err != nil {
				t.Fatalf("replay errored at flip offset %d: %v", off, err)
			}
			if len(got) > len(want) {
				t.Fatalf("flip offset %d: replayed %d > %d ticks", off, len(got), len(want))
			}
		}
	})
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry()
	pos, _ := reg.Lookup("Pos")
	w, err := OpenWAL(dir, SyncAsync)
	if err != nil {
		t.Fatal(err)
	}
	// Big string payloads to force several rotations quickly.
	tag, _ := reg.Lookup("Tag")
	blob := string(bytes.Repeat([]byte("x"), 64<<10))
	var want []tickLog
	for tk := event.Time(0); tk < 200; tk++ {
		evs := []*event.Event{
			event.MustNew(pos, tk, event.Int64(int64(tk)), event.Float64(1)),
			event.MustNew(tag, tk, event.String(blob)),
		}
		if err := w.Append(tk, evs); err != nil {
			t.Fatal(err)
		}
		want = append(want, tickLog{tk, evs})
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to close ≥2 segments, got %d", len(segs))
	}
	got, _, _ := collectReplay(t, dir, reg)
	sameTicks(t, got, want)

	// Truncating at a mid-log tick must delete fully covered closed
	// segments and keep everything after the snapshot tick replayable.
	snapTick := event.Time(100)
	before := w.Backlog()
	if err := w.Truncate(snapTick); err != nil {
		t.Fatal(err)
	}
	if w.Backlog() >= before {
		t.Fatal("truncate reclaimed nothing")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var tail []tickLog
	for _, tl := range want {
		if tl.tick > snapTick {
			tail = append(tail, tl)
		}
	}
	var got2 []tickLog
	_, _, err = ReplayWAL(dir, reg, func(tk event.Time, evs []*event.Event) error {
		if tk > snapTick {
			got2 = append(got2, tickLog{tk, evs})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sameTicks(t, got2, tail)
}

func TestWALResumeAfterReplay(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry()
	rng := rand.New(rand.NewSource(5))
	w1, err := OpenWAL(dir, SyncPerTick)
	if err != nil {
		t.Fatal(err)
	}
	var want []tickLog
	for tk := event.Time(0); tk < 10; tk++ {
		evs := mkTick(reg, rng, tk)
		if err := w1.Append(tk, evs); err != nil {
			t.Fatal(err)
		}
		want = append(want, tickLog{tk, evs})
	}
	// Simulate a crash: no Close. Reopen, replay, continue appending.
	_, _, ok := collectReplay(t, dir, reg)
	if !ok {
		t.Fatal("no frames survived the crash")
	}
	w2, err := OpenWAL(dir, SyncPerTick)
	if err != nil {
		t.Fatal(err)
	}
	for tk := event.Time(10); tk < 20; tk++ {
		evs := mkTick(reg, rng, tk)
		if err := w2.Append(tk, evs); err != nil {
			t.Fatal(err)
		}
		want = append(want, tickLog{tk, evs})
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, last, ok := collectReplay(t, dir, reg)
	if !ok || last != 19 {
		t.Fatalf("last=%d ok=%v", last, ok)
	}
	sameTicks(t, got, want)

	// A checkpoint past the old run's ticks lets Truncate reclaim the
	// crashed run's segments.
	w3, err := OpenWAL(dir, SyncPerTick)
	if err != nil {
		t.Fatal(err)
	}
	if err := w3.Append(20, mkTick(reg, rng, 20)); err != nil {
		t.Fatal(err)
	}
	if err := w3.Truncate(19); err != nil {
		t.Fatal(err)
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
	var got2 []tickLog
	_, _, err = ReplayWAL(dir, reg, func(tk event.Time, evs []*event.Event) error {
		got2 = append(got2, tickLog{tk, evs})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 || got2[0].tick != 20 {
		t.Fatalf("after truncate want only tick 20, got %d ticks", len(got2))
	}
}

// TestWALReopenAfterEmptyLeftoverSegment: a crash can leave a segment
// holding nothing durable — just the magic header under the async sync
// policy, or a torn first frame that replay truncates back to the
// header. Replay delivers nothing from it, so the resumed run re-feeds
// and re-appends the very tick naming the file; OpenWAL must clear the
// leftover or the O_EXCL segment create wedges every restart.
func TestWALReopenAfterEmptyLeftoverSegment(t *testing.T) {
	reg := testRegistry()
	rng := rand.New(rand.NewSource(6))
	leftovers := map[string][]byte{
		"magic-only": []byte(walMagic),
		"zero-byte":  nil,
		"torn-frame": append([]byte(walMagic), 0xff, 0xff, 0xff),
	}
	for name, content := range leftovers {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segName(5)), content, 0o644); err != nil {
				t.Fatal(err)
			}
			got, _, ok := collectReplay(t, dir, reg)
			if ok || len(got) != 0 {
				t.Fatalf("replayed %d ticks from an empty leftover", len(got))
			}
			w, err := OpenWAL(dir, SyncPerTick)
			if err != nil {
				t.Fatal(err)
			}
			evs := mkTick(reg, rng, 5)
			if err := w.Append(5, evs); err != nil {
				t.Fatalf("append after empty leftover segment: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got, last, ok := collectReplay(t, dir, reg)
			if !ok || last != 5 {
				t.Fatalf("last=%d ok=%v after resume, want tick 5", last, ok)
			}
			sameTicks(t, got, []tickLog{{5, evs}})
		})
	}
}

// TestWALMidLogCorruptionFailsReplay: only the final segment's tail
// can legitimately be torn — rotation fsyncs a segment before closing
// it. A bad frame in a non-final segment is disk corruption, and
// replaying the later segments past the gap would silently diverge
// state; recovery must fail instead.
func TestWALMidLogCorruptionFailsReplay(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry()
	pos, _ := reg.Lookup("Pos")
	tag, _ := reg.Lookup("Tag")
	w, err := OpenWAL(dir, SyncAsync)
	if err != nil {
		t.Fatal(err)
	}
	blob := string(bytes.Repeat([]byte("x"), 64<<10))
	for tk := event.Time(0); tk < 200; tk++ {
		evs := []*event.Event{
			event.MustNew(pos, tk, event.Int64(int64(tk)), event.Float64(1)),
			event.MustNew(tag, tk, event.String(blob)),
		}
		if err := w.Append(tk, evs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %d (%v)", len(segs), err)
	}
	// Flip a payload byte inside the first (non-final) segment's first
	// frame: its readable prefix ends mid-log while later segments
	// still hold frames.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(walMagic)+frameadmin+10] ^= 0x40
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReplayWAL(dir, reg, func(event.Time, []*event.Event) error { return nil })
	if err == nil {
		t.Fatal("replay silently skipped a mid-log corruption gap")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sections := []Section{
		{Key: "part|1|", Data: []byte{1, 2, 3}},
		{Key: "part|2|", Data: nil},
		{Key: "·", Data: bytes.Repeat([]byte{0xab}, 1000)},
	}
	if _, err := WriteSnapshot(dir, 42, "fp-v1", sections); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadLatestSnapshot(dir, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Tick != 42 || snap.Fingerprint != "fp-v1" {
		t.Fatalf("snapshot: %+v", snap)
	}
	if len(snap.Sections) != len(sections) {
		t.Fatalf("sections: %d want %d", len(snap.Sections), len(sections))
	}
	for i, s := range sections {
		if snap.Sections[i].Key != s.Key || !bytes.Equal(snap.Sections[i].Data, s.Data) {
			t.Fatalf("section %d mismatch", i)
		}
	}
	if tick, ok := LatestSnapshotTick(dir); !ok || tick != 42 {
		t.Fatalf("LatestSnapshotTick = %d, %v", tick, ok)
	}
}

func TestSnapshotFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 7, "fp-old", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLatestSnapshot(dir, "fp-new"); err == nil {
		t.Fatal("want error on fingerprint mismatch")
	}
}

func TestSnapshotCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 10, "fp", []Section{{Key: "a", Data: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, 20, "fp", []Section{{Key: "b", Data: []byte{2}}}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot; loading must fall back to tick 10.
	newest := filepath.Join(dir, snapName(20))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadLatestSnapshot(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Tick != 10 {
		t.Fatalf("want fallback to tick 10, got %+v", snap)
	}
}

func TestSnapshotPrunesOld(t *testing.T) {
	dir := t.TempDir()
	if _, ok := OldestSnapshotTick(dir); ok {
		t.Fatal("empty dir reported a snapshot")
	}
	for _, tk := range []event.Time{1, 2, 3, 4} {
		if _, err := WriteSnapshot(dir, tk, "fp", nil); err != nil {
			t.Fatal(err)
		}
	}
	ticks := listSnapshots(dir)
	if len(ticks) != 2 || ticks[0] != 3 || ticks[1] != 4 {
		t.Fatalf("want snapshots [3 4], got %v", ticks)
	}
	if oldest, ok := OldestSnapshotTick(dir); !ok || oldest != 3 {
		t.Fatalf("OldestSnapshotTick = %d, %v; want 3", oldest, ok)
	}
}

// TestSnapshotFallbackKeepsWALContiguous replays the reviewed failure
// end to end at the file layer: checkpoints that truncate the WAL to
// the *newest* snapshot leave a frame gap (S1, S2] when recovery has
// to fall back from a corrupt newest image to the older one. Using
// the checkpoint sequence the runtime runs — WriteSnapshot, then
// Truncate to OldestSnapshotTick — every tick after the fallback
// image must still replay, across real segment rotations.
func TestSnapshotFallbackKeepsWALContiguous(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry()
	pos, _ := reg.Lookup("Pos")
	tag, _ := reg.Lookup("Tag")
	w, err := OpenWAL(dir, SyncAsync)
	if err != nil {
		t.Fatal(err)
	}
	blob := string(bytes.Repeat([]byte("x"), 64<<10))
	appendRange := func(from, to event.Time) {
		t.Helper()
		for tk := from; tk <= to; tk++ {
			evs := []*event.Event{
				event.MustNew(pos, tk, event.Int64(int64(tk)), event.Float64(1)),
				event.MustNew(tag, tk, event.String(blob)),
			}
			if err := w.Append(tk, evs); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkpoint := func(snapTick event.Time) {
		t.Helper()
		if _, err := WriteSnapshot(dir, snapTick, "fp", nil); err != nil {
			t.Fatal(err)
		}
		bound := snapTick
		if oldest, ok := OldestSnapshotTick(dir); ok && oldest < bound {
			bound = oldest
		}
		if err := w.Truncate(bound); err != nil {
			t.Fatal(err)
		}
	}
	appendRange(0, 100)
	checkpoint(100)
	appendRange(101, 200)
	checkpoint(200)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if segs, err := listSegments(dir); err != nil || len(segs) < 2 {
		t.Fatalf("want rotation and partial truncation to leave ≥2 segments, got %d (%v)", len(segs), err)
	}

	// Corrupt the newest snapshot; loading must fall back to tick 100.
	newest := filepath.Join(dir, snapName(200))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadLatestSnapshot(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Tick != 100 {
		t.Fatalf("want fallback to tick 100, got %+v", snap)
	}

	// Every tick after the fallback image must still be in the WAL —
	// a gap here is exactly the silent state divergence under review.
	next := snap.Tick + 1
	_, _, err = ReplayWAL(dir, reg, func(tk event.Time, evs []*event.Event) error {
		if tk <= snap.Tick {
			return nil
		}
		if tk != next {
			t.Fatalf("WAL gap after fallback: got tick %d, want %d", tk, next)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 201 {
		t.Fatalf("replay after fallback stopped at tick %d, want through 200", next-1)
	}
}

func TestLoadSnapshotEmptyDir(t *testing.T) {
	snap, err := LoadLatestSnapshot(t.TempDir(), "fp")
	if err != nil || snap != nil {
		t.Fatalf("empty dir: snap=%v err=%v", snap, err)
	}
	snap, err = LoadLatestSnapshot(filepath.Join(t.TempDir(), "missing"), "fp")
	if err != nil || snap != nil {
		t.Fatalf("missing dir: snap=%v err=%v", snap, err)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	reg := testRegistry()
	pos, _ := reg.Lookup("Pos")
	w, err := OpenWAL(dir, SyncAsync)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	const perTick = 64
	evs := make([]*event.Event, perTick)
	for i := range evs {
		evs[i] = event.MustNew(pos, 0, event.Int64(int64(i)), event.Float64(33.5))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := event.Time(i)
		for j := range evs {
			evs[j].Time = event.Point(tk)
		}
		if err := w.Append(tk, evs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*perTick), "ns/event")
}
