package durability

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/wire"
)

// Snapshot file format: the 8-byte magic "CAESNAP1" followed by one
// CRC frame (4-byte little-endian payload length, 4-byte CRC32 of the
// payload, payload). The payload is: zigzag-varint snapshot tick, a
// length-prefixed plan fingerprint string, a uvarint section count,
// then each section as a length-prefixed key string plus a
// length-prefixed opaque byte blob. A snapshot is valid iff the magic,
// length and CRC all check out — a torn write is simply not a valid
// snapshot, which is why the file is written to a temp name and
// renamed into place only after fsync.

// Section is one opaque serialized component of a snapshot, keyed so
// recovery can route it back to its owner (e.g. a partition key).
type Section struct {
	Key  string
	Data []byte
}

// Snapshot is a decoded snapshot file.
type Snapshot struct {
	Tick        event.Time
	Fingerprint string
	Sections    []Section
}

func snapName(tick event.Time) string {
	return fmt.Sprintf("snap-%d.ckpt", int64(tick))
}

// WriteSnapshot atomically writes a snapshot at tick to dir: temp
// file, fsync, rename, directory fsync. Older snapshots beyond the
// newest two are removed afterwards. Returns the snapshot's size in
// bytes.
func WriteSnapshot(dir string, tick event.Time, fingerprint string, sections []Section) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("durability: snapshot dir: %w", err)
	}
	var enc wire.Enc
	enc.Varint(int64(tick))
	enc.String(fingerprint)
	enc.Uvarint(uint64(len(sections)))
	for _, s := range sections {
		enc.String(s.Key)
		enc.Raw(s.Data)
	}
	payload := enc.Bytes()
	var hdr [frameadmin]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))

	tmp, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("durability: snapshot temp: %w", err)
	}
	tmpPath := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpPath) }
	if _, err := tmp.WriteString(snapMagic); err != nil {
		cleanup()
		return 0, fmt.Errorf("durability: snapshot write: %w", err)
	}
	if _, err := tmp.Write(hdr[:]); err != nil {
		cleanup()
		return 0, fmt.Errorf("durability: snapshot write: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		cleanup()
		return 0, fmt.Errorf("durability: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, fmt.Errorf("durability: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("durability: snapshot close: %w", err)
	}
	final := filepath.Join(dir, snapName(tick))
	if err := os.Rename(tmpPath, final); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("durability: snapshot rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	pruneSnapshots(dir, 2)
	return int64(len(snapMagic) + frameadmin + len(payload)), nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durability: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durability: dir fsync: %w", err)
	}
	return nil
}

// listSnapshots returns snapshot file ticks under dir, ascending.
func listSnapshots(dir string) []event.Time {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var ticks []event.Time
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		t, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".ckpt"), 10, 64)
		if err != nil {
			continue
		}
		ticks = append(ticks, event.Time(t))
	}
	sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
	return ticks
}

// pruneSnapshots removes all but the newest keep snapshot files.
func pruneSnapshots(dir string, keep int) {
	ticks := listSnapshots(dir)
	for i := 0; i+keep < len(ticks); i++ {
		os.Remove(filepath.Join(dir, snapName(ticks[i])))
	}
}

// LoadLatestSnapshot scans dir for the newest snapshot that decodes
// cleanly and whose fingerprint matches. Corrupt or mismatched
// snapshots are skipped (falling back to older ones). Returns nil
// when no usable snapshot exists.
func LoadLatestSnapshot(dir, fingerprint string) (*Snapshot, error) {
	ticks := listSnapshots(dir)
	for i := len(ticks) - 1; i >= 0; i-- {
		snap, err := readSnapshot(filepath.Join(dir, snapName(ticks[i])))
		if err != nil {
			continue // torn or corrupt: older snapshots may still be good
		}
		if snap.Fingerprint != fingerprint {
			return nil, fmt.Errorf("durability: snapshot %s fingerprint %q does not match engine %q (model or config changed since the crash)",
				snapName(ticks[i]), snap.Fingerprint, fingerprint)
		}
		return snap, nil
	}
	return nil, nil
}

// OldestSnapshotTick reports the tick of the oldest snapshot file
// retained in dir (ok=false when none exists). The WAL truncates to
// this tick — not the newest snapshot's — so that recovery's fallback
// from a corrupt newest image to the older one still finds every WAL
// frame after the older image's tick. Name-based on purpose: decoding
// every retained image at each checkpoint would double the I/O, and a
// corrupt oldest image only makes the bound more conservative.
func OldestSnapshotTick(dir string) (event.Time, bool) {
	ticks := listSnapshots(dir)
	if len(ticks) == 0 {
		return 0, false
	}
	return ticks[0], true
}

// LatestSnapshotTick reports the tick of the newest decodable
// snapshot in dir (ok=false when none exists). Test helper and admin
// surface; it does not check the fingerprint.
func LatestSnapshotTick(dir string) (event.Time, bool) {
	ticks := listSnapshots(dir)
	for i := len(ticks) - 1; i >= 0; i-- {
		if _, err := readSnapshot(filepath.Join(dir, snapName(ticks[i]))); err == nil {
			return ticks[i], true
		}
	}
	return 0, false
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+frameadmin || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("durability: %s: bad snapshot magic", filepath.Base(path))
	}
	off := len(snapMagic)
	plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	body := data[off+frameadmin:]
	if plen != len(body) {
		return nil, fmt.Errorf("durability: %s: snapshot length mismatch", filepath.Base(path))
	}
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("durability: %s: snapshot checksum mismatch", filepath.Base(path))
	}
	d := wire.NewDec(body)
	snap := &Snapshot{
		Tick:        event.Time(d.Varint()),
		Fingerprint: d.String(),
	}
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > uint64(d.Rem()) {
		return nil, fmt.Errorf("durability: %s: section count %d exceeds payload", filepath.Base(path), n)
	}
	snap.Sections = make([]Section, 0, n)
	for i := uint64(0); i < n; i++ {
		key := d.String()
		blob := d.Raw()
		if d.Err() != nil {
			return nil, d.Err()
		}
		// Copy out of the file buffer: sections outlive this read.
		snap.Sections = append(snap.Sections, Section{Key: key, Data: append([]byte(nil), blob...)})
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return snap, nil
}
