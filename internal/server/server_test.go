package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/caesar-cep/caesar/internal/core"
	"github.com/caesar-cep/caesar/internal/model"
)

const serverSrc = `
EVENT Reading(sensor int, temp int, sec int)
EVENT Alarm(sensor int, temp int)

CONTEXT normal DEFAULT
CONTEXT overheated

SWITCH CONTEXT overheated
PATTERN Reading r
WHERE r.temp > 90
CONTEXT normal

SWITCH CONTEXT normal
PATTERN Reading r
WHERE r.temp < 70
CONTEXT overheated

DERIVE Alarm(r.sensor, r.temp)
PATTERN Reading r
CONTEXT overheated
`

func startServer(t *testing.T) (*Server, net.Addr) {
	t.Helper()
	m, err := model.CompileSource(serverSrc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Model:  m,
		Engine: core.Config{PartitionBy: []string{"sensor"}, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	return srv, l.Addr()
}

// session sends the lines and returns every response line.
func session(t *testing.T, addr net.Addr, lines []string) []string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, ln := range lines {
		if _, err := fmt.Fprintln(conn, ln); err != nil {
			t.Fatal(err)
		}
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			t.Fatal(err)
		}
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var out []string
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out
}

func TestServerSession(t *testing.T) {
	_, addr := startServer(t)
	resp := session(t, addr, []string{
		"Reading|1|7|50|1",
		"Reading|2|7|95|2", // switch to overheated
		"Reading|3|7|96|3", // alarm
		"Reading|4|7|92|4", // alarm
		"Reading|5|7|60|5", // alarm, then switch back
		"Reading|6|7|55|6",
	})
	var alarms int
	var stats string
	for _, ln := range resp {
		switch {
		case strings.HasPrefix(ln, "Alarm|"):
			alarms++
		case strings.HasPrefix(ln, "#stats"):
			stats = ln
		}
	}
	if alarms != 3 {
		t.Errorf("alarms = %d, want 3 (response %v)", alarms, resp)
	}
	if !strings.Contains(stats, "events=6") || !strings.Contains(stats, "outputs=3") {
		t.Errorf("stats trailer = %q", stats)
	}
}

func TestServerSessionsIsolated(t *testing.T) {
	srv, addr := startServer(t)
	// Session 1 leaves sensor 7 overheated; session 2 must start in
	// the default context (no alarm for its first normal reading).
	session(t, addr, []string{"Reading|1|7|95|1", "Reading|2|7|96|2"})
	resp := session(t, addr, []string{"Reading|1|7|75|1"})
	for _, ln := range resp {
		if strings.HasPrefix(ln, "Alarm|") {
			t.Errorf("second session inherited context: %v", resp)
		}
	}
	if srv.Sessions() != 2 {
		t.Errorf("sessions = %d", srv.Sessions())
	}
}

func TestServerMalformedInput(t *testing.T) {
	_, addr := startServer(t)
	resp := session(t, addr, []string{"Nope|1|2"})
	joined := strings.Join(resp, "\n")
	if !strings.Contains(joined, "#error") || !strings.Contains(joined, "unknown event type") {
		t.Errorf("malformed input response = %v", resp)
	}
}

func TestServerOutOfOrder(t *testing.T) {
	_, addr := startServer(t)
	resp := session(t, addr, []string{
		"Reading|5|7|50|5",
		"Reading|3|7|50|3",
	})
	if !strings.Contains(strings.Join(resp, "\n"), "out-of-order") {
		t.Errorf("disorder response = %v", resp)
	}
}

func TestNewValidation(t *testing.T) {
	m, err := model.CompileSource(serverSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(Config{Model: m, Engine: core.Config{CollectOutputs: true}}); err == nil {
		t.Error("CollectOutputs accepted")
	}
	if _, err := New(Config{Model: m, Engine: core.Config{ContextIndependent: true, Sharing: true}}); err == nil {
		t.Error("invalid engine config accepted")
	}
}
