// Package server exposes a CAESAR engine over a TCP line protocol:
// each connection is an independent stream session. The client sends
// events in the engine's line format (TypeName|time|values...), the
// server streams derived complex events back in the same format, and
// finishes with a "#stats ..." trailer when the client closes its
// write side.
//
// The trailer is a single line of space-separated key=value fields:
//
//	#stats events=N outputs=N transitions=N partitions=N suspended=N
//	       max_latency=D p99_latency=D ctx:NAME=A/S ... batches=N
//
// where max_latency/p99_latency are Go duration strings over the
// arrival-to-derivation latency distribution, and each ctx:NAME=A/S
// field reports one context type's window activations (A) and
// suspensions (S) summed over all partitions, sorted by context name.
// Clients should ignore fields they do not recognize; new fields are
// only ever appended.
//
// Sessions are isolated: every connection gets a fresh engine run
// (own partitions, context windows and history), so one misbehaving
// stream cannot corrupt another. Events within a connection must be
// in non-decreasing time order, as everywhere in the engine.
//
// The server also exposes its live telemetry over HTTP: AdminHandler
// serves Prometheus /metrics, JSON /statusz and /debug/pprof from the
// shared telemetry registry (see internal/telemetry). All sessions
// publish into one registry; metric families registered per run
// replace their predecessors, so live gauges reflect the most
// recently started session while counters from the final report stay
// scrapeable until then.
package server

import (
	"fmt"
	"net"
	"sort"
	"sync"

	"github.com/caesar-cep/caesar/internal/core"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/runtime"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// Config configures a Server.
type Config struct {
	// Model is the compiled CAESAR model shared by all sessions.
	Model *model.Model
	// Engine is the per-session engine configuration. CollectOutputs
	// and OnOutput are managed by the server and must be unset. When
	// Engine.Telemetry is nil the server creates its own registry; the
	// effective registry is available via Registry/AdminHandler.
	Engine core.Config
}

// Server serves stream sessions.
type Server struct {
	cfg Config
	reg *telemetry.Registry

	mu       sync.Mutex
	sessions int
}

// New validates the configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("server: nil model")
	}
	if cfg.Engine.CollectOutputs || cfg.Engine.OnOutput != nil {
		return nil, fmt.Errorf("server: CollectOutputs/OnOutput are managed per session")
	}
	if cfg.Engine.Telemetry == nil {
		cfg.Engine.Telemetry = telemetry.NewRegistry()
	}
	// Compile once to surface configuration errors before Serve.
	if _, err := core.NewEngine(cfg.Model, cfg.Engine); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, reg: cfg.Engine.Telemetry}, nil
}

// Registry returns the telemetry registry all sessions publish into.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Sessions reports how many sessions have been served or are active.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions
}

// Serve accepts connections until the listener closes. Each
// connection is handled on its own goroutine; Serve returns the
// listener's accept error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.sessions++
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()

	out := event.NewWriter(conn)
	var outMu sync.Mutex
	cfg := s.cfg.Engine
	cfg.OnOutput = func(e *event.Event) {
		outMu.Lock()
		_ = out.Write(e)
		outMu.Unlock()
	}
	eng, err := core.NewEngine(s.cfg.Model, cfg)
	if err != nil {
		fmt.Fprintf(conn, "#error %v\n", err)
		return
	}
	r := event.NewReader(conn, s.cfg.Model.Registry)
	st, err := eng.Run(r)
	outMu.Lock()
	defer outMu.Unlock()
	_ = out.Flush()
	if err != nil {
		fmt.Fprintf(conn, "#error %v\n", err)
		return
	}
	fmt.Fprintf(conn, "#stats events=%d outputs=%d transitions=%d partitions=%d suspended=%d max_latency=%s p99_latency=%s%s batches=%d\n",
		st.Events, st.OutputCount, st.Transitions, st.Partitions,
		st.SuspendedSkips, st.MaxLatency, st.P99Latency, contextFields(st.Contexts),
		st.Batches)
}

// contextFields renders the per-context trailer fields (" ctx:NAME=A/S"
// per context, sorted by name; empty when no windows moved).
func contextFields(ctxs map[string]runtime.ContextStats) string {
	if len(ctxs) == 0 {
		return ""
	}
	names := make([]string, 0, len(ctxs))
	for name := range ctxs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b []byte
	for _, name := range names {
		cs := ctxs[name]
		b = fmt.Appendf(b, " ctx:%s=%d/%d", name, cs.Activations, cs.Suspensions)
	}
	return string(b)
}
