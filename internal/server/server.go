// Package server exposes a CAESAR engine over a TCP line protocol:
// each connection is an independent stream session. The client sends
// events in the engine's line format (TypeName|time|values...), the
// server streams derived complex events back in the same format, and
// finishes with a "#stats ..." trailer when the client closes its
// write side.
//
// Sessions are isolated: every connection gets a fresh engine run
// (own partitions, context windows and history), so one misbehaving
// stream cannot corrupt another. Events within a connection must be
// in non-decreasing time order, as everywhere in the engine.
package server

import (
	"fmt"
	"net"
	"sync"

	"github.com/caesar-cep/caesar/internal/core"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

// Config configures a Server.
type Config struct {
	// Model is the compiled CAESAR model shared by all sessions.
	Model *model.Model
	// Engine is the per-session engine configuration. CollectOutputs
	// and OnOutput are managed by the server and must be unset.
	Engine core.Config
}

// Server serves stream sessions.
type Server struct {
	cfg Config

	mu       sync.Mutex
	sessions int
}

// New validates the configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("server: nil model")
	}
	if cfg.Engine.CollectOutputs || cfg.Engine.OnOutput != nil {
		return nil, fmt.Errorf("server: CollectOutputs/OnOutput are managed per session")
	}
	// Compile once to surface configuration errors before Serve.
	if _, err := core.NewEngine(cfg.Model, cfg.Engine); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg}, nil
}

// Sessions reports how many sessions have been served or are active.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions
}

// Serve accepts connections until the listener closes. Each
// connection is handled on its own goroutine; Serve returns the
// listener's accept error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.sessions++
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()

	out := event.NewWriter(conn)
	var outMu sync.Mutex
	cfg := s.cfg.Engine
	cfg.OnOutput = func(e *event.Event) {
		outMu.Lock()
		_ = out.Write(e)
		outMu.Unlock()
	}
	eng, err := core.NewEngine(s.cfg.Model, cfg)
	if err != nil {
		fmt.Fprintf(conn, "#error %v\n", err)
		return
	}
	r := event.NewReader(conn, s.cfg.Model.Registry)
	st, err := eng.Run(r)
	outMu.Lock()
	defer outMu.Unlock()
	_ = out.Flush()
	if err != nil {
		fmt.Fprintf(conn, "#error %v\n", err)
		return
	}
	fmt.Fprintf(conn, "#stats events=%d outputs=%d transitions=%d partitions=%d suspended=%d max_latency=%s\n",
		st.Events, st.OutputCount, st.Transitions, st.Partitions,
		st.SuspendedSkips, st.MaxLatency)
}
