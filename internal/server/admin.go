package server

import (
	"net"
	"net/http"

	"github.com/caesar-cep/caesar/internal/telemetry"
)

// AdminHandler returns the HTTP handler of the server's admin
// surface — /metrics, /statusz, /tracez, /healthz, /buildz and
// /debug/pprof — backed by the shared telemetry registry, the
// engine's stage tracer and health probes (each endpoint degrades
// gracefully when its backing config is unset; see
// telemetry.NewHandler).
func (s *Server) AdminHandler() http.Handler {
	return telemetry.NewHandler(telemetry.Admin{
		Registry: s.reg,
		Stages:   s.cfg.Engine.Stages,
		Health:   s.cfg.Engine.Health,
		Build:    telemetry.BuildInfo{Config: s.cfg.Engine.Summary()},
	})
}

// ServeAdmin serves the admin surface on l until the listener closes.
// Run it on its own goroutine next to Serve.
func (s *Server) ServeAdmin(l net.Listener) error {
	return http.Serve(l, s.AdminHandler())
}
