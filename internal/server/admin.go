package server

import (
	"net"
	"net/http"

	"github.com/caesar-cep/caesar/internal/telemetry"
)

// AdminHandler returns the HTTP handler of the server's admin
// surface: Prometheus-text /metrics, JSON /statusz and /debug/pprof,
// all backed by the shared telemetry registry.
func (s *Server) AdminHandler() http.Handler { return telemetry.Handler(s.reg) }

// ServeAdmin serves the admin surface on l until the listener closes.
// Run it on its own goroutine next to Serve.
func (s *Server) ServeAdmin(l net.Listener) error {
	return http.Serve(l, s.AdminHandler())
}
