package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAdminScrape runs a stream session and then scrapes the admin
// surface, checking that the session's per-context and latency
// metrics are visible over /metrics and /statusz.
func TestAdminScrape(t *testing.T) {
	srv, addr := startServer(t)
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	resp := session(t, addr, []string{
		"Reading|1|7|50|1",
		"Reading|2|7|95|2", // switch to overheated
		"Reading|3|7|96|3", // alarm
		"Reading|4|7|60|4", // alarm, then switch back
	})
	var stats string
	for _, ln := range resp {
		if strings.HasPrefix(ln, "#stats") {
			stats = ln
		}
	}
	// The extended trailer carries p99 latency and per-context window
	// activity (overheated opened once and closed once).
	if !strings.Contains(stats, "p99_latency=") || !strings.Contains(stats, "ctx:overheated=1/1") {
		t.Errorf("stats trailer = %q", stats)
	}

	body := httpGet(t, admin.URL+"/metrics")
	for _, want := range []string{
		`caesar_context_activations_total{context="overheated"} 1`,
		`caesar_context_suspensions_total{context="overheated"} 1`,
		"caesar_events_total 4",
		`caesar_txn_latency_ns{worker="0",quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	statusz := httpGet(t, admin.URL+"/statusz")
	if !strings.Contains(statusz, "caesar_events_total") {
		t.Errorf("/statusz missing events counter: %s", statusz)
	}

	res, err := http.Get(admin.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
