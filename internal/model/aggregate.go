package model

import (
	"fmt"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
	"github.com/caesar-cep/caesar/internal/predicate"
)

// AggKind enumerates the aggregate functions of the TUMBLE extension
// (see DESIGN.md): one derived event per non-empty tumbling window.
type AggKind int

const (
	// AggLast is a plain (non-aggregate) expression: the value taken
	// from the last match of the window.
	AggLast AggKind = iota
	// AggCount is count(): the number of matches in the window.
	AggCount
	// AggSum sums a numeric (or boolean, widened to 0/1) expression.
	AggSum
	// AggAvg averages a numeric expression (float result).
	AggAvg
	// AggMin takes the minimum.
	AggMin
	// AggMax takes the maximum.
	AggMax
)

// String returns the surface function name.
func (k AggKind) String() string {
	switch k {
	case AggLast:
		return "last"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggKindFromName resolves an aggregate function name.
func AggKindFromName(name string) (AggKind, bool) {
	switch name {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	default:
		return 0, false
	}
}

// AggSpec is one DERIVE argument of a TUMBLE query. Arg is nil for
// AggCount.
type AggSpec struct {
	Kind AggKind
	Arg  *predicate.Compiled
}

// ResultKind returns the statically inferred output kind.
func (s AggSpec) ResultKind() event.Kind {
	switch s.Kind {
	case AggCount:
		return event.KindInt
	case AggAvg:
		return event.KindFloat
	case AggSum:
		if s.Arg.Kind() == event.KindBool {
			return event.KindInt
		}
		return s.Arg.Kind()
	default:
		return s.Arg.Kind()
	}
}

// compileAggs compiles the DERIVE arguments of a TUMBLE query.
func (m *Model) compileAggs(q *Query, d *lang.QueryDecl, out *event.Schema) error {
	for i, arg := range d.Derive.Args {
		spec, err := compileAggArg(arg, q.Env)
		if err != nil {
			return err
		}
		if spec.Arg != nil && negRefs(spec.Arg, q.Pattern) {
			return fmt.Errorf("caesar: %s: DERIVE expression must not reference negated variable", d.Pos)
		}
		if err := validateAggArgKind(spec, d.Pos); err != nil {
			return err
		}
		want := out.Field(i).Kind
		got := spec.ResultKind()
		if want != got && !(want == event.KindFloat && got == event.KindInt) {
			return fmt.Errorf("caesar: %s: DERIVE %s.%s expects %s, aggregate %s yields %s",
				d.Pos, out.Name(), out.Field(i).Name, want, spec.Kind, got)
		}
		q.Aggs = append(q.Aggs, spec)
	}
	return nil
}

func compileAggArg(arg lang.Expr, env *predicate.Env) (AggSpec, error) {
	call, ok := arg.(*lang.CallExpr)
	if !ok {
		c, err := predicate.Compile(arg, env)
		if err != nil {
			return AggSpec{}, err
		}
		return AggSpec{Kind: AggLast, Arg: c}, nil
	}
	kind, ok := AggKindFromName(call.Fn)
	if !ok {
		return AggSpec{}, fmt.Errorf("caesar: %s: unknown aggregate function %q (want count, sum, avg, min or max)", call.Pos, call.Fn)
	}
	if kind == AggCount {
		if call.Arg != nil {
			return AggSpec{}, fmt.Errorf("caesar: %s: count() takes no argument", call.Pos)
		}
		return AggSpec{Kind: AggCount}, nil
	}
	if call.Arg == nil {
		return AggSpec{}, fmt.Errorf("caesar: %s: %s() needs an argument", call.Pos, call.Fn)
	}
	c, err := predicate.Compile(call.Arg, env)
	if err != nil {
		return AggSpec{}, err
	}
	return AggSpec{Kind: kind, Arg: c}, nil
}

func validateAggArgKind(s AggSpec, pos lang.Pos) error {
	if s.Arg == nil || s.Kind == AggLast {
		return nil
	}
	k := s.Arg.Kind()
	ok := k == event.KindInt || k == event.KindFloat ||
		(k == event.KindBool && s.Kind == AggSum) ||
		(k == event.KindString && (s.Kind == AggMin || s.Kind == AggMax))
	if !ok {
		return fmt.Errorf("caesar: %s: %s over %s values is not supported", pos, s.Kind, k)
	}
	return nil
}

// containsAggCall reports whether an expression tree contains an
// aggregate function call.
func containsAggCall(e lang.Expr) bool {
	switch x := e.(type) {
	case *lang.CallExpr:
		return true
	case *lang.UnaryExpr:
		return containsAggCall(x.X)
	case *lang.BinaryExpr:
		return containsAggCall(x.L) || containsAggCall(x.R)
	default:
		return false
	}
}
