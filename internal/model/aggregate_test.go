package model

import (
	"strings"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
)

const aggBase = `
EVENT P(v int, lane string)
EVENT Q(v int)
EVENT S(n int, m float)
CONTEXT c DEFAULT
`

func TestCompileTumbleQuery(t *testing.T) {
	m, err := CompileSource(aggBase + `
DERIVE S(count(), avg(p.v))
PATTERN P p
TUMBLE 60
`)
	if err != nil {
		t.Fatal(err)
	}
	q := m.Queries[0]
	if q.Tumble != 60 {
		t.Errorf("tumble = %d", q.Tumble)
	}
	if len(q.Aggs) != 2 || q.Aggs[0].Kind != AggCount || q.Aggs[1].Kind != AggAvg {
		t.Errorf("aggs = %+v", q.Aggs)
	}
	if q.Args != nil {
		t.Error("plain args set on tumble query")
	}
}

func TestTumbleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"window query", aggBase + "INITIATE CONTEXT c\nPATTERN P p\nTUMBLE 10", "DERIVE queries only"},
		{"agg without tumble", aggBase + "DERIVE Q(count())\nPATTERN P p", "require a TUMBLE"},
		{"unknown fn", aggBase + "DERIVE Q(median(p.v))\nPATTERN P p\nTUMBLE 10", "unknown aggregate"},
		{"count with arg", aggBase + "DERIVE Q(count(p.v))\nPATTERN P p\nTUMBLE 10", "takes no argument"},
		{"sum without arg", aggBase + "DERIVE Q(sum())\nPATTERN P p\nTUMBLE 10", "needs an argument"},
		{"avg of string", aggBase + "DERIVE Q(avg(p.lane))\nPATTERN P p\nTUMBLE 10", "not supported"},
		{"sum of string", aggBase + "DERIVE Q(sum(p.lane))\nPATTERN P p\nTUMBLE 10", "not supported"},
		{"kind mismatch", aggBase + "DERIVE Q(avg(p.v))\nPATTERN P p\nTUMBLE 10", "expects int"},
		{"trailing negation", aggBase + "DERIVE Q(count())\nPATTERN SEQ(P p, NOT Q x)\nWHERE x.v = p.v\nWITHIN 10\nTUMBLE 10", "trailing negation"},
		{"nested call", aggBase + "DERIVE Q(sum(count()))\nPATTERN P p\nTUMBLE 10", "aggregate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompileSource(tc.src)
			if err == nil {
				t.Fatalf("compile accepted:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
}

func TestAggCallInWhereRejected(t *testing.T) {
	_, err := CompileSource(aggBase + "DERIVE Q(p.v)\nPATTERN P p\nWHERE count() > 2")
	if err == nil || !strings.Contains(err.Error(), "TUMBLE") {
		t.Errorf("aggregate in WHERE accepted: %v", err)
	}
}

func TestMinMaxOverStringsAllowed(t *testing.T) {
	src := `
EVENT P(lane string)
EVENT Q(first string)
CONTEXT c DEFAULT
DERIVE Q(min(p.lane))
PATTERN P p
TUMBLE 10
`
	m, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Queries[0].Aggs[0].ResultKind(); got != event.KindString {
		t.Errorf("min(string) kind = %v", got)
	}
}

func TestAggKindNames(t *testing.T) {
	for _, name := range []string{"count", "sum", "avg", "min", "max"} {
		k, ok := AggKindFromName(name)
		if !ok || k.String() != name {
			t.Errorf("AggKindFromName(%q) = %v, %v", name, k, ok)
		}
	}
	if _, ok := AggKindFromName("median"); ok {
		t.Error("unknown aggregate resolved")
	}
	if AggLast.String() != "last" {
		t.Error("AggLast name")
	}
	if !strings.Contains(AggKind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}

func TestSumBoolYieldsInt(t *testing.T) {
	src := `
EVENT P(speed int)
EVENT S(stopped int)
CONTEXT c DEFAULT
DERIVE S(sum(p.speed = 0))
PATTERN P p
TUMBLE 10
`
	m, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Queries[0].Aggs[0].ResultKind(); got != event.KindInt {
		t.Errorf("sum(bool) kind = %v", got)
	}
}
