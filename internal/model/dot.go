package model

import (
	"fmt"
	"sort"
	"strings"

	"github.com/caesar-cep/caesar/internal/lang"
)

// DOT renders the model's context transition network (paper Fig. 1)
// in Graphviz format: one node per context (double circle for the
// default), one edge per context deriving query, and a workload label
// listing each context's processing queries. The paper's visual
// editor is future work; this gives its read-only half.
func (m *Model) DOT() string {
	var b strings.Builder
	b.WriteString("digraph caesar {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse];\n")
	for _, c := range m.Contexts {
		shape := ""
		if c == m.Default {
			shape = ", peripheries=2"
		}
		label := c.Name
		if n := len(c.Processing); n > 0 {
			names := make([]string, 0, n)
			for _, q := range c.Processing {
				names = append(names, deriveLabel(q))
			}
			sort.Strings(names)
			label += "\\n[" + strings.Join(names, ", ") + "]"
		}
		// Labels carry literal \n escapes for Graphviz, so quote by
		// hand rather than with %q (which would escape the backslash).
		fmt.Fprintf(&b, "  %q [label=\"%s\"%s];\n", c.Name, label, shape)
	}
	for _, q := range m.Queries {
		if !q.IsWindowQuery() {
			continue
		}
		label := edgeLabel(q)
		switch q.Action {
		case lang.ActionInitiate:
			for _, src := range q.Contexts {
				fmt.Fprintf(&b, "  %q -> %q [label=%q, style=dashed];\n",
					src.Name, q.Target.Name, "initiate "+label)
			}
		case lang.ActionSwitch:
			for _, src := range q.Contexts {
				fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
					src.Name, q.Target.Name, "switch "+label)
			}
		case lang.ActionTerminate:
			fmt.Fprintf(&b, "  %q -> %q [label=%q, style=dotted];\n",
				q.Target.Name, m.Default.Name, "terminate "+label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func deriveLabel(q *Query) string {
	if q.Out != nil {
		return q.Out.Name()
	}
	return q.Name
}

func edgeLabel(q *Query) string {
	if q.Decl != nil && q.Decl.Where != nil {
		return "if " + q.Decl.Where.String()
	}
	if q.Decl != nil && q.Decl.Pattern != nil {
		return "on " + q.Decl.Pattern.String()
	}
	return q.Name
}
