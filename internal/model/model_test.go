package model

import (
	"strings"
	"testing"

	"github.com/caesar-cep/caesar/internal/lang"
)

const trafficSrc = `
EVENT PositionReport(vid int, xway int, lane int, dir int, seg int, pos int, sec int)
EVENT NewTravelingCar(vid int, xway int, dir int, seg int, lane int, pos int, sec int)
EVENT TollNotification(vid int, sec int, toll int)
EVENT SegStat(seg int, cnt int, avgSpeed float, stopped int, sec int)

CONTEXT clear DEFAULT
CONTEXT congestion
CONTEXT accident

SWITCH CONTEXT congestion
PATTERN SegStat s
WHERE s.cnt > 50 AND s.avgSpeed < 40
CONTEXT clear

SWITCH CONTEXT clear
PATTERN SegStat s
WHERE s.cnt <= 50
CONTEXT congestion

INITIATE CONTEXT accident
PATTERN SegStat s
WHERE s.stopped >= 2
CONTEXT clear, congestion

TERMINATE CONTEXT accident
PATTERN SegStat s
WHERE s.stopped = 0
CONTEXT accident

DERIVE NewTravelingCar(p2.vid, p2.xway, p2.dir, p2.seg, p2.lane, p2.pos, p2.sec)
PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4
CONTEXT congestion

DERIVE TollNotification(p.vid, p.sec, 5)
PATTERN NewTravelingCar p
CONTEXT congestion
`

func compileTraffic(t *testing.T) *Model {
	t.Helper()
	m, err := CompileSource(trafficSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompileTrafficModel(t *testing.T) {
	m := compileTraffic(t)
	if len(m.Contexts) != 3 {
		t.Fatalf("contexts = %d", len(m.Contexts))
	}
	// Alphabetical index order: accident=0, clear=1, congestion=2.
	for i, want := range []string{"accident", "clear", "congestion"} {
		if m.Contexts[i].Name != want || m.Contexts[i].Index != i {
			t.Errorf("context %d = %s/%d, want %s", i, m.Contexts[i].Name, m.Contexts[i].Index, want)
		}
	}
	if m.Default == nil || m.Default.Name != "clear" {
		t.Fatalf("default = %v", m.Default)
	}
	clear, _ := m.ContextByName("clear")
	if clear.Mask() != 1<<1 {
		t.Errorf("clear mask = %b", clear.Mask())
	}
	if len(m.Queries) != 6 {
		t.Fatalf("queries = %d", len(m.Queries))
	}

	// Workload indexing: congestion has 2 deriving (switch-to-clear
	// runs in congestion; initiate-accident runs in clear+congestion)
	// and 2 processing queries.
	cong, _ := m.ContextByName("congestion")
	if len(cong.Deriving) != 2 {
		t.Errorf("congestion deriving = %d", len(cong.Deriving))
	}
	if len(cong.Processing) != 2 {
		t.Errorf("congestion processing = %d", len(cong.Processing))
	}
	acc, _ := m.ContextByName("accident")
	if len(acc.Deriving) != 1 || len(acc.Processing) != 0 {
		t.Errorf("accident workload = %d/%d", len(acc.Deriving), len(acc.Processing))
	}

	// Derivation index.
	if !m.IsDerivedType("NewTravelingCar") || m.IsDerivedType("PositionReport") {
		t.Error("IsDerivedType misreports")
	}
	if qs := m.DerivedBy("TollNotification"); len(qs) != 1 || qs[0].Out.Name() != "TollNotification" {
		t.Errorf("DerivedBy = %v", qs)
	}
}

func TestCompiledQueryShape(t *testing.T) {
	m := compileTraffic(t)
	// Query 4: SEQ(NOT PositionReport p1, PositionReport p2).
	q := m.Queries[4]
	if q.IsWindowQuery() {
		t.Fatal("derive query misclassified")
	}
	if len(q.Pattern.Steps) != 1 || q.Pattern.Steps[0].Var != "p2" {
		t.Fatalf("steps = %+v", q.Pattern.Steps)
	}
	if len(q.Pattern.Negs) != 1 {
		t.Fatalf("negs = %+v", q.Pattern.Negs)
	}
	neg := q.Pattern.Negs[0]
	if neg.Anchor != 0 || neg.Var != "p1" {
		t.Errorf("neg = %+v", neg)
	}
	// WHERE split: p1.sec+30=p2.sec and p1.vid=p2.vid reference the
	// negated var p1 -> negation conditions; p2.lane != 4 -> filter.
	if len(neg.Conds) != 2 {
		t.Errorf("neg conds = %d", len(neg.Conds))
	}
	if len(q.Filters) != 1 {
		t.Errorf("filters = %d", len(q.Filters))
	}
	if got := q.ConsumedTypes(); len(got) != 1 || got[0].Name() != "PositionReport" {
		t.Errorf("consumed = %v", got)
	}
	if q.Produces().Name() != "NewTravelingCar" {
		t.Errorf("produces = %v", q.Produces())
	}

	// Window query: switch carries target context and mask.
	sw := m.Queries[0]
	if !sw.IsWindowQuery() || sw.Target.Name != "congestion" || sw.Produces() != nil {
		t.Errorf("switch query = %+v", sw)
	}
	clear, _ := m.ContextByName("clear")
	if sw.Mask != clear.Mask() {
		t.Errorf("switch mask = %b", sw.Mask)
	}

	init := m.Queries[2]
	cong, _ := m.ContextByName("congestion")
	if init.Mask != clear.Mask()|cong.Mask() {
		t.Errorf("initiate mask = %b", init.Mask)
	}
	if init.Name == "" || !strings.Contains(init.Name, "INITIATE") {
		t.Errorf("query name = %q", init.Name)
	}
}

func TestImpliedDefaultContext(t *testing.T) {
	src := `
EVENT A(x int)
EVENT B(x int)
CONTEXT base DEFAULT
DERIVE B(a.x)
PATTERN A a
`
	m, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	q := m.Queries[0]
	if len(q.Contexts) != 1 || q.Contexts[0].Name != "base" {
		t.Errorf("implied context = %v", q.Contexts)
	}
}

func TestCompileErrors(t *testing.T) {
	base := "EVENT A(x int)\nEVENT B(x int)\nCONTEXT c DEFAULT\nCONTEXT d\n"
	cases := []struct {
		name, src, wantSub string
	}{
		{"no contexts", "EVENT A(x int)\nDERIVE A(1)\nPATTERN A a", "at least one context"},
		{"no default", "EVENT A(x int)\nCONTEXT c\nDERIVE A(1)\nPATTERN A a", "DEFAULT"},
		{"two defaults", "CONTEXT c DEFAULT\nCONTEXT d DEFAULT\n", "multiple default"},
		{"dup context", "CONTEXT c DEFAULT\nCONTEXT c\n", "duplicate context"},
		{"bad attr type", "EVENT A(x int64)\nCONTEXT c DEFAULT\n", "unknown attribute type"},
		{"dup event", "EVENT A(x int)\nEVENT A(y int)\nCONTEXT c DEFAULT\n", "duplicate event type"},
		{"underived type", base + "DERIVE Z(a.x)\nPATTERN A a", "undeclared event type"},
		{"bad arity", base + "DERIVE B(a.x, 2)\nPATTERN A a", "expects 1 attributes"},
		{"bad arg kind", base + "DERIVE B('s')\nPATTERN A a", "expects int"},
		{"unknown pattern type", base + "DERIVE B(1)\nPATTERN Zzz z", "undeclared event type"},
		{"unknown query context", base + "DERIVE B(a.x)\nPATTERN A a\nCONTEXT nope", "undeclared context"},
		{"dup query context", base + "DERIVE B(a.x)\nPATTERN A a\nCONTEXT c, c", "duplicate context"},
		{"unknown target", base + "INITIATE CONTEXT nope\nPATTERN A a", "undeclared context"},
		{"switch into own context", base + "SWITCH CONTEXT d\nPATTERN A a\nCONTEXT c, d", "own target"},
		{"all negated", base + "DERIVE B(1)\nPATTERN SEQ(NOT A a, NOT A b)", "at least one non-negated"},
		{"dup var", base + "DERIVE B(a.x)\nPATTERN SEQ(A a, A a)", "duplicate pattern variable"},
		{"derive reads negation", base + "DERIVE B(n.x)\nPATTERN SEQ(NOT A n, A a)\nWHERE n.x = a.x", "negated variable"},
		{"two negs one conjunct", base + "DERIVE B(a.x)\nPATTERN SEQ(NOT A n1, A a, NOT A n2)\nWHERE n1.x = n2.x", "two negated variables"},
		{"where type error", base + "DERIVE B(a.x)\nPATTERN A a\nWHERE a.x + 1", "boolean"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompileSource(tc.src)
			if err == nil {
				t.Fatalf("compile accepted:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
}

func TestCrossContextDependencyRejected(t *testing.T) {
	src := `
EVENT A(x int)
EVENT B(x int)
EVENT C(x int)
CONTEXT c1 DEFAULT
CONTEXT c2

DERIVE B(a.x)
PATTERN A a
CONTEXT c1

DERIVE C(b.x)
PATTERN B b
CONTEXT c2
`
	_, err := CompileSource(src)
	if err == nil || !strings.Contains(err.Error(), "different contexts") {
		t.Errorf("cross-context dependency accepted: %v", err)
	}
}

func TestCyclicDerivationRejected(t *testing.T) {
	src := `
EVENT A(x int)
EVENT B(x int)
CONTEXT c DEFAULT

DERIVE B(a.x)
PATTERN A a

DERIVE A(b.x)
PATTERN B b
`
	_, err := CompileSource(src)
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cycle accepted: %v", err)
	}
}

func TestTooManyContexts(t *testing.T) {
	var b strings.Builder
	b.WriteString("EVENT A(x int)\n")
	b.WriteString("CONTEXT c0 DEFAULT\n")
	for i := 1; i <= MaxContexts; i++ {
		b.WriteString("CONTEXT c")
		for _, d := range []byte(itoa(i)) {
			b.WriteByte(d)
		}
		b.WriteByte('\n')
	}
	_, err := CompileSource(b.String())
	if err == nil || !strings.Contains(err.Error(), "at most") {
		t.Errorf("context overflow accepted: %v", err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestSyntheticVarNames(t *testing.T) {
	src := `
EVENT A(x int)
EVENT B(x int)
EVENT D(x int)
CONTEXT c DEFAULT
DERIVE B(a.x)
PATTERN SEQ(A a, NOT D)
WITHIN 60
`
	m, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	q := m.Queries[0]
	if q.Within != 60 {
		t.Errorf("within = %d", q.Within)
	}
	if len(q.Pattern.Negs) != 1 || q.Pattern.Negs[0].Var == "" {
		t.Errorf("negation var not synthesized: %+v", q.Pattern.Negs)
	}
	if q.Pattern.Negs[0].Anchor != 1 {
		t.Errorf("trailing negation anchor = %d, want 1", q.Pattern.Negs[0].Anchor)
	}
}

func TestActionAliases(t *testing.T) {
	// lang.Action values used by the model must match expectations.
	if lang.ActionDerive == lang.ActionInitiate {
		t.Fatal("action constants collide")
	}
}
