package model

import (
	"strings"
	"testing"
)

func TestDOT(t *testing.T) {
	m := compileTraffic(t)
	dot := m.DOT()
	for _, want := range []string{
		"digraph caesar",
		`"clear"`, `"congestion"`, `"accident"`,
		"peripheries=2",           // default context
		`"clear" -> "congestion"`, // switch
		"style=dashed",            // initiate
		"style=dotted",            // terminate
		"TollNotification",        // workload label
		"switch",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(dot, "}\n") {
		t.Error("DOT not terminated")
	}
}

func TestDOTMinimalModel(t *testing.T) {
	m, err := CompileSource(`
EVENT A(x int)
EVENT B(x int)
CONTEXT only DEFAULT
DERIVE B(a.x)
PATTERN A a
`)
	if err != nil {
		t.Fatal(err)
	}
	dot := m.DOT()
	if !strings.Contains(dot, `"only"`) || !strings.Contains(dot, "B") {
		t.Errorf("minimal DOT:\n%s", dot)
	}
}
