// Package model resolves a parsed CAESAR file (internal/lang) into a
// validated, compiled CAESAR model (paper Def. 4): the set of context
// types with a default context, and the context-aware event queries
// associated with each context, with all event types, pattern
// variables and predicates resolved and type-checked.
package model

import (
	"fmt"
	"sort"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
	"github.com/caesar-cep/caesar/internal/predicate"
)

// MaxContexts bounds the number of context types: the runtime keeps
// the set of current context windows in a single machine word
// (paper §5.1: "context bit vector ... one bit for each context
// type").
const MaxContexts = 64

// Context is one application context type (paper Def. 1). Index is
// the context's bit position in the context bit vector; contexts are
// indexed in alphabetical name order for the constant-time lookup the
// paper describes (§6.2).
type Context struct {
	Name    string
	Index   int
	Default bool

	// Deriving are the window queries associated with this context
	// (they run while a window of this context holds).
	Deriving []*Query
	// Processing are the DERIVE queries associated with this context.
	Processing []*Query
}

// Mask returns the bit mask with only this context's bit set.
func (c *Context) Mask() uint64 { return 1 << uint(c.Index) }

// Step is one positive step of a compiled pattern.
type Step struct {
	Schema *event.Schema
	Var    string
	// Slot is the variable's position in the query's predicate
	// environment (and in match bindings).
	Slot int
}

// Negation is one negated pattern atom: no event of Schema may occur
// between positive step Anchor-1 and positive step Anchor. Anchor==0
// places the negation before the first positive step; Anchor==len
// (steps) after the last. Conds are the WHERE conjuncts referencing
// the negated variable; an event only invalidates a match if it
// satisfies all of them.
//
// When some condition is an equi-join between an attribute of the
// negated event and an expression over positive variables (e.g.
// p1.vid = p2.vid), HashField/HashProbe record it so the pattern
// operator can index its negation buffer by that attribute instead
// of scanning it (HashProbe is nil when no such condition exists).
type Negation struct {
	Schema *event.Schema
	Var    string
	Slot   int
	Anchor int
	Conds  []*predicate.Compiled

	HashField int
	HashProbe *predicate.Compiled
}

// Pattern is a compiled PATTERN clause: the positive SEQ steps in
// order plus anchored negations.
type Pattern struct {
	Steps []Step
	Negs  []Negation
}

// Query is a compiled context-aware event query (paper Def. 3).
type Query struct {
	ID     int
	Name   string // diagnostic label: "q3(DERIVE TollNotification)"
	Action lang.Action

	// Target is the context initiated/switched-to/terminated by a
	// window query; nil for DERIVE queries.
	Target *Context

	// Out is the derived event schema and Args its attribute
	// expressions (DERIVE queries; nil otherwise).
	Out  *event.Schema
	Args []*predicate.Compiled

	// Tumble is the tumbling aggregation window width (TUMBLE
	// extension; 0 = plain derivation) and Aggs the aggregate
	// specifications of the DERIVE arguments (set only when Tumble >
	// 0; Args is then nil).
	Tumble int64
	Aggs   []AggSpec

	Pattern *Pattern
	Env     *predicate.Env

	// Filters are WHERE conjuncts over positive variables only, each
	// annotated with the variable slots it reads so the matcher can
	// evaluate it as early as possible.
	Filters []*predicate.Compiled

	// Contexts are the context windows this query operates in, and
	// Mask their combined bit mask.
	Contexts []*Context
	Mask     uint64

	// Within is the pattern matching horizon in time units: a partial
	// match older than this never completes. It is taken from the
	// query's WITHIN clause or derived from timestamp-pinning WHERE
	// conjuncts; 0 means "engine default".
	Within int64

	// Decl is the source declaration, for diagnostics.
	Decl *lang.QueryDecl
}

// IsWindowQuery reports whether the query derives a context window
// transition rather than a complex event.
func (q *Query) IsWindowQuery() bool { return q.Action != lang.ActionDerive }

// Produces returns the schema of events this query emits into the
// stream, or nil for window queries.
func (q *Query) Produces() *event.Schema { return q.Out }

// ConsumedTypes returns the schemas of the positive pattern steps.
func (q *Query) ConsumedTypes() []*event.Schema {
	out := make([]*event.Schema, len(q.Pattern.Steps))
	for i, s := range q.Pattern.Steps {
		out[i] = s.Schema
	}
	return out
}

// Model is the compiled CAESAR model (paper Def. 4): input/output
// streams are implicit; C is Contexts with default Default.
type Model struct {
	Registry *event.Registry
	Contexts []*Context // alphabetical by name; Index = position
	Default  *Context
	Queries  []*Query

	byName map[string]*Context
	// derivedBy maps an event type name to the queries producing it.
	derivedBy map[string][]*Query
}

// ContextByName resolves a context type.
func (m *Model) ContextByName(name string) (*Context, bool) {
	c, ok := m.byName[name]
	return c, ok
}

// DerivedBy returns the queries that produce events of the named
// type; external (source) types return nil.
func (m *Model) DerivedBy(typeName string) []*Query { return m.derivedBy[typeName] }

// IsDerivedType reports whether events of the named type are produced
// by some query (vs. arriving on the input stream).
func (m *Model) IsDerivedType(typeName string) bool { return len(m.derivedBy[typeName]) > 0 }

// Compile resolves and validates a parsed file into a Model.
func Compile(f *lang.File) (*Model, error) {
	m := &Model{
		Registry:  event.NewRegistry(),
		byName:    make(map[string]*Context),
		derivedBy: make(map[string][]*Query),
	}
	if err := m.compileSchemas(f); err != nil {
		return nil, err
	}
	if err := m.compileContexts(f); err != nil {
		return nil, err
	}
	for i := range f.Queries {
		q, err := m.compileQuery(&f.Queries[i], i)
		if err != nil {
			return nil, err
		}
		m.Queries = append(m.Queries, q)
	}
	m.indexWorkloads()
	if err := m.validateDependencies(); err != nil {
		return nil, err
	}
	return m, nil
}

// CompileSource parses and compiles a model from source text.
func CompileSource(src string) (*Model, error) {
	f, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

func (m *Model) compileSchemas(f *lang.File) error {
	for _, d := range f.Schemas {
		fields := make([]event.Field, len(d.Fields))
		for i, fd := range d.Fields {
			kind, ok := event.KindFromName(fd.Type)
			if !ok {
				return fmt.Errorf("caesar: %s: unknown attribute type %q (want int, float, string or bool)", d.Pos, fd.Type)
			}
			fields[i] = event.Field{Name: fd.Name, Kind: kind}
		}
		s, err := event.NewSchema(d.Name, fields)
		if err != nil {
			return fmt.Errorf("caesar: %s: %w", d.Pos, err)
		}
		if err := m.Registry.Register(s); err != nil {
			return fmt.Errorf("caesar: %s: %w", d.Pos, err)
		}
	}
	return nil
}

func (m *Model) compileContexts(f *lang.File) error {
	if len(f.Contexts) == 0 {
		return fmt.Errorf("caesar: a model must declare at least one context (the default)")
	}
	if len(f.Contexts) > MaxContexts {
		return fmt.Errorf("caesar: at most %d context types are supported, got %d", MaxContexts, len(f.Contexts))
	}
	// Alphabetical order gives stable bit vector indices (§6.2).
	decls := append([]lang.ContextDecl(nil), f.Contexts...)
	sort.Slice(decls, func(i, j int) bool { return decls[i].Name < decls[j].Name })
	for i, d := range decls {
		if _, dup := m.byName[d.Name]; dup {
			return fmt.Errorf("caesar: %s: duplicate context %q", d.Pos, d.Name)
		}
		c := &Context{Name: d.Name, Index: i, Default: d.Default}
		m.Contexts = append(m.Contexts, c)
		m.byName[d.Name] = c
		if d.Default {
			if m.Default != nil {
				return fmt.Errorf("caesar: %s: multiple default contexts (%q and %q)", d.Pos, m.Default.Name, d.Name)
			}
			m.Default = c
		}
	}
	if m.Default == nil {
		return fmt.Errorf("caesar: exactly one context must be declared DEFAULT")
	}
	return nil
}

func (m *Model) compileQuery(d *lang.QueryDecl, id int) (*Query, error) {
	q := &Query{ID: id, Action: d.Action, Decl: d, Within: d.Within}
	switch d.Action {
	case lang.ActionDerive:
		q.Name = fmt.Sprintf("q%d(DERIVE %s)", id, d.Derive.Type)
	default:
		q.Name = fmt.Sprintf("q%d(%s CONTEXT %s)", id, d.Action, d.Target)
	}

	// Resolve the pattern into positive steps and anchored negations.
	env := predicate.NewEnv()
	pat, err := compilePattern(d.Pattern, m.Registry, env, d.Pos)
	if err != nil {
		return nil, err
	}
	q.Pattern = pat
	q.Env = env

	// Split WHERE into positive filters and negation conditions.
	if err := q.attachWhere(d); err != nil {
		return nil, err
	}

	// DERIVE head.
	if d.Action == lang.ActionDerive {
		out, ok := m.Registry.Lookup(d.Derive.Type)
		if !ok {
			return nil, fmt.Errorf("caesar: %s: DERIVE of undeclared event type %q", d.Pos, d.Derive.Type)
		}
		if len(d.Derive.Args) != out.NumFields() {
			return nil, fmt.Errorf("caesar: %s: %s expects %d attributes, DERIVE supplies %d",
				d.Pos, out.Name(), out.NumFields(), len(d.Derive.Args))
		}
		q.Out = out
		if d.Tumble > 0 {
			q.Tumble = d.Tumble
			for _, neg := range pat.Negs {
				if neg.Anchor == len(pat.Steps) {
					return nil, fmt.Errorf("caesar: %s: TUMBLE cannot be combined with a trailing negation (its matches emit after their window closed)", d.Pos)
				}
			}
			if err := m.compileAggs(q, d, out); err != nil {
				return nil, err
			}
		} else {
			for i, arg := range d.Derive.Args {
				if containsAggCall(arg) {
					return nil, fmt.Errorf("caesar: %s: aggregate functions require a TUMBLE clause", arg.ExprPos())
				}
				c, err := predicate.Compile(arg, env)
				if err != nil {
					return nil, err
				}
				want := out.Field(i).Kind
				if !assignableKind(want, c.Kind()) {
					return nil, fmt.Errorf("caesar: %s: DERIVE %s.%s expects %s, expression has %s",
						d.Pos, out.Name(), out.Field(i).Name, want, c.Kind())
				}
				if negRefs(c, pat) {
					return nil, fmt.Errorf("caesar: %s: DERIVE expression must not reference negated variable", d.Pos)
				}
				q.Args = append(q.Args, c)
			}
		}
	} else {
		if d.Tumble > 0 {
			return nil, fmt.Errorf("caesar: %s: TUMBLE applies to DERIVE queries only", d.Pos)
		}
		target, ok := m.byName[d.Target]
		if !ok {
			return nil, fmt.Errorf("caesar: %s: %s of undeclared context %q", d.Pos, d.Action, d.Target)
		}
		q.Target = target
	}

	// CONTEXT clause; empty means implied default context (made
	// explicit here — plan generation phase 1, §4.2).
	names := d.Contexts
	if len(names) == 0 {
		names = []string{m.Default.Name}
	}
	seen := map[string]bool{}
	for _, n := range names {
		c, ok := m.byName[n]
		if !ok {
			return nil, fmt.Errorf("caesar: %s: query refers to undeclared context %q", d.Pos, n)
		}
		if seen[n] {
			return nil, fmt.Errorf("caesar: %s: duplicate context %q in CONTEXT clause", d.Pos, n)
		}
		seen[n] = true
		q.Contexts = append(q.Contexts, c)
		q.Mask |= c.Mask()
	}
	if d.Action == lang.ActionSwitch && seen[d.Target] {
		return nil, fmt.Errorf("caesar: %s: SWITCH CONTEXT %s cannot run within its own target context", d.Pos, d.Target)
	}
	return q, nil
}

func assignableKind(field, expr event.Kind) bool {
	return field == expr || (field == event.KindFloat && expr == event.KindInt)
}

// negRefs reports whether a compiled expression reads any negated
// variable slot of the pattern.
func negRefs(c *predicate.Compiled, pat *Pattern) bool {
	for _, n := range pat.Negs {
		if c.Vars().Has(n.Slot) {
			return true
		}
	}
	return false
}

func compilePattern(node lang.PatternNode, reg *event.Registry, env *predicate.Env, qpos lang.Pos) (*Pattern, error) {
	pat := &Pattern{}
	var atoms []*lang.PatternEvent
	var flatten func(n lang.PatternNode)
	flatten = func(n lang.PatternNode) {
		switch x := n.(type) {
		case *lang.PatternEvent:
			atoms = append(atoms, x)
		case *lang.PatternSeq:
			for _, p := range x.Parts {
				flatten(p)
			}
		}
	}
	flatten(node)
	if len(atoms) == 0 {
		return nil, fmt.Errorf("caesar: %s: empty pattern", qpos)
	}
	synth := 0
	for _, a := range atoms {
		schema, ok := reg.Lookup(a.Type)
		if !ok {
			return nil, fmt.Errorf("caesar: %s: pattern refers to undeclared event type %q", a.Pos, a.Type)
		}
		name := a.Var
		if name == "" {
			name = fmt.Sprintf("_%d", synth)
			synth++
		}
		slot, err := env.Add(name, schema)
		if err != nil {
			return nil, fmt.Errorf("caesar: %s: %w", a.Pos, err)
		}
		if a.Negated {
			pat.Negs = append(pat.Negs, Negation{
				Schema: schema, Var: name, Slot: slot, Anchor: len(pat.Steps),
			})
		} else {
			pat.Steps = append(pat.Steps, Step{Schema: schema, Var: name, Slot: slot})
		}
	}
	if len(pat.Steps) == 0 {
		return nil, fmt.Errorf("caesar: %s: pattern needs at least one non-negated event", qpos)
	}
	return pat, nil
}

// attachWhere compiles the WHERE clause: conjuncts over positive
// variables become filters; a conjunct referencing exactly one
// negated variable becomes that negation's condition; conjuncts
// referencing two negated variables are not supported.
func (q *Query) attachWhere(d *lang.QueryDecl) error {
	if d.Where == nil {
		return nil
	}
	negSlots := map[int]*Negation{}
	for i := range q.Pattern.Negs {
		n := &q.Pattern.Negs[i]
		negSlots[n.Slot] = n
	}
	for _, conj := range predicate.Conjuncts(d.Where) {
		c, err := predicate.CompileBool(conj, q.Env)
		if err != nil {
			return err
		}
		var owner *Negation
		count := 0
		for slot, n := range negSlots {
			if c.Vars().Has(slot) {
				owner = n
				count++
			}
		}
		switch count {
		case 0:
			q.Filters = append(q.Filters, c)
		case 1:
			owner.Conds = append(owner.Conds, c)
			if owner.HashProbe == nil {
				q.tryHashCond(owner, conj)
			}
		default:
			return fmt.Errorf("caesar: %s: WHERE conjunct %s relates two negated variables; not supported",
				conj.ExprPos(), conj.String())
		}
	}
	return nil
}

// tryHashCond recognizes an equi-join between the negated variable
// and the positive variables in the conjunct and records it on the
// negation for buffer indexing. Failure to recognize is fine — the
// pattern falls back to scanning.
func (q *Query) tryHashCond(neg *Negation, conj lang.Expr) {
	b, ok := conj.(*lang.BinaryExpr)
	if !ok || b.Op != lang.OpEq {
		return
	}
	try := func(refSide, probeSide lang.Expr) bool {
		ref, ok := refSide.(*lang.AttrRef)
		if !ok || ref.Var != neg.Var {
			return false
		}
		field := neg.Schema.FieldIndex(ref.Attr)
		if field < 0 {
			return false
		}
		probe, err := predicate.Compile(probeSide, q.Env)
		if err != nil || probe.Vars().Has(neg.Slot) {
			return false
		}
		// Map-key equality is exact per kind; a probe of a different
		// kind than the indexed field (int vs. float) would miss
		// buckets that Value.Equal would match.
		if probe.Kind() != neg.Schema.Field(field).Kind {
			return false
		}
		// The probe must read positive variables only: slots of other
		// negations would be nil in the binding.
		for i := range q.Pattern.Negs {
			if probe.Vars().Has(q.Pattern.Negs[i].Slot) {
				return false
			}
		}
		neg.HashField = field
		neg.HashProbe = probe
		return true
	}
	if try(b.L, b.R) {
		return
	}
	try(b.R, b.L)
}

func (m *Model) indexWorkloads() {
	for _, q := range m.Queries {
		for _, c := range q.Contexts {
			if q.IsWindowQuery() {
				c.Deriving = append(c.Deriving, q)
			} else {
				c.Processing = append(c.Processing, q)
			}
		}
		if q.Out != nil {
			m.derivedBy[q.Out.Name()] = append(m.derivedBy[q.Out.Name()], q)
		}
	}
}

// validateDependencies enforces the paper's §3.3 assumption 1: event
// queries associated with different contexts are independent. When a
// query consumes a type derived by another query, the producer must
// be associated with (at least) every context of the consumer — the
// producer then runs whenever the consumer does, and the combined
// query plan stays within one context workload (§4.2). It also
// rejects cyclic derivations.
func (m *Model) validateDependencies() error {
	for _, q := range m.Queries {
		for _, s := range q.Pattern.Steps {
			for _, producer := range m.derivedBy[s.Schema.Name()] {
				if producer.Mask&q.Mask != q.Mask {
					return fmt.Errorf("caesar: %s consumes %s derived by %s, which is suspended in some of the consumer's contexts; queries in different contexts must be independent",
						q.Name, s.Schema.Name(), producer.Name)
				}
			}
		}
	}
	// Cycle detection over the derives-consumes graph.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int)
	var visit func(q *Query) error
	visit = func(q *Query) error {
		switch color[q.ID] {
		case gray:
			return fmt.Errorf("caesar: cyclic event derivation involving %s", q.Name)
		case black:
			return nil
		}
		color[q.ID] = gray
		for _, s := range q.Pattern.Steps {
			for _, producer := range m.derivedBy[s.Schema.Name()] {
				if err := visit(producer); err != nil {
					return err
				}
			}
		}
		color[q.ID] = black
		return nil
	}
	for _, q := range m.Queries {
		if err := visit(q); err != nil {
			return err
		}
	}
	return nil
}
