package predicate

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
)

// lowerEnv builds a two-variable environment with int, float, string
// and bool attributes for exercising every lowering path.
func lowerEnv(t *testing.T) (*Env, *event.Schema) {
	t.Helper()
	s := event.MustSchema("E",
		event.Field{Name: "i", Kind: event.KindInt},
		event.Field{Name: "f", Kind: event.KindFloat},
		event.Field{Name: "s", Kind: event.KindString},
		event.Field{Name: "b", Kind: event.KindBool},
	)
	env := NewEnv()
	if _, err := env.Add("x", s); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Add("y", s); err != nil {
		t.Fatal(err)
	}
	return env, s
}

func compileSrc(t *testing.T, env *Env, src string) *Compiled {
	t.Helper()
	e, err := lang.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := Compile(e, env)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c
}

func TestLoweredComparisonFastPaths(t *testing.T) {
	env, s := lowerEnv(t)
	x := event.MustNew(s, 1, event.Int64(10), event.Float64(2.5), event.String("aa"), event.Bool(true))
	y := event.MustNew(s, 2, event.Int64(10), event.Float64(7.5), event.String("bb"), event.Bool(false))
	b := []*event.Event{x, y}

	cases := []struct {
		src  string
		want bool
	}{
		// int attr vs int attr (equi-join shape)
		{"x.i = y.i", true},
		{"x.i != y.i", false},
		{"x.i < y.i", false},
		{"x.i <= y.i", true},
		// int attr vs const (threshold shape), both orientations
		{"x.i > 5", true},
		{"x.i >= 10", true},
		{"x.i < 10", false},
		{"5 < x.i", true},
		{"10 <= x.i", true},
		{"15 > x.i", true},
		{"10 = x.i", true},
		{"11 != x.i", true},
		// float thresholds, int/float mixing
		{"x.f < 3.0", true},
		{"x.f > y.f", false},
		{"x.i > 2.5", true},
		{"2.5 < x.i", true},
		{"x.f = 2.5", true},
		// strings and bools take the generic path
		{"x.s < y.s", true},
		{"x.s = y.s", false},
		{"x.b != y.b", true},
		// arithmetic feeding comparisons
		{"x.i + 5 = 15", true},
		{"x.i * 2 > y.i", true},
		{"-x.i < 0", true},
		{"x.f + y.f = 10.0", true},
	}
	for _, tc := range cases {
		c := compileSrc(t, env, tc.src)
		if got := c.EvalBool(b); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestLoweredConstantFolding(t *testing.T) {
	env, _ := lowerEnv(t)
	cases := []struct {
		src  string
		want event.Value
	}{
		{"1 + 2 * 3", event.Int64(7)},
		{"10 / 4", event.Int64(2)},
		{"10.0 / 4", event.Float64(2.5)},
		{"-(2 + 3)", event.Int64(-5)},
		{"1 < 2", event.Bool(true)},
		{"1 = 2", event.Bool(false)},
	}
	for _, tc := range cases {
		c := compileSrc(t, env, tc.src)
		if c.Vars() != 0 {
			t.Errorf("%s: vars = %v, want none", tc.src, c.Vars())
		}
		// A folded constant must evaluate without touching the binding.
		if got := c.Eval(nil); !got.Equal(tc.want) {
			t.Errorf("%s = %#v, want %#v", tc.src, got, tc.want)
		}
	}
	// Folded division by zero yields the invalid (falsy) value but
	// keeps its static kind for downstream type checks.
	c := compileSrc(t, env, "1 / 0")
	if c.Kind() != event.KindInt {
		t.Errorf("1/0 kind = %v, want int", c.Kind())
	}
	if v := c.Eval(nil); !v.IsZero() {
		t.Errorf("1/0 = %#v, want invalid", v)
	}
}

func TestLoweredLogicalReduction(t *testing.T) {
	env, s := lowerEnv(t)
	x := event.MustNew(s, 1, event.Int64(10), event.Float64(2.5), event.String("aa"), event.Bool(true))
	b := []*event.Event{x, x}
	cases := []struct {
		src  string
		want bool
	}{
		{"1 = 1 AND x.i > 5", true},  // const-true AND reduces to right side
		{"1 = 2 AND x.i > 5", false}, // const-false AND folds to false
		{"x.i > 5 AND 1 = 1", true},
		{"1 = 1 OR x.i > 99", true}, // const-true OR folds to true
		{"1 = 2 OR x.i > 5", true},
		{"x.i > 99 OR x.f < 3.0", true},
		{"x.i > 99 AND x.f < 3.0", false},
	}
	for _, tc := range cases {
		c := compileSrc(t, env, tc.src)
		if got := c.EvalBool(b); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

// TestLoweredInvalidValueSemantics pins the fast paths to the generic
// evaluator's handling of the invalid Value: never equal, never
// ordered, != is true.
func TestLoweredInvalidValueSemantics(t *testing.T) {
	env, s := lowerEnv(t)
	// Build an event whose int attribute holds the invalid Value, as a
	// derived event does when a DERIVE argument divided by zero.
	x := event.MustNew(s, 1, event.Int64(0), event.Float64(0), event.String(""), event.Bool(false))
	x.Values[0] = event.Value{}
	x.Values[1] = event.Value{}
	b := []*event.Event{x, x}
	cases := []struct {
		src  string
		want bool
	}{
		{"x.i = 0", false},
		{"x.i != 0", true},
		{"x.i < 1", false},
		{"x.i > -1", false},
		{"x.i = y.i", false}, // invalid on both sides: still not equal
		{"x.f < 1.0", false},
		{"x.f != 0.0", true},
	}
	for _, tc := range cases {
		c := compileSrc(t, env, tc.src)
		if got := c.EvalBool(b); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

// TestLoweredIntInFloatField pins the float fast path over an int
// Value stored in a float-typed field (event.New permits this).
func TestLoweredIntInFloatField(t *testing.T) {
	env, s := lowerEnv(t)
	x := event.MustNew(s, 1, event.Int64(1), event.Int64(3), event.String(""), event.Bool(false))
	b := []*event.Event{x, x}
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{"x.f = 3.0", true},
		{"x.f > 2.5", true},
		{"x.f < 3.5", true},
	} {
		c := compileSrc(t, env, tc.src)
		if got := c.EvalBool(b); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}
