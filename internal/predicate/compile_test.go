package predicate

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
)

var (
	prSchema = event.MustSchema("PositionReport",
		event.Field{Name: "vid", Kind: event.KindInt},
		event.Field{Name: "seg", Kind: event.KindInt},
		event.Field{Name: "speed", Kind: event.KindFloat},
		event.Field{Name: "lane", Kind: event.KindString},
		event.Field{Name: "sec", Kind: event.KindInt},
	)
	statSchema = event.MustSchema("SegStat",
		event.Field{Name: "cnt", Kind: event.KindInt},
		event.Field{Name: "avg", Kind: event.KindFloat},
		event.Field{Name: "busy", Kind: event.KindBool},
	)
)

func env2(t *testing.T) *Env {
	t.Helper()
	env := NewEnv()
	if _, err := env.Add("p1", prSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Add("p2", prSchema); err != nil {
		t.Fatal(err)
	}
	return env
}

func pr(t event.Time, vid, seg int64, speed float64, lane string) *event.Event {
	return event.MustNew(prSchema, t,
		event.Int64(vid), event.Int64(seg), event.Float64(speed),
		event.String(lane), event.Int64(int64(t)))
}

func mustCompile(t *testing.T, src string, env *Env) *Compiled {
	t.Helper()
	e, err := lang.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(e, env)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEnvValidation(t *testing.T) {
	env := NewEnv()
	if _, err := env.Add("", prSchema); err == nil {
		t.Error("empty variable name accepted")
	}
	if _, err := env.Add("p", prSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Add("p", prSchema); err == nil {
		t.Error("duplicate variable accepted")
	}
	if env.Len() != 1 || env.Name(0) != "p" || env.Schema(0) != prSchema {
		t.Error("accessors broken")
	}
}

func TestEvalComparisonsAndJoins(t *testing.T) {
	env := env2(t)
	a := pr(30, 7, 3, 55, "travel")
	b := pr(60, 7, 3, 50, "exit")
	c := mustCompile(t, "p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 'exit'", env)
	if c.EvalBool([]*event.Event{a, b}) {
		t.Error("exit lane should fail the predicate")
	}
	b2 := pr(60, 7, 3, 50, "travel")
	if !c.EvalBool([]*event.Event{a, b2}) {
		t.Error("matching pair should pass")
	}
	b3 := pr(61, 7, 3, 50, "travel")
	if c.EvalBool([]*event.Event{a, b3}) {
		t.Error("sec+30 mismatch should fail")
	}
	if c.Vars() != VarSet(0).With(0).With(1) {
		t.Errorf("Vars = %b", c.Vars())
	}
}

func TestEvalArithmetic(t *testing.T) {
	env := NewEnv()
	env.Add("p", prSchema)
	e := pr(10, 6, 2, 45.5, "travel")
	cases := []struct {
		src  string
		want event.Value
	}{
		{"p.vid + 1", event.Int64(7)},
		{"p.vid - 10", event.Int64(-4)},
		{"p.vid * p.seg", event.Int64(12)},
		{"p.vid / p.seg", event.Int64(3)},
		{"p.speed * 2", event.Float64(91)},
		{"p.vid + p.speed", event.Float64(51.5)},
		{"-p.vid", event.Int64(-6)},
		{"-p.speed", event.Float64(-45.5)},
		{"7 / 2", event.Int64(3)},
		{"7.0 / 2", event.Float64(3.5)},
	}
	for _, tc := range cases {
		c := mustCompile(t, tc.src, env)
		got := c.Eval([]*event.Event{e})
		if !got.Equal(tc.want) || got.Kind != tc.want.Kind {
			t.Errorf("%s = %#v, want %#v", tc.src, got, tc.want)
		}
	}
}

func TestDivisionByZeroIsUnsatisfied(t *testing.T) {
	env := NewEnv()
	env.Add("p", prSchema)
	e := pr(10, 6, 0, 0, "travel")
	c := mustCompile(t, "p.vid / p.seg = 3", env)
	if c.EvalBool([]*event.Event{e}) {
		t.Error("division by zero must not satisfy a predicate")
	}
	cf := mustCompile(t, "p.speed / p.seg > 0", env)
	if cf.EvalBool([]*event.Event{e}) {
		t.Error("float division by zero must not satisfy a predicate")
	}
}

func TestShortCircuit(t *testing.T) {
	// p.seg = 0, so the division in the right conjunct would be
	// invalid; short-circuiting must prevent it from mattering.
	env := NewEnv()
	env.Add("p", prSchema)
	e := pr(10, 6, 0, 0, "x")
	c := mustCompile(t, "p.seg > 0 AND p.vid / p.seg = 1", env)
	if c.EvalBool([]*event.Event{e}) {
		t.Error("false AND ... must be false")
	}
	c2 := mustCompile(t, "p.seg = 0 OR p.vid / p.seg = 1", env)
	if !c2.EvalBool([]*event.Event{e}) {
		t.Error("true OR ... must be true")
	}
}

func TestCompileErrors(t *testing.T) {
	env := env2(t)
	cases := []struct {
		src, wantSub string
	}{
		{"p9.vid = 1", "unknown pattern variable"},
		{"p1.nope = 1", "no attribute"},
		{"p1.lane + 1 = 2", "numeric operands"},
		{"p1.lane AND p2.lane", "boolean operands"},
		{"p1.vid = p2.lane", "cannot compare"},
		{"-p1.lane = 'x'", "numeric operand"},
		{"vid = 1", "ambiguous"},
		{"nothere = 1", "no pattern variable has attribute"},
	}
	for _, tc := range cases {
		e, err := lang.ParseExpr(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.src, err)
		}
		if _, err := Compile(e, env); err == nil {
			t.Errorf("%s: compile accepted", tc.src)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q missing %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestCompileBoolRejectsNonBool(t *testing.T) {
	env := env2(t)
	e, _ := lang.ParseExpr("p1.vid + 1")
	if _, err := CompileBool(e, env); err == nil {
		t.Error("numeric WHERE accepted")
	}
	e2, _ := lang.ParseExpr("p1.vid > 1")
	if _, err := CompileBool(e2, env); err != nil {
		t.Error(err)
	}
}

func TestBareAttributeResolution(t *testing.T) {
	env := NewEnv()
	env.Add("p", prSchema)
	env.Add("s", statSchema)
	// "cnt" exists only on SegStat, "vid" only on PositionReport:
	// both resolve despite two variables being in scope.
	c := mustCompile(t, "cnt > 2 AND vid = 7", env)
	p := pr(10, 7, 1, 10, "x")
	s := event.MustNew(statSchema, 10, event.Int64(3), event.Float64(1), event.Bool(true))
	if !c.EvalBool([]*event.Event{p, s}) {
		t.Error("bare attributes misresolved")
	}
}

func TestBoolFieldComparison(t *testing.T) {
	env := NewEnv()
	env.Add("s", statSchema)
	s := event.MustNew(statSchema, 10, event.Int64(3), event.Float64(1), event.Bool(true))
	c := mustCompile(t, "s.busy = true", env)
	if !c.EvalBool([]*event.Event{s}) {
		t.Error("bool equality failed")
	}
	c2 := mustCompile(t, "s.busy != false", env)
	if !c2.EvalBool([]*event.Event{s}) {
		t.Error("bool inequality failed")
	}
}

func TestFreeVars(t *testing.T) {
	e, _ := lang.ParseExpr("p2.sec = p1.sec + 30 AND seg > 1 AND p1.vid = 1")
	got := FreeVars(e)
	if len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Errorf("FreeVars = %v", got)
	}
	if vs := FreeVars(&lang.ConstExpr{Val: event.Int64(1)}); len(vs) != 0 {
		t.Error("const has free vars")
	}
}

// TestEvalMatchesDirectInterpretation is the property test comparing
// the compiled evaluator against a trivial reference interpreter on
// randomly generated comparison predicates.
func TestEvalMatchesDirectInterpretation(t *testing.T) {
	env := NewEnv()
	env.Add("p", prSchema)
	f := func(vid, seg int16, speed float64, thr int16, pick uint8) bool {
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		op := ops[int(pick)%len(ops)]
		src := "p.vid " + op + " " + itoa(int64(thr))
		e, err := lang.ParseExpr(src)
		if err != nil {
			return false
		}
		c, err := Compile(e, env)
		if err != nil {
			return false
		}
		ev := pr(1, int64(vid), int64(seg), speed, "l")
		got := c.EvalBool([]*event.Event{ev})
		var want bool
		a, b := int64(vid), int64(thr)
		switch op {
		case "=":
			want = a == b
		case "!=":
			want = a != b
		case "<":
			want = a < b
		case "<=":
			want = a <= b
		case ">":
			want = a > b
		case ">=":
			want = a >= b
		}
		return got == want
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func itoa(n int64) string {
	if n < 0 {
		return "0 - " + itoa(-n) // parser has no negative literals in all positions; build via subtraction
	}
	digits := "0123456789"
	if n < 10 {
		return string(digits[n])
	}
	return itoa(n/10) + string(digits[n%10])
}

func BenchmarkEvalConjunction(b *testing.B) {
	env := NewEnv()
	env.Add("p1", prSchema)
	env.Add("p2", prSchema)
	e, err := lang.ParseExpr("p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 'exit'")
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compile(e, env)
	if err != nil {
		b.Fatal(err)
	}
	a := pr(30, 7, 3, 55, "travel")
	bb := pr(60, 7, 3, 50, "travel")
	binding := []*event.Event{a, bb}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.EvalBool(binding) {
			b.Fatal("predicate false")
		}
	}
}
