package predicate

import (
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
)

// This file is the lowering pass: it turns a type-checked expression
// into fused evaluation closures. The previous evaluator walked an
// interface-dispatched node tree (one dynamic call per operator per
// event); the lowered form is a single closure per expression with
//
//   - constant folding: a subexpression reading no variables is
//     evaluated once at compile time and becomes a constant;
//   - typed comparison fast paths: int/int and numeric comparisons
//     between attribute/constant leaves compile to direct reads of
//     Value.Int / Value.AsFloat with a one-branch kind guard,
//     skipping Value.Equal / Value.Compare entirely — this covers
//     the equi-join and threshold conjuncts that dominate pattern
//     WHERE clauses;
//   - boolean fusion: AND/OR chains compose bool closures directly,
//     so no intermediate Value is materialized between conjuncts.
//
// The dynamic kind guards keep the lowered closures semantically
// identical to the generic evaluator: an attribute can hold the
// invalid Value (e.g. a derived event whose argument divided by
// zero), and a float-typed field can hold an int Value, so a fast
// path only commits when the runtime kinds match its static
// expectation and otherwise falls back to the generic comparison.

// evalFn evaluates an expression against a binding.
type evalFn func(b []*event.Event) event.Value

// boolFn evaluates a boolean expression against a binding.
type boolFn func(b []*event.Event) bool

// lowered is a compiled subexpression: its closure forms plus the
// static facts the parent lowering step specializes on.
type lowered struct {
	fn   evalFn
	bfn  boolFn // non-nil iff kind == KindBool
	kind event.Kind
	vars VarSet

	// isConst marks a folded constant (vars == 0); cv is its value.
	isConst bool
	cv      event.Value

	// attr describes an attribute-reference leaf (slot/field); the
	// comparison lowering fuses loads for these.
	attr *attrLeaf
}

type attrLeaf struct {
	slot, field int
}

func lowerConst(v event.Value) lowered {
	l := lowered{kind: v.Kind, isConst: true, cv: v}
	l.fn = func([]*event.Event) event.Value { return v }
	if v.Kind == event.KindBool {
		t := v.AsBool()
		l.bfn = func([]*event.Event) bool { return t }
	}
	return l
}

func lowerAttr(slot, field int, kind event.Kind) lowered {
	l := lowered{kind: kind, vars: VarSet(0).With(slot), attr: &attrLeaf{slot: slot, field: field}}
	l.fn = func(b []*event.Event) event.Value { return b[slot].Values[field] }
	if kind == event.KindBool {
		l.bfn = func(b []*event.Event) bool { return b[slot].Values[field].AsBool() }
	}
	return l
}

func lowerNeg(x lowered) lowered {
	if x.isConst {
		c := lowerConst(negValue(x.cv))
		c.kind = x.kind
		return c
	}
	xf := x.fn
	return lowered{
		kind: x.kind,
		vars: x.vars,
		fn:   func(b []*event.Event) event.Value { return negValue(xf(b)) },
	}
}

func negValue(v event.Value) event.Value {
	switch v.Kind {
	case event.KindInt:
		return event.Int64(-v.Int)
	case event.KindFloat:
		return event.Float64(-v.Float)
	default:
		return event.Value{}
	}
}

// lowerBinary lowers op over two lowered operands. kind is the
// statically checked result kind.
func lowerBinary(op lang.Op, l, r lowered, kind event.Kind) lowered {
	// Constant folding: both sides constant means the whole node is.
	// The folded value may be invalid (e.g. 1/0) — keep the statically
	// checked kind so downstream kind checks see the declared type.
	if l.isConst && r.isConst {
		c := lowerConst(genericBinary(op, l.cv, r.cv))
		c.kind = kind
		return c
	}
	vars := l.vars | r.vars
	switch op {
	case lang.OpAnd:
		lb, rb := l.bfn, r.bfn
		// A constant conjunct reduces the AND to the other side (or
		// to false, handled by the fold above when both are const).
		if l.isConst {
			if !l.cv.AsBool() {
				return lowerConst(event.Bool(false))
			}
			return boolLowered(rb, vars)
		}
		if r.isConst {
			if !r.cv.AsBool() {
				// Left side must still run? No: AND is pure, the
				// result is false regardless; predicates have no
				// side effects.
				return lowerConst(event.Bool(false))
			}
			return boolLowered(lb, vars)
		}
		return boolLowered(func(b []*event.Event) bool { return lb(b) && rb(b) }, vars)
	case lang.OpOr:
		lb, rb := l.bfn, r.bfn
		if l.isConst {
			if l.cv.AsBool() {
				return lowerConst(event.Bool(true))
			}
			return boolLowered(rb, vars)
		}
		if r.isConst {
			if r.cv.AsBool() {
				return lowerConst(event.Bool(true))
			}
			return boolLowered(lb, vars)
		}
		return boolLowered(func(b []*event.Event) bool { return lb(b) || rb(b) }, vars)
	case lang.OpEq, lang.OpNeq, lang.OpLt, lang.OpLeq, lang.OpGt, lang.OpGeq:
		return boolLowered(lowerCompare(op, l, r), vars)
	default: // arithmetic
		return lowerArith(op, l, r, kind, vars)
	}
}

func boolLowered(bf boolFn, vars VarSet) lowered {
	return lowered{
		kind: event.KindBool,
		vars: vars,
		bfn:  bf,
		fn:   func(b []*event.Event) event.Value { return event.Bool(bf(b)) },
	}
}

// lowerCompare builds the comparison closure, specializing the
// int/int and numeric cases on fused attribute/constant loads.
func lowerCompare(op lang.Op, l, r lowered) boolFn {
	// Normalize `const OP attr` to `attr flipped-OP const` so the
	// leaf specializations below only need one orientation.
	if l.isConst && r.attr != nil {
		l, r = r, l
		op = flipOp(op)
	}
	lf, rf := l.fn, r.fn
	// Typed fast paths: both operands statically int. Attribute loads
	// are fused into a single closure; the kind guard covers invalid
	// Values (and keeps Eq/Neq semantics: an invalid value is never
	// equal to anything).
	if l.kind == event.KindInt && r.kind == event.KindInt {
		if l.attr != nil && r.attr != nil {
			return intAttrAttr(op, l.attr, r.attr)
		}
		if l.attr != nil && r.isConst {
			return intAttrConst(op, l.attr, r.cv.Int)
		}
		return intCompare(op, lf, rf)
	}
	// Numeric mixed (at least one float): compare as float64 after a
	// Numeric guard, exactly like Value.Compare's numeric path.
	if numericKind(l.kind) && numericKind(r.kind) {
		if l.attr != nil && r.isConst {
			return floatAttrConst(op, l.attr, r.cv.AsFloat())
		}
		return floatCompare(op, lf, rf)
	}
	// Generic: string/bool equality and ordering via Value methods.
	switch op {
	case lang.OpEq:
		return func(b []*event.Event) bool { return lf(b).Equal(rf(b)) }
	case lang.OpNeq:
		return func(b []*event.Event) bool { return !lf(b).Equal(rf(b)) }
	default:
		return func(b []*event.Event) bool {
			cmp, ok := lf(b).Compare(rf(b))
			return ok && cmpHolds(op, cmp)
		}
	}
}

func numericKind(k event.Kind) bool { return k == event.KindInt || k == event.KindFloat }

// flipOp mirrors a comparison so its operands can swap sides.
func flipOp(op lang.Op) lang.Op {
	switch op {
	case lang.OpLt:
		return lang.OpGt
	case lang.OpLeq:
		return lang.OpGeq
	case lang.OpGt:
		return lang.OpLt
	case lang.OpGeq:
		return lang.OpLeq
	default: // Eq/Neq are symmetric
		return op
	}
}

// intAttrAttr is the equi-join fast path: `x.a OP y.b` over two int
// attributes compiles to one closure with two direct loads.
func intAttrAttr(op lang.Op, la, ra *attrLeaf) boolFn {
	ls, lf, rs, rf := la.slot, la.field, ra.slot, ra.field
	switch op {
	case lang.OpEq:
		return func(b []*event.Event) bool {
			lv, rv := b[ls].Values[lf], b[rs].Values[rf]
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int == rv.Int
		}
	case lang.OpNeq:
		return func(b []*event.Event) bool {
			lv, rv := b[ls].Values[lf], b[rs].Values[rf]
			return !(lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int == rv.Int)
		}
	case lang.OpLt:
		return func(b []*event.Event) bool {
			lv, rv := b[ls].Values[lf], b[rs].Values[rf]
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int < rv.Int
		}
	case lang.OpLeq:
		return func(b []*event.Event) bool {
			lv, rv := b[ls].Values[lf], b[rs].Values[rf]
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int <= rv.Int
		}
	case lang.OpGt:
		return func(b []*event.Event) bool {
			lv, rv := b[ls].Values[lf], b[rs].Values[rf]
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int > rv.Int
		}
	default: // OpGeq
		return func(b []*event.Event) bool {
			lv, rv := b[ls].Values[lf], b[rs].Values[rf]
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int >= rv.Int
		}
	}
}

// intAttrConst is the int threshold fast path: `x.a OP c`.
func intAttrConst(op lang.Op, la *attrLeaf, c int64) boolFn {
	s, f := la.slot, la.field
	switch op {
	case lang.OpEq:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Kind == event.KindInt && v.Int == c
		}
	case lang.OpNeq:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return !(v.Kind == event.KindInt && v.Int == c)
		}
	case lang.OpLt:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Kind == event.KindInt && v.Int < c
		}
	case lang.OpLeq:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Kind == event.KindInt && v.Int <= c
		}
	case lang.OpGt:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Kind == event.KindInt && v.Int > c
		}
	default: // OpGeq
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Kind == event.KindInt && v.Int >= c
		}
	}
}

// floatAttrConst is the numeric threshold fast path over a float (or
// int-in-float) attribute: `x.a OP c`.
func floatAttrConst(op lang.Op, la *attrLeaf, c float64) boolFn {
	s, f := la.slot, la.field
	switch op {
	case lang.OpEq:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Numeric() && v.AsFloat() == c
		}
	case lang.OpNeq:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return !(v.Numeric() && v.AsFloat() == c)
		}
	case lang.OpLt:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Numeric() && v.AsFloat() < c
		}
	case lang.OpLeq:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Numeric() && v.AsFloat() <= c
		}
	case lang.OpGt:
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Numeric() && v.AsFloat() > c
		}
	default: // OpGeq
		return func(b []*event.Event) bool {
			v := b[s].Values[f]
			return v.Numeric() && v.AsFloat() >= c
		}
	}
}

func intCompare(op lang.Op, lf, rf evalFn) boolFn {
	switch op {
	case lang.OpEq:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int == rv.Int
		}
	case lang.OpNeq:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return !(lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int == rv.Int)
		}
	case lang.OpLt:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int < rv.Int
		}
	case lang.OpLeq:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int <= rv.Int
		}
	case lang.OpGt:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int > rv.Int
		}
	default: // OpGeq
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Kind == event.KindInt && rv.Kind == event.KindInt && lv.Int >= rv.Int
		}
	}
}

func floatCompare(op lang.Op, lf, rf evalFn) boolFn {
	switch op {
	case lang.OpEq:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Numeric() && rv.Numeric() && lv.AsFloat() == rv.AsFloat()
		}
	case lang.OpNeq:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return !(lv.Numeric() && rv.Numeric() && lv.AsFloat() == rv.AsFloat())
		}
	case lang.OpLt:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Numeric() && rv.Numeric() && lv.AsFloat() < rv.AsFloat()
		}
	case lang.OpLeq:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Numeric() && rv.Numeric() && lv.AsFloat() <= rv.AsFloat()
		}
	case lang.OpGt:
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Numeric() && rv.Numeric() && lv.AsFloat() > rv.AsFloat()
		}
	default: // OpGeq
		return func(b []*event.Event) bool {
			lv, rv := lf(b), rf(b)
			return lv.Numeric() && rv.Numeric() && lv.AsFloat() >= rv.AsFloat()
		}
	}
}

func cmpHolds(op lang.Op, cmp int) bool {
	switch op {
	case lang.OpLt:
		return cmp < 0
	case lang.OpLeq:
		return cmp <= 0
	case lang.OpGt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// lowerArith builds the arithmetic closure. Statically int/int
// operations run on Value.Int with a kind guard; anything involving a
// float widens once. Division by zero yields the invalid Value (the
// predicate is then simply unsatisfied), matching arith.
func lowerArith(op lang.Op, l, r lowered, kind event.Kind, vars VarSet) lowered {
	lf, rf := l.fn, r.fn
	var fn evalFn
	if l.kind == event.KindInt && r.kind == event.KindInt {
		switch op {
		case lang.OpAdd:
			fn = func(b []*event.Event) event.Value {
				lv, rv := lf(b), rf(b)
				if lv.Kind == event.KindInt && rv.Kind == event.KindInt {
					return event.Int64(lv.Int + rv.Int)
				}
				return genericBinary(op, lv, rv)
			}
		case lang.OpSub:
			fn = func(b []*event.Event) event.Value {
				lv, rv := lf(b), rf(b)
				if lv.Kind == event.KindInt && rv.Kind == event.KindInt {
					return event.Int64(lv.Int - rv.Int)
				}
				return genericBinary(op, lv, rv)
			}
		case lang.OpMul:
			fn = func(b []*event.Event) event.Value {
				lv, rv := lf(b), rf(b)
				if lv.Kind == event.KindInt && rv.Kind == event.KindInt {
					return event.Int64(lv.Int * rv.Int)
				}
				return genericBinary(op, lv, rv)
			}
		default: // OpDiv
			fn = func(b []*event.Event) event.Value {
				lv, rv := lf(b), rf(b)
				if lv.Kind == event.KindInt && rv.Kind == event.KindInt {
					if rv.Int == 0 {
						return event.Value{}
					}
					return event.Int64(lv.Int / rv.Int)
				}
				return genericBinary(op, lv, rv)
			}
		}
	} else {
		fn = func(b []*event.Event) event.Value { return genericBinary(op, lf(b), rf(b)) }
	}
	return lowered{kind: kind, vars: vars, fn: fn}
}

// genericBinary is the unspecialized evaluator for one binary
// operation over already-evaluated operands; the fast-path closures
// fall back to it when runtime kinds diverge from the static ones,
// and constant folding uses it at compile time.
func genericBinary(op lang.Op, l, r event.Value) event.Value {
	switch op {
	case lang.OpAnd:
		return event.Bool(l.AsBool() && r.AsBool())
	case lang.OpOr:
		return event.Bool(l.AsBool() || r.AsBool())
	case lang.OpEq:
		return event.Bool(l.Equal(r))
	case lang.OpNeq:
		return event.Bool(!l.Equal(r))
	case lang.OpLt, lang.OpLeq, lang.OpGt, lang.OpGeq:
		cmp, ok := l.Compare(r)
		if !ok {
			return event.Bool(false)
		}
		return event.Bool(cmpHolds(op, cmp))
	default:
		return arith(op, l, r)
	}
}
