// Package predicate compiles WHERE/DERIVE expressions of the CAESAR
// language into efficiently evaluable closures, and analyzes
// predicates at compile time: conjunct splitting for incremental
// pattern matching, and threshold subsumption for context window
// bound ordering (paper §3.3 Def. 2, §5.3).
package predicate

import (
	"fmt"
	"sort"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
)

// Env is the variable environment an expression is compiled against:
// the pattern variables of a query in pattern order. Bare attribute
// references resolve against the unique variable that has the
// attribute; ambiguity is a compile error.
type Env struct {
	names   []string
	schemas []*event.Schema
}

// NewEnv builds an environment. Variable names must be unique and
// non-empty.
func NewEnv() *Env { return &Env{} }

// Add appends a variable binding and returns its index.
func (e *Env) Add(name string, s *event.Schema) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("predicate: empty variable name")
	}
	for _, n := range e.names {
		if n == name {
			return 0, fmt.Errorf("predicate: duplicate pattern variable %q", name)
		}
	}
	e.names = append(e.names, name)
	e.schemas = append(e.schemas, s)
	return len(e.names) - 1, nil
}

// Len returns the number of variables.
func (e *Env) Len() int { return len(e.names) }

// Name returns the i-th variable name.
func (e *Env) Name(i int) string { return e.names[i] }

// Schema returns the i-th variable schema.
func (e *Env) Schema(i int) *event.Schema { return e.schemas[i] }

// index returns the slot of a named variable, or -1.
func (e *Env) index(name string) int {
	for i, n := range e.names {
		if n == name {
			return i
		}
	}
	return -1
}

// VarSet is a bitmask over environment variable slots (max 64
// pattern variables per query, far beyond any realistic pattern).
type VarSet uint64

// Has reports whether slot i is in the set.
func (s VarSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// With returns the set with slot i added.
func (s VarSet) With(i int) VarSet { return s | (1 << uint(i)) }

// SubsetOf reports whether every slot of s is in t.
func (s VarSet) SubsetOf(t VarSet) bool { return s&^t == 0 }

// Count returns the number of slots in the set.
func (s VarSet) Count() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Compiled is an expression compiled against an Env: a fused
// evaluation closure built by the lowering pass (lower.go) plus the
// expression's static facts. Eval is allocation-free on the hot path.
type Compiled struct {
	fn   evalFn
	bfn  boolFn // boolean root, or a fn+AsBool wrapper otherwise
	kind event.Kind
	vars VarSet
	src  string

	// joinL/joinR are the independently compiled sides of a top-level
	// equality (`L = R`), or nil for any other expression shape. The
	// pattern automaton uses them to evaluate each side of an
	// equi-join against a partially bound environment (hash keying).
	joinL, joinR *Compiled
}

// EquiJoin returns the two sides of a top-level equality predicate,
// each compiled as a standalone expression, and ok=true; for any
// other expression shape ok is false.
func (c *Compiled) EquiJoin() (l, r *Compiled, ok bool) {
	if c.joinL == nil || c.joinR == nil {
		return nil, nil, false
	}
	return c.joinL, c.joinR, true
}

// Kind returns the statically inferred result kind.
func (c *Compiled) Kind() event.Kind { return c.kind }

// Vars returns the set of environment slots the expression reads.
func (c *Compiled) Vars() VarSet { return c.vars }

// String returns the source rendering of the compiled expression.
func (c *Compiled) String() string { return c.src }

// Eval evaluates against a binding: binding[i] is the event bound to
// environment slot i. Slots the expression does not read may be nil.
func (c *Compiled) Eval(binding []*event.Event) event.Value {
	return c.fn(binding)
}

// EvalBool evaluates a boolean expression.
func (c *Compiled) EvalBool(binding []*event.Event) bool {
	return c.bfn(binding)
}

// arith performs numeric arithmetic. Two integers yield an integer
// (with Go integer division); any float operand widens to float.
// Division by zero yields the invalid Value, which is falsy and never
// equal to anything, so predicates containing it are simply
// unsatisfied rather than crashing the stream.
func arith(op lang.Op, l, r event.Value) event.Value {
	if !l.Numeric() || !r.Numeric() {
		return event.Value{}
	}
	if l.Kind == event.KindInt && r.Kind == event.KindInt {
		switch op {
		case lang.OpAdd:
			return event.Int64(l.Int + r.Int)
		case lang.OpSub:
			return event.Int64(l.Int - r.Int)
		case lang.OpMul:
			return event.Int64(l.Int * r.Int)
		case lang.OpDiv:
			if r.Int == 0 {
				return event.Value{}
			}
			return event.Int64(l.Int / r.Int)
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case lang.OpAdd:
		return event.Float64(a + b)
	case lang.OpSub:
		return event.Float64(a - b)
	case lang.OpMul:
		return event.Float64(a * b)
	case lang.OpDiv:
		if b == 0 {
			return event.Value{}
		}
		return event.Float64(a / b)
	}
	return event.Value{}
}

// Compile type-checks and compiles an expression against env.
func Compile(e lang.Expr, env *Env) (*Compiled, error) {
	n, err := compileNode(e, env)
	if err != nil {
		return nil, err
	}
	bfn := n.bfn
	if bfn == nil {
		fn := n.fn
		bfn = func(b []*event.Event) bool { return fn(b).AsBool() }
	}
	c := &Compiled{fn: n.fn, bfn: bfn, kind: n.kind, vars: n.vars, src: e.String()}
	// Decompose a top-level equality into its sides so equi-join
	// consumers can key on either one. Both sides compiled fine a
	// moment ago as subexpressions, so errors are impossible here;
	// guard anyway and simply skip the decomposition.
	if x, ok := e.(*lang.BinaryExpr); ok && x.Op == lang.OpEq {
		if l, err := Compile(x.L, env); err == nil {
			if r, err := Compile(x.R, env); err == nil {
				c.joinL, c.joinR = l, r
			}
		}
	}
	return c, nil
}

// CompileBool compiles an expression that must be boolean (a WHERE
// clause).
func CompileBool(e lang.Expr, env *Env) (*Compiled, error) {
	c, err := Compile(e, env)
	if err != nil {
		return nil, err
	}
	if c.kind != event.KindBool {
		return nil, fmt.Errorf("predicate: %s: WHERE expression must be boolean, got %s", e.ExprPos(), c.kind)
	}
	return c, nil
}

func compileNode(e lang.Expr, env *Env) (lowered, error) {
	switch x := e.(type) {
	case *lang.ConstExpr:
		return lowerConst(x.Val), nil
	case *lang.AttrRef:
		slot, field, kind, err := resolveAttr(x, env)
		if err != nil {
			return lowered{}, err
		}
		return lowerAttr(slot, field, kind), nil
	case *lang.UnaryExpr:
		n, err := compileNode(x.X, env)
		if err != nil {
			return lowered{}, err
		}
		if n.kind != event.KindInt && n.kind != event.KindFloat {
			return lowered{}, fmt.Errorf("predicate: %s: unary minus needs numeric operand, got %s", x.Pos, n.kind)
		}
		return lowerNeg(n), nil
	case *lang.BinaryExpr:
		l, err := compileNode(x.L, env)
		if err != nil {
			return lowered{}, err
		}
		r, err := compileNode(x.R, env)
		if err != nil {
			return lowered{}, err
		}
		kind, err := resultKind(x, l.kind, r.kind)
		if err != nil {
			return lowered{}, err
		}
		return lowerBinary(x.Op, l, r, kind), nil
	case *lang.CallExpr:
		return lowered{}, fmt.Errorf("predicate: %s: aggregate %s() is only allowed in the DERIVE arguments of a TUMBLE query", x.Pos, x.Fn)
	default:
		return lowered{}, fmt.Errorf("predicate: unknown expression node %T", e)
	}
}

func resultKind(x *lang.BinaryExpr, lk, rk event.Kind) (event.Kind, error) {
	numeric := func(k event.Kind) bool { return k == event.KindInt || k == event.KindFloat }
	switch {
	case x.Op.Logical():
		if lk != event.KindBool || rk != event.KindBool {
			return 0, fmt.Errorf("predicate: %s: %s needs boolean operands, got %s and %s", x.Pos, x.Op, lk, rk)
		}
		return event.KindBool, nil
	case x.Op.Comparison():
		comparable := (numeric(lk) && numeric(rk)) || (lk == rk)
		if !comparable {
			return 0, fmt.Errorf("predicate: %s: cannot compare %s with %s", x.Pos, lk, rk)
		}
		if (lk == event.KindString || lk == event.KindBool) && x.Op != lang.OpEq && x.Op != lang.OpNeq && lk != rk {
			return 0, fmt.Errorf("predicate: %s: cannot order %s with %s", x.Pos, lk, rk)
		}
		return event.KindBool, nil
	default: // arithmetic
		if !numeric(lk) || !numeric(rk) {
			return 0, fmt.Errorf("predicate: %s: %s needs numeric operands, got %s and %s", x.Pos, x.Op, lk, rk)
		}
		if lk == event.KindFloat || rk == event.KindFloat {
			return event.KindFloat, nil
		}
		return event.KindInt, nil
	}
}

func resolveAttr(x *lang.AttrRef, env *Env) (slot, field int, kind event.Kind, err error) {
	if x.Var != "" {
		slot = env.index(x.Var)
		if slot < 0 {
			return 0, 0, 0, fmt.Errorf("predicate: %s: unknown pattern variable %q", x.Pos, x.Var)
		}
		s := env.Schema(slot)
		field = s.FieldIndex(x.Attr)
		if field < 0 {
			return 0, 0, 0, fmt.Errorf("predicate: %s: event type %s has no attribute %q", x.Pos, s.Name(), x.Attr)
		}
		return slot, field, s.Field(field).Kind, nil
	}
	// Bare attribute: resolve against the unique variable having it.
	found := -1
	for i := 0; i < env.Len(); i++ {
		if env.Schema(i).FieldIndex(x.Attr) >= 0 {
			if found >= 0 {
				return 0, 0, 0, fmt.Errorf("predicate: %s: attribute %q is ambiguous (use var.attr)", x.Pos, x.Attr)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, 0, 0, fmt.Errorf("predicate: %s: no pattern variable has attribute %q", x.Pos, x.Attr)
	}
	s := env.Schema(found)
	field = s.FieldIndex(x.Attr)
	return found, field, s.Field(field).Kind, nil
}

// FreeVars returns the names of the pattern variables an expression
// references, sorted. Bare attribute references contribute no names.
func FreeVars(e lang.Expr) []string {
	set := map[string]bool{}
	var walk func(lang.Expr)
	walk = func(e lang.Expr) {
		switch x := e.(type) {
		case *lang.AttrRef:
			if x.Var != "" {
				set[x.Var] = true
			}
		case *lang.UnaryExpr:
			walk(x.X)
		case *lang.BinaryExpr:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
