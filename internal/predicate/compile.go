// Package predicate compiles WHERE/DERIVE expressions of the CAESAR
// language into efficiently evaluable closures, and analyzes
// predicates at compile time: conjunct splitting for incremental
// pattern matching, and threshold subsumption for context window
// bound ordering (paper §3.3 Def. 2, §5.3).
package predicate

import (
	"fmt"
	"sort"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
)

// Env is the variable environment an expression is compiled against:
// the pattern variables of a query in pattern order. Bare attribute
// references resolve against the unique variable that has the
// attribute; ambiguity is a compile error.
type Env struct {
	names   []string
	schemas []*event.Schema
}

// NewEnv builds an environment. Variable names must be unique and
// non-empty.
func NewEnv() *Env { return &Env{} }

// Add appends a variable binding and returns its index.
func (e *Env) Add(name string, s *event.Schema) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("predicate: empty variable name")
	}
	for _, n := range e.names {
		if n == name {
			return 0, fmt.Errorf("predicate: duplicate pattern variable %q", name)
		}
	}
	e.names = append(e.names, name)
	e.schemas = append(e.schemas, s)
	return len(e.names) - 1, nil
}

// Len returns the number of variables.
func (e *Env) Len() int { return len(e.names) }

// Name returns the i-th variable name.
func (e *Env) Name(i int) string { return e.names[i] }

// Schema returns the i-th variable schema.
func (e *Env) Schema(i int) *event.Schema { return e.schemas[i] }

// index returns the slot of a named variable, or -1.
func (e *Env) index(name string) int {
	for i, n := range e.names {
		if n == name {
			return i
		}
	}
	return -1
}

// VarSet is a bitmask over environment variable slots (max 64
// pattern variables per query, far beyond any realistic pattern).
type VarSet uint64

// Has reports whether slot i is in the set.
func (s VarSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// With returns the set with slot i added.
func (s VarSet) With(i int) VarSet { return s | (1 << uint(i)) }

// SubsetOf reports whether every slot of s is in t.
func (s VarSet) SubsetOf(t VarSet) bool { return s&^t == 0 }

// Count returns the number of slots in the set.
func (s VarSet) Count() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Compiled is an expression compiled against an Env. Eval is
// allocation-free on the hot path.
type Compiled struct {
	root node
	kind event.Kind
	vars VarSet
	src  string
}

// Kind returns the statically inferred result kind.
func (c *Compiled) Kind() event.Kind { return c.kind }

// Vars returns the set of environment slots the expression reads.
func (c *Compiled) Vars() VarSet { return c.vars }

// String returns the source rendering of the compiled expression.
func (c *Compiled) String() string { return c.src }

// Eval evaluates against a binding: binding[i] is the event bound to
// environment slot i. Slots the expression does not read may be nil.
func (c *Compiled) Eval(binding []*event.Event) event.Value {
	return c.root.eval(binding)
}

// EvalBool evaluates a boolean expression.
func (c *Compiled) EvalBool(binding []*event.Event) bool {
	return c.root.eval(binding).AsBool()
}

// node is a compiled expression node.
type node interface {
	eval(binding []*event.Event) event.Value
}

type constNode struct{ v event.Value }

func (n constNode) eval([]*event.Event) event.Value { return n.v }

type attrNode struct {
	slot  int
	field int
}

func (n attrNode) eval(b []*event.Event) event.Value { return b[n.slot].At(n.field) }

type negNode struct{ x node }

func (n negNode) eval(b []*event.Event) event.Value {
	v := n.x.eval(b)
	switch v.Kind {
	case event.KindInt:
		return event.Int64(-v.Int)
	case event.KindFloat:
		return event.Float64(-v.Float)
	default:
		return event.Value{}
	}
}

type binNode struct {
	op   lang.Op
	l, r node
}

func (n binNode) eval(b []*event.Event) event.Value {
	switch n.op {
	case lang.OpAnd:
		// Short-circuit: right side is skipped when left is false.
		if !n.l.eval(b).AsBool() {
			return event.Bool(false)
		}
		return event.Bool(n.r.eval(b).AsBool())
	case lang.OpOr:
		if n.l.eval(b).AsBool() {
			return event.Bool(true)
		}
		return event.Bool(n.r.eval(b).AsBool())
	}
	l, r := n.l.eval(b), n.r.eval(b)
	switch n.op {
	case lang.OpEq:
		return event.Bool(l.Equal(r))
	case lang.OpNeq:
		return event.Bool(!l.Equal(r))
	case lang.OpLt, lang.OpLeq, lang.OpGt, lang.OpGeq:
		cmp, ok := l.Compare(r)
		if !ok {
			return event.Bool(false)
		}
		switch n.op {
		case lang.OpLt:
			return event.Bool(cmp < 0)
		case lang.OpLeq:
			return event.Bool(cmp <= 0)
		case lang.OpGt:
			return event.Bool(cmp > 0)
		default:
			return event.Bool(cmp >= 0)
		}
	case lang.OpAdd, lang.OpSub, lang.OpMul, lang.OpDiv:
		return arith(n.op, l, r)
	default:
		return event.Value{}
	}
}

// arith performs numeric arithmetic. Two integers yield an integer
// (with Go integer division); any float operand widens to float.
// Division by zero yields the invalid Value, which is falsy and never
// equal to anything, so predicates containing it are simply
// unsatisfied rather than crashing the stream.
func arith(op lang.Op, l, r event.Value) event.Value {
	if !l.Numeric() || !r.Numeric() {
		return event.Value{}
	}
	if l.Kind == event.KindInt && r.Kind == event.KindInt {
		switch op {
		case lang.OpAdd:
			return event.Int64(l.Int + r.Int)
		case lang.OpSub:
			return event.Int64(l.Int - r.Int)
		case lang.OpMul:
			return event.Int64(l.Int * r.Int)
		case lang.OpDiv:
			if r.Int == 0 {
				return event.Value{}
			}
			return event.Int64(l.Int / r.Int)
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case lang.OpAdd:
		return event.Float64(a + b)
	case lang.OpSub:
		return event.Float64(a - b)
	case lang.OpMul:
		return event.Float64(a * b)
	case lang.OpDiv:
		if b == 0 {
			return event.Value{}
		}
		return event.Float64(a / b)
	}
	return event.Value{}
}

// Compile type-checks and compiles an expression against env.
func Compile(e lang.Expr, env *Env) (*Compiled, error) {
	n, kind, vars, err := compileNode(e, env)
	if err != nil {
		return nil, err
	}
	return &Compiled{root: n, kind: kind, vars: vars, src: e.String()}, nil
}

// CompileBool compiles an expression that must be boolean (a WHERE
// clause).
func CompileBool(e lang.Expr, env *Env) (*Compiled, error) {
	c, err := Compile(e, env)
	if err != nil {
		return nil, err
	}
	if c.kind != event.KindBool {
		return nil, fmt.Errorf("predicate: %s: WHERE expression must be boolean, got %s", e.ExprPos(), c.kind)
	}
	return c, nil
}

func compileNode(e lang.Expr, env *Env) (node, event.Kind, VarSet, error) {
	switch x := e.(type) {
	case *lang.ConstExpr:
		return constNode{v: x.Val}, x.Val.Kind, 0, nil
	case *lang.AttrRef:
		slot, field, kind, err := resolveAttr(x, env)
		if err != nil {
			return nil, 0, 0, err
		}
		return attrNode{slot: slot, field: field}, kind, VarSet(0).With(slot), nil
	case *lang.UnaryExpr:
		n, kind, vars, err := compileNode(x.X, env)
		if err != nil {
			return nil, 0, 0, err
		}
		if kind != event.KindInt && kind != event.KindFloat {
			return nil, 0, 0, fmt.Errorf("predicate: %s: unary minus needs numeric operand, got %s", x.Pos, kind)
		}
		return negNode{x: n}, kind, vars, nil
	case *lang.BinaryExpr:
		l, lk, lv, err := compileNode(x.L, env)
		if err != nil {
			return nil, 0, 0, err
		}
		r, rk, rv, err := compileNode(x.R, env)
		if err != nil {
			return nil, 0, 0, err
		}
		kind, err := resultKind(x, lk, rk)
		if err != nil {
			return nil, 0, 0, err
		}
		return binNode{op: x.Op, l: l, r: r}, kind, lv | rv, nil
	case *lang.CallExpr:
		return nil, 0, 0, fmt.Errorf("predicate: %s: aggregate %s() is only allowed in the DERIVE arguments of a TUMBLE query", x.Pos, x.Fn)
	default:
		return nil, 0, 0, fmt.Errorf("predicate: unknown expression node %T", e)
	}
}

func resultKind(x *lang.BinaryExpr, lk, rk event.Kind) (event.Kind, error) {
	numeric := func(k event.Kind) bool { return k == event.KindInt || k == event.KindFloat }
	switch {
	case x.Op.Logical():
		if lk != event.KindBool || rk != event.KindBool {
			return 0, fmt.Errorf("predicate: %s: %s needs boolean operands, got %s and %s", x.Pos, x.Op, lk, rk)
		}
		return event.KindBool, nil
	case x.Op.Comparison():
		comparable := (numeric(lk) && numeric(rk)) || (lk == rk)
		if !comparable {
			return 0, fmt.Errorf("predicate: %s: cannot compare %s with %s", x.Pos, lk, rk)
		}
		if (lk == event.KindString || lk == event.KindBool) && x.Op != lang.OpEq && x.Op != lang.OpNeq && lk != rk {
			return 0, fmt.Errorf("predicate: %s: cannot order %s with %s", x.Pos, lk, rk)
		}
		return event.KindBool, nil
	default: // arithmetic
		if !numeric(lk) || !numeric(rk) {
			return 0, fmt.Errorf("predicate: %s: %s needs numeric operands, got %s and %s", x.Pos, x.Op, lk, rk)
		}
		if lk == event.KindFloat || rk == event.KindFloat {
			return event.KindFloat, nil
		}
		return event.KindInt, nil
	}
}

func resolveAttr(x *lang.AttrRef, env *Env) (slot, field int, kind event.Kind, err error) {
	if x.Var != "" {
		slot = env.index(x.Var)
		if slot < 0 {
			return 0, 0, 0, fmt.Errorf("predicate: %s: unknown pattern variable %q", x.Pos, x.Var)
		}
		s := env.Schema(slot)
		field = s.FieldIndex(x.Attr)
		if field < 0 {
			return 0, 0, 0, fmt.Errorf("predicate: %s: event type %s has no attribute %q", x.Pos, s.Name(), x.Attr)
		}
		return slot, field, s.Field(field).Kind, nil
	}
	// Bare attribute: resolve against the unique variable having it.
	found := -1
	for i := 0; i < env.Len(); i++ {
		if env.Schema(i).FieldIndex(x.Attr) >= 0 {
			if found >= 0 {
				return 0, 0, 0, fmt.Errorf("predicate: %s: attribute %q is ambiguous (use var.attr)", x.Pos, x.Attr)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, 0, 0, fmt.Errorf("predicate: %s: no pattern variable has attribute %q", x.Pos, x.Attr)
	}
	s := env.Schema(found)
	field = s.FieldIndex(x.Attr)
	return found, field, s.Field(field).Kind, nil
}

// FreeVars returns the names of the pattern variables an expression
// references, sorted. Bare attribute references contribute no names.
func FreeVars(e lang.Expr) []string {
	set := map[string]bool{}
	var walk func(lang.Expr)
	walk = func(e lang.Expr) {
		switch x := e.(type) {
		case *lang.AttrRef:
			if x.Var != "" {
				set[x.Var] = true
			}
		case *lang.UnaryExpr:
			walk(x.X)
		case *lang.BinaryExpr:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
