package predicate

import (
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
)

// Conjuncts splits a WHERE expression at top-level ANDs. Each
// conjunct can then be compiled separately, enabling eager predicate
// evaluation during incremental pattern matching (a conjunct is
// checked as soon as all its variables are bound) and the negation
// semantics of SEQ with NOT (conjuncts referencing a negated variable
// become the negation condition).
func Conjuncts(e lang.Expr) []lang.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*lang.BinaryExpr); ok && b.Op == lang.OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []lang.Expr{e}
}

// Threshold is a compile-time comparison of one attribute against a
// constant: attr OP value. Context deriving queries in the grouping
// experiments take this form (paper Fig. 7: "initiate c1 if X > 10"),
// and thresholds are what lets the optimizer order context window
// bounds without knowing their absolute times (§5.3).
type Threshold struct {
	Var   string // pattern variable ("" for bare attribute references)
	Attr  string
	Op    lang.Op // OpLt, OpLeq, OpGt, OpGeq, OpEq
	Value float64
}

// ExtractThreshold recognizes expressions of the shape
// `var.attr OP const` or `const OP var.attr` (the latter is
// normalized by flipping the operator). It reports ok=false for any
// other shape.
func ExtractThreshold(e lang.Expr) (Threshold, bool) {
	b, ok := e.(*lang.BinaryExpr)
	if !ok || !b.Op.Comparison() || b.Op == lang.OpNeq {
		return Threshold{}, false
	}
	if ref, c, ok := refConst(b.L, b.R); ok {
		return Threshold{Var: ref.Var, Attr: ref.Attr, Op: b.Op, Value: c}, true
	}
	if ref, c, ok := refConst(b.R, b.L); ok {
		return Threshold{Var: ref.Var, Attr: ref.Attr, Op: flip(b.Op), Value: c}, true
	}
	return Threshold{}, false
}

func refConst(a, b lang.Expr) (*lang.AttrRef, float64, bool) {
	ref, ok := a.(*lang.AttrRef)
	if !ok {
		return nil, 0, false
	}
	c, ok := b.(*lang.ConstExpr)
	if !ok || !c.Val.Numeric() {
		return nil, 0, false
	}
	return ref, c.Val.AsFloat(), true
}

func flip(op lang.Op) lang.Op {
	switch op {
	case lang.OpLt:
		return lang.OpGt
	case lang.OpLeq:
		return lang.OpGeq
	case lang.OpGt:
		return lang.OpLt
	case lang.OpGeq:
		return lang.OpLeq
	default:
		return op
	}
}

// Implies reports whether threshold a logically implies threshold b:
// every attribute value satisfying a also satisfies b. Thresholds on
// different attributes never imply each other. This is the predicate
// subsumption check CAESAR borrows from classical predicate locking
// (paper §3.3 cites Eswaran et al. [14]).
func Implies(a, b Threshold) bool {
	if a.Var != b.Var || a.Attr != b.Attr {
		return false
	}
	switch b.Op {
	case lang.OpGt:
		switch a.Op {
		case lang.OpGt:
			return a.Value >= b.Value
		case lang.OpGeq:
			return a.Value > b.Value
		case lang.OpEq:
			return a.Value > b.Value
		}
	case lang.OpGeq:
		switch a.Op {
		case lang.OpGt:
			return a.Value >= b.Value
		case lang.OpGeq:
			return a.Value >= b.Value
		case lang.OpEq:
			return a.Value >= b.Value
		}
	case lang.OpLt:
		switch a.Op {
		case lang.OpLt:
			return a.Value <= b.Value
		case lang.OpLeq:
			return a.Value < b.Value
		case lang.OpEq:
			return a.Value < b.Value
		}
	case lang.OpLeq:
		switch a.Op {
		case lang.OpLt:
			return a.Value <= b.Value
		case lang.OpLeq:
			return a.Value <= b.Value
		case lang.OpEq:
			return a.Value <= b.Value
		}
	case lang.OpEq:
		return a.Op == lang.OpEq && a.Value == b.Value
	}
	return false
}

// BoundOrder compares two context-window bounds, each described by
// the threshold of its deriving query over the same monotonically
// non-decreasing attribute (e.g. stream time, or the X of paper
// Fig. 7). It returns:
//
//	-1 if bound a is guaranteed to occur no later than bound b,
//	+1 if bound b is guaranteed to occur no later than bound a,
//	 0 if the order cannot be determined at compile time.
//
// For a monotone attribute, the window bound "initiate when X > v"
// fires when X first exceeds v, so bounds are ordered by their
// threshold values.
func BoundOrder(a, b Threshold) int {
	if a.Var != b.Var || a.Attr != b.Attr {
		return 0
	}
	lowerOK := func(t Threshold) bool { return t.Op == lang.OpGt || t.Op == lang.OpGeq || t.Op == lang.OpEq }
	if !lowerOK(a) || !lowerOK(b) {
		// "terminate when X < v" style bounds on a monotone attribute
		// fire immediately; treat as incomparable.
		return 0
	}
	av, bv := effectiveLower(a), effectiveLower(b)
	switch {
	case av < bv:
		return -1
	case av > bv:
		return 1
	default:
		return orderTieBreak(a.Op, b.Op)
	}
}

// effectiveLower maps a lower-bound threshold to the comparable
// trigger point on the monotone axis.
func effectiveLower(t Threshold) float64 { return t.Value }

// orderTieBreak orders equal-valued bounds: >= v fires no later than
// > v.
func orderTieBreak(a, b lang.Op) int {
	rank := func(op lang.Op) int {
		switch op {
		case lang.OpGeq, lang.OpEq:
			return 0
		default: // OpGt
			return 1
		}
	}
	switch {
	case rank(a) < rank(b):
		return -1
	case rank(a) > rank(b):
		return 1
	default:
		return 0
	}
}

// GuaranteedOverlap reports whether, based on the deriving-query
// thresholds over a shared monotone attribute, a window initiated at
// bound aStart and terminated at aEnd is guaranteed to overlap a
// window (bStart, bEnd]: aStart falls within (bStart, bEnd]
// (paper Def. 2).
func GuaranteedOverlap(aStart, bStart, bEnd Threshold) bool {
	return BoundOrder(bStart, aStart) <= 0 && BoundOrder(aStart, bEnd) < 0 &&
		comparableBounds(aStart, bStart) && comparableBounds(aStart, bEnd)
}

// Contained reports whether window a is contained in window b:
// a's start and end both fall within b (paper Def. 2).
func Contained(aStart, aEnd, bStart, bEnd Threshold) bool {
	return GuaranteedOverlap(aStart, bStart, bEnd) &&
		BoundOrder(aEnd, bEnd) <= 0 && comparableBounds(aEnd, bEnd)
}

func comparableBounds(a, b Threshold) bool {
	return a.Var == b.Var && a.Attr == b.Attr
}

// ConstFold evaluates an expression with no variable references to a
// constant value; ok=false if it has free attributes or fails to
// type-check.
func ConstFold(e lang.Expr) (event.Value, bool) {
	env := NewEnv()
	c, err := Compile(e, env)
	if err != nil {
		return event.Value{}, false
	}
	if c.Vars() != 0 {
		return event.Value{}, false
	}
	return c.Eval(nil), true
}
