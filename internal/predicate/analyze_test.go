package predicate

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
)

func parse(t *testing.T, src string) lang.Expr {
	t.Helper()
	e, err := lang.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConjuncts(t *testing.T) {
	e := parse(t, "a.x = 1 AND (b.y > 2 OR b.y < 0) AND c.z != 3")
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(cs))
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
	single := parse(t, "a.x = 1 OR b.y = 2")
	if got := Conjuncts(single); len(got) != 1 {
		t.Errorf("OR must not split: %d", len(got))
	}
}

func TestExtractThreshold(t *testing.T) {
	cases := []struct {
		src  string
		want Threshold
		ok   bool
	}{
		{"s.x > 10", Threshold{Var: "s", Attr: "x", Op: lang.OpGt, Value: 10}, true},
		{"s.x <= 2.5", Threshold{Var: "s", Attr: "x", Op: lang.OpLeq, Value: 2.5}, true},
		{"20 < s.x", Threshold{Var: "s", Attr: "x", Op: lang.OpGt, Value: 20}, true},
		{"30 >= s.x", Threshold{Var: "s", Attr: "x", Op: lang.OpLeq, Value: 30}, true},
		{"x = 7", Threshold{Var: "", Attr: "x", Op: lang.OpEq, Value: 7}, true},
		{"s.x != 10", Threshold{}, false},
		{"s.x > s.y", Threshold{}, false},
		{"s.x + 1 > 10", Threshold{}, false},
		{"s.x > 'a'", Threshold{}, false},
		{"s.x = 1 AND s.y = 2", Threshold{}, false},
	}
	for _, tc := range cases {
		got, ok := ExtractThreshold(parse(t, tc.src))
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.src, ok, tc.ok)
			continue
		}
		if ok && got != tc.want {
			t.Errorf("%s: threshold = %+v, want %+v", tc.src, got, tc.want)
		}
	}
}

func TestImplies(t *testing.T) {
	th := func(src string) Threshold {
		t.Helper()
		x, ok := ExtractThreshold(parse(t, src))
		if !ok {
			t.Fatalf("not a threshold: %s", src)
		}
		return x
	}
	cases := []struct {
		a, b string
		want bool
	}{
		{"s.x > 20", "s.x > 10", true},
		{"s.x > 10", "s.x > 20", false},
		{"s.x > 10", "s.x > 10", true},
		{"s.x >= 11", "s.x > 10", true},
		{"s.x >= 10", "s.x > 10", false},
		{"s.x > 10", "s.x >= 10", true},
		{"s.x = 15", "s.x > 10", true},
		{"s.x = 5", "s.x > 10", false},
		{"s.x < 10", "s.x < 20", true},
		{"s.x < 20", "s.x < 10", false},
		{"s.x <= 9", "s.x < 10", true},
		{"s.x <= 10", "s.x < 10", false},
		{"s.x < 10", "s.x <= 10", true},
		{"s.x = 5", "s.x <= 5", true},
		{"s.x = 5", "s.x = 5", true},
		{"s.x > 5", "s.x = 5", false},
		{"s.x > 5", "s.y > 1", false},
	}
	for _, tc := range cases {
		if got := Implies(th(tc.a), th(tc.b)); got != tc.want {
			t.Errorf("Implies(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestBoundOrder(t *testing.T) {
	th := func(src string) Threshold {
		t.Helper()
		x, _ := ExtractThreshold(parse(t, src))
		return x
	}
	cases := []struct {
		a, b string
		want int
	}{
		{"s.x > 10", "s.x > 20", -1},
		{"s.x > 20", "s.x > 10", 1},
		{"s.x > 10", "s.x > 10", 0},
		{"s.x >= 10", "s.x > 10", -1}, // >= fires no later than >
		{"s.x > 10", "s.x >= 10", 1},
		{"s.x = 10", "s.x > 10", -1},
		{"s.x > 10", "s.y > 10", 0}, // different attributes: unknown
		{"s.x < 10", "s.x > 20", 0}, // upper bound on monotone axis: unknown
	}
	for _, tc := range cases {
		if got := BoundOrder(th(tc.a), th(tc.b)); got != tc.want {
			t.Errorf("BoundOrder(%s, %s) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestGuaranteedOverlapAndContainment(t *testing.T) {
	th := func(src string) Threshold {
		t.Helper()
		x, _ := ExtractThreshold(parse(t, src))
		return x
	}
	// Paper Fig. 7: w_c1 = (X>10, X<30), w_c2 = (X>20, X<40) — c2
	// starts inside c1 when bounds are ordered 10 < 20 < 30 < 40.
	// On the monotone axis we express ends as lower-bound triggers:
	// terminate c1 when X >= 30, terminate c2 when X >= 40.
	c1s, c1e := th("s.x > 10"), th("s.x >= 30")
	c2s, c2e := th("s.x > 20"), th("s.x >= 40")
	if !GuaranteedOverlap(c2s, c1s, c1e) {
		t.Error("c2 should be guaranteed to start inside c1")
	}
	if GuaranteedOverlap(c1s, c2s, c2e) {
		t.Error("c1 starts before c2; no overlap guarantee that way")
	}
	// Containment: c3 = (X>15, X>=25) inside c1 = (X>10, X>=30).
	c3s, c3e := th("s.x > 15"), th("s.x >= 25")
	if !Contained(c3s, c3e, c1s, c1e) {
		t.Error("c3 should be contained in c1")
	}
	if Contained(c2s, c2e, c1s, c1e) {
		t.Error("c2 ends after c1; not contained")
	}
	// Incomparable attributes are never guaranteed.
	if GuaranteedOverlap(th("s.y > 20"), c1s, c1e) {
		t.Error("different attribute must not be comparable")
	}
}

func TestConstFold(t *testing.T) {
	if v, ok := ConstFold(parse(t, "2 + 3 * 4")); !ok || v.Int != 14 {
		t.Errorf("ConstFold = %v, %v", v, ok)
	}
	if v, ok := ConstFold(parse(t, "2 < 3")); !ok || !v.AsBool() {
		t.Errorf("ConstFold bool = %v, %v", v, ok)
	}
	if _, ok := ConstFold(parse(t, "x + 1")); ok {
		t.Error("free attribute folded")
	}
	if _, ok := ConstFold(parse(t, "1 AND 2")); ok {
		t.Error("ill-typed expression folded")
	}
}

func TestVarSet(t *testing.T) {
	var s VarSet
	s = s.With(0).With(3)
	if !s.Has(0) || !s.Has(3) || s.Has(1) {
		t.Error("Has/With broken")
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	if !s.SubsetOf(s.With(5)) || s.With(5).SubsetOf(s) {
		t.Error("SubsetOf broken")
	}
	if !VarSet(0).SubsetOf(s) {
		t.Error("empty set must be subset of all")
	}
}

func TestThresholdValueKinds(t *testing.T) {
	// Float constants extract too.
	got, ok := ExtractThreshold(parse(t, "s.speed < 40.5"))
	if !ok || got.Value != 40.5 {
		t.Errorf("float threshold = %+v, %v", got, ok)
	}
	// Bool/string constants do not.
	if _, ok := ExtractThreshold(parse(t, "s.lane = 'exit'")); ok {
		t.Error("string threshold extracted")
	}
	_ = event.Value{}
}
