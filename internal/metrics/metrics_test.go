package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestLatencyTrackerBasics(t *testing.T) {
	var lt LatencyTracker
	if lt.Max() != 0 || lt.Mean() != 0 || lt.Count() != 0 {
		t.Error("zero tracker not zero")
	}
	lt.Observe(10 * time.Millisecond)
	lt.Observe(30 * time.Millisecond)
	lt.Observe(20 * time.Millisecond)
	if lt.Max() != 30*time.Millisecond {
		t.Errorf("max = %v", lt.Max())
	}
	if lt.Mean() != 20*time.Millisecond {
		t.Errorf("mean = %v", lt.Mean())
	}
	if lt.Count() != 3 {
		t.Errorf("count = %d", lt.Count())
	}
	lt.Reset()
	if lt.Max() != 0 || lt.Count() != 0 {
		t.Error("reset incomplete")
	}
}

func TestLatencyTrackerNegativeClamped(t *testing.T) {
	var lt LatencyTracker
	lt.Observe(-5 * time.Millisecond)
	if lt.Max() != 0 || lt.Count() != 1 {
		t.Errorf("negative sample mishandled: max=%v count=%d", lt.Max(), lt.Count())
	}
}

func TestLatencyTrackerConcurrent(t *testing.T) {
	var lt LatencyTracker
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				lt.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if lt.Max() != 1000*time.Microsecond {
		t.Errorf("max = %v", lt.Max())
	}
	if lt.Count() != 8000 {
		t.Errorf("count = %d", lt.Count())
	}
}

// TestLatencyTrackerMeanOverflow is the regression test for the
// int64 sum overflow: with samples large enough that the running sum
// exceeds math.MaxInt64, Mean must saturate high instead of wrapping
// negative.
func TestLatencyTrackerMeanOverflow(t *testing.T) {
	var lt LatencyTracker
	huge := time.Duration(math.MaxInt64 / 2)
	for i := 0; i < 5; i++ {
		lt.Observe(huge)
	}
	if m := lt.Mean(); m < 0 {
		t.Fatalf("mean wrapped negative: %v", m)
	} else if m < huge/5 {
		t.Fatalf("saturated mean implausibly small: %v", m)
	}
	if lt.Max() != huge {
		t.Errorf("max = %v", lt.Max())
	}
}

func TestLatencyTrackerQuantile(t *testing.T) {
	var lt LatencyTracker
	for i := 1; i <= 100; i++ {
		lt.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := lt.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 60*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms", p50)
	}
	if got := lt.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want exact max", got)
	}
}

func TestWinRatio(t *testing.T) {
	if got := WinRatio(80*time.Millisecond, 10*time.Millisecond); got != 8 {
		t.Errorf("win ratio = %g", got)
	}
	if got := WinRatio(time.Second, 0); got != 0 {
		t.Errorf("zero contender ratio = %g", got)
	}
}

func TestLFactor(t *testing.T) {
	scales := []int{2, 3, 5, 7, 8}
	lat := []time.Duration{1, 2, 4, 5, 9}
	if got := LFactor(scales, lat, 5); got != 7 {
		t.Errorf("L-factor = %d, want 7", got)
	}
	if got := LFactor(scales, lat, 0); got != 0 {
		t.Errorf("L-factor under impossible constraint = %d", got)
	}
}
