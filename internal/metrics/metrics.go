// Package metrics implements the measurements of the CAESAR
// evaluation (paper §7.1): maximal latency — the longest interval
// from an event's system arrival time to the derivation time of a
// complex event based on it — plus counters, and the win ratio of
// context-aware over context-independent processing.
package metrics

import (
	"time"

	"github.com/caesar-cep/caesar/internal/telemetry"
)

// LatencyTracker accumulates latency observations from concurrent
// workers without locks. It is a thin veneer over the telemetry
// histogram (internal/telemetry), which adds quantile extraction and
// guards the sum against int64 overflow on very long runs: the sum
// saturates at math.MaxInt64 instead of wrapping, so Mean can never
// go negative.
type LatencyTracker struct {
	h telemetry.Histogram
}

// Observe records one latency sample. Negative durations clamp to 0.
func (t *LatencyTracker) Observe(d time.Duration) { t.h.ObserveDuration(d) }

// Max returns the maximal observed latency.
func (t *LatencyTracker) Max() time.Duration { return time.Duration(t.h.Max()) }

// Mean returns the mean observed latency (0 with no samples; an
// upper-bound estimate once the sum has saturated).
func (t *LatencyTracker) Mean() time.Duration { return time.Duration(t.h.Mean()) }

// Quantile returns the q-quantile (0 < q <= 1) of the observed
// distribution, within 12.5% relative error (see telemetry's
// log-linear bucketing); the 1.0 quantile is the exact maximum.
func (t *LatencyTracker) Quantile(q float64) time.Duration {
	s := t.h.Snapshot()
	return time.Duration(s.Quantile(q))
}

// Count returns the number of samples.
func (t *LatencyTracker) Count() int64 { return int64(t.h.Count()) }

// Reset clears the tracker.
func (t *LatencyTracker) Reset() { t.h.Reset() }

// WinRatio is the paper's headline metric: the maximal latency of the
// baseline divided by the maximal latency of the contender (§7.1).
// It returns 0 when the contender latency is zero.
func WinRatio(baseline, contender time.Duration) float64 {
	if contender <= 0 {
		return 0
	}
	return float64(baseline) / float64(contender)
}

// LFactor is the scalability metric of the Linear Road benchmark: the
// largest input scale (number of roads) whose maximal latency stays
// within the constraint. latencies[i] is the measured maximal latency
// at scale scales[i]; scales must be increasing.
func LFactor(scales []int, latencies []time.Duration, constraint time.Duration) int {
	best := 0
	for i, s := range scales {
		if latencies[i] <= constraint && s > best {
			best = s
		}
	}
	return best
}
