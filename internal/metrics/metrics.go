// Package metrics implements the measurements of the CAESAR
// evaluation (paper §7.1): maximal latency — the longest interval
// from an event's system arrival time to the derivation time of a
// complex event based on it — plus counters, and the win ratio of
// context-aware over context-independent processing.
package metrics

import (
	"sync/atomic"
	"time"
)

// LatencyTracker accumulates latency observations from concurrent
// workers without locks.
type LatencyTracker struct {
	max   atomic.Int64
	sum   atomic.Int64
	count atomic.Int64
}

// Observe records one latency sample.
func (t *LatencyTracker) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	for {
		cur := t.max.Load()
		if n <= cur || t.max.CompareAndSwap(cur, n) {
			break
		}
	}
	t.sum.Add(n)
	t.count.Add(1)
}

// Max returns the maximal observed latency.
func (t *LatencyTracker) Max() time.Duration { return time.Duration(t.max.Load()) }

// Mean returns the mean observed latency (0 with no samples).
func (t *LatencyTracker) Mean() time.Duration {
	c := t.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(t.sum.Load() / c)
}

// Count returns the number of samples.
func (t *LatencyTracker) Count() int64 { return t.count.Load() }

// Reset clears the tracker.
func (t *LatencyTracker) Reset() {
	t.max.Store(0)
	t.sum.Store(0)
	t.count.Store(0)
}

// WinRatio is the paper's headline metric: the maximal latency of the
// baseline divided by the maximal latency of the contender (§7.1).
// It returns 0 when the contender latency is zero.
func WinRatio(baseline, contender time.Duration) float64 {
	if contender <= 0 {
		return 0
	}
	return float64(baseline) / float64(contender)
}

// LFactor is the scalability metric of the Linear Road benchmark: the
// largest input scale (number of roads) whose maximal latency stays
// within the constraint. latencies[i] is the measured maximal latency
// at scale scales[i]; scales must be increasing.
func LFactor(scales []int, latencies []time.Duration, constraint time.Duration) int {
	best := 0
	for i, s := range scales {
		if latencies[i] <= constraint && s > best {
			best = s
		}
	}
	return best
}
