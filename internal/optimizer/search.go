package optimizer

import (
	"fmt"
	"math"
	"sort"
)

// OpSpec is an abstract plan operator for the plan search problem
// (§5.1, §7.2): applying it to a stream costs Cost per input tuple
// and passes a Sel fraction of tuples on. CAESAR borrows this
// per-operator cost estimation from ZStream [24].
type OpSpec struct {
	Name string
	Cost float64
	// Sel in (0, 1]: output/input ratio.
	Sel float64
	// ContextWindow marks the CW operator: constant cost, and the
	// context-aware search pins it to the bottom of the plan (§5.2).
	ContextWindow bool
	// Suspend is the fraction of the stream during which the CW
	// operator's context is inactive; while inactive, everything
	// above the CW costs nothing.
	Suspend float64
}

// PlanCost evaluates an operator ordering: the cost of operator i is
// its per-tuple cost times the fraction of the stream that survives
// the operators below it. A context window operator additionally
// scales everything above it by its active fraction (1 - Suspend).
func PlanCost(order []OpSpec) float64 {
	carried := 1.0
	total := 0.0
	for _, op := range order {
		total += op.Cost * carried
		carried *= op.Sel
		if op.ContextWindow {
			carried *= 1 - op.Suspend
		}
	}
	return total
}

// SearchResult reports a plan search outcome.
type SearchResult struct {
	Order []OpSpec
	Cost  float64
	// Explored counts the states the search evaluated, a
	// machine-independent measure of search effort.
	Explored uint64
}

// ExhaustiveSearch finds the cost-optimal operator ordering by
// dynamic programming over operator subsets (the classical
// join-ordering formulation): 2^n states, each extended by up to n
// operators. This is the context-independent multi-query optimization
// baseline of Fig. 11(a): its cost grows exponentially with the plan
// size. n is capped at 28 to bound memory.
func ExhaustiveSearch(ops []OpSpec) (SearchResult, error) {
	n := len(ops)
	if n == 0 {
		return SearchResult{}, fmt.Errorf("optimizer: empty plan")
	}
	if n > 28 {
		return SearchResult{}, fmt.Errorf("optimizer: exhaustive search capped at 28 operators, got %d", n)
	}
	size := 1 << uint(n)
	// best[s] = minimal cost to have applied exactly the operators in
	// set s; carried[s] = stream fraction surviving set s (set-
	// dependent only, which is what makes the DP exact).
	best := make([]float64, size)
	parent := make([]int8, size)
	carried := make([]float64, size)
	for s := 1; s < size; s++ {
		best[s] = math.Inf(1)
		parent[s] = -1
	}
	carried[0] = 1
	var explored uint64
	for s := 0; s < size; s++ {
		if math.IsInf(best[s], 1) {
			continue
		}
		if s != 0 {
			// Compute carried fraction once per state.
			low := s & (-s)
			i := bits(low)
			prev := s &^ low
			c := carried[prev] * ops[i].Sel
			if ops[i].ContextWindow {
				c *= 1 - ops[i].Suspend
			}
			// carried depends only on the set, not the order, so any
			// decomposition gives the same value.
			carried[s] = c
		}
		for i := 0; i < n; i++ {
			bit := 1 << uint(i)
			if s&bit != 0 {
				continue
			}
			explored++
			next := s | bit
			cost := best[s] + ops[i].Cost*carried[s]
			if cost < best[next] {
				best[next] = cost
				parent[next] = int8(i)
			}
		}
	}
	full := size - 1
	order := make([]OpSpec, 0, n)
	for s := full; s != 0; {
		i := int(parent[s])
		order = append(order, ops[i])
		s &^= 1 << uint(i)
	}
	// parent chain built back-to-front.
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	return SearchResult{Order: order, Cost: PlanCost(order), Explored: explored}, nil
}

func bits(x int) int {
	i := 0
	for x > 1 {
		x >>= 1
		i++
	}
	return i
}

// GreedySearch is the context-aware plan search: it pushes every
// context window operator to the bottom of the plan (§5.2, Theorem
// 1 — provably optimal for the constant-cost CW), then orders the
// remaining operators by the classical rank criterion
// (1 - sel) / cost, optimal for independent commuting filters.
// O(n log n); this is why the CAESAR optimizer's search time stays
// flat in Fig. 11(a).
func GreedySearch(ops []OpSpec) (SearchResult, error) {
	if len(ops) == 0 {
		return SearchResult{}, fmt.Errorf("optimizer: empty plan")
	}
	var cws, rest []OpSpec
	for _, op := range ops {
		if op.ContextWindow {
			cws = append(cws, op)
		} else {
			rest = append(rest, op)
		}
	}
	// Most-suspending context window first: it silences the most.
	sort.SliceStable(cws, func(i, j int) bool { return cws[i].Suspend > cws[j].Suspend })
	sort.SliceStable(rest, func(i, j int) bool { return rank(rest[i]) > rank(rest[j]) })
	order := append(cws, rest...)
	return SearchResult{Order: order, Cost: PlanCost(order), Explored: uint64(len(ops))}, nil
}

func rank(op OpSpec) float64 {
	if op.Cost == 0 {
		return math.Inf(1)
	}
	return (1 - op.Sel) / op.Cost
}

// BruteForcePermutations enumerates every n! ordering; it exists to
// validate the subset DP on small inputs.
func BruteForcePermutations(ops []OpSpec) (SearchResult, error) {
	n := len(ops)
	if n == 0 {
		return SearchResult{}, fmt.Errorf("optimizer: empty plan")
	}
	if n > 9 {
		return SearchResult{}, fmt.Errorf("optimizer: brute force capped at 9 operators")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	best := math.Inf(1)
	var bestOrder []OpSpec
	var explored uint64
	var perm func(k int)
	cur := make([]OpSpec, n)
	perm = func(k int) {
		if k == n {
			explored++
			if c := PlanCost(cur); c < best {
				best = c
				bestOrder = append(bestOrder[:0], cur...)
			}
			return
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			cur[k] = ops[idx[k]]
			perm(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	perm(0)
	return SearchResult{Order: append([]OpSpec(nil), bestOrder...), Cost: best, Explored: explored}, nil
}

// SyntheticPlan builds a deterministic pseudo-random plan of n
// operators for the Fig. 11(a) experiment: one context window plus
// n-1 filters/projections with varied costs and selectivities.
func SyntheticPlan(n int, seed int64) []OpSpec {
	ops := make([]OpSpec, 0, n)
	ops = append(ops, OpSpec{Name: "cw", Cost: 0.01, Sel: 1, ContextWindow: true, Suspend: 0.7})
	x := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		x = x*2862933555777941757 + 3037000493
		return float64(x>>11) / float64(1<<53)
	}
	for i := 1; i < n; i++ {
		ops = append(ops, OpSpec{
			Name: fmt.Sprintf("op%d", i),
			Cost: 0.2 + 1.8*next(),
			Sel:  0.1 + 0.85*next(),
		})
	}
	return ops
}
