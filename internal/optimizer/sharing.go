package optimizer

import (
	"sort"

	"github.com/caesar-cep/caesar/internal/model"
)

// SharedQuery is one execution unit of the shared workload: a
// representative query plus the union context mask of every
// equivalent query merged into it. The runtime executes one instance
// per SharedQuery, active while any of the merged contexts holds —
// the runtime realization of grouped context windows (§5.3, §6.2
// "Context Processing").
type SharedQuery struct {
	Query *model.Query
	// Mask is the union of the context masks of all merged queries.
	Mask uint64
	// Members counts how many user-level queries were merged (1 = no
	// sharing happened for this query).
	Members int
}

// ShareWorkload merges equivalent queries across contexts. Without
// sharing, a query appearing in k overlapping contexts executes k
// times while the contexts overlap; after sharing it executes once,
// with its results valid for every merged context (paper §5.3: "only
// one instance of each context deriving query for each context",
// "deletes duplicate event queries").
//
// The merge is keyed on CanonicalKey, so only queries with identical
// derivation, pattern, predicates and horizon are shared. The result
// preserves the first-occurrence order of the input for plan
// determinism.
func ShareWorkload(queries []*model.Query) []SharedQuery {
	index := map[string]int{}
	var out []SharedQuery
	for _, q := range queries {
		k := CanonicalKey(q)
		if i, ok := index[k]; ok {
			out[i].Mask |= q.Mask
			out[i].Members++
			continue
		}
		index[k] = len(out)
		out = append(out, SharedQuery{Query: q, Mask: q.Mask, Members: 1})
	}
	return out
}

// NonShared returns the degenerate one-instance-per-query workload
// used by the non-shared baseline of §7.3.2.
func NonShared(queries []*model.Query) []SharedQuery {
	out := make([]SharedQuery, len(queries))
	for i, q := range queries {
		out[i] = SharedQuery{Query: q, Mask: q.Mask, Members: 1}
	}
	return out
}

// SharingStats summarizes how much a workload shrank.
type SharingStats struct {
	Before int
	After  int
	// MaxMembers is the largest merge group.
	MaxMembers int
}

// Stats computes sharing statistics for a shared workload built from
// n input queries.
func Stats(shared []SharedQuery, n int) SharingStats {
	s := SharingStats{Before: n, After: len(shared)}
	for _, sq := range shared {
		if sq.Members > s.MaxMembers {
			s.MaxMembers = sq.Members
		}
	}
	return s
}

// GroupWorkloads exposes the grouped-window workloads sorted by
// span for the experiment harness: for each grouped window, the
// number of distinct queries active during it.
func GroupWorkloads(gs []Grouped) []int {
	out := make([]int, len(gs))
	for i, g := range gs {
		out[i] = len(g.Queries)
	}
	sort.Ints(out)
	return out
}
