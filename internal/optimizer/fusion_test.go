package optimizer

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/model"
)

const fusionModel = `
EVENT P(v int, k int)
EVENT A(v int, fee int)
EVENT B(v int)
EVENT S(cnt int)

CONTEXT idle DEFAULT
CONTEXT busy

INITIATE CONTEXT busy
PATTERN P p
WHERE p.v > 100
CONTEXT idle

# Three queries over the identical pattern+filter, differing only in
# their derivation heads: fusable.
DERIVE A(p.v, 1)
PATTERN P p
WHERE p.k = 1
CONTEXT busy

DERIVE A(p.v, 2)
PATTERN P p
WHERE p.k = 1
CONTEXT busy

DERIVE B(p.v)
PATTERN P p
WHERE p.k = 1
CONTEXT busy

# Different filter: not fusable with the above.
DERIVE B(p.v)
PATTERN P p
WHERE p.k = 2
CONTEXT busy

# Different context: not fusable.
DERIVE B(p.v)
PATTERN P p
WHERE p.k = 1
CONTEXT idle

# TUMBLE queries keep their own instances.
DERIVE S(count())
PATTERN P p
WHERE p.k = 1
TUMBLE 10
CONTEXT busy
`

func TestFusePatterns(t *testing.T) {
	m, err := model.CompileSource(fusionModel)
	if err != nil {
		t.Fatal(err)
	}
	fs := FusePatterns(NonShared(m.Queries))
	// 7 queries -> 5 units: {A1,A2,B1} fused; window query, k=2 B,
	// idle B and the TUMBLE query stay singletons.
	if len(fs) != 5 {
		t.Fatalf("fusions = %d: %+v", len(fs), fs)
	}
	var big *Fusion
	for i := range fs {
		if len(fs[i].Members) > 1 {
			if big != nil {
				t.Fatal("more than one fusion group")
			}
			big = &fs[i]
		}
	}
	if big == nil || len(big.Members) != 3 {
		t.Fatalf("fused group = %+v", big)
	}
	if big.Leader != big.Members[0] {
		t.Error("leader must be first member")
	}
	st := StatsOf(fs)
	if st.Queries != 7 || st.Patterns != 5 || st.Largest != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFusePatternsRespectsMask(t *testing.T) {
	m, err := model.CompileSource(fusionModel)
	if err != nil {
		t.Fatal(err)
	}
	// After sharing, queries keep distinct masks where contexts
	// differ; fusion must not merge across masks.
	fs := FusePatterns(ShareWorkload(m.Queries))
	for _, f := range fs {
		for _, mq := range f.Members {
			if mq.Mask&f.Mask == 0 {
				t.Errorf("member %s outside fusion mask", mq.Name)
			}
		}
	}
}

func TestPatternKeyIgnoresDeriveHead(t *testing.T) {
	m, err := model.CompileSource(fusionModel)
	if err != nil {
		t.Fatal(err)
	}
	// Queries 1 and 2 (A with fee 1 and 2) share a key; query 4
	// (different WHERE) does not.
	if PatternKey(m.Queries[1]) != PatternKey(m.Queries[2]) {
		t.Error("identical patterns have different keys")
	}
	if PatternKey(m.Queries[1]) == PatternKey(m.Queries[4]) {
		t.Error("different filters share a key")
	}
}
