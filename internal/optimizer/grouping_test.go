package optimizer

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/caesar-cep/caesar/internal/model"
)

// groupingModel reproduces paper Fig. 7: two overlapping context
// windows, c1 = (X>10, X<30) with {Q1, Q3}, c2 = (X>20, X<40) with
// {Q1, Q2}. Q1 is the query shared by both contexts.
const groupingModel = `
EVENT S(x int, v int)
EVENT R1(v int)
EVENT R2(v int)
EVENT R3(v int)

CONTEXT idle DEFAULT
CONTEXT c1
CONTEXT c2

INITIATE CONTEXT c1
PATTERN S s
WHERE s.x > 10
CONTEXT idle, c1, c2

TERMINATE CONTEXT c1
PATTERN S s
WHERE s.x >= 30
CONTEXT c1

INITIATE CONTEXT c2
PATTERN S s
WHERE s.x > 20
CONTEXT idle, c1, c2

TERMINATE CONTEXT c2
PATTERN S s
WHERE s.x >= 40
CONTEXT c2

DERIVE R1(s.v)
PATTERN S s
WHERE s.v > 0
CONTEXT c1

DERIVE R3(s.v)
PATTERN S s
WHERE s.v > 3
CONTEXT c1

DERIVE R1(s.v)
PATTERN S s
WHERE s.v > 0
CONTEXT c2

DERIVE R2(s.v)
PATTERN S s
WHERE s.v > 2
CONTEXT c2
`

func fig7Windows(t *testing.T) ([]Window, *model.Model) {
	t.Helper()
	m, err := model.CompileSource(groupingModel)
	if err != nil {
		t.Fatal(err)
	}
	ws, skipped := WindowsFromModel(m)
	if len(skipped) != 0 {
		t.Fatalf("skipped contexts: %v", skipped)
	}
	return ws, m
}

func TestWindowsFromModel(t *testing.T) {
	ws, _ := fig7Windows(t)
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	byName := map[string]Window{}
	for _, w := range ws {
		byName[w.Name] = w
	}
	c1 := byName["c1"]
	if c1.Start != 10 || c1.End != 30 || len(c1.Queries) != 2 {
		t.Errorf("c1 = %+v", c1)
	}
	c2 := byName["c2"]
	if c2.Start != 20 || c2.End != 40 || len(c2.Queries) != 2 {
		t.Errorf("c2 = %+v", c2)
	}
}

func TestGroupWindowsFig7(t *testing.T) {
	ws, _ := fig7Windows(t)
	gs, err := GroupWindows(ws)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 7: three grouped windows — w_c11 [10,20) with
	// {Q1,Q3}, w [20,30) with {Q1,Q2,Q3}, w_c22 [30,40) with {Q1,Q2}.
	if len(gs) != 3 {
		t.Fatalf("groups = %d, want 3: %+v", len(gs), gs)
	}
	spans := [][2]float64{{10, 20}, {20, 30}, {30, 40}}
	sizes := []int{2, 3, 2}
	for i, g := range gs {
		if g.Start != spans[i][0] || g.End != spans[i][1] {
			t.Errorf("group %d span = [%g,%g), want %v", i, g.Start, g.End, spans[i])
		}
		if len(g.Queries) != sizes[i] {
			t.Errorf("group %d workload = %d queries, want %d", i, len(g.Queries), sizes[i])
		}
	}
	// The middle group carries Q1 once (deduplicated), not twice.
	mid := gs[1]
	keys := map[string]int{}
	for _, q := range mid.Queries {
		keys[CanonicalKey(q)]++
	}
	for k, n := range keys {
		if n != 1 {
			t.Errorf("duplicate query in group: %s x%d", k, n)
		}
	}
	// Derived bounds match the new context deriving queries of Fig. 7.
	db := DeriveBounds(gs)
	if db[0].Initiate != 10 || db[0].Terminate != 20 || db[2].Initiate != 30 || db[2].Terminate != 40 {
		t.Errorf("derived bounds = %+v", db)
	}
}

func TestGroupWindowsNonOverlappingUnchanged(t *testing.T) {
	_, m := fig7Windows(t)
	q := m.Queries[4]
	ws := []Window{
		{Name: "a", Start: 0, End: 10, Queries: []*model.Query{q}},
		{Name: "b", Start: 20, End: 30, Queries: []*model.Query{q}},
	}
	gs, err := GroupWindows(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("groups = %+v", gs)
	}
	for i, g := range gs {
		if len(g.Sources) != 1 || g.Start != ws[i].Start || g.End != ws[i].End {
			t.Errorf("non-overlapping window changed: %+v", g)
		}
	}
}

func TestGroupWindowsIdenticalMerged(t *testing.T) {
	_, m := fig7Windows(t)
	q1, q2 := m.Queries[4], m.Queries[7]
	ws := []Window{
		{Name: "a", Start: 0, End: 10, Queries: []*model.Query{q1}},
		{Name: "b", Start: 0, End: 10, Queries: []*model.Query{q2}},
	}
	gs, err := GroupWindows(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 {
		t.Fatalf("identical windows not merged: %+v", gs)
	}
	if len(gs[0].Queries) != 2 {
		t.Errorf("merged workload = %d", len(gs[0].Queries))
	}
}

func TestGroupWindowsRejectsEmptySpan(t *testing.T) {
	if _, err := GroupWindows([]Window{{Name: "bad", Start: 5, End: 5}}); err == nil {
		t.Error("empty span accepted")
	}
}

func TestGroupWindowsContainment(t *testing.T) {
	_, m := fig7Windows(t)
	q1, q2 := m.Queries[4], m.Queries[7]
	// b contained in a: a=[0,100) {q1}, b=[40,60) {q2}.
	ws := []Window{
		{Name: "a", Start: 0, End: 100, Queries: []*model.Query{q1}},
		{Name: "b", Start: 40, End: 60, Queries: []*model.Query{q2}},
	}
	gs, err := GroupWindows(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 3 {
		t.Fatalf("groups = %+v", gs)
	}
	if len(gs[0].Queries) != 1 || len(gs[1].Queries) != 2 || len(gs[2].Queries) != 1 {
		t.Errorf("containment workloads wrong: %+v", gs)
	}
}

// TestGroupWindowsInvariants property-tests the algorithm: groups
// never overlap; their union covers exactly the union of the input
// windows; and every point of an original window is covered by a
// group containing that window's queries.
func TestGroupWindowsInvariants(t *testing.T) {
	_, m := fig7Windows(t)
	pool := []*model.Query{m.Queries[4], m.Queries[5], m.Queries[6], m.Queries[7]}
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		var ws []Window
		for i, r := range raw {
			start := float64(r % 50)
			length := float64(1 + (r/50)%20)
			ws = append(ws, Window{
				Name:    string(rune('a' + i)),
				Start:   start,
				End:     start + length,
				Queries: []*model.Query{pool[int(r)%len(pool)], pool[int(r/7)%len(pool)]},
			})
		}
		gs, err := GroupWindows(ws)
		if err != nil {
			return false
		}
		// 1. Groups pairwise disjoint.
		sorted := append([]Grouped(nil), gs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Start < sorted[i-1].End {
				return false
			}
		}
		// 2+3. Sample points: coverage and workload preservation.
		for x := 0.5; x < 75; x++ {
			inWindows := map[string]bool{} // canonical keys required at x
			covered := false
			for _, w := range ws {
				if w.Start <= x && x < w.End {
					covered = true
					for _, q := range w.Queries {
						inWindows[CanonicalKey(q)] = true
					}
				}
			}
			var g *Grouped
			for i := range sorted {
				if sorted[i].Start <= x && x < sorted[i].End {
					g = &sorted[i]
					break
				}
			}
			if covered != (g != nil) {
				return false
			}
			if g != nil {
				have := map[string]bool{}
				for _, q := range g.Queries {
					if have[CanonicalKey(q)] {
						return false // duplicate within group
					}
					have[CanonicalKey(q)] = true
				}
				if len(have) != len(inWindows) {
					return false
				}
				for k := range inWindows {
					if !have[k] {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestShareWorkload(t *testing.T) {
	_, m := fig7Windows(t)
	shared := ShareWorkload(m.Queries)
	// The two R1 queries (contexts c1 and c2) merge; everything else
	// stays separate: 8 queries -> 7 shared units.
	if len(shared) != 7 {
		t.Fatalf("shared units = %d, want 7", len(shared))
	}
	var merged *SharedQuery
	for i := range shared {
		if shared[i].Members == 2 {
			if merged != nil {
				t.Fatal("more than one merge group")
			}
			merged = &shared[i]
		}
	}
	if merged == nil {
		t.Fatal("R1 queries not merged")
	}
	c1, _ := m.ContextByName("c1")
	c2, _ := m.ContextByName("c2")
	if merged.Mask != c1.Mask()|c2.Mask() {
		t.Errorf("merged mask = %b", merged.Mask)
	}
	st := Stats(shared, len(m.Queries))
	if st.Before != 8 || st.After != 7 || st.MaxMembers != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNonShared(t *testing.T) {
	_, m := fig7Windows(t)
	ns := NonShared(m.Queries)
	if len(ns) != len(m.Queries) {
		t.Fatalf("non-shared units = %d", len(ns))
	}
	for i, sq := range ns {
		if sq.Members != 1 || sq.Mask != m.Queries[i].Mask {
			t.Errorf("unit %d = %+v", i, sq)
		}
	}
}

func TestGroupWorkloads(t *testing.T) {
	ws, _ := fig7Windows(t)
	gs, err := GroupWindows(ws)
	if err != nil {
		t.Fatal(err)
	}
	sizes := GroupWorkloads(gs)
	if len(sizes) != 3 || sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 3 {
		t.Errorf("workload sizes = %v", sizes)
	}
}

func BenchmarkGroupWindows(b *testing.B) {
	m, err := model.CompileSource(groupingModel)
	if err != nil {
		b.Fatal(err)
	}
	pool := []*model.Query{m.Queries[4], m.Queries[5], m.Queries[6], m.Queries[7]}
	var ws []Window
	for i := 0; i < 64; i++ {
		ws = append(ws, Window{
			Name:    string(rune('a' + i%26)),
			Start:   float64(i * 7 % 50),
			End:     float64(i*7%50 + 10 + i%13),
			Queries: []*model.Query{pool[i%4], pool[(i+1)%4]},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupWindows(ws); err != nil {
			b.Fatal(err)
		}
	}
}
