package optimizer

import (
	"fmt"
	"strings"

	"github.com/caesar-cep/caesar/internal/model"
)

// Fusion is a set of DERIVE queries whose pattern, filters, horizon
// and context mask coincide: the pattern needs to be evaluated once
// and each member only contributes its projection head. This is the
// multi-query optimization the paper applies within grouped context
// windows (§5.3): "this opens opportunities to share the similar
// workload within a context which further saves computational
// costs".
type Fusion struct {
	// Leader is the representative query (its pattern is the one
	// evaluated); Members lists every fused query including the
	// leader, in input order.
	Leader  *model.Query
	Members []*model.Query
	// Mask is the shared context mask.
	Mask uint64
}

// PatternKey renders a query's matching identity: everything that
// determines the match set — pattern shape, filter predicates,
// horizon — but not the derivation head. Two DERIVE queries with
// equal keys and equal context masks construct identical match sets.
func PatternKey(q *model.Query) string {
	var b strings.Builder
	if q.Decl != nil && q.Decl.Pattern != nil {
		b.WriteString(q.Decl.Pattern.String())
	}
	b.WriteByte('|')
	if q.Decl != nil && q.Decl.Where != nil {
		b.WriteString(q.Decl.Where.String())
	}
	fmt.Fprintf(&b, "|%d|%d", q.Within, q.Tumble)
	return b.String()
}

// FusePatterns partitions the shared workload into fusions. Only
// plain DERIVE queries fuse (window queries and TUMBLE aggregations
// keep their own instances — their state is not match-set-shaped);
// queries that fuse with nobody come back as singleton fusions, so
// the result covers the entire input.
func FusePatterns(shared []SharedQuery) []Fusion {
	index := map[string]int{}
	var out []Fusion
	for _, sq := range shared {
		q := sq.Query
		fusable := !q.IsWindowQuery() && q.Tumble == 0
		key := ""
		if fusable {
			key = fmt.Sprintf("%s|%x", PatternKey(q), sq.Mask)
			if i, ok := index[key]; ok {
				out[i].Members = append(out[i].Members, q)
				continue
			}
		}
		f := Fusion{Leader: q, Members: []*model.Query{q}, Mask: sq.Mask}
		if fusable {
			index[key] = len(out)
		}
		out = append(out, f)
	}
	return out
}

// FusionStats summarizes how much pattern evaluation the fusion pass
// removed.
type FusionStats struct {
	// Queries is the input workload size, Patterns the number of
	// pattern instances after fusion.
	Queries  int
	Patterns int
	// Largest is the biggest fusion group.
	Largest int
}

// StatsOf computes fusion statistics.
func StatsOf(fs []Fusion) FusionStats {
	st := FusionStats{Patterns: len(fs)}
	for _, f := range fs {
		st.Queries += len(f.Members)
		if len(f.Members) > st.Largest {
			st.Largest = len(f.Members)
		}
	}
	return st
}
