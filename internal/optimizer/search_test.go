package optimizer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlanCost(t *testing.T) {
	ops := []OpSpec{
		{Name: "f1", Cost: 1, Sel: 0.5},
		{Name: "f2", Cost: 2, Sel: 0.5},
	}
	// f1 then f2: 1*1 + 2*0.5 = 2; f2 then f1: 2*1 + 1*0.5 = 2.5.
	if got := PlanCost(ops); got != 2 {
		t.Errorf("cost = %g, want 2", got)
	}
	if got := PlanCost([]OpSpec{ops[1], ops[0]}); got != 2.5 {
		t.Errorf("cost = %g, want 2.5", got)
	}
}

func TestPlanCostContextWindowSuspension(t *testing.T) {
	cw := OpSpec{Name: "cw", Cost: 0.01, Sel: 1, ContextWindow: true, Suspend: 0.9}
	f := OpSpec{Name: "f", Cost: 10, Sel: 0.5}
	bottom := PlanCost([]OpSpec{cw, f}) // 0.01 + 10*0.1 = 1.01
	top := PlanCost([]OpSpec{f, cw})    // 10 + 0.01*0.5 = 10.005
	if !(bottom < top) {
		t.Errorf("push-down not cheaper: bottom=%g top=%g", bottom, top)
	}
	if math.Abs(bottom-1.01) > 1e-12 {
		t.Errorf("bottom = %g", bottom)
	}
}

func TestExhaustiveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		ops := SyntheticPlan(n, int64(trial))
		dp, err := ExhaustiveSearch(ops)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForcePermutations(ops)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Cost-bf.Cost) > 1e-9*(1+bf.Cost) {
			t.Fatalf("trial %d: DP cost %g != brute force %g", trial, dp.Cost, bf.Cost)
		}
		if len(dp.Order) != n {
			t.Fatalf("DP order incomplete: %d ops", len(dp.Order))
		}
	}
}

func TestGreedyOptimalOnSyntheticPlans(t *testing.T) {
	// With one constant-cost context window and independent filters,
	// the greedy rank order is provably optimal; the context-aware
	// search loses nothing on Fig. 11(a)'s plan family.
	for seed := int64(0); seed < 30; seed++ {
		ops := SyntheticPlan(7, seed)
		g, err := GreedySearch(ops)
		if err != nil {
			t.Fatal(err)
		}
		e, err := ExhaustiveSearch(ops)
		if err != nil {
			t.Fatal(err)
		}
		if g.Cost > e.Cost*(1+1e-9) {
			t.Errorf("seed %d: greedy %g worse than optimal %g", seed, g.Cost, e.Cost)
		}
	}
}

func TestGreedyNeverBelowOptimal(t *testing.T) {
	// Property: greedy cost is never below the exhaustive optimum
	// (sanity of both searches) on random plans without CW.
	f := func(costs [6]uint8, sels [6]uint8) bool {
		ops := make([]OpSpec, 0, 6)
		for i := 0; i < 6; i++ {
			ops = append(ops, OpSpec{
				Cost: 0.1 + float64(costs[i])/64,
				Sel:  0.05 + 0.9*float64(sels[i])/255,
			})
		}
		g, err1 := GreedySearch(ops)
		e, err2 := ExhaustiveSearch(ops)
		if err1 != nil || err2 != nil {
			return false
		}
		return g.Cost >= e.Cost-1e-9
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSearchEffortGrowth(t *testing.T) {
	// The machine-independent effort counter must grow exponentially
	// for the exhaustive search and linearly for the greedy search —
	// the Fig. 11(a) shape.
	e16, _ := ExhaustiveSearch(SyntheticPlan(16, 1))
	e20, _ := ExhaustiveSearch(SyntheticPlan(20, 1))
	if ratio := float64(e20.Explored) / float64(e16.Explored); ratio < 10 {
		t.Errorf("exhaustive effort grew only %.1fx from 16 to 20 ops", ratio)
	}
	g16, _ := GreedySearch(SyntheticPlan(16, 1))
	g20, _ := GreedySearch(SyntheticPlan(20, 1))
	if g20.Explored-g16.Explored != 4 {
		t.Errorf("greedy effort not linear: %d vs %d", g16.Explored, g20.Explored)
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := ExhaustiveSearch(nil); err == nil {
		t.Error("empty exhaustive accepted")
	}
	if _, err := GreedySearch(nil); err == nil {
		t.Error("empty greedy accepted")
	}
	if _, err := BruteForcePermutations(nil); err == nil {
		t.Error("empty brute force accepted")
	}
	if _, err := ExhaustiveSearch(make([]OpSpec, 29)); err == nil {
		t.Error("oversized exhaustive accepted")
	}
	if _, err := BruteForcePermutations(make([]OpSpec, 10)); err == nil {
		t.Error("oversized brute force accepted")
	}
}

func TestGreedyPinsContextWindowsBottom(t *testing.T) {
	ops := SyntheticPlan(10, 3)
	g, err := GreedySearch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Order[0].ContextWindow {
		t.Errorf("context window not at plan bottom: %v", g.Order[0].Name)
	}
	for _, op := range g.Order[1:] {
		if op.ContextWindow {
			t.Error("second context window misplaced")
		}
	}
}

func BenchmarkExhaustiveSearch16(b *testing.B) {
	ops := SyntheticPlan(16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExhaustiveSearch(ops); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedySearch16(b *testing.B) {
	ops := SyntheticPlan(16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedySearch(ops); err != nil {
			b.Fatal(err)
		}
	}
}
