// Package optimizer implements the CAESAR optimization strategies
// (paper §5): the context window push-down decision (§5.2, realized
// structurally by plan.Options), the context window grouping
// algorithm of Listing 1 (§5.3), workload sharing across overlapping
// context windows, and the query plan search comparison — exhaustive
// (context-independent) versus greedy (context-aware) — evaluated in
// Fig. 11(a).
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"github.com/caesar-cep/caesar/internal/lang"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/predicate"
)

// Window is a user-defined context window as seen by the grouping
// algorithm: its bounds are positions on the monotone axis shared by
// the context deriving queries' threshold predicates (paper Fig. 7:
// "initiate c1 if X > 10"). The absolute times are unknown at compile
// time; only the bound order matters, which the positions encode.
type Window struct {
	Name    string
	Start   float64
	End     float64
	Queries []*model.Query
}

// Grouped is one non-overlapping context window produced by the
// grouping algorithm, with the merged, de-duplicated query workload
// appropriate during its span and the names of the original windows
// it was carved from.
type Grouped struct {
	Start   float64
	End     float64
	Queries []*model.Query
	Sources []string
}

// DerivedBound is a context deriving query synthesized for a grouped
// window (paper Fig. 7 bottom: the new context deriving queries
// "initiate c11 if X > 10, terminate c11 if X >= 20").
type DerivedBound struct {
	Group     int
	Initiate  float64
	Terminate float64
}

// GroupWindows implements the context window grouping algorithm of
// paper Listing 1. Windows that overlap no other window are returned
// unchanged; identical windows are merged; overlapping windows are
// split at every bound and regrouped into non-overlapping windows
// whose workload is the union of the covering originals, with
// duplicate queries dropped.
func GroupWindows(ws []Window) ([]Grouped, error) {
	for _, w := range ws {
		if w.End <= w.Start {
			return nil, fmt.Errorf("optimizer: window %q has non-positive span [%g,%g)", w.Name, w.Start, w.End)
		}
	}
	// Line 4: extract windows that overlap nothing.
	overlapping, alone := partitionByOverlap(ws)
	var out []Grouped
	for _, w := range alone {
		out = append(out, Grouped{
			Start:   w.Start,
			End:     w.End,
			Queries: dropDuplicateQueries(w.Queries),
			Sources: []string{w.Name},
		})
	}

	// Line 5: sort the overlapping windows by start bound.
	sort.SliceStable(overlapping, func(i, j int) bool {
		if overlapping[i].Start != overlapping[j].Start {
			return overlapping[i].Start < overlapping[j].Start
		}
		return overlapping[i].End < overlapping[j].End
	})
	// Line 6: merge identical windows, keeping one with the union of
	// their workloads.
	overlapping = mergeIdentical(overlapping)

	// Lines 8-19: sweep the window bounds; each interval between two
	// subsequent bounds becomes a grouped window carrying the queries
	// of every original window covering it.
	type boundEvent struct {
		pos    float64
		starts []int
		ends   []int
	}
	bounds := map[float64]*boundEvent{}
	at := func(p float64) *boundEvent {
		be, ok := bounds[p]
		if !ok {
			be = &boundEvent{pos: p}
			bounds[p] = be
		}
		return be
	}
	for i, w := range overlapping {
		at(w.Start).starts = append(at(w.Start).starts, i)
		at(w.End).ends = append(at(w.End).ends, i)
	}
	order := make([]*boundEvent, 0, len(bounds))
	for _, be := range bounds {
		order = append(order, be)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].pos < order[j].pos })

	active := map[int]bool{}
	var previous float64
	for _, be := range order {
		if len(active) > 0 && be.pos > previous {
			g := Grouped{Start: previous, End: be.pos}
			ids := make([]int, 0, len(active))
			for id := range active {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				g.Queries = append(g.Queries, overlapping[id].Queries...)
				g.Sources = append(g.Sources, overlapping[id].Name)
			}
			// Lines 20-22: drop duplicate event queries.
			g.Queries = dropDuplicateQueries(g.Queries)
			out = append(out, g)
		}
		for _, id := range be.ends {
			delete(active, id)
		}
		for _, id := range be.starts {
			active[id] = true
		}
		previous = be.pos
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, nil
}

func partitionByOverlap(ws []Window) (overlapping, alone []Window) {
	for i, w := range ws {
		has := false
		for j, o := range ws {
			if i == j {
				continue
			}
			if w.Start < o.End && o.Start < w.End {
				has = true
				break
			}
		}
		if has {
			overlapping = append(overlapping, w)
		} else {
			alone = append(alone, w)
		}
	}
	return overlapping, alone
}

func mergeIdentical(ws []Window) []Window {
	var out []Window
	for _, w := range ws {
		merged := false
		for i := range out {
			if out[i].Start == w.Start && out[i].End == w.End {
				out[i].Queries = append(out[i].Queries, w.Queries...)
				out[i].Name = out[i].Name + "+" + w.Name
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, Window{Name: w.Name, Start: w.Start, End: w.End,
				Queries: append([]*model.Query(nil), w.Queries...)})
		}
	}
	return out
}

// dropDuplicateQueries keeps the first of each equivalent query
// (lines 20-22 of Listing 1). Two queries are equivalent when their
// canonical forms — action, derivation head, pattern, predicates and
// horizon, everything except the context association — coincide.
func dropDuplicateQueries(qs []*model.Query) []*model.Query {
	seen := map[string]bool{}
	var out []*model.Query
	for _, q := range qs {
		k := CanonicalKey(q)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, q)
	}
	return out
}

// CanonicalKey renders a query's context-independent identity: two
// queries with the same key compute the same results on the same
// input and can share one execution instance.
func CanonicalKey(q *model.Query) string {
	var b strings.Builder
	b.WriteString(q.Action.String())
	b.WriteByte('|')
	if q.Target != nil {
		b.WriteString(q.Target.Name)
	}
	b.WriteByte('|')
	if q.Decl != nil && q.Decl.Derive != nil {
		b.WriteString(q.Decl.Derive.String())
	}
	b.WriteByte('|')
	if q.Decl != nil && q.Decl.Pattern != nil {
		b.WriteString(q.Decl.Pattern.String())
	}
	b.WriteByte('|')
	if q.Decl != nil && q.Decl.Where != nil {
		b.WriteString(q.Decl.Where.String())
	}
	fmt.Fprintf(&b, "|%d", q.Within)
	return b.String()
}

// DeriveBounds synthesizes the adjusted context deriving thresholds
// for each grouped window (paper Fig. 7, "new context deriving
// queries").
func DeriveBounds(gs []Grouped) []DerivedBound {
	out := make([]DerivedBound, len(gs))
	for i, g := range gs {
		out[i] = DerivedBound{Group: i, Initiate: g.Start, Terminate: g.End}
	}
	return out
}

// WindowsFromModel extracts groupable windows from a compiled model:
// a context contributes a window when it has an INITIATE (or SWITCH)
// query and a TERMINATE (or SWITCH away) query whose WHERE clauses
// are threshold predicates over one shared monotone attribute. The
// returned windows carry the context's processing workload. Contexts
// without such derivable bounds are reported in skipped.
func WindowsFromModel(m *model.Model) (ws []Window, skipped []string) {
	for _, c := range m.Contexts {
		if c == m.Default {
			continue
		}
		start, okS := boundFor(m, c, true)
		end, okE := boundFor(m, c, false)
		if !okS || !okE || end <= start {
			skipped = append(skipped, c.Name)
			continue
		}
		ws = append(ws, Window{
			Name:    c.Name,
			Start:   start,
			End:     end,
			Queries: append([]*model.Query(nil), c.Processing...),
		})
	}
	return ws, skipped
}

// boundFor finds the threshold position of the query that initiates
// (start=true) or terminates (start=false) context c.
func boundFor(m *model.Model, c *model.Context, start bool) (float64, bool) {
	for _, q := range m.Queries {
		if !q.IsWindowQuery() {
			continue
		}
		isStart := (q.Action == lang.ActionInitiate || q.Action == lang.ActionSwitch) && q.Target == c
		isEnd := q.Action == lang.ActionTerminate && q.Target == c
		if start && !isStart || !start && !isEnd {
			continue
		}
		if q.Decl == nil || q.Decl.Where == nil {
			continue
		}
		for _, conj := range predicate.Conjuncts(q.Decl.Where) {
			if th, ok := predicate.ExtractThreshold(conj); ok {
				if th.Op == lang.OpGt || th.Op == lang.OpGeq {
					return th.Value, true
				}
			}
		}
	}
	return 0, false
}
