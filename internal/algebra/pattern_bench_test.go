package algebra

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
)

// The BenchmarkPattern* family measures the arena kernel in steady
// state: the stream is pre-generated, warm-up passes fill the free
// lists, and every iteration drives Advance+Process per tick followed
// by Release — the runtime's usage pattern — and ends with Reset, the
// runtime's context-window close. Reset returns all retained state to
// the arena, so the next pass replays the same stream against warm
// free lists with operator time restarting from the stream head.
// (Shifting event times in place instead would mutate events still
// held in the negation buffers and defeat expiry.)
type benchStream struct {
	evs []*event.Event
	// ticks[i] is the end index of the i-th same-timestamp batch.
	ticks []int
}

func newBenchStream(evs []*event.Event) *benchStream {
	s := &benchStream{evs: evs}
	i := 0
	for i < len(evs) {
		ts := evs[i].End()
		j := i
		for j < len(evs) && evs[j].End() == ts {
			j++
		}
		s.ticks = append(s.ticks, j)
		i = j
	}
	return s
}

// run drives one full pass over the stream and returns the number of
// matches emitted. scratch is the caller's reusable output slice.
func (s *benchStream) run(p *Pattern, scratch []*Match) (int, []*Match) {
	matches := 0
	i := 0
	for _, j := range s.ticks {
		ts := s.evs[i].End()
		out := p.Advance(ts, scratch[:0])
		out = p.Process(s.evs[i:j], out)
		matches += len(out)
		p.Release(out)
		scratch = out
		i = j
	}
	p.Reset()
	return matches, scratch
}

func benchPattern(b *testing.B, s *benchStream, p *Pattern) {
	b.Helper()
	var scratch []*Match
	// Two warm-up passes: the first sizes the arena, the second
	// confirms the free lists cover a full pass.
	for i := 0; i < 2; i++ {
		_, scratch = s.run(p, scratch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		var n int
		n, scratch = s.run(p, scratch)
		total += n
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("benchmark emitted no matches")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(s.evs)), "ns/event")
}

// twoStepJoinStream is the join-heavy SEQ(A a, B b) WHERE a.k = b.k
// workload: 1024 A/B pairs over a 16-value key space under a horizon
// that keeps hundreds of As live, so every B faces a wide join
// frontier. The legacy kernel scans every live partial per B; the
// automaton kernel probes one hash bucket and walks only the
// key-matching predecessors.
func twoStepJoinStream(b *testing.B, legacy bool) (*benchStream, *Pattern) {
	b.Helper()
	spec, m := compileQuerySpec(b, patternModels, 1, 1000)
	spec.LegacyKernel = legacy
	sa, _ := m.Registry.Lookup("A")
	sb, _ := m.Registry.Lookup("B")
	evs := make([]*event.Event, 0, 2048)
	for i := 0; i < 1024; i++ {
		evs = append(evs,
			event.MustNew(sa, event.Time(2*i), event.Int64(int64(i)), event.Int64(int64(i%16))),
			event.MustNew(sb, event.Time(2*i+1), event.Int64(int64(i)), event.Int64(int64(i%16))))
	}
	p, err := NewPattern(spec)
	if err != nil {
		b.Fatal(err)
	}
	return newBenchStream(evs), p
}

// BenchmarkPatternTwoStepJoin measures the shared-run automaton on the
// join-heavy two-step workload in steady state.
func BenchmarkPatternTwoStepJoin(b *testing.B) {
	s, p := twoStepJoinStream(b, false)
	benchPattern(b, s, p)
}

// BenchmarkPatternTwoStepJoinLegacy runs the identical workload on the
// preserved per-combination kernel — the ablation baseline for the
// automaton's join speedup.
func BenchmarkPatternTwoStepJoinLegacy(b *testing.B) {
	s, p := twoStepJoinStream(b, true)
	benchPattern(b, s, p)
}

// BenchmarkPatternExtensionHeavy exercises the partial-extension hot
// path: SEQ(A a, B b, C c) with two equi-join conjuncts, every event
// participating, and narrow key space so each B extends several As.
func BenchmarkPatternExtensionHeavy(b *testing.B) {
	spec, m := compileQuerySpec(b, patternModels, 2, 40)
	sa, _ := m.Registry.Lookup("A")
	sb, _ := m.Registry.Lookup("B")
	sc, _ := m.Registry.Lookup("C")
	evs := make([]*event.Event, 0, 3*1024)
	for i := 0; i < 1024; i++ {
		t := event.Time(3 * i)
		k := event.Int64(int64(i % 8))
		evs = append(evs,
			event.MustNew(sa, t, event.Int64(int64(i)), k),
			event.MustNew(sb, t+1, event.Int64(int64(i)), k),
			event.MustNew(sc, t+2, event.Int64(int64(i)), k))
	}
	p, err := NewPattern(spec)
	if err != nil {
		b.Fatal(err)
	}
	benchPattern(b, newBenchStream(evs), p)
}

// BenchmarkPatternNegationHeavy exercises the negation buffer ring:
// SEQ(A a, NOT C x, B b) with three C events per A/B pair, so expiry
// and index-bucket trimming dominate.
func BenchmarkPatternNegationHeavy(b *testing.B) {
	spec, m := compileQuerySpec(b, patternModels, 4, 40)
	sa, _ := m.Registry.Lookup("A")
	sb, _ := m.Registry.Lookup("B")
	sc, _ := m.Registry.Lookup("C")
	evs := make([]*event.Event, 0, 5*512)
	for i := 0; i < 512; i++ {
		t := event.Time(5 * i)
		k := event.Int64(int64(i % 8))
		off := event.Int64(int64((i + 1) % 8)) // C keys mostly miss
		evs = append(evs,
			event.MustNew(sa, t, event.Int64(int64(i)), k),
			event.MustNew(sc, t+1, event.Int64(1), off),
			event.MustNew(sc, t+2, event.Int64(2), off),
			event.MustNew(sc, t+3, event.Int64(3), off),
			event.MustNew(sb, t+4, event.Int64(int64(i)), k))
	}
	p, err := NewPattern(spec)
	if err != nil {
		b.Fatal(err)
	}
	benchPattern(b, newBenchStream(evs), p)
}

// BenchmarkPatternFilterHeavy exercises the reject path: a single-step
// pattern with a threshold predicate that discards 7 of 8 events, so
// binding acquire/release around a failing filter dominates.
func BenchmarkPatternFilterHeavy(b *testing.B) {
	spec, m := compileQuerySpec(b, patternModels, 0, 40) // A a WHERE a.v > 10
	sa, _ := m.Registry.Lookup("A")
	evs := make([]*event.Event, 0, 4096)
	for i := 0; i < 4096; i++ {
		v := int64(i % 8) // 0..7: all rejected
		if i%8 == 7 {
			v = 100 // one in eight passes
		}
		evs = append(evs, event.MustNew(sa, event.Time(i), event.Int64(v), event.Int64(0)))
	}
	p, err := NewPattern(spec)
	if err != nil {
		b.Fatal(err)
	}
	benchPattern(b, newBenchStream(evs), p)
}
