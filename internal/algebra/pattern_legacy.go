package algebra

import (
	"github.com/caesar-cep/caesar/internal/event"
)

// legacyKernel is the pre-automaton pattern engine, preserved behind
// PatternSpec.LegacyKernel: it materializes one partial record per
// open step combination and extends every partial individually when
// a step event arrives. The automaton kernel (runs.go) replaces it
// as the default; this one stays as the differential-testing
// reference and as the ablation baseline quantifying what run
// sharing buys.
type legacyKernel struct {
	prog  *Program
	arena *kernelArena
	nt    *negTracker

	// partials[i] holds prefixes that have bound steps 0..i-1 and
	// await step i (1 <= i < len(Steps)).
	partials [][]*partial
	// pending holds completed matches waiting out a trailing
	// negation's deadline.
	pending []*pendingMatch

	statsVal PatternStats
}

// partial is one pattern-match prefix. Records and their binding
// regions are arena-managed; see arena.go for the lifecycle.
type partial struct {
	binding    []*event.Event
	firstStart event.Time
	lastEnd    event.Time
	arrival    int64
}

func newLegacyKernel(prog *Program) *legacyKernel {
	arena := newKernelArena(prog.Spec.NumSlots)
	return &legacyKernel{
		prog:     prog,
		arena:    arena,
		nt:       newNegTracker(&prog.Spec, arena),
		partials: make([][]*partial, len(prog.Spec.Steps)),
	}
}

func (k *legacyKernel) stats() PatternStats { return k.statsVal }

func (k *legacyKernel) arenaChunks() int { return k.arena.chunks }

func (k *legacyKernel) footprint() Footprint {
	f := Footprint{NegBuffered: k.nt.buffered(), Pending: len(k.pending)}
	for _, ps := range k.partials {
		f.Partials += len(ps)
	}
	return f
}

func (k *legacyKernel) release(ms []*Match) {
	for _, m := range ms {
		k.arena.putMatch(m)
	}
}

func (k *legacyKernel) reset() {
	for i := range k.partials {
		for _, pa := range k.partials[i] {
			k.arena.putPartial(pa)
		}
		k.partials[i] = k.partials[i][:0]
	}
	k.nt.reset()
	for _, pm := range k.pending {
		k.arena.putMatch(pm.m)
		k.arena.putPending(pm)
	}
	k.pending = k.pending[:0]
}

func (k *legacyKernel) advance(now event.Time, out []*Match) []*Match {
	cut := now - event.Time(k.prog.Spec.Horizon)
	for i := 1; i < len(k.partials); i++ {
		ps := k.partials[i]
		kept := ps[:0]
		for _, pa := range ps {
			if pa.firstStart >= cut {
				kept = append(kept, pa)
			} else {
				k.statsVal.PartialsExpired++
				k.arena.putPartial(pa)
			}
		}
		k.partials[i] = kept
	}
	k.nt.expire(now - 2*event.Time(k.prog.Spec.Horizon))
	if len(k.pending) > 0 {
		kept := k.pending[:0]
		for _, pm := range k.pending {
			switch {
			case pm.killed:
				k.arena.putMatch(pm.m)
				k.arena.putPending(pm)
			case pm.deadline < now:
				out = append(out, pm.m)
				k.statsVal.MatchesEmitted++
				k.arena.putPending(pm)
			default:
				kept = append(kept, pm)
			}
		}
		k.pending = kept
	}
	return out
}

func (k *legacyKernel) process(batch []*event.Event, out []*Match) []*Match {
	for _, e := range batch {
		out = k.processEvent(e, out)
	}
	return out
}

func (k *legacyKernel) processEvent(e *event.Event, out []*Match) []*Match {
	k.statsVal.EventsSeen++
	spec := &k.prog.Spec
	// Negation bookkeeping first: an event can serve both as a step
	// and as a negation of another variable's type.
	for j := range spec.Negs {
		n := &spec.Negs[j]
		if n.Schema != e.Schema {
			continue
		}
		k.nt.observe(j, e)
		if n.Anchor == len(spec.Steps) {
			k.killPending(j, e)
		}
	}
	steps := spec.Steps
	for i := range steps {
		if steps[i].Schema != e.Schema {
			continue
		}
		if i == 0 {
			out = k.startPartial(e, out)
		} else {
			out = k.extendPartials(i, e, out)
		}
	}
	return out
}

// startPartial begins a new prefix at step 0 (or completes a match
// for single-step patterns).
func (k *legacyKernel) startPartial(e *event.Event, out []*Match) []*Match {
	binding := k.arena.getBinding()
	binding[k.prog.Spec.Steps[0].Slot] = e
	if !k.runFilters(0, binding) {
		k.arena.putBinding(binding)
		return out
	}
	k.statsVal.PartialsCreated++
	if len(k.prog.Spec.Steps) == 1 {
		return k.complete(binding, e.Time.Start, e.Time.End, e.Arrival, out)
	}
	pa := k.arena.getPartial()
	pa.binding = binding
	pa.firstStart = e.Time.Start
	pa.lastEnd = e.Time.End
	pa.arrival = e.Arrival
	k.partials[1] = append(k.partials[1], pa)
	return out
}

func (k *legacyKernel) extendPartials(i int, e *event.Event, out []*Match) []*Match {
	slot := k.prog.Spec.Steps[i].Slot
	last := i == len(k.prog.Spec.Steps)-1
	// Iterate over a snapshot length: completions during iteration
	// never append to partials[i].
	ps := k.partials[i]
	for _, pa := range ps {
		// Strict sequencing (§4.1): e_i.time < e_{i+1}.time; for
		// interval events the previous match part must end before the
		// next begins.
		if pa.lastEnd >= e.Time.Start {
			continue
		}
		binding := k.arena.getBinding()
		copy(binding, pa.binding)
		binding[slot] = e
		if !k.runFilters(i, binding) {
			k.arena.putBinding(binding)
			continue
		}
		k.statsVal.PartialsCreated++
		arrival := maxI64(pa.arrival, e.Arrival)
		if last {
			out = k.complete(binding, pa.firstStart, e.Time.End, arrival, out)
		} else {
			ext := k.arena.getPartial()
			ext.binding = binding
			ext.firstStart = pa.firstStart
			ext.lastEnd = e.Time.End
			ext.arrival = arrival
			k.partials[i+1] = append(k.partials[i+1], ext)
		}
	}
	return out
}

func (k *legacyKernel) runFilters(step int, binding []*event.Event) bool {
	for _, fi := range k.prog.filterAt[step] {
		if !k.prog.Spec.Filters[fi].EvalBool(binding) {
			k.statsVal.FilteredOut++
			return false
		}
	}
	return true
}

// complete finalizes a full binding: leading and mid-anchored
// negations are checked against the buffered negation events; a
// trailing negation defers emission until its deadline. The binding's
// ownership moves into the emitted Match (or back to the arena on
// rejection).
func (k *legacyKernel) complete(binding []*event.Event, firstStart, lastEnd event.Time, arrival int64, out []*Match) []*Match {
	n := len(k.prog.Spec.Steps)
	for j := range k.prog.Spec.Negs {
		if k.prog.Spec.Negs[j].Anchor == n {
			continue
		}
		if k.nt.violated(j, binding) {
			k.statsVal.MatchesNegated++
			k.arena.putBinding(binding)
			return out
		}
	}
	m := k.arena.getMatch()
	m.Binding = binding
	m.Time = event.Interval{Start: firstStart, End: lastEnd}
	m.Arrival = arrival
	if k.prog.hasTrailing {
		pm := k.arena.getPending()
		pm.m = m
		pm.lastEnd = lastEnd
		pm.deadline = lastEnd + event.Time(k.prog.Spec.Horizon)
		k.pending = append(k.pending, pm)
		return out
	}
	k.statsVal.MatchesEmitted++
	return append(out, m)
}

// killPending invalidates pending matches whose trailing negation is
// violated by the newly arrived event nv.
func (k *legacyKernel) killPending(j int, nv *event.Event) {
	neg := &k.prog.Spec.Negs[j]
	for _, pm := range k.pending {
		if pm.killed || nv.Time.Start <= pm.lastEnd {
			continue
		}
		if k.nt.condsHold(neg, pm.m.Binding, nv) {
			pm.killed = true
			k.statsVal.MatchesNegated++
		}
	}
}
