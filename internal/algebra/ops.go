package algebra

import (
	"fmt"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
	"github.com/caesar-cep/caesar/internal/predicate"
)

// Filter is the FI operator (paper §4.1) applied at match level: it
// passes matches satisfying all predicates. Optimized plans fold
// these predicates into the pattern operator for eager evaluation;
// non-optimized plans (Fig. 6a) keep them as this separate operator.
type Filter struct {
	preds []*predicate.Compiled
}

// NewFilter builds a filter from WHERE conjuncts.
func NewFilter(preds []*predicate.Compiled) *Filter { return &Filter{preds: preds} }

// Process appends the matches satisfying every predicate to out.
func (f *Filter) Process(in []*Match, out []*Match) []*Match {
	for _, m := range in {
		ok := true
		for _, p := range f.preds {
			if !p.EvalBool(m.Binding) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m)
		}
	}
	return out
}

// Project is the PR operator (paper §4.1): it restricts a match to
// the derived event type's attributes by evaluating the DERIVE
// argument expressions against the binding. The derived complex
// event's occurrence time spans all constituent events (paper §2).
type Project struct {
	out  *event.Schema
	args []*predicate.Compiled
}

// NewProject builds a projection. len(args) must equal the schema's
// field count; the model compiler guarantees kind compatibility.
func NewProject(out *event.Schema, args []*predicate.Compiled) (*Project, error) {
	if len(args) != out.NumFields() {
		return nil, fmt.Errorf("algebra: projection to %s needs %d expressions, got %d",
			out.Name(), out.NumFields(), len(args))
	}
	return &Project{out: out, args: args}, nil
}

// Process derives one event per match, taking each record from
// alloc, and appends it to out. Every Values slot is assigned, so the
// allocator's no-zeroing contract is satisfied.
func (p *Project) Process(in []*Match, alloc event.Allocator, out []*event.Event) []*event.Event {
	for _, m := range in {
		e := alloc.Alloc(p.out, m.Time, len(p.args))
		e.Arrival = m.Arrival
		for i, a := range p.args {
			v := a.Eval(m.Binding)
			if p.out.Field(i).Kind == event.KindFloat && v.Kind == event.KindInt {
				v = event.Float64(float64(v.Int))
			}
			e.Values[i] = v
		}
		out = append(out, e)
	}
	return out
}

// WindowGate is the CW operator (paper §4.1) in its pushed-down
// position (Fig. 6b): placed below a plan, it passes the input batch
// only while some context window of the plan's mask holds. Its cost
// is constant per batch — one bit-mask test — which is what makes the
// push-down strategy strictly beneficial (Theorem 1).
type WindowGate struct {
	mask uint64
	vec  *Vector
}

// NewWindowGate builds a gate over the given context mask.
func NewWindowGate(mask uint64, vec *Vector) *WindowGate {
	return &WindowGate{mask: mask, vec: vec}
}

// Open reports whether the gate currently passes events.
func (g *WindowGate) Open() bool { return g.vec.ActiveAny(g.mask) }

// Process returns the batch unchanged while the window holds, nil
// otherwise.
func (g *WindowGate) Process(in []*event.Event) []*event.Event {
	if g.vec.ActiveAny(g.mask) {
		return in
	}
	return nil
}

// WindowFilter is the CW operator in its un-pushed position
// (Fig. 6a): above the pattern, it drops already-constructed matches
// while the context is inactive. All the pattern and filter work
// below it has already been spent — the waste the push-down strategy
// removes.
type WindowFilter struct {
	mask uint64
	vec  *Vector
}

// NewWindowFilter builds a match-level context window check.
func NewWindowFilter(mask uint64, vec *Vector) *WindowFilter {
	return &WindowFilter{mask: mask, vec: vec}
}

// Process appends the input matches to out while the window holds.
func (w *WindowFilter) Process(in []*Match, out []*Match) []*Match {
	if !w.vec.ActiveAny(w.mask) {
		return out
	}
	return append(out, in...)
}

// ContextAction realizes the CI and CT operators (paper §4.1, Table
// 1): it converts the matches of a context deriving query into
// window transitions. The transitions are applied to the partition's
// context vector at the end of the stream transaction, not
// immediately, so every query in the transaction sees the
// pre-transaction window set.
//
// Per Table 1, SWITCH CONTEXT c translates to CI_c plus CT_curr: the
// action terminates every currently active context the query is
// associated with, then initiates the target.
type ContextAction struct {
	action lang.Action
	target int
	// sourceMask is the query's context association, used by SWITCH
	// to decide which windows to terminate.
	sourceMask uint64
	vec        *Vector
}

// NewContextAction builds the CI/CT operator for a window query.
func NewContextAction(action lang.Action, target int, sourceMask uint64, vec *Vector) (*ContextAction, error) {
	switch action {
	case lang.ActionInitiate, lang.ActionSwitch, lang.ActionTerminate:
		return &ContextAction{action: action, target: target, sourceMask: sourceMask, vec: vec}, nil
	default:
		return nil, fmt.Errorf("algebra: %s is not a context action", action)
	}
}

// Process appends the transitions triggered by the matches to out.
// Multiple matches in one transaction trigger the transition once
// (window initiation and termination are idempotent at a timestamp).
func (a *ContextAction) Process(now event.Time, matches []*Match, out []Transition) []Transition {
	if len(matches) == 0 {
		return out
	}
	switch a.action {
	case lang.ActionInitiate:
		out = append(out, Transition{Kind: TransInit, Context: a.target, At: now})
	case lang.ActionTerminate:
		out = append(out, Transition{Kind: TransTerm, Context: a.target, At: now})
	case lang.ActionSwitch:
		for i := 0; i < 64; i++ {
			if a.sourceMask&(1<<uint(i)) != 0 && a.vec.Has(i) {
				out = append(out, Transition{Kind: TransTerm, Context: i, At: now})
			}
		}
		out = append(out, Transition{Kind: TransInit, Context: a.target, At: now})
	}
	return out
}
