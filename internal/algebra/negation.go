package algebra

import (
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

// negTracker owns the negation side of a pattern operator: the
// per-negation event buffers, their hash indexes and the
// completion-time violation checks. Both kernels (the automaton and
// the preserved legacy kernel) share it, so negation semantics are
// identical by construction.
//
// buf[j] buffers events of negation j's type, bounded by 2*Horizon so
// that completion-time checks see every event that can fall within a
// live match's span. The buffer is a ring over a slice: head[j] marks
// the first live entry, expiry advances it, and the slice compacts
// only when the dead prefix dominates — no per-Advance reshuffling.
//
// idx[j] indexes the live part of buf[j] by the negation's hash-join
// attribute (nil when the negation has no equi-join condition or
// indexing is disabled): completion-time checks then probe one bucket
// instead of scanning the buffer. Buckets are arena-recycled rings
// that mirror buf's head-offset discipline. Emptied buckets stay
// mapped (their key usually comes back); idxEmpty[j] counts them, and
// a sweep returns them to the arena only when they dominate.
type negTracker struct {
	negs  []model.Negation
	steps []model.Step
	arena *kernelArena

	buf      [][]*event.Event
	head     []int
	idx      []map[event.Value]*negBucket
	idxEmpty []int

	scratch []*event.Event // negation condition evaluation buffer
}

// negBucket is one hash bucket of a negation index: a ring over a
// slice, like the buffer itself. evs[head:] is the live portion in
// stream order; expiry advances head and compaction runs only when
// the dead prefix dominates. Buckets recycle through the arena.
type negBucket struct {
	evs  []*event.Event
	head int
}

// empty reports whether the bucket holds no live events.
func (b *negBucket) empty() bool { return b.head == len(b.evs) }

func newNegTracker(spec *PatternSpec, arena *kernelArena) *negTracker {
	nt := &negTracker{
		negs:     spec.Negs,
		steps:    spec.Steps,
		arena:    arena,
		buf:      make([][]*event.Event, len(spec.Negs)),
		head:     make([]int, len(spec.Negs)),
		idx:      make([]map[event.Value]*negBucket, len(spec.Negs)),
		idxEmpty: make([]int, len(spec.Negs)),
		scratch:  make([]*event.Event, spec.NumSlots),
	}
	for j := range spec.Negs {
		if spec.Negs[j].HashProbe != nil && !spec.DisableNegIndex {
			nt.idx[j] = map[event.Value]*negBucket{}
		}
	}
	return nt
}

// observe buffers an event of negation j's type (the caller matched
// the schema) and registers it in the hash index.
func (nt *negTracker) observe(j int, e *event.Event) {
	n := &nt.negs[j]
	nt.buf[j] = append(nt.buf[j], e)
	if idx := nt.idx[j]; idx != nil {
		k := e.At(n.HashField)
		b := idx[k]
		switch {
		case b == nil:
			b = nt.arena.getBucket()
			idx[k] = b
		case b.empty():
			b.evs = b.evs[:0]
			b.head = 0
			nt.idxEmpty[j]--
		}
		b.evs = append(b.evs, e)
	}
}

// expire advances every ring head past events older than negCut,
// trimming the index buckets in step. Events enter the buffer (and
// their bucket) in stream order and End() is non-decreasing, so the
// expired set is a prefix of both the buffer and each bucket — each
// expired event pops its bucket's front. Compaction runs only when
// the dead prefix dominates the buffer, keeping amortized cost
// O(expired) instead of an O(live) map rebuild.
func (nt *negTracker) expire(negCut event.Time) {
	for j := range nt.buf {
		nt.expireBuf(j, negCut)
	}
}

func (nt *negTracker) expireBuf(j int, negCut event.Time) {
	nb := nt.buf[j]
	h := nt.head[j]
	idx := nt.idx[j]
	field := nt.negs[j].HashField
	for h < len(nb) && nb[h].End() < negCut {
		if idx != nil {
			b := idx[nb[h].At(field)]
			b.evs[b.head] = nil
			b.head++
			switch {
			case b.empty():
				b.evs = b.evs[:0]
				b.head = 0
				nt.idxEmpty[j]++
			case b.head > 32 && 2*b.head >= len(b.evs):
				n := copy(b.evs, b.evs[b.head:])
				for i := n; i < len(b.evs); i++ {
					b.evs[i] = nil
				}
				b.evs = b.evs[:n]
				b.head = 0
			}
		}
		nb[h] = nil
		h++
	}
	switch {
	case h == len(nb):
		nb = nb[:0]
		h = 0
	case h > 64 && 2*h >= len(nb):
		n := copy(nb, nb[h:])
		nb = nb[:n]
		h = 0
	}
	nt.buf[j] = nb
	nt.head[j] = h
	// Evict mapped-but-empty buckets only once they dominate the map —
	// a hot key's bucket then stays put across live/empty cycles.
	if idx != nil && nt.idxEmpty[j] > 64 && 2*nt.idxEmpty[j] >= len(idx) {
		for k, b := range idx {
			if b.empty() {
				delete(idx, k)
				nt.arena.putBucket(b)
			}
		}
		nt.idxEmpty[j] = 0
	}
}

// reset discards all buffered events and returns index buckets to
// the arena.
func (nt *negTracker) reset() {
	for j := range nt.buf {
		nb := nt.buf[j]
		for k := nt.head[j]; k < len(nb); k++ {
			nb[k] = nil
		}
		nt.buf[j] = nb[:0]
		nt.head[j] = 0
		if idx := nt.idx[j]; idx != nil {
			for _, b := range idx {
				nt.arena.putBucket(b)
			}
			clear(idx)
			nt.idxEmpty[j] = 0
		}
	}
}

// buffered counts the live buffered events across all negations.
func (nt *negTracker) buffered() int {
	total := 0
	for j, nb := range nt.buf {
		total += len(nb) - nt.head[j]
	}
	return total
}

// violated reports whether some buffered event of negation j falls
// strictly between the anchoring positive events of binding and
// satisfies all the negation's conditions (paper §4.1, sequence with
// negation). Only non-trailing anchors call it; trailing negations
// are handled through the pending-match deadline discipline.
func (nt *negTracker) violated(j int, binding []*event.Event) bool {
	neg := &nt.negs[j]
	var lo event.Time = -1 << 62
	if neg.Anchor > 0 {
		lo = binding[nt.steps[neg.Anchor-1].Slot].Time.End
	}
	hi := binding[nt.steps[neg.Anchor].Slot].Time.Start
	candidates := nt.buf[j][nt.head[j]:]
	if idx := nt.idx[j]; idx != nil {
		// Probe only the bucket matching the equi-join key; the
		// residual conditions below re-verify it.
		candidates = nil
		if b := idx[neg.HashProbe.Eval(binding)]; b != nil {
			candidates = b.evs[b.head:]
		}
	}
	for _, nv := range candidates {
		if nv.Time.Start <= lo || nv.Time.End >= hi {
			continue
		}
		if nt.condsHold(neg, binding, nv) {
			return true
		}
	}
	return false
}

func (nt *negTracker) condsHold(neg *model.Negation, binding []*event.Event, nv *event.Event) bool {
	copy(nt.scratch, binding)
	nt.scratch[neg.Slot] = nv
	for _, c := range neg.Conds {
		if !c.EvalBool(nt.scratch) {
			return false
		}
	}
	return true
}
