package algebra

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

func intToTime(i int) event.Time { return event.Time(i) }

// compileQuerySpec compiles a model source and converts query qi into
// a PatternSpec (optimized shape: filters eager).
func compileQuerySpec(t testing.TB, src string, qi int, horizon int64) (PatternSpec, *model.Model) {
	t.Helper()
	m, err := model.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	q := m.Queries[qi]
	spec := PatternSpec{
		Steps:    q.Pattern.Steps,
		Negs:     q.Pattern.Negs,
		Filters:  q.Filters,
		NumSlots: q.Env.Len(),
		Horizon:  horizon,
	}
	return spec, m
}

// runPattern drives a pattern like the runtime does: events grouped
// by occurrence end time, one Advance+Process per timestamp, plus a
// final Advance far in the future to flush trailing negations.
func runPattern(p *Pattern, events []*event.Event, flushAt event.Time) []*Match {
	var out []*Match
	i := 0
	for i < len(events) {
		ts := events[i].End()
		j := i
		for j < len(events) && events[j].End() == ts {
			j++
		}
		out = p.Advance(ts, out)
		out = p.Process(events[i:j], out)
		i = j
	}
	out = p.Advance(flushAt, out)
	return out
}

// matchKey canonically renders a match for set comparison.
func matchKey(m *Match) string {
	var b strings.Builder
	for i, e := range m.Binding {
		if i > 0 {
			b.WriteByte('|')
		}
		if e == nil {
			b.WriteByte('_')
		} else {
			fmt.Fprintf(&b, "%s@%d-%d#%v", e.TypeName(), e.Time.Start, e.Time.End, e.Values)
		}
	}
	return b.String()
}

func matchSet(ms []*Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = matchKey(m)
	}
	sort.Strings(keys)
	return keys
}

// bruteForce is the reference matcher: it enumerates every
// assignment of stream events to pattern steps with strictly
// increasing times, applies all filters, checks span <= horizon and
// evaluates negations globally. Trailing negations consider events
// up to lastEnd+horizon (matching the operator's deadline rule).
func bruteForce(spec PatternSpec, events []*event.Event) []*Match {
	n := len(spec.Steps)
	var out []*Match
	binding := make([]*event.Event, spec.NumSlots)
	var rec func(step int, lastEnd event.Time, firstStart event.Time)
	rec = func(step int, lastEnd event.Time, firstStart event.Time) {
		if step == n {
			if violatedRef(spec, binding, events) {
				return
			}
			b := append([]*event.Event(nil), binding...)
			out = append(out, &Match{Binding: b})
			return
		}
		for _, e := range events {
			if e.Schema != spec.Steps[step].Schema {
				continue
			}
			if step > 0 && lastEnd >= e.Time.Start {
				continue
			}
			fs := firstStart
			if step == 0 {
				fs = e.Time.Start
			}
			if e.Time.End-fs > event.Time(spec.Horizon) {
				continue
			}
			binding[spec.Steps[step].Slot] = e
			if !filtersOKRef(spec, binding, step) {
				binding[spec.Steps[step].Slot] = nil
				continue
			}
			rec(step+1, e.Time.End, fs)
			binding[spec.Steps[step].Slot] = nil
		}
	}
	rec(0, 0, 0)
	return out
}

// filtersOKRef applies every filter whose variables are bound after
// the given step (mirrors eager evaluation; outcomes are equivalent
// to applying all filters at the end).
func filtersOKRef(spec PatternSpec, binding []*event.Event, step int) bool {
	for _, f := range spec.Filters {
		ok := true
		for s := range binding {
			if f.Vars().Has(s) && binding[s] == nil {
				ok = false
				break
			}
		}
		if ok && !f.EvalBool(binding) {
			return false
		}
	}
	return true
}

func violatedRef(spec PatternSpec, binding []*event.Event, events []*event.Event) bool {
	n := len(spec.Steps)
	scratch := make([]*event.Event, len(binding))
	for j := range spec.Negs {
		neg := &spec.Negs[j]
		var lo event.Time = -1 << 62
		var hi event.Time = 1 << 62
		if neg.Anchor > 0 {
			lo = binding[spec.Steps[neg.Anchor-1].Slot].Time.End
		}
		if neg.Anchor < n {
			hi = binding[spec.Steps[neg.Anchor].Slot].Time.Start
		} else {
			// Trailing: events after the match but within the
			// horizon deadline can still invalidate it.
			hi = lo + event.Time(spec.Horizon) + 1
		}
		for _, nv := range events {
			if nv.Schema != neg.Schema {
				continue
			}
			if nv.Time.Start <= lo || nv.Time.End >= hi {
				continue
			}
			copy(scratch, binding)
			scratch[neg.Slot] = nv
			condsOK := true
			for _, c := range neg.Conds {
				if !c.EvalBool(scratch) {
					condsOK = false
					break
				}
			}
			if condsOK {
				return true
			}
		}
	}
	return false
}
