// Package algebra implements the six operators of the CAESAR algebra
// (paper §4.1): context initiation CI, context termination CT,
// context window CW, filter FI, projection PR and pattern P, together
// with the context bit vector they operate on and the Match
// representation that flows between pattern, filter and projection.
//
// Operators are stateful and single-goroutine: the runtime
// instantiates one operator chain per stream partition and drives
// each partition from one worker at a time (§6.2).
package algebra

import (
	"fmt"
	"strings"

	"github.com/caesar-cep/caesar/internal/event"
)

// Vector is the context bit vector W (paper §5.1, §6.2): one bit per
// context type, indexed alphabetically by context name, plus the
// application timestamp of the last update. The runtime keeps one
// Vector per stream partition.
type Vector struct {
	bits uint64
	time event.Time
}

// NewVector returns a vector with only the default context active.
func NewVector(defaultIdx int) *Vector {
	return &Vector{bits: 1 << uint(defaultIdx)}
}

// Bits returns the raw bit mask of currently active contexts.
func (v *Vector) Bits() uint64 { return v.bits }

// Time returns the application time of the last update (W.time).
func (v *Vector) Time() event.Time { return v.time }

// Has reports whether a context window of the given index currently
// holds. Constant time (paper §5.1).
func (v *Vector) Has(idx int) bool { return v.bits&(1<<uint(idx)) != 0 }

// ActiveAny reports whether any context in mask currently holds.
func (v *Vector) ActiveAny(mask uint64) bool { return v.bits&mask != 0 }

// Empty reports whether no context window holds.
func (v *Vector) Empty() bool { return v.bits == 0 }

// TransitionKind says whether a transition initiates or terminates a
// context window.
type TransitionKind uint8

const (
	// TransInit starts a context window (CI, §4.1).
	TransInit TransitionKind = iota
	// TransTerm ends a context window (CT, §4.1).
	TransTerm
)

func (k TransitionKind) String() string {
	if k == TransInit {
		return "initiate"
	}
	return "terminate"
}

// Transition is a context window boundary derived by a context
// deriving query at time At. Transitions are collected during a
// stream transaction and applied together at its end, so that all
// queries in the transaction observe the pre-transaction window set —
// this realizes the (t_i, t_t] window semantics of paper Def. 1: the
// initiating event itself is outside the new window, the terminating
// event inside the old one.
type Transition struct {
	Kind    TransitionKind
	Context int
	At      event.Time
}

func (t Transition) String() string {
	return fmt.Sprintf("%s ctx%d@%d", t.Kind, t.Context, t.At)
}

// Apply performs one transition on the vector, maintaining the
// default-context discipline of CI and CT (§4.1): initiating any
// non-default context removes the default window; terminating the
// last window re-activates the default. Re-initiating an already
// active context and terminating an inactive one are no-ops
// (assumption 2 of §3.3: one window per type at a time).
func (v *Vector) Apply(t Transition, defaultIdx int) {
	switch t.Kind {
	case TransInit:
		if v.Has(t.Context) {
			return
		}
		v.bits |= 1 << uint(t.Context)
		if t.Context != defaultIdx {
			v.bits &^= 1 << uint(defaultIdx)
		}
	case TransTerm:
		if !v.Has(t.Context) {
			return
		}
		v.bits &^= 1 << uint(t.Context)
		if v.bits == 0 {
			v.bits = 1 << uint(defaultIdx)
		}
	}
	v.time = t.At
}

// Reset restores the vector to the startup state: only the default
// context holds (paper Def. 4: the default context holds when no
// other does, e.g. at system startup).
func (v *Vector) Reset(defaultIdx int) {
	v.bits = 1 << uint(defaultIdx)
	v.time = 0
}

// String renders the active context indices for diagnostics.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := 0; i < 64; i++ {
		if v.Has(i) {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", i)
			first = false
		}
	}
	fmt.Fprintf(&b, "}@%d", v.time)
	return b.String()
}
