package algebra

import (
	"strings"

	"github.com/caesar-cep/caesar/internal/event"
)

// Match is one event sequence constructed by the pattern operator
// (paper §4.1): the binding of pattern variables to events. Binding
// is indexed by predicate environment slot; slots of negated
// variables stay nil. Time spans the occurrence times of all bound
// events, Arrival is the latest system arrival among them (the
// reference for the maximal latency metric).
type Match struct {
	Binding []*event.Event
	Time    event.Interval
	Arrival int64
}

func (m *Match) String() string {
	var b strings.Builder
	b.WriteString("match[")
	for i, e := range m.Binding {
		if i > 0 {
			b.WriteByte(' ')
		}
		if e == nil {
			b.WriteByte('_')
		} else {
			b.WriteString(e.String())
		}
	}
	b.WriteByte(']')
	return b.String()
}
