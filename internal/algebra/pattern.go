package algebra

import (
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/predicate"
	"github.com/caesar-cep/caesar/internal/wire"
)

// PatternSpec configures a pattern operator instance.
type PatternSpec struct {
	// Steps are the positive SEQ steps in order; Negs the anchored
	// negations (both come from a compiled model query).
	Steps []model.Step
	Negs  []model.Negation
	// Filters are WHERE conjuncts over positive variables. The
	// pattern evaluates each as soon as all its variables are bound
	// (eager predicate evaluation). A non-optimized plan passes nil
	// here and applies the conjuncts in a downstream Filter operator
	// instead (paper Fig. 6a vs. 6b).
	Filters []*predicate.Compiled
	// NumSlots is the predicate environment size (positive + negated
	// variables).
	NumSlots int
	// DisableNegIndex turns off the negation-buffer hash index (used
	// by the ablation benchmarks to quantify its benefit).
	DisableNegIndex bool
	// LegacyKernel selects the preserved per-combination partial
	// kernel instead of the shared-run automaton. The differential
	// tests and ablation benchmarks use it; production plans leave it
	// off.
	LegacyKernel bool
	// Horizon bounds the time span of a match: a partial match whose
	// first event is older than Horizon expires, and a trailing
	// negation holds back emission for Horizon time units. Must be
	// positive.
	Horizon int64
}

// PatternStats counts the work a pattern instance has performed; the
// benchmark harness and tests read these.
//
// EventsSeen, MatchesEmitted and MatchesNegated are kernel-independent
// (the differential tests assert exact parity across kernels). The
// remaining counters describe kernel-internal work and differ by
// construction: the legacy kernel counts materialized partial
// combinations, while the automaton kernel counts shared run nodes
// (PartialsCreated/PartialsExpired) and enumeration-time predicate
// rejections (FilteredOut).
type PatternStats struct {
	EventsSeen      uint64
	PartialsCreated uint64
	PartialsExpired uint64
	MatchesEmitted  uint64
	MatchesNegated  uint64
	FilteredOut     uint64
}

// Footprint is the retained state of a pattern operator: what the
// garbage collector, the telemetry gauges and the tests observe.
// Partials counts legacy-kernel partial combinations; RunNodes and
// PredEntries count the automaton kernel's shared-run DAG (nodes and
// predecessor-set entries — a range predecessor counts as one entry
// regardless of how many nodes it spans, which is exactly the
// sharing the automaton buys).
type Footprint struct {
	Partials    int
	NegBuffered int
	Pending     int
	RunNodes    int
	PredEntries int
}

// Retained sums the footprint's record counts (used by tests that
// only care whether state is held at all).
func (f Footprint) Retained() int {
	return f.Partials + f.NegBuffered + f.Pending + f.RunNodes + f.PredEntries
}

// kernel is the internal engine behind a Pattern: either the
// shared-run automaton (runs.go) or the preserved legacy kernel
// (pattern_legacy.go). Both consume the same compiled Program.
type kernel interface {
	advance(now event.Time, out []*Match) []*Match
	process(batch []*event.Event, out []*Match) []*Match
	reset()
	stats() PatternStats
	footprint() Footprint
	release(ms []*Match)
	arenaChunks() int
	save(enc *wire.Enc, tab *wire.EventTable) error
	load(d *wire.Dec, evs *wire.RestoredEvents) error
}

// Pattern is the P operator (paper §4.1): it consumes an event
// stream and incrementally constructs the event sequences matched by
// SEQ, honoring negation and eagerly applied filter predicates.
// Partial state held between invocations is the query's "context
// history" (§6.2); Reset discards it.
//
// The spec is first compiled into a Program (automaton.go): the SEQ
// steps become automaton states, and WHERE conjuncts are scheduled
// onto the earliest transition (or the latest enumeration level)
// where their variables are bound. The default kernel then runs the
// program over a shared-run DAG (runs.go) with lazy match
// enumeration; PatternSpec.LegacyKernel selects the preserved
// per-combination kernel instead.
//
// All kernel state — run nodes, partial records, binding regions,
// Match and pendingMatch records — lives in a per-operator arena
// (arena.go) and recycles on expiry, rejection, Reset and Release,
// so steady-state processing performs no heap allocation.
type Pattern struct {
	prog *Program
	k    kernel
}

// pendingMatch is a completed match waiting out a trailing
// negation's deadline. Both kernels share the representation (and
// its arena pool).
type pendingMatch struct {
	m        *Match
	lastEnd  event.Time
	deadline event.Time
	killed   bool
}

// NewPattern validates the spec, compiles it and builds the operator.
func NewPattern(spec PatternSpec) (*Pattern, error) {
	prog, err := CompileProgram(spec)
	if err != nil {
		return nil, err
	}
	return NewPatternFromProgram(prog), nil
}

// NewPatternFromProgram builds an operator instance over an already
// compiled program. The plan layer compiles one Program per query
// plan and shares it across all partition instances; the program is
// immutable after compilation, so sharing is safe across workers.
func NewPatternFromProgram(prog *Program) *Pattern {
	p := &Pattern{prog: prog}
	if prog.Spec.LegacyKernel {
		p.k = newLegacyKernel(prog)
	} else {
		p.k = newAutoKernel(prog)
	}
	return p
}

// Program returns the compiled program the operator runs.
func (p *Pattern) Program() *Program { return p.prog }

// Stats returns a copy of the operator counters.
func (p *Pattern) Stats() PatternStats { return p.k.stats() }

// Reset discards all partial state, negation buffers and pending
// emissions. The runtime calls it when the query's original context
// window ends and its history may be safely discarded (§6.2). The
// discarded records return to the arena, so context-window
// close/reopen cycles reuse the same memory instead of churning the
// allocator.
func (p *Pattern) Reset() { p.k.reset() }

// Release returns emitted matches to the operator's arena for reuse.
// The caller that drained Advance/Process output calls it once it has
// projected the matches into derived events; the matches and their
// bindings must not be read afterwards. Callers that retain matches
// (tests, ad-hoc drivers) simply never call it — the arena then grows
// like the pre-arena kernel allocated.
func (p *Pattern) Release(ms []*Match) { p.k.release(ms) }

// ArenaChunks reports how many slabs the operator's arena has
// allocated over its lifetime — the telemetry layer's occupancy
// signal (a warmed steady state allocates none).
func (p *Pattern) ArenaChunks() int { return p.k.arenaChunks() }

// MemoryFootprint returns the operator's retained state counts; the
// garbage collector, the per-query telemetry gauges and tests
// observe it.
func (p *Pattern) MemoryFootprint() Footprint { return p.k.footprint() }

// Advance moves the operator's clock to now: it expires partial
// state older than the horizon, prunes negation buffers, and flushes
// pending matches whose trailing-negation deadline has passed,
// appending them to out. Call once per stream transaction, before
// Process.
func (p *Pattern) Advance(now event.Time, out []*Match) []*Match {
	return p.k.advance(now, out)
}

// Process consumes one batch of events (all with the same occurrence
// end time, per the transaction discipline) and appends completed
// matches to out. Events whose type matches no step or negation are
// ignored.
func (p *Pattern) Process(batch []*event.Event, out []*Match) []*Match {
	return p.k.process(batch, out)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxT(a, b event.Time) event.Time {
	if a > b {
		return a
	}
	return b
}
