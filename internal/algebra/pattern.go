package algebra

import (
	"fmt"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/predicate"
)

// PatternSpec configures a pattern operator instance.
type PatternSpec struct {
	// Steps are the positive SEQ steps in order; Negs the anchored
	// negations (both come from a compiled model query).
	Steps []model.Step
	Negs  []model.Negation
	// Filters are WHERE conjuncts over positive variables. The
	// pattern evaluates each as soon as all its variables are bound
	// (eager predicate evaluation). A non-optimized plan passes nil
	// here and applies the conjuncts in a downstream Filter operator
	// instead (paper Fig. 6a vs. 6b).
	Filters []*predicate.Compiled
	// NumSlots is the predicate environment size (positive + negated
	// variables).
	NumSlots int
	// DisableNegIndex turns off the negation-buffer hash index (used
	// by the ablation benchmarks to quantify its benefit).
	DisableNegIndex bool
	// Horizon bounds the time span of a match: a partial match whose
	// first event is older than Horizon expires, and a trailing
	// negation holds back emission for Horizon time units. Must be
	// positive.
	Horizon int64
}

// PatternStats counts the work a pattern instance has performed; the
// benchmark harness and tests read these.
type PatternStats struct {
	EventsSeen      uint64
	PartialsCreated uint64
	PartialsExpired uint64
	MatchesEmitted  uint64
	MatchesNegated  uint64
	FilteredOut     uint64
}

// Pattern is the P operator (paper §4.1): it consumes an event
// stream and incrementally constructs the event sequences matched by
// SEQ, honoring negation and eagerly applied filter predicates.
// Partial matches held between invocations are the query's "context
// history" (§6.2); Reset discards them.
//
// All kernel state — partial records, binding regions, Match and
// pendingMatch records — lives in a per-operator arena (arena.go) and
// recycles on expiry, rejection, Reset and Release, so steady-state
// extension performs no heap allocation.
type Pattern struct {
	spec  PatternSpec
	arena *kernelArena

	// filterAt[i] lists the indices of spec.Filters that become fully
	// bound once step i is bound.
	filterAt [][]int

	// partials[i] holds prefixes that have bound steps 0..i-1 and
	// await step i (1 <= i < len(Steps)).
	partials [][]*partial
	// negBuf[j] buffers events of negation j's type, bounded by
	// 2*Horizon so that completion-time negation checks see every
	// event that can fall within a live match's span. The buffer is a
	// ring over a slice: negHead[j] marks the first live entry, expiry
	// advances it, and the slice compacts only when the dead prefix
	// dominates — no per-Advance reshuffling.
	negBuf  [][]*event.Event
	negHead []int
	// negIdx[j] indexes the live part of negBuf[j] by the negation's
	// hash-join attribute (nil when the negation has no equi-join
	// condition or indexing is disabled): completion-time checks then
	// probe one bucket instead of scanning the buffer. Buckets are
	// arena-recycled rings that mirror negBuf's head-offset discipline,
	// so expiry pops fronts and appends reuse tail capacity — no map
	// rebuild, no per-trim slice churn. Emptied buckets stay mapped
	// (their key usually comes back); negIdxEmpty[j] counts them, and
	// a sweep returns them to the arena only when they dominate.
	negIdx      []map[event.Value]*negBucket
	negIdxEmpty []int
	// pending holds completed matches waiting out a trailing
	// negation's deadline.
	pending []*pendingMatch

	scratch []*event.Event // negation condition evaluation buffer
	stats   PatternStats
}

// partial is one pattern-match prefix. Records and their binding
// regions are arena-managed; see arena.go for the lifecycle.
type partial struct {
	binding    []*event.Event
	firstStart event.Time
	lastEnd    event.Time
	arrival    int64
}

type pendingMatch struct {
	m        *Match
	lastEnd  event.Time
	deadline event.Time
	killed   bool
}

// negBucket is one hash bucket of a negation index: a ring over a
// slice, like negBuf itself. evs[head:] is the live portion in stream
// order; expiry advances head and compaction runs only when the dead
// prefix dominates. Buckets recycle through the arena.
type negBucket struct {
	evs  []*event.Event
	head int
}

// empty reports whether the bucket holds no live events.
func (b *negBucket) empty() bool { return b.head == len(b.evs) }

// NewPattern validates the spec and builds the operator.
func NewPattern(spec PatternSpec) (*Pattern, error) {
	if len(spec.Steps) == 0 {
		return nil, fmt.Errorf("algebra: pattern needs at least one positive step")
	}
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("algebra: pattern horizon must be positive, got %d", spec.Horizon)
	}
	p := &Pattern{spec: spec, arena: newKernelArena(spec.NumSlots)}
	// Eager filter schedule: a filter runs at the first step where
	// its variable set is fully bound.
	bound := predicate.VarSet(0)
	p.filterAt = make([][]int, len(spec.Steps))
	scheduled := make([]bool, len(spec.Filters))
	for i, st := range spec.Steps {
		bound = bound.With(st.Slot)
		for fi, f := range spec.Filters {
			if !scheduled[fi] && f.Vars().SubsetOf(bound) {
				p.filterAt[i] = append(p.filterAt[i], fi)
				scheduled[fi] = true
			}
		}
	}
	for fi, ok := range scheduled {
		if !ok {
			return nil, fmt.Errorf("algebra: filter %s references unbound variables", spec.Filters[fi])
		}
	}
	p.partials = make([][]*partial, len(spec.Steps))
	p.negBuf = make([][]*event.Event, len(spec.Negs))
	p.negHead = make([]int, len(spec.Negs))
	p.negIdx = make([]map[event.Value]*negBucket, len(spec.Negs))
	p.negIdxEmpty = make([]int, len(spec.Negs))
	for j := range spec.Negs {
		if spec.Negs[j].HashProbe != nil && !spec.DisableNegIndex {
			p.negIdx[j] = map[event.Value]*negBucket{}
		}
	}
	p.scratch = make([]*event.Event, spec.NumSlots)
	return p, nil
}

// Stats returns a copy of the operator counters.
func (p *Pattern) Stats() PatternStats { return p.stats }

// Reset discards all partial matches, negation buffers and pending
// emissions. The runtime calls it when the query's original context
// window ends and its history may be safely discarded (§6.2). The
// discarded records return to the arena, so context-window
// close/reopen cycles reuse the same memory instead of churning the
// allocator.
func (p *Pattern) Reset() {
	for i := range p.partials {
		for _, pa := range p.partials[i] {
			p.arena.putPartial(pa)
		}
		p.partials[i] = p.partials[i][:0]
	}
	for j := range p.negBuf {
		nb := p.negBuf[j]
		for k := p.negHead[j]; k < len(nb); k++ {
			nb[k] = nil
		}
		p.negBuf[j] = nb[:0]
		p.negHead[j] = 0
		if idx := p.negIdx[j]; idx != nil {
			for _, b := range idx {
				p.arena.putBucket(b)
			}
			clear(idx)
			p.negIdxEmpty[j] = 0
		}
	}
	for _, pm := range p.pending {
		p.arena.putMatch(pm.m)
		p.arena.putPending(pm)
	}
	p.pending = p.pending[:0]
}

// Release returns emitted matches to the operator's arena for reuse.
// The caller that drained Advance/Process output calls it once it has
// projected the matches into derived events; the matches and their
// bindings must not be read afterwards. Callers that retain matches
// (tests, ad-hoc drivers) simply never call it — the arena then grows
// like the pre-arena kernel allocated.
func (p *Pattern) Release(ms []*Match) {
	for _, m := range ms {
		p.arena.putMatch(m)
	}
}

// ArenaChunks reports how many slabs the operator's arena has
// allocated over its lifetime — the telemetry layer's occupancy
// signal (a warmed steady state allocates none).
func (p *Pattern) ArenaChunks() int { return p.arena.chunks }

// MemoryFootprint returns the number of retained partials, buffered
// negation events and pending matches; the garbage collector and
// tests observe it.
func (p *Pattern) MemoryFootprint() (partials, negBuffered, pending int) {
	for _, ps := range p.partials {
		partials += len(ps)
	}
	for j, nb := range p.negBuf {
		negBuffered += len(nb) - p.negHead[j]
	}
	return partials, negBuffered, len(p.pending)
}

// Advance moves the operator's clock to now: it expires partial
// matches older than the horizon, prunes negation buffers, and
// flushes pending matches whose trailing-negation deadline has
// passed, appending them to out. Call once per stream transaction,
// before Process.
func (p *Pattern) Advance(now event.Time, out []*Match) []*Match {
	cut := now - event.Time(p.spec.Horizon)
	for i := 1; i < len(p.partials); i++ {
		ps := p.partials[i]
		kept := ps[:0]
		for _, pa := range ps {
			if pa.firstStart >= cut {
				kept = append(kept, pa)
			} else {
				p.stats.PartialsExpired++
				p.arena.putPartial(pa)
			}
		}
		p.partials[i] = kept
	}
	negCut := now - 2*event.Time(p.spec.Horizon)
	for j := range p.negBuf {
		p.expireNegBuf(j, negCut)
	}
	if len(p.pending) > 0 {
		kept := p.pending[:0]
		for _, pm := range p.pending {
			switch {
			case pm.killed:
				p.arena.putMatch(pm.m)
				p.arena.putPending(pm)
			case pm.deadline < now:
				out = append(out, pm.m)
				p.stats.MatchesEmitted++
				p.arena.putPending(pm)
			default:
				kept = append(kept, pm)
			}
		}
		p.pending = kept
	}
	return out
}

// expireNegBuf advances negation j's ring head past expired events,
// trimming the index buckets in step. Events enter the buffer (and
// their bucket) in stream order and End() is non-decreasing, so the
// expired set is a prefix of both the buffer and each bucket — each
// expired event pops its bucket's front. Compaction runs only when
// the dead prefix dominates the buffer, keeping amortized cost
// O(expired) instead of the previous O(live) map rebuild.
func (p *Pattern) expireNegBuf(j int, negCut event.Time) {
	nb := p.negBuf[j]
	h := p.negHead[j]
	idx := p.negIdx[j]
	field := p.spec.Negs[j].HashField
	for h < len(nb) && nb[h].End() < negCut {
		if idx != nil {
			b := idx[nb[h].At(field)]
			b.evs[b.head] = nil
			b.head++
			switch {
			case b.empty():
				b.evs = b.evs[:0]
				b.head = 0
				p.negIdxEmpty[j]++
			case b.head > 32 && 2*b.head >= len(b.evs):
				n := copy(b.evs, b.evs[b.head:])
				for i := n; i < len(b.evs); i++ {
					b.evs[i] = nil
				}
				b.evs = b.evs[:n]
				b.head = 0
			}
		}
		nb[h] = nil
		h++
	}
	switch {
	case h == len(nb):
		nb = nb[:0]
		h = 0
	case h > 64 && 2*h >= len(nb):
		n := copy(nb, nb[h:])
		nb = nb[:n]
		h = 0
	}
	p.negBuf[j] = nb
	p.negHead[j] = h
	// Evict mapped-but-empty buckets only once they dominate the map —
	// a hot key's bucket then stays put across live/empty cycles.
	if idx != nil && p.negIdxEmpty[j] > 64 && 2*p.negIdxEmpty[j] >= len(idx) {
		for k, b := range idx {
			if b.empty() {
				delete(idx, k)
				p.arena.putBucket(b)
			}
		}
		p.negIdxEmpty[j] = 0
	}
}

// Process consumes one batch of events (all with the same occurrence
// end time, per the transaction discipline) and appends completed
// matches to out. Events whose type matches no step or negation are
// ignored.
func (p *Pattern) Process(batch []*event.Event, out []*Match) []*Match {
	for _, e := range batch {
		out = p.processEvent(e, out)
	}
	return out
}

func (p *Pattern) processEvent(e *event.Event, out []*Match) []*Match {
	p.stats.EventsSeen++
	// Negation bookkeeping first: an event can serve both as a step
	// and as a negation of another variable's type.
	for j := range p.spec.Negs {
		n := &p.spec.Negs[j]
		if n.Schema != e.Schema {
			continue
		}
		p.negBuf[j] = append(p.negBuf[j], e)
		if idx := p.negIdx[j]; idx != nil {
			k := e.At(n.HashField)
			b := idx[k]
			switch {
			case b == nil:
				b = p.arena.getBucket()
				idx[k] = b
			case b.empty():
				b.evs = b.evs[:0]
				b.head = 0
				p.negIdxEmpty[j]--
			}
			b.evs = append(b.evs, e)
		}
		if n.Anchor == len(p.spec.Steps) {
			p.killPending(n, j, e)
		}
	}
	steps := p.spec.Steps
	for i := range steps {
		if steps[i].Schema != e.Schema {
			continue
		}
		if i == 0 {
			out = p.startPartial(e, out)
		} else {
			out = p.extendPartials(i, e, out)
		}
	}
	return out
}

// startPartial begins a new prefix at step 0 (or completes a match
// for single-step patterns).
func (p *Pattern) startPartial(e *event.Event, out []*Match) []*Match {
	binding := p.arena.getBinding()
	binding[p.spec.Steps[0].Slot] = e
	if !p.runFilters(0, binding) {
		p.arena.putBinding(binding)
		return out
	}
	p.stats.PartialsCreated++
	if len(p.spec.Steps) == 1 {
		return p.complete(binding, e.Time.Start, e.Time.End, e.Arrival, out)
	}
	pa := p.arena.getPartial()
	pa.binding = binding
	pa.firstStart = e.Time.Start
	pa.lastEnd = e.Time.End
	pa.arrival = e.Arrival
	p.partials[1] = append(p.partials[1], pa)
	return out
}

func (p *Pattern) extendPartials(i int, e *event.Event, out []*Match) []*Match {
	slot := p.spec.Steps[i].Slot
	last := i == len(p.spec.Steps)-1
	// Iterate over a snapshot length: completions during iteration
	// never append to partials[i].
	ps := p.partials[i]
	for _, pa := range ps {
		// Strict sequencing (§4.1): e_i.time < e_{i+1}.time; for
		// interval events the previous match part must end before the
		// next begins.
		if pa.lastEnd >= e.Time.Start {
			continue
		}
		binding := p.arena.getBinding()
		copy(binding, pa.binding)
		binding[slot] = e
		if !p.runFilters(i, binding) {
			p.arena.putBinding(binding)
			continue
		}
		p.stats.PartialsCreated++
		arrival := maxI64(pa.arrival, e.Arrival)
		if last {
			out = p.complete(binding, pa.firstStart, e.Time.End, arrival, out)
		} else {
			ext := p.arena.getPartial()
			ext.binding = binding
			ext.firstStart = pa.firstStart
			ext.lastEnd = e.Time.End
			ext.arrival = arrival
			p.partials[i+1] = append(p.partials[i+1], ext)
		}
	}
	return out
}

func (p *Pattern) runFilters(step int, binding []*event.Event) bool {
	for _, fi := range p.filterAt[step] {
		if !p.spec.Filters[fi].EvalBool(binding) {
			p.stats.FilteredOut++
			return false
		}
	}
	return true
}

// complete finalizes a full binding: leading and mid-anchored
// negations are checked against the buffered negation events; a
// trailing negation defers emission until its deadline. The binding's
// ownership moves into the emitted Match (or back to the arena on
// rejection).
func (p *Pattern) complete(binding []*event.Event, firstStart, lastEnd event.Time, arrival int64, out []*Match) []*Match {
	n := len(p.spec.Steps)
	for j := range p.spec.Negs {
		neg := &p.spec.Negs[j]
		if neg.Anchor == n {
			continue
		}
		if p.negationViolated(neg, j, binding) {
			p.stats.MatchesNegated++
			p.arena.putBinding(binding)
			return out
		}
	}
	m := p.arena.getMatch()
	m.Binding = binding
	m.Time = event.Interval{Start: firstStart, End: lastEnd}
	m.Arrival = arrival
	if p.hasTrailingNeg() {
		pm := p.arena.getPending()
		pm.m = m
		pm.lastEnd = lastEnd
		pm.deadline = lastEnd + event.Time(p.spec.Horizon)
		p.pending = append(p.pending, pm)
		return out
	}
	p.stats.MatchesEmitted++
	return append(out, m)
}

func (p *Pattern) hasTrailingNeg() bool {
	n := len(p.spec.Steps)
	for j := range p.spec.Negs {
		if p.spec.Negs[j].Anchor == n {
			return true
		}
	}
	return false
}

// negationViolated reports whether some buffered event of negation
// neg falls strictly between the anchoring positive events and
// satisfies all the negation's conditions (paper §4.1, sequence with
// negation).
func (p *Pattern) negationViolated(neg *model.Negation, j int, binding []*event.Event) bool {
	var lo event.Time = -1 << 62
	if neg.Anchor > 0 {
		lo = binding[p.spec.Steps[neg.Anchor-1].Slot].Time.End
	}
	hi := binding[p.spec.Steps[neg.Anchor].Slot].Time.Start
	candidates := p.negBuf[j][p.negHead[j]:]
	if idx := p.negIdx[j]; idx != nil {
		// Probe only the bucket matching the equi-join key; the
		// residual conditions below re-verify it.
		candidates = nil
		if b := idx[neg.HashProbe.Eval(binding)]; b != nil {
			candidates = b.evs[b.head:]
		}
	}
	for _, nv := range candidates {
		if nv.Time.Start <= lo || nv.Time.End >= hi {
			continue
		}
		if p.negCondsHold(neg, binding, nv) {
			return true
		}
	}
	return false
}

func (p *Pattern) negCondsHold(neg *model.Negation, binding []*event.Event, nv *event.Event) bool {
	copy(p.scratch, binding)
	p.scratch[neg.Slot] = nv
	for _, c := range neg.Conds {
		if !c.EvalBool(p.scratch) {
			return false
		}
	}
	return true
}

// killPending invalidates pending matches whose trailing negation is
// violated by the newly arrived event nv.
func (p *Pattern) killPending(neg *model.Negation, j int, nv *event.Event) {
	for _, pm := range p.pending {
		if pm.killed || nv.Time.Start <= pm.lastEnd {
			continue
		}
		if p.negCondsHold(neg, pm.m.Binding, nv) {
			pm.killed = true
			p.stats.MatchesNegated++
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
