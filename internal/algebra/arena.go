package algebra

import (
	"github.com/caesar-cep/caesar/internal/event"
)

// kernelArena is the pattern operator's allocation recycler (see
// DESIGN.md §3.2). The pattern hot loop used to heap-allocate three
// things per extension: a *partial record, a fresh binding slice, and
// (on completion) a *Match. The arena replaces all three with
// free-list recycling backed by chunked slabs:
//
//   - partial records are carved from fixed-size chunks; a chunk is
//     never reallocated, so record pointers stay valid for the
//     operator's lifetime, and retired records return to a free list;
//   - bindings are fixed-stride regions (stride = the query's slot
//     count) carved from chunked flat backing arrays. A region's
//     lifetime follows its owner: partial → Match → released back to
//     the free list when the partial expires, the match is rejected,
//     or the caller returns emitted matches via Pattern.Release;
//   - Match and pendingMatch records recycle the same way.
//
// In steady state — free lists warm — partial extension performs no
// heap allocation at all; growth allocates one chunk per chunkSize
// records, amortizing to well under one allocation per operation.
//
// The arena is single-goroutine, like the operator that owns it.
type kernelArena struct {
	stride int // binding slots per region

	partialChunk []partial // current slab; carved, never grown in place
	partialUsed  int
	partialFree  []*partial

	bindChunk []*event.Event // current flat backing slab
	bindUsed  int
	bindFree  [][]*event.Event

	matchFree  []*Match
	pendFree   []*pendingMatch
	bucketFree []*negBucket

	// Automaton-kernel pools: run nodes carve from chunked slabs like
	// partial records (pointer-stable, generation-stamped on reuse);
	// predecessor lists and run buckets recycle whole backing slices.
	nodeChunk    []runNode
	nodeUsed     int
	nodeFree     []*runNode
	predListFree [][]predRef
	runBktFree   []*runBucket

	// chunks counts slab allocations (partial and binding chunks) —
	// the arena's growth, surfaced by the telemetry layer as the
	// per-operator occupancy signal: a steady state allocates no new
	// chunks, so the counter flat-lines once the free lists warm up.
	chunks int
}

// chunkSize is the number of records (or binding regions) carved from
// one slab allocation.
const chunkSize = 256

func newKernelArena(stride int) *kernelArena {
	return &kernelArena{stride: stride}
}

// getPartial returns a zeroed partial record without a binding.
func (a *kernelArena) getPartial() *partial {
	if n := len(a.partialFree); n > 0 {
		p := a.partialFree[n-1]
		a.partialFree = a.partialFree[:n-1]
		return p
	}
	if a.partialUsed == len(a.partialChunk) {
		a.partialChunk = make([]partial, chunkSize)
		a.partialUsed = 0
		a.chunks++
	}
	p := &a.partialChunk[a.partialUsed]
	a.partialUsed++
	return p
}

// putPartial retires a record and its binding region.
func (a *kernelArena) putPartial(p *partial) {
	a.putBinding(p.binding)
	p.binding = nil
	a.partialFree = append(a.partialFree, p)
}

// getBinding returns a zeroed binding region of stride slots. The
// region is capacity-capped so an accidental append can never bleed
// into a neighboring region.
func (a *kernelArena) getBinding() []*event.Event {
	if n := len(a.bindFree); n > 0 {
		b := a.bindFree[n-1]
		a.bindFree = a.bindFree[:n-1]
		for i := range b {
			b[i] = nil
		}
		return b
	}
	if a.bindUsed+a.stride > len(a.bindChunk) {
		a.bindChunk = make([]*event.Event, a.stride*chunkSize)
		a.bindUsed = 0
		a.chunks++
	}
	b := a.bindChunk[a.bindUsed : a.bindUsed+a.stride : a.bindUsed+a.stride]
	a.bindUsed += a.stride
	return b
}

// putBinding returns a region to the free list. The stale event
// pointers are cleared on reuse, not here, so a released Match's
// binding stays readable until the region actually recycles.
func (a *kernelArena) putBinding(b []*event.Event) {
	if b == nil {
		return
	}
	a.bindFree = append(a.bindFree, b)
}

// getMatch returns a recycled or fresh Match.
func (a *kernelArena) getMatch() *Match {
	if n := len(a.matchFree); n > 0 {
		m := a.matchFree[n-1]
		a.matchFree = a.matchFree[:n-1]
		return m
	}
	return &Match{}
}

// putMatch retires a Match and its binding region.
func (a *kernelArena) putMatch(m *Match) {
	a.putBinding(m.Binding)
	m.Binding = nil
	a.matchFree = append(a.matchFree, m)
}

// getPending returns a recycled or fresh pendingMatch record.
func (a *kernelArena) getPending() *pendingMatch {
	if n := len(a.pendFree); n > 0 {
		pm := a.pendFree[n-1]
		a.pendFree = a.pendFree[:n-1]
		*pm = pendingMatch{}
		return pm
	}
	return &pendingMatch{}
}

// putPending retires a pendingMatch record (not its Match — the match
// either went to the caller or was retired separately).
func (a *kernelArena) putPending(pm *pendingMatch) {
	pm.m = nil
	a.pendFree = append(a.pendFree, pm)
}

// getBucket returns an empty negation-index bucket. A recycled bucket
// keeps its event slice capacity, so a key that cycles between live
// and empty stops allocating once the free list warms. Fresh buckets
// start with room for a few events: the append-growth chain
// (1→2→4→8) otherwise dominates the allocation profile of
// negation-heavy workloads, where every join key mints a bucket.
func (a *kernelArena) getBucket() *negBucket {
	if n := len(a.bucketFree); n > 0 {
		b := a.bucketFree[n-1]
		a.bucketFree = a.bucketFree[:n-1]
		return b
	}
	return &negBucket{evs: make([]*event.Event, 0, 8)}
}

// putBucket retires a bucket, dropping its event references but
// keeping the slice capacity for reuse.
func (a *kernelArena) putBucket(b *negBucket) {
	for i := range b.evs {
		b.evs[i] = nil
	}
	b.evs = b.evs[:0]
	b.head = 0
	a.bucketFree = append(a.bucketFree, b)
}

// getNode returns a cleared run node. Its generation stamp survives
// recycling (putNode bumps it), which is what lets stale predecessor
// references detect that their target was reclaimed.
func (a *kernelArena) getNode() *runNode {
	if n := len(a.nodeFree); n > 0 {
		nd := a.nodeFree[n-1]
		a.nodeFree = a.nodeFree[:n-1]
		return nd
	}
	if a.nodeUsed == len(a.nodeChunk) {
		a.nodeChunk = make([]runNode, chunkSize)
		a.nodeUsed = 0
		a.chunks++
	}
	nd := &a.nodeChunk[a.nodeUsed]
	a.nodeUsed++
	return nd
}

// putNode retires a run node. The caller already returned its
// predecessor list (freeNode); everything else is cleared here and
// the generation advances so dangling refs go inert.
func (a *kernelArena) putNode(nd *runNode) {
	nd.ev = nil
	nd.pb = nil
	nd.pbGen = 0
	nd.predLo = 0
	nd.predHi = 0
	nd.maxFS = 0
	nd.gen++
	a.nodeFree = append(a.nodeFree, nd)
}

// getPredList returns an empty predecessor list, reusing a retired
// backing array when one is available.
func (a *kernelArena) getPredList() []predRef {
	if n := len(a.predListFree); n > 0 {
		l := a.predListFree[n-1]
		a.predListFree = a.predListFree[:n-1]
		return l
	}
	return nil
}

// putPredList retires a predecessor list, dropping its node
// references but keeping the capacity.
func (a *kernelArena) putPredList(l []predRef) {
	for i := range l {
		l[i] = predRef{}
	}
	a.predListFree = append(a.predListFree, l[:0])
}

// getRunBucket returns an empty run bucket. Like run nodes, buckets
// keep their generation stamp across recycling so ranges into an
// evicted bucket resolve to nothing.
func (a *kernelArena) getRunBucket() *runBucket {
	if n := len(a.runBktFree); n > 0 {
		b := a.runBktFree[n-1]
		a.runBktFree = a.runBktFree[:n-1]
		return b
	}
	return &runBucket{chainMax: minTime}
}

// putRunBucket retires an empty run bucket (its runs were already
// reclaimed) and bumps its generation.
func (a *kernelArena) putRunBucket(b *runBucket) {
	for i := range b.nodes {
		b.nodes[i] = nil
	}
	b.nodes = b.nodes[:0]
	b.head = 0
	b.base = 0
	b.chainMax = minTime
	b.gen++
	a.runBktFree = append(a.runBktFree, b)
}
