package algebra

import (
	"fmt"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/predicate"
)

// Program is a PatternSpec compiled into a chained-event automaton
// (DESIGN.md §3.5). State s of the automaton accepts sequences that
// have bound steps 0..s; consuming an event of step s+1's type moves
// a run from state s to s+1. Compilation classifies every WHERE
// conjunct by the transition where its variables become bound:
//
//   - start filters (filterAt[0]) gate run creation at state 0;
//   - a unary filter of transition i reads only step i's event and is
//     evaluated once per consumed event, before any predecessor work;
//   - a key filter is an equi-join between an expression over step
//     i-1 alone and one over step i alone: state i-1 is then hash
//     bucketed by the predecessor-side key, and consuming an event
//     probes one bucket instead of scanning the state;
//   - a pair filter reads exactly steps i-1 and i and is evaluated
//     per (predecessor, event) pair at extension time;
//   - a deep filter reads some step older than i-1; it cannot be
//     evaluated against a shared predecessor set, so it is deferred
//     to match enumeration and scheduled at the earliest (deepest)
//     step it reads (enumAt).
//
// The final transition never materializes a run node, so its pair
// filters are scheduled as enumeration filters too.
//
// A Program is immutable after compilation and shared by every
// operator instance of its query plan.
type Program struct {
	Spec PatternSpec

	// filterAt[i] lists the indices of Spec.Filters that become fully
	// bound once step i is bound — the eager evaluation schedule,
	// shared with the legacy kernel.
	filterAt [][]int

	// trans[i] drives the consumption of step i's events (1 <= i <
	// len(Steps)); trans[0] is unused (step 0 starts runs).
	trans []transition

	// enumAt[s] lists the filter indices evaluated when the backward
	// match enumeration binds step s's event (all steps > s are bound
	// at that point).
	enumAt [][]int

	// slotOf[i] is Steps[i].Slot.
	slotOf []int

	hasTrailing bool
}

// transition is the compiled consumption of one positive step.
type transition struct {
	slot     int // binding slot of this step
	prevSlot int // binding slot of the predecessor step

	unary []int // filter indices over {slot} only
	pair  []int // filter indices over exactly {prevSlot, slot}

	// keyed marks an extracted equi-join: keyPrev reads only the
	// predecessor step, keyCur only this step, and both sides have
	// the same hashable static kind.
	keyed   bool
	keyPrev *predicate.Compiled
	keyCur  *predicate.Compiled
	keyKind event.Kind
}

// NumSteps returns the number of positive steps.
func (pr *Program) NumSteps() int { return len(pr.Spec.Steps) }

// hashableKind reports whether map-key equality on event.Value agrees
// with predicate equality for values of static kind k. Int, string
// and bool attributes always hold exactly their declared kind
// (event.New enforces it; predicate arithmetic preserves it), and the
// compiled comparison for those kinds requires matching runtime kinds
// — so bucketing by the raw Value is exact. Float is excluded: float
// fields may hold int values, and cross-kind numeric equality is not
// a hashable relation.
func hashableKind(k event.Kind) bool {
	return k == event.KindInt || k == event.KindString || k == event.KindBool
}

// CompileProgram validates a spec and compiles it into an automaton
// program.
func CompileProgram(spec PatternSpec) (*Program, error) {
	if len(spec.Steps) == 0 {
		return nil, fmt.Errorf("algebra: pattern needs at least one positive step")
	}
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("algebra: pattern horizon must be positive, got %d", spec.Horizon)
	}
	n := len(spec.Steps)
	pr := &Program{
		Spec:     spec,
		filterAt: make([][]int, n),
		trans:    make([]transition, n),
		enumAt:   make([][]int, n),
		slotOf:   make([]int, n),
	}
	for i, st := range spec.Steps {
		pr.slotOf[i] = st.Slot
	}
	for _, neg := range spec.Negs {
		if neg.Anchor == n {
			pr.hasTrailing = true
		}
	}
	// Eager filter schedule: a filter runs at the first step where
	// its variable set is fully bound.
	bound := predicate.VarSet(0)
	scheduled := make([]bool, len(spec.Filters))
	for i, st := range spec.Steps {
		bound = bound.With(st.Slot)
		for fi, f := range spec.Filters {
			if !scheduled[fi] && f.Vars().SubsetOf(bound) {
				pr.filterAt[i] = append(pr.filterAt[i], fi)
				scheduled[fi] = true
			}
		}
	}
	for fi, ok := range scheduled {
		if !ok {
			return nil, fmt.Errorf("algebra: filter %s references unbound variables", spec.Filters[fi])
		}
	}
	// Classify each transition's filters. Step 0 has no transition:
	// filterAt[0] gates run creation directly.
	for i := 1; i < n; i++ {
		tr := &pr.trans[i]
		tr.slot = pr.slotOf[i]
		tr.prevSlot = pr.slotOf[i-1]
		curOnly := predicate.VarSet(0).With(tr.slot)
		pairMask := curOnly.With(tr.prevSlot)
		final := i == n-1
		for _, fi := range pr.filterAt[i] {
			f := spec.Filters[fi]
			if f.Vars().SubsetOf(curOnly) {
				tr.unary = append(tr.unary, fi)
				continue
			}
			if !tr.keyed && pr.extractKey(tr, f) {
				continue
			}
			if f.Vars().SubsetOf(pairMask) {
				if final {
					// Completion builds no node; verify the pair
					// during enumeration of the last predecessor.
					pr.enumAt[i-1] = append(pr.enumAt[i-1], fi)
				} else {
					tr.pair = append(tr.pair, fi)
				}
				continue
			}
			pr.enumAt[pr.minStep(f)] = append(pr.enumAt[pr.minStep(f)], fi)
		}
	}
	return pr, nil
}

// extractKey tries to use filter f as transition tr's hash key: a
// top-level equality whose sides read exactly the predecessor step
// and exactly the current step, with matching hashable kinds.
func (pr *Program) extractKey(tr *transition, f *predicate.Compiled) bool {
	l, r, ok := f.EquiJoin()
	if !ok {
		return false
	}
	prevOnly := predicate.VarSet(0).With(tr.prevSlot)
	curOnly := predicate.VarSet(0).With(tr.slot)
	switch {
	case l.Vars() == prevOnly && r.Vars() == curOnly:
		// oriented as written
	case l.Vars() == curOnly && r.Vars() == prevOnly:
		l, r = r, l
	default:
		return false
	}
	if l.Kind() != r.Kind() || !hashableKind(l.Kind()) {
		return false
	}
	tr.keyed = true
	tr.keyPrev = l
	tr.keyCur = r
	tr.keyKind = l.Kind()
	return true
}

// minStep returns the earliest step index whose slot filter f reads.
func (pr *Program) minStep(f *predicate.Compiled) int {
	for i, s := range pr.slotOf {
		if f.Vars().Has(s) {
			return i
		}
	}
	// Unreachable for scheduled filters: every filter reads at least
	// one positive slot or is constant (scheduled at step 0, which
	// never classifies through here).
	return 0
}
