package algebra

import (
	"github.com/caesar-cep/caesar/internal/event"
)

// minTime is the automaton's "no time yet" sentinel; it matches the
// open lower bound the negation interval check uses.
const minTime = event.Time(-1 << 62)

// autoKernel runs a compiled Program over a shared-run DAG
// (DESIGN.md §3.5). Where the legacy kernel materializes one partial
// record per open step combination, the automaton keeps ONE run node
// per (state, consumed event): the node back-points to its whole
// predecessor set — a contiguous range of a predecessor bucket when
// the transition has no per-pair residual filters, an explicit list
// otherwise. Update work per event is therefore independent of how
// many combinations the event participates in; full matches are
// enumerated lazily from the DAG only when a completion event
// arrives, walking back-pointers oldest-first so emission order is
// identical to the legacy kernel's.
type autoKernel struct {
	prog  *Program
	arena *kernelArena
	nt    *negTracker

	// states[s] (0 <= s <= n-2) holds the runs that have bound steps
	// 0..s and await step s+1; nil for single-step patterns.
	states []*runState

	pending []*pendingMatch
	// pendSorted tracks whether pending is nondecreasing in lastEnd;
	// trailing-negation kills then scan only the eligible prefix
	// (lastEnd < violator start) instead of the whole list.
	pendSorted bool

	// curCut is the monotone maximum of (now - Horizon) over all
	// Advance calls since the last Reset: the exact expiry boundary
	// the enumeration applies per path at the leaf.
	curCut event.Time

	// scratch is the enumeration binding: positive slots are written
	// as the walk descends, then copied into an arena region on emit.
	scratch []*event.Event
	// emitEnd is the completing event's End during an enumeration.
	emitEnd event.Time

	statsVal    PatternStats
	predEntries int
}

// runState is one automaton state's run storage. When the outgoing
// transition extracted a hash key, runs are bucketed by the key
// evaluated over their own event (the predecessor side of the
// equi-join); otherwise a single bucket holds every run in arrival
// order.
type runState struct {
	keyed   bool
	all     *runBucket
	buckets map[event.Value]*runBucket
	empties int
	nodes   int

	// endSorted records whether runs entered this state in
	// nondecreasing End order (the transaction discipline's normal
	// case). While it holds, the eligible predecessor set of a new
	// event is a prefix found by binary search; when a disordered
	// batch breaks it, ranges fall back to whole-bucket spans and the
	// enumeration's per-node time check keeps results exact.
	endSorted bool
	lastEnd   event.Time
}

// runBucket is a ring over a slice of run nodes, with the same
// head/compaction discipline as the negation buffers. base is the
// absolute sequence number of nodes[0]; predecessor ranges store
// absolute sequences so head advances and compaction never
// invalidate them. gen increments when the bucket is recycled, so a
// stale range (its runs all expired) resolves to nothing rather than
// to another bucket's runs.
type runBucket struct {
	nodes    []*runNode
	head     int
	base     int64
	gen      uint32
	chainMax event.Time // running max of inserted runs' maxFS
}

func (b *runBucket) empty() bool { return b.head == len(b.nodes) }

// runNode is one shared run: the event consumed by the step it
// bound, plus its predecessor set in one of two forms. maxFS is an
// upper bound on the maximum first-start over every path reaching
// the node; the watermark trim uses it to reclaim whole subtrees
// while the enumeration's leaf check enforces the horizon exactly.
type runNode struct {
	ev  *event.Event
	gen uint32

	// Range form (transitions without pair filters): predecessors
	// are pb's runs with sequence in [predLo, predHi).
	pb             *runBucket
	pbGen          uint32
	predLo, predHi int64
	// List form (pair-filtered transitions): the survivors, with
	// generation stamps so expired-and-recycled runs are skipped.
	preds []predRef

	maxFS event.Time
}

type predRef struct {
	n   *runNode
	gen uint32
}

func newAutoKernel(prog *Program) *autoKernel {
	spec := &prog.Spec
	arena := newKernelArena(spec.NumSlots)
	k := &autoKernel{
		prog:       prog,
		arena:      arena,
		nt:         newNegTracker(spec, arena),
		scratch:    make([]*event.Event, spec.NumSlots),
		pendSorted: true,
		curCut:     minTime,
	}
	if n := len(spec.Steps); n > 1 {
		k.states = make([]*runState, n-1)
		for s := range k.states {
			st := &runState{endSorted: true, lastEnd: minTime}
			if prog.trans[s+1].keyed {
				st.keyed = true
				st.buckets = map[event.Value]*runBucket{}
			} else {
				st.all = arena.getRunBucket()
			}
			k.states[s] = st
		}
	}
	return k
}

func (k *autoKernel) stats() PatternStats { return k.statsVal }

func (k *autoKernel) arenaChunks() int { return k.arena.chunks }

func (k *autoKernel) footprint() Footprint {
	nodes := 0
	for _, st := range k.states {
		nodes += st.nodes
	}
	return Footprint{
		NegBuffered: k.nt.buffered(),
		Pending:     len(k.pending),
		RunNodes:    nodes,
		PredEntries: k.predEntries,
	}
}

func (k *autoKernel) release(ms []*Match) {
	for _, m := range ms {
		k.arena.putMatch(m)
	}
}

// advance trims expired runs by the horizon watermark, prunes the
// negation buffers and flushes matured pending matches.
func (k *autoKernel) advance(now event.Time, out []*Match) []*Match {
	if cut := now - event.Time(k.prog.Spec.Horizon); cut > k.curCut {
		k.curCut = cut
	}
	for _, st := range k.states {
		k.trimState(st, k.curCut)
	}
	k.nt.expire(now - 2*event.Time(k.prog.Spec.Horizon))
	if len(k.pending) > 0 {
		kept := k.pending[:0]
		for _, pm := range k.pending {
			switch {
			case pm.killed:
				k.arena.putMatch(pm.m)
				k.arena.putPending(pm)
			case pm.deadline < now:
				out = append(out, pm.m)
				k.statsVal.MatchesEmitted++
				k.arena.putPending(pm)
			default:
				kept = append(kept, pm)
			}
		}
		k.pending = kept
		if len(kept) == 0 {
			k.pendSorted = true
		}
	}
	return out
}

// trimState pops every bucket's dead prefix: runs whose maxFS bound
// fell behind the watermark can reach no live match. maxFS is
// nondecreasing within a bucket for states past the first (it
// inherits the predecessor bucket's running max), so the prefix pop
// is exact there; for state 0 it is conservative and the enumeration
// leaf check picks up the slack.
func (k *autoKernel) trimState(st *runState, cut event.Time) {
	if !st.keyed {
		k.trimBucket(st, st.all, cut)
		return
	}
	for _, b := range st.buckets {
		k.trimBucket(st, b, cut)
	}
	// Evict mapped-but-empty buckets only once they dominate the map;
	// the generation stamp keeps ranges over evicted buckets inert.
	if st.empties > 64 && 2*st.empties >= len(st.buckets) {
		for key, b := range st.buckets {
			if b.empty() {
				delete(st.buckets, key)
				k.arena.putRunBucket(b)
			}
		}
		st.empties = 0
	}
}

func (k *autoKernel) trimBucket(st *runState, b *runBucket, cut event.Time) {
	popped := false
	for b.head < len(b.nodes) && b.nodes[b.head].maxFS < cut {
		nd := b.nodes[b.head]
		b.nodes[b.head] = nil
		b.head++
		k.freeNode(nd)
		st.nodes--
		k.statsVal.PartialsExpired++
		popped = true
	}
	switch {
	case b.empty() && len(b.nodes) > 0:
		// Normalize an emptied bucket: the next run starts a fresh
		// slice, and base advances so stale ranges clamp to nothing.
		b.base += int64(len(b.nodes))
		b.nodes = b.nodes[:0]
		b.head = 0
		if popped && st.keyed {
			st.empties++
		}
	case b.head > 64 && 2*b.head >= len(b.nodes):
		n := copy(b.nodes, b.nodes[b.head:])
		for i := n; i < len(b.nodes); i++ {
			b.nodes[i] = nil
		}
		b.nodes = b.nodes[:n]
		b.base += int64(b.head)
		b.head = 0
	}
}

// freeNode recycles a run node and its predecessor set.
func (k *autoKernel) freeNode(nd *runNode) {
	if nd.preds != nil {
		k.predEntries -= len(nd.preds)
		k.arena.putPredList(nd.preds)
		nd.preds = nil
	} else if nd.pb != nil {
		k.predEntries--
	}
	k.arena.putNode(nd)
}

func (k *autoKernel) reset() {
	for _, st := range k.states {
		if st.keyed {
			for _, b := range st.buckets {
				k.resetBucket(b)
			}
			st.empties = len(st.buckets)
		} else {
			k.resetBucket(st.all)
		}
		st.nodes = 0
		st.endSorted = true
		st.lastEnd = minTime
	}
	k.nt.reset()
	for _, pm := range k.pending {
		k.arena.putMatch(pm.m)
		k.arena.putPending(pm)
	}
	k.pending = k.pending[:0]
	k.pendSorted = true
	k.curCut = minTime
}

func (k *autoKernel) resetBucket(b *runBucket) {
	for i := b.head; i < len(b.nodes); i++ {
		k.freeNode(b.nodes[i])
		b.nodes[i] = nil
	}
	b.base += int64(len(b.nodes))
	b.nodes = b.nodes[:0]
	b.head = 0
	b.chainMax = minTime
}

func (k *autoKernel) process(batch []*event.Event, out []*Match) []*Match {
	for _, e := range batch {
		out = k.processEvent(e, out)
	}
	return out
}

func (k *autoKernel) processEvent(e *event.Event, out []*Match) []*Match {
	k.statsVal.EventsSeen++
	spec := &k.prog.Spec
	n := len(spec.Steps)
	// Negation bookkeeping first: an event can serve both as a step
	// and as a negation of another variable's type.
	for j := range spec.Negs {
		ng := &spec.Negs[j]
		if ng.Schema != e.Schema {
			continue
		}
		k.nt.observe(j, e)
		if ng.Anchor == n {
			k.killPending(j, e)
		}
	}
	for i := range spec.Steps {
		if spec.Steps[i].Schema != e.Schema {
			continue
		}
		switch {
		case n == 1:
			out = k.completeSingle(e, out)
		case i == 0:
			k.startRun(e)
		case i == n-1:
			out = k.complete(e, out)
		default:
			k.extend(i, e)
		}
	}
	return out
}

// startRun creates a state-0 run (the automaton's initial
// transition) after the start filters pass.
func (k *autoKernel) startRun(e *event.Event) {
	k.scratch[k.prog.slotOf[0]] = e
	for _, fi := range k.prog.filterAt[0] {
		if !k.prog.Spec.Filters[fi].EvalBool(k.scratch) {
			k.statsVal.FilteredOut++
			return
		}
	}
	k.statsVal.PartialsCreated++
	nd := k.arena.getNode()
	nd.ev = e
	nd.maxFS = e.Time.Start
	k.insert(0, nd)
}

// insert files a run into its state, bucketing by the outgoing
// transition's predecessor-side key. The caller has the run's event
// in scratch at its own slot.
func (k *autoKernel) insert(s int, nd *runNode) {
	st := k.states[s]
	var b *runBucket
	if st.keyed {
		tr := &k.prog.trans[s+1]
		key := tr.keyPrev.Eval(k.scratch)
		if key.Kind != tr.keyKind {
			// The compiled equality requires matching runtime kinds,
			// so no future event can join with this run: drop it.
			k.freeNode(nd)
			return
		}
		kk := normKey(key)
		b = st.buckets[kk]
		switch {
		case b == nil:
			b = k.arena.getRunBucket()
			st.buckets[kk] = b
		case b.empty() && st.empties > 0:
			// Reviving a trimmed-empty bucket (trim normalized it).
			st.empties--
		}
	} else {
		b = st.all
	}
	if end := nd.ev.Time.End; end < st.lastEnd {
		st.endSorted = false
	} else {
		st.lastEnd = end
	}
	b.nodes = append(b.nodes, nd)
	b.chainMax = maxT(b.chainMax, nd.maxFS)
	st.nodes++
}

// extend consumes a mid-sequence step: probe the predecessor state,
// resolve the eligible run set, and file ONE new run that shares it.
func (k *autoKernel) extend(i int, e *event.Event) {
	tr := &k.prog.trans[i]
	k.scratch[tr.slot] = e
	for _, fi := range tr.unary {
		if !k.prog.Spec.Filters[fi].EvalBool(k.scratch) {
			k.statsVal.FilteredOut++
			return
		}
	}
	b := k.lookup(i-1, tr)
	if b == nil || b.empty() {
		return
	}
	st := k.states[i-1]
	lo := b.base + int64(b.head)
	hi := b.base + int64(len(b.nodes))
	if st.endSorted {
		hi = b.searchEnd(e.Time.Start)
	}
	if hi <= lo {
		return
	}
	var nd *runNode
	if len(tr.pair) > 0 {
		// Residual pair predicates: verify each eligible predecessor
		// now and share the survivor list.
		preds := k.arena.getPredList()
		for q := lo; q < hi; q++ {
			pn := b.nodes[q-b.base]
			if pn.ev.Time.End >= e.Time.Start {
				continue
			}
			k.scratch[tr.prevSlot] = pn.ev
			ok := true
			for _, fi := range tr.pair {
				if !k.prog.Spec.Filters[fi].EvalBool(k.scratch) {
					k.statsVal.FilteredOut++
					ok = false
					break
				}
			}
			if ok {
				preds = append(preds, predRef{n: pn, gen: pn.gen})
			}
		}
		if len(preds) == 0 {
			k.arena.putPredList(preds)
			return
		}
		nd = k.arena.getNode()
		nd.preds = preds
		k.predEntries += len(preds)
	} else {
		// Constant-time extension: the whole eligible set as a range.
		nd = k.arena.getNode()
		nd.pb = b
		nd.pbGen = b.gen
		nd.predLo = lo
		nd.predHi = hi
		k.predEntries++
	}
	nd.ev = e
	nd.maxFS = b.chainMax
	k.statsVal.PartialsCreated++
	k.insert(i, nd)
}

// complete consumes the final step's event: instead of materializing
// anything, it enumerates full matches backward through the DAG.
func (k *autoKernel) complete(e *event.Event, out []*Match) []*Match {
	n := len(k.prog.Spec.Steps)
	tr := &k.prog.trans[n-1]
	k.scratch[tr.slot] = e
	for _, fi := range tr.unary {
		if !k.prog.Spec.Filters[fi].EvalBool(k.scratch) {
			k.statsVal.FilteredOut++
			return out
		}
	}
	b := k.lookup(n-2, tr)
	if b == nil || b.empty() {
		return out
	}
	st := k.states[n-2]
	lo := b.base + int64(b.head)
	hi := b.base + int64(len(b.nodes))
	if st.endSorted {
		hi = b.searchEnd(e.Time.Start)
	}
	if hi <= lo {
		return out
	}
	k.emitEnd = e.Time.End
	return k.walkRange(n-2, b, b.gen, lo, hi, e.Time.Start, e.Arrival, out)
}

// completeSingle handles single-step patterns: the start filters are
// the whole automaton.
func (k *autoKernel) completeSingle(e *event.Event, out []*Match) []*Match {
	k.scratch[k.prog.slotOf[0]] = e
	for _, fi := range k.prog.filterAt[0] {
		if !k.prog.Spec.Filters[fi].EvalBool(k.scratch) {
			k.statsVal.FilteredOut++
			return out
		}
	}
	k.statsVal.PartialsCreated++
	k.emitEnd = e.Time.End
	return k.emit(e.Arrival, out)
}

// lookup resolves the predecessor bucket for a keyed or unkeyed
// transition; scratch holds the current event at tr.slot.
func (k *autoKernel) lookup(s int, tr *transition) *runBucket {
	st := k.states[s]
	if !st.keyed {
		return st.all
	}
	key := tr.keyCur.Eval(k.scratch)
	if key.Kind != tr.keyKind {
		return nil
	}
	return st.buckets[normKey(key)]
}

// walkRange enumerates the runs of b with sequence in [lo, hi),
// oldest first — the same order the legacy kernel's partial lists
// preserve. gen guards against the bucket having been recycled.
func (k *autoKernel) walkRange(s int, b *runBucket, gen uint32, lo, hi int64, succStart event.Time, arrival int64, out []*Match) []*Match {
	if b.gen != gen {
		return out
	}
	if l := b.base + int64(b.head); lo < l {
		lo = l
	}
	if h := b.base + int64(len(b.nodes)); hi > h {
		hi = h
	}
	for q := lo; q < hi; q++ {
		out = k.walkNode(s, b.nodes[q-b.base], succStart, arrival, out)
	}
	return out
}

// walkNode binds step s's event from nd and recurses into nd's
// predecessor set; at the leaf the horizon, negation and emission
// logic run against the fully bound scratch.
func (k *autoKernel) walkNode(s int, nd *runNode, succStart event.Time, arrival int64, out []*Match) []*Match {
	if nd.ev.Time.End >= succStart {
		// Strict sequencing (§4.1): e_s must end before e_{s+1}
		// starts. Ranges over disordered or partially trimmed buckets
		// may span ineligible runs, so the check is per node.
		return out
	}
	if nd.maxFS < k.curCut {
		return out // every path through this run expired
	}
	k.scratch[k.prog.slotOf[s]] = nd.ev
	for _, fi := range k.prog.enumAt[s] {
		if !k.prog.Spec.Filters[fi].EvalBool(k.scratch) {
			k.statsVal.FilteredOut++
			return out
		}
	}
	arrival = maxI64(arrival, nd.ev.Arrival)
	if s == 0 {
		if nd.ev.Time.Start < k.curCut {
			return out // exact horizon check: this path expired
		}
		return k.emit(arrival, out)
	}
	if nd.preds != nil {
		for _, p := range nd.preds {
			if p.n.gen != p.gen {
				continue // predecessor expired and was recycled
			}
			out = k.walkNode(s-1, p.n, nd.ev.Time.Start, arrival, out)
		}
		return out
	}
	return k.walkRange(s-1, nd.pb, nd.pbGen, nd.predLo, nd.predHi, nd.ev.Time.Start, arrival, out)
}

// emit finalizes one enumerated binding: anchored negations are
// checked against the shared negation buffers, then the scratch is
// copied into an arena region and emitted (or parked behind the
// trailing-negation deadline).
func (k *autoKernel) emit(arrival int64, out []*Match) []*Match {
	spec := &k.prog.Spec
	n := len(spec.Steps)
	for j := range spec.Negs {
		if spec.Negs[j].Anchor == n {
			continue
		}
		if k.nt.violated(j, k.scratch) {
			k.statsVal.MatchesNegated++
			return out
		}
	}
	binding := k.arena.getBinding()
	copy(binding, k.scratch)
	m := k.arena.getMatch()
	m.Binding = binding
	m.Time = event.Interval{Start: k.scratch[k.prog.slotOf[0]].Time.Start, End: k.emitEnd}
	m.Arrival = arrival
	if k.prog.hasTrailing {
		pm := k.arena.getPending()
		pm.m = m
		pm.lastEnd = k.emitEnd
		pm.deadline = k.emitEnd + event.Time(spec.Horizon)
		if ln := len(k.pending); ln > 0 && k.pending[ln-1].lastEnd > pm.lastEnd {
			k.pendSorted = false
		}
		k.pending = append(k.pending, pm)
		return out
	}
	k.statsVal.MatchesEmitted++
	return append(out, m)
}

// killPending invalidates pending matches whose trailing negation is
// violated by the newly arrived event nv. Only matches that end
// strictly before nv starts are eligible; while pending is sorted by
// lastEnd those form a prefix, so the scan stops at the first
// ineligible record instead of walking the whole list — the
// timestamp-interval side of the shared-run negation design.
func (k *autoKernel) killPending(j int, nv *event.Event) {
	neg := &k.prog.Spec.Negs[j]
	for _, pm := range k.pending {
		if nv.Time.Start <= pm.lastEnd {
			if k.pendSorted {
				break
			}
			continue
		}
		if pm.killed {
			continue
		}
		if k.nt.condsHold(neg, pm.m.Binding, nv) {
			pm.killed = true
			k.statsVal.MatchesNegated++
		}
	}
}

// searchEnd binary-searches the first live run with End >= start and
// returns its absolute sequence (End is nondecreasing in a sorted
// state, so [head, found) is exactly the strict-predecessor set).
func (b *runBucket) searchEnd(start event.Time) int64 {
	lo, hi := b.head, len(b.nodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.nodes[mid].ev.Time.End < start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return b.base + int64(lo)
}

// normKey canonicalizes a hash key Value so struct equality in the
// bucket map matches predicate equality: constructors zero the
// unused payload fields.
func normKey(v event.Value) event.Value {
	switch v.Kind {
	case event.KindInt:
		return event.Int64(v.Int)
	case event.KindString:
		return event.String(v.Str)
	case event.KindBool:
		return event.Bool(v.Int != 0)
	default:
		return v
	}
}
