package algebra

import (
	"fmt"
	"math"
	"sort"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/wire"
)

// Snapshot support (DESIGN.md §3.9): every stateful operator can
// serialize itself into a wire.Enc and restore from a wire.Dec. Event
// pointers are interned through a wire.EventTable so aliasing — the
// same *event.Event held by a run node, a negation buffer and a
// pending match binding — survives the round trip. Encoding is
// deterministic: keyed run buckets are written in sorted key order.
//
// The save methods never mutate the kernel; the load methods assume a
// freshly constructed (or Reset) operator of the identical compiled
// program and rebuild all arena-managed state through the arena's
// getters, so a restored kernel recycles records exactly like one
// that reached the same state by processing events.

// predecessor-set forms on the wire.
const (
	predNone  = 0 // state-0 node: no predecessor set
	predList  = 1 // explicit survivor list (pair-filtered transition)
	predRange = 2 // contiguous range of a predecessor bucket
)

// Save serializes the pattern operator's kernel state. Events are
// interned in tab; the caller encodes the table itself (wire docs).
func (p *Pattern) Save(enc *wire.Enc, tab *wire.EventTable) error {
	return p.k.save(enc, tab)
}

// Load restores kernel state saved by Save into this operator, which
// must run the identical compiled program. Existing state is
// discarded first.
func (p *Pattern) Load(d *wire.Dec, evs *wire.RestoredEvents) error {
	return p.k.load(d, evs)
}

func (k *legacyKernel) save(*wire.Enc, *wire.EventTable) error {
	return fmt.Errorf("algebra: the legacy pattern kernel does not support snapshots")
}

func (k *legacyKernel) load(*wire.Dec, *wire.RestoredEvents) error {
	return fmt.Errorf("algebra: the legacy pattern kernel does not support snapshots")
}

// valueLess is the deterministic bucket-key order used on the wire:
// by kind, then by payload.
func valueLess(a, b event.Value) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	switch a.Kind {
	case event.KindInt, event.KindBool:
		return a.Int < b.Int
	case event.KindFloat:
		return a.Float < b.Float
	case event.KindString:
		return a.Str < b.Str
	default:
		return false
	}
}

func (k *autoKernel) save(enc *wire.Enc, tab *wire.EventTable) error {
	nodeID := make(map[*runNode]uint64)
	bucketID := make(map[*runBucket]uint64)

	saveBucket := func(b *runBucket) {
		bucketID[b] = uint64(len(bucketID) + 1)
		enc.Time(b.chainMax)
		live := len(b.nodes) - b.head
		enc.Uvarint(uint64(live))
		for i := b.head; i < len(b.nodes); i++ {
			nd := b.nodes[i]
			nodeID[nd] = uint64(len(nodeID) + 1)
			enc.Uvarint(tab.ID(nd.ev))
			enc.Time(nd.maxFS)
			switch {
			case nd.preds != nil:
				// Keep only predecessors that are still live; a list
				// that empties becomes an inert range.
				liveRefs := 0
				for _, p := range nd.preds {
					if p.n.gen == p.gen {
						liveRefs++
					}
				}
				if liveRefs == 0 {
					enc.Byte(predRange)
					enc.Uvarint(0) // dead-bucket sentinel
					continue
				}
				enc.Byte(predList)
				enc.Uvarint(uint64(liveRefs))
				for _, p := range nd.preds {
					if p.n.gen != p.gen {
						continue
					}
					id, ok := nodeID[p.n]
					if !ok {
						// A live predecessor must have been encoded with
						// its own (earlier) state.
						panic("algebra: snapshot: predecessor node not yet encoded")
					}
					enc.Uvarint(id)
				}
			case nd.pb != nil:
				// Clamp the range to its bucket's live window and
				// re-base it to the restored bucket's coordinates
				// (base=0, head=0). A stale or empty range is inert.
				enc.Byte(predRange)
				if nd.pb.gen != nd.pbGen {
					enc.Uvarint(0)
					continue
				}
				pb := nd.pb
				lo, hi := nd.predLo, nd.predHi
				if l := pb.base + int64(pb.head); lo < l {
					lo = l
				}
				if h := pb.base + int64(len(pb.nodes)); hi > h {
					hi = h
				}
				if hi <= lo {
					enc.Uvarint(0)
					continue
				}
				id, ok := bucketID[pb]
				if !ok {
					panic("algebra: snapshot: predecessor bucket not yet encoded")
				}
				enc.Uvarint(id)
				enc.Varint(lo - (pb.base + int64(pb.head)))
				enc.Varint(hi - (pb.base + int64(pb.head)))
			default:
				enc.Byte(predNone)
			}
		}
	}

	enc.Uvarint(uint64(len(k.states)))
	for _, st := range k.states {
		enc.Bool(st.endSorted)
		enc.Time(st.lastEnd)
		if !st.keyed {
			enc.Bool(false)
			saveBucket(st.all)
			continue
		}
		enc.Bool(true)
		keys := make([]event.Value, 0, len(st.buckets))
		for key, b := range st.buckets {
			if !b.empty() {
				keys = append(keys, key)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return valueLess(keys[i], keys[j]) })
		enc.Uvarint(uint64(len(keys)))
		for _, key := range keys {
			enc.Value(key)
			saveBucket(st.buckets[key])
		}
	}

	enc.Bool(k.pendSorted)
	enc.Uvarint(uint64(len(k.pending)))
	for _, pm := range k.pending {
		enc.Bool(pm.killed)
		enc.Time(pm.lastEnd)
		enc.Time(pm.deadline)
		enc.Time(pm.m.Time.Start)
		enc.Time(pm.m.Time.End)
		enc.Varint(pm.m.Arrival)
		enc.Uvarint(uint64(len(pm.m.Binding)))
		for _, ev := range pm.m.Binding {
			enc.Uvarint(tab.ID(ev))
		}
	}

	enc.Time(k.curCut)
	enc.U64(k.statsVal.EventsSeen)
	enc.U64(k.statsVal.PartialsCreated)
	enc.U64(k.statsVal.PartialsExpired)
	enc.U64(k.statsVal.MatchesEmitted)
	enc.U64(k.statsVal.MatchesNegated)
	enc.U64(k.statsVal.FilteredOut)

	k.nt.save(enc, tab)
	return nil
}

func (k *autoKernel) load(d *wire.Dec, evs *wire.RestoredEvents) error {
	k.reset()
	var nodes []*runNode
	var buckets []*runBucket
	// dead anchors inert range predecessors: its generation never
	// matches the stored 0, so enumeration through it yields nothing.
	dead := &runBucket{gen: 1, chainMax: minTime}

	loadBucket := func(st *runState, b *runBucket) error {
		buckets = append(buckets, b)
		b.chainMax = d.Time()
		n := d.Uvarint()
		if d.Err() != nil {
			return d.Err()
		}
		if n > uint64(d.Rem()) {
			return fmt.Errorf("algebra: snapshot: node count %d exceeds payload", n)
		}
		for i := uint64(0); i < n; i++ {
			nd := k.arena.getNode()
			nd.ev = evs.Lookup(d, d.Uvarint())
			nd.maxFS = d.Time()
			switch form := d.Byte(); form {
			case predNone:
			case predList:
				cnt := d.Uvarint()
				if d.Err() != nil {
					return d.Err()
				}
				if cnt > uint64(d.Rem()) {
					return fmt.Errorf("algebra: snapshot: pred list %d exceeds payload", cnt)
				}
				preds := k.arena.getPredList()
				for j := uint64(0); j < cnt; j++ {
					id := d.Uvarint()
					if id == 0 || id > uint64(len(nodes)) {
						return fmt.Errorf("algebra: snapshot: pred node id %d out of range", id)
					}
					pn := nodes[id-1]
					preds = append(preds, predRef{n: pn, gen: pn.gen})
				}
				if len(preds) == 0 {
					// cnt==0 never happens on save (encoded as a dead
					// range), but stay robust: inert range.
					k.arena.putPredList(preds)
					nd.pb = dead
					nd.pbGen = 0
					k.predEntries++
				} else {
					nd.preds = preds
					k.predEntries += len(preds)
				}
			case predRange:
				id := d.Uvarint()
				if id == 0 {
					nd.pb = dead
					nd.pbGen = 0
				} else {
					if id > uint64(len(buckets)) {
						return fmt.Errorf("algebra: snapshot: pred bucket id %d out of range", id)
					}
					pb := buckets[id-1]
					nd.pb = pb
					nd.pbGen = pb.gen
					nd.predLo = d.Varint()
					nd.predHi = d.Varint()
				}
				k.predEntries++
			default:
				return fmt.Errorf("algebra: snapshot: bad predecessor form %d", form)
			}
			if d.Err() != nil {
				return d.Err()
			}
			if nd.ev == nil {
				return fmt.Errorf("algebra: snapshot: run node without event")
			}
			nodes = append(nodes, nd)
			b.nodes = append(b.nodes, nd)
			st.nodes++
		}
		return nil
	}

	if n := d.Uvarint(); n != uint64(len(k.states)) {
		if d.Err() != nil {
			return d.Err()
		}
		return fmt.Errorf("algebra: snapshot: %d states on the wire, program has %d", n, len(k.states))
	}
	for _, st := range k.states {
		st.endSorted = d.Bool()
		st.lastEnd = d.Time()
		keyed := d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		if keyed != st.keyed {
			return fmt.Errorf("algebra: snapshot: state keying mismatch (wire %v, program %v)", keyed, st.keyed)
		}
		if !keyed {
			if err := loadBucket(st, st.all); err != nil {
				return err
			}
			continue
		}
		nb := d.Uvarint()
		if d.Err() != nil {
			return d.Err()
		}
		if nb > uint64(d.Rem()) {
			return fmt.Errorf("algebra: snapshot: bucket count %d exceeds payload", nb)
		}
		for i := uint64(0); i < nb; i++ {
			key := d.Value()
			b := k.arena.getRunBucket()
			st.buckets[key] = b
			if err := loadBucket(st, b); err != nil {
				return err
			}
		}
	}

	k.pendSorted = d.Bool()
	np := d.Uvarint()
	if d.Err() != nil {
		return d.Err()
	}
	if np > uint64(d.Rem()) {
		return fmt.Errorf("algebra: snapshot: pending count %d exceeds payload", np)
	}
	for i := uint64(0); i < np; i++ {
		pm := k.arena.getPending()
		pm.killed = d.Bool()
		pm.lastEnd = d.Time()
		pm.deadline = d.Time()
		m := k.arena.getMatch()
		m.Time.Start = d.Time()
		m.Time.End = d.Time()
		m.Arrival = d.Varint()
		nb := d.Uvarint()
		if d.Err() != nil {
			k.arena.putMatch(m)
			k.arena.putPending(pm)
			return d.Err()
		}
		if int(nb) != k.prog.Spec.NumSlots {
			k.arena.putMatch(m)
			k.arena.putPending(pm)
			return fmt.Errorf("algebra: snapshot: binding width %d, program has %d slots", nb, k.prog.Spec.NumSlots)
		}
		binding := k.arena.getBinding()
		for j := range binding {
			binding[j] = evs.Lookup(d, d.Uvarint())
		}
		m.Binding = binding
		pm.m = m
		k.pending = append(k.pending, pm)
	}

	k.curCut = d.Time()
	k.statsVal.EventsSeen = d.U64()
	k.statsVal.PartialsCreated = d.U64()
	k.statsVal.PartialsExpired = d.U64()
	k.statsVal.MatchesEmitted = d.U64()
	k.statsVal.MatchesNegated = d.U64()
	k.statsVal.FilteredOut = d.U64()
	if d.Err() != nil {
		return d.Err()
	}

	return k.nt.load(d, evs)
}

// save writes the live portion of every negation buffer. The hash
// indexes are not written: load rebuilds them through observe, which
// reproduces the bucket layout deterministically.
func (nt *negTracker) save(enc *wire.Enc, tab *wire.EventTable) {
	enc.Uvarint(uint64(len(nt.buf)))
	for j := range nt.buf {
		live := nt.buf[j][nt.head[j]:]
		enc.Uvarint(uint64(len(live)))
		for _, e := range live {
			enc.Uvarint(tab.ID(e))
		}
	}
}

func (nt *negTracker) load(d *wire.Dec, evs *wire.RestoredEvents) error {
	nt.reset()
	n := d.Uvarint()
	if d.Err() != nil {
		return d.Err()
	}
	if n != uint64(len(nt.buf)) {
		return fmt.Errorf("algebra: snapshot: %d negation buffers on the wire, program has %d", n, len(nt.buf))
	}
	for j := range nt.buf {
		cnt := d.Uvarint()
		if d.Err() != nil {
			return d.Err()
		}
		if cnt > uint64(d.Rem()) {
			return fmt.Errorf("algebra: snapshot: negation buffer %d exceeds payload", cnt)
		}
		for i := uint64(0); i < cnt; i++ {
			e := evs.Lookup(d, d.Uvarint())
			if d.Err() != nil {
				return d.Err()
			}
			if e == nil {
				return fmt.Errorf("algebra: snapshot: nil event in negation buffer")
			}
			nt.observe(j, e)
		}
	}
	return d.Err()
}

// Save serializes the aggregation window state.
func (a *Aggregate) Save(enc *wire.Enc) {
	enc.Bool(a.open)
	if !a.open {
		return
	}
	enc.Varint(a.winIdx)
	enc.Varint(a.count)
	enc.Varint(a.arrival)
	for _, s := range a.sums {
		enc.U64(math.Float64bits(s))
	}
	for _, v := range a.vals {
		enc.Value(v)
	}
}

// Load restores window state saved by Save. The operator must have
// been built from the identical aggregation specs.
func (a *Aggregate) Load(d *wire.Dec) error {
	a.open = d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if !a.open {
		return nil
	}
	a.winIdx = d.Varint()
	a.count = d.Varint()
	a.arrival = d.Varint()
	for i := range a.sums {
		a.sums[i] = math.Float64frombits(d.U64())
	}
	// Writing through a.vals also fills the mins/maxs/lasts views —
	// they alias the same backing array.
	for i := range a.vals {
		a.vals[i] = d.Value()
	}
	return d.Err()
}

// Restore sets the vector to a snapshotted state.
func (v *Vector) Restore(bits uint64, t event.Time) {
	v.bits = bits
	v.time = t
}
