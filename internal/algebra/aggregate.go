package algebra

import (
	"fmt"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

// Aggregate is the tumbling-window aggregation operator (an engine
// extension, see DESIGN.md): it consumes the matches of its upstream
// pattern, assigns each to the tumbling window containing its
// occurrence end time, and derives one event per non-empty window
// when the window closes. The derived event's occurrence time is the
// window's last instant, so downstream queries consume it in the
// transaction that closes the window.
type Aggregate struct {
	out   *event.Schema
	specs []model.AggSpec
	width int64

	open   bool
	winIdx int64 // window index: window k covers [k*width, (k+1)*width)
	count  int64
	sums   []float64
	// mins/maxs/lasts are adjacent spec-length views of vals, one
	// backing array, so openWindow clears all three with a single
	// range loop (one memclr) instead of three.
	vals    []event.Value
	mins    []event.Value
	maxs    []event.Value
	lasts   []event.Value
	arrival int64
}

// NewAggregate validates specs against the output schema and builds
// the operator.
func NewAggregate(out *event.Schema, specs []model.AggSpec, width int64) (*Aggregate, error) {
	if width <= 0 {
		return nil, fmt.Errorf("algebra: tumble width must be positive, got %d", width)
	}
	if len(specs) != out.NumFields() {
		return nil, fmt.Errorf("algebra: aggregation to %s needs %d expressions, got %d",
			out.Name(), out.NumFields(), len(specs))
	}
	for i, s := range specs {
		want := out.Field(i).Kind
		got := s.ResultKind()
		if want != got && !(want == event.KindFloat && got == event.KindInt) {
			return nil, fmt.Errorf("algebra: %s.%s expects %s, aggregate %s yields %s",
				out.Name(), out.Field(i).Name, want, s.Kind, got)
		}
		switch s.Kind {
		case model.AggSum, model.AggAvg, model.AggMin, model.AggMax:
			if s.Arg == nil {
				return nil, fmt.Errorf("algebra: %s needs an argument", s.Kind)
			}
			k := s.Arg.Kind()
			numericOK := k == event.KindInt || k == event.KindFloat || (k == event.KindBool && s.Kind == model.AggSum)
			if s.Kind == model.AggMin || s.Kind == model.AggMax {
				numericOK = numericOK || k == event.KindString
			}
			if !numericOK {
				return nil, fmt.Errorf("algebra: %s over %s values is not supported", s.Kind, k)
			}
		}
	}
	n := len(specs)
	vals := make([]event.Value, 3*n)
	return &Aggregate{
		out:   out,
		specs: specs,
		width: width,
		sums:  make([]float64, n),
		vals:  vals,
		mins:  vals[0*n : 1*n : 1*n],
		maxs:  vals[1*n : 2*n : 2*n],
		lasts: vals[2*n : 3*n : 3*n],
	}, nil
}

// Advance flushes every window that ends at or before now, taking
// output records from alloc and appending the derived events to out.
// Call once per transaction before Process.
func (a *Aggregate) Advance(now event.Time, alloc event.Allocator, out []*event.Event) []*event.Event {
	if a.open && int64(now) >= (a.winIdx+1)*a.width {
		out = append(out, a.flush(alloc))
	}
	return out
}

// Process folds matches into the current window, flushing completed
// windows as later matches arrive.
func (a *Aggregate) Process(matches []*Match, alloc event.Allocator, out []*event.Event) []*event.Event {
	for _, m := range matches {
		k := int64(m.Time.End) / a.width
		if m.Time.End < 0 {
			k = (int64(m.Time.End) - a.width + 1) / a.width
		}
		if a.open && k != a.winIdx {
			out = append(out, a.flush(alloc))
		}
		if !a.open {
			a.openWindow(k)
		}
		a.fold(m)
	}
	return out
}

// Reset discards the open window (context history GC).
func (a *Aggregate) Reset() { a.open = false }

// Pending reports whether a window is currently accumulating.
func (a *Aggregate) Pending() bool { return a.open }

func (a *Aggregate) openWindow(k int64) {
	a.open = true
	a.winIdx = k
	a.count = 0
	a.arrival = 0
	for i := range a.sums {
		a.sums[i] = 0
	}
	// One clear over the shared backing array zeroes mins, maxs and
	// lasts together (the compiler lowers this loop to a memclr).
	for i := range a.vals {
		a.vals[i] = event.Value{}
	}
}

func (a *Aggregate) fold(m *Match) {
	a.count++
	if m.Arrival > a.arrival {
		a.arrival = m.Arrival
	}
	for i, s := range a.specs {
		if s.Arg == nil {
			continue
		}
		v := s.Arg.Eval(m.Binding)
		switch s.Kind {
		case model.AggLast:
			a.lasts[i] = v
		case model.AggSum, model.AggAvg:
			a.sums[i] += v.AsFloat()
		case model.AggMin:
			if a.mins[i].IsZero() {
				a.mins[i] = v
			} else if cmp, ok := v.Compare(a.mins[i]); ok && cmp < 0 {
				a.mins[i] = v
			}
		case model.AggMax:
			if a.maxs[i].IsZero() {
				a.maxs[i] = v
			} else if cmp, ok := v.Compare(a.maxs[i]); ok && cmp > 0 {
				a.maxs[i] = v
			}
		}
	}
}

func (a *Aggregate) flush(alloc event.Allocator) *event.Event {
	end := event.Time((a.winIdx+1)*a.width - 1)
	e := alloc.Alloc(a.out, event.Point(end), len(a.specs))
	e.Arrival = a.arrival
	for i, s := range a.specs {
		var v event.Value
		switch s.Kind {
		case model.AggLast:
			v = a.lasts[i]
		case model.AggCount:
			v = event.Int64(a.count)
		case model.AggAvg:
			v = event.Float64(a.sums[i] / float64(a.count))
		case model.AggSum:
			if s.ResultKind() == event.KindInt {
				v = event.Int64(int64(a.sums[i]))
			} else {
				v = event.Float64(a.sums[i])
			}
		case model.AggMin:
			v = a.mins[i]
		case model.AggMax:
			v = a.maxs[i]
		}
		if a.out.Field(i).Kind == event.KindFloat && v.Kind == event.KindInt {
			v = event.Float64(float64(v.Int))
		}
		e.Values[i] = v
	}
	a.open = false
	return e
}
