package algebra

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVectorStartup(t *testing.T) {
	v := NewVector(2)
	if !v.Has(2) || v.Has(0) || v.Empty() {
		t.Errorf("startup vector = %v", v)
	}
	if v.Bits() != 1<<2 || v.Time() != 0 {
		t.Errorf("bits/time = %b/%d", v.Bits(), v.Time())
	}
}

func TestVectorInitTerm(t *testing.T) {
	const def = 0
	v := NewVector(def)

	// Initiating a context removes the default window (CI, §4.1).
	v.Apply(Transition{Kind: TransInit, Context: 3, At: 10}, def)
	if v.Has(def) || !v.Has(3) || v.Time() != 10 {
		t.Errorf("after init: %v", v)
	}

	// Overlapping second context.
	v.Apply(Transition{Kind: TransInit, Context: 5, At: 11}, def)
	if !v.Has(3) || !v.Has(5) {
		t.Errorf("overlap lost: %v", v)
	}

	// Re-initiating an active context is a no-op (assumption 2) and
	// must not advance the clock.
	v.Apply(Transition{Kind: TransInit, Context: 3, At: 12}, def)
	if v.Time() != 11 {
		t.Errorf("re-init advanced time: %v", v)
	}

	// Terminating one of two windows keeps the other; no default yet.
	v.Apply(Transition{Kind: TransTerm, Context: 3, At: 13}, def)
	if v.Has(3) || !v.Has(5) || v.Has(def) {
		t.Errorf("after term 3: %v", v)
	}

	// Terminating the last window re-activates the default (CT).
	v.Apply(Transition{Kind: TransTerm, Context: 5, At: 14}, def)
	if !v.Has(def) || v.Bits() != 1<<def {
		t.Errorf("default not restored: %v", v)
	}

	// Terminating an inactive context is a no-op.
	v.Apply(Transition{Kind: TransTerm, Context: 9, At: 15}, def)
	if v.Time() != 14 {
		t.Errorf("no-op term advanced time: %v", v)
	}
}

func TestVectorInitDefaultExplicitly(t *testing.T) {
	const def = 1
	v := NewVector(def)
	v.Apply(Transition{Kind: TransInit, Context: 2, At: 1}, def)
	// Explicitly re-initiating the default must not clear itself.
	v.Apply(Transition{Kind: TransInit, Context: def, At: 2}, def)
	if !v.Has(def) || !v.Has(2) {
		t.Errorf("explicit default init broken: %v", v)
	}
}

func TestVectorReset(t *testing.T) {
	v := NewVector(0)
	v.Apply(Transition{Kind: TransInit, Context: 4, At: 9}, 0)
	v.Reset(0)
	if v.Bits() != 1 || v.Time() != 0 {
		t.Errorf("reset = %v", v)
	}
}

func TestVectorActiveAny(t *testing.T) {
	v := NewVector(0)
	v.Apply(Transition{Kind: TransInit, Context: 3, At: 1}, 0)
	if !v.ActiveAny(1 << 3) {
		t.Error("ActiveAny(3) false")
	}
	if v.ActiveAny(1<<0 | 1<<2) {
		t.Error("ActiveAny(0|2) true")
	}
}

func TestVectorString(t *testing.T) {
	v := NewVector(1)
	v.Apply(Transition{Kind: TransInit, Context: 4, At: 7}, 1)
	s := v.String()
	if !strings.Contains(s, "4") || !strings.Contains(s, "@7") {
		t.Errorf("String = %q", s)
	}
	if TransInit.String() != "initiate" || TransTerm.String() != "terminate" {
		t.Error("TransitionKind strings broken")
	}
	if got := (Transition{Kind: TransTerm, Context: 2, At: 3}).String(); got != "terminate ctx2@3" {
		t.Errorf("Transition String = %q", got)
	}
}

// TestVectorNeverEmpty is the invariant property: under any sequence
// of transitions, some context window always holds (the default fills
// the gap, paper Def. 4).
func TestVectorNeverEmpty(t *testing.T) {
	const def = 0
	f := func(ops []uint16) bool {
		v := NewVector(def)
		for i, op := range ops {
			tr := Transition{
				Kind:    TransitionKind(op % 2),
				Context: int(op/2) % 8,
				At:      intToTime(i),
			}
			v.Apply(tr, def)
			if v.Empty() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestVectorDefaultOnlyWhenAlone: after any transition sequence that
// never explicitly initiates the default, the default bit is set only
// when it is the sole active context.
func TestVectorDefaultOnlyWhenAlone(t *testing.T) {
	const def = 0
	f := func(ops []uint16) bool {
		v := NewVector(def)
		for i, op := range ops {
			ctx := 1 + int(op/2)%7 // never the default
			v.Apply(Transition{Kind: TransitionKind(op % 2), Context: ctx, At: intToTime(i)}, def)
			if v.Has(def) && v.Bits() != 1<<def {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
