package algebra

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

// refPattern is the pre-arena pattern kernel, preserved verbatim as
// the differential-testing reference: per-extension heap-allocated
// bindings and *partial records, full negation-index rebuilds in
// Advance, fresh maps in Reset. The arena kernel must emit exactly
// the same matches under any interleaving of Advance, Process, Reset
// and Release.
type refPattern struct {
	spec     PatternSpec
	filterAt [][]int
	partials [][]*refPartial
	negBuf   [][]*event.Event
	negIdx   []map[event.Value][]*event.Event
	pending  []*refPending
	scratch  []*event.Event
}

type refPartial struct {
	binding    []*event.Event
	firstStart event.Time
	lastEnd    event.Time
	arrival    int64
}

type refPending struct {
	m        *Match
	lastEnd  event.Time
	deadline event.Time
	killed   bool
}

func newRefPattern(spec PatternSpec) *refPattern {
	p := &refPattern{spec: spec}
	// Reuse the arena kernel's eager-filter schedule rather than
	// duplicating it; the schedule logic is not under test here.
	kp, err := NewPattern(spec)
	if err != nil {
		panic(err)
	}
	p.filterAt = kp.prog.filterAt
	p.partials = make([][]*refPartial, len(spec.Steps))
	p.negBuf = make([][]*event.Event, len(spec.Negs))
	p.negIdx = make([]map[event.Value][]*event.Event, len(spec.Negs))
	for j := range spec.Negs {
		if spec.Negs[j].HashProbe != nil && !spec.DisableNegIndex {
			p.negIdx[j] = map[event.Value][]*event.Event{}
		}
	}
	p.scratch = make([]*event.Event, spec.NumSlots)
	return p
}

func (p *refPattern) reset() {
	for i := range p.partials {
		p.partials[i] = nil
	}
	for j := range p.negBuf {
		p.negBuf[j] = nil
		if p.negIdx[j] != nil {
			p.negIdx[j] = map[event.Value][]*event.Event{}
		}
	}
	p.pending = nil
}

func (p *refPattern) advance(now event.Time, out []*Match) []*Match {
	cut := now - event.Time(p.spec.Horizon)
	for i := 1; i < len(p.partials); i++ {
		ps := p.partials[i]
		kept := ps[:0]
		for _, pa := range ps {
			if pa.firstStart >= cut {
				kept = append(kept, pa)
			}
		}
		p.partials[i] = kept
	}
	negCut := now - 2*event.Time(p.spec.Horizon)
	for j := range p.negBuf {
		nb := p.negBuf[j]
		kept := nb[:0]
		for _, e := range nb {
			if e.End() >= negCut {
				kept = append(kept, e)
			}
		}
		pruned := len(kept) != len(nb)
		p.negBuf[j] = kept
		if pruned && p.negIdx[j] != nil {
			idx := make(map[event.Value][]*event.Event, len(kept))
			field := p.spec.Negs[j].HashField
			for _, e := range kept {
				idx[e.At(field)] = append(idx[e.At(field)], e)
			}
			p.negIdx[j] = idx
		}
	}
	if len(p.pending) > 0 {
		kept := p.pending[:0]
		for _, pm := range p.pending {
			switch {
			case pm.killed:
			case pm.deadline < now:
				out = append(out, pm.m)
			default:
				kept = append(kept, pm)
			}
		}
		p.pending = kept
	}
	return out
}

func (p *refPattern) process(batch []*event.Event, out []*Match) []*Match {
	for _, e := range batch {
		out = p.processEvent(e, out)
	}
	return out
}

func (p *refPattern) processEvent(e *event.Event, out []*Match) []*Match {
	for j := range p.spec.Negs {
		n := &p.spec.Negs[j]
		if n.Schema != e.Schema {
			continue
		}
		p.negBuf[j] = append(p.negBuf[j], e)
		if idx := p.negIdx[j]; idx != nil {
			idx[e.At(n.HashField)] = append(idx[e.At(n.HashField)], e)
		}
		if n.Anchor == len(p.spec.Steps) {
			p.killPending(n, e)
		}
	}
	for i := range p.spec.Steps {
		if p.spec.Steps[i].Schema != e.Schema {
			continue
		}
		if i == 0 {
			binding := make([]*event.Event, p.spec.NumSlots)
			binding[p.spec.Steps[0].Slot] = e
			if !p.runFilters(0, binding) {
				continue
			}
			pa := &refPartial{binding: binding, firstStart: e.Time.Start, lastEnd: e.Time.End, arrival: e.Arrival}
			if len(p.spec.Steps) == 1 {
				out = p.complete(pa, out)
			} else {
				p.partials[1] = append(p.partials[1], pa)
			}
		} else {
			out = p.extend(i, e, out)
		}
	}
	return out
}

func (p *refPattern) extend(i int, e *event.Event, out []*Match) []*Match {
	slot := p.spec.Steps[i].Slot
	last := i == len(p.spec.Steps)-1
	ps := p.partials[i]
	for _, pa := range ps {
		if pa.lastEnd >= e.Time.Start {
			continue
		}
		binding := append([]*event.Event(nil), pa.binding...)
		binding[slot] = e
		if !p.runFilters(i, binding) {
			continue
		}
		ext := &refPartial{binding: binding, firstStart: pa.firstStart, lastEnd: e.Time.End, arrival: maxI64(pa.arrival, e.Arrival)}
		if last {
			out = p.complete(ext, out)
		} else {
			p.partials[i+1] = append(p.partials[i+1], ext)
		}
	}
	return out
}

func (p *refPattern) runFilters(step int, binding []*event.Event) bool {
	for _, fi := range p.filterAt[step] {
		if !p.spec.Filters[fi].EvalBool(binding) {
			return false
		}
	}
	return true
}

func (p *refPattern) complete(pa *refPartial, out []*Match) []*Match {
	n := len(p.spec.Steps)
	for j := range p.spec.Negs {
		neg := &p.spec.Negs[j]
		if neg.Anchor == n {
			continue
		}
		if p.violated(neg, j, pa.binding) {
			return out
		}
	}
	m := &Match{Binding: pa.binding, Time: event.Interval{Start: pa.firstStart, End: pa.lastEnd}, Arrival: pa.arrival}
	for j := range p.spec.Negs {
		if p.spec.Negs[j].Anchor == n {
			p.pending = append(p.pending, &refPending{m: m, lastEnd: pa.lastEnd, deadline: pa.lastEnd + event.Time(p.spec.Horizon)})
			return out
		}
	}
	return append(out, m)
}

func (p *refPattern) violated(neg *model.Negation, j int, binding []*event.Event) bool {
	var lo event.Time = -1 << 62
	if neg.Anchor > 0 {
		lo = binding[p.spec.Steps[neg.Anchor-1].Slot].Time.End
	}
	hi := binding[p.spec.Steps[neg.Anchor].Slot].Time.Start
	candidates := p.negBuf[j]
	if idx := p.negIdx[j]; idx != nil {
		candidates = idx[neg.HashProbe.Eval(binding)]
	}
	for _, nv := range candidates {
		if nv.Time.Start <= lo || nv.Time.End >= hi {
			continue
		}
		if p.condsHold(neg, binding, nv) {
			return true
		}
	}
	return false
}

func (p *refPattern) condsHold(neg *model.Negation, binding []*event.Event, nv *event.Event) bool {
	copy(p.scratch, binding)
	p.scratch[neg.Slot] = nv
	for _, c := range neg.Conds {
		if !c.EvalBool(p.scratch) {
			return false
		}
	}
	return true
}

func (p *refPattern) killPending(neg *model.Negation, nv *event.Event) {
	for _, pm := range p.pending {
		if pm.killed || nv.Time.Start <= pm.lastEnd {
			continue
		}
		if p.condsHold(neg, pm.m.Binding, nv) {
			pm.killed = true
		}
	}
}

// TestPatternKernelEquivalence drives the arena kernel and the
// pre-arena reference over identical randomized streams — random tick
// grouping, mid-stream Resets, and Release after every drain (so
// recycled bindings and matches are actively reused while the run
// continues) — and requires identical emissions at every drain point.
func TestPatternKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for qi := 0; qi < 6; qi++ {
		for trial := 0; trial < 40; trial++ {
			spec, m := compileQuerySpec(t, patternModels, qi, int64(10+rng.Intn(60)))
			kernel, err := NewPattern(spec)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefPattern(spec)
			evs := randomStream(rng, m.Registry, 60)
			resetAt := -1
			if rng.Intn(2) == 0 {
				resetAt = rng.Intn(len(evs))
			}

			var gotAll, wantAll [][]string
			var scratch []*Match
			i := 0
			for i < len(evs) {
				ts := evs[i].End()
				j := i
				for j < len(evs) && evs[j].End() == ts {
					j++
				}
				if resetAt >= i && resetAt < j {
					kernel.Reset()
					ref.reset()
				}
				got := kernel.Advance(ts, scratch[:0])
				got = kernel.Process(evs[i:j], got)
				gotAll = append(gotAll, matchSet(got))
				// Render before releasing: recycling invalidates the
				// bindings, exactly as the runtime's usage does.
				kernel.Release(got)
				scratch = got

				want := ref.advance(ts, nil)
				want = ref.process(evs[i:j], want)
				wantAll = append(wantAll, matchSet(want))
				i = j
			}
			flush := event.Time(1) << 40
			got := kernel.Advance(flush, scratch[:0])
			gotAll = append(gotAll, matchSet(got))
			kernel.Release(got)
			wantAll = append(wantAll, matchSet(ref.advance(flush, nil)))

			if !reflect.DeepEqual(gotAll, wantAll) {
				t.Fatalf("query %d trial %d: kernels disagree\nstream: %v\n got: %v\nwant: %v",
					qi, trial, evs, gotAll, wantAll)
			}
		}
	}
}

// TestPatternReleaseRecycles pins the arena contract: released
// matches and their bindings are reused by later work instead of
// allocating fresh ones.
func TestPatternReleaseRecycles(t *testing.T) {
	spec, m := compileQuerySpec(t, patternModels, 1, 1000) // SEQ(A a, B b)
	p, err := NewPattern(spec)
	if err != nil {
		t.Fatal(err)
	}
	a1 := mev(t, m.Registry, "A", 1, 1, 7)
	b1 := mev(t, m.Registry, "B", 2, 2, 7)
	out := p.Process([]*event.Event{a1, b1}, nil)
	if len(out) != 1 {
		t.Fatalf("matches = %d, want 1", len(out))
	}
	m1 := out[0]
	p.Release(out)
	if m1.Binding != nil {
		t.Error("released match keeps its binding")
	}

	// A fresh key: the first A's partial is still live and must not
	// join with this pair.
	a2 := mev(t, m.Registry, "A", 3, 3, 8)
	b2 := mev(t, m.Registry, "B", 4, 4, 8)
	out2 := p.Process([]*event.Event{a2, b2}, nil)
	if len(out2) != 1 {
		t.Fatalf("matches = %d, want 1", len(out2))
	}
	if out2[0] != m1 {
		t.Error("Match record was not recycled")
	}
	if out2[0].Binding[0] != a2 || out2[0].Binding[1] != b2 {
		t.Errorf("recycled binding has wrong contents: %v", out2[0])
	}
}
