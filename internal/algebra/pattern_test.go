package algebra

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
)

const patternModels = `
EVENT A(v int, k int)
EVENT B(v int, k int)
EVENT C(v int, k int)
EVENT Out(v int)

CONTEXT main DEFAULT

DERIVE Out(a.v)
PATTERN A a
WHERE a.v > 10

DERIVE Out(b.v)
PATTERN SEQ(A a, B b)
WHERE a.k = b.k

DERIVE Out(c.v)
PATTERN SEQ(A a, B b, C c)
WHERE a.k = b.k AND b.k = c.k

DERIVE Out(p2.v)
PATTERN SEQ(NOT A p1, A p2)
WHERE p1.k = p2.k AND p1.v + 30 = p2.v

DERIVE Out(b.v)
PATTERN SEQ(A a, NOT C x, B b)
WHERE a.k = b.k AND x.k = a.k

DERIVE Out(a.v)
PATTERN SEQ(A a, NOT B x)
WHERE x.k = a.k
WITHIN 50
`

// mev builds an event on the test schemas registered in the compiled
// model (schemas are matched by pointer identity, so events must use
// the model's registry).
func mev(t *testing.T, m interface {
	Lookup(string) (*event.Schema, bool)
}, typ string, ts event.Time, v, k int64) *event.Event {
	t.Helper()
	s, ok := m.Lookup(typ)
	if !ok {
		t.Fatalf("no schema %s", typ)
	}
	return event.MustNew(s, ts, event.Int64(v), event.Int64(k))
}

func newPattern(t *testing.T, qi int, horizon int64) (*Pattern, *event.Registry) {
	t.Helper()
	spec, m := compileQuerySpec(t, patternModels, qi, horizon)
	p, err := NewPattern(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p, m.Registry
}

func TestPatternSingleStepWithFilter(t *testing.T) {
	p, reg := newPattern(t, 0, 100)
	evs := []*event.Event{
		mev(t, reg, "A", 1, 5, 0),
		mev(t, reg, "A", 2, 11, 0),
		mev(t, reg, "A", 3, 20, 0),
		mev(t, reg, "B", 4, 99, 0), // wrong type, ignored
	}
	out := runPattern(p, evs, 1000)
	if len(out) != 2 {
		t.Fatalf("matches = %d, want 2", len(out))
	}
	if out[0].Binding[0].At(0).Int != 11 || out[1].Binding[0].At(0).Int != 20 {
		t.Errorf("wrong matches: %v %v", out[0], out[1])
	}
	st := p.Stats()
	if st.FilteredOut != 1 || st.MatchesEmitted != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPatternTwoStepJoin(t *testing.T) {
	p, reg := newPattern(t, 1, 100)
	evs := []*event.Event{
		mev(t, reg, "A", 1, 1, 7),
		mev(t, reg, "A", 2, 2, 8),
		mev(t, reg, "B", 3, 3, 7), // joins with A@1 (k=7)
		mev(t, reg, "B", 4, 4, 9), // no partner
		mev(t, reg, "B", 5, 5, 8), // joins with A@2 (k=8)
	}
	out := runPattern(p, evs, 1000)
	if len(out) != 2 {
		t.Fatalf("matches = %d, want 2: %v", len(out), out)
	}
	m0 := out[0]
	if m0.Binding[0].Time.Start != 1 || m0.Binding[1].Time.Start != 3 {
		t.Errorf("match 0 = %v", m0)
	}
	if m0.Time.Start != 1 || m0.Time.End != 3 {
		t.Errorf("match 0 interval = %v", m0.Time)
	}
}

func TestPatternStrictSequenceOrder(t *testing.T) {
	p, reg := newPattern(t, 1, 100)
	// B before A, and B at the same timestamp as A: neither matches.
	evs := []*event.Event{
		mev(t, reg, "B", 1, 1, 7),
		mev(t, reg, "A", 2, 2, 7),
		mev(t, reg, "B", 2, 3, 7), // same timestamp as A: e1.time < e2.time fails
	}
	out := runPattern(p, evs, 1000)
	if len(out) != 0 {
		t.Fatalf("matches = %v, want none", out)
	}
}

func TestPatternThreeStep(t *testing.T) {
	p, reg := newPattern(t, 2, 100)
	evs := []*event.Event{
		mev(t, reg, "A", 1, 1, 1),
		mev(t, reg, "B", 2, 2, 1),
		mev(t, reg, "B", 3, 3, 1),
		mev(t, reg, "C", 4, 4, 1),
		mev(t, reg, "C", 5, 5, 2), // k mismatch
	}
	out := runPattern(p, evs, 1000)
	// A@1 -> (B@2 or B@3) -> C@4: two matches.
	if len(out) != 2 {
		t.Fatalf("matches = %d, want 2: %v", len(out), out)
	}
}

func TestPatternLeadingNegation(t *testing.T) {
	// SEQ(NOT A p1, A p2) WHERE p1.k = p2.k AND p1.v + 30 = p2.v:
	// an A is suppressed if an earlier A with same k and v-30 exists
	// (the Linear Road "new traveling car" shape).
	p, reg := newPattern(t, 3, 100)
	evs := []*event.Event{
		mev(t, reg, "A", 1, 40, 1),  // no predecessor: match
		mev(t, reg, "A", 2, 70, 1),  // predecessor v=40 @1: suppressed
		mev(t, reg, "A", 3, 70, 2),  // k=2 has no predecessor: match
		mev(t, reg, "A", 4, 105, 1), // needs v=75: none: match
	}
	out := runPattern(p, evs, 1000)
	if len(out) != 3 {
		t.Fatalf("matches = %d, want 3: %v", len(out), out)
	}
	st := p.Stats()
	if st.MatchesNegated != 1 {
		t.Errorf("negated = %d, want 1", st.MatchesNegated)
	}
}

func TestPatternMidNegation(t *testing.T) {
	// SEQ(A a, NOT C x, B b) WHERE a.k=b.k AND x.k=a.k.
	p, reg := newPattern(t, 4, 100)
	evs := []*event.Event{
		mev(t, reg, "A", 1, 1, 1),
		mev(t, reg, "C", 2, 9, 1), // blocks k=1 pairs spanning t=2
		mev(t, reg, "B", 3, 2, 1), // A@1..B@3 blocked by C@2
		mev(t, reg, "A", 4, 3, 1),
		mev(t, reg, "B", 5, 4, 1), // A@4..B@5 clean; A@1..B@5 blocked
		mev(t, reg, "A", 6, 5, 2),
		mev(t, reg, "C", 7, 9, 3), // k=3: does not block k=2
		mev(t, reg, "B", 8, 6, 2), // A@6..B@8 clean
	}
	out := runPattern(p, evs, 1000)
	if len(out) != 2 {
		t.Fatalf("matches = %d, want 2: %v", len(out), out)
	}
	for _, m := range out {
		a, b := m.Binding[0], m.Binding[2]
		if !(a.Time.Start == 4 && b.Time.Start == 5) && !(a.Time.Start == 6 && b.Time.Start == 8) {
			t.Errorf("unexpected match %v", m)
		}
	}
}

func TestPatternTrailingNegation(t *testing.T) {
	// SEQ(A a, NOT B x) WHERE x.k = a.k WITHIN 50: A emits only if no
	// B with the same k follows within 50 time units.
	p, reg := newPattern(t, 5, 50)
	evs := []*event.Event{
		mev(t, reg, "A", 10, 1, 1),
		mev(t, reg, "B", 20, 2, 1), // kills A@10
		mev(t, reg, "A", 30, 3, 2),
		mev(t, reg, "B", 90, 4, 2), // too late (30+50=80 < 90): A@30 already emitted
		mev(t, reg, "A", 100, 5, 3),
	}
	out := runPattern(p, evs, 1000)
	if len(out) != 2 {
		t.Fatalf("matches = %d, want 2: %v", len(out), out)
	}
	vals := []int64{out[0].Binding[0].At(0).Int, out[1].Binding[0].At(0).Int}
	if !(vals[0] == 3 && vals[1] == 5) {
		t.Errorf("emitted %v, want [3 5]", vals)
	}
}

func TestPatternTrailingNegationKillAtDeadline(t *testing.T) {
	p, reg := newPattern(t, 5, 50)
	evs := []*event.Event{
		mev(t, reg, "A", 10, 1, 1),
		mev(t, reg, "B", 60, 2, 1), // exactly at deadline 10+50: still kills
	}
	out := runPattern(p, evs, 1000)
	if len(out) != 0 {
		t.Fatalf("matches = %v, want none", out)
	}
}

func TestPatternHorizonExpiry(t *testing.T) {
	p, reg := newPattern(t, 1, 10) // SEQ(A a, B b), horizon 10
	evs := []*event.Event{
		mev(t, reg, "A", 1, 1, 7),
		mev(t, reg, "B", 20, 2, 7), // partial expired at t=20 (1 < 20-10)
		mev(t, reg, "A", 21, 3, 7),
		mev(t, reg, "B", 30, 4, 7), // span 9 <= 10: match
	}
	out := runPattern(p, evs, 1000)
	if len(out) != 1 || out[0].Binding[0].At(0).Int != 3 {
		t.Fatalf("matches = %v, want the short-span one", out)
	}
	if p.Stats().PartialsExpired == 0 {
		t.Error("no partial expired")
	}
}

func TestPatternReset(t *testing.T) {
	p, reg := newPattern(t, 1, 100)
	var out []*Match
	out = p.Advance(1, out)
	out = p.Process([]*event.Event{mev(t, reg, "A", 1, 1, 7)}, out)
	if f := p.MemoryFootprint(); f.Retained() != 1 {
		t.Fatalf("retained = %d (%+v), want 1", f.Retained(), f)
	}
	p.Reset()
	if f := p.MemoryFootprint(); f.Retained() != 0 {
		t.Fatal("reset did not clear state")
	}
	// After reset the old A is forgotten: B alone does not match.
	out = p.Advance(2, nil)
	out = p.Process([]*event.Event{mev(t, reg, "B", 2, 2, 7)}, out)
	if len(out) != 0 {
		t.Fatalf("match after reset: %v", out)
	}
}

func TestPatternArrivalPropagation(t *testing.T) {
	p, reg := newPattern(t, 1, 100)
	a := mev(t, reg, "A", 1, 1, 7)
	a.Arrival = 100
	b := mev(t, reg, "B", 2, 2, 7)
	b.Arrival = 50
	var out []*Match
	out = p.Advance(1, out)
	out = p.Process([]*event.Event{a}, out)
	out = p.Advance(2, out)
	out = p.Process([]*event.Event{b}, out)
	if len(out) != 1 || out[0].Arrival != 100 {
		t.Fatalf("arrival = %v", out)
	}
}

func TestNewPatternValidation(t *testing.T) {
	if _, err := NewPattern(PatternSpec{Horizon: 10}); err == nil {
		t.Error("empty steps accepted")
	}
	spec, _ := compileQuerySpec(t, patternModels, 0, 100)
	spec.Horizon = 0
	if _, err := NewPattern(spec); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestPatternMatchesBruteForce is the core property test: the
// incremental matcher agrees with exhaustive enumeration on random
// streams, across all six query shapes.
func TestPatternMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for qi := 0; qi < 6; qi++ {
		spec, m := compileQuerySpec(t, patternModels, qi, 1000)
		for trial := 0; trial < 60; trial++ {
			evs := randomStream(rng, m.Registry, 24)
			p, err := NewPattern(spec)
			if err != nil {
				t.Fatal(err)
			}
			got := matchSet(runPattern(p, evs, 1<<40))
			want := matchSet(bruteForce(spec, evs))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d trial %d: incremental and brute force disagree\nstream: %v\n got: %v\nwant: %v",
					qi, trial, evs, got, want)
			}
		}
	}
}

func randomStream(rng *rand.Rand, reg *event.Registry, n int) []*event.Event {
	types := []string{"A", "B", "C"}
	evs := make([]*event.Event, 0, n)
	ts := event.Time(0)
	for i := 0; i < n; i++ {
		ts += event.Time(rng.Intn(3)) // duplicate timestamps happen
		s, _ := reg.Lookup(types[rng.Intn(len(types))])
		evs = append(evs, event.MustNew(s, ts,
			event.Int64(int64(rng.Intn(80))), event.Int64(int64(rng.Intn(3)))))
	}
	return evs
}
