package algebra

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/wire"
)

// savePattern serializes p the way the runtime does: sections first
// (into a body), the event table after (into the head), table before
// body on the wire.
func savePattern(t *testing.T, p *Pattern) []byte {
	t.Helper()
	var body wire.Enc
	tab := wire.NewEventTable()
	if err := p.Save(&body, tab); err != nil {
		t.Fatal(err)
	}
	var out wire.Enc
	tab.Encode(&out)
	out.Raw(body.Bytes())
	return out.Bytes()
}

func loadPattern(t *testing.T, p *Pattern, data []byte, reg *event.Registry) {
	t.Helper()
	d := wire.NewDec(data)
	evs := wire.DecodeEventTable(d, reg)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	bd := wire.NewDec(d.Raw())
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if err := p.Load(bd, evs); err != nil {
		t.Fatal(err)
	}
	if bd.Rem() != 0 {
		t.Fatalf("pattern load left %d undecoded bytes", bd.Rem())
	}
}

// TestPatternSnapshotFuzz is the snapshot round-trip property test
// for the shared-run kernel: run a seeded random stream to a random
// cut, snapshot, restore into a fresh operator over the same program,
// then drive both operators over the remaining stream and require
// identical emissions at every drain — and byte-identical re-saves at
// the end (the encoding is deterministic and state-converged).
func TestPatternSnapshotFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2451))
	for qi := 0; qi < 6; qi++ {
		for trial := 0; trial < 30; trial++ {
			spec, m := compileQuerySpec(t, patternModels, qi, int64(10+rng.Intn(80)))
			orig, err := NewPattern(spec)
			if err != nil {
				t.Fatal(err)
			}
			evs := joinHeavyStream(rng, m.Registry, 80)
			cutIdx := rng.Intn(len(evs))
			// Align the cut to a tick boundary like the runtime does.
			for cutIdx > 0 && evs[cutIdx-1].End() == evs[cutIdx].End() {
				cutIdx--
			}

			var scratch []*Match
			i := 0
			for i < cutIdx {
				ts := evs[i].End()
				j := i
				for j < len(evs) && evs[j].End() == ts {
					j++
				}
				out := orig.Advance(ts, scratch[:0])
				out = orig.Process(evs[i:j], out)
				orig.Release(out)
				scratch = out
				i = j
			}

			blob := savePattern(t, orig)
			restored := NewPatternFromProgram(orig.Program())
			loadPattern(t, restored, blob, m.Registry)

			if of, rf := orig.MemoryFootprint(), restored.MemoryFootprint(); of != rf {
				t.Fatalf("query %d trial %d: footprint diverges after restore\n    orig: %+v\nrestored: %+v",
					qi, trial, of, rf)
			}

			var gotAll, wantAll [][]string
			var rScratch []*Match
			for i < len(evs) {
				ts := evs[i].End()
				j := i
				for j < len(evs) && evs[j].End() == ts {
					j++
				}
				want := orig.Advance(ts, scratch[:0])
				want = orig.Process(evs[i:j], want)
				wantAll = append(wantAll, matchTrace(want))
				orig.Release(want)
				scratch = want

				got := restored.Advance(ts, rScratch[:0])
				got = restored.Process(evs[i:j], got)
				gotAll = append(gotAll, matchTrace(got))
				restored.Release(got)
				rScratch = got
				i = j
			}
			flush := event.Time(1) << 40
			want := orig.Advance(flush, scratch[:0])
			wantAll = append(wantAll, matchTrace(want))
			orig.Release(want)
			got := restored.Advance(flush, rScratch[:0])
			gotAll = append(gotAll, matchTrace(got))
			restored.Release(got)

			if !reflect.DeepEqual(gotAll, wantAll) {
				t.Fatalf("query %d trial %d cut %d: restored kernel diverges\nstream: %v\n    orig: %v\nrestored: %v",
					qi, trial, cutIdx, evs, wantAll, gotAll)
			}
			if os, rs := orig.Stats(), restored.Stats(); os != rs {
				t.Fatalf("query %d trial %d: stats diverge after restore\n    orig: %+v\nrestored: %+v",
					qi, trial, os, rs)
			}
			if ob, rb := savePattern(t, orig), savePattern(t, restored); !bytes.Equal(ob, rb) {
				t.Fatalf("query %d trial %d: re-save not byte-identical (%d vs %d bytes)",
					qi, trial, len(ob), len(rb))
			}
		}
	}
}

// TestPatternSnapshotEmptyKernel round-trips a freshly built kernel.
func TestPatternSnapshotEmptyKernel(t *testing.T) {
	spec, m := compileQuerySpec(t, patternModels, 0, 100)
	p, err := NewPattern(spec)
	if err != nil {
		t.Fatal(err)
	}
	blob := savePattern(t, p)
	q := NewPatternFromProgram(p.Program())
	loadPattern(t, q, blob, m.Registry)
	if f := q.MemoryFootprint(); f.Retained() != 0 {
		t.Fatalf("restored empty kernel retains state: %+v", f)
	}
}

func TestPatternSnapshotRejectsCorrupt(t *testing.T) {
	spec, m := compileQuerySpec(t, patternModels, 2, 50)
	p, err := NewPattern(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	evs := joinHeavyStream(rng, m.Registry, 60)
	out := p.Advance(evs[0].End(), nil)
	for i := 0; i < len(evs); i++ {
		out = p.Advance(evs[i].End(), out[:0])
		out = p.Process(evs[i:i+1], out)
	}
	blob := savePattern(t, p)
	for cut := 0; cut < len(blob); cut += 11 {
		q := NewPatternFromProgram(p.Program())
		d := wire.NewDec(blob[:cut])
		evtab := wire.DecodeEventTable(d, m.Registry)
		body := d.Raw()
		if d.Err() != nil {
			continue // table itself failed to decode: fine, rejected
		}
		// Load must error, not panic, on a truncated body.
		_ = q.Load(wire.NewDec(body), evtab)
	}
}

func TestLegacyKernelSnapshotUnsupported(t *testing.T) {
	spec, _ := compileQuerySpec(t, patternModels, 0, 100)
	spec.LegacyKernel = true
	p, err := NewPattern(spec)
	if err != nil {
		t.Fatal(err)
	}
	var enc wire.Enc
	if err := p.Save(&enc, wire.NewEventTable()); err == nil {
		t.Fatal("legacy kernel Save must report unsupported")
	}
	if err := p.Load(wire.NewDec(nil), nil); err == nil {
		t.Fatal("legacy kernel Load must report unsupported")
	}
}

// aggTwin builds a second Aggregate over the SAME compiled model, so
// schema pointers (and hence event.Equal) line up across operators.
func aggTwin(t *testing.T, m *model.Model) *Aggregate {
	t.Helper()
	q := m.Queries[0]
	a, err := NewAggregate(q.Out, q.Aggs, q.Tumble)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAggregateSnapshotRoundTrip(t *testing.T) {
	a, m := newAgg(t)
	var out []*event.Event
	out = a.Process([]*Match{
		rEvent(t, m, 5, 10), rEvent(t, m, 20, 30), rEvent(t, m, 59, 20),
	}, event.HeapAlloc{}, out)
	if len(out) != 0 || !a.Pending() {
		t.Fatalf("unexpected flush: %v", out)
	}

	var enc wire.Enc
	a.Save(&enc)
	b := aggTwin(t, m)
	if err := b.Load(wire.NewDec(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !b.Pending() {
		t.Fatal("restored aggregate lost its open window")
	}

	// Both operators must flush identical derived events.
	flushA := a.Advance(60, event.HeapAlloc{}, nil)
	flushB := b.Advance(60, event.HeapAlloc{}, nil)
	if len(flushA) != 1 || len(flushB) != 1 {
		t.Fatalf("flush counts: %d, %d", len(flushA), len(flushB))
	}
	if !flushA[0].Equal(flushB[0]) {
		t.Fatalf("restored aggregate flushed %v, want %v", flushB[0], flushA[0])
	}
	if flushA[0].Arrival != flushB[0].Arrival {
		t.Fatalf("arrival diverged: %d vs %d", flushA[0].Arrival, flushB[0].Arrival)
	}

	// Closed-window state round-trips too.
	var enc2 wire.Enc
	a.Save(&enc2)
	c := aggTwin(t, m)
	if err := c.Load(wire.NewDec(enc2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if c.Pending() {
		t.Fatal("restored closed aggregate claims an open window")
	}
}

func TestAggregateSnapshotFloats(t *testing.T) {
	a, m := newAgg(t)
	a.Process([]*Match{rEvent(t, m, 3, 7)}, event.HeapAlloc{}, nil)
	var enc wire.Enc
	a.Save(&enc)
	b := aggTwin(t, m)
	if err := b.Load(wire.NewDec(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	fa := a.Advance(60, event.HeapAlloc{}, nil)
	fb := b.Advance(60, event.HeapAlloc{}, nil)
	va, _ := fa[0].Get("mean")
	vb, _ := fb[0].Get("mean")
	if math.Abs(va.Float-vb.Float) != 0 {
		t.Fatalf("mean diverged: %v vs %v", va, vb)
	}
}

func TestVectorRestore(t *testing.T) {
	v := NewVector(0)
	v.Apply(Transition{Kind: TransInit, Context: 3, At: 17}, 0)
	w := NewVector(0)
	w.Restore(v.Bits(), v.Time())
	if w.Bits() != v.Bits() || w.Time() != v.Time() {
		t.Fatalf("restore: got bits=%b time=%d, want bits=%b time=%d",
			w.Bits(), w.Time(), v.Bits(), v.Time())
	}
}
