package algebra

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
)

// matchTrace renders matches in emission order, including the match
// interval and arrival stamp — the automaton must reproduce the
// legacy kernel's emissions exactly, not merely as a set.
func matchTrace(ms []*Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = fmt.Sprintf("%s@[%d,%d]a%d", matchKey(m), m.Time.Start, m.Time.End, m.Arrival)
	}
	return keys
}

// joinHeavyStream generates a stream biased toward wide join
// frontiers: two key values, dense duplicate timestamps, an A-heavy
// type mix (joins fan out from step 0), and v values stepping in tens
// so the NOT-step arithmetic filter (query 3) fires regularly.
func joinHeavyStream(rng *rand.Rand, reg *event.Registry, n int) []*event.Event {
	types := []string{"A", "A", "B", "C"}
	evs := make([]*event.Event, 0, n)
	ts := event.Time(0)
	for i := 0; i < n; i++ {
		if rng.Intn(3) > 0 {
			ts += event.Time(rng.Intn(2) + 1)
		}
		s, _ := reg.Lookup(types[rng.Intn(len(types))])
		e := event.MustNew(s, ts,
			event.Int64(int64(rng.Intn(8)*10)), event.Int64(int64(rng.Intn(2))))
		e.Arrival = int64(i + 1)
		evs = append(evs, e)
	}
	return evs
}

// TestKernelDifferentialFuzz drives the shared-run automaton and the
// preserved legacy kernel over seeded join-heavy random streams —
// runtime-style tick grouping, mid-stream Resets, Release after every
// drain so recycled records are actively reused — and requires
// identical emissions (bindings, order, match intervals, arrival
// stamps) at every drain point, plus exact parity on the
// kernel-independent counters (EventsSeen, MatchesEmitted,
// MatchesNegated; the partial/filter counters are kernel-specific by
// construction, see PatternStats).
func TestKernelDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1318))
	for qi := 0; qi < 6; qi++ {
		for trial := 0; trial < 40; trial++ {
			spec, m := compileQuerySpec(t, patternModels, qi, int64(10+rng.Intn(80)))
			legacy := spec
			legacy.LegacyKernel = true
			ak, err := NewPattern(spec)
			if err != nil {
				t.Fatal(err)
			}
			lk, err := NewPattern(legacy)
			if err != nil {
				t.Fatal(err)
			}
			evs := joinHeavyStream(rng, m.Registry, 80)
			resetAt := -1
			if rng.Intn(3) == 0 {
				resetAt = rng.Intn(len(evs))
			}

			var gotAll, wantAll [][]string
			var aScratch, lScratch []*Match
			i := 0
			for i < len(evs) {
				ts := evs[i].End()
				j := i
				for j < len(evs) && evs[j].End() == ts {
					j++
				}
				if resetAt >= i && resetAt < j {
					ak.Reset()
					lk.Reset()
				}
				got := ak.Advance(ts, aScratch[:0])
				got = ak.Process(evs[i:j], got)
				gotAll = append(gotAll, matchTrace(got))
				ak.Release(got)
				aScratch = got

				want := lk.Advance(ts, lScratch[:0])
				want = lk.Process(evs[i:j], want)
				wantAll = append(wantAll, matchTrace(want))
				lk.Release(want)
				lScratch = want
				i = j
			}
			flush := event.Time(1) << 40
			got := ak.Advance(flush, aScratch[:0])
			gotAll = append(gotAll, matchTrace(got))
			ak.Release(got)
			want := lk.Advance(flush, lScratch[:0])
			wantAll = append(wantAll, matchTrace(want))
			lk.Release(want)

			if !reflect.DeepEqual(gotAll, wantAll) {
				t.Fatalf("query %d trial %d: kernels disagree\nstream: %v\n automaton: %v\n    legacy: %v",
					qi, trial, evs, gotAll, wantAll)
			}
			as, ls := ak.Stats(), lk.Stats()
			if as.EventsSeen != ls.EventsSeen || as.MatchesEmitted != ls.MatchesEmitted ||
				as.MatchesNegated != ls.MatchesNegated {
				t.Fatalf("query %d trial %d: kernel-independent stats diverge\nautomaton: %+v\n   legacy: %+v",
					qi, trial, as, ls)
			}
			ak.Reset()
			if f := ak.MemoryFootprint(); f.Retained() != 0 {
				t.Fatalf("query %d trial %d: automaton retains state after Reset: %+v", qi, trial, f)
			}
		}
	}
}
