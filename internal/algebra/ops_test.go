package algebra

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/lang"
	"github.com/caesar-cep/caesar/internal/model"
)

const opsModel = `
EVENT A(v int, k int)
EVENT OutF(v float)

CONTEXT clear DEFAULT
CONTEXT busy

DERIVE OutF(a.v)
PATTERN A a
WHERE a.k > 0
CONTEXT busy

INITIATE CONTEXT busy
PATTERN A a
CONTEXT clear

TERMINATE CONTEXT busy
PATTERN A a
CONTEXT busy

SWITCH CONTEXT busy
PATTERN A a
CONTEXT clear
`

func opsFixture(t *testing.T) (*model.Model, *event.Schema) {
	t.Helper()
	m, err := model.CompileSource(opsModel)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.Registry.Lookup("A")
	return m, a
}

func mkMatch(e *event.Event) *Match {
	return &Match{Binding: []*event.Event{e}, Time: e.Time, Arrival: e.Arrival}
}

func TestFilterOp(t *testing.T) {
	m, a := opsFixture(t)
	q := m.Queries[0]
	f := NewFilter(q.Filters)
	pass := mkMatch(event.MustNew(a, 1, event.Int64(10), event.Int64(5)))
	fail := mkMatch(event.MustNew(a, 2, event.Int64(20), event.Int64(0)))
	out := f.Process([]*Match{pass, fail}, nil)
	if len(out) != 1 || out[0] != pass {
		t.Fatalf("filter out = %v", out)
	}
	// Empty predicate list passes everything.
	all := NewFilter(nil).Process([]*Match{pass, fail}, nil)
	if len(all) != 2 {
		t.Fatalf("empty filter dropped matches")
	}
}

func TestProjectOp(t *testing.T) {
	m, a := opsFixture(t)
	q := m.Queries[0]
	pr, err := NewProject(q.Out, q.Args)
	if err != nil {
		t.Fatal(err)
	}
	e := event.MustNew(a, 7, event.Int64(42), event.Int64(1))
	e.Arrival = 999
	out := pr.Process([]*Match{mkMatch(e)}, event.HeapAlloc{}, nil)
	if len(out) != 1 {
		t.Fatal("no projection output")
	}
	got := out[0]
	if got.Schema.Name() != "OutF" {
		t.Errorf("schema = %s", got.Schema.Name())
	}
	// Int expression v widened to the float field.
	if got.At(0).Kind != event.KindFloat || got.At(0).Float != 42 {
		t.Errorf("value = %#v", got.At(0))
	}
	if got.Time != e.Time || got.Arrival != 999 {
		t.Errorf("time/arrival not propagated: %v/%d", got.Time, got.Arrival)
	}
}

func TestProjectArityValidation(t *testing.T) {
	m, _ := opsFixture(t)
	q := m.Queries[0]
	if _, err := NewProject(q.Out, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestWindowGate(t *testing.T) {
	m, a := opsFixture(t)
	busy, _ := m.ContextByName("busy")
	clear, _ := m.ContextByName("clear")
	vec := NewVector(clear.Index)
	g := NewWindowGate(busy.Mask(), vec)
	batch := []*event.Event{event.MustNew(a, 1, event.Int64(1), event.Int64(1))}

	if g.Open() {
		t.Error("gate open while busy inactive")
	}
	if out := g.Process(batch); out != nil {
		t.Error("gate passed events while closed")
	}
	vec.Apply(Transition{Kind: TransInit, Context: busy.Index, At: 1}, clear.Index)
	if !g.Open() {
		t.Error("gate closed while busy active")
	}
	if out := g.Process(batch); len(out) != 1 {
		t.Error("gate dropped events while open")
	}
}

func TestWindowFilter(t *testing.T) {
	m, a := opsFixture(t)
	busy, _ := m.ContextByName("busy")
	clear, _ := m.ContextByName("clear")
	vec := NewVector(clear.Index)
	w := NewWindowFilter(busy.Mask(), vec)
	ms := []*Match{mkMatch(event.MustNew(a, 1, event.Int64(1), event.Int64(1)))}
	if out := w.Process(ms, nil); len(out) != 0 {
		t.Error("window filter passed matches while inactive")
	}
	vec.Apply(Transition{Kind: TransInit, Context: busy.Index, At: 1}, clear.Index)
	if out := w.Process(ms, nil); len(out) != 1 {
		t.Error("window filter dropped matches while active")
	}
}

func TestContextActionInitiateTerminate(t *testing.T) {
	m, a := opsFixture(t)
	busy, _ := m.ContextByName("busy")
	clear, _ := m.ContextByName("clear")
	vec := NewVector(clear.Index)

	initQ := m.Queries[1]
	ci, err := NewContextAction(initQ.Action, initQ.Target.Index, initQ.Mask, vec)
	if err != nil {
		t.Fatal(err)
	}
	match := mkMatch(event.MustNew(a, 5, event.Int64(1), event.Int64(1)))

	// No matches, no transitions.
	if out := ci.Process(5, nil, nil); len(out) != 0 {
		t.Error("transition without match")
	}
	out := ci.Process(5, []*Match{match, match}, nil)
	if len(out) != 1 || out[0].Kind != TransInit || out[0].Context != busy.Index || out[0].At != 5 {
		t.Fatalf("initiate transitions = %v", out)
	}

	termQ := m.Queries[2]
	ct, _ := NewContextAction(termQ.Action, termQ.Target.Index, termQ.Mask, vec)
	out = ct.Process(6, []*Match{match}, nil)
	if len(out) != 1 || out[0].Kind != TransTerm || out[0].Context != busy.Index {
		t.Fatalf("terminate transitions = %v", out)
	}
}

func TestContextActionSwitch(t *testing.T) {
	m, a := opsFixture(t)
	busy, _ := m.ContextByName("busy")
	clear, _ := m.ContextByName("clear")
	vec := NewVector(clear.Index)
	swQ := m.Queries[3] // SWITCH CONTEXT busy, associated with clear
	sw, _ := NewContextAction(swQ.Action, swQ.Target.Index, swQ.Mask, vec)
	match := mkMatch(event.MustNew(a, 9, event.Int64(1), event.Int64(1)))

	out := sw.Process(9, []*Match{match}, nil)
	// clear is active: terminate clear, initiate busy.
	if len(out) != 2 {
		t.Fatalf("switch transitions = %v", out)
	}
	if out[0].Kind != TransTerm || out[0].Context != clear.Index {
		t.Errorf("first transition = %v", out[0])
	}
	if out[1].Kind != TransInit || out[1].Context != busy.Index {
		t.Errorf("second transition = %v", out[1])
	}

	// With clear inactive, switch only initiates.
	vec.Apply(Transition{Kind: TransInit, Context: busy.Index, At: 9}, clear.Index)
	out = sw.Process(10, []*Match{match}, nil)
	if len(out) != 1 || out[0].Kind != TransInit {
		t.Fatalf("switch from inactive source = %v", out)
	}
}

func TestNewContextActionRejectsDerive(t *testing.T) {
	vec := NewVector(0)
	if _, err := NewContextAction(lang.ActionDerive, 1, 1, vec); err == nil {
		t.Error("DERIVE accepted as context action")
	}
}

func TestMatchString(t *testing.T) {
	m := &Match{Binding: []*event.Event{nil}}
	if m.String() != "match[_]" {
		t.Errorf("String = %q", m.String())
	}
}
