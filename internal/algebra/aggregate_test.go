package algebra

import (
	"math"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

const aggModel = `
EVENT R(v int, f float, s string, b int)
EVENT Stat(cnt int, total int, mean float, lo int, hi int, lastv int)

CONTEXT main DEFAULT

DERIVE Stat(count(), sum(r.v), avg(r.v), min(r.v), max(r.v), r.v)
PATTERN R r
TUMBLE 60
`

func newAgg(t *testing.T) (*Aggregate, *model.Model) {
	t.Helper()
	m, err := model.CompileSource(aggModel)
	if err != nil {
		t.Fatal(err)
	}
	q := m.Queries[0]
	if q.Tumble != 60 || len(q.Aggs) != 6 {
		t.Fatalf("compiled query: tumble=%d aggs=%d", q.Tumble, len(q.Aggs))
	}
	a, err := NewAggregate(q.Out, q.Aggs, q.Tumble)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func rEvent(t *testing.T, m *model.Model, ts event.Time, v int64) *Match {
	t.Helper()
	s, _ := m.Registry.Lookup("R")
	e := event.MustNew(s, ts, event.Int64(v), event.Float64(0), event.String("x"), event.Int64(0))
	return &Match{Binding: []*event.Event{e}, Time: e.Time, Arrival: int64(ts)}
}

func TestAggregateWindowing(t *testing.T) {
	a, m := newAgg(t)
	var out []*event.Event
	// Window 0 = [0, 60): values 10, 30, 20.
	out = a.Process([]*Match{
		rEvent(t, m, 5, 10), rEvent(t, m, 20, 30), rEvent(t, m, 59, 20),
	}, event.HeapAlloc{}, out)
	if len(out) != 0 || !a.Pending() {
		t.Fatalf("premature flush: %v", out)
	}
	// A match in window 1 flushes window 0.
	out = a.Process([]*Match{rEvent(t, m, 61, 7)}, event.HeapAlloc{}, out)
	if len(out) != 1 {
		t.Fatalf("flush count = %d", len(out))
	}
	st := out[0]
	if st.TypeName() != "Stat" || st.Time.End != 59 {
		t.Errorf("stat event = %v", st)
	}
	get := func(name string) event.Value { v, _ := st.Get(name); return v }
	if get("cnt").Int != 3 || get("total").Int != 60 {
		t.Errorf("cnt/total = %v/%v", get("cnt"), get("total"))
	}
	if math.Abs(get("mean").Float-20) > 1e-9 {
		t.Errorf("mean = %v", get("mean"))
	}
	if get("lo").Int != 10 || get("hi").Int != 30 || get("lastv").Int != 20 {
		t.Errorf("lo/hi/last = %v/%v/%v", get("lo"), get("hi"), get("lastv"))
	}
	if st.Arrival != 59 {
		t.Errorf("arrival = %d", st.Arrival)
	}
}

func TestAggregateAdvanceFlushes(t *testing.T) {
	a, m := newAgg(t)
	var out []*event.Event
	out = a.Process([]*Match{rEvent(t, m, 5, 10)}, event.HeapAlloc{}, out)
	out = a.Advance(59, event.HeapAlloc{}, out)
	if len(out) != 0 {
		t.Fatal("flushed before window end")
	}
	out = a.Advance(60, event.HeapAlloc{}, out)
	if len(out) != 1 || !out[0].Time.Contains(59) {
		t.Fatalf("advance flush = %v", out)
	}
	if a.Pending() {
		t.Error("window still open after flush")
	}
	// No double flush.
	if out = a.Advance(200, event.HeapAlloc{}, out); len(out) != 1 {
		t.Fatal("empty window flushed")
	}
}

func TestAggregateSkipsEmptyWindows(t *testing.T) {
	a, m := newAgg(t)
	var out []*event.Event
	out = a.Process([]*Match{rEvent(t, m, 5, 1)}, event.HeapAlloc{}, out)
	// Jump three windows ahead: only window 0 flushes.
	out = a.Process([]*Match{rEvent(t, m, 200, 2)}, event.HeapAlloc{}, out)
	if len(out) != 1 {
		t.Fatalf("flushes = %d", len(out))
	}
	out = a.Advance(500, event.HeapAlloc{}, out)
	if len(out) != 2 {
		t.Fatalf("final flushes = %d", len(out))
	}
	if out[1].Time.End != 239 { // window 3 = [180,240)
		t.Errorf("second stat time = %v", out[1].Time)
	}
}

func TestAggregateReset(t *testing.T) {
	a, m := newAgg(t)
	a.Process([]*Match{rEvent(t, m, 5, 1)}, event.HeapAlloc{}, nil)
	a.Reset()
	if a.Pending() {
		t.Error("pending after reset")
	}
	if out := a.Advance(1000, event.HeapAlloc{}, nil); len(out) != 0 {
		t.Errorf("reset window flushed: %v", out)
	}
}

func TestNewAggregateValidation(t *testing.T) {
	_, m := newAgg(t)
	q := m.Queries[0]
	if _, err := NewAggregate(q.Out, q.Aggs, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewAggregate(q.Out, q.Aggs[:2], 60); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestAggregateBoolSum(t *testing.T) {
	src := `
EVENT P(speed int)
EVENT S(stopped int)
CONTEXT main DEFAULT
DERIVE S(sum(p.speed = 0))
PATTERN P p
TUMBLE 10
`
	m, err := model.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	q := m.Queries[0]
	a, err := NewAggregate(q.Out, q.Aggs, q.Tumble)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.Registry.Lookup("P")
	mk := func(ts event.Time, speed int64) *Match {
		e := event.MustNew(s, ts, event.Int64(speed))
		return &Match{Binding: []*event.Event{e}, Time: e.Time}
	}
	out := a.Process([]*Match{mk(1, 0), mk(2, 50), mk(3, 0)}, event.HeapAlloc{}, nil)
	out = a.Advance(10, event.HeapAlloc{}, out)
	if len(out) != 1 {
		t.Fatalf("flushes = %d", len(out))
	}
	if v, _ := out[0].Get("stopped"); v.Int != 2 {
		t.Errorf("stopped = %v", v)
	}
}
