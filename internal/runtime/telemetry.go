package runtime

import (
	"strconv"

	"github.com/caesar-cep/caesar/internal/telemetry"
)

// runMetrics is one Run's metric set (see DESIGN.md §3.3). The
// metric objects are plain atomic structs owned by the run; Stats is
// derived from them at the end of the run, and when a telemetry
// registry is configured the same objects are registered there, so
// the live /metrics view and the end-of-run Stats report identical
// numbers by construction.
//
// Layout follows the writers: per-worker metrics are written by
// exactly one goroutine each (no contention, no false sharing — each
// workerMetrics is its own allocation); engine-level metrics are
// either single-writer (events/ticks/partitions belong to the Run
// goroutine) or written on cold paths (context transitions) and
// per-derived-event paths (output latency, per-type counts), where
// cross-worker contention is bounded by the output rate, not the
// input rate.
type runMetrics struct {
	events     telemetry.Counter // input events (Run goroutine)
	ticks      telemetry.Counter // dispatched ticks (Run goroutine)
	partitions telemetry.Gauge   // interned partitions (Run goroutine)

	// Ingest pipeline metrics (batch path only): batches dispatched
	// (dispatch goroutine), arena slabs reclaimed (decode goroutine),
	// and the read-ahead ring depth probe set by RunBatches.
	batches   telemetry.Counter
	reclaims  telemetry.Counter
	ringDepth func() int64

	// outputLatency tracks arrival→derivation latency per derived
	// event in nanoseconds (the paper's latency metric, §7.1).
	outputLatency telemetry.Histogram
	// perType counts derived events by schema index.
	perType []telemetry.Counter

	// ctx is indexed by context index: the stream router's
	// per-context window activity.
	ctx []ctxMetrics

	workers []*workerMetrics

	// query is indexed by execUnit.qmIdx: per-operator counters.
	// Updated only when detail is set (a registry or tracer is
	// attached) — the plain Stats path never pays for them.
	query  []queryMetrics
	detail bool

	tracer *telemetry.Tracer
	// stages is the stage-span tracer (Config.Stages); nil disables
	// all stage clock reads. Shared with the distributor / router.
	stages *telemetry.StageTracer
}

// ctxMetrics is the router's per-context activity: activations
// (windows opened), suspensions (windows closed) and the lifetime of
// closed windows in application time units.
type ctxMetrics struct {
	activations telemetry.Counter
	suspensions telemetry.Counter
	lifetime    telemetry.Histogram
}

// workerMetrics mirrors the former plain per-worker counters as
// atomics, so a live scraper can read them mid-run without torn
// reads. Each instance is written by its worker goroutine only.
type workerMetrics struct {
	txns           telemetry.Counter
	outputs        telemetry.Counter
	transitions    telemetry.Counter
	suspendedSkips telemetry.Counter
	instanceExecs  telemetry.Counter
	eventsFed      telemetry.Counter
	historyResets  telemetry.Counter
	// txnLatency is the per-worker stream-transaction execution time
	// in nanoseconds; only fed when txn timing is on (detail mode).
	txnLatency telemetry.Histogram
	// Derived-event arena occupancy (DESIGN.md §3.8): lifetime slabs
	// allocated, sealed slabs awaiting reclamation, and slabs
	// recycled. Mirrored from the worker-confined arena after each
	// reclamation pass, so a live scrape reads single-writer atomics,
	// never the arena's plain counters.
	derivedChunks    telemetry.Gauge
	derivedLive      telemetry.Gauge
	derivedReclaimed telemetry.Counter
}

// queryMetrics is the per-operator breakdown of one query plan,
// aggregated over all partitions.
type queryMetrics struct {
	execs       telemetry.Counter
	matches     telemetry.Counter
	filteredOut telemetry.Counter
	negated     telemetry.Counter
	arenaChunks telemetry.Counter
	partials    telemetry.Gauge
	negBuffered telemetry.Gauge
	pending     telemetry.Gauge
	runNodes    telemetry.Gauge
	predEntries telemetry.Gauge
}

func newRunMetrics(e *Engine, nWorkers int) *runMetrics {
	rm := &runMetrics{
		perType: make([]telemetry.Counter, e.m.Registry.Len()),
		ctx:     make([]ctxMetrics, len(e.m.Contexts)),
		workers: make([]*workerMetrics, nWorkers),
		query:   make([]queryMetrics, len(e.queryNames)),
		detail:  e.cfg.Telemetry != nil || e.cfg.Tracer != nil,
		tracer:  e.cfg.Tracer,
		stages:  e.cfg.Stages,
	}
	for i := range rm.workers {
		rm.workers[i] = &workerMetrics{}
	}
	return rm
}

// reset rewinds every per-run metric so a cached run's Stats cover
// only the new run. The partitions gauge is deliberately kept: the
// partition tables persist across runs (that is the point of run
// reuse), so the gauge keeps reflecting the interned count.
func (rm *runMetrics) reset() {
	rm.events.Reset()
	rm.ticks.Reset()
	rm.batches.Reset()
	rm.reclaims.Reset()
	rm.outputLatency.Reset()
	for i := range rm.perType {
		rm.perType[i].Reset()
	}
	for i := range rm.ctx {
		rm.ctx[i].activations.Reset()
		rm.ctx[i].suspensions.Reset()
		rm.ctx[i].lifetime.Reset()
	}
	for _, wm := range rm.workers {
		wm.txns.Reset()
		wm.outputs.Reset()
		wm.transitions.Reset()
		wm.suspendedSkips.Reset()
		wm.instanceExecs.Reset()
		wm.eventsFed.Reset()
		wm.historyResets.Reset()
		wm.txnLatency.Reset()
		wm.derivedChunks.Set(0)
		wm.derivedLive.Set(0)
		wm.derivedReclaimed.Reset()
	}
	for i := range rm.query {
		qm := &rm.query[i]
		qm.execs.Reset()
		qm.matches.Reset()
		qm.filteredOut.Reset()
		qm.negated.Reset()
		qm.arenaChunks.Reset()
		qm.partials.Set(0)
		qm.negBuffered.Set(0)
		qm.pending.Set(0)
		qm.runNodes.Set(0)
		qm.predEntries.Set(0)
	}
}

// register attaches the run's metric objects to the registry. Called
// once per Run; re-registration replaces the previous run's entries
// (telemetry.Registry documents the replace semantics).
func (rm *runMetrics) register(reg *telemetry.Registry, e *Engine, workers []*worker) {
	if reg == nil {
		return
	}
	reg.Register("caesar_events_total", "input events consumed", &rm.events)
	reg.Register("caesar_ticks_total", "application time ticks dispatched", &rm.ticks)
	reg.Register("caesar_partitions", "stream partitions interned", &rm.partitions)
	reg.Register("caesar_output_latency_ns", "arrival-to-derivation latency of derived events", &rm.outputLatency)
	reg.Register("caesar_ingest_batches_total", "ingest batches dispatched", &rm.batches)
	reg.Register("caesar_ingest_reclaimed_chunks_total", "event arena slabs reclaimed", &rm.reclaims)
	if rm.ringDepth != nil {
		reg.Register("caesar_ingest_ring_depth", "decoded batches queued ahead of dispatch",
			telemetry.GaugeFunc(rm.ringDepth))
	}

	schemas := e.m.Registry.Schemas()
	for i := range rm.perType {
		reg.Register("caesar_outputs_by_type_total", "derived events by type",
			&rm.perType[i], telemetry.Label{Key: "type", Value: schemas[i].Name()})
	}
	for i := range rm.ctx {
		lbl := telemetry.Label{Key: "context", Value: e.m.Contexts[i].Name}
		reg.Register("caesar_context_activations_total", "context windows opened", &rm.ctx[i].activations, lbl)
		reg.Register("caesar_context_suspensions_total", "context windows closed", &rm.ctx[i].suspensions, lbl)
		reg.Register("caesar_context_window_ticks", "closed context window lifetime in application time units", &rm.ctx[i].lifetime, lbl)
	}
	for i, wm := range rm.workers {
		lbl := telemetry.Label{Key: "worker", Value: strconv.Itoa(i)}
		reg.Register("caesar_worker_txns_total", "stream transactions executed", &wm.txns, lbl)
		reg.Register("caesar_worker_outputs_total", "derived events emitted", &wm.outputs, lbl)
		reg.Register("caesar_worker_transitions_total", "context transitions applied", &wm.transitions, lbl)
		reg.Register("caesar_worker_suspended_skips_total", "plan executions skipped by the router", &wm.suspendedSkips, lbl)
		reg.Register("caesar_worker_instance_execs_total", "plan executions performed", &wm.instanceExecs, lbl)
		reg.Register("caesar_worker_events_fed_total", "events delivered to active plans", &wm.eventsFed, lbl)
		reg.Register("caesar_worker_history_resets_total", "context history discards", &wm.historyResets, lbl)
		reg.Register("caesar_txn_latency_ns", "stream transaction execution time", &wm.txnLatency, lbl)
		w := workers[i]
		reg.Register("caesar_worker_queue_depth", "transactions queued at the worker",
			telemetry.GaugeFunc(w.queueDepth), lbl)
		if w.arena != nil {
			reg.Register("caesar_derived_arena_chunks", "derived-event arena slabs allocated", &wm.derivedChunks, lbl)
			reg.Register("caesar_derived_arena_live_chunks", "sealed derived-event slabs awaiting reclamation", &wm.derivedLive, lbl)
			reg.Register("caesar_derived_arena_reclaimed_total", "derived-event slabs recycled by watermark reclamation", &wm.derivedReclaimed, lbl)
		}
	}
	for i := range rm.query {
		lbl := telemetry.Label{Key: "query", Value: e.queryNames[i]}
		qm := &rm.query[i]
		reg.Register("caesar_query_execs_total", "plan executions", &qm.execs, lbl)
		reg.Register("caesar_query_matches_total", "pattern matches emitted", &qm.matches, lbl)
		reg.Register("caesar_query_filtered_total", "matches rejected by predicates", &qm.filteredOut, lbl)
		reg.Register("caesar_query_negated_total", "matches invalidated by negation", &qm.negated, lbl)
		reg.Register("caesar_query_arena_chunks_total", "arena slabs allocated", &qm.arenaChunks, lbl)
		reg.Register("caesar_query_partials", "retained partial matches", &qm.partials, lbl)
		reg.Register("caesar_query_neg_buffered", "buffered negation events", &qm.negBuffered, lbl)
		reg.Register("caesar_query_pending", "matches awaiting a negation deadline", &qm.pending, lbl)
		reg.Register("caesar_query_run_nodes", "shared automaton run nodes retained", &qm.runNodes, lbl)
		reg.Register("caesar_query_pred_entries", "predecessor-set entries across run nodes", &qm.predEntries, lbl)
	}
	if rm.tracer != nil {
		reg.Register("caesar_txn_spans_total", "transaction spans recorded", &rm.tracer.Spans)
		reg.Register("caesar_slow_txns_total", "transactions at or above the slow threshold", &rm.tracer.Slow)
	}
	rm.stages.RegisterOn(reg)
}

// registerShardMetrics attaches the sharded runtime's per-shard view:
// input ring occupancy, cumulative stall time on both ring sides,
// owned partitions, and the last completed tick. Worker-level
// execution metrics are covered by register above (each shard's
// worker occupies one workerMetrics slot).
func registerShardMetrics(reg *telemetry.Registry, shards []*engineShard) {
	if reg == nil {
		return
	}
	for _, s := range shards {
		s := s
		lbl := telemetry.Label{Key: "shard", Value: strconv.Itoa(s.id)}
		reg.Register("caesar_shard_ring_occupancy", "grants queued in the router-to-shard ring",
			telemetry.GaugeFunc(s.in.occupancy), lbl)
		reg.Register("caesar_shard_router_stall_ns", "time the router spent blocked on a full shard ring",
			telemetry.GaugeFunc(func() int64 { p, _ := s.in.stallNs(); return p }), lbl)
		reg.Register("caesar_shard_stall_ns", "time the shard spent blocked on an empty ring",
			telemetry.GaugeFunc(func() int64 { _, c := s.in.stallNs(); return c }), lbl)
		reg.Register("caesar_shard_partitions", "stream partitions owned by the shard",
			telemetry.GaugeFunc(s.parts.Load), lbl)
		reg.Register("caesar_shard_completed_tick", "last application tick fully executed by the shard",
			telemetry.GaugeFunc(s.completed.Load), lbl)
	}
}
