package runtime

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/optimizer"
	"github.com/caesar-cep/caesar/internal/plan"
)

// fig7Src is the paper's Fig. 7 scenario: two overlapping windows
// c1 = (X>10, X>=30) and c2 = (X>20, X>=40) over a monotone attribute
// X, with Q1 shared by both contexts, Q3 only in c1, Q2 only in c2.
const fig7Src = `
EVENT S(x int, v int, seg int)
EVENT R1(v int, seg int)
EVENT R2(v int, seg int)
EVENT R3(v int, seg int)

CONTEXT idle DEFAULT
CONTEXT c1
CONTEXT c2

# The upper bound on the initiate conditions stops re-initiation
# after the window terminates (X is monotone, so "X > 10" alone would
# stay true forever).
INITIATE CONTEXT c1
PATTERN S s
WHERE s.x > 10 AND s.x < 30
CONTEXT idle, c1, c2

TERMINATE CONTEXT c1
PATTERN S s
WHERE s.x >= 30
CONTEXT c1

INITIATE CONTEXT c2
PATTERN S s
WHERE s.x > 20 AND s.x < 40
CONTEXT idle, c1, c2

TERMINATE CONTEXT c2
PATTERN S s
WHERE s.x >= 40
CONTEXT c2

DERIVE R1(s.v, s.seg)
PATTERN S s
WHERE s.v > 0
CONTEXT c1

DERIVE R3(s.v, s.seg)
PATTERN S s
WHERE s.v > 0
CONTEXT c1

DERIVE R1(s.v, s.seg)
PATTERN S s
WHERE s.v > 0
CONTEXT c2

DERIVE R2(s.v, s.seg)
PATTERN S s
WHERE s.v > 0
CONTEXT c2
`

// TestGroupingMatchesRuntimeActivation drives a monotone X stream
// through the shared engine and checks that, for every X strictly
// inside a grouped window, exactly the queries of that group produce
// results — the compile-time grouping of Listing 1 and the runtime's
// union-mask sharing describe the same execution.
func TestGroupingMatchesRuntimeActivation(t *testing.T) {
	m, err := model.CompileSource(fig7Src)
	if err != nil {
		t.Fatal(err)
	}

	// Compile-time view: Listing 1 over the windows extracted from
	// the deriving-query thresholds.
	ws, skipped := optimizer.WindowsFromModel(m)
	if len(skipped) != 0 {
		t.Fatalf("skipped: %v", skipped)
	}
	groups, err := optimizer.GroupWindows(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %+v", groups)
	}
	// Expected result types per grouped window, from the paper:
	// [10,20): {R1,R3}; [20,30): {R1,R2,R3}; [30,40): {R1,R2}.
	wantTypes := []map[string]bool{
		{"R1": true, "R3": true},
		{"R1": true, "R2": true, "R3": true},
		{"R1": true, "R2": true},
	}
	for i, g := range groups {
		got := map[string]bool{}
		for _, q := range g.Queries {
			got[q.Out.Name()] = true
		}
		for ty := range wantTypes[i] {
			if !got[ty] {
				t.Errorf("group %d missing %s", i, ty)
			}
		}
		if len(got) != len(wantTypes[i]) {
			t.Errorf("group %d types = %v, want %v", i, got, wantTypes[i])
		}
	}

	// Runtime view: X advances 1 per second; events inside each
	// grouped window must derive exactly the group's result types.
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Plan:           p,
		Sharing:        true,
		PartitionBy:    []string{"seg"},
		Workers:        1,
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sb := &streamBuilder{t: t, m: m}
	// v mirrors x so each output identifies its trigger event.
	for x := int64(0); x <= 50; x++ {
		sb.add("S", event.Time(x), x, x, 7)
	}
	st, err := eng.Run(sb.source())
	if err != nil {
		t.Fatal(err)
	}

	// Transitions take effect for t > trigger, so a window (a, b]
	// derives results for x in (a, b]. Sample strictly inside each
	// group span to avoid boundary ticks.
	perX := map[int64]map[string]bool{}
	for _, e := range st.Outputs {
		v, _ := e.Get("v")
		if perX[v.Int] == nil {
			perX[v.Int] = map[string]bool{}
		}
		perX[v.Int][e.TypeName()] = true
	}
	for i, g := range groups {
		for x := int64(g.Start) + 2; x < int64(g.End); x += 3 {
			got := perX[x]
			for ty := range wantTypes[i] {
				if !got[ty] {
					t.Errorf("x=%d (group %d): missing %s (got %v)", x, i, ty, got)
				}
			}
			for ty := range got {
				if !wantTypes[i][ty] {
					t.Errorf("x=%d (group %d): unexpected %s", x, i, ty)
				}
			}
		}
	}
	// Outside all windows nothing is derived.
	for _, x := range []int64{5, 45, 50} {
		if len(perX[x]) != 0 {
			t.Errorf("x=%d outside windows derived %v", x, perX[x])
		}
	}
	// Sharing collapsed the two R1 queries: each in-window x yields
	// R1 once (CollectOutputs retains every derivation).
	r1 := 0
	for _, e := range st.Outputs {
		if e.TypeName() == "R1" {
			v, _ := e.Get("v")
			if v.Int == 25 {
				r1++
			}
		}
	}
	if r1 != 1 {
		t.Errorf("R1 at x=25 derived %d times, want 1 (shared)", r1)
	}
}
