package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
)

// trafficSrc is a compact traffic model: context transitions are
// driven by Trigger control events per segment; toll derivation is
// the two-query combined plan of paper Fig. 3.
const trafficSrc = `
EVENT Trigger(seg int, mode int)
EVENT PositionReport(vid int, seg int, lane int, sec int)
EVENT NewCar(vid int, seg int, sec int)
EVENT Toll(vid int, seg int, toll int)
EVENT Warn(vid int, seg int)

CONTEXT clear DEFAULT
CONTEXT congestion
CONTEXT accident

SWITCH CONTEXT congestion
PATTERN Trigger t
WHERE t.mode = 1
CONTEXT clear

SWITCH CONTEXT clear
PATTERN Trigger t
WHERE t.mode = 0
CONTEXT congestion

INITIATE CONTEXT accident
PATTERN Trigger t
WHERE t.mode = 2
CONTEXT clear, congestion

TERMINATE CONTEXT accident
PATTERN Trigger t
WHERE t.mode = 3
CONTEXT accident

DERIVE NewCar(p2.vid, p2.seg, p2.sec)
PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4
CONTEXT congestion

DERIVE Toll(c.vid, c.seg, 5)
PATTERN NewCar c
CONTEXT congestion

DERIVE Warn(p.vid, p.seg)
PATTERN PositionReport p
WHERE p.lane != 4
CONTEXT accident
`

type streamBuilder struct {
	t   testing.TB
	m   *model.Model
	evs []*event.Event
}

func (sb *streamBuilder) add(typ string, ts event.Time, vals ...int64) *streamBuilder {
	s, ok := sb.m.Registry.Lookup(typ)
	if !ok {
		sb.t.Fatalf("no schema %s", typ)
	}
	values := make([]event.Value, len(vals))
	for i, v := range vals {
		values[i] = event.Int64(v)
	}
	sb.evs = append(sb.evs, event.MustNew(s, ts, values...))
	return sb
}

func (sb *streamBuilder) source() *event.SliceSource {
	event.SortByTime(sb.evs)
	return event.NewSliceSource(sb.evs)
}

func buildEngine(t testing.TB, src string, mode Mode, sharing bool, workers int) (*Engine, *model.Model) {
	t.Helper()
	m, err := model.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := plan.Optimized()
	if mode == ContextIndependent {
		opts = plan.Baseline()
	}
	p, err := plan.Build(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Plan:           p,
		Mode:           mode,
		Sharing:        sharing,
		PartitionBy:    []string{"seg"},
		Workers:        workers,
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

// trafficStream builds the canonical test stream: segment 1 becomes
// congested at t=1; cars 10 and 11 report; accident at t=100; clear
// of congestion at t=130; accident over at t=160.
func trafficStream(t testing.TB, m *model.Model) *event.SliceSource {
	sb := &streamBuilder{t: t, m: m}
	sb.add("Trigger", 1, 1, 1) // seg 1 congested
	// Car 10 reports at 31 (new), 61 (has predecessor).
	sb.add("PositionReport", 31, 10, 1, 0, 31)
	sb.add("PositionReport", 61, 10, 1, 0, 61)
	// Car 11 on exit lane: never tolled.
	sb.add("PositionReport", 61, 11, 1, 4, 61)
	// Accident at t=100 (overlaps congestion).
	sb.add("Trigger", 100, 1, 2)
	sb.add("PositionReport", 121, 12, 1, 1, 121) // new car + warned
	// Congestion ends.
	sb.add("Trigger", 130, 1, 0)
	sb.add("PositionReport", 151, 13, 1, 1, 151) // accident only: warn, no toll
	sb.add("Trigger", 160, 1, 3)                 // accident over
	sb.add("PositionReport", 181, 14, 1, 1, 181) // clear: nothing
	return sb.source()
}

func outputsByType(st *Stats, typ string) []*event.Event {
	var out []*event.Event
	for _, e := range st.Outputs {
		if e.TypeName() == typ {
			out = append(out, e)
		}
	}
	return out
}

func TestContextAwareTrafficEndToEnd(t *testing.T) {
	eng, m := buildEngine(t, trafficSrc, ContextAware, false, 2)
	st, err := eng.Run(trafficStream(t, m))
	if err != nil {
		t.Fatal(err)
	}
	tolls := outputsByType(st, "Toll")
	// Tolls: car 10 at 31, car 12 at 121 (car 13 arrives after the
	// congestion window closed, car 11 is on the exit lane).
	if len(tolls) != 2 {
		t.Fatalf("tolls = %v", tolls)
	}
	if tolls[0].At(0).Int != 10 || tolls[1].At(0).Int != 12 {
		t.Errorf("toll vids = %v", tolls)
	}
	warns := outputsByType(st, "Warn")
	// Warnings during the accident window (100,160]: cars 12 and 13.
	if len(warns) != 2 || warns[0].At(0).Int != 12 || warns[1].At(0).Int != 13 {
		t.Fatalf("warns = %v", warns)
	}
	// switch to congestion = term clear + init congestion (2);
	// initiate accident (1); switch to clear = term congestion +
	// init clear (2); terminate accident (1).
	if st.Transitions != 6 {
		t.Errorf("transitions = %d, want 6", st.Transitions)
	}
	if st.SuspendedSkips == 0 {
		t.Error("no plans were ever suspended")
	}
	if st.Events != 10 || st.OutputCount == 0 || st.Partitions != 1 {
		t.Errorf("stats = %+v", st)
	}
	// NewCar: car 10 at 31 and car 12 at 121 (car 10 at 61 has a
	// predecessor; car 13 arrives after the congestion window).
	if st.PerType["Toll"] != 2 || st.PerType["Warn"] != 2 || st.PerType["NewCar"] != 2 {
		t.Errorf("per-type = %v", st.PerType)
	}
}

func TestPartitionIsolation(t *testing.T) {
	eng, m := buildEngine(t, trafficSrc, ContextAware, false, 3)
	sb := &streamBuilder{t: t, m: m}
	sb.add("Trigger", 1, 1, 1)                 // seg 1 congested
	sb.add("PositionReport", 31, 10, 1, 0, 31) // seg 1: toll
	sb.add("PositionReport", 31, 20, 2, 0, 31) // seg 2 clear: no toll
	st, err := eng.Run(sb.source())
	if err != nil {
		t.Fatal(err)
	}
	tolls := outputsByType(st, "Toll")
	if len(tolls) != 1 || tolls[0].At(1).Int != 1 {
		t.Fatalf("tolls = %v", tolls)
	}
	if st.Partitions != 2 {
		t.Errorf("partitions = %d", st.Partitions)
	}
}

func TestHistoryDiscardedOnWindowClose(t *testing.T) {
	// The NewCar negation buffer must be cleared when congestion
	// closes: car 10's report at t=31 (inside window 1) must not
	// suppress its report at t=61 (inside window 2).
	eng, m := buildEngine(t, trafficSrc, ContextAware, false, 1)
	sb := &streamBuilder{t: t, m: m}
	sb.add("Trigger", 1, 1, 1)
	sb.add("PositionReport", 31, 10, 1, 0, 31) // toll (new in window 1)
	sb.add("Trigger", 40, 1, 0)                // congestion off
	sb.add("Trigger", 50, 1, 1)                // congestion on again
	sb.add("PositionReport", 61, 10, 1, 0, 61) // new again: history reset
	st, err := eng.Run(sb.source())
	if err != nil {
		t.Fatal(err)
	}
	tolls := outputsByType(st, "Toll")
	if len(tolls) != 2 {
		t.Fatalf("tolls = %v (history not discarded?)", tolls)
	}
	if st.HistoryResets == 0 {
		t.Error("no history resets recorded")
	}
}

// equivalentStream is a stream on which context-aware and
// context-independent semantics provably coincide: no pattern match
// spans a context boundary (congestion holds before any position
// report arrives and never ends).
func equivalentStream(t testing.TB, m *model.Model) *event.SliceSource {
	sb := &streamBuilder{t: t, m: m}
	sb.add("Trigger", 1, 1, 1)
	sb.add("Trigger", 1, 2, 1)
	vidBase := int64(100)
	for seg := int64(1); seg <= 2; seg++ {
		for i := int64(0); i < 6; i++ {
			vid := vidBase + seg*10 + i%3
			ts := event.Time(31 + 30*i)
			sb.add("PositionReport", ts, vid, seg, i%5, int64(ts))
		}
	}
	return sb.source()
}

func sortedRenderings(st *Stats) []string {
	out := make([]string, 0, len(st.Outputs))
	for _, e := range st.Outputs {
		out = append(out, e.String())
	}
	sort.Strings(out)
	return out
}

func TestContextIndependentEquivalence(t *testing.T) {
	ca, mca := buildEngine(t, trafficSrc, ContextAware, false, 2)
	stCA, err := ca.Run(equivalentStream(t, mca))
	if err != nil {
		t.Fatal(err)
	}
	ci, mci := buildEngine(t, trafficSrc, ContextIndependent, false, 2)
	stCI, err := ci.Run(equivalentStream(t, mci))
	if err != nil {
		t.Fatal(err)
	}
	a, b := sortedRenderings(stCA), sortedRenderings(stCI)
	if len(a) == 0 {
		t.Fatal("no outputs at all")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("outputs differ:\nCA: %v\nCI: %v", a, b)
	}
	// The point of context-awareness: CI executes far more plan
	// instances for the same answer.
	if stCI.InstanceExecs <= stCA.InstanceExecs {
		t.Errorf("CI execs %d not above CA execs %d", stCI.InstanceExecs, stCA.InstanceExecs)
	}
	if stCA.SuspendedSkips == 0 {
		t.Error("CA suspended nothing")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	var runs [][]string
	for _, workers := range []int{1, 4} {
		eng, m := buildEngine(t, trafficSrc, ContextAware, false, workers)
		st, err := eng.Run(trafficStream(t, m))
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, sortedRenderings(st))
	}
	if strings.Join(runs[0], "\n") != strings.Join(runs[1], "\n") {
		t.Errorf("outputs differ across worker counts:\n1: %v\n4: %v", runs[0], runs[1])
	}
}

const sharingSrc = `
EVENT T(seg int, mode int)
EVENT P(v int, seg int)
EVENT R(v int, seg int)

CONTEXT idle DEFAULT
CONTEXT a
CONTEXT b

INITIATE CONTEXT a
PATTERN T t
WHERE t.mode = 1
CONTEXT idle, b

TERMINATE CONTEXT a
PATTERN T t
WHERE t.mode = 2
CONTEXT a

INITIATE CONTEXT b
PATTERN T t
WHERE t.mode = 3
CONTEXT idle, a

TERMINATE CONTEXT b
PATTERN T t
WHERE t.mode = 4
CONTEXT b

DERIVE R(p.v, p.seg)
PATTERN P p
WHERE p.v > 0
CONTEXT a

DERIVE R(p.v, p.seg)
PATTERN P p
WHERE p.v > 0
CONTEXT b
`

func TestWorkloadSharingOverlappingWindows(t *testing.T) {
	mkStream := func(m *model.Model) *event.SliceSource {
		sb := &streamBuilder{t: t, m: m}
		sb.add("T", 1, 1, 1)  // a on
		sb.add("P", 5, 50, 1) // only a active
		sb.add("T", 8, 1, 3)  // b on: overlap
		sb.add("P", 10, 60, 1)
		sb.add("T", 12, 1, 2) // a off
		sb.add("P", 15, 70, 1)
		sb.add("T", 20, 1, 4) // b off
		return sb.source()
	}

	shared, m1 := buildEngine(t, sharingSrc, ContextAware, true, 1)
	stS, err := shared.Run(mkStream(m1))
	if err != nil {
		t.Fatal(err)
	}
	non, m2 := buildEngine(t, sharingSrc, ContextAware, false, 1)
	stN, err := non.Run(mkStream(m2))
	if err != nil {
		t.Fatal(err)
	}

	// Shared: one instance serves both windows — exactly 3 results.
	if n := len(outputsByType(stS, "R")); n != 3 {
		t.Fatalf("shared R outputs = %d, want 3: %v", n, stS.Outputs)
	}
	// Non-shared: during the overlap (P@10) both query instances
	// produce the result — 4 outputs, duplicated work.
	if n := len(outputsByType(stN, "R")); n != 4 {
		t.Fatalf("non-shared R outputs = %d, want 4: %v", n, stN.Outputs)
	}
	// Deduplicated result sets coincide.
	dedup := func(st *Stats) []string {
		seen := map[string]bool{}
		var out []string
		for _, e := range st.Outputs {
			if e.TypeName() != "R" || seen[e.String()] {
				continue
			}
			seen[e.String()] = true
			out = append(out, e.String())
		}
		sort.Strings(out)
		return out
	}
	if strings.Join(dedup(stS), "\n") != strings.Join(dedup(stN), "\n") {
		t.Errorf("deduplicated outputs differ:\nshared: %v\nnon-shared: %v", dedup(stS), dedup(stN))
	}
	if stN.InstanceExecs <= stS.InstanceExecs {
		t.Errorf("sharing did not save executions: %d vs %d", stS.InstanceExecs, stN.InstanceExecs)
	}
	// The shared instance's history persists across the grouped
	// windows: while a or b holds, the merged instance stays active.
	if g, i := shared.Groups(); g != 1 || i >= 6 {
		t.Errorf("shared groups/instances = %d/%d", g, i)
	}
}

func TestPacingStretchesWallTime(t *testing.T) {
	eng, m := buildEngine(t, trafficSrc, ContextAware, false, 1)
	eng.cfg.Pacing = time.Millisecond
	st, err := eng.Run(trafficStream(t, m))
	if err != nil {
		t.Fatal(err)
	}
	// Stream spans 180 application time units at 1ms each.
	if st.WallTime < 150*time.Millisecond {
		t.Errorf("paced run took only %v", st.WallTime)
	}
}

func TestOnOutputCallback(t *testing.T) {
	eng, m := buildEngine(t, trafficSrc, ContextAware, false, 2)
	var n atomic.Int64
	eng.cfg.OnOutput = func(*event.Event) { n.Add(1) }
	st, err := eng.Run(trafficStream(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != int64(st.OutputCount) {
		t.Errorf("callback saw %d, stats %d", n.Load(), st.OutputCount)
	}
}

func TestConfigValidation(t *testing.T) {
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		t.Fatal(err)
	}
	pOpt, _ := plan.Build(m, plan.Optimized())
	pNon, _ := plan.Build(m, plan.NonOptimized())

	if _, err := New(Config{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := New(Config{Plan: pOpt, Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := New(Config{Plan: pOpt, Mode: ContextIndependent}); err == nil {
		t.Error("CI over pushed-down plan accepted")
	}
	if _, err := New(Config{Plan: pNon, Mode: ContextIndependent, Sharing: true}); err == nil {
		t.Error("CI with sharing accepted")
	}
	if _, err := New(Config{Plan: pNon, Mode: ContextIndependent}); err != nil {
		t.Errorf("valid CI config rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if ContextAware.String() != "context-aware" || ContextIndependent.String() != "context-independent" {
		t.Error("Mode strings broken")
	}
}

func TestControlPartitionForKeylessEvents(t *testing.T) {
	// Events lacking every partition attribute land in the control
	// partition rather than being dropped.
	src := `
EVENT Ping(x int)
EVENT Pong(x int)
CONTEXT c DEFAULT
DERIVE Pong(p.x)
PATTERN Ping p
`
	m, err := model.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Plan: p, PartitionBy: []string{"seg"}, Workers: 1, CollectOutputs: true})
	if err != nil {
		t.Fatal(err)
	}
	sb := &streamBuilder{t: t, m: m}
	sb.add("Ping", 1, 7)
	st, err := eng.Run(sb.source())
	if err != nil {
		t.Fatal(err)
	}
	if st.OutputCount != 1 || st.Partitions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLatencyObserved(t *testing.T) {
	eng, m := buildEngine(t, trafficSrc, ContextAware, false, 2)
	st, err := eng.Run(trafficStream(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxLatency <= 0 || st.MeanLatency <= 0 || st.MaxLatency < st.MeanLatency {
		t.Errorf("latency stats implausible: max=%v mean=%v", st.MaxLatency, st.MeanLatency)
	}
}

// rawSource bypasses SliceSource's ordering check to inject an
// out-of-order event.
type rawSource struct {
	evs []*event.Event
	pos int
}

func (r *rawSource) Next() *event.Event {
	if r.pos >= len(r.evs) {
		return nil
	}
	e := r.evs[r.pos]
	r.pos++
	return e
}

func TestOutOfOrderEventRejected(t *testing.T) {
	eng, m := buildEngine(t, trafficSrc, ContextAware, false, 1)
	pr, _ := m.Registry.Lookup("PositionReport")
	mk := func(ts event.Time) *event.Event {
		return event.MustNew(pr, ts, event.Int64(1), event.Int64(1), event.Int64(0), event.Int64(int64(ts)))
	}
	src := &rawSource{evs: []*event.Event{mk(10), mk(20), mk(15)}}
	if _, err := eng.Run(src); err == nil || !strings.Contains(err.Error(), "out-of-order") {
		t.Errorf("disorder accepted: %v", err)
	}
}

// errSource reports a decode error after yielding events.
type errSource struct {
	done bool
}

func (e *errSource) Next() *event.Event {
	e.done = true
	return nil
}
func (e *errSource) Err() error { return errSentinel }

var errSentinel = fmt.Errorf("decode failed")

func TestSourceErrorSurfaced(t *testing.T) {
	eng, _ := buildEngine(t, trafficSrc, ContextAware, false, 1)
	if _, err := eng.Run(&errSource{}); err == nil || !strings.Contains(err.Error(), "decode failed") {
		t.Errorf("source error lost: %v", err)
	}
}

const fusionRuntimeSrc = `
EVENT P(v int, seg int)
EVENT A(v int, fee int)

CONTEXT idle DEFAULT
CONTEXT busy

SWITCH CONTEXT busy
PATTERN P p
WHERE p.v > 100
CONTEXT idle

SWITCH CONTEXT idle
PATTERN P p
WHERE p.v < 0
CONTEXT busy

DERIVE A(p.v, 1)
PATTERN P p
WHERE p.v > 3
CONTEXT busy

DERIVE A(p.v, 2)
PATTERN P p
WHERE p.v > 3
CONTEXT busy

DERIVE A(p.v, 3)
PATTERN P p
WHERE p.v > 3
CONTEXT busy
`

func runFusion(t *testing.T, fusion bool) *Stats {
	t.Helper()
	m, err := model.CompileSource(fusionRuntimeSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Plan:           p,
		Fusion:         fusion,
		PartitionBy:    []string{"seg"},
		Workers:        1,
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sb := &streamBuilder{t: t, m: m}
	sb.add("P", 1, 200, 1) // switch to busy
	for ts := event.Time(2); ts < 40; ts++ {
		sb.add("P", ts, int64(ts%10), 1)
	}
	st, err := eng.Run(sb.source())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPatternFusionEquivalence: fusing the three identical-pattern
// queries changes neither the derived outputs nor their multiplicity,
// while executing a third of the plan instances.
func TestPatternFusionEquivalence(t *testing.T) {
	plain := runFusion(t, false)
	fused := runFusion(t, true)
	if strings.Join(sortedRenderings(plain), "\n") != strings.Join(sortedRenderings(fused), "\n") {
		t.Fatalf("fusion changed outputs:\nplain: %v\nfused: %v",
			sortedRenderings(plain), sortedRenderings(fused))
	}
	if plain.PerType["A"] == 0 || plain.PerType["A"]%3 != 0 {
		t.Fatalf("plain outputs = %v", plain.PerType)
	}
	if fused.InstanceExecs >= plain.InstanceExecs {
		t.Errorf("fusion did not reduce executions: %d vs %d",
			fused.InstanceExecs, plain.InstanceExecs)
	}
}

func TestFusionConfigValidation(t *testing.T) {
	m, err := model.CompileSource(fusionRuntimeSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := plan.Build(m, plan.Baseline())
	if _, err := New(Config{Plan: p, Mode: ContextIndependent, Fusion: true}); err == nil {
		t.Error("CI with fusion accepted")
	}
}
