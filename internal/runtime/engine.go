// Package runtime is the CAESAR execution infrastructure (paper §6):
// the event distributor, per-partition event queues, the time-driven
// scheduler forming stream transactions, the context-aware stream
// router that suspends irrelevant query plans, per-partition context
// bit vectors, context history management and garbage collection.
//
// # Execution model
//
// The input stream arrives in application-time order. The distributor
// groups events with equal timestamps into ticks; within a tick,
// events are partitioned (by the configured key attributes — one
// unidirectional road segment in the traffic use case) into stream
// transactions. Transactions of the same partition always execute on
// the same worker in timestamp order, which is exactly the
// correctness condition of §6.2: conflicting operations on shared
// context data are processed sorted by time stamps. Partitions are
// independent, so different partitions proceed concurrently without
// a global barrier.
//
// Within a transaction, every query observes the pre-transaction
// context window set; transitions derived during the transaction are
// applied at its end. This realizes the (t_i, t_t] window semantics
// of Def. 1 and makes context processing at time t depend only on
// context derivation at times < t.
package runtime

import (
	"fmt"
	gort "runtime"
	"sort"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/optimizer"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// Mode selects the execution strategy.
type Mode int

const (
	// ContextAware is the CAESAR strategy: the stream router feeds a
	// query plan only while its context window holds; all other plans
	// are suspended (§6.2).
	ContextAware Mode = iota
	// ContextIndependent is the state-of-the-art baseline (§7.3):
	// every query runs on every event, and every context processing
	// query privately re-derives the contexts it depends on.
	ContextIndependent
)

func (m Mode) String() string {
	if m == ContextAware {
		return "context-aware"
	}
	return "context-independent"
}

// Config configures an Engine.
type Config struct {
	Plan *plan.Plan
	Mode Mode
	// Sharing enables context workload sharing (§5.3): equivalent
	// queries from overlapping contexts execute as one instance.
	// Context-aware mode only.
	Sharing bool
	// Fusion enables pattern fusion (the §5.3 MQO step): DERIVE
	// queries with identical pattern, filters, horizon and context
	// mask evaluate one shared pattern with multiple projection
	// heads. Context-aware mode only.
	Fusion bool
	// PartitionBy names the attributes forming the stream partition
	// key (e.g. xway, dir, seg). Events missing all key attributes
	// fall into every partition's input? No — they land in partition
	// "·", a dedicated control partition.
	PartitionBy []string
	// Workers is the worker pool size of the legacy single-router
	// pipeline; 0 means 4. Ignored when the sharded runtime runs
	// (Shards > 1): shards are the execution units then.
	Workers int
	// Shards selects the sharded multi-core runtime (DESIGN.md §3.6):
	// N independent engine shards, each owning a disjoint set of
	// stream partitions end to end, fed through lock-free SPSC rings.
	// Shards == 1 preserves the legacy pipeline (distributor + worker
	// pool) byte-for-byte. Shards == 0 defaults to GOMAXPROCS when
	// Workers is also unset; an explicitly configured Workers keeps
	// the legacy pool for compatibility. Requires the pipelined
	// ingest path (incompatible with DisablePipeline) when > 1.
	Shards int
	// Pacing, when positive, replays the stream in real time: one
	// application time unit lasts Pacing of wall time. Zero feeds the
	// stream as fast as possible, so maximal latency measures CPU
	// backlog (the paper's win-ratio configuration).
	Pacing time.Duration
	// ReadAhead bounds the ingest read-ahead ring: how many decoded
	// batches the decode goroutine may run ahead of dispatch. 0 means
	// 4 (DESIGN.md §3.4).
	ReadAhead int
	// DisablePipeline forces the legacy synchronous ingest loop:
	// decode, pace and dispatch one event at a time on one goroutine.
	// The pipelined path is differentially tested against it.
	DisablePipeline bool
	// CollectOutputs retains all derived events in Stats.Outputs.
	CollectOutputs bool
	// DisableDerivedArena routes derived-event construction to the GC
	// heap instead of the per-execution-unit slab arena (DESIGN.md
	// §3.8). The arena path is differentially tested against this one.
	// With the arena on (the default), events handed to OnOutput are
	// valid for the duration of the callback and until their tick falls
	// behind the reclamation watermark; consumers that retain events
	// beyond that must copy them (event.Clone). Stats.Outputs is always
	// safe: collected events are cloned to the heap at emit time.
	DisableDerivedArena bool
	// DerivedChunkEvents sizes the derived-event arena's slabs, in
	// events; 0 means event.DefaultChunkEvents.
	DerivedChunkEvents int
	// OnOutput, when set, is invoked for every derived output event.
	// On the legacy pipeline it is called concurrently from worker
	// goroutines; on the sharded runtime (Shards > 1) it is called
	// from a single merger goroutine in deterministic order — sorted
	// by derivation tick, then shard, then emission order (the
	// ordered merge layer, DESIGN.md §3.6).
	OnOutput func(*event.Event)
	// Telemetry, when set, registers the run's live metrics with the
	// registry: per-worker transaction counters and latency
	// histograms, per-context window activity, per-query operator
	// counters and queue-depth gauges. Stats is derived from the same
	// metric objects, so a live scrape and the end-of-run report
	// agree. When nil, only the always-on counters run (plain atomic
	// adds); per-query detail and per-transaction timing are skipped.
	Telemetry *telemetry.Registry
	// Tracer, when set, records one span per stream transaction and
	// logs transactions slower than its threshold. Enabling the
	// tracer also enables per-transaction timing.
	Tracer *telemetry.Tracer
	// Stages, when set, samples tick timelines end to end through the
	// pipeline (decode, queue wait, route, ring wait, execute, merge
	// hold-back) into per-stage latency histograms and the flight
	// recorder behind /tracez (DESIGN.md §3.7). Sampling is 1-in-N
	// (the tracer's rate); unsampled ticks pay one atomic add. When
	// nil, no stage clocks are read at all.
	Stages *telemetry.StageTracer
	// Health, when set, receives the run's liveness/readiness probes
	// (engine running, watermark advancing, execution units draining)
	// behind /healthz. Probes are replaced per run, like registry
	// metrics.
	Health *telemetry.Health
	// DurableDir, when non-empty, enables the durability subsystem
	// (DESIGN.md §3.9): every tick's input batch is appended to a
	// write-ahead log under the directory before dispatch, periodic
	// tick-aligned snapshots of all partition state are written
	// alongside, and Run recovers from the latest snapshot plus the
	// WAL tail before consuming live input. Ticks already covered by
	// recovery are dropped from the live source, so re-feeding the
	// full input after a restart resumes exactly-once. Requires the
	// pipelined ingest path and the shared-run kernel.
	DurableDir string
	// CheckpointEvery is the snapshot interval in dispatched ticks; 0
	// means 512. Durability only.
	CheckpointEvery int
	// WALSync selects the WAL fsync policy: 0 or 1 sync after every
	// tick append (a crash loses at most the tick being written), N > 1
	// syncs every N appends, negative leaves flushing to the OS
	// (fastest, weakest). Durability only.
	WALSync int
	// testCrashTick, when positive, aborts the run with a simulated
	// crash at the boundary before the first tick at or beyond it
	// (fault injection for the recovery tests).
	testCrashTick int64
}

// Stats reports a run's measurements.
type Stats struct {
	Events      uint64
	Ticks       uint64
	Txns        uint64
	OutputCount uint64
	Transitions uint64
	// SuspendedSkips counts plan executions avoided because the
	// plan's context window did not hold (the router's saving).
	SuspendedSkips uint64
	// InstanceExecs counts plan executions performed.
	InstanceExecs uint64
	// EventsFed counts events delivered to active plan instances
	// (instance executions weighted by batch size) — the
	// machine-independent proxy for processing effort.
	EventsFed uint64
	// HistoryResets counts context history discards (window closures).
	HistoryResets uint64
	// Batches counts ingest batches dispatched (0 on the synchronous
	// path); ReclaimedChunks counts event-arena slabs recycled by
	// watermark reclamation.
	Batches         uint64
	ReclaimedChunks uint64
	// ReplayedTicks counts WAL ticks re-dispatched during crash
	// recovery (0 on a fresh run or without durability).
	ReplayedTicks uint64
	Partitions    int
	MaxLatency    time.Duration
	MeanLatency   time.Duration
	// P50/P95/P99Latency are quantiles of the arrival-to-derivation
	// latency distribution (log-scale histogram, ≤12.5% relative
	// error; MaxLatency stays exact).
	P50Latency time.Duration
	P95Latency time.Duration
	P99Latency time.Duration
	// TxnP50/TxnP99/TxnMax summarize per-transaction execution wall
	// time. Populated only when Config.Telemetry or Config.Tracer is
	// set (transaction timing is off otherwise).
	TxnP50   time.Duration
	TxnP99   time.Duration
	TxnMax   time.Duration
	WallTime time.Duration
	// PerType counts outputs by event type.
	PerType map[string]uint64
	// Contexts reports the stream router's per-context window
	// activity by context name: windows opened and closed, summed
	// over all partitions.
	Contexts map[string]ContextStats
	// Outputs holds the derived events, sorted by occurrence end
	// time then rendering (only with Config.CollectOutputs).
	Outputs []*event.Event
}

// ContextStats is one context type's window activity.
type ContextStats struct {
	// Activations counts windows opened (context initiations that
	// flipped the bit), Suspensions windows closed.
	Activations uint64
	Suspensions uint64
}

// Engine executes a plan over event streams.
type Engine struct {
	cfg    Config
	groups []groupSpec
	m      *model.Model
	// nShards is the resolved shard count (see Config.Shards); > 1
	// routes batch runs onto the sharded runtime.
	nShards int
	// queryNames labels the per-query metric families; indexed by
	// execUnit.qmIdx (one slot per distinct query across groups).
	queryNames []string

	// legacyRun and shardedCached cache run scaffolding across Run
	// calls — worker pools, shards, metric sets, partition tables,
	// arenas. A later Run with the same engine reuses and resets them
	// instead of rebuilding, so steady-state re-runs allocate only
	// per-run incidentals; a failed run drops its cache (its rings and
	// buffers may be in a partial state).
	legacyRun     *run
	shardedCached *shardedRun
}

// execUnit is one instantiable query plan with its effective context
// mask and whether its derived events count as engine output. A
// non-nil fused list carries the member queries whose projection
// heads share this unit's pattern.
type execUnit struct {
	qp       *plan.QueryPlan
	mask     uint64
	countOut bool
	fused    []*model.Query
	// qmIdx addresses the unit's queryMetrics slot (shared by every
	// group instantiating the same query in context-independent
	// mode).
	qmIdx int
}

// groupSpec describes one context-vector scope: context-aware mode
// has a single group; the context-independent baseline has one group
// per sink query, each privately re-deriving contexts (§7.3).
type groupSpec struct {
	units []execUnit
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("runtime: nil plan")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("runtime: negative worker count")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("runtime: negative shard count")
	}
	nShards := cfg.Shards
	if nShards == 0 {
		if cfg.Workers != 0 {
			// An explicitly sized worker pool keeps the legacy
			// pipeline: existing configurations behave identically.
			nShards = 1
		} else {
			nShards = gort.GOMAXPROCS(0)
		}
	}
	if nShards > 1 && cfg.DisablePipeline {
		return nil, fmt.Errorf("runtime: the sharded runtime (Shards=%d) requires the pipelined ingest path", nShards)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Mode == ContextIndependent && cfg.Plan.Opts.PushDown {
		return nil, fmt.Errorf("runtime: context-independent mode requires a non-pushed-down plan (plan.NonOptimized())")
	}
	if cfg.Mode == ContextIndependent && (cfg.Sharing || cfg.Fusion) {
		return nil, fmt.Errorf("runtime: workload sharing and fusion apply to context-aware mode only")
	}
	if cfg.DurableDir != "" {
		if cfg.DisablePipeline {
			return nil, fmt.Errorf("runtime: durability requires the pipelined ingest path")
		}
		if cfg.Plan.Opts.LegacyKernel {
			return nil, fmt.Errorf("runtime: durability requires the shared-run kernel (the legacy kernel does not snapshot)")
		}
		if cfg.CheckpointEvery < 0 {
			return nil, fmt.Errorf("runtime: negative checkpoint interval")
		}
	}
	e := &Engine{cfg: cfg, m: cfg.Plan.Model, nShards: nShards}
	var err error
	e.groups, err = buildGroups(cfg)
	if err != nil {
		return nil, err
	}
	e.indexQueries()
	return e, nil
}

// indexQueries assigns each distinct query a dense metrics slot. In
// context-independent mode the same query appears in several groups;
// all its units share one slot, so the per-query counters aggregate
// over the private re-derivations exactly like Stats does.
func (e *Engine) indexQueries() {
	byID := map[int]int{}
	for gi := range e.groups {
		units := e.groups[gi].units
		for ui := range units {
			id := units[ui].qp.Query.ID
			idx, ok := byID[id]
			if !ok {
				idx = len(e.queryNames)
				byID[id] = idx
				e.queryNames = append(e.queryNames, units[ui].qp.Query.Name)
			}
			units[ui].qmIdx = idx
		}
	}
}

func buildGroups(cfg Config) ([]groupSpec, error) {
	p := cfg.Plan
	byID := make(map[int]*plan.QueryPlan, len(p.Queries))
	var order []*model.Query
	for _, qp := range p.Queries {
		byID[qp.Query.ID] = qp
		order = append(order, qp.Query)
	}

	if cfg.Mode == ContextAware {
		var shared []optimizer.SharedQuery
		if cfg.Sharing {
			shared = optimizer.ShareWorkload(order)
		} else {
			shared = optimizer.NonShared(order)
		}
		g := groupSpec{}
		if cfg.Fusion {
			for _, f := range optimizer.FusePatterns(shared) {
				u := execUnit{
					qp:       byID[f.Leader.ID],
					mask:     f.Mask,
					countOut: !f.Leader.IsWindowQuery(),
				}
				if len(f.Members) > 1 {
					u.fused = f.Members
				}
				g.units = append(g.units, u)
			}
			return []groupSpec{g}, nil
		}
		for _, sq := range shared {
			g.units = append(g.units, execUnit{
				qp:       byID[sq.Query.ID],
				mask:     sq.Mask,
				countOut: !sq.Query.IsWindowQuery(),
			})
		}
		return []groupSpec{g}, nil
	}

	// Context-independent: one group per sink (derive query), each
	// containing every window query with its producer closure plus
	// the sink's own producer closure — the paper's "each context
	// processing query has to run its respective context deriving
	// queries separately" (§5.3).
	m := p.Model
	var groups []groupSpec
	for _, sink := range order {
		if sink.IsWindowQuery() {
			continue
		}
		members := map[int]bool{}
		var add func(q *model.Query)
		add = func(q *model.Query) {
			if members[q.ID] {
				return
			}
			members[q.ID] = true
			for _, s := range q.Pattern.Steps {
				for _, prod := range m.DerivedBy(s.Schema.Name()) {
					add(prod)
				}
			}
		}
		add(sink)
		for _, q := range order {
			if q.IsWindowQuery() {
				add(q)
			}
		}
		g := groupSpec{}
		for _, q := range order { // topo order preserved
			if !members[q.ID] {
				continue
			}
			g.units = append(g.units, execUnit{
				qp:       byID[q.ID],
				mask:     q.Mask,
				countOut: q.ID == sink.ID,
			})
		}
		groups = append(groups, g)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("runtime: context-independent mode needs at least one DERIVE query")
	}
	return groups, nil
}

// Groups reports the number of execution groups and total instances
// per partition; the experiment harness uses it to explain costs.
func (e *Engine) Groups() (groups, instances int) {
	for _, g := range e.groups {
		instances += len(g.units)
	}
	return len(e.groups), instances
}

// Run executes the engine over a source until exhaustion and returns
// the run's statistics. Run may be called repeatedly on the same
// engine — each call starts from fresh logical state (context
// vectors, pattern state and progress marks are reset), while the
// scaffolding (worker pools, partition tables, rings, arenas) is
// retained and reused. Calls must not overlap; with the derived-event
// arena on, outputs observed through OnOutput are valid only within
// the watermark window (see Config.DisableDerivedArena) and
// Stats.Outputs of a previous call remains valid across later calls.
//
// Sources implementing event.BatchSource (SliceSource, event.Reader,
// linearroad.Stream) feed the pipelined ingest path: decode runs on
// its own goroutine behind a bounded read-ahead ring (DESIGN.md
// §3.4); other sources are adapted through event.NewBatcher.
// Config.DisablePipeline selects the legacy synchronous loop.
func (e *Engine) Run(src event.Source) (*Stats, error) {
	if e.cfg.DisablePipeline {
		return e.runSync(src)
	}
	if bs, ok := src.(event.BatchSource); ok {
		return e.RunBatches(bs)
	}
	return e.RunBatches(event.NewBatcher(src))
}

// runSync is the preserved synchronous ingest loop: decode, pace and
// dispatch on one goroutine, one event at a time. It anchors the
// differential tests for the pipelined path.
func (e *Engine) runSync(src event.Source) (*Stats, error) {
	r := e.newRun()
	var tick []*event.Event
	var curTS event.Time
	var orderErr error
	for ev := src.Next(); ev != nil; ev = src.Next() {
		r.rm.events.Inc()
		ts := ev.End()
		if ts < curTS {
			// Events must arrive in-order by time stamp (§6.2);
			// processing a late event would corrupt context
			// derivation, so the run aborts.
			orderErr = fmt.Errorf("runtime: out-of-order event %v after t=%d", ev, curTS)
			break
		}
		if len(tick) > 0 && ts != curTS {
			if orderErr = r.dispatchTick(curTS, tick); orderErr != nil {
				break
			}
			tick = tick[:0]
		}
		curTS = ts
		tick = append(tick, ev)
	}
	if orderErr == nil && len(tick) > 0 {
		orderErr = r.dispatchTick(curTS, tick)
	}
	r.shutdown()
	return r.finish(src, orderErr)
}

// collect derives the run's Stats from the run's metric objects —
// the same objects a live /metrics scrape reads — so batch and
// serving paths report identical numbers.
func (e *Engine) collect(rm *runMetrics, workers []*worker, partitions int, wall time.Duration) *Stats {
	st := &Stats{
		Events:          rm.events.Value(),
		Ticks:           rm.ticks.Value(),
		Batches:         rm.batches.Value(),
		ReclaimedChunks: rm.reclaims.Value(),
		WallTime:        wall,
		Partitions:      partitions,
		PerType:         map[string]uint64{},
		Contexts:        map[string]ContextStats{},
	}
	var txnLat telemetry.HistogramSnapshot
	for _, w := range workers {
		wm := w.wm
		st.Txns += wm.txns.Value()
		st.OutputCount += wm.outputs.Value()
		st.Transitions += wm.transitions.Value()
		st.SuspendedSkips += wm.suspendedSkips.Value()
		st.InstanceExecs += wm.instanceExecs.Value()
		st.EventsFed += wm.eventsFed.Value()
		st.HistoryResets += wm.historyResets.Value()
		txnLat.Merge(wm.txnLatency.Snapshot())
		if e.cfg.CollectOutputs {
			st.Outputs = append(st.Outputs, w.collected...)
		}
	}
	schemas := e.m.Registry.Schemas()
	for idx := range rm.perType {
		if n := rm.perType[idx].Value(); n > 0 {
			st.PerType[schemas[idx].Name()] += n
		}
	}
	for i := range rm.ctx {
		cm := &rm.ctx[i]
		acts, susps := cm.activations.Value(), cm.suspensions.Value()
		if acts > 0 || susps > 0 {
			st.Contexts[e.m.Contexts[i].Name] = ContextStats{Activations: acts, Suspensions: susps}
		}
	}
	lat := rm.outputLatency.Snapshot()
	st.MaxLatency = time.Duration(lat.Max)
	st.MeanLatency = time.Duration(lat.Mean())
	st.P50Latency = time.Duration(lat.Quantile(0.5))
	st.P95Latency = time.Duration(lat.Quantile(0.95))
	st.P99Latency = time.Duration(lat.Quantile(0.99))
	st.TxnP50 = time.Duration(txnLat.Quantile(0.5))
	st.TxnP99 = time.Duration(txnLat.Quantile(0.99))
	st.TxnMax = time.Duration(txnLat.Max)
	if e.cfg.CollectOutputs {
		sort.SliceStable(st.Outputs, func(i, j int) bool {
			a, b := st.Outputs[i], st.Outputs[j]
			if a.Time.End != b.Time.End {
				return a.Time.End < b.Time.End
			}
			return a.String() < b.String()
		})
	}
	return st
}
