package runtime

import (
	"strings"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

// arenaTickSource is a deterministic arena-backed batch source over
// the traffic model: one congestion trigger tick, then one position
// report per segment per tick, every report a fresh vehicle (so each
// derives NewCar and Toll). Events are carved from a small-slab arena
// to force reclamation mid-run.
type arenaTickSource struct {
	arena *event.Arena
	pr    *event.Schema
	trig  *event.Schema
	segs  int
	ticks int
	i     int
}

func newArenaTickSource(t testing.TB, m *model.Model, segs, ticks int) *arenaTickSource {
	t.Helper()
	pr, ok1 := m.Registry.Lookup("PositionReport")
	trig, ok2 := m.Registry.Lookup("Trigger")
	if !ok1 || !ok2 {
		t.Fatal("traffic schemas missing")
	}
	return &arenaTickSource{
		arena: event.NewArena(64),
		pr:    pr, trig: trig,
		segs: segs, ticks: ticks,
	}
}

func (s *arenaTickSource) NextBatch(b *event.Batch) bool {
	b.Epoch = uint64(s.i)
	b.Events = b.Events[:0]
	if s.i > s.ticks {
		return false
	}
	t := event.Time(30 * (s.i + 1))
	for seg := 0; seg < s.segs; seg++ {
		if s.i == 0 {
			e := s.arena.Alloc(s.trig, event.Point(t), 2)
			e.Values[0] = event.Int64(int64(seg))
			e.Values[1] = event.Int64(1) // congestion on
			b.Events = append(b.Events, e)
			continue
		}
		e := s.arena.Alloc(s.pr, event.Point(t), 4)
		e.Values[0] = event.Int64(int64(s.i*100 + seg)) // fresh vid
		e.Values[1] = event.Int64(int64(seg))
		e.Values[2] = event.Int64(0)
		e.Values[3] = event.Int64(int64(t))
		b.Events = append(b.Events, e)
	}
	s.i++
	return s.i <= s.ticks
}

func (s *arenaTickSource) ReclaimBefore(t event.Time) int { return s.arena.ReclaimBefore(t) }

func ingestEngine(t testing.TB, workers int, disablePipeline bool, readAhead int) (*Engine, *model.Model) {
	t.Helper()
	eng, m := buildEngine(t, trafficSrc, ContextAware, false, workers)
	eng.cfg.DisablePipeline = disablePipeline
	eng.cfg.ReadAhead = readAhead
	return eng, m
}

// TestPipelinedIngestMatchesSync is the runtime-level differential:
// the pipelined batch path (decode goroutine, read-ahead ring, slab
// reclamation) must produce exactly the outputs of the synchronous
// per-event path. Run under -race this also exercises the ring
// hand-off and the watermark's cross-goroutine publication.
func TestPipelinedIngestMatchesSync(t *testing.T) {
	const segs, ticks = 4, 400

	sync, m1 := ingestEngine(t, 3, true, 0)
	stSync, err := sync.RunBatches(newArenaTickSource(t, m1, segs, ticks))
	if err != nil {
		t.Fatal(err)
	}
	piped, m2 := ingestEngine(t, 3, false, 2)
	stPiped, err := piped.RunBatches(newArenaTickSource(t, m2, segs, ticks))
	if err != nil {
		t.Fatal(err)
	}

	if stSync.Events != stPiped.Events || stSync.OutputCount != stPiped.OutputCount ||
		stSync.Transitions != stPiped.Transitions || stSync.Partitions != stPiped.Partitions {
		t.Fatalf("stats diverge:\nsync:  %+v\npiped: %+v", stSync, stPiped)
	}
	a, b := sortedRenderings(stSync), sortedRenderings(stPiped)
	if len(a) == 0 {
		t.Fatal("no outputs at all")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("outputs diverge between sync and pipelined ingest")
	}

	// The pipelined run must have recycled slabs behind the watermark
	// (400 ticks span 12 000 time units against a ~600-unit slack).
	if stPiped.Batches == 0 {
		t.Error("pipelined run reported no batches")
	}
	if stPiped.ReclaimedChunks == 0 {
		t.Error("watermark never reclaimed a slab")
	}
	if stSync.ReclaimedChunks != 0 {
		t.Error("sync path reclaimed slabs it should not touch")
	}
}

// splitTickSource violates the batch protocol: a tick's events are
// spread across two batches.
type splitTickSource struct {
	src  *arenaTickSource
	half []*event.Event
	i    int
}

func (s *splitTickSource) NextBatch(b *event.Batch) bool {
	s.i++
	if len(s.half) > 0 {
		b.Events = append(b.Events[:0], s.half...)
		s.half = nil
		return true
	}
	more := s.src.NextBatch(b)
	if s.i == 3 && len(b.Events) > 1 {
		mid := len(b.Events) / 2
		s.half = append(s.half, b.Events[mid:]...)
		b.Events = b.Events[:mid]
	}
	return more
}

func TestBatchSplitTickRejected(t *testing.T) {
	eng, m := ingestEngine(t, 2, false, 0)
	src := &splitTickSource{src: newArenaTickSource(t, m, 4, 20)}
	if _, err := eng.RunBatches(src); err == nil || !strings.Contains(err.Error(), "split tick") {
		t.Errorf("split tick accepted: %v", err)
	}
}

// backwardsSource yields a batch whose timestamps regress.
type backwardsSource struct {
	src *arenaTickSource
	i   int
}

func (s *backwardsSource) NextBatch(b *event.Batch) bool {
	s.i++
	more := s.src.NextBatch(b)
	if s.i == 4 {
		for _, e := range b.Events {
			e.Time = event.Point(1) // far in the past
		}
	}
	return more
}

func TestBatchOutOfOrderRejected(t *testing.T) {
	eng, m := ingestEngine(t, 2, false, 0)
	src := &backwardsSource{src: newArenaTickSource(t, m, 4, 20)}
	if _, err := eng.RunBatches(src); err == nil || !strings.Contains(err.Error(), "out-of-order") {
		t.Errorf("disorder accepted: %v", err)
	}
}

// TestRunRoutesBatchSources checks Engine.Run's protocol sniffing: a
// plain Source goes through the Batcher adapter, a BatchSource feeds
// the pipeline directly, and DisablePipeline falls back to the legacy
// loop — all with identical results.
func TestRunRoutesBatchSources(t *testing.T) {
	var want []string
	for i, mode := range []string{"sync", "batcher", "batch"} {
		eng, m := ingestEngine(t, 2, mode == "sync", 0)
		var (
			st  *Stats
			err error
		)
		if mode == "batch" {
			st, err = eng.Run(batchOnly{newArenaTickSource(t, m, 3, 60)})
		} else {
			st, err = eng.Run(event.PerEvent(newArenaTickSource(t, m, 3, 60)))
		}
		if err != nil {
			t.Fatal(err)
		}
		got := sortedRenderings(st)
		if len(got) == 0 {
			t.Fatalf("%s: no outputs", mode)
		}
		if i == 0 {
			want = got
			continue
		}
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Fatalf("%s outputs diverge from sync", mode)
		}
	}
}

// batchOnly satisfies Source only formally: Next panics, proving Run
// prefers the BatchSource protocol when a source offers both.
type batchOnly struct{ src *arenaTickSource }

func (b batchOnly) NextBatch(out *event.Batch) bool { return b.src.NextBatch(out) }
func (b batchOnly) Next() *event.Event              { panic("batch-capable source fed through the per-event path") }
