// Run health probes behind /healthz (DESIGN.md §3.7). Each Run
// registers three probes on Config.Health — replacing the previous
// run's, like registry metrics:
//
//   - engine:    the run is alive, completed cleanly, or failed (the
//     error becomes the probe detail).
//   - watermark: execution progress. Healthy while the furthest
//     completed tick keeps up with the routed tick or has advanced
//     since the previous probe; a backlog that stops moving between
//     two scrapes reports stalled.
//   - workers / shards: queued work is draining. Backlog is reported
//     as detail; undrained work after run completion fails the probe.
//
// Probes run on the scrape goroutine and read only atomics and
// channel/ring occupancy, so they are safe at any moment of the run
// and cost the hot path one atomic store per tick (the routed mark).
package runtime

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/caesar-cep/caesar/internal/telemetry"
)

// runHealth is the probe-visible state of one run. It exists even
// with no Config.Health (the stores are cheap and unconditional,
// keeping the dispatch paths branch-free).
type runHealth struct {
	// routed is the last tick handed to the execution units, written
	// by the dispatch/router goroutine. MinInt64 = nothing routed.
	routed atomic.Int64
	done   atomic.Bool
	// failMsg holds the run error's text once finished with one.
	failMsg atomic.Value // string
	// lastSeen remembers the completed mark of the previous watermark
	// probe call (scrape-side memory for stall detection).
	lastSeen atomic.Int64
}

// reset rearms a cached run's health state for its next execution.
// Only reached from clean-run reuse (a failed run drops the run
// cache), so failMsg is never populated here.
func (rh *runHealth) reset() {
	rh.routed.Store(math.MinInt64)
	rh.done.Store(false)
	rh.lastSeen.Store(math.MaxInt64)
}

// finish marks the run complete, recording the error if any.
func (rh *runHealth) finish(err error) {
	if rh == nil {
		return
	}
	if err != nil {
		rh.failMsg.Store(err.Error())
	}
	rh.done.Store(true)
}

// registerRunHealth builds a run's health state and registers its
// probes. unit names the execution-unit probe ("workers" or
// "shards"); completed reports the furthest fully executed tick
// (MinInt64 before any), backlog the queued-but-unexecuted work.
func registerRunHealth(h *telemetry.Health, unit string, completed, backlog func() int64) *runHealth {
	rh := &runHealth{}
	rh.routed.Store(math.MinInt64)
	// MaxInt64 = "no previous observation": the first probe is always
	// healthy, and the sentinel can never collide with a real
	// completed mark.
	rh.lastSeen.Store(math.MaxInt64)
	if h == nil {
		return rh
	}
	h.Set("engine", func() telemetry.ProbeResult {
		if msg, ok := rh.failMsg.Load().(string); ok {
			return telemetry.ProbeResult{OK: false, Detail: "failed: " + msg}
		}
		if rh.done.Load() {
			return telemetry.ProbeResult{OK: true, Detail: "completed"}
		}
		return telemetry.ProbeResult{OK: true, Detail: "running"}
	})
	h.Set("watermark", func() telemetry.ProbeResult {
		routed := rh.routed.Load()
		if routed == math.MinInt64 {
			return telemetry.ProbeResult{OK: true, Detail: "no input yet"}
		}
		c := completed()
		prev := rh.lastSeen.Swap(c)
		switch {
		case rh.done.Load() || c >= routed:
			return telemetry.ProbeResult{OK: true,
				Detail: fmt.Sprintf("completed tick %d of %d", c, routed)}
		case c > prev || prev == math.MaxInt64:
			return telemetry.ProbeResult{OK: true,
				Detail: fmt.Sprintf("advancing: completed tick %d of %d", c, routed)}
		default:
			return telemetry.ProbeResult{OK: false,
				Detail: fmt.Sprintf("stalled at tick %d, routed %d", c, routed)}
		}
	})
	h.Set(unit, func() telemetry.ProbeResult {
		n := backlog()
		if rh.done.Load() && n > 0 {
			return telemetry.ProbeResult{OK: false,
				Detail: fmt.Sprintf("undrained: %d queued after completion", n)}
		}
		return telemetry.ProbeResult{OK: true, Detail: fmt.Sprintf("backlog %d", n)}
	})
	return rh
}
