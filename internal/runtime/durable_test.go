package runtime

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/caesar-cep/caesar/internal/durability"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
)

// outputLog collects derived-event renderings in delivery order.
// Events handed to OnOutput are arena-backed and valid only inside the
// callback, so each is rendered immediately.
type outputLog struct {
	mu  sync.Mutex
	seq []string
}

func (l *outputLog) add(e *event.Event) {
	l.mu.Lock()
	l.seq = append(l.seq, e.String())
	l.mu.Unlock()
}

func (l *outputLog) lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.seq...)
}

func sameLines(a, b []string) bool {
	return strings.Join(a, "\n") == strings.Join(b, "\n")
}

// durableEngine builds an engine whose OnOutput delivery order is
// deterministic: a single worker on the legacy pipeline (shards=1),
// the ordered merge layer otherwise. dir == "" runs without
// durability.
func durableEngine(t testing.TB, shards int, dir string, every, walSync int) (*Engine, *model.Model, *outputLog) {
	t.Helper()
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	log := &outputLog{}
	cfg := Config{
		Plan:            p,
		PartitionBy:     []string{"seg"},
		Shards:          shards,
		DurableDir:      dir,
		CheckpointEvery: every,
		WALSync:         walSync,
		OnOutput:        log.add,
	}
	if shards == 1 {
		cfg.Workers = 1
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m, log
}

// TestCrashRecoveryDifferential is the headline durability proof: a
// run killed at a random tick boundary and then recovered (snapshot
// restore + WAL replay + live dedup over the re-fed stream) must
// derive byte-identical output to an uninterrupted run. Because the
// sink is non-transactional the guarantee is exactly-once state,
// at-least-once output: the crashed run's deliveries are a prefix of
// the reference sequence, the recovered run's a suffix, and together
// they cover it — the only permitted anomaly is re-delivery of the
// overlap between the last checkpoint and the crash.
func TestCrashRecoveryDifferential(t *testing.T) {
	const segs, ticks, every = 6, 90, 16
	// Tick timestamps run 30, 60, …, 30*(ticks+1); a checkpoint lands
	// every 16 dispatched ticks (t=480, 960, 1440, …). The fault fires
	// at the first tick boundary with ts >= crashAt, before that
	// tick's WAL append.
	cases := []struct {
		name    string
		crashAt int64
		replays bool // WAL tail non-empty at the crash point
	}{
		{"pure-wal", 180, true},         // before the first checkpoint: recovery is WAL-only
		{"post-checkpoint", 510, false}, // right after t=480's checkpoint: WAL tail empty
		{"mid-run", 1500, true},         // snapshot at 1440 plus a short WAL tail
		{"late", 2520, true},
	}
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ref, mRef, refLog := durableEngine(t, shards, "", every, 0)
			if _, err := ref.RunBatches(newArenaTickSource(t, mRef, segs, ticks)); err != nil {
				t.Fatal(err)
			}
			want := refLog.lines()
			if len(want) == 0 {
				t.Fatal("reference run derived nothing")
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					dir := t.TempDir()

					crash, m1, crashLog := durableEngine(t, shards, dir, every, 1)
					crash.cfg.testCrashTick = tc.crashAt
					if _, err := crash.RunBatches(newArenaTickSource(t, m1, segs, ticks)); !errors.Is(err, errSimulatedCrash) {
						t.Fatalf("crashed run returned %v, want the simulated crash", err)
					}
					r1 := crashLog.lines()

					rec, m2, recLog := durableEngine(t, shards, dir, every, 1)
					st, err := rec.RunBatches(newArenaTickSource(t, m2, segs, ticks))
					if err != nil {
						t.Fatal(err)
					}
					r2 := recLog.lines()

					nU, n1, n2 := len(want), len(r1), len(r2)
					if n1 > nU || !sameLines(r1, want[:n1]) {
						t.Errorf("crashed run's %d outputs are not a prefix of the reference's %d", n1, nU)
					}
					if n2 > nU || !sameLines(r2, want[nU-n2:]) {
						t.Errorf("recovered run's %d outputs are not a suffix of the reference's %d", n2, nU)
					}
					if n1+n2 < nU {
						t.Errorf("outputs lost across the crash: %d + %d < %d", n1, n2, nU)
					}
					if tc.replays && st.ReplayedTicks == 0 {
						t.Error("recovery replayed no WAL ticks")
					}
					if !tc.replays && st.ReplayedTicks != 0 {
						t.Errorf("recovery replayed %d ticks from a WAL the checkpoint truncated", st.ReplayedTicks)
					}
				})
			}
		})
	}
}

// TestDurableResumeAfterCleanFinish re-feeds a completed run's stream
// into a fresh engine over the same durable directory: the WAL tail
// past the last checkpoint replays (re-emitting only those outputs)
// and every live tick dedups against the recovery point, so the resume
// derives a strict suffix of the original output and nothing new.
func TestDurableResumeAfterCleanFinish(t *testing.T) {
	const segs, ticks, every = 4, 60, 16

	ref, mRef, refLog := durableEngine(t, 1, "", every, 0)
	if _, err := ref.RunBatches(newArenaTickSource(t, mRef, segs, ticks)); err != nil {
		t.Fatal(err)
	}
	want := refLog.lines()
	if len(want) == 0 {
		t.Fatal("reference run derived nothing")
	}

	dir := t.TempDir()
	first, m1, firstLog := durableEngine(t, 1, dir, every, 0)
	if _, err := first.RunBatches(newArenaTickSource(t, m1, segs, ticks)); err != nil {
		t.Fatal(err)
	}
	if got := firstLog.lines(); !sameLines(got, want) {
		t.Fatalf("durable run diverges from the WAL-less reference (%d vs %d outputs)", len(got), len(want))
	}

	second, m2, secondLog := durableEngine(t, 1, dir, every, 0)
	st, err := second.RunBatches(newArenaTickSource(t, m2, segs, ticks))
	if err != nil {
		t.Fatal(err)
	}
	r2 := secondLog.lines()
	if len(r2) >= len(want) {
		t.Errorf("resume re-derived %d of %d outputs: the checkpoint was not honored", len(r2), len(want))
	}
	if !sameLines(r2, want[len(want)-len(r2):]) {
		t.Errorf("resumed run's %d outputs are not a suffix of the reference's %d", len(r2), len(want))
	}
	if st.ReplayedTicks == 0 {
		t.Error("resume replayed no WAL ticks")
	}
}

// TestCorruptSnapshotFallbackRecovery: a corrupt newest snapshot must
// not poison recovery. LoadLatestSnapshot falls back to the older
// retained image, and because checkpoint() truncates the WAL only to
// the oldest retained snapshot's tick, the WAL still holds every tick
// after the fallback image — the resumed run replays through the gap
// and derives a clean suffix of the reference output.
func TestCorruptSnapshotFallbackRecovery(t *testing.T) {
	const segs, ticks, every = 4, 60, 16

	ref, mRef, refLog := durableEngine(t, 1, "", every, 0)
	if _, err := ref.RunBatches(newArenaTickSource(t, mRef, segs, ticks)); err != nil {
		t.Fatal(err)
	}
	want := refLog.lines()
	if len(want) == 0 {
		t.Fatal("reference run derived nothing")
	}

	dir := t.TempDir()
	first, m1, _ := durableEngine(t, 1, dir, every, 0)
	if _, err := first.RunBatches(newArenaTickSource(t, m1, segs, ticks)); err != nil {
		t.Fatal(err)
	}
	newestTick, ok := durability.LatestSnapshotTick(dir)
	if !ok {
		t.Fatal("durable run wrote no snapshot")
	}
	oldestTick, _ := durability.OldestSnapshotTick(dir)
	if oldestTick >= newestTick {
		t.Fatalf("want two retained snapshots, got oldest=%d newest=%d", oldestTick, newestTick)
	}
	newest := filepath.Join(dir, fmt.Sprintf("snap-%d.ckpt", int64(newestTick)))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	second, m2, secondLog := durableEngine(t, 1, dir, every, 0)
	st, err := second.RunBatches(newArenaTickSource(t, m2, segs, ticks))
	if err != nil {
		t.Fatal(err)
	}
	r2 := secondLog.lines()
	if len(r2) == 0 || len(r2) >= len(want) {
		t.Fatalf("resume re-derived %d of %d outputs", len(r2), len(want))
	}
	if !sameLines(r2, want[len(want)-len(r2):]) {
		t.Errorf("recovered run's %d outputs are not a suffix of the reference's %d", len(r2), len(want))
	}
	// Replay must have reached behind the corrupt image: tick
	// timestamps advance by 30, so the tail after the newest snapshot
	// holds (last-newest)/30 ticks, and a fallback to the older image
	// replays strictly more than that.
	tailAfterNewest := (30*int64(ticks+1) - int64(newestTick)) / 30
	if int64(st.ReplayedTicks) <= tailAfterNewest {
		t.Errorf("replayed %d ticks, want > %d: recovery did not fall back past the corrupt snapshot",
			st.ReplayedTicks, tailAfterNewest)
	}
}

// TestDurableConfigValidation: durability composes only with the
// pipelined ingest path and the shared-run kernel, and the same knobs
// stay inert with durability off.
func TestDurableConfigValidation(t *testing.T) {
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := plan.Build(m, plan.Options{PushDown: true, EagerFilters: true, LegacyKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := New(Config{Plan: p, Workers: 1, DurableDir: dir, DisablePipeline: true}); err == nil {
		t.Error("durability accepted with the pipeline disabled")
	}
	if _, err := New(Config{Plan: legacy, Workers: 1, DurableDir: dir}); err == nil {
		t.Error("durability accepted with the legacy kernel")
	}
	if _, err := New(Config{Plan: p, Workers: 1, DurableDir: dir, CheckpointEvery: -1}); err == nil {
		t.Error("negative checkpoint interval accepted")
	}
	if _, err := New(Config{Plan: legacy, Workers: 1}); err != nil {
		t.Errorf("legacy kernel without durability rejected: %v", err)
	}
	if _, err := New(Config{Plan: p, Workers: 1, DisablePipeline: true, CheckpointEvery: 8}); err != nil {
		t.Errorf("checkpoint interval without a durable dir rejected: %v", err)
	}
}

// BenchmarkSnapshotRoundTrip measures one full checkpoint image:
// serializing every live partition's state and restoring it in place,
// over the state a 200-tick traffic run leaves behind.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	const segs, ticks = 8, 200
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(Config{Plan: p, PartitionBy: []string{"seg"}, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.RunBatches(newArenaTickSource(b, m, segs, ticks)); err != nil {
		b.Fatal(err)
	}
	r := eng.legacyRun
	if r == nil {
		b.Fatal("clean run did not cache its scaffolding")
	}
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bytes = 0
		for _, pt := range r.dist.table {
			if pt.state == nil {
				continue
			}
			blob, err := savePartitionState(pt.state)
			if err != nil {
				b.Fatal(err)
			}
			bytes += int64(len(blob))
			if err := eng.loadPartitionState(pt.state, blob); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(bytes), "snap-bytes")
}

// BenchmarkRecoveryReplay measures end-to-end crash recovery with a
// checkpoint-free durable directory: every iteration boots a fresh
// engine over a WAL holding the whole 200-tick run, replays it, and
// dedups the re-fed live stream.
func BenchmarkRecoveryReplay(b *testing.B) {
	const segs, ticks = 8, 200
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	cfg := Config{Plan: p, PartitionBy: []string{"seg"}, Workers: 1,
		DurableDir: dir, CheckpointEvery: 1 << 30, WALSync: -1}
	seed, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seed.RunBatches(newArenaTickSource(b, m, segs, ticks)); err != nil {
		b.Fatal(err)
	}
	var replayed uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st, err := eng.RunBatches(newArenaTickSource(b, m, segs, ticks))
		if err != nil {
			b.Fatal(err)
		}
		if st.ReplayedTicks == 0 {
			b.Fatal("recovery replayed nothing")
		}
		replayed += st.Events
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(replayed)/s, "replayed-events/s")
	}
}
