package runtime

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
)

// --- spscRing unit tests -------------------------------------------

func TestSpscRingOrderAndBlocking(t *testing.T) {
	const n = 10000
	r := newSpscRing[int](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if !r.push(i) {
				t.Error("push reported closed ring")
				return
			}
		}
		r.close()
	}()
	for i := 0; i < n; i++ {
		v, ok := r.pop()
		if !ok {
			t.Fatalf("ring closed after %d of %d values", i, n)
		}
		if v != i {
			t.Fatalf("pop %d = %d, want %d (FIFO violated)", i, v, i)
		}
	}
	if _, ok := r.pop(); ok {
		t.Error("pop after close+drain returned a value")
	}
	wg.Wait()
	if p, c := r.stallNs(); p < 0 || c < 0 {
		t.Errorf("negative stall telemetry: %d/%d", p, c)
	}
}

func TestSpscRingTryOps(t *testing.T) {
	r := newSpscRing[int](2)
	if _, ok := r.tryPop(); ok {
		t.Error("tryPop on empty ring succeeded")
	}
	if !r.tryPush(1) || !r.tryPush(2) {
		t.Fatal("tryPush failed below capacity")
	}
	if r.tryPush(3) {
		t.Error("tryPush beyond capacity succeeded")
	}
	if got := r.occupancy(); got != 2 {
		t.Errorf("occupancy = %d, want 2", got)
	}
	if v, ok := r.tryPop(); !ok || v != 1 {
		t.Errorf("tryPop = %d,%v, want 1,true", v, ok)
	}
	if v, ok := r.tryPop(); !ok || v != 2 {
		t.Errorf("tryPop = %d,%v, want 2,true", v, ok)
	}
}

func TestSpscRingCloseUnblocksConsumer(t *testing.T) {
	r := newSpscRing[int](4)
	done := make(chan bool)
	go func() {
		_, ok := r.pop()
		done <- ok
	}()
	r.close()
	if ok := <-done; ok {
		t.Error("pop on closed empty ring returned a value")
	}
}

func TestSpscRingCapacityValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d accepted", bad)
				}
			}()
			newSpscRing[int](bad)
		}()
	}
}

// --- shard assignment properties -----------------------------------

// TestShardAssignmentStable is the satellite property test: the
// partition→shard assignment is a pure function of (key, shard
// count) — stable within and across runs for a fixed count — and the
// bitmask fast path is bit-identical to the modulo form.
func TestShardAssignmentStable(t *testing.T) {
	keys := make([]string, 0, 512)
	for x := 0; x < 8; x++ {
		for d := 0; d < 2; d++ {
			for s := 0; s < 32; s++ {
				keys = append(keys, fmt.Sprintf("%d|%d|%d|", x, d, s))
			}
		}
	}
	for n := 1; n <= 9; n++ {
		mask := powerOfTwoMask(n)
		if wantMask := n > 0 && n&(n-1) == 0; (mask != 0) != (wantMask && n > 1) && n != 1 {
			t.Errorf("powerOfTwoMask(%d) = %d", n, mask)
		}
		for _, key := range keys {
			h := fnv1a(key)
			if hb := fnv1aBytes([]byte(key)); hb != h {
				t.Fatalf("fnv1aBytes(%q) = %d, fnv1a = %d", key, hb, h)
			}
			got := pickIdx(h, n, mask)
			if want := h % uint32(n); got != want {
				t.Fatalf("pickIdx(%d, n=%d, mask=%d) = %d, want %d (bitmask diverges from modulo)",
					h, n, mask, got, want)
			}
			if again := pickIdx(fnv1a(key), n, mask); again != got {
				t.Fatalf("assignment of %q unstable: %d then %d", key, got, again)
			}
		}
	}
}

func shardEngine(t testing.TB, src string, shards int) (*Engine, *model.Model) {
	t.Helper()
	m, err := model.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Plan:           p,
		PartitionBy:    []string{"seg"},
		Shards:         shards,
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

// --- sharded differential -------------------------------------------

// TestShardedMatchesLegacy is the tentpole differential: for several
// shard counts, the sharded runtime must reproduce the legacy
// pipeline's outputs and statistics exactly. Run under -race this is
// also the stress test of the ring hand-off, the per-shard completed
// marks and the watermark publication.
func TestShardedMatchesLegacy(t *testing.T) {
	const segs, ticks = 8, 400

	ref, mRef := shardEngine(t, trafficSrc, 1)
	stRef, err := ref.RunBatches(newArenaTickSource(t, mRef, segs, ticks))
	if err != nil {
		t.Fatal(err)
	}
	want := sortedRenderings(stRef)
	if len(want) == 0 {
		t.Fatal("reference run derived nothing")
	}

	for _, shards := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng, m := shardEngine(t, trafficSrc, shards)
			st, err := eng.RunBatches(newArenaTickSource(t, m, segs, ticks))
			if err != nil {
				t.Fatal(err)
			}
			if got := sortedRenderings(st); strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("outputs diverge from shards=1 (%d vs %d events)", len(got), len(want))
			}
			if st.Events != stRef.Events || st.Ticks != stRef.Ticks || st.Txns != stRef.Txns ||
				st.OutputCount != stRef.OutputCount || st.Transitions != stRef.Transitions ||
				st.Partitions != stRef.Partitions {
				t.Errorf("stats diverge:\nsharded: %+v\nlegacy:  %+v", st, stRef)
			}
			// The sharded run reclaims arena slabs behind the same
			// watermark protocol (400 ticks span 12 000 time units
			// against a ~600-unit slack; shard completion is published
			// inline, so unlike the legacy pool this holds on one P).
			if st.ReclaimedChunks == 0 {
				t.Error("sharded watermark never reclaimed a slab")
			}
		})
	}
}

// TestShardedOrderedOutput checks the merge layer's contract: with
// OnOutput set, a sharded run delivers derived events from one
// goroutine in a deterministic order — non-decreasing derivation
// tick, ties broken by shard id — and repeating the run reproduces
// the sequence exactly.
func TestShardedOrderedOutput(t *testing.T) {
	const segs, ticks = 8, 200
	run := func() []string {
		eng, m := shardEngine(t, trafficSrc, 4)
		eng.cfg.CollectOutputs = false
		var seq []string
		var last event.Time
		eng.cfg.OnOutput = func(e *event.Event) {
			if e.End() < last {
				t.Errorf("merged output regressed: t=%d after t=%d", e.End(), last)
			}
			last = e.End()
			seq = append(seq, e.String())
		}
		if _, err := eng.RunBatches(newArenaTickSource(t, m, segs, ticks)); err != nil {
			t.Fatal(err)
		}
		return seq
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no outputs")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Error("merged output sequence is not reproducible across runs")
	}
}

// TestShardedOrderingErrors mirrors the legacy protocol tests on the
// sharded router: disorder and split ticks abort the run.
func TestShardedOrderingErrors(t *testing.T) {
	eng, m := shardEngine(t, trafficSrc, 2)
	if _, err := eng.RunBatches(&backwardsSource{src: newArenaTickSource(t, m, 4, 20)}); err == nil || !strings.Contains(err.Error(), "out-of-order") {
		t.Errorf("disorder accepted: %v", err)
	}
	eng, m = shardEngine(t, trafficSrc, 2)
	if _, err := eng.RunBatches(&splitTickSource{src: newArenaTickSource(t, m, 4, 20)}); err == nil || !strings.Contains(err.Error(), "split tick") {
		t.Errorf("split tick accepted: %v", err)
	}
}

func TestShardConfigValidation(t *testing.T) {
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Plan: p, Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(Config{Plan: p, Shards: 4, DisablePipeline: true}); err == nil {
		t.Error("sharded runtime accepted with the pipeline disabled")
	}
	// Explicit Workers without Shards resolves to the legacy pipeline.
	eng, err := New(Config{Plan: p, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.nShards != 1 {
		t.Errorf("Workers-only config resolved to %d shards, want 1", eng.nShards)
	}
	// Shards=0 with Workers unset scales to GOMAXPROCS.
	eng, err = New(Config{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	if eng.nShards < 1 {
		t.Errorf("default shard count = %d", eng.nShards)
	}
}
