package runtime

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// mergeHarness drives an outputMerger directly against fake shards,
// isolating the release rule from the rest of the sharded runtime.
type mergeHarness struct {
	shards []*engineShard
	m      *outputMerger

	mu  sync.Mutex
	out []*event.Event
}

func newMergeHarness(n int) *mergeHarness {
	h := &mergeHarness{}
	for i := 0; i < n; i++ {
		s := &engineShard{id: i, w: &worker{}}
		s.completed.Store(math.MinInt64)
		h.shards = append(h.shards, s)
	}
	h.m = newOutputMerger(h.shards, func(e *event.Event) {
		h.mu.Lock()
		h.out = append(h.out, e)
		h.mu.Unlock()
	})
	go h.m.loop()
	return h
}

// flush pushes one single-event run for tick ts from shard i, the way
// a shard goroutine does after executing a tick.
func (h *mergeHarness) flush(i int, ts event.Time, sp *telemetry.Span) {
	h.shards[i].w.mergeSink = []*event.Event{testEventAt(ts, i)}
	h.m.flushTick(h.shards[i], ts, sp)
}

func (h *mergeHarness) released() []*event.Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*event.Event(nil), h.out...)
}

// waitReleased polls until exactly want events have been released (or
// fails after a deadline); used after a state change that must
// unblock the merger.
func (h *mergeHarness) waitReleased(t *testing.T, want int) []*event.Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got := h.released(); len(got) >= want {
			if len(got) > want {
				t.Fatalf("released %d events, want %d", len(got), want)
			}
			return got
		}
		h.m.wake()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("merger released %d events, want %d", len(h.released()), want)
	return nil
}

// mergeMarkSchema types the merge harness's marker events; the single
// field doubles as the shard id so assertions can recover
// (tick, shard) from the released sequence.
var mergeMarkSchema = event.MustSchema("M", event.Field{Name: "shard", Kind: event.KindInt})

func testEventAt(ts event.Time, shard int) *event.Event {
	e, err := event.New(mergeMarkSchema, ts, event.Int64(int64(shard)))
	if err != nil {
		panic(err)
	}
	return e
}

// TestMergeReleaseRule pins the merge layer's core contract in
// isolation: a tick is held back until EVERY live shard has published
// completed ≥ tick, and release order is (tick, shard id).
func TestMergeReleaseRule(t *testing.T) {
	h := newMergeHarness(2)

	// Shard 0 races ahead: executes and flushes ticks 1 and 2.
	h.flush(0, 1, nil)
	h.flush(0, 2, nil)
	h.shards[0].completed.Store(2)
	h.m.wake()

	// Shard 1 has completed nothing, so nothing may be released —
	// even though shard 0's runs sit fully drained in the merger.
	time.Sleep(20 * time.Millisecond)
	if got := h.released(); len(got) != 0 {
		t.Fatalf("released %d events while min(completed) is MinInt64", len(got))
	}

	// Shard 1 completes tick 1: exactly tick 1 releases, shard 0's
	// run first, then shard 1's (tie broken by shard id).
	h.flush(1, 1, nil)
	h.shards[1].completed.Store(1)
	got := h.waitReleased(t, 2)
	for i, want := range []struct {
		ts    event.Time
		shard int64
	}{{1, 0}, {1, 1}} {
		if got[i].End() != want.ts || got[i].Values[0].Int != want.shard {
			t.Errorf("release %d = tick %d shard %d, want tick %d shard %d",
				i, got[i].End(), got[i].Values[0].Int, want.ts, want.shard)
		}
	}

	// Tick 2 is still held: shard 1 is alive at completed=1.
	time.Sleep(20 * time.Millisecond)
	if got := h.released(); len(got) != 2 {
		t.Fatalf("tick 2 released behind a lagging live shard (%d events out)", len(got))
	}

	// A shard that exits stops gating release: shard 1 goes done
	// without ever completing tick 2, and tick 2 drains.
	h.shards[1].done.Store(true)
	h.waitReleased(t, 3)
	h.shards[0].done.Store(true)
	h.m.wake()
	h.m.waitDone()

	if got := h.released(); got[2].End() != 2 || got[2].Values[0].Int != 0 {
		t.Errorf("final release = tick %d shard %d, want tick 2 shard 0",
			got[2].End(), got[2].Values[0].Int)
	}
}

// TestMergeStampsSpanAtRelease checks the observability contract of
// the merge stage: a sampled tick's span is finished by the merger at
// release time with StageMerge stamped (the ordered-release
// hold-back), and a tick that emitted nothing finishes its span
// immediately with the merge stage unobserved.
func TestMergeStampsSpanAtRelease(t *testing.T) {
	tr := telemetry.NewStageTracer(1, 8)
	h := newMergeHarness(1)

	// Empty tick: no output, span finishes without a merge stamp.
	sp := tr.Start(7, 0)
	sp.MarkAt(time.Now().UnixNano())
	h.shards[0].w.mergeSink = nil
	h.m.flushTick(h.shards[0], 7, sp)
	if n := tr.StageSnapshot(telemetry.StageMerge).Count; n != 0 {
		t.Fatalf("empty tick observed a merge stage (count %d)", n)
	}
	if got := tr.Timelines(); len(got) != 1 || got[0].Tick != 7 {
		t.Fatalf("empty tick's span not recorded: %+v", got)
	}

	// Emitting tick: the merge stamp lands when the merger releases.
	sp = tr.Start(8, 0)
	sp.MarkAt(time.Now().UnixNano())
	h.flush(0, 8, sp)
	h.shards[0].completed.Store(8)
	h.m.wake()
	h.waitReleased(t, 1)
	h.shards[0].done.Store(true)
	h.m.wake()
	h.m.waitDone()

	if n := tr.StageSnapshot(telemetry.StageMerge).Count; n != 1 {
		t.Fatalf("merge stage count = %d, want 1", n)
	}
	tls := tr.Timelines()
	last := tls[len(tls)-1]
	if last.Tick != 8 || last.Stamped&(1<<telemetry.StageMerge) == 0 {
		t.Errorf("released tick's timeline missing merge stage: %+v", last)
	}
}

// TestSpscRingStallAccounting pins the ring's stall telemetry: a
// producer parked on a full ring accrues prodStallNs, a consumer
// parked on an empty ring accrues consStallNs, and an uncontended
// hand-off accrues neither.
func TestSpscRingStallAccounting(t *testing.T) {
	const nap = 30 * time.Millisecond

	// Uncontended: no parking, no stall.
	r := newSpscRing[int](4)
	r.push(1)
	r.pop()
	if p, c := r.stallNs(); p != 0 || c != 0 {
		t.Errorf("uncontended ring accrued stall: producer %d, consumer %d", p, c)
	}

	// Producer stall: fill the ring, block a push, free a slot later.
	r = newSpscRing[int](2)
	r.push(1)
	r.push(2)
	done := make(chan struct{})
	go func() {
		r.push(3) // blocks: ring full
		close(done)
	}()
	time.Sleep(nap) // let the producer yield, then park
	r.pop()
	<-done
	if p, _ := r.stallNs(); p <= 0 {
		t.Errorf("parked producer accrued no stall (%dns)", p)
	}

	// Consumer stall: pop an empty ring, push later.
	r = newSpscRing[int](2)
	done = make(chan struct{})
	go func() {
		r.pop() // blocks: ring empty
		close(done)
	}()
	time.Sleep(nap)
	r.push(1)
	<-done
	if _, c := r.stallNs(); c <= 0 {
		t.Errorf("parked consumer accrued no stall (%dns)", c)
	}
}
