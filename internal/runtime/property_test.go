package runtime

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
)

// propertySrc uses only single-event patterns, so context-aware and
// context-independent semantics provably coincide on ANY stream (no
// match can span a context boundary).
const propertySrc = `
EVENT T(seg int, mode int)
EVENT P(v int, seg int, sec int)
EVENT RA(v int, seg int)
EVENT RB(v int, seg int)

CONTEXT idle DEFAULT
CONTEXT busy
CONTEXT alert

SWITCH CONTEXT busy
PATTERN T t
WHERE t.mode = 1
CONTEXT idle

SWITCH CONTEXT idle
PATTERN T t
WHERE t.mode = 0
CONTEXT busy

INITIATE CONTEXT alert
PATTERN T t
WHERE t.mode = 2
CONTEXT idle, busy

TERMINATE CONTEXT alert
PATTERN T t
WHERE t.mode = 3
CONTEXT alert

DERIVE RA(p.v, p.seg)
PATTERN P p
WHERE p.v > 10
CONTEXT busy

DERIVE RB(p.v, p.seg)
PATTERN P p
WHERE p.v > 5
CONTEXT alert
`

// randomControlStream interleaves random context transitions with
// random data events over several partitions.
func randomControlStream(t testing.TB, m *model.Model, rng *rand.Rand, n int) *event.SliceSource {
	sb := &streamBuilder{t: t, m: m}
	ts := event.Time(0)
	for i := 0; i < n; i++ {
		ts += event.Time(rng.Intn(3))
		seg := int64(rng.Intn(3))
		if rng.Intn(4) == 0 {
			sb.add("T", ts, seg, int64(rng.Intn(4)))
		} else {
			sb.add("P", ts, int64(rng.Intn(30)), seg, int64(ts))
		}
	}
	return sb.source()
}

// runProperty compiles a fresh model, derives the stream from seed,
// and runs it under the given strategy.
func runProperty(t testing.TB, seed int64, n int, mode Mode, sharing bool, workers int) *Stats {
	t.Helper()
	m, err := model.CompileSource(propertySrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := plan.Optimized()
	if mode == ContextIndependent {
		opts = plan.Baseline()
	}
	p, err := plan.Build(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Plan:           p,
		Mode:           mode,
		Sharing:        sharing,
		PartitionBy:    []string{"seg"},
		Workers:        workers,
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := randomControlStream(t, m, rand.New(rand.NewSource(seed)), n)
	st, err := eng.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func renderings(st *Stats) string {
	out := make([]string, 0, len(st.Outputs))
	for _, e := range st.Outputs {
		out = append(out, e.String())
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

// TestPropertyCAEqualsCI: on single-event-pattern workloads, the
// context-aware engine and the context-independent baseline derive
// exactly the same complex events for arbitrary streams.
func TestPropertyCAEqualsCI(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		ca := runProperty(t, seed, 120, ContextAware, false, 3)
		ci := runProperty(t, seed, 120, ContextIndependent, false, 3)
		if renderings(ca) != renderings(ci) {
			t.Fatalf("seed %d: CA and CI outputs differ\nCA: %s\nCI: %s",
				seed, renderings(ca), renderings(ci))
		}
		if ca.OutputCount > 0 && ci.InstanceExecs <= ca.InstanceExecs {
			t.Errorf("seed %d: CI did not work harder (%d vs %d)",
				seed, ci.InstanceExecs, ca.InstanceExecs)
		}
	}
}

// TestPropertyWorkerCountInvariance: the derived output multiset is
// independent of the worker pool size.
func TestPropertyWorkerCountInvariance(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		one := runProperty(t, seed, 150, ContextAware, false, 1)
		many := runProperty(t, seed, 150, ContextAware, false, 6)
		if renderings(one) != renderings(many) {
			t.Fatalf("seed %d: outputs differ across worker counts", seed)
		}
	}
}

// TestPropertySharingInvariance: with no duplicate queries in the
// model, sharing must not change outputs at all.
func TestPropertySharingInvariance(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		plain := runProperty(t, seed, 120, ContextAware, false, 2)
		shared := runProperty(t, seed, 120, ContextAware, true, 2)
		if renderings(plain) != renderings(shared) {
			t.Fatalf("seed %d: sharing changed outputs of a duplicate-free model", seed)
		}
	}
}

// TestPropertyDispatchOrderEquivalence: the distributor's batched,
// first-seen-order hand-off (replacing the seed's per-tick sorted-key
// dispatch) changes no outputs — grouped (shared) and ungrouped plan
// sets stay equivalent at every worker count, and results agree
// across worker counts even though per-worker arrival order differs.
func TestPropertyDispatchOrderEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		var base string
		for _, workers := range []int{1, 2, 5} {
			plain := runProperty(t, seed, 150, ContextAware, false, workers)
			shared := runProperty(t, seed, 150, ContextAware, true, workers)
			if renderings(plain) != renderings(shared) {
				t.Fatalf("seed %d workers %d: grouped and ungrouped outputs diverged",
					seed, workers)
			}
			if base == "" {
				base = renderings(plain)
			} else if renderings(plain) != base {
				t.Fatalf("seed %d: outputs changed at %d workers", seed, workers)
			}
		}
	}
}

// TestPropertyRerunDeterminism: running the same engine twice yields
// identical outputs (fresh partition state per run).
func TestPropertyRerunDeterminism(t *testing.T) {
	a := runProperty(t, 7, 200, ContextAware, false, 4)
	b := runProperty(t, 7, 200, ContextAware, false, 4)
	if renderings(a) != renderings(b) {
		t.Fatal("same seed, different outputs")
	}
}
