package runtime

import (
	"time"

	"github.com/caesar-cep/caesar/internal/algebra"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/metrics"
	"github.com/caesar-cep/caesar/internal/plan"
)

// worker owns a disjoint set of stream partitions and executes their
// transactions sequentially in timestamp order. All partition state —
// context vectors, operator state (context history), group structure —
// is confined to its goroutine; no locks are needed (§6.2's scheduler
// correctness reduces to per-partition FIFO).
type worker struct {
	eng *Engine
	id  int
	ch  chan txnMsg

	// Free lists feeding the distributor's batch buffers; buffers
	// cycle distributor → this worker → back here without garbage.
	freeEvs  bufStack[eventBuf]
	freeTxns bufStack[txnBuf]

	// wallNow caches one wall-clock reading per hand-off message for
	// the latency metric (see emit).
	wallNow int64

	// Counters, merged by the engine after the run. perType is dense,
	// indexed by Schema.Index — one array increment per output event
	// instead of a string-hash map probe.
	txns           uint64
	outputs        uint64
	transitions    uint64
	suspendedSkips uint64
	instanceExecs  uint64
	eventsFed      uint64
	historyResets  uint64
	perType        []uint64
	lat            metrics.LatencyTracker
	collected      []*event.Event
}

func newWorker(e *Engine, id int) *worker {
	return &worker{
		eng:     e,
		id:      id,
		ch:      make(chan txnMsg, 256),
		perType: make([]uint64, e.m.Registry.Len()),
	}
}

func (w *worker) getEventBuf() *eventBuf {
	if b := w.freeEvs.pop(); b != nil {
		return b
	}
	return &eventBuf{}
}

// putEventBuf recycles a consumed batch buffer. The stale event
// pointers are not cleared: they are overwritten on the buffer's next
// fill, the retention window is one recycle cycle, and clearing here
// would add a worker-side write pass over lines the distributor is
// about to write again (cache-coherence churn on the hot hand-off).
func (w *worker) putEventBuf(b *eventBuf) {
	b.evs = b.evs[:0]
	w.freeEvs.push(b)
}

func (w *worker) getTxnBuf() *txnBuf {
	if b := w.freeTxns.pop(); b != nil {
		return b
	}
	return &txnBuf{}
}

func (w *worker) putTxnBuf(b *txnBuf) {
	b.txns = b.txns[:0]
	w.freeTxns.push(b)
}

func (w *worker) loop() {
	for msg := range w.ch {
		w.wallNow = 0
		for i := range msg.buf.txns {
			txn := &msg.buf.txns[i]
			ps := txn.part.state
			if ps == nil {
				ps = w.newPartition(txn.part.key)
				txn.part.state = ps
			}
			w.txns++
			ps.exec(w, msg.ts, txn.buf.evs)
			w.putEventBuf(txn.buf)
		}
		w.putTxnBuf(msg.buf)
	}
}

// partitionState is the per-partition slice of the storage layer
// (Fig. 8): the context windows (bit vector per group), the query
// plan instances holding context history, and scratch buffers.
type partitionState struct {
	key    string
	groups []*execGroup
}

// execGroup is one context-vector scope instantiated for a
// partition.
type execGroup struct {
	vec      *algebra.Vector
	insts    []*instanceState
	transBuf []algebra.Transition
	derived  []*event.Event
	poolBuf  []*event.Event
}

type instanceState struct {
	inst      *plan.Instance
	countOut  bool
	wasActive bool
}

func (w *worker) newPartition(key string) *partitionState {
	ps := &partitionState{key: key}
	defIdx := w.eng.m.Default.Index
	for _, gs := range w.eng.groups {
		vec := algebra.NewVector(defIdx)
		g := &execGroup{vec: vec}
		for _, u := range gs.units {
			var in *plan.Instance
			var err error
			if u.fused != nil {
				in, err = u.qp.NewFusedInstance(vec, u.mask, u.fused)
			} else {
				in, err = u.qp.NewInstance(vec, u.mask)
			}
			if err != nil {
				// Instantiation is validated at plan build time; a
				// failure here is a programming error.
				panic(err)
			}
			g.insts = append(g.insts, &instanceState{
				inst:      in,
				countOut:  u.countOut,
				wasActive: in.Active(),
			})
		}
		ps.groups = append(ps.groups, g)
	}
	return ps
}

// exec runs one stream transaction: route the batch through every
// group, chain derived events to downstream instances within the
// transaction, apply transitions at the end, and discard context
// history of plans whose windows closed.
func (ps *partitionState) exec(w *worker, now event.Time, batch []*event.Event) {
	for _, g := range ps.groups {
		g.exec(w, now, batch)
	}
}

func (g *execGroup) exec(w *worker, now event.Time, batch []*event.Event) {
	pool := batch
	pooled := false
	trans := g.transBuf[:0]
	for _, is := range g.insts {
		// The context-aware stream router: suspended plans receive no
		// input at all (§6.2). The check is one bit-mask test.
		if !is.inst.Active() {
			w.suspendedSkips++
			continue
		}
		w.instanceExecs++
		w.eventsFed += uint64(len(pool))
		derived := g.derived[:0]
		derived, trans = is.inst.Exec(now, pool, derived, trans)
		g.derived = derived[:0]
		if len(derived) == 0 {
			continue
		}
		// Derived events join the transaction's event pool so that
		// downstream plans of the combined query plan consume them
		// within the same transaction (§4.2 phase 2). The pool grows
		// in the group's reusable scratch, not a fresh slice.
		if !pooled {
			pool = append(append(g.poolBuf[:0], batch...), derived...)
			pooled = true
		} else {
			pool = append(pool, derived...)
		}
		if is.countOut {
			w.emit(derived)
		}
	}
	if len(trans) > 0 {
		defIdx := w.eng.m.Default.Index
		for _, tr := range trans {
			g.vec.Apply(tr, defIdx)
			w.transitions++
		}
		// Garbage collection of context history (§6.2): a plan whose
		// window set just closed discards its partial matches.
		for _, is := range g.insts {
			active := is.inst.Active()
			if is.wasActive && !active {
				is.inst.Reset()
				w.historyResets++
			}
			is.wasActive = active
		}
	}
	if pooled {
		g.poolBuf = pool[:0]
	}
	g.transBuf = trans[:0]
}

func (w *worker) emit(events []*event.Event) {
	// With pacing off the latency metric measures CPU backlog, so one
	// wall-clock reading per hand-off message is precise enough and
	// saves a syscall per derivation batch; paced real-time replays
	// take a fresh reading every time.
	wall := w.wallNow
	if wall == 0 || w.eng.cfg.Pacing > 0 {
		wall = time.Now().UnixNano()
		w.wallNow = wall
	}
	for _, e := range events {
		w.outputs++
		if idx := e.Schema.Index(); idx < len(w.perType) {
			w.perType[idx]++
		}
		if e.Arrival > 0 {
			w.lat.Observe(time.Duration(wall - e.Arrival))
		}
		if w.eng.cfg.CollectOutputs {
			w.collected = append(w.collected, e)
		}
		if w.eng.cfg.OnOutput != nil {
			w.eng.cfg.OnOutput(e)
		}
	}
}
