package runtime

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/caesar-cep/caesar/internal/algebra"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// worker owns a disjoint set of stream partitions and executes their
// transactions sequentially in timestamp order. All partition state —
// context vectors, operator state (context history), group structure —
// is confined to its goroutine; no locks are needed (§6.2's scheduler
// correctness reduces to per-partition FIFO).
type worker struct {
	eng *Engine
	id  int
	ch  chan txnMsg

	// Free lists feeding the distributor's batch buffers; buffers
	// cycle distributor → this worker → back here without garbage.
	freeEvs  bufStack[eventBuf]
	freeTxns bufStack[txnBuf]

	// wallNow caches one wall-clock reading per hand-off message for
	// the latency metric (see emit).
	wallNow int64

	// rm is the run's metric set; wm the worker's own slice of it
	// (single-writer, see runMetrics). timed enables per-transaction
	// wall timing — on only when a registry or tracer is attached, so
	// the plain path performs no extra clock reads.
	rm    *runMetrics
	wm    *workerMetrics
	timed bool
	// execsInTxn counts plan executions within the current
	// transaction for the tracer's slow-transaction log line.
	execsInTxn int

	// completed publishes the timestamp of the last fully processed
	// transaction message; the ingest watermark (ingest.go) reads it
	// to bound slab reclamation. MinInt64 = nothing completed yet.
	completed atomic.Int64
	// sentTS is the timestamp last dispatched to this worker. It is
	// owned by the dispatch goroutine (written in dispatch, read in
	// publishWatermark); the worker never touches it.
	sentTS int64

	// shard is set when this worker is the execution half of an
	// engine shard (DESIGN.md §3.6); ch is nil then and transactions
	// arrive inline via engineShard.execTick.
	shard *engineShard
	// merged redirects emit's OnOutput delivery into mergeSink, the
	// per-tick run the shard flushes to the ordered merge layer.
	merged    bool
	mergeSink []*event.Event

	// alloc hands out derived-event records to this worker's plan
	// instances (DESIGN.md §3.8). It is the slab arena below unless
	// Config.DisableDerivedArena routes construction to the GC heap.
	alloc event.Allocator
	// arena is the worker-owned derived-event arena (nil when
	// disabled). Derived events are only ever referenced by this
	// worker's own partitions (chained pools, pattern state) and by
	// the output path, so reclamation is worker-local: slabs recycle
	// once the worker's completed mark minus slack passes them — and,
	// in shard mode with an output merger, once the merger has
	// released their tick (see engineShard.loop).
	arena *event.Arena
	// slack is the derived-event retention horizon in application
	// time: pattern state of downstream queries may reference a
	// chained derived event up to 2·maxHorizon back from a completed
	// transaction, exactly like ingest slabs (Engine.reclaimSlack).
	slack int64

	collected []*event.Event
}

func newWorker(e *Engine, id int, rm *runMetrics) *worker {
	w := &worker{
		eng:    e,
		id:     id,
		ch:     make(chan txnMsg, 256),
		rm:     rm,
		wm:     rm.workers[id],
		timed:  rm.detail,
		sentTS: math.MinInt64,
	}
	w.initAlloc(e)
	w.completed.Store(math.MinInt64)
	return w
}

// newShardWorker builds a worker without a hand-off channel: the
// owning engineShard drives it inline from its own goroutine.
func newShardWorker(e *Engine, id int, rm *runMetrics) *worker {
	w := &worker{
		eng:    e,
		id:     id,
		rm:     rm,
		wm:     rm.workers[id],
		timed:  rm.detail,
		sentTS: math.MinInt64,
	}
	w.initAlloc(e)
	return w
}

// initAlloc wires the worker's derived-event allocator: the slab
// arena by default, the GC heap under Config.DisableDerivedArena.
func (w *worker) initAlloc(e *Engine) {
	w.slack = e.reclaimSlack()
	if e.cfg.DisableDerivedArena {
		w.alloc = event.HeapAlloc{}
		return
	}
	w.arena = event.NewArena(e.cfg.DerivedChunkEvents)
	w.alloc = w.arena
}

// reclaimDerived recycles derived-event slabs entirely below bound
// and refreshes the worker's arena gauges (single-writer atomics, so
// a live scrape never races the arena's plain counters).
func (w *worker) reclaimDerived(bound int64) {
	if w.arena == nil {
		return
	}
	if freed := w.arena.ReclaimBefore(event.Time(bound)); freed > 0 {
		w.wm.derivedReclaimed.Add(uint64(freed))
	}
	w.wm.derivedChunks.Set(int64(w.arena.Chunks()))
	w.wm.derivedLive.Set(int64(w.arena.LiveChunks()))
}

// resetForRun rewinds the worker's per-run state so a cached engine
// run can reuse it: progress marks, collected outputs, and the
// derived arena (nothing references the previous run's slabs once
// partition state has been reset alongside).
func (w *worker) resetForRun() {
	w.wallNow = 0
	w.sentTS = math.MinInt64
	w.completed.Store(math.MinInt64)
	for i := range w.collected {
		w.collected[i] = nil
	}
	w.collected = w.collected[:0]
	w.mergeSink = w.mergeSink[:0]
	if w.arena != nil {
		w.arena.Reset()
	}
}

// queueDepth is the worker's backlog for the live queue-depth gauge:
// queued transaction messages on the legacy pool, ring occupancy in
// shard mode.
func (w *worker) queueDepth() int64 {
	if w.ch != nil {
		return int64(len(w.ch))
	}
	if w.shard != nil {
		return w.shard.in.occupancy()
	}
	return 0
}

func (w *worker) getEventBuf() *eventBuf {
	if b := w.freeEvs.pop(); b != nil {
		return b
	}
	return &eventBuf{}
}

// putEventBuf recycles a consumed batch buffer. The stale event
// pointers are not cleared: they are overwritten on the buffer's next
// fill, the retention window is one recycle cycle, and clearing here
// would add a worker-side write pass over lines the distributor is
// about to write again (cache-coherence churn on the hot hand-off).
func (w *worker) putEventBuf(b *eventBuf) {
	b.evs = b.evs[:0]
	w.freeEvs.push(b)
}

func (w *worker) getTxnBuf() *txnBuf {
	if b := w.freeTxns.pop(); b != nil {
		return b
	}
	return &txnBuf{}
}

func (w *worker) putTxnBuf(b *txnBuf) {
	b.txns = b.txns[:0]
	w.freeTxns.push(b)
}

func (w *worker) loop() {
	for msg := range w.ch {
		if msg.buf == nil {
			// Shutdown sentinel (run.shutdown): the channel stays open
			// so a cached run can reuse it.
			return
		}
		w.wallNow = 0
		sp := msg.span
		var outBase uint64
		if sp != nil {
			// Ring wait runs from the dispatcher's hand-off mark to
			// here: channel queue time behind earlier ticks included.
			sp.StampSince(telemetry.StageRingWait, time.Now().UnixNano())
			outBase = w.wm.outputs.Value()
		}
		nEvs := 0
		for i := range msg.buf.txns {
			txn := &msg.buf.txns[i]
			ps := txn.part.state
			if ps == nil {
				ps = w.newPartition(txn.part.key)
				txn.part.state = ps
			}
			w.wm.txns.Inc()
			nEvs += len(txn.buf.evs)
			if w.timed {
				w.execsInTxn = 0
				start := time.Now()
				ps.exec(w, msg.ts, txn.buf.evs)
				d := time.Since(start)
				w.wm.txnLatency.ObserveDuration(d)
				w.rm.tracer.Record(d, txn.part.key, int64(msg.ts), w.execsInTxn, len(txn.buf.evs), sp)
			} else {
				ps.exec(w, msg.ts, txn.buf.evs)
			}
			w.putEventBuf(txn.buf)
		}
		if sp != nil {
			sp.SetCounts(len(msg.buf.txns), nEvs)
			sp.StampSince(telemetry.StageExec, time.Now().UnixNano())
			// outputs is single-writer (this goroutine), so the delta
			// is exactly this tick's emissions on this worker.
			sp.SetEmitted(int(w.wm.outputs.Value() - outBase))
			sp.Finish()
		}
		w.putTxnBuf(msg.buf)
		w.completed.Store(int64(msg.ts))
		// Derived events below completed-slack are unreferenced: this
		// worker's own partitions are the only holders (partition →
		// worker assignment is fixed), and their pattern state reaches
		// at most 2·maxHorizon back (the slack term).
		w.reclaimDerived(int64(msg.ts) - w.slack)
	}
}

// partitionState is the per-partition slice of the storage layer
// (Fig. 8): the context windows (bit vector per group), the query
// plan instances holding context history, and scratch buffers.
type partitionState struct {
	key    string
	groups []*execGroup
}

// execGroup is one context-vector scope instantiated for a
// partition.
type execGroup struct {
	vec      *algebra.Vector
	insts    []*instanceState
	transBuf []algebra.Transition
	derived  []*event.Event
	poolBuf  []*event.Event
	// openedAt[c] is the application time context c's window opened
	// (-1 while closed); feeds the per-context lifetime histogram.
	openedAt []event.Time
}

type instanceState struct {
	inst      *plan.Instance
	countOut  bool
	wasActive bool

	// qmIdx addresses the unit's queryMetrics; the delta fields carry
	// the last pattern-operator readings so detail mode can publish
	// per-operator increments without double counting.
	qmIdx      int
	lastStats  algebra.PatternStats
	lastFoot   algebra.Footprint
	lastChunks int
}

func (w *worker) newPartition(key string) *partitionState {
	ps := &partitionState{key: key}
	defIdx := w.eng.m.Default.Index
	for _, gs := range w.eng.groups {
		vec := algebra.NewVector(defIdx)
		g := &execGroup{vec: vec, openedAt: make([]event.Time, len(w.eng.m.Contexts))}
		for i := range g.openedAt {
			g.openedAt[i] = -1
		}
		for _, u := range gs.units {
			var in *plan.Instance
			var err error
			if u.fused != nil {
				in, err = u.qp.NewFusedInstance(vec, u.mask, u.fused)
			} else {
				in, err = u.qp.NewInstance(vec, u.mask)
			}
			if err != nil {
				// Instantiation is validated at plan build time; a
				// failure here is a programming error.
				panic(err)
			}
			g.insts = append(g.insts, &instanceState{
				inst:      in,
				countOut:  u.countOut,
				wasActive: in.Active(),
				qmIdx:     u.qmIdx,
			})
		}
		ps.groups = append(ps.groups, g)
	}
	return ps
}

// reset restores the partition to its pre-run state so a cached
// engine run starts identically to a fresh one: context vectors back
// to the default window, operator state discarded (the same discard
// the context-history GC performs mid-run), activity flags and metric
// baselines recomputed. The retained structure — vectors, instances,
// scratch capacity — is what run reuse amortizes.
func (ps *partitionState) reset(e *Engine) {
	defIdx := e.m.Default.Index
	for _, g := range ps.groups {
		g.vec.Reset(defIdx)
		for i := range g.openedAt {
			g.openedAt[i] = -1
		}
		g.transBuf = g.transBuf[:0]
		g.derived = g.derived[:0]
		g.poolBuf = g.poolBuf[:0]
		for _, is := range g.insts {
			is.inst.Reset()
			is.wasActive = is.inst.Active()
			// Pattern counters are cumulative across Reset; refreshing
			// the baselines keeps detail-mode delta publishing exact
			// while the reset gauges restart from zero.
			is.lastStats = is.inst.PatternStats()
			is.lastFoot = is.inst.Footprint()
			is.lastChunks = is.inst.ArenaChunks()
		}
	}
}

// exec runs one stream transaction: route the batch through every
// group, chain derived events to downstream instances within the
// transaction, apply transitions at the end, and discard context
// history of plans whose windows closed.
func (ps *partitionState) exec(w *worker, now event.Time, batch []*event.Event) {
	for _, g := range ps.groups {
		g.exec(w, now, batch)
	}
}

func (g *execGroup) exec(w *worker, now event.Time, batch []*event.Event) {
	pool := batch
	pooled := false
	trans := g.transBuf[:0]
	for _, is := range g.insts {
		// The context-aware stream router: suspended plans receive no
		// input at all (§6.2). The check is one bit-mask test.
		if !is.inst.Active() {
			w.wm.suspendedSkips.Inc()
			continue
		}
		w.wm.instanceExecs.Inc()
		w.execsInTxn++
		w.wm.eventsFed.Add(uint64(len(pool)))
		derived := g.derived[:0]
		derived, trans = is.inst.Exec(now, pool, w.alloc, derived, trans)
		g.derived = derived[:0]
		if w.rm.detail {
			is.publishDetail(w.rm)
		}
		if len(derived) == 0 {
			continue
		}
		// Derived events join the transaction's event pool so that
		// downstream plans of the combined query plan consume them
		// within the same transaction (§4.2 phase 2). The pool grows
		// in the group's reusable scratch, not a fresh slice.
		if !pooled {
			pool = append(append(g.poolBuf[:0], batch...), derived...)
			pooled = true
		} else {
			pool = append(pool, derived...)
		}
		if is.countOut {
			w.emit(derived)
		}
	}
	if len(trans) > 0 {
		defIdx := w.eng.m.Default.Index
		for _, tr := range trans {
			was := g.vec.Has(tr.Context)
			g.vec.Apply(tr, defIdx)
			w.wm.transitions.Inc()
			// The router's per-context view: count only transitions
			// that actually flipped the window bit (re-initiations
			// and terminations of closed windows are no-ops, §3.3).
			if active := g.vec.Has(tr.Context); active != was {
				cm := &w.rm.ctx[tr.Context]
				if active {
					cm.activations.Inc()
					g.openedAt[tr.Context] = tr.At
				} else {
					cm.suspensions.Inc()
					if at := g.openedAt[tr.Context]; at >= 0 {
						cm.lifetime.Observe(int64(tr.At - at))
						g.openedAt[tr.Context] = -1
					}
				}
			}
		}
		// Garbage collection of context history (§6.2): a plan whose
		// window set just closed discards its partial matches.
		for _, is := range g.insts {
			active := is.inst.Active()
			if is.wasActive && !active {
				is.inst.Reset()
				w.wm.historyResets.Inc()
				if w.rm.detail {
					is.publishFootprint(w.rm)
				}
			}
			is.wasActive = active
		}
	}
	if pooled {
		g.poolBuf = pool[:0]
	}
	g.transBuf = trans[:0]
}

// publishDetail pushes the instance's pattern-operator deltas into
// the run's per-query metrics. Detail mode only (a registry or
// tracer is attached); the increments are allocation-free atomics.
func (is *instanceState) publishDetail(rm *runMetrics) {
	qm := &rm.query[is.qmIdx]
	qm.execs.Inc()
	st := is.inst.PatternStats()
	qm.matches.Add(st.MatchesEmitted - is.lastStats.MatchesEmitted)
	qm.filteredOut.Add(st.FilteredOut - is.lastStats.FilteredOut)
	qm.negated.Add(st.MatchesNegated - is.lastStats.MatchesNegated)
	is.lastStats = st
	is.publishFootprint(rm)
}

// publishFootprint refreshes the retained-state gauges and the arena
// slab counter; called after Exec and again after a history reset
// (the reset empties the operator without an Exec).
func (is *instanceState) publishFootprint(rm *runMetrics) {
	qm := &rm.query[is.qmIdx]
	f := is.inst.Footprint()
	qm.partials.Add(int64(f.Partials - is.lastFoot.Partials))
	qm.negBuffered.Add(int64(f.NegBuffered - is.lastFoot.NegBuffered))
	qm.pending.Add(int64(f.Pending - is.lastFoot.Pending))
	qm.runNodes.Add(int64(f.RunNodes - is.lastFoot.RunNodes))
	qm.predEntries.Add(int64(f.PredEntries - is.lastFoot.PredEntries))
	is.lastFoot = f
	ch := is.inst.ArenaChunks()
	qm.arenaChunks.Add(uint64(ch - is.lastChunks))
	is.lastChunks = ch
}

func (w *worker) emit(events []*event.Event) {
	// With pacing off the latency metric measures CPU backlog, so one
	// wall-clock reading per hand-off message is precise enough and
	// saves a syscall per derivation batch; paced real-time replays
	// take a fresh reading every time.
	wall := w.wallNow
	if wall == 0 || w.eng.cfg.Pacing > 0 {
		wall = time.Now().UnixNano()
		w.wallNow = wall
	}
	for _, e := range events {
		w.wm.outputs.Inc()
		if idx := e.Schema.Index(); idx < len(w.rm.perType) {
			w.rm.perType[idx].Inc()
		}
		if e.Arrival > 0 {
			w.rm.outputLatency.Observe(wall - e.Arrival)
		}
		if w.eng.cfg.CollectOutputs {
			c := e
			if w.arena != nil {
				// Stats.Outputs outlives the run; arena records do not
				// (slabs recycle on watermark and on the next Run), so
				// collected events are cloned to the heap here.
				c = event.Clone(e)
			}
			w.collected = append(w.collected, c)
		}
		if w.merged {
			w.mergeSink = append(w.mergeSink, e)
		} else if w.eng.cfg.OnOutput != nil {
			w.eng.cfg.OnOutput(e)
		}
	}
}
