package runtime

import (
	"time"

	"github.com/caesar-cep/caesar/internal/algebra"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/metrics"
	"github.com/caesar-cep/caesar/internal/plan"
)

// worker owns a disjoint set of stream partitions and executes their
// transactions sequentially in timestamp order. All partition state —
// context vectors, operator state (context history), group structure —
// is confined to its goroutine; no locks are needed (§6.2's scheduler
// correctness reduces to per-partition FIFO).
type worker struct {
	eng   *Engine
	ch    chan txnMsg
	parts map[string]*partitionState

	// Counters, merged by the engine after the run.
	txns           uint64
	outputs        uint64
	transitions    uint64
	suspendedSkips uint64
	instanceExecs  uint64
	eventsFed      uint64
	historyResets  uint64
	perType        map[string]uint64
	lat            metrics.LatencyTracker
	collected      []*event.Event
}

func newWorker(e *Engine) *worker {
	return &worker{
		eng:     e,
		ch:      make(chan txnMsg, 256),
		parts:   map[string]*partitionState{},
		perType: map[string]uint64{},
	}
}

func (w *worker) loop() {
	for msg := range w.ch {
		ps := w.parts[msg.key]
		if ps == nil {
			ps = w.newPartition(msg.key)
			w.parts[msg.key] = ps
		}
		w.txns++
		ps.exec(w, msg.ts, msg.batch)
	}
}

// partitionState is the per-partition slice of the storage layer
// (Fig. 8): the context windows (bit vector per group), the query
// plan instances holding context history, and scratch buffers.
type partitionState struct {
	key    string
	groups []*execGroup
}

// execGroup is one context-vector scope instantiated for a
// partition.
type execGroup struct {
	vec      *algebra.Vector
	insts    []*instanceState
	transBuf []algebra.Transition
	derived  []*event.Event
}

type instanceState struct {
	inst      *plan.Instance
	countOut  bool
	wasActive bool
}

func (w *worker) newPartition(key string) *partitionState {
	ps := &partitionState{key: key}
	defIdx := w.eng.m.Default.Index
	for _, gs := range w.eng.groups {
		vec := algebra.NewVector(defIdx)
		g := &execGroup{vec: vec}
		for _, u := range gs.units {
			var in *plan.Instance
			var err error
			if u.fused != nil {
				in, err = u.qp.NewFusedInstance(vec, u.mask, u.fused)
			} else {
				in, err = u.qp.NewInstance(vec, u.mask)
			}
			if err != nil {
				// Instantiation is validated at plan build time; a
				// failure here is a programming error.
				panic(err)
			}
			g.insts = append(g.insts, &instanceState{
				inst:      in,
				countOut:  u.countOut,
				wasActive: in.Active(),
			})
		}
		ps.groups = append(ps.groups, g)
	}
	return ps
}

// exec runs one stream transaction: route the batch through every
// group, chain derived events to downstream instances within the
// transaction, apply transitions at the end, and discard context
// history of plans whose windows closed.
func (ps *partitionState) exec(w *worker, now event.Time, batch []*event.Event) {
	for _, g := range ps.groups {
		g.exec(w, now, batch)
	}
}

func (g *execGroup) exec(w *worker, now event.Time, batch []*event.Event) {
	pool := batch
	pooled := false
	trans := g.transBuf[:0]
	for _, is := range g.insts {
		// The context-aware stream router: suspended plans receive no
		// input at all (§6.2). The check is one bit-mask test.
		if !is.inst.Active() {
			w.suspendedSkips++
			continue
		}
		w.instanceExecs++
		w.eventsFed += uint64(len(pool))
		derived := g.derived[:0]
		derived, trans = is.inst.Exec(now, pool, derived, trans)
		g.derived = derived[:0]
		if len(derived) == 0 {
			continue
		}
		// Derived events join the transaction's event pool so that
		// downstream plans of the combined query plan consume them
		// within the same transaction (§4.2 phase 2).
		if !pooled {
			pool = append(append(make([]*event.Event, 0, len(batch)+len(derived)), batch...), derived...)
			pooled = true
		} else {
			pool = append(pool, derived...)
		}
		if is.countOut {
			w.emit(derived)
		}
	}
	if len(trans) > 0 {
		defIdx := w.eng.m.Default.Index
		for _, tr := range trans {
			g.vec.Apply(tr, defIdx)
			w.transitions++
		}
		// Garbage collection of context history (§6.2): a plan whose
		// window set just closed discards its partial matches.
		for _, is := range g.insts {
			active := is.inst.Active()
			if is.wasActive && !active {
				is.inst.Reset()
				w.historyResets++
			}
			is.wasActive = active
		}
	}
	g.transBuf = trans[:0]
}

func (w *worker) emit(events []*event.Event) {
	wall := time.Now().UnixNano()
	for _, e := range events {
		w.outputs++
		w.perType[e.TypeName()]++
		if e.Arrival > 0 {
			w.lat.Observe(time.Duration(wall - e.Arrival))
		}
		if w.eng.cfg.CollectOutputs {
			w.collected = append(w.collected, e)
		}
		if w.eng.cfg.OnOutput != nil {
			w.eng.cfg.OnOutput(e)
		}
	}
}
