package runtime

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// metricValue extracts the value of the exposition line whose
// name{labels} part equals series.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, ln := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(ln, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, body)
	return 0
}

// TestTelemetryMatchesStats is the acceptance check of the telemetry
// layer: a /metrics scrape after a run must report exactly the
// numbers Stats reports, because both views read the same atomic
// metric objects.
func TestTelemetryMatchesStats(t *testing.T) {
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	var traceLog strings.Builder
	tracer := telemetry.NewTracer(time.Hour, &traceLog)
	eng, err := New(Config{
		Plan:        p,
		PartitionBy: []string{"seg"},
		Workers:     2,
		Telemetry:   reg,
		Tracer:      tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(trafficStream(t, m))
	if err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	if got := metricValue(t, body, "caesar_events_total"); got != float64(st.Events) {
		t.Errorf("events: scrape %v, stats %d", got, st.Events)
	}
	if got := metricValue(t, body, "caesar_ticks_total"); got != float64(st.Ticks) {
		t.Errorf("ticks: scrape %v, stats %d", got, st.Ticks)
	}
	if got := metricValue(t, body, "caesar_partitions"); got != float64(st.Partitions) {
		t.Errorf("partitions: scrape %v, stats %d", got, st.Partitions)
	}

	// Per-worker counters sum to the run totals.
	var txns, skips float64
	for w := 0; w < 2; w++ {
		txns += metricValue(t, body, fmt.Sprintf(`caesar_worker_txns_total{worker="%d"}`, w))
		skips += metricValue(t, body, fmt.Sprintf(`caesar_worker_suspended_skips_total{worker="%d"}`, w))
	}
	if txns != float64(st.Txns) {
		t.Errorf("txns: scrape %v, stats %d", txns, st.Txns)
	}
	if skips != float64(st.SuspendedSkips) {
		t.Errorf("suspended skips: scrape %v, stats %d", skips, st.SuspendedSkips)
	}

	// Per-context window activity: the trafficStream opens and closes
	// congestion and accident windows on segment 1.
	for name, cs := range st.Contexts {
		acts := metricValue(t, body, fmt.Sprintf(`caesar_context_activations_total{context=%q}`, name))
		susps := metricValue(t, body, fmt.Sprintf(`caesar_context_suspensions_total{context=%q}`, name))
		if acts != float64(cs.Activations) || susps != float64(cs.Suspensions) {
			t.Errorf("context %s: scrape %v/%v, stats %d/%d", name, acts, susps, cs.Activations, cs.Suspensions)
		}
	}
	if st.Contexts["congestion"].Activations == 0 || st.Contexts["congestion"].Suspensions == 0 {
		t.Error("congestion window never opened/closed — test stream broken")
	}

	// Latency histogram: quantiles and max agree with Stats exactly
	// (same snapshot math over the same buckets).
	for _, q := range []struct {
		q    string
		want time.Duration
	}{
		{"0.5", st.P50Latency}, {"0.95", st.P95Latency}, {"0.99", st.P99Latency},
	} {
		got := metricValue(t, body, fmt.Sprintf(`caesar_output_latency_ns{quantile=%q}`, q.q))
		if got != float64(q.want) {
			t.Errorf("latency q%s: scrape %v, stats %v", q.q, got, q.want)
		}
	}
	if got := metricValue(t, body, "caesar_output_latency_ns_max"); got != float64(st.MaxLatency) {
		t.Errorf("max latency: scrape %v, stats %v", got, st.MaxLatency)
	}
	if got := metricValue(t, body, "caesar_output_latency_ns_count"); got != float64(st.OutputCount) {
		t.Errorf("latency samples: scrape %v, outputs %d", got, st.OutputCount)
	}

	// The tracer saw every transaction; nothing was slow enough for
	// the 1h threshold to log.
	if got := metricValue(t, body, "caesar_txn_spans_total"); got != float64(st.Txns) {
		t.Errorf("spans: scrape %v, txns %d", got, st.Txns)
	}
	if traceLog.Len() != 0 {
		t.Errorf("unexpected slow-txn log: %s", traceLog.String())
	}
	if st.TxnMax <= 0 || st.TxnP99 <= 0 {
		t.Errorf("txn timing not populated: p99=%v max=%v", st.TxnP99, st.TxnMax)
	}
}
