package runtime

import (
	"math"
	gort "runtime"
	"testing"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
)

// derivedHeavySrc makes every input event derive: each position
// report projects a Reading in the default context, and the readings
// feed a per-segment tumbling aggregate whose flush derives a Load —
// a two-deep derivation chain exercised on every tick, so the
// benchmark measures derived-event construction (the arena hot path)
// rather than pattern suspension.
const derivedHeavySrc = `
EVENT P(vid int, seg int, speed int, sec int)
EVENT Reading(vid int, seg int, speed int)
EVENT Load(seg int, cars int, mean float)

CONTEXT clear DEFAULT

DERIVE Reading(p.vid, p.seg, p.speed)
PATTERN P p
WITHIN 5

DERIVE Load(r.seg, count(), avg(r.speed))
PATTERN Reading r
WITHIN 5
TUMBLE 4
`

// BenchmarkEngineDerivedHeavy measures the sharded steady state of a
// derivation-heavy workload: every event derives a chained event, and
// window flushes derive from those. With the slab arena handing out
// derived records and the shard loop's watermark reclamation
// recycling them, the steady state must report 0 allocs/op — the
// scripts/ci.sh bench guard enforces this (the final 849 allocs/op of
// the pre-arena runtime all lived on this path, see DESIGN.md §3.8).
func BenchmarkEngineDerivedHeavy(b *testing.B) {
	const nShards, parts, tickSize = 4, 24, 256
	m, err := model.CompileSource(derivedHeavySrc)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(Config{Plan: p, PartitionBy: []string{"seg"}, Shards: nShards})
	if err != nil {
		b.Fatal(err)
	}

	// The real run scaffolding, driven by the benchmark loop standing
	// in for the router: one preallocated tick re-timed per iteration
	// (same harness as BenchmarkEngineShardedTraced).
	r := newShardedRun(eng, nShards)
	r.start = time.Now()
	r.watermark.Store(math.MinInt64)
	r.health = registerRunHealth(nil, "shards", func() int64 { return 0 }, func() int64 { return 0 })
	for _, s := range r.shards {
		r.wg.Add(1)
		go func(s *engineShard) {
			defer r.wg.Done()
			s.loop()
		}(s)
	}

	sch, ok := m.Registry.Lookup("P")
	if !ok {
		b.Fatal("no P schema")
	}
	evs := make([]*event.Event, tickSize)
	for i := range evs {
		evs[i] = event.MustNew(sch, 1,
			event.Int64(int64(i)), event.Int64(int64(i%parts)),
			event.Int64(int64(40+i%30)), event.Int64(1))
	}
	batch := &event.Batch{Events: evs}
	retime := func(ts event.Time) {
		for _, ev := range evs {
			ev.Time = event.Point(ts)
		}
	}
	await := func(ts event.Time) {
		for _, s := range r.shards {
			for s.sentTS == int64(ts) && s.completed.Load() < int64(ts) {
				gort.Gosched()
			}
		}
	}
	// Warm past the first arena slabs, window flushes and partition
	// interning so the measured loop sees only slab recycling.
	const warm = 300
	for i := 0; i < warm; i++ {
		ts := event.Time(i + 1)
		retime(ts)
		if err := r.routeBatch(batch); err != nil {
			b.Fatal(err)
		}
		await(ts)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := event.Time(i + warm + 1)
		retime(ts)
		if err := r.routeBatch(batch); err != nil {
			b.Fatal(err)
		}
		await(ts)
	}
	b.StopTimer()
	for _, s := range r.shards {
		s.in.close()
	}
	r.wg.Wait()

	// The warm phase alone crosses the retention horizon many times
	// over; zero recycled slabs would mean reclamation never ran and
	// the arena grew unboundedly instead of reaching a steady state.
	var reclaimed uint64
	for _, w := range r.workers {
		reclaimed += w.wm.derivedReclaimed.Value()
	}
	if reclaimed == 0 {
		b.Fatal("derived arena never reclaimed a slab")
	}
	b.ReportMetric(tickSize, "events/op")
	var derived uint64
	for _, w := range r.workers {
		derived += w.wm.outputs.Value()
	}
	b.ReportMetric(float64(derived)/float64(b.N+warm), "derived/op")
}
