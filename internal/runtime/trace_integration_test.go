package runtime

import (
	"fmt"
	"testing"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// traceEngine builds a traffic engine with stage tracing at sample
// rate 1 and a health surface, for both runtime shapes.
func traceEngine(t testing.TB, shards int) (*Engine, *model.Model, *telemetry.StageTracer, *telemetry.Health) {
	t.Helper()
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewStageTracer(1, 64)
	h := telemetry.NewHealth()
	eng, err := New(Config{
		Plan:        p,
		PartitionBy: []string{"seg"},
		Shards:      shards,
		Workers:     2,
		Stages:      tr,
		Health:      h,
		OnOutput:    func(*event.Event) {}, // enable the ordered merge path
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, m, tr, h
}

// TestStageTracingEndToEnd runs the full engine with every tick
// sampled on both runtimes and checks the tracer saw every pipeline
// stage with sane latencies, the flight recorder holds complete
// timelines, and the health probes settle on "completed".
func TestStageTracingEndToEnd(t *testing.T) {
	const segs, ticks = 8, 200
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng, m, tr, h := traceEngine(t, shards)
			st, err := eng.RunBatches(newArenaTickSource(t, m, segs, ticks))
			if err != nil {
				t.Fatal(err)
			}
			if st.OutputCount == 0 {
				t.Fatal("run derived nothing")
			}

			// Every stage of the pipeline must have been observed: the
			// batch source exercises decode + queue (pipelined ingest),
			// dispatch exercises route, the hand-off ring_wait, the
			// kernel exec, and OnOutput the sharded merge hold-back.
			stages := []telemetry.Stage{
				telemetry.StageDecode, telemetry.StageQueue, telemetry.StageRoute,
				telemetry.StageRingWait, telemetry.StageExec,
			}
			if shards > 1 {
				stages = append(stages, telemetry.StageMerge)
			}
			for _, stg := range stages {
				snap := tr.StageSnapshot(stg)
				if snap.Count == 0 {
					t.Errorf("stage %s never observed", stg)
					continue
				}
				if max := snap.Max; max <= 0 || max > int64(time.Minute) {
					t.Errorf("stage %s max latency insane: %dns", stg, max)
				}
				if snap.Quantile(0.5) > snap.Max {
					t.Errorf("stage %s p50 %d exceeds max %d", stg, snap.Quantile(0.5), snap.Max)
				}
			}

			// The recorder's retained timelines are complete: exec
			// stamped, counts populated, completion stamps monotone
			// (the seqlock publishes in completion order per slot pass).
			tls := tr.Timelines()
			if len(tls) == 0 {
				t.Fatal("flight recorder is empty")
			}
			for _, tl := range tls {
				if tl.Stamped&(1<<telemetry.StageExec) == 0 {
					t.Errorf("timeline tick=%d unit=%d missing exec stage (stamped %b)",
						tl.Tick, tl.Unit, tl.Stamped)
				}
				if tl.Events <= 0 {
					t.Errorf("timeline tick=%d has no events", tl.Tick)
				}
				if tl.At <= 0 {
					t.Errorf("timeline tick=%d has no completion stamp", tl.Tick)
				}
			}

			// After the run, the health surface reports completed-and-
			// drained on every probe.
			rep := h.Check()
			if !rep.OK {
				t.Errorf("health not ok after completed run: %+v", rep)
			}
			unit := "workers"
			if shards > 1 {
				unit = "shards"
			}
			for _, name := range []string{"engine", "watermark", unit} {
				p, ok := rep.Probes[name]
				if !ok || !p.OK {
					t.Errorf("probe %q missing or failing: %+v", name, rep.Probes)
				}
			}
			if rep.Probes["engine"].Detail != "completed" {
				t.Errorf("engine probe detail = %q, want completed", rep.Probes["engine"].Detail)
			}
		})
	}
}

// TestStageTracingSampledSubset checks the sampling contract at rate
// N>1: roughly ticks/N spans recorded, none when the tracer is absent,
// and a traced run's outputs are identical to an untraced run's.
func TestStageTracingSampledSubset(t *testing.T) {
	const segs, ticks = 4, 120
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr *telemetry.StageTracer) *Stats {
		eng, err := New(Config{
			Plan:           p,
			PartitionBy:    []string{"seg"},
			Shards:         2,
			Stages:         tr,
			CollectOutputs: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.RunBatches(newArenaTickSource(t, m, segs, ticks))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	tr := telemetry.NewStageTracer(10, 64)
	stTraced := run(tr)
	stPlain := run(nil)

	execs := tr.StageSnapshot(telemetry.StageExec).Count
	if execs == 0 {
		t.Fatal("sampling rate 10 recorded nothing")
	}
	// The sharded router samples per (tick, shard): at most
	// ticks×shards draws, at least ticks/10 (each draw is 1-in-10).
	if max := uint64(ticks * 2); execs > max {
		t.Errorf("rate 10 recorded %d exec spans, want ≤ %d", execs, max)
	}
	if st := stTraced; st.OutputCount != stPlain.OutputCount || st.Transitions != stPlain.Transitions {
		t.Errorf("tracing changed results: traced %+v, plain %+v", st, stPlain)
	}
}
