// Sharded multi-core runtime (DESIGN.md §3.6): N independent engine
// shards, each owning a disjoint set of stream partitions end to end.
// The legacy pipeline funnels every tick through one distributor that
// hands per-tick transaction messages to a worker pool over channels;
// here the hot path is restructured so the per-tick cross-goroutine
// hand-off disappears from the steady state:
//
//	decode ──batchRing──▶ router ──spscRing──▶ shard 0 (route+execute)
//	                        │      (per batch) ├─ shard 1
//	                        │                  ├─ ...
//	                        └──────────────────▶ shard N-1
//	                                               │ (optional)
//	                              OnOutput ◀─ merge layer (ordered)
//
// The router only renders each event's partition key and hashes it to
// pick the owning shard — one FNV-1a over a reused scratch, no map
// probe, no interning. Events accumulate in per-shard messages that
// are flushed once per ingest batch (once per tick under paced
// replay), so shards receive work in batch-sized grants through
// bounded lock-free SPSC rings, with consumed messages cycling back
// on mirror rings for an allocation-free steady state. Each shard
// interns partitions in its own table, forms the per-tick stream
// transactions locally, and executes them on its own goroutine —
// §6.2's scheduler correctness (per-partition FIFO in timestamp
// order) holds because a partition's events always land in the same
// shard, in the order the router saw them.
package runtime

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// shardRingDepth is the capacity, in messages, of each router→shard
// ring (and its mirror free ring): enough grants for the router to
// run a few batches ahead, small enough that backpressure reaches the
// decode stage quickly. Must be a power of two.
const shardRingDepth = 8

// shardMsg is one router→shard grant: the shard's slice of one or
// more ingest batches, in non-decreasing timestamp order, never
// splitting a tick (batches are tick-aligned and messages are cut on
// batch boundaries). Messages cycle router→shard→free ring→router,
// so the steady state allocates nothing.
//
// spans holds the stage spans of this grant's sampled ticks, in tick
// order (at most one per tick — the router starts one the first time
// a sampled tick touches this shard). The ring's release/acquire
// hand-off carries the span writes across goroutines.
type shardMsg struct {
	evs   []*event.Event
	spans []*telemetry.Span
	// mark, when hasMark, advances the shard's completed tick past the
	// grant's events (usually an empty grant): the checkpoint barrier
	// pushes one to every shard the current tick never touched, since
	// an idle shard would otherwise hold back both the barrier and the
	// ordered merge release (durable.go).
	mark    int64
	hasMark bool
}

// engineShard is one partition-owning execution unit: a shard-local
// keyer and partition table (route), and a worker providing the
// execution state and metrics slot (execute). Everything behind the
// ring is confined to the shard goroutine.
type engineShard struct {
	id int
	w  *worker
	keyer
	table   map[string]*partition
	control *partition
	active  []*partition // partitions hit this tick, first-seen order

	in   *spscRing[*shardMsg] // router → shard
	free *spscRing[*shardMsg] // shard → router (recycling)

	// parts mirrors len(table) for scrape-time gauges (table itself
	// is shard-confined).
	parts atomic.Int64

	// completed publishes the last fully executed tick; the router
	// reads it for watermark reclamation, the merge layer for release
	// decisions. MinInt64 = nothing completed yet.
	completed atomic.Int64
	// done is set when the shard goroutine exits (after its last
	// completed store and output push).
	done atomic.Bool
	// sentTS is the last timestamp routed to this shard; owned by the
	// router goroutine (see publishWatermark).
	sentTS int64

	rm  *runMetrics
	mrg *outputMerger // nil when no ordered output merge is needed
}

func newEngineShard(e *Engine, id int, rm *runMetrics) *engineShard {
	s := &engineShard{
		id:     id,
		w:      newShardWorker(e, id, rm),
		keyer:  newKeyer(e.cfg.PartitionBy),
		table:  make(map[string]*partition),
		in:     newSpscRing[*shardMsg](shardRingDepth),
		free:   newSpscRing[*shardMsg](shardRingDepth),
		sentTS: math.MinInt64,
		rm:     rm,
	}
	s.w.shard = s
	s.completed.Store(math.MinInt64)
	for i := 0; i < shardRingDepth; i++ {
		s.free.push(&shardMsg{})
	}
	return s
}

// partitionOf interns the event's partition in the shard-local table.
// Same zero-allocation contract as the distributor's: scratch-
// rendered key, byte-slice map probe, key materialized once.
func (s *engineShard) partitionOf(ev *event.Event) *partition {
	b := s.render(ev)
	if b == nil {
		if s.control == nil {
			s.control = s.intern(controlKey)
		}
		return s.control
	}
	if p, ok := s.table[string(b)]; ok {
		return p
	}
	return s.intern(string(b))
}

func (s *engineShard) intern(key string) *partition {
	p := &partition{key: key}
	s.table[key] = p
	s.parts.Add(1)
	s.rm.partitions.Add(1)
	return p
}

// loop is the shard goroutine: pop a grant, split it into ticks (runs
// of equal occurrence end time), execute each tick's transactions,
// publish progress, recycle the message.
func (s *engineShard) loop() {
	for {
		msg, ok := s.in.pop()
		if !ok {
			break
		}
		evs := msg.evs
		spanIdx := 0
		for i := 0; i < len(evs); {
			ts := evs[i].End()
			j := i + 1
			for j < len(evs) && evs[j].End() == ts {
				j++
			}
			// Sampled ticks carry spans in tick order; ring wait runs
			// from the router's route-end mark to the tick's first
			// touch here — grant residence, ring time and waiting
			// behind earlier ticks all count as queue time, which is
			// what they are.
			var sp *telemetry.Span
			if spanIdx < len(msg.spans) && msg.spans[spanIdx].Tick() == int64(ts) {
				sp = msg.spans[spanIdx]
				spanIdx++
				sp.StampSince(telemetry.StageRingWait, time.Now().UnixNano())
			}
			s.execTick(ts, evs[i:j], sp)
			s.completed.Store(int64(ts))
			i = j
		}
		if msg.hasMark {
			if msg.mark > s.completed.Load() {
				s.completed.Store(msg.mark)
			}
			msg.hasMark = false
		}
		msg.evs = msg.evs[:0]
		msg.spans = msg.spans[:0]
		s.free.push(msg)
		if s.mrg != nil {
			s.mrg.wake()
		}
		// Reclaim derived-event slabs once per grant: bounded by this
		// shard's own completion minus the retention slack and — when
		// the ordered merge layer buffers our output — by the merger's
		// released tick, which can trail arbitrarily far behind a slow
		// sibling shard (an unreleased event must stay live).
		if c := s.completed.Load(); c != math.MinInt64 {
			bound := c - s.w.slack
			if s.mrg != nil {
				if rel := s.mrg.released.Load() + 1; rel < bound {
					bound = rel
				}
			}
			s.w.reclaimDerived(bound)
		}
	}
	s.done.Store(true)
	if s.mrg != nil {
		s.mrg.wake()
	}
}

// execTick forms and executes one tick's stream transactions: group
// the tick's events by partition (first-seen order, exactly like the
// distributor) and run each partition's transaction on this shard's
// execution state.
func (s *engineShard) execTick(ts event.Time, evs []*event.Event, sp *telemetry.Span) {
	w := s.w
	for _, ev := range evs {
		p := s.partitionOf(ev)
		if p.batch == nil {
			p.batch = w.getEventBuf()
			s.active = append(s.active, p)
		}
		p.batch.evs = append(p.batch.evs, ev)
	}
	w.wallNow = 0
	var outBase uint64
	if sp != nil {
		outBase = w.wm.outputs.Value()
	}
	for _, p := range s.active {
		ps := p.state
		if ps == nil {
			ps = w.newPartition(p.key)
			p.state = ps
		}
		w.wm.txns.Inc()
		if w.timed {
			w.execsInTxn = 0
			start := time.Now()
			ps.exec(w, ts, p.batch.evs)
			d := time.Since(start)
			w.wm.txnLatency.ObserveDuration(d)
			w.rm.tracer.Record(d, p.key, int64(ts), w.execsInTxn, len(p.batch.evs), sp)
		} else {
			ps.exec(w, ts, p.batch.evs)
		}
		w.putEventBuf(p.batch)
		p.batch = nil
	}
	if sp != nil {
		sp.SetCounts(len(s.active), len(evs))
		sp.StampSince(telemetry.StageExec, time.Now().UnixNano())
		sp.SetEmitted(int(w.wm.outputs.Value() - outBase))
	}
	s.active = s.active[:0]
	if s.mrg != nil {
		// The merger finishes the span when it releases the tick's
		// output (stamping merge hold-back); with nothing buffered the
		// span finishes right here inside flushTick.
		s.mrg.flushTick(s, ts, sp)
	} else if sp != nil {
		sp.Finish()
	}
}

// shardedRun is one sharded execution: the router-side state (keyer,
// ordering, pacing, pending grants) plus the shard pool and optional
// output merger.
type shardedRun struct {
	e       *Engine
	rm      *runMetrics
	shards  []*engineShard
	workers []*worker // shards[i].w, in shard order (metrics, collect)
	wg      sync.WaitGroup
	mrg     *outputMerger

	keyer
	smask     uint32
	ctrlShard uint32
	pending   []*shardMsg // per-shard grant being filled

	start       time.Time
	appStart    event.Time
	appStartSet bool
	lastTS      event.Time
	haveLast    bool

	// watermark is the published reclamation bound, same protocol as
	// the legacy pipeline's (ingest.go).
	watermark atomic.Int64
	slack     int64

	// ring is the read-ahead ring of the decode stage, rearmed (not
	// rebuilt) across cached runs.
	ring *batchRing

	// Stage tracing (router-goroutine-owned): stages samples ticks,
	// decodeNs/queueNs carry the current batch's ingest stamps, and
	// tickSpans collects the current tick's spans (one per touched
	// shard) until the tick's routing time is known.
	stages    *telemetry.StageTracer
	decodeNs  int64
	queueNs   int64
	tickSpans []*telemetry.Span

	// health backs the run's /healthz probes (health.go).
	health *runHealth

	// dur is the run's durability context (durable.go); nil without
	// Config.DurableDir. Rebuilt per Run by openDurable.
	dur *durableState
}

// shardOf renders the event's partition key and hashes it onto the
// shard pool. Assignment is a pure function of (key, shard count):
// stable for the run, and identical to fnv1a(key) % shards (bitmask
// when the count is a power of two — see pickIdx).
func (r *shardedRun) shardOf(ev *event.Event) uint32 {
	b := r.render(ev)
	if b == nil {
		return r.ctrlShard
	}
	return pickIdx(fnv1aBytes(b), len(r.shards), r.smask)
}

// routeBatch slices one decoded batch across the shards: ordering
// checks and tick accounting happen here (single goroutine), each
// event is appended to its owner shard's pending grant, and grants
// flush once per batch — or once per tick under paced replay, so
// real-time delivery granularity is preserved.
func (r *shardedRun) routeBatch(b *event.Batch) error {
	evs := b.Events
	pacing := r.e.cfg.Pacing
	ds := r.dur
	for i := 0; i < len(evs); {
		ts := evs[i].End()
		j := i + 1
		for j < len(evs) && evs[j].End() == ts {
			j++
		}
		// Recovery dedup before the ordering checks: a recovered run
		// re-feeds the stream from the start, and ticks at or below
		// the recovery point are below the replayed lastTS by design.
		if ds.skipTick(ts) {
			i = j
			continue
		}
		if r.haveLast {
			if ts < r.lastTS {
				return fmt.Errorf("runtime: out-of-order event %v after t=%d", evs[i], r.lastTS)
			}
			if ts == r.lastTS && i == 0 {
				return fmt.Errorf("runtime: batch source split tick t=%d across batches", ts)
			}
		}
		if ds != nil {
			// The tick is durable before any shard sees it (redo-log
			// ordering); the crash hook models a failure at exactly
			// this boundary.
			if ct := r.e.cfg.testCrashTick; ct > 0 && int64(ts) >= ct {
				return errSimulatedCrash
			}
			if err := ds.appendTick(ts, evs[i:j]); err != nil {
				return err
			}
		}
		r.rm.events.Add(uint64(j - i))
		r.rm.ticks.Inc()
		if pacing > 0 {
			if !r.appStartSet {
				r.appStart, r.appStartSet = ts, true
			}
			target := r.start.Add(time.Duration(ts-r.appStart) * pacing)
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
		sampled := r.stages.SampleTick()
		arrival := time.Now().UnixNano()
		for _, ev := range evs[i:j] {
			ev.Arrival = arrival
			si := r.shardOf(ev)
			msg := r.pending[si]
			if msg == nil {
				msg = r.grant(si)
				r.pending[si] = msg
			}
			msg.evs = append(msg.evs, ev)
			if sampled {
				// One span per (tick, shard), started the first time
				// the tick touches the shard; ticks route in order, so
				// the grant's last span is the current tick's if any.
				if n := len(msg.spans); n == 0 || msg.spans[n-1].Tick() != int64(ts) {
					sp := r.stages.Start(int64(ts), int(si))
					msg.spans = append(msg.spans, sp)
					r.tickSpans = append(r.tickSpans, sp)
				}
			}
		}
		if sampled {
			// arrival doubles as the tick's route-start instant, so
			// sampling costs one extra clock read per tick. Decode and
			// queue wait are batch-level attributions.
			now := time.Now().UnixNano()
			for _, sp := range r.tickSpans {
				sp.Stamp(telemetry.StageDecode, r.decodeNs)
				sp.Stamp(telemetry.StageQueue, r.queueNs)
				sp.Stamp(telemetry.StageRoute, now-arrival)
				sp.MarkAt(now)
			}
			r.tickSpans = r.tickSpans[:0]
		}
		if pacing > 0 {
			r.flush()
		}
		r.lastTS, r.haveLast = ts, true
		r.health.routed.Store(int64(ts))
		if ds != nil {
			if err := r.maybeCheckpoint(ts); err != nil {
				return err
			}
		}
		i = j
	}
	r.flush()
	return nil
}

// grant pops a recycled message off the shard's free ring, blocking
// when the shard is a full ring behind — the backpressure that keeps
// at most shardRingDepth batches in flight per shard.
func (r *shardedRun) grant(si uint32) *shardMsg {
	msg, ok := r.shards[si].free.pop()
	if !ok {
		// The free ring is closed only on teardown; a fresh message
		// keeps the router total even then.
		return &shardMsg{}
	}
	return msg
}

// flush hands every non-empty pending grant to its shard.
func (r *shardedRun) flush() {
	for i, msg := range r.pending {
		if msg == nil {
			continue
		}
		s := r.shards[i]
		s.sentTS = int64(msg.evs[len(msg.evs)-1].End())
		s.in.push(msg)
		r.pending[i] = nil
	}
}

// publishWatermark advances the reclamation bound: the minimum over
// the last routed tick and the completed mark of every shard that
// still holds routed-but-unexecuted work (sentTS is router-owned, so
// "holds work" is exact; a lagging completed read only makes the
// bound conservative).
func (r *shardedRun) publishWatermark() {
	if !r.haveLast {
		return
	}
	min := int64(r.lastTS)
	for _, s := range r.shards {
		if done := s.completed.Load(); s.sentTS > done && done < min {
			min = done
		}
	}
	if min == math.MinInt64 {
		return
	}
	if wm := min - r.slack; wm > r.watermark.Load() {
		r.watermark.Store(wm)
	}
}

// newShardedRun builds the run scaffolding that survives across Run
// calls: the shards and their workers, the run metric set, the
// router-side keyer, and the optional output merger. Per-run state is
// armed by reset and the per-run section of runSharded.
func newShardedRun(e *Engine, n int) *shardedRun {
	rm := newRunMetrics(e, n)
	r := &shardedRun{
		e:       e,
		rm:      rm,
		keyer:   newKeyer(e.cfg.PartitionBy),
		smask:   powerOfTwoMask(n),
		pending: make([]*shardMsg, n),
		slack:   e.reclaimSlack(),
		stages:  rm.stages,
	}
	r.ctrlShard = pickIdx(fnv1a(controlKey), n, r.smask)
	r.shards = make([]*engineShard, n)
	r.workers = make([]*worker, n)
	for i := 0; i < n; i++ {
		r.shards[i] = newEngineShard(e, i, rm)
		r.workers[i] = r.shards[i].w
	}
	if e.cfg.OnOutput != nil {
		r.mrg = newOutputMerger(r.shards, e.cfg.OnOutput)
		for _, s := range r.shards {
			s.mrg = r.mrg
			s.w.merged = true
		}
	}
	return r
}

// reset rearms a cached sharded run for its next execution: metrics
// rewound, shard progress marks and rings rearmed, partition state
// restored to its pre-run condition, the merger rearmed. The partition
// tables and every scratch/ring/arena capacity are retained — that
// retention is what run reuse amortizes. Only called after a clean
// run (an error invalidates the cache), so the rings are drained and
// every grant message is back on its free ring.
func (r *shardedRun) reset() {
	r.rm.reset()
	r.appStartSet = false
	r.haveLast = false
	r.decodeNs, r.queueNs = 0, 0
	r.tickSpans = r.tickSpans[:0]
	for _, s := range r.shards {
		s.completed.Store(math.MinInt64)
		s.sentTS = math.MinInt64
		s.done.Store(false)
		s.in.reopen()
		s.active = s.active[:0]
		s.w.resetForRun()
		for _, p := range s.table {
			p.batch = nil
			if p.state != nil {
				p.state.reset(r.e)
			}
		}
	}
	if r.mrg != nil {
		r.mrg.reset()
	}
}

// runSharded executes the engine over a batch source on the sharded
// runtime. Callers guarantee e.nShards > 1 and the pipelined path.
// The run scaffolding is cached on the Engine and reused by later Run
// calls, so steady-state re-runs allocate only per-run incidentals
// (goroutines, the read-ahead ring, registration closures).
func (e *Engine) runSharded(src event.BatchSource) (*Stats, error) {
	n := e.nShards
	r := e.shardedCached
	if r == nil {
		r = newShardedRun(e, n)
		e.shardedCached = r
	} else {
		r.reset()
	}
	r.start = time.Now()
	r.watermark.Store(math.MinInt64)
	rm := r.rm
	workers := r.workers

	if e.cfg.Health != nil || r.health == nil {
		shards := r.shards
		r.health = registerRunHealth(e.cfg.Health, "shards",
			func() int64 {
				max := int64(math.MinInt64)
				for _, s := range shards {
					if c := s.completed.Load(); c > max {
						max = c
					}
				}
				return max
			},
			func() int64 {
				var n int64
				for _, s := range shards {
					n += s.in.occupancy()
				}
				return n
			})
	} else {
		r.health.reset()
	}
	if r.mrg != nil {
		go r.mrg.loop()
	}
	spawn := func(s *engineShard) {
		defer r.wg.Done()
		s.loop()
	}
	for _, s := range r.shards {
		r.wg.Add(1)
		go spawn(s)
	}

	if r.ring == nil {
		ra := e.cfg.ReadAhead
		if ra <= 0 {
			ra = defaultReadAhead
		}
		r.ring = newBatchRing(ra)
	} else {
		r.ring.arm()
	}
	ring := r.ring
	rm.ringDepth = func() int64 { return int64(len(ring.data)) }
	rm.register(e.cfg.Telemetry, e, workers)
	registerShardMetrics(e.cfg.Telemetry, r.shards)

	rec, _ := src.(event.Reclaimer)

	// Recovery runs before the decode stage starts: restore the latest
	// snapshot into the shard tables, replay the WAL tail through the
	// rings (the shards are already consuming), then open the WAL for
	// this run's appends.
	var runErr error
	if e.cfg.DurableDir != "" {
		runErr = r.openDurable()
	}

	var decodeWG sync.WaitGroup
	if runErr == nil {
		startDecode(ring, src, rec, &r.watermark, rm, &decodeWG)
	} else {
		close(ring.data)
	}

	traced := r.stages != nil
	for b := range ring.data {
		rm.batches.Inc()
		if traced {
			r.decodeNs = b.DecodeNs
			r.queueNs = time.Now().UnixNano() - b.ReadyNs
		}
		if runErr = r.routeBatch(b); runErr != nil {
			ring.abort()
			break
		}
		ring.release(b)
		if rec != nil {
			r.publishWatermark()
		}
	}
	for range ring.data { // drain after abort so the decoder unblocks
	}
	decodeWG.Wait()
	for _, s := range r.shards {
		s.in.close()
	}
	r.wg.Wait()
	if r.mrg != nil {
		r.mrg.waitDone()
	}

	if runErr == nil {
		if es, ok := src.(interface{ Err() error }); ok {
			runErr = es.Err()
		}
	}
	if runErr == nil {
		// A clean finish closes the WAL; a failed run leaves the
		// durable files exactly as the sync policy last flushed them
		// (the crash image recovery consumes).
		runErr = r.dur.closeWAL()
	}
	r.health.finish(runErr)
	if runErr != nil {
		// An aborted run can leave grants stranded between the router
		// and the rings; drop the scaffolding rather than reason about
		// its partial state.
		e.shardedCached = nil
		return nil, runErr
	}
	partitions := 0
	for _, s := range r.shards {
		partitions += len(s.table)
	}
	st := e.collect(rm, workers, partitions, time.Since(r.start))
	if r.dur != nil {
		st.ReplayedTicks = r.dur.replayed.Value()
	}
	return st, nil
}

// fnv1aBytes is fnv1a over a byte slice (no string conversion, no
// allocation); same hash, same placement.
func fnv1aBytes(key []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}
