package runtime

import (
	"sync"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// benchTick builds one tick of Linear Road-shaped position reports
// spread over nParts partitions.
func benchTick(n, nParts int) []*event.Event {
	evs := make([]*event.Event, 0, n)
	for i := 0; i < n; i++ {
		p := i % nParts
		evs = append(evs, distEvent(1, int64(p%4), int64(p%2), int64(p), int64(i)))
	}
	return evs
}

// drainStub empties a stub worker's channel, recycling every buffer
// (and any sampled span) exactly like the worker loop does but
// without executing transactions.
func drainStub(w *worker) {
	for {
		select {
		case msg := <-w.ch:
			msg.span.Finish()
			for i := range msg.buf.txns {
				w.putEventBuf(msg.buf.txns[i].buf)
			}
			w.putTxnBuf(msg.buf)
		default:
			return
		}
	}
}

// BenchmarkDistributor measures the dispatch-only path: partition key
// rendering, interning, batch accumulation and the per-worker
// hand-off, with stub workers drained in place so only distributor
// cost is timed. Steady state must report 0 allocs/op.
func BenchmarkDistributor(b *testing.B) {
	const workers, parts, tickSize = 4, 24, 512
	ws := stubWorkers(workers)
	d := newDistributor(ws, []string{"xway", "dir", "seg"})
	tick := benchTick(tickSize, parts)
	// Warm the partition table and buffer free lists.
	d.dispatch(1, tick, 1)
	for _, w := range ws {
		drainStub(w)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.dispatch(event.Time(i+2), tick, 1)
		for _, w := range ws {
			drainStub(w)
		}
	}
	b.ReportMetric(tickSize, "events/op")
}

// BenchmarkDistributorConcurrent is the same dispatch load with live
// consumer goroutines — the realistic hand-off including channel
// contention. Allocations stay amortized near zero (buffers are
// minted only while a consumer briefly lags, then recycle forever).
func BenchmarkDistributorConcurrent(b *testing.B) {
	const workers, parts, tickSize = 4, 24, 512
	ws := stubWorkers(workers)
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for msg := range w.ch {
				for i := range msg.buf.txns {
					w.putEventBuf(msg.buf.txns[i].buf)
				}
				w.putTxnBuf(msg.buf)
			}
		}(w)
	}
	d := newDistributor(ws, []string{"xway", "dir", "seg"})
	tick := benchTick(tickSize, parts)
	d.dispatch(1, tick, 1)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.dispatch(event.Time(i+2), tick, 1)
	}
	b.StopTimer()
	for _, w := range ws {
		close(w.ch)
	}
	wg.Wait()
	b.ReportMetric(tickSize, "events/op")
}

// BenchmarkDistributorTraced is BenchmarkDistributor with the stage
// tracer enabled at sample rate 1 — every tick carries spans — so it
// bounds the tracing overhead on the dispatch-bound path. The span
// pool recycles through the stub drain, so steady state must still
// report 0 allocs/op (the ci.sh bench guard enforces this).
func BenchmarkDistributorTraced(b *testing.B) {
	const workers, parts, tickSize = 4, 24, 512
	ws := stubWorkers(workers)
	d := newDistributor(ws, []string{"xway", "dir", "seg"})
	d.stages = telemetry.NewStageTracer(1, 64)
	tick := benchTick(tickSize, parts)
	d.dispatch(1, tick, 1)
	for _, w := range ws {
		drainStub(w)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.dispatch(event.Time(i+2), tick, 1)
		for _, w := range ws {
			drainStub(w)
		}
	}
	b.StopTimer()
	if spans := d.stages.Timelines(); len(spans) == 0 {
		b.Fatal("tracer recorded nothing at sample rate 1")
	}
	b.ReportMetric(tickSize, "events/op")
}

// BenchmarkPartitionKey measures key rendering plus partition table
// lookup for a single event; the interned steady state must be
// allocation-free.
func BenchmarkPartitionKey(b *testing.B) {
	d := newDistributor(stubWorkers(4), []string{"xway", "dir", "seg"})
	ev := distEvent(1, 3, 1, 42, 7)
	d.partitionOf(ev) // intern

	b.ReportAllocs()
	b.ResetTimer()
	var p *partition
	for i := 0; i < b.N; i++ {
		p = d.partitionOf(ev)
	}
	if p == nil || p.key != "3|1|42|" {
		b.Fatalf("bad partition %v", p)
	}
}
