package runtime

import (
	gort "runtime"
	"sync/atomic"
	"time"
)

// spscRing is a bounded lock-free single-producer single-consumer
// ring. It is the hand-off primitive of the sharded runtime
// (DESIGN.md §3.6): the router pushes per-shard event messages, each
// shard pops them, and a mirror-image ring flows consumed messages
// back for reuse — so the steady state moves data between pipeline
// stages with two atomic stores per message and no locks, channels or
// allocations.
//
// Synchronization: the producer publishes with a release store of
// tail after writing the slot; the consumer observes it with an
// acquire load, reads the slot, and releases it with a store of head.
// head and tail are each written by exactly one goroutine. Both sides
// fall back to parking on a one-token wake channel after a brief
// yield phase, so an idle stage costs nothing and a stalled stage
// (ring empty or full) does not spin a core away from the stage it is
// waiting on — which matters when GOMAXPROCS < 2·shards.
type spscRing[T any] struct {
	buf  []T
	mask uint64

	_    [64]byte // keep producer and consumer indices on separate lines
	tail atomic.Uint64
	_    [64]byte
	head atomic.Uint64
	_    [64]byte

	// closed is set by the producer; the consumer drains and exits.
	closed atomic.Bool

	// Parking state: a side that finds the ring unusable sets its
	// wait flag, rechecks, then blocks on its wake channel; the
	// opposite side hands over one token after every state change
	// that could unblock it. Channels hold at most one token, so a
	// stale token only causes one spurious recheck.
	prodWait atomic.Bool
	consWait atomic.Bool
	prodWake chan struct{}
	consWake chan struct{}

	// Stall telemetry: nanoseconds each side spent parked. Each
	// counter has a single writer.
	prodStallNs atomic.Int64
	consStallNs atomic.Int64
}

// ringYields is how many scheduler yields a stalled side performs
// before parking. Yields keep latency low when the peer is runnable
// (including on a single hardware thread, where yielding hands the
// core straight to the peer); parking bounds the cost when it is not.
const ringYields = 4

func newSpscRing[T any](capacity int) *spscRing[T] {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("runtime: spscRing capacity must be a power of two")
	}
	return &spscRing[T]{
		buf:      make([]T, capacity),
		mask:     uint64(capacity - 1),
		prodWake: make(chan struct{}, 1),
		consWake: make(chan struct{}, 1),
	}
}

// push enqueues v, blocking while the ring is full. It reports false
// only if the ring was closed (push after close is a bug; the false
// return keeps a racing close from deadlocking the producer).
func (r *spscRing[T]) push(v T) bool {
	t := r.tail.Load()
	for spins := 0; ; {
		if t-r.head.Load() < uint64(len(r.buf)) {
			r.buf[t&r.mask] = v
			r.tail.Store(t + 1)
			if r.consWait.CompareAndSwap(true, false) {
				select {
				case r.consWake <- struct{}{}:
				default:
				}
			}
			return true
		}
		if r.closed.Load() {
			return false
		}
		if spins < ringYields {
			spins++
			gort.Gosched()
			continue
		}
		r.prodWait.Store(true)
		if t-r.head.Load() < uint64(len(r.buf)) || r.closed.Load() {
			r.prodWait.Store(false)
			continue
		}
		start := time.Now()
		<-r.prodWake
		r.prodStallNs.Add(time.Since(start).Nanoseconds())
		spins = 0
	}
}

// pop dequeues the next value, blocking while the ring is empty. It
// reports false once the ring is closed and fully drained.
func (r *spscRing[T]) pop() (T, bool) {
	var zero T
	h := r.head.Load()
	for spins := 0; ; {
		if r.tail.Load() > h {
			v := r.buf[h&r.mask]
			r.buf[h&r.mask] = zero // release the reference for GC
			r.head.Store(h + 1)
			if r.prodWait.CompareAndSwap(true, false) {
				select {
				case r.prodWake <- struct{}{}:
				default:
				}
			}
			return v, true
		}
		// Re-read tail after observing closed: a close racing the
		// last push must not drop the pushed value.
		if r.closed.Load() && r.tail.Load() == h {
			return zero, false
		}
		if spins < ringYields {
			spins++
			gort.Gosched()
			continue
		}
		r.consWait.Store(true)
		if r.tail.Load() > h || (r.closed.Load() && r.tail.Load() == h) {
			r.consWait.Store(false)
			continue
		}
		start := time.Now()
		<-r.consWake
		r.consStallNs.Add(time.Since(start).Nanoseconds())
		spins = 0
	}
}

// tryPush enqueues without blocking; ok is false when the ring is
// momentarily full.
func (r *spscRing[T]) tryPush(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	if r.consWait.CompareAndSwap(true, false) {
		select {
		case r.consWake <- struct{}{}:
		default:
		}
	}
	return true
}

// tryPop dequeues without blocking; ok is false when the ring is
// momentarily empty (drained tells a closed ring's final state).
func (r *spscRing[T]) tryPop() (v T, ok bool) {
	h := r.head.Load()
	if r.tail.Load() == h {
		return v, false
	}
	v = r.buf[h&r.mask]
	var zero T
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	if r.prodWait.CompareAndSwap(true, false) {
		select {
		case r.prodWake <- struct{}{}:
		default:
		}
	}
	return v, true
}

// close marks the stream complete (producer side) and wakes a parked
// consumer so it can drain and exit.
func (r *spscRing[T]) close() {
	r.closed.Store(true)
	r.consWait.Store(false)
	select {
	case r.consWake <- struct{}{}:
	default:
	}
	// A producer parked in push (possible when close is called by a
	// third party on teardown) is released the same way.
	r.prodWait.Store(false)
	select {
	case r.prodWake <- struct{}{}:
	default:
	}
}

// reopen clears the closed mark so a cached run can reuse the ring
// for its next execution. The caller guarantees both sides' previous
// goroutines have exited and the ring is drained; the head/tail
// indices are monotonic and carry over. A stale wake token at most
// causes one spurious recheck.
func (r *spscRing[T]) reopen() { r.closed.Store(false) }

// occupancy reports how many values sit in the ring right now; it is
// safe to call from any goroutine (scrape-time gauge).
func (r *spscRing[T]) occupancy() int64 {
	return int64(r.tail.Load() - r.head.Load())
}

// stallNs reports the cumulative parked time of both sides.
func (r *spscRing[T]) stallNs() (producer, consumer int64) {
	return r.prodStallNs.Load(), r.consStallNs.Load()
}
