package runtime

import (
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
)

var distTestSchema = event.MustSchema("PR",
	event.Field{Name: "xway", Kind: event.KindInt},
	event.Field{Name: "dir", Kind: event.KindInt},
	event.Field{Name: "seg", Kind: event.KindInt},
	event.Field{Name: "v", Kind: event.KindInt},
)

var distCtlSchema = event.MustSchema("Ctl",
	event.Field{Name: "mode", Kind: event.KindInt},
)

func distEvent(ts event.Time, xway, dir, seg, v int64) *event.Event {
	return event.MustNew(distTestSchema, ts,
		event.Int64(xway), event.Int64(dir), event.Int64(seg), event.Int64(v))
}

// stubWorkers builds n bare workers (no engine) whose channels are
// not yet drained; tests drain them explicitly.
func stubWorkers(n int) []*worker {
	ws := make([]*worker, n)
	for i := range ws {
		ws[i] = &worker{id: i, ch: make(chan txnMsg, 256)}
	}
	return ws
}

func TestPartitionKeyInterning(t *testing.T) {
	d := newDistributor(stubWorkers(3), []string{"xway", "dir", "seg"})

	a := d.partitionOf(distEvent(1, 1, 0, 7, 100))
	b := d.partitionOf(distEvent(2, 1, 0, 7, 200))
	if a != b {
		t.Error("same key attributes produced distinct partition entries")
	}
	if a.key != "1|0|7|" {
		t.Errorf("key = %q, want %q", a.key, "1|0|7|")
	}
	c := d.partitionOf(distEvent(2, 1, 0, 8, 200))
	if c == a {
		t.Error("distinct keys interned to the same partition")
	}
	// Worker assignment is the FNV-1a hash of the key — stable and
	// identical to the seed's hash/fnv-based placement.
	wantWorker := d.workers[fnv1a("1|0|7|")%3]
	if a.worker != wantWorker {
		t.Errorf("worker = %d, want %d", a.worker.id, wantWorker.id)
	}
	if len(d.table) != 2 {
		t.Errorf("table size = %d, want 2", len(d.table))
	}
}

func TestKeylessEventsShareControlPartition(t *testing.T) {
	d := newDistributor(stubWorkers(2), []string{"xway", "dir", "seg"})
	ctl := event.MustNew(distCtlSchema, 1, event.Int64(3))
	p := d.partitionOf(ctl)
	if p.key != controlKey {
		t.Errorf("keyless event landed in %q", p.key)
	}
	if q := d.partitionOf(event.MustNew(distCtlSchema, 2, event.Int64(4))); q != p {
		t.Error("control partition not interned")
	}
	// With no partition attributes configured, everything is control.
	d2 := newDistributor(stubWorkers(2), nil)
	if p2 := d2.partitionOf(distEvent(1, 1, 0, 7, 1)); p2.key != controlKey {
		t.Errorf("unpartitioned event landed in %q", p2.key)
	}
}

func TestPartialKeyAttributesRendered(t *testing.T) {
	// A schema carrying only some key attributes renders placeholders
	// for the missing ones, exactly like the seed's strings.Builder.
	s := event.MustSchema("HalfKey",
		event.Field{Name: "seg", Kind: event.KindInt},
	)
	d := newDistributor(stubWorkers(2), []string{"xway", "dir", "seg"})
	p := d.partitionOf(event.MustNew(s, 1, event.Int64(9)))
	if p.key != "||9|" {
		t.Errorf("key = %q, want %q", p.key, "||9|")
	}
}

// TestDispatchBatchesPerWorker checks the batched hand-off contract:
// each tick delivers at most one txnMsg per worker, transactions
// appear in first-seen partition order, and batch buffers cycle back
// through the worker free lists for reuse.
func TestDispatchBatchesPerWorker(t *testing.T) {
	ws := stubWorkers(1)
	w := ws[0]
	d := newDistributor(ws, []string{"seg"})

	tick := []*event.Event{
		distEvent(1, 0, 0, 5, 1),
		distEvent(1, 0, 0, 3, 2),
		distEvent(1, 0, 0, 5, 3),
		distEvent(1, 0, 0, 3, 4),
	}
	d.dispatch(1, tick, 42)

	if got := len(w.ch); got != 1 {
		t.Fatalf("worker received %d messages for one tick, want 1", got)
	}
	msg := <-w.ch
	if msg.ts != 1 {
		t.Errorf("ts = %d", msg.ts)
	}
	if len(msg.buf.txns) != 2 {
		t.Fatalf("txns = %d, want 2", len(msg.buf.txns))
	}
	// First-seen order: segment 5 before segment 3.
	if msg.buf.txns[0].part.key != "5|" || msg.buf.txns[1].part.key != "3|" {
		t.Errorf("txn order = %q, %q", msg.buf.txns[0].part.key, msg.buf.txns[1].part.key)
	}
	seg5 := msg.buf.txns[0].buf.evs
	if len(seg5) != 2 || seg5[0].At(3).Int != 1 || seg5[1].At(3).Int != 3 {
		t.Errorf("segment 5 batch = %v", seg5)
	}
	for _, ev := range tick {
		if ev.Arrival != 42 {
			t.Errorf("arrival not stamped: %v", ev.Arrival)
		}
	}

	// Release like the worker loop does, then dispatch another tick:
	// the same buffers must be reused, not reallocated.
	firstEvBuf, firstTxnBuf := msg.buf.txns[0].buf, msg.buf
	for i := range msg.buf.txns {
		w.putEventBuf(msg.buf.txns[i].buf)
	}
	w.putTxnBuf(msg.buf)

	d.dispatch(2, tick[:2], 43)
	msg2 := <-w.ch
	if msg2.buf != firstTxnBuf {
		t.Error("txn buffer was not recycled")
	}
	recycled := false
	for i := range msg2.buf.txns {
		if msg2.buf.txns[i].buf == firstEvBuf {
			recycled = true
		}
	}
	if !recycled {
		t.Error("event batch buffer was not recycled")
	}
}

func TestFnv1aMatchesStdlib(t *testing.T) {
	keys := []string{"", "·", "1|0|7|", "abc|def|", "||9|", "long-partition-key-with-many-bytes|123|"}
	for i := 0; i < 50; i++ {
		keys = append(keys, fmt.Sprintf("%d|%d|%d|", i, i%2, i*7))
	}
	for _, k := range keys {
		h := fnv.New32a()
		_, _ = h.Write([]byte(k))
		if want := h.Sum32(); fnv1a(k) != want {
			t.Errorf("fnv1a(%q) = %d, want %d", k, fnv1a(k), want)
		}
	}
}
