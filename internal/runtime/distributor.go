package runtime

import (
	"sync"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// controlKey is the partition of events carrying none of the key
// attributes — typically global context triggers.
const controlKey = "·"

// partition is one entry of the distributor's persistent partition
// table. The entry interns the materialized key string, caches the
// owning worker (FNV-1a over the key bytes, stable for the run), and
// holds the batch buffer being filled during the current tick.
//
// batch is distributor-only state; state is worker-only state (the
// channel send of the partition's first transaction happens-before
// the worker's first access, and the distributor never touches it),
// so the struct needs no lock.
type partition struct {
	key    string
	worker *worker
	batch  *eventBuf
	state  *partitionState
}

// eventBuf is a recyclable per-partition batch buffer. Buffers flow
// distributor → worker → back to the owning worker's free list, so
// steady-state dispatch allocates nothing.
type eventBuf struct{ evs []*event.Event }

// txnBuf carries all of one tick's transactions bound for one
// worker: the batched hand-off sends one txnMsg per worker per tick
// instead of one channel send per partition.
type txnBuf struct{ txns []partTxn }

// partTxn is one stream transaction: a partition and its tick batch.
type partTxn struct {
	part *partition
	buf  *eventBuf
}

// txnMsg is the distributor → worker hand-off unit: one application
// timestamp and every transaction of that tick owned by the worker.
// span is non-nil on sampled ticks (stage tracing): the worker stamps
// ring wait and execution onto it and finishes it.
type txnMsg struct {
	ts   event.Time
	buf  *txnBuf
	span *telemetry.Span
}

// bufStack is a tiny lock-guarded free list. Each worker owns one per
// buffer kind: the distributor pops, the worker pushes back after the
// transaction executes. Unlike sync.Pool the stack is never drained
// by GC, keeping the steady state deterministically allocation-free.
type bufStack[T any] struct {
	mu    sync.Mutex
	items []*T
}

func (s *bufStack[T]) pop() *T {
	s.mu.Lock()
	var it *T
	if n := len(s.items); n > 0 {
		it = s.items[n-1]
		s.items[n-1] = nil
		s.items = s.items[:n-1]
	}
	s.mu.Unlock()
	return it
}

func (s *bufStack[T]) push(it *T) {
	s.mu.Lock()
	s.items = append(s.items, it)
	s.mu.Unlock()
}

// schemaKeyPlan caches, per event schema, the positional indices of
// the partition key attributes (-1 for attributes the schema lacks),
// so key extraction never hashes an attribute-name map per event.
// Whether an event has any key attribute is schema-static, hence the
// precomputed control-partition verdict.
type schemaKeyPlan struct {
	idx  []int
	none bool
}

// keyer renders partition keys into a reusable byte scratch. It is
// the schema-plan half of the event distributor, shared between the
// legacy distributor (which also interns partitions) and the sharded
// router (which only hashes the key to pick a shard).
type keyer struct {
	partBy []string
	plans  map[*event.Schema]*schemaKeyPlan
	keyBuf []byte
}

func newKeyer(partBy []string) keyer {
	return keyer{partBy: partBy, plans: make(map[*event.Schema]*schemaKeyPlan)}
}

func (k *keyer) plan(s *event.Schema) *schemaKeyPlan {
	if p, ok := k.plans[s]; ok {
		return p
	}
	p := &schemaKeyPlan{idx: make([]int, len(k.partBy)), none: true}
	for i, attr := range k.partBy {
		p.idx[i] = s.FieldIndex(attr)
		if p.idx[i] >= 0 {
			p.none = false
		}
	}
	k.plans[s] = p
	return p
}

// render materializes the event's partition key into the reused
// scratch and returns it, or nil for events carrying no key attribute
// (the control partition). The returned slice is valid until the next
// render call.
func (k *keyer) render(ev *event.Event) []byte {
	kp := k.plan(ev.Schema)
	if kp.none {
		return nil
	}
	b := k.keyBuf[:0]
	for _, i := range kp.idx {
		if i >= 0 {
			b = ev.At(i).Append(b)
		}
		b = append(b, '|')
	}
	k.keyBuf = b
	return b
}

// pickIdx maps a key hash onto n execution units. When n is a power
// of two the modulo reduces to a bitmask (x % 2^k == x & (2^k-1) for
// unsigned x), so the assignment is bit-identical to the modulo form
// — only cheaper. Note that assignment is a pure function of (hash,
// n): resizing the worker or shard count reassigns almost every
// partition, so n must stay fixed for the lifetime of a run (it does:
// both pools are sized at Run start and never resized).
func pickIdx(h uint32, n int, mask uint32) uint32 {
	if mask != 0 {
		return h & mask
	}
	return h % uint32(n)
}

// powerOfTwoMask returns n-1 when n is a power of two, else 0.
func powerOfTwoMask(n int) uint32 {
	if n > 0 && n&(n-1) == 0 {
		return uint32(n - 1)
	}
	return 0
}

// distributor implements the paper's event distributor (§6, Fig. 8)
// as a zero-allocation hot path: partition keys are rendered into a
// reusable byte scratch, interned in a persistent partition table,
// and each tick's transactions reach the workers as one batched
// message per worker.
type distributor struct {
	keyer
	workers []*worker
	wmask   uint32 // len(workers)-1 when a power of two, else 0

	table   map[string]*partition
	active  []*partition // partitions hit this tick, in first-seen order
	pending []*txnBuf    // per-worker transaction batch, parallel to workers
	control *partition   // lazily interned control partition

	// rm, when set by the engine, carries the partition-count gauge
	// (the distributor runs on the Run goroutine — single writer).
	rm *runMetrics

	// stages samples tick timelines (nil = no stage clocks at all);
	// decodeNs/queueNs carry the current batch's decode and queue-wait
	// stamps, and pipeline marks the batched ingest path (the only one
	// with those stages). All dispatch-goroutine-owned.
	stages   *telemetry.StageTracer
	decodeNs int64
	queueNs  int64
	pipeline bool
}

func newDistributor(workers []*worker, partBy []string) *distributor {
	return &distributor{
		keyer:   newKeyer(partBy),
		workers: workers,
		wmask:   powerOfTwoMask(len(workers)),
		table:   make(map[string]*partition),
		pending: make([]*txnBuf, len(workers)),
	}
}

// partitionOf interns the event's partition and returns its table
// entry. On the steady-state path (known schema, known partition) it
// allocates nothing: the key is rendered into the reused scratch and
// found via the allocation-free map[string] byte-slice probe; the
// key string is materialized once, when the partition is first seen.
func (d *distributor) partitionOf(ev *event.Event) *partition {
	b := d.render(ev)
	if b == nil {
		return d.controlPartition()
	}
	if p, ok := d.table[string(b)]; ok {
		return p
	}
	return d.intern(string(b))
}

func (d *distributor) controlPartition() *partition {
	if d.control == nil {
		d.control = d.intern(controlKey)
	}
	return d.control
}

// intern adds a partition entry; called once per distinct key.
func (d *distributor) intern(key string) *partition {
	p := &partition{
		key:    key,
		worker: d.workers[pickIdx(fnv1a(key), len(d.workers), d.wmask)],
	}
	d.table[key] = p
	if d.rm != nil {
		d.rm.partitions.Set(int64(len(d.table)))
	}
	return p
}

// dispatch partitions one tick's events and hands each worker at
// most one batched message. Partitions are visited in first-seen
// order — deterministic for in-order input — and transactions of the
// same partition always reach the same worker in timestamp order,
// the §6.2 scheduler correctness condition.
//
// On sampled ticks (stage tracing) each dispatched message carries a
// span stamped with the batch's decode/queue shares and this tick's
// routing time; arrival doubles as the route-start instant, so
// sampling adds exactly one extra clock read to the dispatch path.
func (d *distributor) dispatch(ts event.Time, evs []*event.Event, arrival int64) {
	sampled := d.stages.SampleTick()
	for _, ev := range evs {
		ev.Arrival = arrival
		p := d.partitionOf(ev)
		if p.batch == nil {
			p.batch = p.worker.getEventBuf()
			d.active = append(d.active, p)
		}
		p.batch.evs = append(p.batch.evs, ev)
	}
	for _, p := range d.active {
		w := p.worker
		tb := d.pending[w.id]
		if tb == nil {
			tb = w.getTxnBuf()
			d.pending[w.id] = tb
		}
		tb.txns = append(tb.txns, partTxn{part: p, buf: p.batch})
		p.batch = nil
	}
	d.active = d.active[:0]
	var now int64
	if sampled {
		now = time.Now().UnixNano()
	}
	for i, tb := range d.pending {
		if tb != nil {
			var sp *telemetry.Span
			if sampled {
				sp = d.stages.Start(int64(ts), i)
				if d.pipeline {
					sp.Stamp(telemetry.StageDecode, d.decodeNs)
					sp.Stamp(telemetry.StageQueue, d.queueNs)
				}
				sp.Stamp(telemetry.StageRoute, now-arrival)
				sp.MarkAt(now)
			}
			d.workers[i].ch <- txnMsg{ts: ts, buf: tb, span: sp}
			d.workers[i].sentTS = int64(ts)
			d.pending[i] = nil
		}
	}
}

// fnv1a is an inlined allocation-free FNV-1a over the key bytes; it
// replaces the heap-allocated hash/fnv digest of earlier revisions
// and computes the identical hash, so worker assignment is unchanged.
func fnv1a(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}
