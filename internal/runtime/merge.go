// Ordered output merge layer for the sharded runtime (DESIGN.md
// §3.6). Shards derive events concurrently; when the run has a
// streaming consumer (Config.OnOutput), this thin layer restores a
// deterministic cross-shard order: derived events are delivered
// sorted by (derivation tick, shard id, per-shard emission order),
// from a single merger goroutine.
//
// Release rule: a tick t may be released once every live shard has
// completed t, because a shard pushes all of tick t's output runs
// before publishing completed ≥ t, and the merger always snapshots
// completion marks BEFORE draining the output rings — so by the time
// it sees min(completed) ≥ t, every run of tick t is already in its
// pending queues. Release timing therefore never affects the output
// order, only its batching.
package runtime

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// outRun is one shard's derived events for one tick, in emission
// order. span, non-nil on sampled ticks, is finished by the merger at
// release time, stamping the merge hold-back (shard completion →
// ordered release); the SPSC push/pop pair carries the span writes.
type outRun struct {
	ts   event.Time
	evs  []*event.Event
	span *telemetry.Span
}

// mergeRingDepth bounds how many unreleased ticks' runs a shard may
// buffer before it backpressures (blocks in flushTick).
const mergeRingDepth = 64

type outputMerger struct {
	shards []*engineShard
	out    func(*event.Event)

	rings []*spscRing[outRun]         // shard → merger
	free  []*spscRing[[]*event.Event] // merger → shard (slice recycling)

	pending [][]outRun // per shard, in push (= tick) order
	heads   []int      // consumed prefix of pending[i]

	wakeCh chan struct{} // nudged by shards after each grant / at exit
	doneCh chan struct{} // closed when the merger has drained everything

	// released publishes the newest tick whose output is fully
	// emitted (MinInt64 before the first release). Shards read it to
	// bound derived-event arena reclamation: an event buffered here
	// must outlive its tick's ordered release, which can trail the
	// producing shard's own completion by however far the slowest
	// shard lags — beyond the watermark slack (DESIGN.md §3.8).
	released atomic.Int64
}

func newOutputMerger(shards []*engineShard, out func(*event.Event)) *outputMerger {
	m := &outputMerger{
		shards:  shards,
		out:     out,
		rings:   make([]*spscRing[outRun], len(shards)),
		free:    make([]*spscRing[[]*event.Event], len(shards)),
		pending: make([][]outRun, len(shards)),
		heads:   make([]int, len(shards)),
		wakeCh:  make(chan struct{}, 1),
		doneCh:  make(chan struct{}),
	}
	for i := range shards {
		m.rings[i] = newSpscRing[outRun](mergeRingDepth)
		m.free[i] = newSpscRing[[]*event.Event](mergeRingDepth)
		// Pre-seed the recycling ring so the first few ticks' emission
		// buffers come from the pool instead of the heap; after that
		// the released slices themselves keep the pool primed.
		for n := 0; n < 4; n++ {
			m.free[i].tryPush(make([]*event.Event, 0, 32))
		}
	}
	m.released.Store(math.MinInt64)
	return m
}

// reset rearms a cached merger for the next run. The caller guarantees
// the previous merger goroutine has exited (waitDone returned) and all
// shard rings are drained.
func (m *outputMerger) reset() {
	m.doneCh = make(chan struct{})
	m.released.Store(math.MinInt64)
	select { // drop a stale wake token from the previous run
	case <-m.wakeCh:
	default:
	}
	for i := range m.pending {
		m.pending[i] = m.pending[i][:0]
		m.heads[i] = 0
	}
}

// flushTick moves the shard worker's buffered emissions for tick ts
// into the merge ring. Called by the shard goroutine after each tick.
// A tick that emitted nothing has no hold-back to measure: its span
// (if sampled) finishes immediately, merge stage unobserved.
func (m *outputMerger) flushTick(s *engineShard, ts event.Time, sp *telemetry.Span) {
	evs := s.w.mergeSink
	if len(evs) == 0 {
		sp.Finish()
		return
	}
	m.rings[s.id].push(outRun{ts: ts, evs: evs, span: sp})
	// Wake after every push, not just per message: a single grant can
	// carry more ticks than the ring holds, and the merger must drain
	// (into its pending queues) for the next push to unblock.
	m.wake()
	if next, ok := m.free[s.id].tryPop(); ok {
		s.w.mergeSink = next
	} else {
		s.w.mergeSink = nil // next emit allocates a fresh run
	}
}

// wake nudges the merger; safe from any shard (non-blocking send to a
// one-token channel: a pending token already guarantees a new pass).
func (m *outputMerger) wake() {
	select {
	case m.wakeCh <- struct{}{}:
	default:
	}
}

// waitDone blocks until the merger has released every run.
func (m *outputMerger) waitDone() { <-m.doneCh }

func (m *outputMerger) loop() {
	defer close(m.doneCh)
	for {
		// Snapshot progress FIRST (see the release rule above), then
		// drain, then release.
		safe := int64(math.MaxInt64)
		alive := false
		for _, s := range m.shards {
			if s.done.Load() {
				continue
			}
			alive = true
			if c := s.completed.Load(); c < safe {
				safe = c
			}
		}
		for i, r := range m.rings {
			for {
				run, ok := r.tryPop()
				if !ok {
					break
				}
				m.pending[i] = append(m.pending[i], run)
			}
		}
		m.release(safe)
		if !alive {
			// All shards exited before the snapshot; everything they
			// ever pushed was drained above and released (safe is
			// MaxInt64 with no live shards). Done.
			return
		}
		<-m.wakeCh
	}
}

// release emits every pending run with ts ≤ safe, globally ordered by
// (tick, shard id); within a run, emission order is preserved.
func (m *outputMerger) release(safe int64) {
	for {
		best := -1
		var bestTS event.Time
		for i := range m.pending {
			if m.heads[i] >= len(m.pending[i]) {
				continue
			}
			ts := m.pending[i][m.heads[i]].ts
			if int64(ts) > safe {
				continue
			}
			if best < 0 || ts < bestTS {
				best, bestTS = i, ts
			}
		}
		if best < 0 {
			if safe != math.MaxInt64 && safe > m.released.Load() {
				m.released.Store(safe)
			}
			return
		}
		run := m.pending[best][m.heads[best]]
		m.pending[best][m.heads[best]] = outRun{}
		m.heads[best]++
		if m.heads[best] == len(m.pending[best]) {
			m.pending[best] = m.pending[best][:0]
			m.heads[best] = 0
		}
		if run.span != nil {
			// The span's mark is the shard's exec-end instant; the
			// delta is how long ordering held the output back.
			run.span.StampSince(telemetry.StageMerge, time.Now().UnixNano())
			run.span.Finish()
		}
		for _, ev := range run.evs {
			m.out(ev)
		}
		// Hand the consumed slice back to the shard for reuse; if its
		// free ring is momentarily full the slice is simply dropped
		// for GC (output batches allocate anyway).
		m.free[best].tryPush(run.evs[:0])
	}
}
