package runtime

import (
	"testing"
)

// BenchmarkShardRouter measures the router's per-event serial work in
// isolation: partition key rendering into the reused scratch plus the
// FNV-1a hash and the bitmask shard pick. This is everything the
// single-threaded stage of the sharded runtime does per event besides
// one slice append, so it bounds the design's serial fraction. Must
// report 0 allocs/op.
func BenchmarkShardRouter(b *testing.B) {
	r := &shardedRun{
		keyer:  newKeyer([]string{"xway", "dir", "seg"}),
		shards: make([]*engineShard, 4),
		smask:  powerOfTwoMask(4),
	}
	ev := distEvent(1, 3, 1, 42, 7)
	r.shardOf(ev) // warm the schema key plan

	b.ReportAllocs()
	b.ResetTimer()
	var si uint32
	for i := 0; i < b.N; i++ {
		si = r.shardOf(ev)
	}
	if int(si) >= len(r.shards) {
		b.Fatalf("bad shard %d", si)
	}
}

// BenchmarkSpscRing measures the ring's steady-state hand-off cost:
// one push + one pop per iteration with both sides hot (never full,
// never empty past the yield phase). Must report 0 allocs/op.
func BenchmarkSpscRing(b *testing.B) {
	r := newSpscRing[*shardMsg](shardRingDepth)
	msg := &shardMsg{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.push(msg)
		if _, ok := r.pop(); !ok {
			b.Fatal("ring closed")
		}
	}
}
