package runtime

import (
	"math"
	gort "runtime"
	"testing"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// BenchmarkShardRouter measures the router's per-event serial work in
// isolation: partition key rendering into the reused scratch plus the
// FNV-1a hash and the bitmask shard pick. This is everything the
// single-threaded stage of the sharded runtime does per event besides
// one slice append, so it bounds the design's serial fraction. Must
// report 0 allocs/op.
func BenchmarkShardRouter(b *testing.B) {
	r := &shardedRun{
		keyer:  newKeyer([]string{"xway", "dir", "seg"}),
		shards: make([]*engineShard, 4),
		smask:  powerOfTwoMask(4),
	}
	ev := distEvent(1, 3, 1, 42, 7)
	r.shardOf(ev) // warm the schema key plan

	b.ReportAllocs()
	b.ResetTimer()
	var si uint32
	for i := 0; i < b.N; i++ {
		si = r.shardOf(ev)
	}
	if int(si) >= len(r.shards) {
		b.Fatalf("bad shard %d", si)
	}
}

// BenchmarkEngineShardedTraced measures the sharded runtime's steady-
// state per-tick cost end to end — router, SPSC hand-off, shard-side
// partition interning and kernel execution — with the stage tracer on
// at sample rate 1, so every tick carries a span through every stage.
// (The root package's BenchmarkEngineSharded is the whole-run scaling
// series; this one isolates the pipeline steady state.) The stream is
// position reports in the default (clear) context, so plans stay
// suspended and the measurement isolates pipeline cost from
// derivation cost. Steady state must report 0 allocs/op with tracing
// enabled (the ci.sh bench guard enforces this); the tracer's
// per-stage quantiles are re-exported as custom metrics, which
// scripts/bench.sh renders into BENCH_stages.json.
func BenchmarkEngineShardedTraced(b *testing.B) {
	const nShards, parts, tickSize = 4, 24, 512
	m, err := model.CompileSource(trafficSrc)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		b.Fatal(err)
	}
	tr := telemetry.NewStageTracer(1, 256)
	eng, err := New(Config{Plan: p, PartitionBy: []string{"seg"}, Shards: nShards, Stages: tr})
	if err != nil {
		b.Fatal(err)
	}

	// The routing + shard plumbing of runSharded, without the ingest
	// goroutine: the benchmark loop plays the router, re-timing one
	// preallocated tick per iteration.
	rm := newRunMetrics(eng, nShards)
	r := &shardedRun{
		e:       eng,
		rm:      rm,
		keyer:   newKeyer(eng.cfg.PartitionBy),
		smask:   powerOfTwoMask(nShards),
		pending: make([]*shardMsg, nShards),
		start:   time.Now(),
		slack:   eng.reclaimSlack(),
		stages:  rm.stages,
	}
	r.ctrlShard = pickIdx(fnv1a(controlKey), nShards, r.smask)
	r.watermark.Store(math.MinInt64)
	r.health = registerRunHealth(nil, "shards", func() int64 { return 0 }, func() int64 { return 0 })
	r.shards = make([]*engineShard, nShards)
	for i := range r.shards {
		r.shards[i] = newEngineShard(eng, i, rm)
	}
	for _, s := range r.shards {
		r.wg.Add(1)
		go func(s *engineShard) {
			defer r.wg.Done()
			s.loop()
		}(s)
	}

	sch, ok := m.Registry.Lookup("PositionReport")
	if !ok {
		b.Fatal("no PositionReport schema")
	}
	evs := make([]*event.Event, tickSize)
	for i := range evs {
		evs[i] = event.MustNew(sch, 1,
			event.Int64(int64(i)), event.Int64(int64(i%parts)), event.Int64(1), event.Int64(1))
	}
	batch := &event.Batch{Events: evs}
	retime := func(ts event.Time) {
		for _, ev := range evs {
			ev.Time = event.Point(ts)
		}
	}
	// await blocks until every shard has executed tick ts. The events
	// are shared across iterations, so the next retime must not touch
	// them while a shard still reads them; each op therefore measures
	// the full route → ring → execute traversal of one tick.
	await := func(ts event.Time) {
		for _, s := range r.shards {
			for s.sentTS == int64(ts) && s.completed.Load() < int64(ts) {
				gort.Gosched()
			}
		}
	}
	// Warm until the steady state settles: partition tables and plan
	// instances, grant buffers, the span pool, and the histograms'
	// lazily-allocated buckets (tail latencies populate new buckets
	// for a while).
	const warm = 300
	for i := 0; i < warm; i++ {
		ts := event.Time(i + 1)
		retime(ts)
		if err := r.routeBatch(batch); err != nil {
			b.Fatal(err)
		}
		await(ts)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := event.Time(i + warm + 1)
		retime(ts)
		if err := r.routeBatch(batch); err != nil {
			b.Fatal(err)
		}
		await(ts)
	}
	b.StopTimer()
	for _, s := range r.shards {
		s.in.close()
	}
	r.wg.Wait()

	b.ReportMetric(tickSize, "events/op")
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		snap := tr.StageSnapshot(st)
		if snap.Count == 0 {
			continue
		}
		b.ReportMetric(float64(snap.Quantile(0.5)), st.String()+"_p50_ns")
		b.ReportMetric(float64(snap.Quantile(0.95)), st.String()+"_p95_ns")
		b.ReportMetric(float64(snap.Quantile(0.99)), st.String()+"_p99_ns")
	}
}

// BenchmarkSpscRing measures the ring's steady-state hand-off cost:
// one push + one pop per iteration with both sides hot (never full,
// never empty past the yield phase). Must report 0 allocs/op.
func BenchmarkSpscRing(b *testing.B) {
	r := newSpscRing[*shardMsg](shardRingDepth)
	msg := &shardMsg{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.push(msg)
		if _, ok := r.pop(); !ok {
			b.Fatal("ring closed")
		}
	}
}
