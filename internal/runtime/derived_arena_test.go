// Derived-event arena lifetime and differential tests (DESIGN.md
// §3.8). The model chains two derivations — A projects to B, and a
// SEQ joins pairs of B — so a derived B allocated at tick t is still
// referenced by downstream pattern state until the horizon passes.
// With DerivedChunkEvents shrunk to 8 the arena recycles slabs many
// times mid-run, which makes any premature reclamation visible as a
// corrupted or missing C output against the heap-allocated baseline.
package runtime

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
)

const chainSrc = `
EVENT A(k int, v int)
EVENT B(k int, v int)
EVENT C(k int, v1 int, v2 int)

CONTEXT on DEFAULT

DERIVE B(a.k, a.v)
PATTERN A a
WITHIN 8

DERIVE C(b1.k, b1.v, b2.v)
PATTERN SEQ(B b1, B b2)
WHERE b1.k = b2.k
WITHIN 8
`

// chainEngine builds an engine over chainSrc with a deliberately tiny
// derived arena; mutate customizes the config (workers/shards/arena).
func chainEngine(t testing.TB, mutate func(*Config)) (*Engine, *model.Model) {
	t.Helper()
	m, err := model.CompileSource(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Plan:               p,
		PartitionBy:        []string{"k"},
		CollectOutputs:     true,
		DerivedChunkEvents: 8,
	}
	mutate(&cfg)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

// chainStream emits one A per key per tick: every tick derives three
// B events, and each B joins with up to 8 predecessors of its key.
func chainStream(t testing.TB, m *model.Model, ticks int) *event.SliceSource {
	sb := streamBuilder{t: t, m: m}
	for i := 1; i <= ticks; i++ {
		for k := int64(0); k < 3; k++ {
			sb.add("A", event.Time(i), k, int64(i*10)+k)
		}
	}
	return sb.source()
}

// TestDerivedChainSurvivesReclamation is the arena lifetime proof: a
// chained derived event must stay valid until the watermark releases
// its tick, even while the tiny slabs recycle continuously. The
// arena run must produce byte-identical outputs to the heap run (where
// the GC guarantees liveness), and the arena must actually have
// reclaimed slabs mid-run — otherwise the test proved nothing.
func TestDerivedChainSurvivesReclamation(t *testing.T) {
	const ticks = 120
	cases := []struct {
		name   string
		mutate func(*Config)
		// reclaimed reads the total recycled-slab count off the cached
		// run scaffolding after the run.
		reclaimed func(e *Engine) uint64
	}{
		{"workers=2", func(c *Config) { c.Workers = 2 },
			func(e *Engine) uint64 { return sumReclaimed(e.legacyRun.workers) }},
		{"shards=2", func(c *Config) { c.Shards = 2 },
			func(e *Engine) uint64 { return sumReclaimed(e.shardedCached.workers) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			arena, m := chainEngine(t, tc.mutate)
			stA, err := arena.Run(chainStream(t, m, ticks))
			if err != nil {
				t.Fatal(err)
			}
			heap, mh := chainEngine(t, func(c *Config) {
				tc.mutate(c)
				c.DisableDerivedArena = true
			})
			stH, err := heap.Run(chainStream(t, mh, ticks))
			if err != nil {
				t.Fatal(err)
			}
			a, h := sortedRenderings(stA), sortedRenderings(stH)
			if len(a) != len(h) {
				t.Fatalf("arena %d outputs, heap %d", len(a), len(h))
			}
			for i := range a {
				if a[i] != h[i] {
					t.Fatalf("output %d differs:\narena: %s\nheap:  %s", i, a[i], h[i])
				}
			}
			// ~8 C per B per key: a healthy run derives far more events
			// than one slab holds.
			if len(a) < ticks {
				t.Fatalf("suspiciously few outputs: %d", len(a))
			}
			if n := tc.reclaimed(arena); n == 0 {
				t.Fatal("arena never reclaimed a slab; lifetime was not exercised")
			}
		})
	}
}

func sumReclaimed(ws []*worker) uint64 {
	var n uint64
	for _, w := range ws {
		n += w.wm.derivedReclaimed.Value()
	}
	return n
}

// TestRunReuseIdenticalOutputs covers the cached-run scaffolding: the
// same Engine must be re-runnable, with the second run starting from
// fresh logical state (same outputs, same event count) while reusing
// rings, workers and arenas.
func TestRunReuseIdenticalOutputs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"sync", func(c *Config) { c.DisablePipeline = true }},
		{"workers=2", func(c *Config) { c.Workers = 2 }},
		{"shards=2", func(c *Config) { c.Shards = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, m := chainEngine(t, tc.mutate)
			st1, err := eng.Run(chainStream(t, m, 60))
			if err != nil {
				t.Fatal(err)
			}
			out1 := sortedRenderings(st1)
			st2, err := eng.Run(chainStream(t, m, 60))
			if err != nil {
				t.Fatal(err)
			}
			out2 := sortedRenderings(st2)
			if len(out1) == 0 {
				t.Fatal("no outputs")
			}
			if len(out1) != len(out2) {
				t.Fatalf("run 1: %d outputs, run 2: %d", len(out1), len(out2))
			}
			for i := range out1 {
				if out1[i] != out2[i] {
					t.Fatalf("output %d differs across runs:\n1: %s\n2: %s", i, out1[i], out2[i])
				}
			}
			if st1.Events != st2.Events || st1.Ticks != st2.Ticks {
				t.Fatalf("stats drifted: events %d→%d ticks %d→%d",
					st1.Events, st2.Events, st1.Ticks, st2.Ticks)
			}
		})
	}
}
