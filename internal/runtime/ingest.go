// Ingest pipeline (DESIGN.md §3.4): batch decode on its own
// goroutine, a bounded read-ahead ring to the dispatch loop, and
// watermark-driven reclamation of the source's event slab arena.
//
// The watermark protocol has one writer and one reader. The dispatch
// goroutine computes the safe reclamation bound after each batch —
// it alone knows exactly what has been dispatched where — and
// publishes it; the decode goroutine reads the published bound
// before producing the next batch and tells the source's arena to
// recycle every slab entirely below it. Workers participate with a
// single atomic store per transaction message: the timestamp they
// last completed. No per-event accounting exists anywhere.
//
// Safety: a worker processes its messages in timestamp order, so its
// unprocessed events all carry timestamps above its completed mark;
// events dispatched after the bound was computed carry timestamps
// above the last dispatched tick, which also caps the bound; and
// pattern state (partials, negation buffers, pending matches) only
// references events within 2·horizon of a completed transaction,
// which the slack term covers. Aggregation and projection copy
// attribute values, never retain event pointers.
package runtime

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
)

// defaultReadAhead is the ring capacity when Config.ReadAhead is 0:
// enough for decode to absorb dispatch jitter, small enough that at
// most a few thousand events are in flight between the stages.
const defaultReadAhead = 4

// batchRing is the bounded hand-off between the decode goroutine
// (producer) and the dispatch loop (consumer): decoded batches flow
// through data, consumed batch structs return through free, and done
// aborts both directions on a dispatch error. The free side is what
// bounds decode read-ahead — with all batch structs in flight, the
// decoder blocks in acquire until dispatch releases one.
type batchRing struct {
	data chan *event.Batch
	free chan *event.Batch
	done chan struct{}
	// all owns the ring's batch structs so arm can rebuild the free
	// side across runs, keeping each batch's grown Events capacity.
	all []*event.Batch
}

func newBatchRing(n int) *batchRing {
	r := &batchRing{all: make([]*event.Batch, n)}
	for i := range r.all {
		r.all[i] = &event.Batch{}
	}
	r.arm()
	return r
}

// arm readies the ring for a run. Only the channels are rebuilt (the
// data channel is closed by the decoder at end of stream; the done
// channel by an abort); the batch structs and their event-slice
// capacity carry over, so a cached run's decode path does not regrow
// its read-ahead buffers.
func (r *batchRing) arm() {
	n := len(r.all)
	r.data = make(chan *event.Batch, n)
	r.free = make(chan *event.Batch, n)
	r.done = make(chan struct{})
	for _, b := range r.all {
		b.Events = b.Events[:0]
		r.free <- b
	}
}

// acquire blocks for a recycled batch struct; false after abort.
func (r *batchRing) acquire() (*event.Batch, bool) {
	select {
	case b := <-r.free:
		return b, true
	case <-r.done:
		return nil, false
	}
}

// send hands a filled batch to the dispatcher; false after abort.
func (r *batchRing) send(b *event.Batch) bool {
	select {
	case r.data <- b:
		return true
	case <-r.done:
		return false
	}
}

// release returns a consumed batch to the decoder.
func (r *batchRing) release(b *event.Batch) {
	b.Events = b.Events[:0]
	select {
	case r.free <- b:
	default:
	}
}

// abort unblocks both sides after a dispatch error.
func (r *batchRing) abort() { close(r.done) }

// run is one execution's mutable state, shared by the synchronous
// and pipelined ingest paths: the metric set, the worker pool, the
// distributor, and the dispatch-side ordering and pacing state.
type run struct {
	e       *Engine
	rm      *runMetrics
	workers []*worker
	wg      sync.WaitGroup
	dist    *distributor
	start   time.Time

	appStart    event.Time
	appStartSet bool
	lastTS      event.Time
	haveLast    bool

	// watermark is the published reclamation bound: every event
	// ending strictly before it is unreferenced. Written by the
	// dispatch goroutine, read by the decode goroutine.
	watermark atomic.Int64

	// ring is the read-ahead ring of the batch path, rearmed (not
	// rebuilt) across cached runs.
	ring *batchRing

	// health backs the run's /healthz probes (runtime health.go).
	health *runHealth

	// dur is the run's durability context (durable.go); nil without
	// Config.DurableDir. Rebuilt per Run by openDurable.
	dur *durableState
}

func (e *Engine) newRun() *run {
	r := e.legacyRun
	if r == nil {
		r = &run{e: e, rm: newRunMetrics(e, e.cfg.Workers)}
		r.workers = make([]*worker, e.cfg.Workers)
		for i := range r.workers {
			r.workers[i] = newWorker(e, i, r.rm)
		}
		r.dist = newDistributor(r.workers, e.cfg.PartitionBy)
		r.dist.rm = r.rm
		r.dist.stages = r.rm.stages
		e.legacyRun = r
	} else {
		r.reset()
	}
	r.start = time.Now()
	spawn := func(w *worker) {
		defer r.wg.Done()
		w.loop()
	}
	for _, w := range r.workers {
		r.wg.Add(1)
		go spawn(w)
	}
	r.rm.register(e.cfg.Telemetry, e, r.workers)
	r.watermark.Store(math.MinInt64)
	if e.cfg.Health != nil || r.health == nil {
		workers := r.workers
		r.health = registerRunHealth(e.cfg.Health, "workers",
			func() int64 {
				max := int64(math.MinInt64)
				for _, w := range workers {
					if c := w.completed.Load(); c > max {
						max = c
					}
				}
				return max
			},
			func() int64 {
				var n int64
				for _, w := range workers {
					n += w.queueDepth()
				}
				return n
			})
	} else {
		r.health.reset()
	}
	return r
}

// dispatchTick paces (when configured) and dispatches one tick.
// Pacing lives here, on the dispatch side, so the decode goroutine
// keeps parsing ahead during replay gaps. With durability on, the
// tick's batch is appended to the WAL before any worker sees it —
// except during recovery replay, when the tick is already logged and
// pacing, checkpointing and fault injection are suppressed.
func (r *run) dispatchTick(ts event.Time, evs []*event.Event) error {
	ds := r.dur
	live := ds == nil || !ds.replaying
	if ds != nil && live {
		if ct := r.e.cfg.testCrashTick; ct > 0 && int64(ts) >= ct {
			return errSimulatedCrash
		}
		if err := ds.appendTick(ts, evs); err != nil {
			return err
		}
	}
	r.rm.ticks.Inc()
	if p := r.e.cfg.Pacing; p > 0 && live {
		if !r.appStartSet {
			r.appStart, r.appStartSet = ts, true
		}
		target := r.start.Add(time.Duration(ts-r.appStart) * p)
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
	}
	r.dist.dispatch(ts, evs, time.Now().UnixNano())
	r.health.routed.Store(int64(ts))
	if ds != nil && live {
		return r.maybeCheckpoint(ts)
	}
	return nil
}

// reset rearms a cached run for its next execution: metrics rewound,
// workers and partition state restored to their pre-run condition.
// The partition table and all buffer capacity are retained — that
// retention is what run reuse amortizes. Only called after a clean
// run (a failed run drops the cache).
func (r *run) reset() {
	r.rm.reset()
	r.rm.ringDepth = nil // the batch path re-sets it against its ring
	r.appStartSet = false
	r.haveLast = false
	r.dist.pipeline = false
	for _, w := range r.workers {
		w.resetForRun()
	}
	for _, p := range r.dist.table {
		p.batch = nil
		if p.state != nil {
			p.state.reset(r.e)
		}
	}
}

// shutdown stops the workers with a sentinel message (the channels
// stay open so a cached run can reuse them) and waits for drain.
func (r *run) shutdown() {
	for _, w := range r.workers {
		w.ch <- txnMsg{}
	}
	r.wg.Wait()
}

// finish surfaces the run error or the source's deferred error, then
// collects Stats. A clean finish closes the WAL; a failed run leaves
// the durable files exactly as the sync policy last flushed them (the
// crash image recovery consumes).
func (r *run) finish(src any, runErr error) (*Stats, error) {
	if runErr == nil {
		if es, ok := src.(interface{ Err() error }); ok {
			runErr = es.Err()
		}
	}
	if runErr == nil {
		runErr = r.dur.closeWAL()
	}
	r.health.finish(runErr)
	if runErr != nil {
		// An aborted run can leave transactions stranded in worker
		// buffers; drop the scaffolding rather than reason about its
		// partial state.
		r.e.legacyRun = nil
		return nil, runErr
	}
	st := r.e.collect(r.rm, r.workers, len(r.dist.table), time.Since(r.start))
	if r.dur != nil {
		st.ReplayedTicks = r.dur.replayed.Value()
	}
	return st, nil
}

// startDecode launches the decode goroutine: it fills recycled batch
// structs from src behind the read-ahead ring, reclaiming the
// source's event arena below the published watermark before each
// batch. Shared by the legacy and sharded pipelines. With stage
// tracing on, each batch carries its decode duration and ring-entry
// instant (two clock reads per batch — never per event).
func startDecode(ring *batchRing, src event.BatchSource, rec event.Reclaimer, watermark *atomic.Int64, rm *runMetrics, wg *sync.WaitGroup) {
	traced := rm.stages != nil
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ring.data)
		for {
			b, ok := ring.acquire()
			if !ok {
				return
			}
			if rec != nil {
				if wm := watermark.Load(); wm > math.MinInt64 {
					if freed := rec.ReclaimBefore(event.Time(wm)); freed > 0 {
						rm.reclaims.Add(uint64(freed))
					}
				}
			}
			var start int64
			if traced {
				start = time.Now().UnixNano()
			}
			more := src.NextBatch(b)
			if traced {
				b.ReadyNs = time.Now().UnixNano()
				b.DecodeNs = b.ReadyNs - start
			}
			if len(b.Events) > 0 && !ring.send(b) {
				return
			}
			if !more {
				return
			}
		}
	}()
}

// RunBatches executes the engine over a batch source with decode
// overlapped behind the read-ahead ring. Most callers use Run, which
// routes batch-capable sources here. With Shards > 1 the run executes
// on the sharded runtime (shard.go); otherwise on the legacy
// distributor + worker pool.
func (e *Engine) RunBatches(src event.BatchSource) (*Stats, error) {
	if e.cfg.DisablePipeline {
		return e.runSync(event.PerEvent(src))
	}
	if e.nShards > 1 {
		return e.runSharded(src)
	}
	r := e.newRun()
	if r.ring == nil {
		n := e.cfg.ReadAhead
		if n <= 0 {
			n = defaultReadAhead
		}
		r.ring = newBatchRing(n)
	} else {
		r.ring.arm()
	}
	ring := r.ring
	r.rm.ringDepth = func() int64 { return int64(len(ring.data)) }
	r.dist.pipeline = true
	rec, _ := src.(event.Reclaimer)
	slack := e.reclaimSlack()

	// Recovery runs before the decode stage starts: restore the latest
	// snapshot, re-dispatch the WAL tail through dispatchTick, then
	// open the WAL for this run's appends.
	if e.cfg.DurableDir != "" {
		if err := r.openDurable(); err != nil {
			r.shutdown()
			return r.finish(src, err)
		}
	}

	var decodeWG sync.WaitGroup
	startDecode(ring, src, rec, &r.watermark, r.rm, &decodeWG)

	traced := r.rm.stages != nil
	var runErr error
	for b := range ring.data {
		r.rm.batches.Inc()
		if traced {
			// The batch's queue wait and decode time attach to every
			// tick sampled out of it (batch-level attribution).
			r.dist.decodeNs = b.DecodeNs
			r.dist.queueNs = time.Now().UnixNano() - b.ReadyNs
		}
		if runErr = r.dispatchBatch(b); runErr != nil {
			ring.abort()
			break
		}
		ring.release(b)
		if rec != nil {
			r.publishWatermark(slack)
		}
	}
	for range ring.data { // drain after abort so the decoder unblocks
	}
	decodeWG.Wait()
	r.shutdown()
	return r.finish(src, runErr)
}

// dispatchBatch splits a batch into its ticks (runs of equal
// occurrence end time) and dispatches each, enforcing the §6.2
// ordering contract and the batch protocol's tick alignment. Ticks at
// or below the durability recovery point are dropped before the
// ordering checks: a recovered run re-feeds the stream from the
// start, and those ticks are below the replayed lastTS by design.
func (r *run) dispatchBatch(b *event.Batch) error {
	evs := b.Events
	for i := 0; i < len(evs); {
		ts := evs[i].End()
		j := i + 1
		for j < len(evs) && evs[j].End() == ts {
			j++
		}
		if r.dur.skipTick(ts) {
			i = j
			continue
		}
		if r.haveLast {
			if ts < r.lastTS {
				return fmt.Errorf("runtime: out-of-order event %v after t=%d", evs[i], r.lastTS)
			}
			if ts == r.lastTS && i == 0 {
				// Two same-timestamp transactions per partition would
				// apply context transitions mid-tick.
				return fmt.Errorf("runtime: batch source split tick t=%d across batches", ts)
			}
		}
		r.rm.events.Add(uint64(j - i))
		if err := r.dispatchTick(ts, evs[i:j]); err != nil {
			return err
		}
		r.lastTS, r.haveLast = ts, true
		i = j
	}
	return nil
}

// publishWatermark advances the reclamation bound. The minimum runs
// over the last dispatched tick and the completed mark of every
// worker that still holds undispatched-into-it work (sentTS is
// dispatcher-owned, so "holds work" is exact here; a lagging
// completed read only makes the bound conservative).
func (r *run) publishWatermark(slack int64) {
	if !r.haveLast {
		return
	}
	min := int64(r.lastTS)
	for _, w := range r.workers {
		if done := w.completed.Load(); w.sentTS > done && done < min {
			min = done
		}
	}
	if min == math.MinInt64 {
		return
	}
	if wm := min - slack; wm > r.watermark.Load() {
		r.watermark.Store(wm)
	}
}

// reclaimSlack is the retention horizon of downstream state in
// application time: partial matches live up to one pattern horizon,
// negation buffers and pending matches up to two (algebra/pattern.go
// keeps its negation ring 2·Horizon deep), so a completed
// transaction may still reference events up to 2·maxHorizon back.
// One extra unit makes the reclamation bound strict.
func (e *Engine) reclaimSlack() int64 {
	var h int64
	for _, qp := range e.cfg.Plan.Queries {
		if qp.Horizon > h {
			h = qp.Horizon
		}
	}
	return 2*h + 1
}
