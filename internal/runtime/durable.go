// Durable state integration (DESIGN.md §3.9): the runtime side of the
// durability subsystem. Input ticks are appended to the write-ahead
// log before dispatch, periodic tick-aligned snapshots serialize every
// partition's state at a quiesce barrier, and Run recovers from the
// latest snapshot plus the WAL tail before consuming live input.
//
// Recovery gives exactly-once state and at-least-once output: partition
// state is restored to the snapshot tick and never re-executes a tick
// it already covers, while outputs derived between the snapshot and the
// crash are emitted again during WAL replay (a non-transactional sink
// cannot distinguish "delivered before the crash" from "not"). Ticks at
// or below the recovery point arriving from the live source are
// dropped, so re-feeding the full input stream after a restart resumes
// instead of double-processing.
//
// Everything here is gated on Config.DurableDir: with durability off,
// the dispatch paths see one nil check per tick and allocate nothing.
package runtime

import (
	"errors"
	"fmt"
	"math"
	gort "runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/caesar-cep/caesar/internal/durability"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/telemetry"
	"github.com/caesar-cep/caesar/internal/wire"
)

// defaultCheckpointEvery is the snapshot interval, in dispatched
// ticks, when Config.CheckpointEvery is 0.
const defaultCheckpointEvery = 512

// maxHealthyBacklog is the WAL backlog (bytes appended since the last
// checkpoint truncation) above which the durability probe degrades.
const maxHealthyBacklog = 64 << 20

// errSimulatedCrash aborts a run at a configured tick boundary; the
// recovery tests inject it to model a crash with the WAL flushed up to
// (but excluding) the crash tick.
var errSimulatedCrash = errors.New("runtime: simulated crash (test fault injection)")

// durableState is one run's durability context: the open WAL, the
// checkpoint cadence, the recovery dedup bound, and the metric
// surface. Owned by the dispatch/router goroutine except for the
// atomics the health probe reads.
type durableState struct {
	e           *Engine
	dir         string
	wal         *durability.WAL
	every       int
	fingerprint string

	// replaying suppresses WAL appends, pacing and checkpointing while
	// recovery re-dispatches the WAL tail (those ticks are already
	// logged).
	replaying bool
	// skipUntil is the recovery point: live ticks at or below it were
	// already processed via snapshot restore or WAL replay and are
	// dropped by the dispatch loops.
	skipUntil event.Time
	haveSkip  bool

	// ticksSince counts live ticks since the last checkpoint (atomic:
	// the health probe reads it from the scrape goroutine).
	ticksSince atomic.Int64
	// lastCkpt is the tick of the last snapshot written or restored
	// (MinInt64 before any).
	lastCkpt atomic.Int64

	// scratch carries the checkpoint's partition list across
	// invocations so the barrier path does not regrow it.
	scratch []partSnap
	// lastSyncs tracks the WAL's cumulative sync count for delta
	// publishing into walSyncs.
	lastSyncs uint64

	walFrames   telemetry.Counter
	walSyncs    telemetry.Counter
	walBacklog  telemetry.Gauge
	fsync       telemetry.Histogram
	replayed    telemetry.Counter
	dups        telemetry.Counter
	checkpoints telemetry.Counter
	ckptBytes   telemetry.Gauge
	ckptDur     telemetry.Histogram
}

// partSnap pairs a partition key with its state for checkpointing.
type partSnap struct {
	key string
	ps  *partitionState
}

func (e *Engine) newDurableState() *durableState {
	ds := &durableState{
		e:           e,
		dir:         e.cfg.DurableDir,
		every:       e.cfg.CheckpointEvery,
		fingerprint: e.durabilityFingerprint(),
	}
	if ds.every <= 0 {
		ds.every = defaultCheckpointEvery
	}
	ds.lastCkpt.Store(math.MinInt64)
	return ds
}

// walSyncEvery maps Config.WALSync onto the WAL's sync policy: 0 and 1
// sync after every tick append, N > 1 every N appends, negative leaves
// flushing to the OS.
func (e *Engine) walSyncEvery() int {
	switch s := e.cfg.WALSync; {
	case s < 0:
		return durability.SyncAsync
	case s <= 1:
		return durability.SyncPerTick
	default:
		return s
	}
}

// durabilityFingerprint identifies the snapshot-compatible engine
// shape: a snapshot restores only into an engine that builds the same
// groups, units and kernel programs. The shard/worker count is
// deliberately absent — sections are keyed by partition and rerouted
// by hash on restore, so a snapshot taken under one topology restores
// under another.
func (e *Engine) durabilityFingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "caesar-snap-v1|mode=%s|sharing=%t|fusion=%t|partition=%s",
		e.cfg.Mode, e.cfg.Sharing, e.cfg.Fusion, strings.Join(e.cfg.PartitionBy, ","))
	o := e.cfg.Plan.Opts
	fmt.Fprintf(&b, "|opts=%t,%t,%d,%t,%t",
		o.PushDown, o.EagerFilters, o.DefaultHorizon, o.DisableNegIndex, o.LegacyKernel)
	for gi := range e.groups {
		b.WriteString("|g")
		for i := range e.groups[gi].units {
			u := &e.groups[gi].units[i]
			fmt.Fprintf(&b, "|%s:%x:%d", u.qp.Query.Name, u.mask, u.qp.Horizon)
			for _, q := range u.fused {
				b.WriteByte('+')
				b.WriteString(q.Name)
			}
		}
	}
	return b.String()
}

// registerMetrics attaches the durability counters to the registry
// (replace semantics per run, like every other run metric).
func (ds *durableState) registerMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Register("caesar_wal_frames_total", "WAL tick frames appended", &ds.walFrames)
	reg.Register("caesar_wal_syncs_total", "WAL fsync batches issued", &ds.walSyncs)
	reg.Register("caesar_wal_backlog_bytes", "bytes appended to the WAL since the last checkpoint truncation", &ds.walBacklog)
	reg.Register("caesar_wal_fsync_ns", "WAL fsync latency", &ds.fsync)
	reg.Register("caesar_wal_replayed_ticks_total", "WAL ticks re-dispatched during recovery", &ds.replayed)
	reg.Register("caesar_wal_duplicate_ticks_total", "input ticks dropped as already covered by recovery", &ds.dups)
	reg.Register("caesar_checkpoint_total", "snapshots written", &ds.checkpoints)
	reg.Register("caesar_checkpoint_bytes", "size of the last snapshot written", &ds.ckptBytes)
	reg.Register("caesar_checkpoint_write_ns", "snapshot serialize-and-write latency", &ds.ckptDur)
}

// registerHealth adds the durability probe: degraded while checkpoints
// fall behind the configured cadence or the WAL backlog grows past the
// truncation threshold.
func (ds *durableState) registerHealth(h *telemetry.Health, rh *runHealth) {
	if h == nil {
		return
	}
	every := int64(ds.every)
	h.Set("durability", func() telemetry.ProbeResult {
		backlog := ds.walBacklog.Value()
		age := ds.ticksSince.Load()
		switch {
		case !rh.done.Load() && age > 3*every:
			return telemetry.ProbeResult{OK: false,
				Detail: fmt.Sprintf("checkpoint overdue: %d ticks since last (interval %d)", age, every)}
		case backlog > maxHealthyBacklog:
			return telemetry.ProbeResult{OK: false,
				Detail: fmt.Sprintf("wal backlog %d bytes since last checkpoint", backlog)}
		default:
			return telemetry.ProbeResult{OK: true,
				Detail: fmt.Sprintf("last checkpoint t=%d, wal backlog %d bytes", ds.lastCkpt.Load(), backlog)}
		}
	})
}

// appendTick logs one tick's input batch before it is dispatched. The
// frame must be durable (per the sync policy) before any worker can
// act on the events — that ordering is what makes the WAL a redo log.
func (ds *durableState) appendTick(ts event.Time, evs []*event.Event) error {
	if err := ds.wal.Append(ts, evs); err != nil {
		return err
	}
	ds.walFrames.Inc()
	if s := ds.wal.Syncs(); s != ds.lastSyncs {
		ds.walSyncs.Add(s - ds.lastSyncs)
		ds.lastSyncs = s
	}
	ds.walBacklog.Set(ds.wal.Backlog())
	return nil
}

// tickDone advances the checkpoint cadence; true when the caller
// should checkpoint at this tick.
func (ds *durableState) tickDone() bool {
	return ds.ticksSince.Add(1) >= int64(ds.every)
}

// checkpoint serializes the quiesced partition states, writes the
// snapshot atomically and truncates the WAL to the oldest snapshot
// still retained. The caller holds the quiesce barrier: every
// dispatched tick ≤ ts is fully executed and its outputs delivered.
func (ds *durableState) checkpoint(ts event.Time, parts []partSnap) error {
	start := time.Now()
	sort.Slice(parts, func(i, j int) bool { return parts[i].key < parts[j].key })
	secs := make([]durability.Section, 0, len(parts))
	for _, p := range parts {
		data, err := savePartitionState(p.ps)
		if err != nil {
			return fmt.Errorf("runtime: checkpoint t=%d partition %q: %w", ts, p.key, err)
		}
		secs = append(secs, durability.Section{Key: "p:" + p.key, Data: data})
	}
	n, err := durability.WriteSnapshot(ds.dir, ts, ds.fingerprint, secs)
	if err != nil {
		return fmt.Errorf("runtime: checkpoint t=%d: %w", ts, err)
	}
	// Truncate only up to the oldest retained snapshot, not ts: if the
	// snapshot just written turns out corrupt at recovery time,
	// LoadLatestSnapshot falls back to the older image, and that
	// fallback is sound only while the WAL still holds every frame
	// after the older image's tick.
	bound := ts
	if oldest, ok := durability.OldestSnapshotTick(ds.dir); ok && oldest < bound {
		bound = oldest
	}
	if err := ds.wal.Truncate(bound); err != nil {
		return fmt.Errorf("runtime: wal truncate to t=%d: %w", bound, err)
	}
	ds.checkpoints.Inc()
	ds.ckptBytes.Set(n)
	ds.ckptDur.ObserveDuration(time.Since(start))
	ds.lastCkpt.Store(int64(ts))
	ds.walBacklog.Set(ds.wal.Backlog())
	ds.ticksSince.Store(0)
	return nil
}

// closeWAL closes the log after a clean run. Failed runs leave the
// files exactly as the sync policy last flushed them — that is the
// crash image recovery consumes.
func (ds *durableState) closeWAL() error {
	if ds == nil || ds.wal == nil {
		return nil
	}
	return ds.wal.Close()
}

// recover drives the common recovery sequence: load the latest usable
// snapshot, restore it through the runtime-specific hook, re-dispatch
// the WAL tail, then open the WAL for the run's own appends.
// restoredTo advances the caller's ordering clock to the snapshot
// tick; replay dispatches one recovered tick on the caller's path.
func (ds *durableState) recover(
	restore func(*durability.Snapshot) error,
	restoredTo func(event.Time),
	replay func(event.Time, []*event.Event) error,
) error {
	snap, err := durability.LoadLatestSnapshot(ds.dir, ds.fingerprint)
	if err != nil {
		return err
	}
	if snap != nil {
		if err := restore(snap); err != nil {
			return err
		}
		ds.skipUntil, ds.haveSkip = snap.Tick, true
		ds.lastCkpt.Store(int64(snap.Tick))
		restoredTo(snap.Tick)
	}
	ds.replaying = true
	last, ok, err := durability.ReplayWAL(ds.dir, ds.e.m.Registry, func(tick event.Time, evs []*event.Event) error {
		if ds.haveSkip && tick <= ds.skipUntil {
			ds.dups.Inc()
			return nil
		}
		if err := replay(tick, evs); err != nil {
			return err
		}
		ds.replayed.Inc()
		return nil
	})
	ds.replaying = false
	if err != nil {
		return err
	}
	if ok && (!ds.haveSkip || last > ds.skipUntil) {
		ds.skipUntil, ds.haveSkip = last, true
	}
	wal, err := durability.OpenWAL(ds.dir, ds.e.walSyncEvery())
	if err != nil {
		return err
	}
	ds.wal = wal
	ds.lastSyncs = wal.Syncs()
	wal.FsyncObserve = func(ns int64) { ds.fsync.Observe(ns) }
	return nil
}

// skipTick reports whether a live tick is at or below the recovery
// point (already processed via snapshot restore or WAL replay). The
// check runs before the ordering guards: recovered runs re-feed the
// stream from the start, and those ticks are below lastTS by design.
func (ds *durableState) skipTick(ts event.Time) bool {
	if ds == nil || !ds.haveSkip || ts > ds.skipUntil {
		return false
	}
	ds.dups.Inc()
	return true
}

// savePartitionState serializes one partition: per group, the context
// vector, the per-context open timestamps, and every plan instance's
// operator state. Events bound inside partial matches intern through
// one table per partition, so aliasing across instances survives.
func savePartitionState(ps *partitionState) ([]byte, error) {
	var body wire.Enc
	tab := wire.NewEventTable()
	body.Uvarint(uint64(len(ps.groups)))
	for _, g := range ps.groups {
		body.U64(g.vec.Bits())
		body.Time(g.vec.Time())
		body.Uvarint(uint64(len(g.openedAt)))
		for _, t := range g.openedAt {
			body.Time(t)
		}
		body.Uvarint(uint64(len(g.insts)))
		for _, is := range g.insts {
			if err := is.inst.Save(&body, tab); err != nil {
				return nil, err
			}
		}
	}
	var out wire.Enc
	tab.Encode(&out)
	out.Raw(body.Bytes())
	return out.Bytes(), nil
}

// loadPartitionState restores a section written by savePartitionState
// into a freshly built partition of the same engine shape, refreshing
// the activity flags and metric baselines the way resets do.
func (e *Engine) loadPartitionState(ps *partitionState, data []byte) error {
	d := wire.NewDec(data)
	evs := wire.DecodeEventTable(d, e.m.Registry)
	if d.Err() != nil {
		return d.Err()
	}
	bd := wire.NewDec(d.Raw())
	if d.Err() != nil {
		return d.Err()
	}
	if n := bd.Uvarint(); n != uint64(len(ps.groups)) {
		return fmt.Errorf("runtime: snapshot has %d groups, engine builds %d", n, len(ps.groups))
	}
	for _, g := range ps.groups {
		bits := bd.U64()
		at := bd.Time()
		if bd.Err() != nil {
			return bd.Err()
		}
		g.vec.Restore(bits, at)
		if n := bd.Uvarint(); n != uint64(len(g.openedAt)) {
			return fmt.Errorf("runtime: snapshot has %d contexts, engine builds %d", n, len(g.openedAt))
		}
		for i := range g.openedAt {
			g.openedAt[i] = bd.Time()
		}
		if n := bd.Uvarint(); n != uint64(len(g.insts)) {
			return fmt.Errorf("runtime: snapshot has %d instances, engine builds %d", n, len(g.insts))
		}
		for _, is := range g.insts {
			if err := is.inst.Load(bd, evs); err != nil {
				return err
			}
			is.wasActive = is.inst.Active()
			is.lastStats = is.inst.PatternStats()
			is.lastFoot = is.inst.Footprint()
			is.lastChunks = is.inst.ArenaChunks()
		}
	}
	if err := bd.Err(); err != nil {
		return err
	}
	if bd.Rem() != 0 {
		return fmt.Errorf("runtime: snapshot partition section has %d trailing bytes", bd.Rem())
	}
	return nil
}

// sectionKey extracts the partition key of a snapshot section.
func sectionKey(sec durability.Section) (string, error) {
	key, ok := strings.CutPrefix(sec.Key, "p:")
	if !ok {
		return "", fmt.Errorf("runtime: unknown snapshot section %q", sec.Key)
	}
	return key, nil
}

// ---- legacy pipeline (run) ----

// openDurable wires recovery and the WAL into a legacy-pipeline run.
// Called from the dispatch goroutine after the workers are spawned and
// before the decode stage starts; restored state reaches the workers
// with the happens-before of their first channel receive.
func (r *run) openDurable() error {
	ds := r.e.newDurableState()
	r.dur = ds
	ds.registerMetrics(r.e.cfg.Telemetry)
	ds.registerHealth(r.e.cfg.Health, r.health)
	return ds.recover(
		r.restoreSnapshot,
		func(t event.Time) { r.lastTS, r.haveLast = t, true },
		func(tick event.Time, evs []*event.Event) error {
			r.rm.events.Add(uint64(len(evs)))
			if err := r.dispatchTick(tick, evs); err != nil {
				return err
			}
			r.lastTS, r.haveLast = tick, true
			return nil
		},
	)
}

// restoreSnapshot routes every section to its partition, building the
// partition (and its state) exactly as first dispatch would.
func (r *run) restoreSnapshot(snap *durability.Snapshot) error {
	for _, sec := range snap.Sections {
		key, err := sectionKey(sec)
		if err != nil {
			return err
		}
		var p *partition
		if key == controlKey {
			p = r.dist.controlPartition()
		} else if q, ok := r.dist.table[key]; ok {
			p = q
		} else {
			p = r.dist.intern(key)
		}
		ps := p.state
		if ps == nil {
			ps = p.worker.newPartition(key)
			p.state = ps
		}
		if err := r.e.loadPartitionState(ps, sec.Data); err != nil {
			return fmt.Errorf("runtime: restore partition %q: %w", key, err)
		}
	}
	return nil
}

// maybeCheckpoint snapshots the run every CheckpointEvery ticks: the
// worker pool is quiesced (completed catches sentTS — outputs are
// emitted synchronously on worker goroutines, so completion implies
// delivery), then every partition serializes on this goroutine.
func (r *run) maybeCheckpoint(ts event.Time) error {
	ds := r.dur
	if !ds.tickDone() {
		return nil
	}
	for _, w := range r.workers {
		if w.sentTS == math.MinInt64 {
			continue
		}
		for w.completed.Load() < w.sentTS {
			gort.Gosched()
		}
	}
	snaps := ds.scratch[:0]
	for key, p := range r.dist.table {
		if p.state != nil {
			snaps = append(snaps, partSnap{key, p.state})
		}
	}
	ds.scratch = snaps[:0]
	return ds.checkpoint(ts, snaps)
}

// ---- sharded runtime (shardedRun) ----

// openDurable wires recovery and the WAL into a sharded run. Called
// from the router goroutine after the shard goroutines are spawned;
// restored state reaches each shard with the happens-before of its
// first ring pop.
func (r *shardedRun) openDurable() error {
	ds := r.e.newDurableState()
	r.dur = ds
	ds.registerMetrics(r.e.cfg.Telemetry)
	ds.registerHealth(r.e.cfg.Health, r.health)
	return ds.recover(
		r.restoreSnapshot,
		func(t event.Time) { r.lastTS, r.haveLast = t, true },
		r.replayTick,
	)
}

// restoreSnapshot routes every section to its owning shard by the same
// hash the router uses, so restored partitions land exactly where live
// events will find them — under any shard count.
func (r *shardedRun) restoreSnapshot(snap *durability.Snapshot) error {
	for _, sec := range snap.Sections {
		key, err := sectionKey(sec)
		if err != nil {
			return err
		}
		s := r.shards[pickIdx(fnv1a(key), len(r.shards), r.smask)]
		p, ok := s.table[key]
		if !ok {
			p = s.intern(key)
		}
		if key == controlKey && s.control == nil {
			s.control = p
		}
		ps := p.state
		if ps == nil {
			ps = s.w.newPartition(key)
			p.state = ps
		}
		if err := r.e.loadPartitionState(ps, sec.Data); err != nil {
			return fmt.Errorf("runtime: restore partition %q: %w", key, err)
		}
	}
	return nil
}

// replayTick routes one recovered tick to the shards: Arrival stamped,
// grants flushed per tick, no pacing, no stage spans, no WAL append
// (the tick is already in the log).
func (r *shardedRun) replayTick(ts event.Time, evs []*event.Event) error {
	r.rm.events.Add(uint64(len(evs)))
	r.rm.ticks.Inc()
	arrival := time.Now().UnixNano()
	for _, ev := range evs {
		ev.Arrival = arrival
		si := r.shardOf(ev)
		msg := r.pending[si]
		if msg == nil {
			msg = r.grant(si)
			r.pending[si] = msg
		}
		msg.evs = append(msg.evs, ev)
	}
	r.flush()
	r.lastTS, r.haveLast = ts, true
	r.health.routed.Store(int64(ts))
	return nil
}

// maybeCheckpoint snapshots a sharded run every CheckpointEvery ticks.
// Quiesce works in three steps: flush the pending grants; push a mark
// grant to every shard the current tick never touched (an idle shard
// never advances completed, which would stall both this barrier and
// the merger's release scan); spin until every shard's completed mark
// and — when outputs merge — the merger's released tick reach ts, so
// every output at or below ts is delivered before state serializes.
func (r *shardedRun) maybeCheckpoint(ts event.Time) error {
	ds := r.dur
	if !ds.tickDone() {
		return nil
	}
	r.flush()
	for _, s := range r.shards {
		if s.sentTS < int64(ts) {
			msg := r.grant(uint32(s.id))
			msg.mark, msg.hasMark = int64(ts), true
			s.sentTS = int64(ts)
			s.in.push(msg)
		}
	}
	for _, s := range r.shards {
		for s.completed.Load() < s.sentTS {
			gort.Gosched()
		}
	}
	if m := r.mrg; m != nil {
		for m.released.Load() < int64(ts) {
			m.wake()
			gort.Gosched()
		}
	}
	snaps := ds.scratch[:0]
	for _, s := range r.shards {
		for key, p := range s.table {
			if p.state != nil {
				snaps = append(snaps, partSnap{key, p.state})
			}
		}
	}
	ds.scratch = snaps[:0]
	return ds.checkpoint(ts, snaps)
}
