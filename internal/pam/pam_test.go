package pam

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/runtime"
)

func compilePAM(t testing.TB, replicas int) *model.Model {
	t.Helper()
	m, err := model.CompileSource(ModelSource(replicas))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelSourceCompiles(t *testing.T) {
	for _, replicas := range []int{1, 5, 20} {
		m := compilePAM(t, replicas)
		want := 4 + 2*replicas
		if len(m.Queries) != want {
			t.Errorf("replicas=%d: queries = %d, want %d", replicas, len(m.Queries), want)
		}
	}
	if m := compilePAM(t, -1); len(m.Queries) != 6 {
		t.Error("replica clamp broken")
	}
}

func TestGenerateValidation(t *testing.T) {
	m := compilePAM(t, 1)
	bad := DefaultConfig()
	bad.Subjects = 20
	if _, err := Generate(bad, m.Registry); err == nil {
		t.Error("too many subjects accepted")
	}
	bad = DefaultConfig()
	bad.Every = 0
	if _, err := Generate(bad, m.Registry); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := Generate(DefaultConfig(), event.NewRegistry()); err == nil {
		t.Error("foreign registry accepted")
	}
}

func TestGenerateStream(t *testing.T) {
	m := compilePAM(t, 1)
	cfg := DefaultConfig()
	cfg.Duration = 600
	evs, err := Generate(cfg, m.Registry)
	if err != nil {
		t.Fatal(err)
	}
	wantPerSubject := int(cfg.Duration / cfg.Every)
	if len(evs) != wantPerSubject*cfg.Subjects {
		t.Fatalf("events = %d, want %d", len(evs), wantPerSubject*cfg.Subjects)
	}
	last := event.Time(-1)
	subjects := map[int64]bool{}
	for _, e := range evs {
		if e.End() < last {
			t.Fatal("stream not sorted")
		}
		last = e.End()
		s, _ := e.Get("subj")
		subjects[s.Int] = true
		hr, _ := e.Get("hr")
		if hr.Int < 40 || hr.Int > 220 {
			t.Fatalf("implausible heart rate %d", hr.Int)
		}
	}
	if len(subjects) != cfg.Subjects {
		t.Errorf("subjects seen = %d", len(subjects))
	}
}

func TestEndToEndActivityMonitoring(t *testing.T) {
	m := compilePAM(t, 2)
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := runtime.New(runtime.Config{
		Plan:           p,
		PartitionBy:    PartitionBy(),
		Workers:        4,
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Duration = 900
	evs, err := Generate(cfg, m.Registry)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(event.NewSliceSource(evs))
	if err != nil {
		t.Fatal(err)
	}
	if st.PerType["Alert"] == 0 || st.PerType["Summary"] == 0 {
		t.Fatalf("per-type = %v", st.PerType)
	}
	if st.Transitions == 0 || st.SuspendedSkips == 0 {
		t.Errorf("transitions=%d suspensions=%d", st.Transitions, st.SuspendedSkips)
	}
	if st.Partitions != cfg.Subjects {
		t.Errorf("partitions = %d, want %d", st.Partitions, cfg.Subjects)
	}
	// Alerts are sustained-peak pairs: both readings >= 160.
	for _, e := range st.Outputs {
		if e.TypeName() != "Alert" {
			continue
		}
		hr, _ := e.Get("hr")
		if hr.Int < 160 {
			t.Errorf("alert below peak threshold: %v", e)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	m := compilePAM(t, 1)
	cfg := DefaultConfig()
	cfg.Duration = 300
	a, _ := Generate(cfg, m.Registry)
	b, _ := Generate(cfg, m.Registry)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("event %d differs", i)
		}
	}
}
