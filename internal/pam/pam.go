// Package pam is the physical activity monitoring substrate: a
// synthetic stand-in for the PAMAP2 dataset (paper §7.1, [26] — 14
// subjects, 1 h 15 min of activity reports). The generator produces
// per-subject heart-rate/cadence readings driven by scripted activity
// schedules; the CAESAR workload derives alerts and summaries that
// are only relevant in particular activity contexts (resting /
// exercising / peak effort).
//
// Substitution note (see DESIGN.md): the real dataset is a 1.6 GB
// sensor trace; the CAESAR experiments over it only vary the number
// of event queries, which this synthetic generator supports
// identically.
package pam

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/caesar-cep/caesar/internal/event"
)

// Subjects is the number of monitored people in PAMAP2.
const Subjects = 14

// ModelSource renders the activity-monitoring CAESAR model with the
// processing workload replicated `replicas` times (distinct
// constants, so replicas never merge).
func ModelSource(replicas int) string {
	if replicas < 1 {
		replicas = 1
	}
	var b strings.Builder
	b.WriteString(`# Physical activity monitoring (PAMAP2-like)
EVENT Reading(subj int, hr int, cadence int, sec int)
EVENT Alert(subj int, hr int, sec int, q int)
EVENT Summary(subj int, cadence int, sec int, q int)

CONTEXT resting DEFAULT
CONTEXT exercising
CONTEXT peak

SWITCH CONTEXT exercising
PATTERN Reading r
WHERE r.hr >= 100
CONTEXT resting

SWITCH CONTEXT resting
PATTERN Reading r
WHERE r.hr < 100
CONTEXT exercising

INITIATE CONTEXT peak
PATTERN Reading r
WHERE r.hr >= 160
CONTEXT exercising

TERMINATE CONTEXT peak
PATTERN Reading r
WHERE r.hr < 150
CONTEXT peak
`)
	for i := 0; i < replicas; i++ {
		// Sustained-peak alert: two peak readings in a row from the
		// same subject.
		fmt.Fprintf(&b, `
DERIVE Alert(r2.subj, r2.hr, r2.sec, %d)
PATTERN SEQ(Reading r1, Reading r2)
WHERE r1.subj = r2.subj AND r1.hr >= 160 AND r2.hr >= 160
WITHIN 30
CONTEXT peak
`, i)
		// Cadence summaries while exercising.
		fmt.Fprintf(&b, `
DERIVE Summary(r.subj, r.cadence, r.sec, %d)
PATTERN Reading r
WHERE r.cadence > %d
CONTEXT exercising
`, 1000+i, 60+i%20)
	}
	return b.String()
}

// PartitionBy returns the stream partition key: one subject.
func PartitionBy() []string { return []string{"subj"} }

// Config parameterizes the generator.
type Config struct {
	Subjects int
	// Duration in seconds (PAMAP2 covers 4500 s).
	Duration int64
	// Every is the reading interval in seconds.
	Every int64
	Seed  int64
}

// DefaultConfig is a laptop-scale setup: all 14 subjects, compressed
// duration.
func DefaultConfig() Config {
	return Config{Subjects: Subjects, Duration: 1200, Every: 5, Seed: 1}
}

// Generate produces the activity stream, sorted by time. The
// registry must come from the compiled ModelSource model.
func Generate(cfg Config, reg *event.Registry) ([]*event.Event, error) {
	if cfg.Subjects < 1 || cfg.Subjects > Subjects {
		return nil, fmt.Errorf("pam: subjects must be in 1..%d", Subjects)
	}
	if cfg.Duration < 1 || cfg.Every < 1 {
		return nil, fmt.Errorf("pam: duration and interval must be positive")
	}
	rd, ok := reg.Lookup("Reading")
	if !ok {
		return nil, fmt.Errorf("pam: registry lacks Reading (use the ModelSource registry)")
	}
	var out []*event.Event
	for s := 0; s < cfg.Subjects; s++ {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(s)*1_000_003 + 7))
		out = append(out, genSubject(cfg, rd, s, rng)...)
	}
	event.SortByTime(out)
	return out, nil
}

// genSubject scripts a subject's session: rest, then interval
// training (exercise blocks with peak bursts), then rest.
func genSubject(cfg Config, rd *event.Schema, subj int, rng *rand.Rand) []*event.Event {
	var out []*event.Event
	// Each subject exercises in the middle [20%, 85%) of the session,
	// with peak bursts every 5th block of 60 s.
	exStart := cfg.Duration / 5
	exEnd := cfg.Duration * 85 / 100
	for t := int64(0); t < cfg.Duration; t += cfg.Every {
		var hr, cad int64
		switch {
		case t < exStart || t >= exEnd:
			hr = 60 + int64(rng.Intn(20))
			cad = int64(rng.Intn(10))
		case (t/60)%5 == int64(subj%5): // this subject's peak block
			hr = 160 + int64(rng.Intn(25))
			cad = 90 + int64(rng.Intn(30))
		default:
			hr = 110 + int64(rng.Intn(35))
			cad = 60 + int64(rng.Intn(40))
		}
		out = append(out, event.MustNew(rd, event.Time(t),
			event.Int64(int64(subj+1)), event.Int64(hr), event.Int64(cad), event.Int64(t)))
	}
	return out
}
