package core

import (
	"strings"
	"testing"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

const coreSrc = `
EVENT In(k int, v int, sec int)
EVENT Out(k int, v int)

CONTEXT off DEFAULT
CONTEXT on

SWITCH CONTEXT on
PATTERN In i
WHERE i.v > 100
CONTEXT off

SWITCH CONTEXT off
PATTERN In i
WHERE i.v < 10
CONTEXT on

DERIVE Out(i.k, i.v)
PATTERN In i
CONTEXT on

DERIVE Out(i.k, i.v)
PATTERN In i
CONTEXT on
`

func coreStream(t *testing.T, eng *Engine, n int) *event.SliceSource {
	t.Helper()
	in, ok := eng.Registry().Lookup("In")
	if !ok {
		t.Fatal("no In schema")
	}
	var evs []*event.Event
	for i := 0; i < n; i++ {
		v := int64(50)
		switch {
		case i == 1:
			v = 200 // switch on
		case i == n-2:
			v = 5 // switch off
		}
		evs = append(evs, event.MustNew(in, event.Time(i),
			event.Int64(1), event.Int64(v), event.Int64(int64(i))))
	}
	return event.NewSliceSource(evs)
}

func TestNewEngineFromSource(t *testing.T) {
	eng, err := NewEngineFromSource(coreSrc, Config{
		PartitionBy:    []string{"k"},
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Model() == nil || eng.Plan() == nil || eng.Registry() == nil {
		t.Fatal("accessors broken")
	}
	st, err := eng.Run(coreStream(t, eng, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Window (1, 8]: events at t=2..8 are in the "on" context, each
	// deriving two Out events (two identical queries, unshared).
	if st.PerType["Out"] != 14 {
		t.Fatalf("outputs = %v", st.PerType)
	}
}

func TestNewEngineParseError(t *testing.T) {
	if _, err := NewEngineFromSource("EVENT broken(", Config{}); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestConfigConflicts(t *testing.T) {
	m, err := model.CompileSource(coreSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(m, Config{ContextIndependent: true, Sharing: true}); err == nil {
		t.Error("CI+sharing accepted")
	}
	if _, err := NewEngine(m, Config{ContextIndependent: true, DisablePushDown: true}); err == nil {
		t.Error("CI+no-pushdown accepted")
	}
}

func TestSharingStats(t *testing.T) {
	shared, err := NewEngineFromSource(coreSrc, Config{Sharing: true, PartitionBy: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	ss := shared.SharingStats()
	// The two identical Out queries merge: 4 queries -> 3 units.
	if ss.Before != 4 || ss.After != 3 || ss.MaxMembers != 2 {
		t.Errorf("sharing stats = %+v", ss)
	}
	plain, err := NewEngineFromSource(coreSrc, Config{PartitionBy: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	if ss := plain.SharingStats(); ss.Before != ss.After {
		t.Errorf("non-sharing stats shrank: %+v", ss)
	}
}

func TestSharedVsUnsharedOutputs(t *testing.T) {
	run := func(sharing bool) *eventStats {
		eng, err := NewEngineFromSource(coreSrc, Config{
			Sharing:        sharing,
			PartitionBy:    []string{"k"},
			CollectOutputs: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run(coreStream(t, eng, 10))
		if err != nil {
			t.Fatal(err)
		}
		return &eventStats{outs: st.PerType["Out"]}
	}
	if sharedOuts := run(true).outs; sharedOuts != 7 {
		t.Errorf("shared outputs = %d, want 7 (one per event in window)", sharedOuts)
	}
	if unsharedOuts := run(false).outs; unsharedOuts != 14 {
		t.Errorf("unshared outputs = %d, want 14", unsharedOuts)
	}
}

type eventStats struct{ outs uint64 }

func TestDisablePushDownStillCorrect(t *testing.T) {
	eng, err := NewEngineFromSource(coreSrc, Config{
		DisablePushDown: true,
		PartitionBy:     []string{"k"},
		CollectOutputs:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(coreStream(t, eng, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Single-event patterns cannot span the window boundary, so the
	// non-pushed plan derives the same outputs.
	if st.PerType["Out"] != 14 {
		t.Errorf("outputs = %v", st.PerType)
	}
	if st.SuspendedSkips != 0 {
		t.Error("non-pushed plans must not be suspended")
	}
}

func TestPacingConfig(t *testing.T) {
	eng, err := NewEngineFromSource(coreSrc, Config{
		PartitionBy: []string{"k"},
		Pacing:      2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := eng.Run(coreStream(t, eng, 20)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("paced run finished in %v", elapsed)
	}
}

func TestDefaultHorizonPropagates(t *testing.T) {
	eng, err := NewEngineFromSource(coreSrc, Config{DefaultHorizon: 1234})
	if err != nil {
		t.Fatal(err)
	}
	for _, qp := range eng.Plan().Queries {
		if qp.Horizon != 1234 {
			t.Errorf("%s horizon = %d", qp.Query.Name, qp.Horizon)
		}
	}
	if !strings.Contains(eng.Plan().Queries[0].Query.Name, "q") {
		t.Error("query names missing")
	}
}
