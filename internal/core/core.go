// Package core assembles the CAESAR system — the paper's primary
// contribution — out of its layers (paper Fig. 8): the specification
// layer (internal/lang, internal/model), the optimization layer
// (internal/plan, internal/optimizer) and the execution layer
// (internal/runtime). An Engine owns a compiled model, the optimized
// (or deliberately non-optimized) query plan, and a configured
// runtime; Run executes streams against it.
package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/optimizer"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/runtime"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

// Config selects the execution strategy and tuning knobs of an
// Engine. The zero value is the fully optimized context-aware
// configuration of the paper.
type Config struct {
	// ContextIndependent switches to the state-of-the-art baseline
	// (§7.3): all queries always on, contexts privately re-derived
	// per query.
	ContextIndependent bool
	// Sharing enables context workload sharing across overlapping
	// windows (§5.3). Context-aware mode only.
	Sharing bool
	// FusePatterns enables the MQO pattern-fusion pass (§5.3):
	// DERIVE queries with identical pattern, filters, horizon and
	// context mask share one pattern instance. Context-aware mode
	// only.
	FusePatterns bool
	// DisablePushDown keeps context windows above the pattern/filter
	// operators (the Fig. 6a / Fig. 11b non-optimized plan).
	// Context-aware mode only; the baseline is always non-pushed.
	DisablePushDown bool
	// PartitionBy names the stream partition key attributes.
	PartitionBy []string
	// Workers is the worker pool size (default 4). Ignored when the
	// sharded runtime is active (Shards > 1): each shard embeds its
	// own execution worker.
	Workers int
	// Shards selects the sharded multi-core runtime: N engine shards
	// each own a disjoint set of stream partitions end to end and
	// execute on their own goroutine, fed through lock-free SPSC
	// rings (see runtime.Config.Shards). 0 defaults to GOMAXPROCS
	// unless Workers is set explicitly; 1 selects the classic
	// distributor + worker-pool pipeline.
	Shards int
	// Pacing > 0 replays the stream in scaled real time: one
	// application time unit takes Pacing of wall time.
	Pacing time.Duration
	// ReadAhead bounds the ingest read-ahead ring (decoded batches the
	// decode goroutine may run ahead of dispatch); 0 means 4.
	ReadAhead int
	// DisablePipeline forces the legacy synchronous per-event ingest
	// loop instead of the pipelined batch path.
	DisablePipeline bool
	// DefaultHorizon overrides the default pattern matching horizon
	// (see plan.DefaultHorizon).
	DefaultHorizon int64
	// LegacyPatternKernel runs patterns on the preserved
	// per-combination kernel instead of the shared-run automaton
	// (differential testing and ablation benchmarks).
	LegacyPatternKernel bool
	// CollectOutputs retains derived events in Stats.Outputs.
	CollectOutputs bool
	// DisableDerivedArena constructs derived events on the GC heap
	// instead of the per-execution-unit slab arena (see
	// runtime.Config.DisableDerivedArena for the retention contract of
	// OnOutput events under the arena).
	DisableDerivedArena bool
	// DerivedChunkEvents sizes the derived-event arena's slabs, in
	// events; 0 picks the default.
	DerivedChunkEvents int
	// OnOutput receives every derived event; called concurrently
	// from worker goroutines.
	OnOutput func(*event.Event)
	// Telemetry, when non-nil, receives the runtime's live metric
	// families on each Run (see runtime.Config.Telemetry).
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records per-transaction spans and logs
	// transactions slower than its threshold.
	Tracer *telemetry.Tracer
	// Stages, when non-nil, samples tick timelines through every
	// pipeline stage into per-stage latency histograms and the
	// /tracez flight recorder (see runtime.Config.Stages).
	Stages *telemetry.StageTracer
	// Health, when non-nil, receives the run's liveness/readiness
	// probes for /healthz (see runtime.Config.Health).
	Health *telemetry.Health
	// DurableDir, when non-empty, makes runs crash-recoverable: input
	// batches append to a write-ahead log in this directory before
	// dispatch, partition state checkpoints there periodically, and a
	// later run over the same directory recovers and resumes (see
	// runtime.Config.DurableDir for the re-feed contract and delivery
	// semantics).
	DurableDir string
	// CheckpointEvery is the checkpoint cadence in ticks (0 = default;
	// see runtime.Config.CheckpointEvery).
	CheckpointEvery int
	// WALSync controls WAL fsync cadence: < 0 leaves syncing to the
	// OS, 0 or 1 fsyncs every tick, N > 1 every N ticks (see
	// runtime.Config.WALSync).
	WALSync int
}

// Summary renders the configuration as a flat string map — the
// config block of the /buildz admin endpoint.
func (c Config) Summary() map[string]string {
	mode := "context-aware"
	if c.ContextIndependent {
		mode = "context-independent"
	}
	s := map[string]string{
		"mode":         mode,
		"sharing":      strconv.FormatBool(c.Sharing),
		"fusion":       strconv.FormatBool(c.FusePatterns),
		"pushdown":     strconv.FormatBool(!c.DisablePushDown && !c.ContextIndependent),
		"partition_by": strings.Join(c.PartitionBy, ","),
		"workers":      strconv.Itoa(c.Workers),
		"shards":       strconv.Itoa(c.Shards),
		"read_ahead":   strconv.Itoa(c.ReadAhead),
		"pipeline":     strconv.FormatBool(!c.DisablePipeline),
	}
	if c.Pacing > 0 {
		s["pacing"] = c.Pacing.String()
	}
	if c.LegacyPatternKernel {
		s["legacy_kernel"] = "true"
	}
	if c.DisableDerivedArena {
		s["derived_arena"] = "false"
	}
	if c.Stages != nil {
		s["trace_sample_rate"] = strconv.Itoa(c.Stages.SampleRate())
	}
	if c.DurableDir != "" {
		s["durable_dir"] = c.DurableDir
		s["checkpoint_every"] = strconv.Itoa(c.CheckpointEvery)
		s["wal_sync"] = strconv.Itoa(c.WALSync)
	}
	return s
}

// Engine is a compiled, optimized, runnable CAESAR system.
type Engine struct {
	model *model.Model
	plan  *plan.Plan
	rt    *runtime.Engine
	cfg   Config
}

// NewEngine compiles the plan for a model and configures the runtime.
func NewEngine(m *model.Model, cfg Config) (*Engine, error) {
	opts := plan.Optimized()
	mode := runtime.ContextAware
	if cfg.ContextIndependent {
		opts = plan.Baseline()
		mode = runtime.ContextIndependent
		if cfg.Sharing || cfg.FusePatterns {
			return nil, fmt.Errorf("caesar: workload sharing and pattern fusion require context-aware mode")
		}
		if cfg.DisablePushDown {
			return nil, fmt.Errorf("caesar: the context-independent baseline is already non-pushed-down")
		}
	} else if cfg.DisablePushDown {
		opts = plan.NonOptimized()
	}
	opts.DefaultHorizon = cfg.DefaultHorizon
	opts.LegacyKernel = cfg.LegacyPatternKernel

	p, err := plan.Build(m, opts)
	if err != nil {
		return nil, err
	}
	rt, err := runtime.New(runtime.Config{
		Plan:            p,
		Mode:            mode,
		Sharing:         cfg.Sharing,
		Fusion:          cfg.FusePatterns,
		PartitionBy:     cfg.PartitionBy,
		Workers:         cfg.Workers,
		Shards:          cfg.Shards,
		Pacing:          cfg.Pacing,
		ReadAhead:       cfg.ReadAhead,
		DisablePipeline: cfg.DisablePipeline,
		CollectOutputs:  cfg.CollectOutputs,
		OnOutput:        cfg.OnOutput,
		Telemetry:       cfg.Telemetry,
		Tracer:          cfg.Tracer,
		Stages:          cfg.Stages,
		Health:          cfg.Health,

		DisableDerivedArena: cfg.DisableDerivedArena,
		DerivedChunkEvents:  cfg.DerivedChunkEvents,

		DurableDir:      cfg.DurableDir,
		CheckpointEvery: cfg.CheckpointEvery,
		WALSync:         cfg.WALSync,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{model: m, plan: p, rt: rt, cfg: cfg}, nil
}

// NewEngineFromSource parses, compiles and configures in one step.
func NewEngineFromSource(src string, cfg Config) (*Engine, error) {
	m, err := model.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return NewEngine(m, cfg)
}

// Model returns the compiled model.
func (e *Engine) Model() *model.Model { return e.model }

// Plan returns the compiled query plan.
func (e *Engine) Plan() *plan.Plan { return e.plan }

// Registry returns the model's event type registry; event sources
// must build events against it.
func (e *Engine) Registry() *event.Registry { return e.model.Registry }

// SharingStats reports how much the workload-sharing pass shrank the
// query set (1:1 when sharing is off).
func (e *Engine) SharingStats() optimizer.SharingStats {
	var qs []*model.Query
	for _, qp := range e.plan.Queries {
		qs = append(qs, qp.Query)
	}
	if e.cfg.Sharing {
		return optimizer.Stats(optimizer.ShareWorkload(qs), len(qs))
	}
	return optimizer.Stats(optimizer.NonShared(qs), len(qs))
}

// Run executes the engine over a source until exhaustion. Engines
// are reusable: each Run starts from fresh partition state. Sources
// that also implement event.BatchSource feed the pipelined ingest
// path (see runtime.Engine.Run).
func (e *Engine) Run(src event.Source) (*runtime.Stats, error) {
	return e.rt.Run(src)
}

// RunBatches executes the engine over a batch-oriented source, e.g. a
// linearroad.Stream that generates directly into an event arena.
func (e *Engine) RunBatches(src event.BatchSource) (*runtime.Stats, error) {
	return e.rt.RunBatches(src)
}
