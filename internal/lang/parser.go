package lang

import (
	"fmt"

	"github.com/caesar-cep/caesar/internal/event"
)

// Parse parses a CAESAR model file (declarations followed by
// queries). It returns the raw AST; name resolution, type checking
// and model validation happen in the model package.
func Parse(src string) (*File, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseFile()
}

// ParseExpr parses a standalone WHERE-style expression. Exposed for
// the predicate package's tests and for tools.
func ParseExpr(src string) (Expr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errUnexpected("end of expression")
	}
	return e, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errUnexpected(want string) error {
	return fmt.Errorf("caesar: %s: unexpected %s, expected %s", p.tok.pos, p.tok, want)
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errUnexpected(kw)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, Pos, error) {
	if p.tok.kind != tokIdent {
		return "", p.tok.pos, p.errUnexpected("identifier")
	}
	name, pos := p.tok.text, p.tok.pos
	if err := p.advance(); err != nil {
		return "", pos, err
	}
	return name, pos, nil
}

func (p *parser) expect(kind tokenKind, what string) error {
	if p.tok.kind != kind {
		return p.errUnexpected(what)
	}
	return p.advance()
}

func (p *parser) parseFile() (*File, error) {
	f := &File{}
	// Declarations: EVENT and CONTEXT, until the first query keyword.
	for {
		switch {
		case p.atKeyword("EVENT"):
			d, err := p.parseSchemaDecl()
			if err != nil {
				return nil, err
			}
			f.Schemas = append(f.Schemas, *d)
		case p.atKeyword("CONTEXT"):
			d, err := p.parseContextDecl()
			if err != nil {
				return nil, err
			}
			f.Contexts = append(f.Contexts, *d)
		default:
			goto queries
		}
	}
queries:
	for p.tok.kind != tokEOF {
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		f.Queries = append(f.Queries, *q)
	}
	return f, nil
}

func (p *parser) parseSchemaDecl() (*SchemaDecl, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume EVENT
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	d := &SchemaDecl{Pos: pos, Name: name}
	for p.tok.kind != tokRParen {
		fname, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ftype, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, FieldDecl{Name: fname, Type: ftype})
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.tok.kind != tokRParen {
			return nil, p.errUnexpected("',' or ')'")
		}
	}
	return d, p.advance() // consume ')'
}

func (p *parser) parseContextDecl() (*ContextDecl, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume CONTEXT
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &ContextDecl{Pos: pos, Name: name}
	if p.atKeyword("DEFAULT") {
		d.Default = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) parseQuery() (*QueryDecl, error) {
	q := &QueryDecl{Pos: p.tok.pos}
	switch {
	case p.atKeyword("DERIVE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		d, err := p.parseDeriveClause()
		if err != nil {
			return nil, err
		}
		q.Action = ActionDerive
		q.Derive = d
	case p.atKeyword("INITIATE"), p.atKeyword("SWITCH"), p.atKeyword("TERMINATE"):
		switch p.tok.text {
		case "INITIATE":
			q.Action = ActionInitiate
		case "SWITCH":
			q.Action = ActionSwitch
		case "TERMINATE":
			q.Action = ActionTerminate
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("CONTEXT"); err != nil {
			return nil, err
		}
		name, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		q.Target = name
	default:
		return nil, p.errUnexpected("DERIVE, INITIATE, SWITCH or TERMINATE")
	}

	if err := p.expectKeyword("PATTERN"); err != nil {
		return nil, err
	}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	q.Pattern = pat

	if p.atKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.atKeyword("WITHIN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokInt || p.tok.ival <= 0 {
			return nil, p.errUnexpected("positive integer horizon")
		}
		q.Within = p.tok.ival
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("TUMBLE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokInt || p.tok.ival <= 0 {
			return nil, p.errUnexpected("positive integer window width")
		}
		q.Tumble = p.tok.ival
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("CONTEXT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			name, _, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			q.Contexts = append(q.Contexts, name)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return q, nil
}

func (p *parser) parseDeriveClause() (*DeriveClause, error) {
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	d := &DeriveClause{Type: name}
	for p.tok.kind != tokRParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Args = append(d.Args, e)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.tok.kind != tokRParen {
			return nil, p.errUnexpected("',' or ')'")
		}
	}
	return d, p.advance() // consume ')'
}

// parsePattern parses Patt := NOT? EventType Var? | SEQ((Patt ,?)+).
func (p *parser) parsePattern() (PatternNode, error) {
	pos := p.tok.pos
	if p.atKeyword("SEQ") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		seq := &PatternSeq{Pos: pos}
		for {
			n, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			seq.Parts = append(seq.Parts, n)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return seq, nil
	}
	negated := false
	if p.atKeyword("NOT") {
		negated = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("SEQ") {
			return nil, fmt.Errorf("caesar: %s: NOT applies to a single event type, not SEQ", p.tok.pos)
		}
	}
	typ, tpos, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ev := &PatternEvent{Pos: tpos, Type: typ, Negated: negated}
	if p.tok.kind == tokIdent {
		ev.Var = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// Expression grammar with standard precedence:
// expr := and (OR and)* ; and := cmp (AND cmp)* ;
// cmp := add ((=|!=|<|<=|>|>=) add)? ;
// add := mul ((+|-) mul)* ; mul := unary ((*|/) unary)* ;
// unary := '-' unary | primary ;
// primary := const | ident ('.' ident)? | '(' expr ')'.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.op == OpOr {
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.op == OpAnd {
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && p.tok.op.Comparison() {
		op, pos := p.tok.op, p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Pos: pos, Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.op == OpAdd || p.tok.op == OpSub) {
		op, pos := p.tok.op, p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.op == OpMul || p.tok.op == OpDiv) {
		op, pos := p.tok.op, p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokOp && p.tok.op == OpSub {
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokInt, tokFloat, tokString:
		e := &ConstExpr{Pos: p.tok.pos, Val: constValue(p.tok)}
		return e, p.advance()
	case tokIdent:
		name, pos := p.tok.text, p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			// Aggregate function call: count(), avg(e), ...
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &CallExpr{Pos: pos, Fn: name}
			if p.tok.kind != tokRParen {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Arg = arg
			}
			if err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.tok.kind == tokDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
			attr, _, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &AttrRef{Pos: pos, Var: name, Attr: attr}, nil
		}
		// Bare identifiers: true/false booleans, otherwise an
		// attribute of the query's unique pattern variable.
		switch name {
		case "true":
			return &ConstExpr{Pos: pos, Val: boolVal(true)}, nil
		case "false":
			return &ConstExpr{Pos: pos, Val: boolVal(false)}, nil
		}
		return &AttrRef{Pos: pos, Attr: name}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errUnexpected("expression")
	}
}

func boolVal(b bool) event.Value { return event.Bool(b) }
