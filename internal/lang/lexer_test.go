package lang

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	l := newLexer(src)
	var out []token
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks := lexAll(t, "derive Pattern WHERE seq not Within tumble")
	kinds := []tokenKind{tokKeyword, tokKeyword, tokKeyword, tokKeyword, tokKeyword, tokKeyword, tokKeyword}
	texts := []string{"DERIVE", "PATTERN", "WHERE", "SEQ", "NOT", "WITHIN", "TUMBLE"}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %d", len(toks))
	}
	for i := range toks {
		if toks[i].kind != kinds[i] || toks[i].text != texts[i] {
			t.Errorf("token %d = %v", i, toks[i])
		}
	}
}

func TestLexAndOrAreOperators(t *testing.T) {
	toks := lexAll(t, "and OR")
	if toks[0].kind != tokOp || toks[0].op != OpAnd {
		t.Errorf("and = %v", toks[0])
	}
	if toks[1].kind != tokOp || toks[1].op != OpOr {
		t.Errorf("OR = %v", toks[1])
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexAll(t, "42 3.5 0 007")
	if toks[0].kind != tokInt || toks[0].ival != 42 {
		t.Errorf("42 = %v", toks[0])
	}
	if toks[1].kind != tokFloat || toks[1].fval != 3.5 {
		t.Errorf("3.5 = %v", toks[1])
	}
	if toks[3].kind != tokInt || toks[3].ival != 7 {
		t.Errorf("007 = %v", toks[3])
	}
}

func TestLexDotDisambiguation(t *testing.T) {
	// "p2.vid" must lex as IDENT DOT IDENT, not a float.
	toks := lexAll(t, "p2.vid")
	if len(toks) != 3 || toks[0].kind != tokIdent || toks[1].kind != tokDot || toks[2].kind != tokIdent {
		t.Fatalf("p2.vid tokens = %v", toks)
	}
	// But "2.5" after an identifier is a float.
	toks = lexAll(t, "x 2.5")
	if len(toks) != 2 || toks[1].kind != tokFloat {
		t.Fatalf("x 2.5 tokens = %v", toks)
	}
}

func TestLexStringsBothQuotes(t *testing.T) {
	toks := lexAll(t, `'exit' "entry"`)
	if toks[0].kind != tokString || toks[0].text != "exit" {
		t.Errorf("single-quoted = %v", toks[0])
	}
	if toks[1].kind != tokString || toks[1].text != "entry" {
		t.Errorf("double-quoted = %v", toks[1])
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]Op{
		"=": OpEq, "==": OpEq, "!=": OpNeq, "<>": OpNeq,
		"<": OpLt, "<=": OpLeq, ">": OpGt, ">=": OpGeq,
		"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv,
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if len(toks) != 1 || toks[0].kind != tokOp || toks[0].op != want {
			t.Errorf("%q = %v, want %v", src, toks, want)
		}
	}
}

func TestLexCommentsAndPositions(t *testing.T) {
	toks := lexAll(t, "# line one\nfoo // rest\n  bar")
	if len(toks) != 2 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].pos.Line != 2 || toks[0].pos.Col != 1 {
		t.Errorf("foo pos = %v", toks[0].pos)
	}
	if toks[1].pos.Line != 3 || toks[1].pos.Col != 3 {
		t.Errorf("bar pos = %v", toks[1].pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "'newline\n'", "@", "!x"} {
		l := newLexer(src)
		var err error
		for {
			var tok token
			tok, err = l.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("%q lexed without error", src)
		}
	}
}

func TestLexUnicodeIdentifiers(t *testing.T) {
	toks := lexAll(t, "größe μ2")
	if len(toks) != 2 || toks[0].kind != tokIdent || toks[0].text != "größe" {
		t.Errorf("unicode idents = %v", toks)
	}
}

func TestTokenString(t *testing.T) {
	toks := lexAll(t, "DERIVE x 1 2.5 'a' ( ) , . +")
	var all []string
	for _, tok := range toks {
		all = append(all, tok.String())
	}
	joined := strings.Join(all, " ")
	for _, want := range []string{"keyword DERIVE", `identifier "x"`, "integer 1", "number 2.5", `string "a"`, "'('", "')'", "','", "'.'", "operator +"} {
		if !strings.Contains(joined, want) {
			t.Errorf("token strings missing %q in %q", want, joined)
		}
	}
	eof := token{kind: tokEOF}
	if eof.String() != "end of input" {
		t.Errorf("EOF string = %q", eof.String())
	}
}
