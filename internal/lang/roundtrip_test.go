package lang

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/caesar-cep/caesar/internal/event"
)

// genExpr builds a random expression tree of bounded depth.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &ConstExpr{Val: event.Int64(int64(rng.Intn(200) - 100))}
		case 1:
			return &ConstExpr{Val: event.Float64(float64(rng.Intn(100)) + 0.5)}
		case 2:
			return &ConstExpr{Val: event.String("s" + string(rune('a'+rng.Intn(26))))}
		default:
			vars := []string{"p1", "p2", "s"}
			attrs := []string{"vid", "sec", "speed"}
			return &AttrRef{Var: vars[rng.Intn(len(vars))], Attr: attrs[rng.Intn(len(attrs))]}
		}
	}
	if rng.Intn(8) == 0 {
		return &UnaryExpr{X: genExpr(rng, depth-1)}
	}
	ops := []Op{OpOr, OpAnd, OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq, OpAdd, OpSub, OpMul, OpDiv}
	return &BinaryExpr{
		Op: ops[rng.Intn(len(ops))],
		L:  genExpr(rng, depth-1),
		R:  genExpr(rng, depth-1),
	}
}

// TestExprRoundTripProperty: for random expression trees, parsing the
// rendered source reproduces the same rendering (the String form is a
// normal form and the parser inverts it). Type checking is not
// involved — this is pure syntax.
func TestExprRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := func() bool {
		e := genExpr(rng, 4)
		src := e.String()
		parsed, err := ParseExpr(src)
		if err != nil {
			t.Logf("parse %q: %v", src, err)
			return false
		}
		return parsed.String() == src
	}
	cfg := &quick.Config{MaxCount: 400}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestNegativeConstantRendering: unary minus renders re-parseably.
func TestNegativeConstantRendering(t *testing.T) {
	e := &UnaryExpr{X: &ConstExpr{Val: event.Int64(5)}}
	parsed, err := ParseExpr(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != "-5" {
		t.Errorf("rendered %q", parsed.String())
	}
}
