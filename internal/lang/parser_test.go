package lang

import (
	"strings"
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
)

const trafficModel = `
# Traffic management model (paper Fig. 3, simplified)
EVENT PositionReport(vid int, xway int, lane int, dir int, seg int, pos int, sec int)
EVENT NewTravelingCar(vid int, xway int, dir int, seg int, lane int, pos int, sec int)
EVENT TollNotification(vid int, sec int, toll int)
EVENT Accident(seg int, sec int)

CONTEXT clear DEFAULT
CONTEXT congestion
CONTEXT accident

DERIVE TollNotification(p.vid, p.sec, 5)
PATTERN NewTravelingCar p
CONTEXT congestion

DERIVE NewTravelingCar(p2.vid, p2.xway, p2.dir, p2.seg, p2.lane, p2.pos, p2.sec)
PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4
CONTEXT congestion

INITIATE CONTEXT accident
PATTERN Accident a
CONTEXT clear, congestion
`

func TestParseTrafficModel(t *testing.T) {
	f, err := Parse(trafficModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Schemas) != 4 {
		t.Fatalf("schemas = %d, want 4", len(f.Schemas))
	}
	pr := f.Schemas[0]
	if pr.Name != "PositionReport" || len(pr.Fields) != 7 {
		t.Errorf("schema 0 = %+v", pr)
	}
	if pr.Fields[0].Name != "vid" || pr.Fields[0].Type != "int" {
		t.Errorf("field 0 = %+v", pr.Fields[0])
	}
	if len(f.Contexts) != 3 {
		t.Fatalf("contexts = %d, want 3", len(f.Contexts))
	}
	if !f.Contexts[0].Default || f.Contexts[0].Name != "clear" {
		t.Errorf("context 0 = %+v", f.Contexts[0])
	}
	if f.Contexts[1].Default || f.Contexts[2].Default {
		t.Error("only clear should be default")
	}
	if len(f.Queries) != 3 {
		t.Fatalf("queries = %d, want 3", len(f.Queries))
	}

	q0 := f.Queries[0]
	if q0.Action != ActionDerive || q0.Derive.Type != "TollNotification" || len(q0.Derive.Args) != 3 {
		t.Errorf("query 0 head = %v", q0.String())
	}
	if q0.IsWindowQuery() {
		t.Error("DERIVE query reported as window query")
	}
	if pe, ok := q0.Pattern.(*PatternEvent); !ok || pe.Type != "NewTravelingCar" || pe.Var != "p" || pe.Negated {
		t.Errorf("query 0 pattern = %v", q0.Pattern)
	}
	if len(q0.Contexts) != 1 || q0.Contexts[0] != "congestion" {
		t.Errorf("query 0 contexts = %v", q0.Contexts)
	}
	if c, ok := q0.Derive.Args[2].(*ConstExpr); !ok || c.Val.Int != 5 {
		t.Errorf("query 0 derive arg 2 = %v", q0.Derive.Args[2])
	}

	q1 := f.Queries[1]
	seq, ok := q1.Pattern.(*PatternSeq)
	if !ok || len(seq.Parts) != 2 {
		t.Fatalf("query 1 pattern = %v", q1.Pattern)
	}
	if p1, ok := seq.Parts[0].(*PatternEvent); !ok || !p1.Negated || p1.Var != "p1" {
		t.Errorf("query 1 part 0 = %v", seq.Parts[0])
	}
	if q1.Where == nil {
		t.Fatal("query 1 has no WHERE")
	}
	// WHERE is a conjunction of three conjuncts parsed left-assoc:
	// ((a AND b) AND c)
	top, ok := q1.Where.(*BinaryExpr)
	if !ok || top.Op != OpAnd {
		t.Fatalf("query 1 where = %v", q1.Where)
	}
	last, ok := top.R.(*BinaryExpr)
	if !ok || last.Op != OpNeq {
		t.Fatalf("last conjunct = %v", top.R)
	}

	q2 := f.Queries[2]
	if q2.Action != ActionInitiate || q2.Target != "accident" || !q2.IsWindowQuery() {
		t.Errorf("query 2 = %v", q2.String())
	}
	if len(q2.Contexts) != 2 || q2.Contexts[0] != "clear" || q2.Contexts[1] != "congestion" {
		t.Errorf("query 2 contexts = %v", q2.Contexts)
	}
}

func TestParseSwitchTerminateWithin(t *testing.T) {
	src := `
CONTEXT a DEFAULT
CONTEXT b

SWITCH CONTEXT b
PATTERN SEQ(E1 x, E2 y)
WHERE x.v >= 10 OR y.v <= -3
WITHIN 120
CONTEXT a

TERMINATE CONTEXT b
PATTERN E2 z
WHERE z.v = 'exit'
CONTEXT b
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Queries) != 2 {
		t.Fatalf("queries = %d", len(f.Queries))
	}
	sw := f.Queries[0]
	if sw.Action != ActionSwitch || sw.Target != "b" || sw.Within != 120 {
		t.Errorf("switch query = %+v", sw)
	}
	or, ok := sw.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("where = %v", sw.Where)
	}
	right := or.R.(*BinaryExpr)
	if right.Op != OpLeq {
		t.Errorf("right = %v", right)
	}
	if u, ok := right.R.(*UnaryExpr); !ok {
		t.Errorf("expected unary minus, got %v", right.R)
	} else if c := u.X.(*ConstExpr); c.Val.Int != 3 {
		t.Errorf("unary operand = %v", u.X)
	}
	tm := f.Queries[1]
	if tm.Action != ActionTerminate || tm.Target != "b" {
		t.Errorf("terminate query = %+v", tm)
	}
	cmp := tm.Where.(*BinaryExpr)
	if c, ok := cmp.R.(*ConstExpr); !ok || c.Val.Kind != event.KindString || c.Val.Str != "exit" {
		t.Errorf("string const = %v", cmp.R)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("a.x + 2 * 3 = 7 AND b.y > 1 OR c.z < 2")
	if err != nil {
		t.Fatal(err)
	}
	want := "((((a.x + (2 * 3)) = 7) AND (b.y > 1)) OR (c.z < 2))"
	if got := e.String(); got != want {
		t.Errorf("parsed %q, want %q", got, want)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	e, err := ParseExpr("(a.x + 2) * 3")
	if err != nil {
		t.Fatal(err)
	}
	if want := "((a.x + 2) * 3)"; e.String() != want {
		t.Errorf("parsed %q, want %q", e.String(), want)
	}
}

func TestParseBareAttributeAndBooleans(t *testing.T) {
	e, err := ParseExpr("speed < 40 AND ok = true AND bad = false")
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*BinaryExpr)
	mid := top.L.(*BinaryExpr)
	cmpSpeed := mid.L.(*BinaryExpr)
	ref, ok := cmpSpeed.L.(*AttrRef)
	if !ok || ref.Var != "" || ref.Attr != "speed" {
		t.Errorf("bare attr = %v", cmpSpeed.L)
	}
	cmpOK := mid.R.(*BinaryExpr)
	if c, ok := cmpOK.R.(*ConstExpr); !ok || !c.Val.AsBool() || c.Val.Kind != event.KindBool {
		t.Errorf("true const = %v", cmpOK.R)
	}
}

func TestParseNeqVariants(t *testing.T) {
	for _, src := range []string{"a.x != 1", "a.x <> 1"} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if b := e.(*BinaryExpr); b.Op != OpNeq {
			t.Errorf("%s parsed as %v", src, b.Op)
		}
	}
}

func TestParseEqEqAlias(t *testing.T) {
	e, err := ParseExpr("a.x == 1")
	if err != nil {
		t.Fatal(err)
	}
	if b := e.(*BinaryExpr); b.Op != OpEq {
		t.Errorf("== parsed as %v", b.Op)
	}
}

func TestParseNestedSeqFlattensLater(t *testing.T) {
	src := `
CONTEXT c DEFAULT
DERIVE E(a.v)
PATTERN SEQ(A a, SEQ(B b, C c2), NOT D)
CONTEXT c
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	seq := f.Queries[0].Pattern.(*PatternSeq)
	if len(seq.Parts) != 3 {
		t.Fatalf("parts = %d", len(seq.Parts))
	}
	inner, ok := seq.Parts[1].(*PatternSeq)
	if !ok || len(inner.Parts) != 2 {
		t.Errorf("inner = %v", seq.Parts[1])
	}
	last := seq.Parts[2].(*PatternEvent)
	if !last.Negated || last.Var != "" || last.Type != "D" {
		t.Errorf("last = %+v", last)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no pattern", "CONTEXT c DEFAULT\nDERIVE E(1)\nCONTEXT c", "PATTERN"},
		{"bad action", "CONTEXT c DEFAULT\nFOO E(1)", "DERIVE, INITIATE"},
		{"not seq", "CONTEXT c DEFAULT\nDERIVE E(1)\nPATTERN NOT SEQ(A a)", "NOT applies"},
		{"initiate missing context kw", "INITIATE foo\nPATTERN A a", "CONTEXT"},
		{"bad within", "CONTEXT c DEFAULT\nDERIVE E(1)\nPATTERN A a\nWITHIN 0", "positive integer"},
		{"unterminated string", "CONTEXT c DEFAULT\nDERIVE E('x)\nPATTERN A a", "unterminated"},
		{"bang", "CONTEXT c DEFAULT\nDERIVE E(1 ! 2)\nPATTERN A a", "unexpected character"},
		{"bad schema field", "EVENT E(x)", "identifier"},
		{"trailing garbage in expr", "", ""}, // placeholder; exercised below
	}
	for _, c := range cases {
		if c.src == "" {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("parse accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
	if _, err := ParseExpr("1 + 2 extra stuff +"); err == nil {
		t.Error("trailing garbage accepted in expression")
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	// Parsing the String() rendering of a parsed query must yield the
	// same rendering (normalization fixed point).
	f, err := Parse(trafficModel)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range f.Queries {
		src := "CONTEXT clear DEFAULT\nCONTEXT congestion\nCONTEXT accident\n" + q.String()
		f2, err := Parse(src)
		if err != nil {
			t.Fatalf("query %d: reparse of %q failed: %v", i, q.String(), err)
		}
		if got := f2.Queries[0].String(); got != q.String() {
			t.Errorf("query %d: round trip changed:\n 1st: %s\n 2nd: %s", i, q.String(), got)
		}
	}
}

func TestActionString(t *testing.T) {
	if ActionDerive.String() != "DERIVE" || ActionInitiate.String() != "INITIATE" ||
		ActionSwitch.String() != "SWITCH" || ActionTerminate.String() != "TERMINATE" {
		t.Error("Action.String broken")
	}
	if !strings.Contains(Action(99).String(), "99") {
		t.Error("unknown action string")
	}
}

func TestOpHelpers(t *testing.T) {
	for _, o := range []Op{OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq} {
		if !o.Comparison() {
			t.Errorf("%v should be comparison", o)
		}
	}
	for _, o := range []Op{OpAnd, OpOr, OpAdd, OpMul} {
		if o.Comparison() {
			t.Errorf("%v should not be comparison", o)
		}
	}
	if !OpAnd.Logical() || !OpOr.Logical() || OpEq.Logical() {
		t.Error("Logical misreports")
	}
}

func TestCommentStyles(t *testing.T) {
	src := "# hash comment\n// slash comment\nCONTEXT c DEFAULT\nDERIVE E(1) // trailing\nPATTERN A a\nCONTEXT c\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Queries) != 1 {
		t.Fatalf("queries = %d", len(f.Queries))
	}
}

func TestPosReporting(t *testing.T) {
	_, err := Parse("CONTEXT c DEFAULT\nDERIVE E(\n  &)\nPATTERN A a")
	if err == nil || !strings.Contains(err.Error(), "3:") {
		t.Errorf("error should carry line 3 position, got %v", err)
	}
}
