package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"github.com/caesar-cep/caesar/internal/event"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokOp // comparison/arithmetic operator, Op field set
)

// token is one lexical token.
type token struct {
	kind tokenKind
	pos  Pos
	text string // identifier/keyword text (keywords upper-cased)
	ival int64
	fval float64
	op   Op
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tokKeyword:
		return fmt.Sprintf("keyword %s", t.text)
	case tokInt:
		return fmt.Sprintf("integer %d", t.ival)
	case tokFloat:
		return fmt.Sprintf("number %g", t.fval)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokOp:
		return fmt.Sprintf("operator %s", t.op)
	default:
		return "unknown token"
	}
}

// keywords of the CAESAR language. AND/OR/NOT are keywords too but
// AND/OR are turned into operator tokens by the parser's expression
// grammar; keeping them as keywords keeps the lexer context-free.
var keywords = map[string]bool{
	"EVENT": true, "CONTEXT": true, "DEFAULT": true,
	"INITIATE": true, "SWITCH": true, "TERMINATE": true,
	"DERIVE": true, "PATTERN": true, "WHERE": true,
	"SEQ": true, "NOT": true, "AND": true, "OR": true,
	"WITHIN": true, "TUMBLE": true,
}

// lexer turns source text into tokens. '#' and '//' start
// line comments.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(p Pos, format string, args ...any) error {
	return fmt.Errorf("caesar: %s: %s", p, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.peekByte() != '\n' {
		l.advance()
	}
}

func (l *lexer) here() Pos { return Pos{Line: l.line, Col: l.col} }

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	pos := l.here()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.peekByte()
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	switch {
	case isIdentStart(r):
		return l.lexIdent(pos), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(pos)
	case c == '\'' || c == '"':
		return l.lexString(pos)
	}
	l.advance()
	switch c {
	case '(':
		return token{kind: tokLParen, pos: pos}, nil
	case ')':
		return token{kind: tokRParen, pos: pos}, nil
	case ',':
		return token{kind: tokComma, pos: pos}, nil
	case '.':
		return token{kind: tokDot, pos: pos}, nil
	case '+':
		return token{kind: tokOp, pos: pos, op: OpAdd}, nil
	case '-':
		return token{kind: tokOp, pos: pos, op: OpSub}, nil
	case '*':
		return token{kind: tokOp, pos: pos, op: OpMul}, nil
	case '/':
		return token{kind: tokOp, pos: pos, op: OpDiv}, nil
	case '=':
		if l.peekByte() == '=' {
			l.advance()
		}
		return token{kind: tokOp, pos: pos, op: OpEq}, nil
	case '#': // unreachable: '#' starts a comment; kept for clarity
		return token{kind: tokOp, pos: pos, op: OpNeq}, nil
	case '!':
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tokOp, pos: pos, op: OpNeq}, nil
		}
		return token{}, l.errf(pos, "unexpected character '!'")
	case '<':
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tokOp, pos: pos, op: OpLeq}, nil
		}
		if l.peekByte() == '>' {
			l.advance()
			return token{kind: tokOp, pos: pos, op: OpNeq}, nil
		}
		return token{kind: tokOp, pos: pos, op: OpLt}, nil
	case '>':
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tokOp, pos: pos, op: OpGeq}, nil
		}
		return token{kind: tokOp, pos: pos, op: OpGt}, nil
	}
	return token{}, l.errf(pos, "unexpected character %q", string(rune(c)))
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent(pos Pos) token {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentRune(r) {
			break
		}
		for i := 0; i < size; i++ {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		switch upper {
		case "AND":
			return token{kind: tokOp, pos: pos, op: OpAnd, text: upper}
		case "OR":
			return token{kind: tokOp, pos: pos, op: OpOr, text: upper}
		}
		return token{kind: tokKeyword, pos: pos, text: upper}
	}
	return token{kind: tokIdent, pos: pos, text: text}
}

func (l *lexer) lexNumber(pos Pos) (token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
		l.advance()
	}
	isFloat := false
	// A '.' is part of the number only when followed by a digit, so
	// that "p2.vid" style member access still lexes after integers in
	// future grammar growth.
	if l.pos+1 < len(l.src) && l.peekByte() == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, l.errf(pos, "bad number %q", text)
		}
		return token{kind: tokFloat, pos: pos, fval: f}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, l.errf(pos, "bad integer %q", text)
	}
	return token{kind: tokInt, pos: pos, ival: n}, nil
}

func (l *lexer) lexString(pos Pos) (token, error) {
	quote := l.advance()
	start := l.pos
	for l.pos < len(l.src) {
		c := l.peekByte()
		if c == '\n' {
			break
		}
		if c == quote {
			text := l.src[start:l.pos]
			l.advance()
			return token{kind: tokString, pos: pos, text: text}, nil
		}
		l.advance()
	}
	return token{}, l.errf(pos, "unterminated string literal")
}

// constValue converts a literal token to an event.Value; used by the
// parser for WHERE/DERIVE constants.
func constValue(t token) event.Value {
	switch t.kind {
	case tokInt:
		return event.Int64(t.ival)
	case tokFloat:
		return event.Float64(t.fval)
	case tokString:
		return event.String(t.text)
	default:
		return event.Value{}
	}
}
