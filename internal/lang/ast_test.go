package lang

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
)

// TestNodePositions: every AST node reports the source position of
// its first token.
func TestNodePositions(t *testing.T) {
	f, err := Parse(`CONTEXT c DEFAULT
DERIVE E(a.v, -1, count())
PATTERN SEQ(A a, NOT B b)
WHERE a.v > 2
TUMBLE 5
CONTEXT c`)
	if err != nil {
		t.Fatal(err)
	}
	q := f.Queries[0]
	if q.Pos.Line != 2 {
		t.Errorf("query pos = %v", q.Pos)
	}
	seq, ok := q.Pattern.(*PatternSeq)
	if !ok || seq.NodePos().Line != 3 {
		t.Errorf("pattern pos = %v", q.Pattern.NodePos())
	}
	atom := seq.Parts[0].(*PatternEvent)
	if atom.NodePos().Line != 3 {
		t.Errorf("atom pos = %v", atom.NodePos())
	}
	if q.Where.ExprPos().Line != 4 {
		t.Errorf("where pos = %v", q.Where.ExprPos())
	}
	ref := q.Derive.Args[0].(*AttrRef)
	if ref.ExprPos().Line != 2 {
		t.Errorf("ref pos = %v", ref.ExprPos())
	}
	neg := q.Derive.Args[1].(*UnaryExpr)
	if neg.ExprPos().Line != 2 {
		t.Errorf("unary pos = %v", neg.ExprPos())
	}
	call := q.Derive.Args[2].(*CallExpr)
	if call.ExprPos().Line != 2 || call.Fn != "count" || call.Arg != nil {
		t.Errorf("call = %+v", call)
	}
	inner := neg.X.(*ConstExpr)
	if inner.ExprPos().Line != 2 {
		t.Errorf("const pos = %v", inner.ExprPos())
	}
}

func TestASTStringForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&CallExpr{Fn: "count"}, "count()"},
		{&CallExpr{Fn: "avg", Arg: &AttrRef{Var: "p", Attr: "v"}}, "avg(p.v)"},
		{&ConstExpr{Val: event.String("x")}, "'x'"},
		{&ConstExpr{Val: event.Float64(2.5)}, "2.5"},
		{&ConstExpr{Val: event.Bool(true)}, "true"},
		{&AttrRef{Attr: "bare"}, "bare"},
		{&UnaryExpr{X: &ConstExpr{Val: event.Int64(3)}}, "-3"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	pe := &PatternEvent{Type: "A"}
	if pe.String() != "A" {
		t.Errorf("bare pattern event = %q", pe.String())
	}
	d := &DeriveClause{Type: "E", Args: []Expr{&ConstExpr{Val: event.Int64(1)}}}
	if d.String() != "E(1)" {
		t.Errorf("derive = %q", d.String())
	}
	if (Pos{Line: 3, Col: 9}).String() != "3:9" {
		t.Error("Pos string")
	}
}

// TestQueryStringWithAllClauses renders a query using every optional
// clause and re-parses it.
func TestQueryStringWithAllClauses(t *testing.T) {
	src := `CONTEXT main DEFAULT
CONTEXT other
DERIVE E(count())
PATTERN SEQ(A a, B b)
WHERE a.v = b.v
WITHIN 9
TUMBLE 3
CONTEXT main, other`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := f.Queries[0].String()
	for _, want := range []string{"WITHIN 9", "TUMBLE 3", "CONTEXT main, other", "DERIVE E(count())"} {
		if !containsLine(rendered, want) {
			t.Errorf("rendered query missing %q:\n%s", want, rendered)
		}
	}
	f2, err := Parse("CONTEXT main DEFAULT\nCONTEXT other\n" + rendered)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if f2.Queries[0].String() != rendered {
		t.Error("round trip diverged")
	}
}

func containsLine(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestParsePrimaryErrors(t *testing.T) {
	bad := []string{
		"(1 + 2",  // missing close paren
		"count(1", // unterminated call
		"a.",      // missing attr
		"SEQ",     // keyword as expression
		"",        // empty
		"1 +",     // missing operand
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) accepted", src)
		}
	}
}
