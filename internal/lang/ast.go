// Package lang implements the CAESAR event query language: the
// grammar of paper Fig. 4 (INITIATE/SWITCH/TERMINATE CONTEXT, DERIVE,
// PATTERN with SEQ and NOT, WHERE, CONTEXT) extended with the model
// declarations needed for a textual CAESAR model file:
//
//	EVENT PositionReport(vid int, seg int, lane int, sec int)
//	CONTEXT clear DEFAULT
//	CONTEXT congestion
//
//	DERIVE TollNotification(p.vid, p.sec, 5)
//	PATTERN NewTravelingCar p
//	CONTEXT congestion
//
//	DERIVE NewTravelingCar(p2.vid, p2.seg, p2.sec)
//	PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
//	WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4
//	CONTEXT congestion
//
//	INITIATE CONTEXT accident
//	PATTERN Accident a
//	CONTEXT clear, congestion
//
// All declarations (EVENT, CONTEXT) must precede the first query, so
// that a CONTEXT keyword inside a query unambiguously introduces the
// query's context-window clause.
//
// The optional WITHIN <seconds> clause is an engine extension (see
// DESIGN.md): it bounds the pattern matching horizon when the WHERE
// clause does not pin relative timestamps.
package lang

import (
	"fmt"
	"strings"

	"github.com/caesar-cep/caesar/internal/event"
)

// Pos is a source position for error reporting.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// File is a parsed CAESAR model file.
type File struct {
	Schemas  []SchemaDecl
	Contexts []ContextDecl
	Queries  []QueryDecl
}

// SchemaDecl declares an event type: EVENT Name(field kind, ...).
type SchemaDecl struct {
	Pos    Pos
	Name   string
	Fields []FieldDecl
}

// FieldDecl is one attribute declaration.
type FieldDecl struct {
	Name string
	Type string
}

// ContextDecl declares an application context type:
// CONTEXT name [DEFAULT].
type ContextDecl struct {
	Pos     Pos
	Name    string
	Default bool
}

// Action enumerates what a query does when its pattern matches
// (paper Def. 3).
type Action int

const (
	// ActionDerive emits a complex event (context processing query,
	// or an intermediate derivation feeding other queries).
	ActionDerive Action = iota
	// ActionInitiate starts a context window.
	ActionInitiate
	// ActionSwitch terminates the current context window and starts a
	// new one (sequence of two non-overlapping windows, §3.4).
	ActionSwitch
	// ActionTerminate ends a context window.
	ActionTerminate
)

// String returns the keyword for the action.
func (a Action) String() string {
	switch a {
	case ActionDerive:
		return "DERIVE"
	case ActionInitiate:
		return "INITIATE"
	case ActionSwitch:
		return "SWITCH"
	case ActionTerminate:
		return "TERMINATE"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// QueryDecl is one context-aware event query (paper Def. 3).
type QueryDecl struct {
	Pos    Pos
	Action Action
	// Target is the context being initiated/switched-to/terminated
	// (window queries only).
	Target string
	// Derive is the complex event derivation head (DERIVE queries only).
	Derive *DeriveClause
	// Pattern is the event pattern; required for every query.
	Pattern PatternNode
	// Where is the optional filter predicate over pattern variables.
	Where Expr
	// Within is the optional matching horizon in time units
	// (engine extension); 0 means unset.
	Within int64
	// Tumble is the optional tumbling aggregation window width
	// (engine extension): the DERIVE arguments may then use the
	// aggregate functions count(), sum(e), avg(e), min(e) and
	// max(e), and one event is derived per non-empty window. 0 means
	// no aggregation.
	Tumble int64
	// Contexts lists the context windows the query operates in. Empty
	// means implied by the surrounding model (made explicit during
	// plan generation phase 1, §4.2).
	Contexts []string
}

// IsWindowQuery reports whether the query derives a context
// (initiate/switch/terminate) rather than a complex event.
func (q *QueryDecl) IsWindowQuery() bool { return q.Action != ActionDerive }

// String renders the query back to (normalized) surface syntax.
func (q *QueryDecl) String() string {
	var b strings.Builder
	switch q.Action {
	case ActionDerive:
		b.WriteString("DERIVE ")
		b.WriteString(q.Derive.String())
	default:
		fmt.Fprintf(&b, "%s CONTEXT %s", q.Action, q.Target)
	}
	if q.Pattern != nil {
		b.WriteString("\nPATTERN ")
		b.WriteString(q.Pattern.String())
	}
	if q.Where != nil {
		b.WriteString("\nWHERE ")
		b.WriteString(q.Where.String())
	}
	if q.Within > 0 {
		fmt.Fprintf(&b, "\nWITHIN %d", q.Within)
	}
	if q.Tumble > 0 {
		fmt.Fprintf(&b, "\nTUMBLE %d", q.Tumble)
	}
	if len(q.Contexts) > 0 {
		b.WriteString("\nCONTEXT ")
		b.WriteString(strings.Join(q.Contexts, ", "))
	}
	return b.String()
}

// DeriveClause is DERIVE EventType(expr, ...). Args map positionally
// to the fields of the derived event type's schema.
type DeriveClause struct {
	Type string
	Args []Expr
}

func (d *DeriveClause) String() string {
	parts := make([]string, len(d.Args))
	for i, a := range d.Args {
		parts[i] = a.String()
	}
	return d.Type + "(" + strings.Join(parts, ", ") + ")"
}

// PatternNode is a node of the PATTERN clause: a (possibly negated)
// event atom or a SEQ of nodes.
type PatternNode interface {
	patternNode()
	String() string
	NodePos() Pos
}

// PatternEvent matches one event: NOT? EventType Var?.
type PatternEvent struct {
	Pos     Pos
	Type    string
	Var     string
	Negated bool
}

func (*PatternEvent) patternNode() {}

// NodePos returns the source position.
func (p *PatternEvent) NodePos() Pos { return p.Pos }

func (p *PatternEvent) String() string {
	var b strings.Builder
	if p.Negated {
		b.WriteString("NOT ")
	}
	b.WriteString(p.Type)
	if p.Var != "" {
		b.WriteByte(' ')
		b.WriteString(p.Var)
	}
	return b.String()
}

// PatternSeq is SEQ(p1, ..., pn).
type PatternSeq struct {
	Pos   Pos
	Parts []PatternNode
}

func (*PatternSeq) patternNode() {}

// NodePos returns the source position.
func (p *PatternSeq) NodePos() Pos { return p.Pos }

func (p *PatternSeq) String() string {
	parts := make([]string, len(p.Parts))
	for i, n := range p.Parts {
		parts[i] = n.String()
	}
	return "SEQ(" + strings.Join(parts, ", ") + ")"
}

// Op enumerates the binary operators of the WHERE expression grammar.
type Op int

// Binary operators in increasing binding strength groups.
const (
	OpOr Op = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String returns the surface syntax of the operator.
func (o Op) String() string {
	switch o {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Comparison reports whether the operator compares values (vs.
// arithmetic or logical connective).
func (o Op) Comparison() bool { return o >= OpEq && o <= OpGeq }

// Logical reports whether the operator is AND/OR.
func (o Op) Logical() bool { return o == OpAnd || o == OpOr }

// Expr is a WHERE/DERIVE expression node.
type Expr interface {
	expr()
	String() string
	ExprPos() Pos
}

// BinaryExpr is L op R.
type BinaryExpr struct {
	Pos  Pos
	Op   Op
	L, R Expr
}

func (*BinaryExpr) expr() {}

// ExprPos returns the source position.
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }

func (e *BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// UnaryExpr is -X.
type UnaryExpr struct {
	Pos Pos
	X   Expr
}

func (*UnaryExpr) expr() {}

// ExprPos returns the source position.
func (e *UnaryExpr) ExprPos() Pos { return e.Pos }

func (e *UnaryExpr) String() string { return "-" + e.X.String() }

// AttrRef references a pattern variable attribute (p.vid) or, with
// Var == "", a bare attribute resolved against the query's unique
// pattern variable during model analysis.
type AttrRef struct {
	Pos  Pos
	Var  string
	Attr string
}

func (*AttrRef) expr() {}

// ExprPos returns the source position.
func (e *AttrRef) ExprPos() Pos { return e.Pos }

func (e *AttrRef) String() string {
	if e.Var == "" {
		return e.Attr
	}
	return e.Var + "." + e.Attr
}

// CallExpr is an aggregate function call in a TUMBLE query's DERIVE
// arguments: count(), sum(e), avg(e), min(e), max(e). Arg is nil for
// count().
type CallExpr struct {
	Pos Pos
	Fn  string
	Arg Expr
}

func (*CallExpr) expr() {}

// ExprPos returns the source position.
func (e *CallExpr) ExprPos() Pos { return e.Pos }

func (e *CallExpr) String() string {
	if e.Arg == nil {
		return e.Fn + "()"
	}
	return e.Fn + "(" + e.Arg.String() + ")"
}

// ConstExpr is a literal constant.
type ConstExpr struct {
	Pos Pos
	Val event.Value
}

func (*ConstExpr) expr() {}

// ExprPos returns the source position.
func (e *ConstExpr) ExprPos() Pos { return e.Pos }

func (e *ConstExpr) String() string {
	if e.Val.Kind == event.KindString {
		return "'" + e.Val.Str + "'"
	}
	return e.Val.String()
}
