package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := []string{"decode", "queue_wait", "route", "ring_wait", "exec", "merge"}
	for st := Stage(0); st < NumStages; st++ {
		if st.String() != want[st] {
			t.Errorf("Stage(%d) = %q, want %q", st, st.String(), want[st])
		}
	}
	if got := Stage(99).String(); got != "stage99" {
		t.Errorf("out-of-range stage = %q", got)
	}
}

func TestSpanStampingFeedsHistograms(t *testing.T) {
	tr := NewStageTracer(1, 8)
	sp := tr.Start(42, 3)
	sp.Stamp(StageRoute, 1000)
	sp.Stamp(StageExec, 2000)
	sp.Stamp(StageExec, 500) // accumulates
	sp.SetCounts(4, 100)
	sp.SetEmitted(7)
	sp.Finish()

	if got := tr.StageSnapshot(StageRoute).Count; got != 1 {
		t.Errorf("route count = %d, want 1", got)
	}
	if got := tr.StageSnapshot(StageExec).Sum; got != 2500 {
		t.Errorf("exec sum = %d, want 2500", got)
	}
	// Unstamped stages must not observe (a zero sample would skew p50).
	if got := tr.StageSnapshot(StageDecode).Count; got != 0 {
		t.Errorf("decode count = %d, want 0", got)
	}
	if tr.Spans.Value() != 1 {
		t.Errorf("spans = %d, want 1", tr.Spans.Value())
	}

	tls := tr.Timelines()
	if len(tls) != 1 {
		t.Fatalf("timelines = %d, want 1", len(tls))
	}
	tl := tls[0]
	if tl.Tick != 42 || tl.Unit != 3 || tl.Partitions != 4 || tl.Events != 100 || tl.Emitted != 7 {
		t.Errorf("timeline shape = %+v", tl)
	}
	if tl.Stages[StageExec] != 2500 || tl.Stamped != (1<<StageRoute)|(1<<StageExec) {
		t.Errorf("timeline stages = %+v", tl)
	}
	if tl.At == 0 {
		t.Error("timeline completion time not stamped")
	}
}

func TestSpanMarkStampSinceTiles(t *testing.T) {
	tr := NewStageTracer(1, 8)
	sp := tr.Start(1, 0)
	sp.MarkAt(1000)
	sp.StampSince(StageRingWait, 1400)
	sp.StampSince(StageExec, 2400)
	if sp.durs[StageRingWait] != 400 || sp.durs[StageExec] != 1000 {
		t.Errorf("tiled durations = %v", sp.durs)
	}
	// A non-monotone clock (now < mark) clamps to zero but still marks
	// the stage observed.
	sp.MarkAt(5000)
	sp.StampSince(StageMerge, 4000)
	if sp.durs[StageMerge] != 0 || sp.stamped&(1<<StageMerge) == 0 {
		t.Errorf("negative stamp not clamped: durs=%v stamped=%b", sp.durs, sp.stamped)
	}
	sp.Finish()
}

func TestSampleTickOneInN(t *testing.T) {
	tr := NewStageTracer(4, 8)
	hits := 0
	for i := 0; i < 400; i++ {
		if tr.SampleTick() {
			hits++
		}
	}
	if hits != 100 {
		t.Errorf("sampled %d of 400 at rate 4, want 100", hits)
	}
	var nilTr *StageTracer
	if nilTr.SampleTick() {
		t.Error("nil tracer sampled")
	}
	if nilTr.Start(1, 0) != nil {
		t.Error("nil tracer returned a span")
	}
}

func TestNilSpanNoops(t *testing.T) {
	var sp *Span
	sp.Stamp(StageExec, 5)
	sp.MarkAt(1)
	sp.StampSince(StageExec, 2)
	sp.SetCounts(1, 2)
	sp.SetEmitted(3)
	sp.Finish()
	if sp.Tick() != 0 {
		t.Error("nil span tick")
	}
	if b := sp.appendStages(nil); len(b) != 0 {
		t.Errorf("nil span stages = %q", b)
	}
}

func TestRecorderWraparound(t *testing.T) {
	tr := NewStageTracer(1, 4)
	for i := 0; i < 10; i++ {
		sp := tr.Start(int64(i), 0)
		sp.Stamp(StageExec, int64(i))
		sp.Finish()
	}
	tls := tr.Timelines()
	if len(tls) != 4 {
		t.Fatalf("timelines = %d, want 4 (ring depth)", len(tls))
	}
	for i, tl := range tls {
		if want := int64(6 + i); tl.Tick != want {
			t.Errorf("timeline[%d].Tick = %d, want %d (oldest first)", i, tl.Tick, want)
		}
	}
}

func TestSpanPoolRecyclesWithoutAllocation(t *testing.T) {
	tr := NewStageTracer(1, 8)
	// Prime beyond the first slab so the pool has warmed free lists.
	spans := make([]*Span, 2*spanSlabSize)
	for i := range spans {
		spans[i] = tr.Start(int64(i), 0)
	}
	for _, sp := range spans {
		sp.Stamp(StageExec, 1)
		sp.Finish()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(7, 1)
		sp.MarkAt(100)
		sp.StampSince(StageRingWait, 200)
		sp.StampSince(StageExec, 300)
		sp.SetCounts(2, 10)
		sp.SetEmitted(1)
		sp.Finish()
	})
	if allocs != 0 {
		t.Errorf("span lifecycle allocates %v/op, want 0", allocs)
	}
}

// TestRecorderConcurrent races finishers against snapshot readers;
// run under -race in CI. Timelines must never be torn: a timeline
// with stage bits set must carry the matching durations.
func TestRecorderConcurrent(t *testing.T) {
	tr := NewStageTracer(1, 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(unit int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := tr.Start(int64(i), unit)
				sp.Stamp(StageExec, 12345)
				sp.Finish()
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, tl := range tr.Timelines() {
			if tl.Stamped&(1<<StageExec) != 0 && tl.Stages[StageExec] != 12345 {
				t.Errorf("torn timeline: %+v", tl)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestWriteTracez(t *testing.T) {
	var nilTr *StageTracer
	var b strings.Builder
	if err := nilTr.WriteTracez(&b); err != nil {
		t.Fatal(err)
	}
	var off map[string]any
	if err := json.Unmarshal([]byte(b.String()), &off); err != nil {
		t.Fatal(err)
	}
	if off["enabled"] != false {
		t.Errorf("nil tracer tracez = %v", off)
	}

	tr := NewStageTracer(2, 8)
	sp := tr.Start(5, 1)
	sp.Stamp(StageRoute, 800)
	sp.Stamp(StageExec, 1600)
	sp.SetCounts(3, 20)
	sp.Finish()

	b.Reset()
	if err := tr.WriteTracez(&b); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Enabled    bool                        `json:"enabled"`
		SampleRate int                         `json:"sample_rate"`
		Spans      int                         `json:"spans"`
		Stages     map[string]map[string]int64 `json:"stages"`
		Recent     []struct {
			Tick     int64            `json:"tick"`
			Unit     int              `json:"unit"`
			StagesNs map[string]int64 `json:"stages_ns"`
		} `json:"recent"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("tracez not JSON: %v\n%s", err, b.String())
	}
	if !got.Enabled || got.SampleRate != 2 || got.Spans != 1 {
		t.Errorf("tracez header = %+v", got)
	}
	if got.Stages["exec"]["count"] != 1 || got.Stages["exec"]["max_ns"] != 1600 {
		t.Errorf("tracez exec stage = %v", got.Stages)
	}
	if _, ok := got.Stages["decode"]; ok {
		t.Error("tracez reports unobserved stage")
	}
	if len(got.Recent) != 1 || got.Recent[0].Tick != 5 || got.Recent[0].StagesNs["route"] != 800 {
		t.Errorf("tracez recent = %+v", got.Recent)
	}
	if _, ok := got.Recent[0].StagesNs["merge"]; ok {
		t.Error("timeline reports unstamped stage")
	}
}

func TestStageTracerRegisterOn(t *testing.T) {
	tr := NewStageTracer(1, 8)
	sp := tr.Start(1, 0)
	sp.Stamp(StageExec, 1000)
	sp.Finish()
	reg := NewRegistry()
	tr.RegisterOn(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `caesar_stage_ns{stage="exec",quantile="0.5"}`) {
		t.Errorf("stage histogram not exposed:\n%s", out)
	}
	if !strings.Contains(out, "caesar_trace_spans_total 1") {
		t.Errorf("span counter not exposed:\n%s", out)
	}
	// Nil-safety on both sides.
	var nilTr *StageTracer
	nilTr.RegisterOn(reg)
	tr.RegisterOn(nil)
}

func TestStageTracerDefaults(t *testing.T) {
	tr := NewStageTracer(0, 0)
	if tr.SampleRate() != DefaultSampleRate {
		t.Errorf("default rate = %d", tr.SampleRate())
	}
	if len(tr.slots) != DefaultRecorderDepth {
		t.Errorf("default depth = %d", len(tr.slots))
	}
	// Depth rounds up to a power of two.
	if tr5 := NewStageTracer(1, 5); len(tr5.slots) != 8 {
		t.Errorf("depth 5 rounded to %d, want 8", len(tr5.slots))
	}
	var nilTr *StageTracer
	if nilTr.SampleRate() != 0 {
		t.Error("nil tracer rate")
	}
	if nilTr.Timelines() != nil {
		t.Error("nil tracer timelines")
	}
	if (nilTr.StageSnapshot(StageExec) != HistogramSnapshot{}) {
		t.Error("nil tracer snapshot")
	}
}
