package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucketing: log-linear, HDR-style. Values 0..subCount-1
// map to exact buckets; larger values map to one of subCount linear
// sub-buckets within their power-of-two octave, so the relative
// quantile error is bounded by 1/subCount (12.5%) regardless of
// magnitude. Everything at or above 2^maxExp lands in one overflow
// bucket. With nanosecond observations the overflow threshold is
// 2^40ns ≈ 18 minutes — far beyond any transaction or event latency
// this engine produces.
const (
	subBits  = 3
	subCount = 1 << subBits // 8 sub-buckets per octave
	maxExp   = 40

	// numBuckets = exact small values + (maxExp-subBits) full octaves
	// + 1 overflow bucket.
	numBuckets = subCount + (maxExp-subBits)*subCount + 1
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // e >= subBits
	if e >= maxExp {
		return numBuckets - 1
	}
	return (e-subBits+1)*subCount + int((v>>(uint(e)-subBits))&(subCount-1))
}

// bucketUpper returns the largest value falling into bucket i (the
// quantile estimate reported for ranks landing in the bucket).
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	if i >= numBuckets-1 {
		return math.MaxInt64
	}
	e := subBits + (i/subCount - 1)
	sub := uint64(i%subCount) + 1
	return int64((subCount+sub)<<(uint(e)-subBits)) - 1
}

// Histogram is a lock-free fixed-bucket log-scale histogram. The
// zero value is ready to use; Observe performs only atomic adds (no
// allocation, no locks), so it is safe on the engine's hot paths and
// under concurrent writers. Sum accumulation saturates at
// math.MaxInt64 instead of wrapping, so Mean never goes negative on
// arbitrarily long runs.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	// count is incremented after the bucket, so for any concurrent
	// reader sum(buckets) >= count — the invariant the scrape path
	// and the race stress test rely on.
	count atomic.Uint64
	sum   atomic.Int64
	max   atomic.Int64
}

// Observe records one sample. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	if s := h.sum.Add(v); s < 0 {
		// Overflow: saturate. Concurrent adds may race the store, but
		// every loser re-overflows and re-saturates, so the value
		// sticks at MaxInt64.
		h.sum.Store(math.MaxInt64)
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the saturating sample sum.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the exact maximal sample (0 with no samples).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean sample (0 with no samples). On saturated
// histograms the mean is an upper-bound estimate.
func (h *Histogram) Mean() int64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return h.sum.Load() / int64(c)
}

// Reset clears the histogram. Not atomic with respect to concurrent
// Observe calls: samples recorded during a Reset may be partially
// dropped. Single-writer use (tests, per-run trackers) is exact.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot captures a point-in-time copy for quantile extraction.
// Taken against concurrent writers the copy is slightly fuzzy (the
// buckets are read one by one) but never torn below the count read
// first: sum(Buckets) >= Count.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable histogram copy.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Max     int64
	buckets [numBuckets]uint64
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q*Count-th sample, capped by the exact
// maximum; 0 with no samples. The log-linear bucketing bounds the
// relative error at 12.5%.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.buckets {
		cum += c
		if cum >= rank {
			u := bucketUpper(i)
			if u > s.Max {
				u = s.Max
			}
			return u
		}
	}
	return s.Max
}

// Merge folds another snapshot into s (bucket-wise sum, saturating
// total, max of maxima) — used to combine per-worker histograms into
// one run-level distribution.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	if sum := s.Sum + o.Sum; sum < s.Sum {
		s.Sum = math.MaxInt64
	} else {
		s.Sum = sum
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.buckets {
		s.buckets[i] += o.buckets[i]
	}
}

// Mean returns the snapshot's mean sample (0 with no samples).
func (s *HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}
