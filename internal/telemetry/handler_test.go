package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestHealthProbes(t *testing.T) {
	var h *Health
	h.Set("x", nil) // nil-safe
	rep := h.Check()
	if !rep.OK || rep.Probes != nil {
		t.Errorf("nil health = %+v", rep)
	}

	hl := NewHealth()
	if rep := hl.Check(); !rep.OK {
		t.Errorf("empty health unhealthy: %+v", rep)
	}
	ok := true
	hl.Set("engine", func() ProbeResult { return ProbeResult{OK: ok, Detail: "running"} })
	hl.Set("watermark", func() ProbeResult { return ProbeResult{OK: true} })
	rep = hl.Check()
	if !rep.OK || len(rep.Probes) != 2 || rep.Probes["engine"].Detail != "running" {
		t.Errorf("health = %+v", rep)
	}
	ok = false
	if rep = hl.Check(); rep.OK || rep.Probes["engine"].OK {
		t.Errorf("failing probe not reported: %+v", rep)
	}
	// Set replaces by name (a fresh run re-registers its probes).
	hl.Set("engine", func() ProbeResult { return ProbeResult{OK: true} })
	if rep = hl.Check(); !rep.OK {
		t.Errorf("replaced probe still failing: %+v", rep)
	}
}

func TestHandlerHealthz(t *testing.T) {
	hl := NewHealth()
	up := true
	hl.Set("engine", func() ProbeResult {
		if up {
			return ProbeResult{OK: true, Detail: "running"}
		}
		return ProbeResult{OK: false, Detail: "failed: boom"}
	})
	h := NewHandler(Admin{Health: hl})

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Errorf("healthy /healthz = %d\n%s", code, body)
	}
	var rep HealthReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if !rep.OK || rep.Probes["engine"].Detail != "running" {
		t.Errorf("healthz payload = %+v", rep)
	}

	up = false
	if code, body = get(t, h, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("unhealthy /healthz = %d\n%s", code, body)
	}

	// Nil health: trivially healthy.
	code, body = get(t, NewHandler(Admin{}), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok": true`) {
		t.Errorf("nil health /healthz = %d\n%s", code, body)
	}
}

func TestHandlerBuildz(t *testing.T) {
	h := NewHandler(Admin{Build: BuildInfo{
		Version: "v1.2.3",
		Config:  map[string]string{"shards": "4", "mode": "pattern"},
	}})
	code, body := get(t, h, "/buildz")
	if code != http.StatusOK {
		t.Fatalf("/buildz = %d", code)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("buildz not JSON: %v\n%s", err, body)
	}
	if got["version"] != "v1.2.3" {
		t.Errorf("version = %v", got["version"])
	}
	if gv, _ := got["go_version"].(string); !strings.HasPrefix(gv, "go") {
		t.Errorf("go_version = %v", got["go_version"])
	}
	if _, ok := got["gomaxprocs"].(float64); !ok {
		t.Errorf("gomaxprocs = %v", got["gomaxprocs"])
	}
	cfg, _ := got["config"].(map[string]any)
	if cfg["shards"] != "4" {
		t.Errorf("config = %v", got["config"])
	}

	// Empty build info still answers with the Go runtime facts.
	code, body = get(t, NewHandler(Admin{}), "/buildz")
	if code != http.StatusOK || !strings.Contains(body, "go_version") {
		t.Errorf("empty /buildz = %d\n%s", code, body)
	}
}

func TestHandlerTracez(t *testing.T) {
	tr := NewStageTracer(1, 8)
	sp := tr.Start(3, 0)
	sp.Stamp(StageExec, 999)
	sp.Finish()
	code, body := get(t, NewHandler(Admin{Stages: tr}), "/tracez")
	if code != http.StatusOK || !strings.Contains(body, `"exec"`) {
		t.Errorf("/tracez = %d\n%s", code, body)
	}
	// Unconfigured tracer reports disabled rather than 404ing.
	code, body = get(t, NewHandler(Admin{}), "/tracez")
	if code != http.StatusOK || !strings.Contains(body, `"enabled": false`) {
		t.Errorf("nil /tracez = %d\n%s", code, body)
	}
}

func TestHandlerCompatibilityWrapper(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(5)
	r.Register("compat_total", "", &c)
	code, body := get(t, Handler(r), "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "compat_total 5") {
		t.Errorf("/metrics = %d\n%s", code, body)
	}
	if code, _ := get(t, Handler(r), "/healthz"); code != http.StatusOK {
		t.Errorf("wrapper /healthz = %d", code)
	}
}
