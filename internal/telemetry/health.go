package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// ProbeResult is one health probe's verdict.
type ProbeResult struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Probe computes a point-in-time health verdict. Probes run on the
// /healthz scrape path and must be safe to call concurrently with the
// producer they observe (atomic loads, channel length reads).
type Probe func() ProbeResult

// Health is a named set of liveness/readiness probes backing
// /healthz. The runtime registers probes per run (engine running,
// watermark advancing, shards draining); Set replaces by name, so a
// long-lived server always reports the most recently started run —
// mirroring the registry's replace-on-collision registration.
//
// A nil *Health is a valid no-op for Set, so producers register
// unconditionally.
type Health struct {
	mu     sync.Mutex
	order  []string
	probes map[string]Probe
}

// NewHealth returns an empty probe set.
func NewHealth() *Health {
	return &Health{probes: map[string]Probe{}}
}

// Set registers or replaces the named probe. First registration fixes
// the name's position in the report order.
func (h *Health) Set(name string, p Probe) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if _, ok := h.probes[name]; !ok {
		h.order = append(h.order, name)
	}
	h.probes[name] = p
	h.mu.Unlock()
}

// HealthReport is the /healthz payload: the conjunction of all probes
// plus each probe's verdict, in registration order.
type HealthReport struct {
	OK     bool                   `json:"ok"`
	Probes map[string]ProbeResult `json:"probes,omitempty"`
}

// Check runs every probe. A nil or empty Health is healthy (an engine
// with nothing registered has nothing to be unhealthy about).
func (h *Health) Check() HealthReport {
	rep := HealthReport{OK: true}
	if h == nil {
		return rep
	}
	h.mu.Lock()
	names := make([]string, len(h.order))
	copy(names, h.order)
	probes := make([]Probe, len(names))
	for i, n := range names {
		probes[i] = h.probes[n]
	}
	h.mu.Unlock()
	if len(names) == 0 {
		return rep
	}
	rep.Probes = make(map[string]ProbeResult, len(names))
	for i, n := range names {
		r := probes[i]()
		rep.Probes[n] = r
		if !r.OK {
			rep.OK = false
		}
	}
	return rep
}

// WriteHealthz renders the report as indented JSON.
func (h *Health) WriteHealthz(w io.Writer) (HealthReport, error) {
	rep := h.Check()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}
