// Stage tracing (DESIGN.md §3.7): a zero-allocation span layer that
// follows sampled ticks end to end through the runtime pipeline and
// answers "where did the time go" per stage — decode, read-ahead
// queue, routing, ring wait (queue time), execution (service time)
// and merge hold-back — instead of only whole-transaction latency.
//
// # Design
//
// One Span is the timeline of one sampled tick on one execution unit
// (a shard or a worker). The stage that creates the tick's work
// acquires a pooled span from the StageTracer, and every stage the
// tick passes through stamps its duration; the hand-off primitives
// already carry happens-before edges (SPSC ring release/acquire,
// channel send), so no extra synchronization is needed along the way.
// Finishing a span feeds the per-stage latency histograms, copies the
// timeline into the flight recorder, and recycles the record — the
// steady state allocates nothing (spans are pooled in slabs, the
// recorder writes into fixed slots, histograms are atomic adds).
//
// # Flight recorder
//
// The recorder keeps the last K completed timelines in a fixed ring.
// Writers claim a slot with an atomic cursor and guard the copy with
// a per-slot seqlock (odd version while writing); readers snapshot
// any moment without blocking writers, skipping the rare slot caught
// mid-write. It answers "what was the engine doing just before the
// anomaly" — /tracez serves the ring alongside the stage quantiles.
//
// A nil *StageTracer (and a nil *Span) is a valid no-op, so the
// runtime stamps unconditionally and pays one nil check when tracing
// is unconfigured.
package telemetry

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage of a tick's journey through the
// runtime.
type Stage uint8

const (
	// StageDecode is wire-to-events batch decoding on the ingest
	// goroutine (the tick's share is its batch's decode time).
	StageDecode Stage = iota
	// StageQueue is the decoded batch's wait in the read-ahead ring
	// before the dispatch/router stage popped it.
	StageQueue
	// StageRoute is partition key rendering, hashing and grant/batch
	// building on the router (sharded) or distributor (legacy) stage.
	StageRoute
	// StageRingWait is queue time: from grant hand-off until the
	// owning shard (or worker) starts executing the tick.
	StageRingWait
	// StageExec is service time: executing the tick's stream
	// transactions on the shard or worker.
	StageExec
	// StageMerge is output hold-back: from shard-side completion until
	// the ordered merge layer released the tick's derived events.
	StageMerge

	// NumStages is the number of pipeline stages.
	NumStages = 6
)

var stageNames = [NumStages]string{
	"decode", "queue_wait", "route", "ring_wait", "exec", "merge",
}

// String returns the stage's snake_case name as used in /tracez and
// metric labels.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage" + strconv.Itoa(int(s))
}

// Span is one sampled tick's timeline on one execution unit. Spans
// are pooled: obtain one from StageTracer.Start, stamp stages as the
// tick flows through the pipeline, and call Finish exactly once. All
// methods are nil-safe so call sites stamp unconditionally.
//
// A span is owned by one goroutine at a time; ownership transfers
// ride the runtime's existing hand-off primitives (ring push/pop,
// channel send), which carry the necessary happens-before edges.
type Span struct {
	t *StageTracer

	tick int64
	unit int32

	partitions int32
	events     int32
	emitted    int32

	stamped uint8
	durs    [NumStages]int64
	// mark is the wall-clock anchor of the next StampSince call,
	// advanced by each stamp so consecutive stages tile the timeline.
	mark int64
}

// Tick returns the application timestamp the span samples.
func (s *Span) Tick() int64 {
	if s == nil {
		return 0
	}
	return s.tick
}

// Stamp adds ns to the stage's duration (negative clamps to zero) and
// marks the stage observed.
func (s *Span) Stamp(st Stage, ns int64) {
	if s == nil {
		return
	}
	if ns > 0 {
		s.durs[st] += ns
	}
	s.stamped |= 1 << st
}

// MarkAt anchors the span's clock: the next StampSince measures from
// now (unix nanoseconds).
func (s *Span) MarkAt(now int64) {
	if s == nil {
		return
	}
	s.mark = now
}

// StampSince stamps the stage with now minus the last anchor and
// re-anchors at now, so consecutive StampSince calls tile the
// timeline without gaps.
func (s *Span) StampSince(st Stage, now int64) {
	if s == nil {
		return
	}
	s.Stamp(st, now-s.mark)
	s.mark = now
}

// SetCounts records how many stream transactions (partitions) and
// input events the tick carried on this unit.
func (s *Span) SetCounts(partitions, events int) {
	if s == nil {
		return
	}
	s.partitions = int32(partitions)
	s.events = int32(events)
}

// SetEmitted records how many derived events the tick emitted on this
// unit.
func (s *Span) SetEmitted(n int) {
	if s == nil {
		return
	}
	s.emitted = int32(n)
}

// Finish completes the span: observed stages feed the per-stage
// histograms, the timeline enters the flight recorder, and the record
// returns to the pool. The span must not be used afterwards.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	t := s.t
	for st := Stage(0); st < NumStages; st++ {
		if s.stamped&(1<<st) != 0 {
			t.hist[st].Observe(s.durs[st])
		}
	}
	t.record(s)
	t.Spans.Inc()
	t.release(s)
}

// appendStages renders " st=dur" pairs of the stages observed so far
// — appended to slow-transaction log lines. Only called on the slow
// path, where formatting cost is acceptable.
func (s *Span) appendStages(b []byte) []byte {
	if s == nil {
		return b
	}
	for st := Stage(0); st < NumStages; st++ {
		if s.stamped&(1<<st) == 0 {
			continue
		}
		b = append(b, ' ')
		b = append(b, st.String()...)
		b = append(b, '=')
		b = append(b, time.Duration(s.durs[st]).Round(time.Microsecond).String()...)
	}
	return b
}

// TickTimeline is one completed span, copied into the flight
// recorder: the per-stage durations plus the tick's shape.
type TickTimeline struct {
	// Tick is the application timestamp; Unit the shard or worker id
	// that executed the tick's slice.
	Tick int64
	Unit int
	// Partitions is the number of stream transactions, Events the
	// input batch size, Emitted the derived events produced.
	Partitions int
	Events     int
	Emitted    int
	// At is the completion wall-clock time (unix nanoseconds).
	At int64
	// Stages holds per-stage nanoseconds; Stamped flags which stages
	// were observed (bit i = Stage(i)).
	Stages  [NumStages]int64
	Stamped uint8
}

// Payload word layout of a traceSlot.
const (
	slotTick    = iota // application timestamp
	slotAt             // completion wall clock, unix ns
	slotShape          // unit<<32 | partitions
	slotCounts         // events<<32 | emitted
	slotStamped        // observed-stage bitmask
	slotStage0         // first of NumStages per-stage durations
	slotWords   = slotStage0 + NumStages
)

// traceSlot is one seqlock-guarded recorder slot: ver is odd while a
// writer copies in. The payload is a vector of atomic words rather
// than a plain struct so the seqlock is sound under the Go memory
// model — a reader racing a writer sees only atomic values, and the
// version recheck discards the torn snapshot.
type traceSlot struct {
	ver  atomic.Uint64
	data [slotWords]atomic.Int64
}

const (
	// DefaultSampleRate traces one in 64 ticks when the rate is left
	// unset — dense enough for live quantiles, sparse enough that the
	// extra clock reads vanish in the noise.
	DefaultSampleRate = 64
	// DefaultRecorderDepth is the flight-recorder ring size.
	DefaultRecorderDepth = 256

	// spanSlabSize is how many spans a pool refill allocates at once.
	spanSlabSize = 16
)

// StageTracer samples tick timelines at a fixed 1-in-N rate and
// aggregates them into per-stage latency histograms plus the flight
// recorder. One tracer may be shared by many runs (a server process
// keeps one for its lifetime); all methods are safe for concurrent
// use and nil-safe.
type StageTracer struct {
	n     int64
	ticks atomic.Int64

	hist [NumStages]Histogram

	// Spans counts completed spans, Drops recorder slots skipped due
	// to a concurrent writer (possible only after cursor wrap-around).
	// Exported for registry attachment.
	Spans Counter
	Drops Counter

	mu   sync.Mutex
	free []*Span

	slots  []traceSlot
	mask   uint64
	cursor atomic.Uint64
}

// NewStageTracer builds a tracer sampling one in sampleRate ticks
// with a flight recorder of depth timelines (rounded up to a power of
// two). Non-positive arguments select DefaultSampleRate and
// DefaultRecorderDepth.
func NewStageTracer(sampleRate, depth int) *StageTracer {
	if sampleRate <= 0 {
		sampleRate = DefaultSampleRate
	}
	if depth <= 0 {
		depth = DefaultRecorderDepth
	}
	d := 1
	for d < depth {
		d <<= 1
	}
	t := &StageTracer{n: int64(sampleRate), slots: make([]traceSlot, d), mask: uint64(d - 1)}
	t.refill()
	return t
}

// SampleRate reports the configured 1-in-N rate.
func (t *StageTracer) SampleRate() int {
	if t == nil {
		return 0
	}
	return int(t.n)
}

// SampleTick reports whether the caller's current tick falls on the
// sampling lattice (one in N ticks; nil tracer never samples). Each
// dispatching stage calls it exactly once per tick.
func (t *StageTracer) SampleTick() bool {
	if t == nil {
		return false
	}
	return t.ticks.Add(1)%t.n == 0
}

// Start acquires a pooled span for one sampled tick on one execution
// unit. Nil tracer returns a nil span (all of whose methods no-op).
func (t *StageTracer) Start(tick int64, unit int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if len(t.free) == 0 {
		t.refill()
	}
	s := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	t.mu.Unlock()
	s.tick, s.unit = tick, int32(unit)
	return s
}

// refill allocates one span slab into the free list (t.mu held, or
// construction time).
func (t *StageTracer) refill() {
	slab := make([]Span, spanSlabSize)
	for i := range slab {
		slab[i].t = t
		t.free = append(t.free, &slab[i])
	}
}

func (t *StageTracer) release(s *Span) {
	*s = Span{t: t}
	t.mu.Lock()
	t.free = append(t.free, s)
	t.mu.Unlock()
}

// record copies the finished span into the flight recorder. Slot
// claims are serialized by the cursor; a writer that finds its slot
// mid-write (only possible when a peer stalled for a full ring
// wrap-around) drops the timeline rather than blocking.
func (t *StageTracer) record(s *Span) {
	i := t.cursor.Add(1) - 1
	sl := &t.slots[i&t.mask]
	v := sl.ver.Load()
	if v&1 != 0 || !sl.ver.CompareAndSwap(v, v+1) {
		t.Drops.Inc()
		return
	}
	sl.data[slotTick].Store(s.tick)
	sl.data[slotAt].Store(time.Now().UnixNano())
	sl.data[slotShape].Store(int64(s.unit)<<32 | int64(uint32(s.partitions)))
	sl.data[slotCounts].Store(int64(s.events)<<32 | int64(uint32(s.emitted)))
	sl.data[slotStamped].Store(int64(s.stamped))
	for st := 0; st < NumStages; st++ {
		sl.data[slotStage0+st].Store(s.durs[st])
	}
	sl.ver.Store(v + 2)
}

// StageSnapshot returns the stage's latency distribution.
func (t *StageTracer) StageSnapshot(st Stage) HistogramSnapshot {
	if t == nil {
		return HistogramSnapshot{}
	}
	return t.hist[st].Snapshot()
}

// Timelines returns the flight recorder's completed timelines, oldest
// first (at most the recorder depth). Slots caught mid-write are
// skipped, never torn.
func (t *StageTracer) Timelines() []TickTimeline {
	if t == nil {
		return nil
	}
	cur := t.cursor.Load()
	n := uint64(len(t.slots))
	start := uint64(0)
	if cur > n {
		start = cur - n
	}
	out := make([]TickTimeline, 0, cur-start)
	for i := start; i < cur; i++ {
		sl := &t.slots[i&t.mask]
		v := sl.ver.Load()
		if v&1 != 0 {
			continue
		}
		var d [slotWords]int64
		for j := range d {
			d[j] = sl.data[j].Load()
		}
		if sl.ver.Load() != v {
			continue
		}
		shape, counts := d[slotShape], d[slotCounts]
		tl := TickTimeline{
			Tick:       d[slotTick],
			Unit:       int(shape >> 32),
			Partitions: int(int32(shape)),
			Events:     int(counts >> 32),
			Emitted:    int(int32(counts)),
			At:         d[slotAt],
			Stamped:    uint8(d[slotStamped]),
		}
		copy(tl.Stages[:], d[slotStage0:])
		out = append(out, tl)
	}
	return out
}

// RegisterOn attaches the tracer's stage histograms and counters to a
// registry as caesar_stage_ns{stage="..."} summaries. Nil-safe on
// both sides.
func (t *StageTracer) RegisterOn(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	for st := Stage(0); st < NumStages; st++ {
		reg.Register("caesar_stage_ns", "per-stage latency of sampled tick timelines",
			&t.hist[st], Label{Key: "stage", Value: st.String()})
	}
	reg.Register("caesar_trace_spans_total", "tick timelines completed by the stage tracer", &t.Spans)
	reg.Register("caesar_trace_drops_total", "flight-recorder slots dropped to a concurrent writer", &t.Drops)
}

// WriteTracez renders the /tracez payload: sampling configuration,
// per-stage quantiles, and the flight recorder's recent timelines
// (oldest first). A nil tracer reports {"enabled": false}.
func (t *StageTracer) WriteTracez(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if t == nil {
		return enc.Encode(map[string]any{"enabled": false})
	}
	stages := map[string]any{}
	for st := Stage(0); st < NumStages; st++ {
		s := t.hist[st].Snapshot()
		if s.Count == 0 {
			continue
		}
		stages[st.String()] = map[string]int64{
			"count":   int64(s.Count),
			"p50_ns":  s.Quantile(0.5),
			"p95_ns":  s.Quantile(0.95),
			"p99_ns":  s.Quantile(0.99),
			"max_ns":  s.Max,
			"mean_ns": s.Mean(),
		}
	}
	tls := t.Timelines()
	recent := make([]map[string]any, 0, len(tls))
	for i := range tls {
		recent = append(recent, tls[i].jsonMap())
	}
	return enc.Encode(map[string]any{
		"enabled":     true,
		"sample_rate": t.n,
		"spans":       t.Spans.Value(),
		"drops":       t.Drops.Value(),
		"stages":      stages,
		"recent":      recent,
	})
}

// jsonMap renders one timeline for /tracez, naming only the observed
// stages.
func (tl *TickTimeline) jsonMap() map[string]any {
	st := map[string]int64{}
	for i := Stage(0); i < NumStages; i++ {
		if tl.Stamped&(1<<i) != 0 {
			st[i.String()] = tl.Stages[i]
		}
	}
	return map[string]any{
		"tick":              tl.Tick,
		"unit":              tl.Unit,
		"partitions":        tl.Partitions,
		"events":            tl.Events,
		"emitted":           tl.Emitted,
		"completed_unix_ns": tl.At,
		"stages_ns":         st,
	}
}
