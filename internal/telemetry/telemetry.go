// Package telemetry is the engine's observability core: a lock-free,
// zero-allocation-on-hot-path metrics registry (atomic counters,
// gauges and fixed-bucket log-scale histograms with quantile
// extraction), a lightweight stream-transaction tracer, and text
// exposition in Prometheus and JSON formats.
//
// # Design
//
// Metric types are plain structs whose zero value is ready to use;
// recording is a handful of atomic operations — no locks, no maps,
// no allocation. Producers own their metric objects (the runtime
// embeds them in per-run and per-worker state) and optionally attach
// them to a Registry, which is only a named view for the scrape
// endpoints: registration allocates, recording never does. The same
// objects back both the live /metrics view and the end-of-run Stats,
// so batch and serving paths report identical numbers by
// construction.
//
// Registering a metric under an already-taken name replaces the
// previous entry. Engines re-register their run metrics on every Run
// (runs are rebuilt from scratch), so a registry attached to a
// long-lived server always exposes the most recently started run.
//
// # Zero-allocation discipline
//
// Counter.Add/Inc, Gauge.Set/Add and Histogram.Observe are the only
// operations permitted on engine hot paths; all of them are
// allocation-free atomics. Formatting, snapshotting and quantile
// extraction happen on the scrape path only.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter (between runs; not for concurrent use).
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a settable signed value. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a gauge whose value is computed at scrape time. The
// function must be safe to call concurrently with the producer (e.g.
// a channel length read).
type GaugeFunc func() int64

// Label is one name="value" pair attached to a metric.
type Label struct{ Key, Value string }

// entry is one registered metric. labels is pre-rendered at
// registration so the scrape path only concatenates.
type entry struct {
	name   string
	help   string
	labels string // rendered {k="v",...} or ""
	metric any    // *Counter | *Gauge | GaugeFunc | *Histogram
}

func (e *entry) fullName() string { return e.name + e.labels }

// Registry is a named view over metric objects for the scrape
// endpoints. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries []*entry
	index   map[string]int // fullName -> entries position
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]int{}}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + `="` + l.Value + `"`
	}
	return s + "}"
}

// Register attaches a metric object under name (+labels). A nil
// registry is a no-op, so producers can register unconditionally.
// Re-registering a full name replaces the previous entry in place,
// keeping the exposition order stable.
func (r *Registry) Register(name, help string, metric any, labels ...Label) {
	if r == nil {
		return
	}
	switch metric.(type) {
	case *Counter, *Gauge, GaugeFunc, *Histogram:
	default:
		panic(fmt.Sprintf("telemetry: unsupported metric type %T", metric))
	}
	e := &entry{name: name, help: help, labels: renderLabels(labels), metric: metric}
	r.mu.Lock()
	if i, ok := r.index[e.fullName()]; ok {
		r.entries[i] = e
	} else {
		r.index[e.fullName()] = len(r.entries)
		r.entries = append(r.entries, e)
	}
	r.mu.Unlock()
}

// sorted returns the entries sorted by full name (stable scrape
// output regardless of registration order).
func (r *Registry) sorted() []*entry {
	r.mu.RLock()
	es := make([]*entry, len(r.entries))
	copy(es, r.entries)
	r.mu.RUnlock()
	sort.Slice(es, func(i, j int) bool { return es[i].fullName() < es[j].fullName() })
	return es
}

// quantiles exposed for histograms, in exposition order.
var exportQuantiles = []struct {
	q     float64
	label string
}{{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Histograms are rendered as
// summaries (quantile series plus _sum/_count) with an extra _max
// series carrying the exact maximum.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastTyped string
	for _, e := range r.sorted() {
		if e.name != lastTyped {
			typ := ""
			switch e.metric.(type) {
			case *Counter:
				typ = "counter"
			case *Gauge, GaugeFunc:
				typ = "gauge"
			case *Histogram:
				typ = "summary"
			}
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, typ); err != nil {
				return err
			}
			lastTyped = e.name
		}
		var err error
		switch m := e.metric.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, e.labels, m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, e.labels, m.Value())
		case GaugeFunc:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, e.labels, m())
		case *Histogram:
			err = writePromHistogram(w, e, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, e *entry, h *Histogram) error {
	snap := h.Snapshot()
	for _, eq := range exportQuantiles {
		lbl := `{quantile="` + eq.label + `"}`
		if e.labels != "" {
			lbl = e.labels[:len(e.labels)-1] + `,quantile="` + eq.label + `"}`
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", e.name, lbl, snap.Quantile(eq.q)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", e.name, e.labels, snap.Sum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, e.labels, snap.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_max%s %d\n", e.name, e.labels, snap.Max)
	return err
}

// Snapshot returns a point-in-time JSON-marshalable view: full metric
// name to value (counters and gauges) or to a summary object
// (histograms: count, sum, max, mean, p50, p95, p99).
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, e := range r.sorted() {
		switch m := e.metric.(type) {
		case *Counter:
			out[e.fullName()] = m.Value()
		case *Gauge:
			out[e.fullName()] = m.Value()
		case GaugeFunc:
			out[e.fullName()] = m()
		case *Histogram:
			s := m.Snapshot()
			out[e.fullName()] = map[string]int64{
				"count": int64(s.Count),
				"sum":   s.Sum,
				"max":   s.Max,
				"mean":  s.Mean(),
				"p50":   s.Quantile(0.5),
				"p95":   s.Quantile(0.95),
				"p99":   s.Quantile(0.99),
			}
		}
	}
	return out
}

// WriteJSON renders the Snapshot as indented JSON (the /statusz
// payload).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
