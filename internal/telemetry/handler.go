package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns the admin HTTP handler for a registry:
//
//	/metrics        Prometheus text exposition
//	/statusz        JSON snapshot of every registered metric
//	/debug/pprof/*  net/http/pprof profiling endpoints
//
// Everything is stdlib-only; mount it on a loopback or otherwise
// access-controlled listener — the pprof endpoints are not meant for
// the open internet.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
