package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
)

// BuildInfo describes the running binary for /buildz.
type BuildInfo struct {
	// Version is the build's version string; empty selects the main
	// module version from the embedded Go build info.
	Version string
	// Config is a flat summary of the effective engine configuration.
	Config map[string]string
}

// Admin bundles everything the admin HTTP surface exposes. Any field
// may be nil/zero: the corresponding endpoint degrades gracefully
// (nil tracer → {"enabled": false}, nil health → trivially healthy).
type Admin struct {
	Registry *Registry
	Stages   *StageTracer
	Health   *Health
	Build    BuildInfo
}

// NewHandler returns the admin HTTP handler:
//
//	/metrics        Prometheus text exposition
//	/statusz        JSON snapshot of every registered metric
//	/tracez         stage-trace quantiles + flight-recorder timelines
//	/healthz        liveness/readiness probes (503 when any fails)
//	/buildz         version, Go runtime, config summary
//	/debug/pprof/*  net/http/pprof profiling endpoints
//
// Everything is stdlib-only; mount it on a loopback or otherwise
// access-controlled listener — the pprof endpoints are not meant for
// the open internet.
func NewHandler(a Admin) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if a.Registry != nil {
			_ = a.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if a.Registry != nil {
			_ = a.Registry.WriteJSON(w)
		} else {
			_, _ = w.Write([]byte("{}\n"))
		}
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = a.Stages.WriteTracez(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		rep := a.Health.Check()
		if !rep.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	mux.HandleFunc("/buildz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildzPayload(a.Build))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Handler returns the admin handler for a bare registry (the pre-
// stage-tracing surface, kept for callers that only have metrics).
func Handler(r *Registry) http.Handler {
	return NewHandler(Admin{Registry: r})
}

func buildzPayload(b BuildInfo) map[string]any {
	version := b.Version
	vcs := map[string]string{}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if version == "" {
			version = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				vcs[kv.Key] = kv.Value
			}
		}
	}
	if version == "" {
		version = "(devel)"
	}
	out := map[string]any{
		"version":    version,
		"go_version": runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"num_cpu":    runtime.NumCPU(),
	}
	if len(vcs) > 0 {
		out["vcs"] = vcs
	}
	if len(b.Config) > 0 {
		out["config"] = b.Config
	}
	return out
}
