package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var g Gauge
	var h Histogram
	c.Add(41)
	c.Inc()
	g.Set(7)
	g.Add(-3)
	h.Observe(100)
	r.Register("caesar_events_total", "events seen", &c)
	r.Register("caesar_queue_depth", "queued transactions", &g, Label{"worker", "0"})
	r.Register("caesar_txn_latency_ns", "txn latency", &h, Label{"worker", "0"})
	r.Register("caesar_parts", "partitions", GaugeFunc(func() int64 { return 3 }))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP caesar_events_total events seen",
		"# TYPE caesar_events_total counter",
		"caesar_events_total 42",
		"# TYPE caesar_queue_depth gauge",
		`caesar_queue_depth{worker="0"} 4`,
		"# TYPE caesar_txn_latency_ns summary",
		`caesar_txn_latency_ns{worker="0",quantile="0.99"}`,
		`caesar_txn_latency_ns_count{worker="0"} 1`,
		`caesar_txn_latency_ns_max{worker="0"} 100`,
		"caesar_parts 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	snap := r.Snapshot()
	if snap["caesar_events_total"] != uint64(42) {
		t.Errorf("snapshot counter = %v", snap["caesar_events_total"])
	}
	hs, ok := snap[`caesar_txn_latency_ns{worker="0"}`].(map[string]int64)
	if !ok || hs["count"] != 1 || hs["max"] != 100 {
		t.Errorf("snapshot histogram = %v", snap[`caesar_txn_latency_ns{worker="0"}`])
	}

	b.Reset()
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"caesar_events_total": 42`) {
		t.Errorf("json snapshot:\n%s", b.String())
	}
}

func TestRegistryReplace(t *testing.T) {
	r := NewRegistry()
	var c1, c2 Counter
	c1.Add(1)
	c2.Add(2)
	r.Register("x_total", "", &c1)
	r.Register("x_total", "", &c2) // a fresh run re-registers
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x_total 2") || strings.Contains(b.String(), "x_total 1\n") {
		t.Errorf("replace semantics broken:\n%s", b.String())
	}
}

func TestNilRegistryRegister(t *testing.T) {
	var r *Registry
	var c Counter
	r.Register("x", "", &c) // must not panic
}

func TestTracer(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(time.Millisecond, &b)
	tr.Record(100*time.Microsecond, "p1", 7, 3, 10, nil) // fast: counted, not logged
	tr.Record(5*time.Millisecond, "p2|", 9, 2, 4, nil)   // slow: logged
	if tr.Spans.Value() != 2 || tr.Slow.Value() != 1 {
		t.Errorf("spans=%d slow=%d", tr.Spans.Value(), tr.Slow.Value())
	}
	out := b.String()
	if !strings.Contains(out, "partition=p2|") || !strings.Contains(out, "tick=9") ||
		!strings.Contains(out, "plans=2") || !strings.Contains(out, "events=4") {
		t.Errorf("slow txn log = %q", out)
	}
	if strings.Contains(out, "p1") {
		t.Errorf("fast txn logged: %q", out)
	}

	var nilTr *Tracer
	nilTr.Record(time.Second, "x", 1, 1, 1, nil) // no-op, must not panic

	// A slow record carrying a stage span appends its breakdown.
	b.Reset()
	st := NewStageTracer(1, 8)
	sp := st.Start(9, 0)
	sp.Stamp(StageRingWait, int64(2*time.Millisecond))
	sp.Stamp(StageExec, int64(3*time.Millisecond))
	tr.Record(5*time.Millisecond, "p3", 9, 1, 2, sp)
	if out := b.String(); !strings.Contains(out, "ring_wait=2ms") || !strings.Contains(out, "exec=3ms") {
		t.Errorf("slow txn span breakdown missing: %q", out)
	}
	sp.Finish()
}

// TestRegistryConcurrentScrape hammers counters, gauges and
// histograms from N writer goroutines while a reader scrapes
// snapshots and text expositions, asserting monotonicity and the
// no-torn-read invariant. Run under -race in CI.
func TestRegistryConcurrentScrape(t *testing.T) {
	const writers = 8
	const perWriter = 20000

	r := NewRegistry()
	var c Counter
	var g Gauge
	var h Histogram
	r.Register("stress_total", "", &c)
	r.Register("stress_gauge", "", &g)
	r.Register("stress_hist", "", &h)
	r.Register("stress_fn", "", GaugeFunc(func() int64 { return g.Value() }))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed + int64(j%1000))
			}
		}(int64(i))
	}

	var readerErr error
	fail := func(format string, args ...any) {
		if readerErr == nil {
			readerErr = fmt.Errorf(format, args...)
		}
	}
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		var lastCount, lastHist uint64
		var lastMax int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := c.Value(); v < lastCount {
				fail("counter went backwards: %d -> %d", lastCount, v)
			} else {
				lastCount = v
			}
			s := h.Snapshot()
			if s.Count < lastHist {
				fail("histogram count went backwards: %d -> %d", lastHist, s.Count)
			} else {
				lastHist = s.Count
			}
			if s.Max < lastMax {
				fail("histogram max went backwards: %d -> %d", lastMax, s.Max)
			} else {
				lastMax = s.Max
			}
			// Count is incremented after the bucket: a snapshot that
			// reads count first can never see fewer bucket entries.
			var bucketSum uint64
			for _, b := range s.buckets {
				bucketSum += b
			}
			if bucketSum < s.Count {
				fail("torn snapshot: buckets %d < count %d", bucketSum, s.Count)
			}
			if err := r.WritePrometheus(io.Discard); err != nil {
				fail("scrape: %v", err)
			}
			_ = r.Snapshot()
		}
	}()

	wg.Wait()
	close(stop)
	rwg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if c.Value() != writers*perWriter {
		t.Errorf("final count = %d, want %d", c.Value(), writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Errorf("final histogram count = %d, want %d", h.Count(), writers*perWriter)
	}
	if g.Value() != writers*perWriter {
		t.Errorf("final gauge = %d, want %d", g.Value(), writers*perWriter)
	}
}
