package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	// Indices must be non-decreasing in the value and every bucket's
	// upper bound must map back to that bucket.
	last := -1
	for _, v := range []uint64{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 100,
		1000, 1 << 20, 1<<20 + 1, 1 << 39, 1<<40 - 1, 1 << 40, 1 << 50, math.MaxInt64} {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, last)
		}
		last = i
	}
	for i := 0; i < numBuckets-1; i++ {
		u := bucketUpper(i)
		if got := bucketIndex(uint64(u)); got != i {
			t.Errorf("bucketUpper(%d) = %d maps to bucket %d", i, u, got)
		}
		if got := bucketIndex(uint64(u) + 1); got != i+1 {
			t.Errorf("bucketUpper(%d)+1 = %d maps to bucket %d, want %d", i, u+1, got, i+1)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %d", h.Sum())
	}
	if h.Max() != 100 {
		t.Errorf("max = %d", h.Max())
	}
	if h.Mean() != 50 {
		t.Errorf("mean = %d", h.Mean())
	}
	s := h.Snapshot()
	// Log-linear quantiles are within 12.5% above the true value.
	checks := []struct {
		q    float64
		want int64
	}{{0.5, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*1.125+1 {
			t.Errorf("q%.2f = %d, want within [%d, %.0f]", c.q, got, c.want, float64(c.want)*1.125+1)
		}
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Error("reset did not clear")
	}
	if s := h.Snapshot(); s.Quantile(0.5) != 0 {
		t.Error("empty quantile not 0")
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-5 * time.Second)
	if h.Count() != 1 || h.Max() != 0 || h.Sum() != 0 {
		t.Errorf("negative sample not clamped: count=%d max=%d sum=%d", h.Count(), h.Max(), h.Sum())
	}
}

// TestHistogramSumSaturates is the LatencyTracker.Mean overflow
// regression test: very long runs must saturate the sum instead of
// wrapping into negative means.
func TestHistogramSumSaturates(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	h.Observe(math.MaxInt64)
	h.Observe(math.MaxInt64)
	if h.Sum() != math.MaxInt64 {
		t.Errorf("sum = %d, want saturation at MaxInt64", h.Sum())
	}
	if h.Mean() < 0 {
		t.Errorf("mean went negative: %d", h.Mean())
	}
	// Saturation must be sticky across further small additions.
	h.Observe(1)
	if h.Sum() != math.MaxInt64 || h.Mean() < 0 {
		t.Errorf("saturation not sticky: sum=%d mean=%d", h.Sum(), h.Mean())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	v := int64(1) << 45 // beyond maxExp
	h.Observe(v)
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != v {
		t.Errorf("overflow quantile = %d, want capped at exact max %d", got, v)
	}
}
