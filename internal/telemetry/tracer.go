package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer is a lightweight stream-transaction tracer: the runtime
// records one span per executed transaction, and spans slower than
// the configured threshold are logged with their partition, tick
// time, plans executed and event count. Fast spans cost two counter
// increments; only the slow path formats and writes (under a mutex),
// so tracing adds no allocation to healthy transactions.
//
// A nil *Tracer is a valid no-op, so callers record unconditionally.
type Tracer struct {
	threshold time.Duration

	mu sync.Mutex
	w  io.Writer

	// Spans counts all recorded transactions, Slow the ones at or
	// above the threshold. Exported for registry attachment.
	Spans Counter
	Slow  Counter
}

// NewTracer builds a tracer logging transactions that take at least
// threshold to w. A non-positive threshold logs nothing (the span
// counters still run).
func NewTracer(threshold time.Duration, w io.Writer) *Tracer {
	return &Tracer{threshold: threshold, w: w}
}

// Record registers one transaction span of duration d. partition is
// the stream partition key, tick the application timestamp of the
// transaction, plans the number of plan instances executed and
// events the transaction's batch size. sp, when non-nil, is the
// tick's stage span: slow-transaction lines then carry the per-stage
// breakdown observed so far (decode/queue/route/ring-wait), placing
// the slow execution in its pipeline context.
func (t *Tracer) Record(d time.Duration, partition string, tick int64, plans, events int, sp *Span) {
	if t == nil {
		return
	}
	t.Spans.Inc()
	if t.threshold <= 0 || d < t.threshold {
		return
	}
	t.Slow.Inc()
	if t.w == nil {
		return
	}
	t.mu.Lock()
	fmt.Fprintf(t.w, "telemetry: slow txn partition=%s tick=%d plans=%d events=%d dur=%s%s\n",
		partition, tick, plans, events, d, sp.appendStages(nil))
	t.mu.Unlock()
}
