package event

// Batch is one tick-aligned slice of an event stream: events in
// non-decreasing occurrence-end order, never splitting a tick (all
// events sharing an occurrence end time land in the same batch).
// That alignment is the batch protocol's one semantic obligation —
// the engine runs exactly one stream transaction per partition per
// tick, so a tick split across batches would execute twice and
// context transitions would fire mid-tick.
type Batch struct {
	// Epoch increases monotonically across batches from one source.
	Epoch uint64
	// Events is the batch payload, ordered by occurrence end time.
	// The pointers may reference arena slabs owned by the source; they
	// stay valid until the consumer's watermark passes them and the
	// source reclaims (see Reclaimer).
	Events []*Event
	// DecodeNs and ReadyNs are stage-tracing stamps set by the ingest
	// decode goroutine when tracing is enabled (zero otherwise): how
	// long the batch took to decode, and the wall-clock instant (unix
	// nanoseconds) it entered the read-ahead ring. The dispatch side
	// derives the batch's queue wait from ReadyNs.
	DecodeNs int64
	ReadyNs  int64
}

// BatchSource yields tick-aligned event batches. NextBatch fills b
// (reusing b.Events' capacity) and reports whether the stream has
// more; a false return with len(b.Events) > 0 delivers a final
// partial batch. Sources that can fail expose Err() error, checked
// after exhaustion, like per-event Sources.
type BatchSource interface {
	NextBatch(b *Batch) bool
}

// Reclaimer is implemented by batch sources whose events live in a
// recyclable arena. ReclaimBefore(t) tells the source that no event
// ending before t is referenced anymore; it returns how many slabs
// were recycled. Sources without an arena simply don't implement it.
type Reclaimer interface {
	ReclaimBefore(t Time) int
}

// batcherTarget is the Batcher's soft batch size: it closes a batch
// at the first tick boundary at or past this many events.
const batcherTarget = 512

// Batcher adapts a per-event Source to the batch protocol. It
// carries one peeked event across calls so it can close batches on
// tick boundaries without consuming into the next tick.
type Batcher struct {
	src   Source
	peek  *Event
	done  bool
	epoch uint64
}

// NewBatcher wraps src as a tick-aligned BatchSource.
func NewBatcher(src Source) *Batcher { return &Batcher{src: src} }

// NextBatch implements BatchSource.
func (b *Batcher) NextBatch(out *Batch) bool {
	out.Epoch = b.epoch
	out.Events = out.Events[:0]
	if b.done && b.peek == nil {
		return false
	}
	b.epoch++
	for {
		e := b.peek
		b.peek = nil
		if e == nil {
			if e = b.src.Next(); e == nil {
				b.done = true
				return false
			}
		}
		out.Events = append(out.Events, e)
		if len(out.Events) >= batcherTarget {
			// Consume the rest of the current tick, then stop.
			ts := e.End()
			for {
				n := b.src.Next()
				if n == nil {
					b.done = true
					return false
				}
				if n.End() != ts {
					b.peek = n
					return true
				}
				out.Events = append(out.Events, n)
			}
		}
	}
}

// Err proxies the wrapped source's Err, if any.
func (b *Batcher) Err() error {
	if es, ok := b.src.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

// perEvent adapts a BatchSource back to a per-event Source, for
// callers that want the legacy protocol (differential tests, the
// -no-pipeline escape hatch).
type perEvent struct {
	bs   BatchSource
	b    Batch
	pos  int
	done bool
}

// PerEvent wraps bs as a per-event Source. Arena-backed sources keep
// their events alive only until reclamation, so callers must not
// retain yielded pointers past their horizon.
func PerEvent(bs BatchSource) Source { return &perEvent{bs: bs} }

func (p *perEvent) Next() *Event {
	for p.pos >= len(p.b.Events) {
		if p.done {
			return nil
		}
		p.pos = 0
		if !p.bs.NextBatch(&p.b) {
			p.done = true
			if len(p.b.Events) == 0 {
				return nil
			}
		}
	}
	e := p.b.Events[p.pos]
	p.pos++
	return e
}

// Err proxies the wrapped batch source's Err, if any.
func (p *perEvent) Err() error {
	if es, ok := p.bs.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

// DrainBatches reads a batch source to exhaustion and returns all
// events. Arena-backed sources recycle slabs, so the result is only
// safe for sources with GC-managed events (e.g. Batcher, SliceSource).
func DrainBatches(bs BatchSource) []*Event {
	var out []*Event
	var b Batch
	for {
		more := bs.NextBatch(&b)
		out = append(out, b.Events...)
		if !more {
			return out
		}
	}
}
