package event

// Allocator hands out Event records for derived-event construction
// (DESIGN.md §3.8). The output path — projection, aggregation flush —
// builds one Event plus one Values region per derived event; routing
// that construction through an allocator lets the runtime substitute
// a per-worker slab arena for the GC heap without the operators
// knowing which they got.
//
// Contract: Alloc returns an Event with Schema, Time and a Values
// slice of exactly nvals slots set; Arrival is zero. The slots are
// NOT guaranteed to be zeroed (the arena recycles slabs), so the
// caller must assign every slot before the event escapes. Lifetime is
// allocator-defined: heap events live as long as they are referenced;
// arena events live until the owning arena reclaims past their
// occurrence end time.
type Allocator interface {
	Alloc(s *Schema, iv Interval, nvals int) *Event
}

// HeapAlloc is the GC-backed Allocator: every event is a fresh heap
// record, exempt from any reclamation. It is the ablation path behind
// Config.DisableDerivedArena and the default for operators executed
// outside an engine run (unit tests, ad-hoc evaluation).
type HeapAlloc struct{}

// Alloc returns a fresh heap event with zeroed Values.
func (HeapAlloc) Alloc(s *Schema, iv Interval, nvals int) *Event {
	return &Event{Schema: s, Time: iv, Values: make([]Value, nvals)}
}

// Arena implements Allocator.
var _ Allocator = (*Arena)(nil)
var _ Allocator = HeapAlloc{}

// Clone copies an event to a fresh heap record (deep for the Values
// slice; Value strings are immutable and shared). The runtime clones
// arena-backed derived events into Stats.Outputs so collected results
// outlive slab reclamation and the next Run.
func Clone(e *Event) *Event {
	c := &Event{Schema: e.Schema, Time: e.Time, Arrival: e.Arrival}
	c.Values = make([]Value, len(e.Values))
	copy(c.Values, e.Values)
	return c
}
