package event

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the wire-format parser through
// both stream protocols. The invariants: no panic on any input, the
// per-event heap path and the arena batch path decode the identical
// event sequence, and they fail (or not) identically.
func FuzzReader(f *testing.F) {
	seeds := []string{
		"PR|30|7|55.5|travel|true\nToll|31|7\n",
		"Toll|10~40|9\n",
		"# header\n\nToll|5|3\n   \nToll|6|4\n",
		"Nope|1|2\n",
		"Toll|x|2\n",
		"Toll|9~3|2\n",
		"Toll|1|2|3\n",
		"Toll|1|abc\n",
		"PR|1|1|zz|travel|true\n",
		"PR|1|1|1.0|travel|yes\n",
		"Toll\n",
		"Toll|9223372036854775807|1\nToll|9223372036854775808|1\n",
		"PR|-5|+7|-55.5|x|false\n",
		"|||\n~\n|\n",
		"Toll|1|2\x00\nToll|1|2",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		reg, _, _ := codecRegistry()

		heap := NewReader(bytes.NewReader(data), reg)
		var perEvent []*Event
		for e := heap.Next(); e != nil; e = heap.Next() {
			perEvent = append(perEvent, e)
		}

		batch := NewReader(bytes.NewReader(data), reg)
		batch.Tune(16, 8) // cross slab and batch boundaries early
		var b Batch
		var batched []*Event
		for {
			more := batch.NextBatch(&b)
			batched = append(batched, b.Events...)
			if !more {
				break
			}
		}

		if len(perEvent) != len(batched) {
			t.Fatalf("per-event path decoded %d events, batch path %d", len(perEvent), len(batched))
		}
		for i := range perEvent {
			if !perEvent[i].Equal(batched[i]) {
				t.Fatalf("event %d diverges:\n heap: %v\narena: %v", i, perEvent[i], batched[i])
			}
		}
		herr, berr := heap.Err(), batch.Err()
		if (herr == nil) != (berr == nil) {
			t.Fatalf("error divergence: per-event %v, batch %v", herr, berr)
		}
		if herr != nil && herr.Error() != berr.Error() {
			t.Fatalf("error message divergence:\n heap: %v\narena: %v", herr, berr)
		}
	})
}
