package event

import (
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("PositionReport", []Field{
		{Name: "vid", Kind: KindInt},
		{Name: "seg", Kind: KindInt},
		{Name: "speed", Kind: KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", nil); err == nil {
		t.Error("empty schema name accepted")
	}
	if _, err := NewSchema("E", []Field{{Name: "", Kind: KindInt}}); err == nil {
		t.Error("empty field name accepted")
	}
	if _, err := NewSchema("E", []Field{{Name: "a", Kind: KindInvalid}}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := NewSchema("E", []Field{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}); err == nil {
		t.Error("duplicate field accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.Name() != "PositionReport" || s.NumFields() != 3 {
		t.Fatalf("bad schema basics: %v", s)
	}
	if i := s.FieldIndex("seg"); i != 1 {
		t.Errorf("FieldIndex(seg) = %d", i)
	}
	if i := s.FieldIndex("nope"); i != -1 {
		t.Errorf("FieldIndex(nope) = %d", i)
	}
	if f := s.Field(2); f.Name != "speed" || f.Kind != KindFloat {
		t.Errorf("Field(2) = %+v", f)
	}
	want := "PositionReport(vid int, seg int, speed float)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	fs := s.Fields()
	fs[0].Name = "mutated"
	if s.Field(0).Name != "vid" {
		t.Error("Fields() must return a copy")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on invalid schema")
		}
	}()
	MustSchema("E", Field{Name: "", Kind: KindInt})
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	s := MustSchema("A", Field{Name: "x", Kind: KindInt})
	if err := r.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(MustSchema("A")); err == nil {
		t.Error("duplicate registration accepted")
	}
	r.MustRegister(MustSchema("B"))
	if got, ok := r.Lookup("A"); !ok || got != s {
		t.Error("Lookup(A) failed")
	}
	if _, ok := r.Lookup("Z"); ok {
		t.Error("Lookup(Z) should fail")
	}
	if names := r.Names(); len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names() = %v", names)
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d", r.Len())
	}
}

func TestNewEventValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := New(s, 10, Int64(1)); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := New(s, 10, Int64(1), String("x"), Float64(1)); err == nil {
		t.Error("kind mismatch accepted")
	}
	// Int constant is assignable to float field.
	e, err := New(s, 10, Int64(1), Int64(2), Int64(55))
	if err != nil {
		t.Fatalf("int->float widening rejected: %v", err)
	}
	if e.End() != 10 || !e.Time.Contains(10) {
		t.Errorf("bad event time: %v", e.Time)
	}
}

func TestEventAccessorsAndString(t *testing.T) {
	s := testSchema(t)
	e := MustNew(s, 120, Int64(17), Int64(3), Float64(40))
	if v, ok := e.Get("vid"); !ok || v.Int != 17 {
		t.Errorf("Get(vid) = %v, %v", v, ok)
	}
	if _, ok := e.Get("nope"); ok {
		t.Error("Get(nope) should fail")
	}
	if e.At(1).Int != 3 {
		t.Errorf("At(1) = %v", e.At(1))
	}
	if e.TypeName() != "PositionReport" {
		t.Errorf("TypeName() = %q", e.TypeName())
	}
	str := e.String()
	if !strings.Contains(str, "vid=17") || !strings.Contains(str, "@120") {
		t.Errorf("String() = %q", str)
	}
}

func TestEventEqual(t *testing.T) {
	s := testSchema(t)
	a := MustNew(s, 10, Int64(1), Int64(2), Float64(3))
	b := MustNew(s, 10, Int64(1), Int64(2), Float64(3))
	c := MustNew(s, 11, Int64(1), Int64(2), Float64(3))
	d := MustNew(s, 10, Int64(9), Int64(2), Float64(3))
	if !a.Equal(b) {
		t.Error("identical events unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different events equal")
	}
	b.Arrival = 999
	if !a.Equal(b) {
		t.Error("Arrival must not affect equality")
	}
	var nilEv *Event
	if a.Equal(nilEv) || !nilEv.Equal(nil) {
		t.Error("nil handling broken")
	}
	other := MustSchema("Other", Field{Name: "vid", Kind: KindInt},
		Field{Name: "seg", Kind: KindInt}, Field{Name: "speed", Kind: KindFloat})
	e := MustNew(other, 10, Int64(1), Int64(2), Float64(3))
	if a.Equal(e) {
		t.Error("events of different schemas must be unequal")
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{Start: 5, End: 10}
	if !a.Valid() || !(Interval{Start: 3, End: 3}).Valid() {
		t.Error("Valid misreports")
	}
	if (Interval{Start: 4, End: 3}).Valid() {
		t.Error("inverted interval reported valid")
	}
	if a.Contains(4) || !a.Contains(5) || !a.Contains(10) || a.Contains(11) {
		t.Error("Contains misreports")
	}
	sp := a.Span(Interval{Start: 2, End: 7})
	if sp.Start != 2 || sp.End != 10 {
		t.Errorf("Span = %v", sp)
	}
	if got := Point(7).String(); got != "@7" {
		t.Errorf("Point String = %q", got)
	}
	if got := a.String(); got != "@[5,10]" {
		t.Errorf("Interval String = %q", got)
	}
}
