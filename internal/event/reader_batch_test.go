package event

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// encodeStream renders events in the wire format.
func encodeStream(t *testing.T, evs []*Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range evs {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// wireStream builds a mixed-type stream with repeated timestamps.
func wireStream(t *testing.T, n int) (*Registry, []*Event) {
	t.Helper()
	reg, pr, toll := codecRegistry()
	lanes := []string{"travel", "exit"}
	var evs []*Event
	for i := 0; i < n; i++ {
		tm := Time(i / 3) // three events per tick
		evs = append(evs,
			MustNew(pr, tm, Int64(int64(i)), Float64(float64(i)+0.5), String(lanes[i%2]), Bool(i%2 == 0)),
			MustNew(toll, tm, Int64(int64(i))))
	}
	return reg, evs
}

// TestReaderNextBatchMatchesNext is the codec-level differential: the
// arena batch path must decode the identical event sequence as the
// heap per-event path.
func TestReaderNextBatchMatchesNext(t *testing.T) {
	reg, evs := wireStream(t, 600)
	wire := encodeStream(t, evs)

	heap := NewReader(bytes.NewReader(wire), reg)
	var perEvent []*Event
	for e := heap.Next(); e != nil; e = heap.Next() {
		perEvent = append(perEvent, e)
	}
	if heap.Err() != nil {
		t.Fatal(heap.Err())
	}

	batch := NewReader(bytes.NewReader(wire), reg)
	batch.Tune(64, 48) // small slabs, several batches
	checkBatches(t, batch, perEvent)
	if batch.Err() != nil {
		t.Fatal(batch.Err())
	}
}

// TestReaderReclaimAndReset drives the arena lifecycle: reclaiming
// behind a watermark recycles slabs, and a Reset reader decodes a
// second stream without growing the arena.
func TestReaderReclaimAndReset(t *testing.T) {
	reg, evs := wireStream(t, 900)
	wire := encodeStream(t, evs)

	r := NewReader(bytes.NewReader(wire), reg)
	r.Tune(32, 24)
	var b Batch
	seen := 0
	for {
		more := r.NextBatch(&b)
		for _, e := range b.Events {
			if e.Schema == nil || len(e.Values) == 0 {
				t.Fatalf("corrupt batch event %v", e)
			}
			seen++
		}
		if len(b.Events) > 0 {
			// Everything before this batch's tick is now unreferenced.
			r.ReclaimBefore(b.Events[0].End())
		}
		if !more {
			break
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if seen != len(evs) {
		t.Fatalf("decoded %d events, want %d", seen, len(evs))
	}
	chunks, reclaimed := r.ArenaChunks()
	if reclaimed == 0 {
		t.Fatal("watermark reclamation never recycled a slab")
	}
	if chunks >= reclaimed+10 {
		t.Fatalf("arena grew %d chunks with only %d reclaimed — recycling is not keeping up", chunks, reclaimed)
	}

	// Second pass over the same stream: the warmed arena must not grow.
	r.Reset(bytes.NewReader(wire))
	for r.NextBatch(&b) {
		r.ReclaimBefore(b.Events[0].End())
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	chunks2, _ := r.ArenaChunks()
	if chunks2 != chunks {
		t.Fatalf("second pass allocated new slabs: %d -> %d", chunks, chunks2)
	}
}

// TestReaderLongLine is the regression test for scanner-cap errors: a
// line over the 1 MiB cap must surface bufio.ErrTooLong wrapped with
// the input line number and format context, not the bare sentinel.
func TestReaderLongLine(t *testing.T) {
	reg, _, _ := codecRegistry()
	var buf bytes.Buffer
	buf.WriteString("Toll|1|7\n")
	buf.WriteString("Toll|2|")
	buf.WriteString(strings.Repeat("9", maxLine+100))
	buf.WriteString("\n")
	buf.WriteString("Toll|3|8\n")

	r := NewReader(bytes.NewReader(buf.Bytes()), reg)
	if e := r.Next(); e == nil || e.At(0).Int != 7 {
		t.Fatalf("first event = %v, want Toll vid=7", e)
	}
	if e := r.Next(); e != nil {
		t.Fatalf("oversized line decoded into %v", e)
	}
	err := r.Err()
	if err == nil {
		t.Fatal("oversized line produced no error")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("error does not wrap bufio.ErrTooLong: %v", err)
	}
	for _, want := range []string{"line 2", "TypeName|time|values"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// The batch path reports the same error.
	br := NewReader(bytes.NewReader(buf.Bytes()), reg)
	var b Batch
	for br.NextBatch(&b) {
	}
	if berr := br.Err(); berr == nil || !errors.Is(berr, bufio.ErrTooLong) {
		t.Errorf("batch path error = %v, want wrapped bufio.ErrTooLong", berr)
	}
}

// TestReaderGrowsPastInitialBuffer checks lines between the initial
// buffer size and the cap decode fine.
func TestReaderGrowsPastInitialBuffer(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(MustSchema("Note", Field{Name: "text", Kind: KindString}))
	long := strings.Repeat("x", 3*initialLineBuf)
	in := fmt.Sprintf("Note|1|%s\nNote|2|short\n", long)
	r := NewReader(strings.NewReader(in), reg)
	e := r.Next()
	if e == nil || e.At(0).Str != long {
		t.Fatal("long line did not round-trip")
	}
	if e = r.Next(); e == nil || e.At(0).Str != "short" {
		t.Fatalf("line after long line = %v", e)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// TestReaderErrorLineNumbers checks decode errors carry the 1-based
// input line number, counting comment and blank lines.
func TestReaderErrorLineNumbers(t *testing.T) {
	reg, _, _ := codecRegistry()
	in := "# header\n\nToll|5|3\nToll|6|bad\n"
	r := NewReader(strings.NewReader(in), reg)
	if e := r.Next(); e == nil {
		t.Fatal("valid event not decoded")
	}
	if e := r.Next(); e != nil {
		t.Fatalf("malformed line decoded into %v", e)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %v does not name line 4", r.Err())
	}
}
