package event

// Arena is the ingest-side event recycler (DESIGN.md §3.4): pooled
// Event records and flat Value backing arrays carved from fixed-size
// slabs, in the style of the pattern kernel's arena (algebra/arena.go).
// The decode path used to heap-allocate one *Event plus one []Value
// per wire line; the arena replaces both with slab carving, and whole
// slabs recycle once the engine's completion watermark passes them —
// no per-event refcounts anywhere.
//
// Lifecycle: Alloc carves records from the current slab; a full slab
// is sealed (appended to the live list, stamped with a monotonically
// increasing epoch) and a recycled or fresh slab takes its place.
// Slabs are filled in stream order, so a slab's max occurrence end
// time is final once sealed; ReclaimBefore(t) recycles the sealed
// prefix entirely below t. The caller guarantees t is below anything
// still referenced — the runtime derives it from the workers'
// transaction completion watermark minus the pattern horizon slack.
//
// The arena is single-goroutine, like the decode loop that owns it.
type Arena struct {
	chunkEvents int
	valueSlots  int

	cur  *slab
	live []*slab // sealed slabs, oldest first
	free []*slab

	epoch     uint64
	chunks    int
	reclaimed int
}

// DefaultChunkEvents is the slab granularity: events per slab. Value
// slots are provisioned at valueSlotsPerEvent per event; an event
// needing more seals the slab early, so odd schemas cost slab
// utilization, never correctness.
const (
	DefaultChunkEvents = 1024
	valueSlotsPerEvent = 8
)

type slab struct {
	events []Event
	values []Value
	nev    int
	nval   int
	maxEnd Time
	epoch  uint64
}

const minTime = Time(-1 << 62)

// NewArena builds an arena with the given slab size in events
// (chunkEvents <= 0 selects DefaultChunkEvents).
func NewArena(chunkEvents int) *Arena {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	return &Arena{chunkEvents: chunkEvents, valueSlots: chunkEvents * valueSlotsPerEvent}
}

// Alloc carves an event with schema s, occurrence interval iv and a
// capacity-capped Values slice of nvals slots. The slots are NOT
// zeroed — recycled slabs carry stale values — so the caller must
// assign every slot before the event escapes. The record stays valid
// until a ReclaimBefore call passes its occurrence end time.
func (a *Arena) Alloc(s *Schema, iv Interval, nvals int) *Event {
	if nvals > a.valueSlots {
		// Degenerate schema wider than a whole slab: fall back to a
		// heap event (GC-managed, exempt from reclamation).
		return &Event{Schema: s, Time: iv, Values: make([]Value, nvals)}
	}
	c := a.cur
	if c == nil || c.nev == len(c.events) || c.nval+nvals > len(c.values) {
		c = a.grow()
	}
	e := &c.events[c.nev]
	c.nev++
	e.Schema = s
	e.Time = iv
	e.Arrival = 0
	e.Values = c.values[c.nval : c.nval+nvals : c.nval+nvals]
	c.nval += nvals
	if iv.End > c.maxEnd {
		c.maxEnd = iv.End
	}
	return e
}

// grow seals the current slab and installs a recycled or fresh one.
func (a *Arena) grow() *slab {
	if a.cur != nil {
		a.epoch++
		a.cur.epoch = a.epoch
		a.live = append(a.live, a.cur)
	}
	var c *slab
	if n := len(a.free); n > 0 {
		c = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		c.nev, c.nval, c.maxEnd = 0, 0, minTime
	} else {
		c = &slab{
			events: make([]Event, a.chunkEvents),
			values: make([]Value, a.valueSlots),
			maxEnd: minTime,
		}
		a.chunks++
	}
	a.cur = c
	return c
}

// ReclaimBefore recycles every sealed slab whose events all end
// before t and returns how many slabs it freed. Stale Event records
// are not cleared — they are overwritten on the slab's next fill —
// so callers must never dereference events past the watermark they
// passed here. The slab being filled is never reclaimed.
func (a *Arena) ReclaimBefore(t Time) int {
	n := 0
	for n < len(a.live) && a.live[n].maxEnd < t {
		n++
	}
	if n == 0 {
		return 0
	}
	a.free = append(a.free, a.live[:n]...)
	rest := copy(a.live, a.live[n:])
	for i := rest; i < len(a.live); i++ {
		a.live[i] = nil
	}
	a.live = a.live[:rest]
	a.reclaimed += n
	return n
}

// Reset recycles every sealed slab and rewinds the slab being filled.
// The caller asserts nothing in the arena is referenced anymore.
// Sources that restart application time from zero (bench passes, a
// rewound generator) must use this instead of ReclaimBefore: the
// in-fill slab keeps its old maxEnd stamp otherwise, and once sealed
// it would head the live list with a stamp the restarted clock never
// passes, blocking reclamation of everything behind it.
func (a *Arena) Reset() {
	a.ReclaimBefore(Time(1 << 62))
	if a.cur != nil {
		a.cur.nev, a.cur.nval, a.cur.maxEnd = 0, 0, minTime
	}
}

// Chunks reports lifetime slab allocations — the arena's growth. A
// warmed steady state allocates no new slabs, so the counter
// flat-lines, exactly like the pattern arena's occupancy signal.
func (a *Arena) Chunks() int { return a.chunks }

// Reclaimed reports lifetime slab recycles.
func (a *Arena) Reclaimed() int { return a.reclaimed }

// LiveChunks reports sealed-but-unreclaimed slabs (excludes the slab
// currently being filled).
func (a *Arena) LiveChunks() int { return len(a.live) }

// Epoch reports the seal counter: the epoch stamped on the most
// recently sealed slab.
func (a *Arena) Epoch() uint64 { return a.epoch }
