package event

import (
	"fmt"
	"sort"
	"strings"
)

// Field is one attribute of an event schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema describes an event type: its name and ordered attribute
// fields. Events of a type store attribute values positionally, in
// schema field order, so attribute access never hashes a map on the
// hot path.
type Schema struct {
	name   string
	fields []Field
	index  map[string]int
	// typeIndex is the schema's dense position in the registry that
	// owns it (0 until registered). Hot-path per-type accounting is
	// keyed by it instead of hashing the type name.
	typeIndex int
}

// NewSchema builds a schema. Field names must be unique.
func NewSchema(name string, fields []Field) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("event: schema name must not be empty")
	}
	s := &Schema{
		name:   name,
		fields: append([]Field(nil), fields...),
		index:  make(map[string]int, len(fields)),
	}
	for i, f := range s.fields {
		if f.Name == "" {
			return nil, fmt.Errorf("event: schema %s: field %d has empty name", name, i)
		}
		if f.Kind == KindInvalid {
			return nil, fmt.Errorf("event: schema %s: field %s has invalid kind", name, f.Name)
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("event: schema %s: duplicate field %s", name, f.Name)
		}
		s.index[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and
// package-internal literals.
func MustSchema(name string, fields ...Field) *Schema {
	s, err := NewSchema(name, fields)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the event type name.
func (s *Schema) Name() string { return s.name }

// Index returns the schema's dense registry position: registration
// order, starting at 0. Unregistered schemas report 0; indices are
// unique only within one registry.
func (s *Schema) Index() int { return s.typeIndex }

// NumFields returns the number of attributes.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th attribute.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// FieldIndex returns the position of the named attribute, or -1.
func (s *Schema) FieldIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Fields returns a copy of the attribute list.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// String renders the schema as a declaration, e.g.
// "PositionReport(vid int, seg int)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Registry resolves event type names to schemas. A registry is built
// once at compile time and is read-only afterwards, so it is safe for
// concurrent use during execution.
type Registry struct {
	byName  map[string]*Schema
	ordered []*Schema
}

// NewRegistry returns an empty schema registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Schema)}
}

// Register adds a schema and assigns its dense Index (registration
// order). Registering a duplicate type name fails.
func (r *Registry) Register(s *Schema) error {
	if _, dup := r.byName[s.name]; dup {
		return fmt.Errorf("event: duplicate event type %s", s.name)
	}
	s.typeIndex = len(r.ordered)
	r.byName[s.name] = s
	r.ordered = append(r.ordered, s)
	return nil
}

// Schemas returns the registered schemas in Index order. The returned
// slice is shared; callers must not mutate it.
func (r *Registry) Schemas() []*Schema { return r.ordered }

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(s *Schema) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Lookup resolves a type name.
func (r *Registry) Lookup(name string) (*Schema, bool) {
	s, ok := r.byName[name]
	return s, ok
}

// Names returns all registered type names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered schemas.
func (r *Registry) Len() int { return len(r.byName) }
