package event

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Source yields events in non-decreasing occurrence-time order
// (paper §6.2: events arrive in-order by time stamps). Next returns
// nil when the stream is exhausted.
type Source interface {
	Next() *Event
}

// SliceSource replays a slice of events. It validates ordering
// lazily: yielding an out-of-order event panics, because a source
// violating the in-order contract would corrupt context derivation.
type SliceSource struct {
	events []*Event
	pos    int
	last   Time
	epoch  uint64
}

// NewSliceSource wraps events (not copied) as a Source.
func NewSliceSource(events []*Event) *SliceSource {
	return &SliceSource{events: events, last: -1 << 62}
}

// Next implements Source.
func (s *SliceSource) Next() *Event {
	if s.pos >= len(s.events) {
		return nil
	}
	e := s.events[s.pos]
	s.pos++
	if e.End() < s.last {
		panic(fmt.Sprintf("event: SliceSource out of order: %v after t=%d", e, s.last))
	}
	s.last = e.End()
	return e
}

// NextBatch implements BatchSource with zero-copy, tick-aligned
// subslices of the backing slice: no events are copied and no memory
// is allocated, so a replayed slice is the cheapest possible batch
// feed for benchmarks.
func (s *SliceSource) NextBatch(b *Batch) bool {
	b.Epoch = s.epoch
	b.Events = nil
	if s.pos >= len(s.events) {
		return false
	}
	s.epoch++
	start := s.pos
	end := start
	for end < len(s.events) {
		e := s.events[end]
		if e.End() < s.last {
			panic(fmt.Sprintf("event: SliceSource out of order: %v after t=%d", e, s.last))
		}
		s.last = e.End()
		end++
		if end-start >= batcherTarget {
			// Close the batch on the current tick boundary.
			for end < len(s.events) && s.events[end].End() == s.last {
				end++
			}
			break
		}
	}
	s.pos = end
	b.Events = s.events[start:end]
	return end < len(s.events)
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0; s.last = -1 << 62; s.epoch = 0 }

// Len returns the total number of events in the source.
func (s *SliceSource) Len() int { return len(s.events) }

// SortByTime sorts events in place by occurrence end time, stably, so
// that generator output can be fed to a Source.
func SortByTime(events []*Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].End() < events[j].End() })
}

// Drain reads a source to exhaustion and returns all events.
func Drain(src Source) []*Event {
	var out []*Event
	for e := src.Next(); e != nil; e = src.Next() {
		out = append(out, e)
	}
	return out
}

// Writer encodes events as line-oriented text:
//
//	TypeName|time|v1|v2|...
//
// The format is the on-disk interchange between cmd/lrgen and
// cmd/caesar. It is intentionally trivial: one line per event, fields
// separated by '|', strings must not contain '|' or newlines.
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write encodes one event.
func (w *Writer) Write(e *Event) error {
	b := w.w
	if _, err := b.WriteString(e.Schema.Name()); err != nil {
		return err
	}
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(int64(e.Time.Start), 10))
	if e.Time.End != e.Time.Start {
		b.WriteByte('~')
		b.WriteString(strconv.FormatInt(int64(e.Time.End), 10))
	}
	for _, v := range e.Values {
		b.WriteByte('|')
		b.WriteString(v.String())
	}
	return b.WriteByte('\n')
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Scanner buffer bounds, matching the bufio.Scanner limits the Reader
// historically used: lines over maxLine bytes fail with
// bufio.ErrTooLong (wrapped with the line number).
const (
	initialLineBuf = 64 * 1024
	maxLine        = 1 << 20
)

// lineScanner is a reusable replacement for bufio.Scanner: it yields
// '\n'-terminated lines as subslices of an internal growable buffer,
// and — unlike bufio.Scanner — can be pointed at a new reader with
// reset, so a steady-state Reader never reallocates its scan buffer.
type lineScanner struct {
	r          io.Reader
	buf        []byte
	start, end int
	eof        bool
}

func (s *lineScanner) reset(r io.Reader) {
	s.r = r
	s.start, s.end = 0, 0
	s.eof = false
}

// next returns the next line (without its '\n'), io.EOF at end of
// stream, bufio.ErrTooLong past maxLine, or the reader's error.
func (s *lineScanner) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(s.buf[s.start:s.end], '\n'); i >= 0 {
			line := s.buf[s.start : s.start+i]
			s.start += i + 1
			return line, nil
		}
		if s.eof {
			if s.start < s.end {
				line := s.buf[s.start:s.end]
				s.start = s.end
				return line, nil
			}
			return nil, io.EOF
		}
		if s.start > 0 {
			n := copy(s.buf, s.buf[s.start:s.end])
			s.start, s.end = 0, n
		}
		if s.end == len(s.buf) {
			if len(s.buf) >= maxLine {
				return nil, bufio.ErrTooLong
			}
			size := len(s.buf) * 2
			if size == 0 {
				size = initialLineBuf
			}
			if size > maxLine {
				size = maxLine
			}
			nb := make([]byte, size)
			copy(nb, s.buf[:s.end])
			s.buf = nb
		}
		n, err := s.r.Read(s.buf[s.end:])
		s.end += n
		if err == io.EOF {
			s.eof = true
		} else if err != nil {
			return nil, err
		}
	}
}

// Reader decodes the Writer format against a schema registry. It
// serves both stream protocols: Next yields heap-allocated events
// (the legacy per-event Source), and NextBatch decodes directly into
// an event slab arena with no per-event allocation (DESIGN.md §3.4).
// Decoding errors surface through Err after the stream ends.
type Reader struct {
	sc   lineScanner
	reg  *Registry
	err  error
	ln   int
	done bool

	arena       *Arena
	peek        *Event
	epoch       uint64
	batchEvents int
	chunkEvents int
}

// NewReader wraps r; schemas are resolved through reg.
func NewReader(r io.Reader, reg *Registry) *Reader {
	rd := &Reader{reg: reg, batchEvents: batcherTarget}
	rd.sc.reset(r)
	return rd
}

// Reset points the reader at a new input stream, clearing line
// numbers and errors but keeping the scan buffer and the arena — the
// reuse that makes repeated decoding allocation-free. All sealed
// arena slabs are recycled: resetting asserts the previous stream's
// events are no longer referenced.
func (r *Reader) Reset(rd io.Reader) {
	r.sc.reset(rd)
	r.err = nil
	r.ln = 0
	r.done = false
	r.peek = nil
	r.epoch = 0
	if r.arena != nil {
		r.arena.Reset()
	}
}

// Tune sizes the batch path: chunkEvents is the arena slab
// granularity (events per slab; effective only before the first
// NextBatch), batchEvents the soft batch size. Zero keeps a
// parameter's current setting.
func (r *Reader) Tune(chunkEvents, batchEvents int) {
	if chunkEvents > 0 {
		r.chunkEvents = chunkEvents
	}
	if batchEvents > 0 {
		r.batchEvents = batchEvents
	}
}

// Next implements Source. On malformed input it records the error and
// ends the stream.
func (r *Reader) Next() *Event {
	if e := r.peek; e != nil {
		r.peek = nil
		return e
	}
	return r.read(nil)
}

// read scans to the next event line and decodes it, into a when a is
// non-nil, onto the heap otherwise. It returns nil at end of stream
// or on error (recorded in r.err).
func (r *Reader) read(a *Arena) *Event {
	if r.err != nil || r.done {
		return nil
	}
	for {
		line, err := r.sc.next()
		if err == io.EOF {
			r.done = true
			return nil
		}
		if err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				r.err = fmt.Errorf("event: line %d: %w (line exceeds %d bytes; expected TypeName|time|values...)",
					r.ln+1, err, maxLine)
			} else {
				r.err = fmt.Errorf("event: line %d: %w", r.ln+1, err)
			}
			return nil
		}
		r.ln++
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		e, derr := r.decode(line, a)
		if derr != nil {
			r.err = fmt.Errorf("event: line %d: %w", r.ln, derr)
			return nil
		}
		return e
	}
}

// NextBatch implements BatchSource: it decodes whole ticks into the
// reader's arena until the soft batch size is reached. On a
// mid-stream error the partial batch is still delivered (false
// return) and the error is available through Err.
func (r *Reader) NextBatch(b *Batch) bool {
	b.Epoch = r.epoch
	b.Events = b.Events[:0]
	if r.err != nil || (r.done && r.peek == nil) {
		return false
	}
	if r.arena == nil {
		r.arena = NewArena(r.chunkEvents)
	}
	r.epoch++
	for {
		e := r.peek
		r.peek = nil
		if e == nil {
			if e = r.read(r.arena); e == nil {
				return false
			}
		}
		b.Events = append(b.Events, e)
		if len(b.Events) >= r.batchEvents {
			// Close the batch on the current tick boundary.
			ts := e.End()
			for {
				n := r.read(r.arena)
				if n == nil {
					return false
				}
				if n.End() != ts {
					r.peek = n
					return true
				}
				b.Events = append(b.Events, n)
			}
		}
	}
}

// ReclaimBefore implements Reclaimer: it recycles arena slabs fully
// below t. Safe to call only when no event ending before t is still
// referenced downstream.
func (r *Reader) ReclaimBefore(t Time) int {
	if r.arena == nil {
		return 0
	}
	return r.arena.ReclaimBefore(t)
}

// ArenaChunks reports (allocated, reclaimed) arena slab counts; zero
// before the first NextBatch.
func (r *Reader) ArenaChunks() (chunks, reclaimed int) {
	if r.arena == nil {
		return 0, 0
	}
	return r.arena.Chunks(), r.arena.Reclaimed()
}

// Err returns the first decoding or I/O error encountered.
func (r *Reader) Err() error { return r.err }

// decode parses one trimmed, non-empty line. With a non-nil arena the
// event and its Values array are carved from slabs; string and float
// attribute values still copy onto the heap, deliberately, because
// derived events may retain them past slab reclamation.
func (r *Reader) decode(line []byte, a *Arena) (*Event, error) {
	i := bytes.IndexByte(line, '|')
	if i < 0 {
		return nil, fmt.Errorf("expected TypeName|time|values..., got %q", line)
	}
	schema, ok := r.reg.byName[string(line[:i])] // no-alloc map lookup
	if !ok {
		return nil, fmt.Errorf("unknown event type %q", line[:i])
	}
	rest := line[i+1:]
	var tf, vals []byte
	nvals := 0
	if j := bytes.IndexByte(rest, '|'); j >= 0 {
		tf, vals = rest[:j], rest[j+1:]
		nvals = bytes.Count(vals, sep) + 1
	} else {
		tf = rest
	}
	iv, err := parseInterval(tf)
	if err != nil {
		return nil, err
	}
	if nvals != schema.NumFields() {
		return nil, fmt.Errorf("%s expects %d values, got %d", schema.Name(), schema.NumFields(), nvals)
	}
	var e *Event
	if a != nil {
		e = a.Alloc(schema, iv, nvals)
	} else {
		e = &Event{Schema: schema, Time: iv, Values: make([]Value, nvals)}
	}
	for i := 0; i < nvals; i++ {
		raw := vals
		if k := bytes.IndexByte(vals, '|'); k >= 0 {
			raw, vals = vals[:k], vals[k+1:]
		}
		v, err := parseValue(schema.Field(i).Kind, raw)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", schema.Name(), schema.Field(i).Name, err)
		}
		e.Values[i] = v
	}
	return e, nil
}

var sep = []byte{'|'}

func parseInterval(s []byte) (Interval, error) {
	if i := bytes.IndexByte(s, '~'); i >= 0 {
		start, ok1 := parseInt(s[:i])
		end, ok2 := parseInt(s[i+1:])
		if !ok1 || !ok2 || start > end {
			return Interval{}, fmt.Errorf("bad time interval %q", s)
		}
		return Interval{Start: Time(start), End: Time(end)}, nil
	}
	t, ok := parseInt(s)
	if !ok {
		return Interval{}, fmt.Errorf("bad time %q", s)
	}
	return Point(Time(t)), nil
}

func parseValue(k Kind, raw []byte) (Value, error) {
	switch k {
	case KindInt:
		n, ok := parseInt(raw)
		if !ok {
			return Value{}, fmt.Errorf("bad int %q", raw)
		}
		return Int64(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(string(raw), 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad float %q", raw)
		}
		return Float64(f), nil
	case KindString:
		// Deliberate copy: the string must outlive arena reclamation.
		return String(string(raw)), nil
	case KindBool:
		if string(raw) == "true" {
			return Bool(true), nil
		}
		if string(raw) == "false" {
			return Bool(false), nil
		}
		return Value{}, fmt.Errorf("bad bool %q", raw)
	default:
		return Value{}, fmt.Errorf("invalid kind")
	}
}

// parseInt is an allocation-free base-10 int64 parser with overflow
// checking, accepting an optional leading sign (the subset of
// strconv.ParseInt the wire format produces).
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	switch b[0] {
	case '+':
		b = b[1:]
	case '-':
		neg = true
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (1<<64-1-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n), true // n == 1<<63 wraps to MinInt64, which is correct
	}
	if n > 1<<63-1 {
		return 0, false
	}
	return int64(n), true
}
