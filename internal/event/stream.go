package event

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Source yields events in non-decreasing occurrence-time order
// (paper §6.2: events arrive in-order by time stamps). Next returns
// nil when the stream is exhausted.
type Source interface {
	Next() *Event
}

// SliceSource replays a slice of events. It validates ordering
// lazily: yielding an out-of-order event panics, because a source
// violating the in-order contract would corrupt context derivation.
type SliceSource struct {
	events []*Event
	pos    int
	last   Time
}

// NewSliceSource wraps events (not copied) as a Source.
func NewSliceSource(events []*Event) *SliceSource {
	return &SliceSource{events: events, last: -1 << 62}
}

// Next implements Source.
func (s *SliceSource) Next() *Event {
	if s.pos >= len(s.events) {
		return nil
	}
	e := s.events[s.pos]
	s.pos++
	if e.End() < s.last {
		panic(fmt.Sprintf("event: SliceSource out of order: %v after t=%d", e, s.last))
	}
	s.last = e.End()
	return e
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0; s.last = -1 << 62 }

// Len returns the total number of events in the source.
func (s *SliceSource) Len() int { return len(s.events) }

// SortByTime sorts events in place by occurrence end time, stably, so
// that generator output can be fed to a Source.
func SortByTime(events []*Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].End() < events[j].End() })
}

// Drain reads a source to exhaustion and returns all events.
func Drain(src Source) []*Event {
	var out []*Event
	for e := src.Next(); e != nil; e = src.Next() {
		out = append(out, e)
	}
	return out
}

// Writer encodes events as line-oriented text:
//
//	TypeName|time|v1|v2|...
//
// The format is the on-disk interchange between cmd/lrgen and
// cmd/caesar. It is intentionally trivial: one line per event, fields
// separated by '|', strings must not contain '|' or newlines.
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write encodes one event.
func (w *Writer) Write(e *Event) error {
	b := w.w
	if _, err := b.WriteString(e.Schema.Name()); err != nil {
		return err
	}
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(int64(e.Time.Start), 10))
	if e.Time.End != e.Time.Start {
		b.WriteByte('~')
		b.WriteString(strconv.FormatInt(int64(e.Time.End), 10))
	}
	for _, v := range e.Values {
		b.WriteByte('|')
		b.WriteString(v.String())
	}
	return b.WriteByte('\n')
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes the Writer format against a schema registry,
// yielding events as a Source. Decoding errors surface through Err
// after Next returns nil.
type Reader struct {
	sc  *bufio.Scanner
	reg *Registry
	err error
	ln  int
}

// NewReader wraps r; schemas are resolved through reg.
func NewReader(r io.Reader, reg *Registry) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &Reader{sc: sc, reg: reg}
}

// Next implements Source. On malformed input it records the error and
// ends the stream.
func (r *Reader) Next() *Event {
	if r.err != nil {
		return nil
	}
	for r.sc.Scan() {
		r.ln++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := r.decode(line)
		if err != nil {
			r.err = fmt.Errorf("event: line %d: %w", r.ln, err)
			return nil
		}
		return e
	}
	r.err = r.sc.Err()
	return nil
}

// Err returns the first decoding or I/O error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) decode(line string) (*Event, error) {
	parts := strings.Split(line, "|")
	if len(parts) < 2 {
		return nil, fmt.Errorf("expected TypeName|time|values..., got %q", line)
	}
	schema, ok := r.reg.Lookup(parts[0])
	if !ok {
		return nil, fmt.Errorf("unknown event type %q", parts[0])
	}
	iv, err := parseInterval(parts[1])
	if err != nil {
		return nil, err
	}
	vals := parts[2:]
	if len(vals) != schema.NumFields() {
		return nil, fmt.Errorf("%s expects %d values, got %d", schema.Name(), schema.NumFields(), len(vals))
	}
	values := make([]Value, len(vals))
	for i, raw := range vals {
		v, err := parseValue(schema.Field(i).Kind, raw)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", schema.Name(), schema.Field(i).Name, err)
		}
		values[i] = v
	}
	return &Event{Schema: schema, Time: iv, Values: values}, nil
}

func parseInterval(s string) (Interval, error) {
	if i := strings.IndexByte(s, '~'); i >= 0 {
		start, err1 := strconv.ParseInt(s[:i], 10, 64)
		end, err2 := strconv.ParseInt(s[i+1:], 10, 64)
		if err1 != nil || err2 != nil || start > end {
			return Interval{}, fmt.Errorf("bad time interval %q", s)
		}
		return Interval{Start: Time(start), End: Time(end)}, nil
	}
	t, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Interval{}, fmt.Errorf("bad time %q", s)
	}
	return Point(Time(t)), nil
}

func parseValue(k Kind, raw string) (Value, error) {
	switch k {
	case KindInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad int %q", raw)
		}
		return Int64(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad float %q", raw)
		}
		return Float64(f), nil
	case KindString:
		return String(raw), nil
	case KindBool:
		switch raw {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		default:
			return Value{}, fmt.Errorf("bad bool %q", raw)
		}
	default:
		return Value{}, fmt.Errorf("invalid kind")
	}
}
