// Package event defines the event model underlying the CAESAR engine:
// typed attribute values, event schemas, events with application-time
// intervals, and ordered event streams.
//
// Events are the only data that flows through CAESAR query plans
// (paper §2). Simple events carry a point timestamp assigned by the
// event source; complex events derived by the engine carry the
// interval spanned by their constituent events.
package event

import (
	"fmt"
	"strconv"
)

// Kind enumerates the attribute value kinds supported by the engine.
// The Linear Road benchmark uses integer attributes only; strings and
// floats appear in WHERE-clause constants and in the physical activity
// data set.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it marks an unset Value.
	KindInvalid Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindString is an immutable string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the lower-case name of the kind as it appears in
// event schema declarations ("int", "float", "string", "bool").
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// KindFromName parses a schema type name into a Kind.
func KindFromName(name string) (Kind, bool) {
	switch name {
	case "int":
		return KindInt, true
	case "float":
		return KindFloat, true
	case "string":
		return KindString, true
	case "bool":
		return KindBool, true
	default:
		return KindInvalid, false
	}
}

// Value is a tagged union holding one attribute value. The struct
// form avoids interface boxing on the hot path: a query plan touches
// every attribute of every event, so Values must not allocate.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
}

// Int64 constructs an integer Value.
func Int64(v int64) Value { return Value{Kind: KindInt, Int: v} }

// Float64 constructs a float Value.
func Float64(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// String constructs a string Value.
func String(v string) Value { return Value{Kind: KindString, Str: v} }

// Bool constructs a boolean Value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, Int: i}
}

// IsZero reports whether the Value is unset.
func (v Value) IsZero() bool { return v.Kind == KindInvalid }

// AsBool interprets the value as a boolean. Integers and floats are
// true when non-zero; strings are true when non-empty.
func (v Value) AsBool() bool {
	switch v.Kind {
	case KindBool, KindInt:
		return v.Int != 0
	case KindFloat:
		return v.Float != 0
	case KindString:
		return v.Str != ""
	default:
		return false
	}
}

// AsFloat returns the numeric value widened to float64. Booleans
// widen to 0/1; strings return 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt, KindBool:
		return float64(v.Int)
	case KindFloat:
		return v.Float
	default:
		return 0
	}
}

// Numeric reports whether the value participates in arithmetic.
func (v Value) Numeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Equal reports deep value equality. Numeric values compare across
// kinds (1 == 1.0); other kinds must match exactly.
func (v Value) Equal(o Value) bool {
	if v.Numeric() && o.Numeric() {
		if v.Kind == KindInt && o.Kind == KindInt {
			return v.Int == o.Int
		}
		return v.AsFloat() == o.AsFloat()
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindBool:
		return v.Int == o.Int
	default:
		return true
	}
}

// Compare orders two values: -1, 0 or +1. Numeric values compare
// numerically across kinds; strings lexicographically. Comparing
// incompatible kinds returns 0 with ok=false.
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if v.Numeric() && o.Numeric() {
		if v.Kind == KindInt && o.Kind == KindInt {
			switch {
			case v.Int < o.Int:
				return -1, true
			case v.Int > o.Int:
				return 1, true
			default:
				return 0, true
			}
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.Kind == KindString && o.Kind == KindString {
		switch {
		case v.Str < o.Str:
			return -1, true
		case v.Str > o.Str:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.Kind == KindBool && o.Kind == KindBool {
		switch {
		case v.Int < o.Int:
			return -1, true
		case v.Int > o.Int:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// String renders the value for diagnostics and stream encoding.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// Append renders the value into dst exactly as String does, without
// allocating when dst has capacity — the hot-path form the runtime's
// partition-key interning uses.
func (v Value) Append(dst []byte) []byte {
	switch v.Kind {
	case KindInt:
		return strconv.AppendInt(dst, v.Int, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.Float, 'g', -1, 64)
	case KindString:
		return append(dst, v.Str...)
	case KindBool:
		if v.Int != 0 {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	default:
		return append(dst, "<invalid>"...)
	}
}

// GoString implements fmt.GoStringer for readable test failures.
func (v Value) GoString() string {
	return fmt.Sprintf("event.Value{%s:%s}", v.Kind, v.String())
}
