package event

import (
	"bytes"
	"fmt"
	"testing"
)

// benchWire pre-encodes an all-int position-report stream: nTicks
// ticks of perTick events. Integer schemas are the arena's steady
// state — strings and floats deliberately copy to the heap.
func benchWire(b *testing.B, nTicks, perTick int) (*Registry, []byte, int) {
	b.Helper()
	reg := NewRegistry()
	pr := MustSchema("PositionReport",
		Field{Name: "vid", Kind: KindInt},
		Field{Name: "xway", Kind: KindInt},
		Field{Name: "lane", Kind: KindInt},
		Field{Name: "dir", Kind: KindInt},
		Field{Name: "seg", Kind: KindInt},
		Field{Name: "pos", Kind: KindInt},
		Field{Name: "speed", Kind: KindInt},
		Field{Name: "sec", Kind: KindInt})
	reg.MustRegister(pr)
	var buf bytes.Buffer
	for i := 0; i < nTicks; i++ {
		t := 30 * i
		for j := 0; j < perTick; j++ {
			fmt.Fprintf(&buf, "PositionReport|%d|%d|1|%d|0|%d|%d|%d|%d\n",
				t, i*perTick+j, j%4, j%100, j*176, 40+j%30, t)
		}
	}
	return reg, buf.Bytes(), nTicks * perTick
}

// BenchmarkIngestReader measures the wire decoder's batch path in
// steady state: a warmed Reader re-decodes the same byte stream into
// its slab arena, reclaiming behind a simulated watermark. The line
// scanner, the arena and the batch structs all recycle, so the
// per-event figure must show zero allocations (guarded by
// scripts/ci.sh).
func BenchmarkIngestReader(b *testing.B) {
	reg, wire, n := benchWire(b, 400, 60)
	br := bytes.NewReader(wire)
	rd := NewReader(br, reg)
	var batch Batch
	pass := func() {
		br.Reset(wire)
		rd.Reset(br)
		for {
			more := rd.NextBatch(&batch)
			if len(batch.Events) > 0 {
				// Everything before this batch's tick is done with.
				rd.ReclaimBefore(batch.Events[0].End())
			}
			if !more {
				break
			}
		}
		if rd.Err() != nil {
			b.Fatal(rd.Err())
		}
	}
	pass() // warm the scanner buffer, arena and batch capacity
	pass()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pass()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/event")
}

// BenchmarkIngestReaderPerEvent is the same stream through the legacy
// heap path, anchoring the batch path's advantage.
func BenchmarkIngestReaderPerEvent(b *testing.B) {
	reg, wire, n := benchWire(b, 400, 60)
	br := bytes.NewReader(wire)
	rd := NewReader(br, reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(wire)
		rd.Reset(br)
		for e := rd.Next(); e != nil; e = rd.Next() {
			_ = e
		}
		if rd.Err() != nil {
			b.Fatal(rd.Err())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/event")
}

// BenchmarkIngestBatcher measures the Source→BatchSource adapter over
// pre-built events (no decode): the pure batching overhead.
func BenchmarkIngestBatcher(b *testing.B) {
	s := MustSchema("E", Field{Name: "v", Kind: KindInt})
	evs := make([]*Event, 0, 24000)
	for i := 0; i < 24000; i++ {
		evs = append(evs, MustNew(s, Time(i/60), Int64(int64(i))))
	}
	src := NewSliceSource(evs)
	var batch Batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		bs := NewBatcher(src)
		for bs.NextBatch(&batch) {
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(evs)), "ns/event")
}
