package event

import "testing"

func TestArenaSealReclaimRecycle(t *testing.T) {
	a := NewArena(4)
	var evs []*Event
	s := testSchema(t)
	for i := 0; i < 12; i++ {
		e := a.Alloc(s, Point(Time(i)), 3)
		e.Values[0] = Int64(int64(i))
		e.Values[1] = Int64(1)
		e.Values[2] = Float64(1)
		evs = append(evs, e)
	}
	// 12 events at 4 per slab: two sealed slabs plus the one being
	// filled.
	if got := a.Chunks(); got != 3 {
		t.Fatalf("Chunks = %d, want 3", got)
	}
	if got := a.LiveChunks(); got != 2 {
		t.Fatalf("LiveChunks = %d, want 2", got)
	}
	for i, e := range evs {
		if e.End() != Time(i) || e.Values[0].Int != int64(i) {
			t.Fatalf("event %d corrupted: %v", i, e)
		}
	}
	// First sealed slab covers t=0..3; a watermark of 4 frees exactly it.
	if got := a.ReclaimBefore(4); got != 1 {
		t.Fatalf("ReclaimBefore(4) = %d, want 1", got)
	}
	if got := a.ReclaimBefore(4); got != 0 {
		t.Fatalf("second ReclaimBefore(4) = %d, want 0", got)
	}
	if got := a.LiveChunks(); got != 1 {
		t.Fatalf("LiveChunks after reclaim = %d, want 1", got)
	}
	// Further allocation reuses the freed slab: no new chunk.
	for i := 12; i < 16; i++ {
		a.Alloc(s, Point(Time(i)), 3)
	}
	if got := a.Chunks(); got != 3 {
		t.Fatalf("Chunks after recycle = %d, want 3 (slab not reused)", got)
	}
	if got := a.Reclaimed(); got != 1 {
		t.Fatalf("Reclaimed = %d, want 1", got)
	}
}

func TestArenaValuesCapacityCapped(t *testing.T) {
	a := NewArena(8)
	s := testSchema(t)
	e1 := a.Alloc(s, Point(1), 3)
	e2 := a.Alloc(s, Point(2), 3)
	if cap(e1.Values) != 3 {
		t.Fatalf("cap(Values) = %d, want 3", cap(e1.Values))
	}
	e2.Values[0] = Int64(42)
	grown := append(e1.Values, Int64(99)) // must reallocate, not clobber e2
	_ = grown
	if e2.Values[0].Int != 42 {
		t.Fatal("append to one event's Values bled into its neighbor")
	}
}

func TestArenaWideSchemaHeapFallback(t *testing.T) {
	a := NewArena(2) // 16 value slots per slab
	s := testSchema(t)
	e := a.Alloc(s, Point(1), 17)
	if len(e.Values) != 17 {
		t.Fatalf("len(Values) = %d, want 17", len(e.Values))
	}
	if got := a.Chunks(); got != 0 {
		t.Fatalf("heap fallback allocated %d slabs", got)
	}
}

// tickStream builds nTicks ticks of perTick same-timestamp events.
func tickStream(t *testing.T, nTicks, perTick int) []*Event {
	t.Helper()
	s := testSchema(t)
	evs := make([]*Event, 0, nTicks*perTick)
	for i := 0; i < nTicks; i++ {
		for j := 0; j < perTick; j++ {
			evs = append(evs, MustNew(s, Time(i), Int64(int64(i*perTick+j)), Int64(1), Float64(1)))
		}
	}
	return evs
}

// checkBatches drains bs and verifies the batch protocol: epochs
// increase, ticks are never split, and the concatenation equals want.
func checkBatches(t *testing.T, bs BatchSource, want []*Event) {
	t.Helper()
	var b Batch
	var got []*Event
	lastEpoch := uint64(0)
	for {
		more := bs.NextBatch(&b)
		if len(b.Events) > 0 {
			if b.Epoch < lastEpoch {
				t.Fatalf("batch epoch went backwards: %d after %d", b.Epoch, lastEpoch)
			}
			lastEpoch = b.Epoch
			if len(got) > 0 && got[len(got)-1].End() == b.Events[0].End() {
				t.Fatalf("tick t=%d split across batches", b.Events[0].End())
			}
			got = append(got, b.Events...)
		}
		if !more {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] && !got[i].Equal(want[i]) {
			t.Fatalf("event %d mismatch: %v != %v", i, got[i], want[i])
		}
	}
}

func TestBatcherTickAlignment(t *testing.T) {
	evs := tickStream(t, 130, 10) // 1300 events forces several batches
	checkBatches(t, NewBatcher(NewSliceSource(evs)), evs)
}

func TestSliceSourceBatchesZeroCopy(t *testing.T) {
	evs := tickStream(t, 130, 10)
	src := NewSliceSource(evs)
	var b Batch
	src.NextBatch(&b)
	if len(b.Events) == 0 || b.Events[0] != evs[0] {
		t.Fatal("SliceSource batch is not a subslice of the backing slice")
	}
	src.Reset()
	checkBatches(t, src, evs)
}

func TestPerEventRoundTrip(t *testing.T) {
	evs := tickStream(t, 130, 10)
	got := Drain(PerEvent(NewBatcher(NewSliceSource(evs))))
	if len(got) != len(evs) {
		t.Fatalf("drained %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}
