package event

import (
	"fmt"
	"strings"
)

// Time is an application timestamp: a point on the linearly ordered
// time axis of the stream (paper §2). The unit is defined by the
// event source; the Linear Road benchmark uses seconds.
type Time int64

// Interval is a closed time interval [Start, End]. A simple event
// occupies a point interval (Start == End); a complex event spans the
// occurrence times of all events it was derived from (paper §2).
type Interval struct {
	Start Time
	End   Time
}

// Point returns the point interval [t, t].
func Point(t Time) Interval { return Interval{Start: t, End: t} }

// Contains reports whether t lies within the interval.
func (iv Interval) Contains(t Time) bool { return iv.Start <= t && t <= iv.End }

// Span returns the smallest interval covering both iv and o.
func (iv Interval) Span(o Interval) Interval {
	out := iv
	if o.Start < out.Start {
		out.Start = o.Start
	}
	if o.End > out.End {
		out.End = o.End
	}
	return out
}

// Valid reports Start <= End.
func (iv Interval) Valid() bool { return iv.Start <= iv.End }

func (iv Interval) String() string {
	if iv.Start == iv.End {
		return fmt.Sprintf("@%d", iv.Start)
	}
	return fmt.Sprintf("@[%d,%d]", iv.Start, iv.End)
}

// Event is a message indicating that something of interest happened
// (paper §2). Values are stored positionally in schema field order.
//
// Arrival is the system (wall-clock) time in nanoseconds at which the
// event entered the engine; it is the reference point for the maximal
// latency metric (paper §7.1). For complex events, Arrival is the
// latest arrival among constituents.
type Event struct {
	Schema  *Schema
	Time    Interval
	Arrival int64
	Values  []Value
}

// New builds a simple event of the given schema at time t. The number
// of values must match the schema.
func New(s *Schema, t Time, values ...Value) (*Event, error) {
	if len(values) != s.NumFields() {
		return nil, fmt.Errorf("event: %s expects %d values, got %d", s.Name(), s.NumFields(), len(values))
	}
	for i, v := range values {
		if f := s.Field(i); !kindAssignable(f.Kind, v.Kind) {
			return nil, fmt.Errorf("event: %s.%s expects %s, got %s", s.Name(), f.Name, f.Kind, v.Kind)
		}
	}
	return &Event{Schema: s, Time: Point(t), Values: values}, nil
}

// MustNew is New that panics on error; for tests and generators whose
// schemas are static.
func MustNew(s *Schema, t Time, values ...Value) *Event {
	e, err := New(s, t, values...)
	if err != nil {
		panic(err)
	}
	return e
}

func kindAssignable(field, val Kind) bool {
	if field == val {
		return true
	}
	// Integer constants are accepted for float fields.
	return field == KindFloat && val == KindInt
}

// TypeName returns the event type name.
func (e *Event) TypeName() string { return e.Schema.Name() }

// Get returns the value of the named attribute. It reports ok=false
// for unknown attributes.
func (e *Event) Get(name string) (Value, bool) {
	i := e.Schema.FieldIndex(name)
	if i < 0 {
		return Value{}, false
	}
	return e.Values[i], true
}

// At returns the value at field position i.
func (e *Event) At(i int) Value { return e.Values[i] }

// End returns the occurrence end time: the timestamp at which the
// event is considered to occur for context window membership and for
// ordering (for simple events this is the point timestamp).
func (e *Event) End() Time { return e.Time.End }

// String renders the event for diagnostics:
// "PositionReport(vid=17, seg=3)@120".
func (e *Event) String() string {
	var b strings.Builder
	b.WriteString(e.Schema.Name())
	b.WriteByte('(')
	for i := 0; i < e.Schema.NumFields(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.Schema.Field(i).Name)
		b.WriteByte('=')
		b.WriteString(e.Values[i].String())
	}
	b.WriteByte(')')
	b.WriteString(e.Time.String())
	return b.String()
}

// Equal reports structural equality of two events (schema identity,
// time interval and all attribute values). Arrival time is excluded:
// it is a measurement artifact, not part of the event identity.
func (e *Event) Equal(o *Event) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Schema != o.Schema || e.Time != o.Time || len(e.Values) != len(o.Values) {
		return false
	}
	for i := range e.Values {
		if !e.Values[i].Equal(o.Values[i]) {
			return false
		}
	}
	return true
}
