package event

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSliceSourceOrderAndReset(t *testing.T) {
	s := testSchema(t)
	evs := []*Event{
		MustNew(s, 1, Int64(1), Int64(1), Float64(1)),
		MustNew(s, 2, Int64(2), Int64(1), Float64(1)),
		MustNew(s, 2, Int64(3), Int64(1), Float64(1)),
	}
	src := NewSliceSource(evs)
	if src.Len() != 3 {
		t.Fatalf("Len = %d", src.Len())
	}
	got := Drain(src)
	if len(got) != 3 || got[0] != evs[0] {
		t.Fatalf("Drain returned %d events", len(got))
	}
	if src.Next() != nil {
		t.Error("exhausted source returned event")
	}
	src.Reset()
	if e := src.Next(); e != evs[0] {
		t.Error("Reset did not rewind")
	}
}

func TestSliceSourcePanicsOnDisorder(t *testing.T) {
	s := testSchema(t)
	src := NewSliceSource([]*Event{
		MustNew(s, 5, Int64(1), Int64(1), Float64(1)),
		MustNew(s, 4, Int64(2), Int64(1), Float64(1)),
	})
	src.Next()
	defer func() {
		if recover() == nil {
			t.Error("out-of-order event did not panic")
		}
	}()
	src.Next()
}

func TestSortByTimeStable(t *testing.T) {
	s := testSchema(t)
	evs := []*Event{
		MustNew(s, 3, Int64(1), Int64(1), Float64(1)),
		MustNew(s, 1, Int64(2), Int64(1), Float64(1)),
		MustNew(s, 3, Int64(3), Int64(1), Float64(1)),
		MustNew(s, 2, Int64(4), Int64(1), Float64(1)),
	}
	SortByTime(evs)
	wantVids := []int64{2, 4, 1, 3} // stable: vid 1 stays before vid 3 at t=3
	for i, want := range wantVids {
		if evs[i].At(0).Int != want {
			t.Fatalf("position %d: vid=%d, want %d", i, evs[i].At(0).Int, want)
		}
	}
}

func codecRegistry() (*Registry, *Schema, *Schema) {
	reg := NewRegistry()
	pr := MustSchema("PR",
		Field{Name: "vid", Kind: KindInt},
		Field{Name: "speed", Kind: KindFloat},
		Field{Name: "lane", Kind: KindString},
		Field{Name: "ok", Kind: KindBool})
	toll := MustSchema("Toll", Field{Name: "vid", Kind: KindInt})
	reg.MustRegister(pr)
	reg.MustRegister(toll)
	return reg, pr, toll
}

func TestCodecRoundTrip(t *testing.T) {
	reg, pr, toll := codecRegistry()
	in := []*Event{
		MustNew(pr, 30, Int64(7), Float64(55.5), String("travel"), Bool(true)),
		MustNew(toll, 31, Int64(7)),
		{Schema: toll, Time: Interval{Start: 10, End: 40}, Values: []Value{Int64(9)}},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range in {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf, reg)
	var out []*Event
	for e := r.Next(); e != nil; e = r.Next() {
		out = append(out, e)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(out) != len(in) {
		t.Fatalf("round trip returned %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if !in[i].Equal(out[i]) {
			t.Errorf("event %d mismatch:\n in: %v\nout: %v", i, in[i], out[i])
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	reg, _, _ := codecRegistry()
	input := "# header\n\nToll|5|3\n   \nToll|6|4\n"
	r := NewReader(strings.NewReader(input), reg)
	out := Drain(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(out) != 2 || out[0].At(0).Int != 3 || out[1].At(0).Int != 4 {
		t.Fatalf("got %v", out)
	}
}

func TestReaderErrors(t *testing.T) {
	reg, _, _ := codecRegistry()
	cases := []struct {
		name, in string
	}{
		{"unknown type", "Nope|1|2\n"},
		{"bad time", "Toll|x|2\n"},
		{"bad interval", "Toll|9~3|2\n"},
		{"arity", "Toll|1|2|3\n"},
		{"bad int", "Toll|1|abc\n"},
		{"bad float", "PR|1|1|zz|travel|true\n"},
		{"bad bool", "PR|1|1|1.0|travel|yes\n"},
		{"no fields", "Toll\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(c.in), reg)
			if e := r.Next(); e != nil {
				t.Fatalf("decoded malformed input into %v", e)
			}
			if r.Err() == nil {
				t.Error("Err() is nil for malformed input")
			}
		})
	}
}

// TestCodecRoundTripProperty encodes randomly generated events and
// checks decode(encode(e)) == e.
func TestCodecRoundTripProperty(t *testing.T) {
	reg, pr, _ := codecRegistry()
	f := func(vid int64, speed float64, lane uint8, ok bool, tm int16) bool {
		lanes := []string{"travel", "exit", "entry", "middle"}
		e := MustNew(pr, Time(tm),
			Int64(vid), Float64(speed), String(lanes[int(lane)%len(lanes)]), Bool(ok))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(e) != nil || w.Flush() != nil {
			return false
		}
		r := NewReader(&buf, reg)
		got := r.Next()
		return got != nil && r.Err() == nil && e.Equal(got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDrainEmpty(t *testing.T) {
	if got := Drain(NewSliceSource(nil)); got != nil {
		t.Errorf("Drain(empty) = %v", got)
	}
}
