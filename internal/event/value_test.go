package event

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueAppendMatchesString(t *testing.T) {
	vals := []Value{
		Int64(0), Int64(-42), Int64(123456789),
		Float64(0), Float64(3.25), Float64(-1e12), Float64(math.Inf(1)),
		String(""), String("seg|7"), Bool(true), Bool(false), {},
	}
	for _, v := range vals {
		if got := string(v.Append(nil)); got != v.String() {
			t.Errorf("Append(%#v) = %q, want %q", v, got, v.String())
		}
	}
	// Appending extends dst in place.
	buf := []byte("k=")
	buf = Int64(7).Append(buf)
	if string(buf) != "k=7" {
		t.Errorf("append onto prefix = %q", buf)
	}
	if err := quick.Check(func(i int64, f float64, s string, b bool) bool {
		for _, v := range []Value{Int64(i), Float64(f), String(s), Bool(b)} {
			if string(v.Append(nil)) != v.String() {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt: "int", KindFloat: "float", KindString: "string",
		KindBool: "bool", KindInvalid: "invalid", Kind(200): "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	for _, name := range []string{"int", "float", "string", "bool"} {
		k, ok := KindFromName(name)
		if !ok || k.String() != name {
			t.Errorf("KindFromName(%q) = %v, %v", name, k, ok)
		}
	}
	if _, ok := KindFromName("int64"); ok {
		t.Error("KindFromName accepted unknown name")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int64(42); v.Kind != KindInt || v.Int != 42 || v.AsFloat() != 42 || !v.AsBool() {
		t.Errorf("Int64(42) misbehaves: %#v", v)
	}
	if v := Float64(2.5); v.Kind != KindFloat || v.AsFloat() != 2.5 || !v.AsBool() {
		t.Errorf("Float64(2.5) misbehaves: %#v", v)
	}
	if v := String("exit"); v.Kind != KindString || v.Str != "exit" || !v.AsBool() {
		t.Errorf("String misbehaves: %#v", v)
	}
	if v := String(""); v.AsBool() {
		t.Error("empty string should be false")
	}
	if v := Bool(true); !v.AsBool() || v.Kind != KindBool {
		t.Errorf("Bool(true) misbehaves: %#v", v)
	}
	if v := Bool(false); v.AsBool() {
		t.Error("Bool(false) should be false")
	}
	if !(Value{}).IsZero() || Int64(0).IsZero() {
		t.Error("IsZero misreports")
	}
	if (Value{}).AsBool() || (Value{}).AsFloat() != 0 {
		t.Error("zero Value should be falsy and numerically 0")
	}
}

func TestValueEqualAcrossNumericKinds(t *testing.T) {
	if !Int64(1).Equal(Float64(1.0)) {
		t.Error("1 should equal 1.0")
	}
	if Int64(1).Equal(Float64(1.5)) {
		t.Error("1 should not equal 1.5")
	}
	if Int64(1).Equal(String("1")) {
		t.Error("numeric must not equal string")
	}
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Error("string equality broken")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Error("bool equality broken")
	}
	big := int64(1) << 62
	if !Int64(big).Equal(Int64(big)) {
		t.Error("large int equality broken")
	}
	if Int64(big).Equal(Int64(big + 1)) {
		t.Error("large ints that differ must not be equal")
	}
}

func TestValueCompare(t *testing.T) {
	check := func(a, b Value, want int, wantOK bool) {
		t.Helper()
		got, ok := a.Compare(b)
		if got != want || ok != wantOK {
			t.Errorf("Compare(%v, %v) = %d,%v want %d,%v", a, b, got, ok, want, wantOK)
		}
	}
	check(Int64(1), Int64(2), -1, true)
	check(Int64(2), Int64(1), 1, true)
	check(Int64(2), Int64(2), 0, true)
	check(Float64(1.5), Int64(2), -1, true)
	check(Int64(2), Float64(1.5), 1, true)
	check(String("a"), String("b"), -1, true)
	check(String("b"), String("a"), 1, true)
	check(String("a"), String("a"), 0, true)
	check(Bool(false), Bool(true), -1, true)
	check(Bool(true), Bool(false), 1, true)
	check(String("a"), Int64(1), 0, false)
	check(Bool(true), Int64(1), 0, false)
}

func TestValueCompareLargeIntsExact(t *testing.T) {
	// int64 values beyond float53 precision must still compare exactly
	// when both sides are integers.
	a, b := int64(1)<<60, int64(1)<<60+1
	if cmp, ok := Int64(a).Compare(Int64(b)); !ok || cmp != -1 {
		t.Errorf("large int compare lost precision: %d, %v", cmp, ok)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int64(-7), "-7"},
		{Float64(2.5), "2.5"},
		{String("exit"), "exit"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueCompareConsistentWithEqual(t *testing.T) {
	// Property: for comparable values, Compare()==0 iff Equal().
	f := func(a, b int64) bool {
		va, vb := Int64(a), Int64(b)
		cmp, ok := va.Compare(vb)
		return ok && (cmp == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := Float64(a), Float64(b)
		cmp, ok := va.Compare(vb)
		return ok && (cmp == 0) == va.Equal(vb)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, _ := Int64(a).Compare(Int64(b))
		y, _ := Int64(b).Compare(Int64(a))
		return x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
