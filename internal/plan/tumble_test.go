package plan

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/algebra"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

// tumbleModel derives per-key statistics and a downstream alert that
// consumes the aggregate within the same combined plan.
const tumbleModel = `
EVENT P(k int, v int, sec int)
EVENT Agg(k int, cnt int, mean float, sec int)
EVENT Hot(k int, cnt int)

CONTEXT on DEFAULT

DERIVE Agg(p.k, count(), avg(p.v), p.sec)
PATTERN P p
TUMBLE 10

DERIVE Hot(a.k, a.cnt)
PATTERN Agg a
WHERE a.cnt >= 3
`

func TestTumbleInstanceEndToEnd(t *testing.T) {
	m, err := model.CompileSource(tumbleModel)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(m, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	vec := algebra.NewVector(m.Default.Index)
	var insts []*Instance
	for _, qp := range p.Queries {
		in, err := qp.NewInstance(vec, 0)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, in)
	}
	ps, _ := m.Registry.Lookup("P")
	mk := func(ts event.Time, v int64) *event.Event {
		return event.MustNew(ps, ts, event.Int64(1), event.Int64(v), event.Int64(int64(ts)))
	}
	// Window [0,10): 3 events -> Agg(cnt=3) -> Hot. Window [10,20):
	// 1 event -> no Hot. Flush with an empty transaction at t=25.
	stream := [][]*event.Event{
		{mk(1, 10)}, {mk(4, 20)}, {mk(9, 30)},
		{mk(12, 5)},
		{mk(25, 1)},
	}
	var outputs []*event.Event
	for _, batch := range stream {
		now := batch[0].End()
		pool := batch
		for _, in := range insts {
			var derived []*event.Event
			derived, _ = in.Exec(now, pool, event.HeapAlloc{}, nil, nil)
			if len(derived) > 0 {
				pool = append(append([]*event.Event(nil), pool...), derived...)
				outputs = append(outputs, derived...)
			}
		}
	}
	var aggs, hots []*event.Event
	for _, e := range outputs {
		switch e.TypeName() {
		case "Agg":
			aggs = append(aggs, e)
		case "Hot":
			hots = append(hots, e)
		}
	}
	if len(aggs) != 2 {
		t.Fatalf("aggs = %v", aggs)
	}
	if cnt, _ := aggs[0].Get("cnt"); cnt.Int != 3 {
		t.Errorf("first window cnt = %v", cnt)
	}
	if mean, _ := aggs[0].Get("mean"); mean.Float != 20 {
		t.Errorf("first window mean = %v", mean)
	}
	if aggs[0].Time.End != 9 || aggs[1].Time.End != 19 {
		t.Errorf("agg times = %v, %v", aggs[0].Time, aggs[1].Time)
	}
	// The downstream Hot query consumed the aggregate in-transaction.
	if len(hots) != 1 {
		t.Fatalf("hots = %v", hots)
	}
	if cnt, _ := hots[0].Get("cnt"); cnt.Int != 3 {
		t.Errorf("hot cnt = %v", cnt)
	}
}

func TestTumbleInstanceReset(t *testing.T) {
	m, err := model.CompileSource(tumbleModel)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(m, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	vec := algebra.NewVector(m.Default.Index)
	in, err := p.Queries[0].NewInstance(vec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := m.Registry.Lookup("P")
	e := event.MustNew(ps, 1, event.Int64(1), event.Int64(5), event.Int64(1))
	in.Exec(1, []*event.Event{e}, event.HeapAlloc{}, nil, nil)
	in.Reset()
	// The open window was discarded: advancing past it derives nothing.
	derived, _ := in.Exec(50, nil, event.HeapAlloc{}, nil, nil)
	if len(derived) != 0 {
		t.Errorf("reset window still flushed: %v", derived)
	}
}
