package plan

import (
	"strings"
	"testing"

	"github.com/caesar-cep/caesar/internal/algebra"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

// The toll pipeline of paper Fig. 3 / Fig. 6: query order in source
// is deliberately consumer-before-producer to exercise topological
// ordering.
const tollModel = `
EVENT PositionReport(vid int, lane int, sec int)
EVENT NewTravelingCar(vid int, sec int)
EVENT TollNotification(vid int, sec int, toll int)

CONTEXT clear DEFAULT
CONTEXT congestion

DERIVE TollNotification(p.vid, p.sec, 5)
PATTERN NewTravelingCar p
CONTEXT congestion

DERIVE NewTravelingCar(p2.vid, p2.sec)
PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4
CONTEXT congestion

SWITCH CONTEXT congestion
PATTERN PositionReport p
WHERE p.lane = 0
CONTEXT clear
`

func buildPlan(t *testing.T, src string, opts Options) *Plan {
	t.Helper()
	m, err := model.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTopologicalOrder(t *testing.T) {
	p := buildPlan(t, tollModel, Optimized())
	pos := map[string]int{}
	for i, qp := range p.Queries {
		pos[qp.Query.Name] = i
	}
	producer := "q1(DERIVE NewTravelingCar)"
	consumer := "q0(DERIVE TollNotification)"
	if pos[producer] > pos[consumer] {
		t.Errorf("producer ordered after consumer: %v", pos)
	}
	if len(p.Queries) != 3 {
		t.Fatalf("plans = %d", len(p.Queries))
	}
}

func TestHorizonResolution(t *testing.T) {
	p := buildPlan(t, tollModel, Options{PushDown: true, EagerFilters: true, DefaultHorizon: 77})
	for _, qp := range p.Queries {
		if qp.Horizon != 77 {
			t.Errorf("%s horizon = %d, want 77", qp.Query.Name, qp.Horizon)
		}
	}
	p2 := buildPlan(t, tollModel, Optimized())
	if p2.Queries[0].Horizon != DefaultHorizon {
		t.Errorf("default horizon = %d", p2.Queries[0].Horizon)
	}
}

func TestTrailingNegationRequiresWithin(t *testing.T) {
	src := `
EVENT A(v int)
EVENT B(v int)
EVENT Out(v int)
CONTEXT c DEFAULT
DERIVE Out(a.v)
PATTERN SEQ(A a, NOT B b)
`
	m, err := model.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(m, Optimized()); err == nil || !strings.Contains(err.Error(), "WITHIN") {
		t.Errorf("trailing negation without WITHIN accepted: %v", err)
	}
}

// runToll drives the toll pipeline by hand the way the runtime does:
// derived events of upstream instances join the batch of downstream
// instances within the same transaction.
func runToll(t *testing.T, opts Options, withRouting bool) []*event.Event {
	t.Helper()
	p := buildPlan(t, tollModel, opts)
	m := p.Model
	vec := algebra.NewVector(m.Default.Index)

	instances := make([]*Instance, len(p.Queries))
	for i, qp := range p.Queries {
		inst, err := qp.NewInstance(vec, 0)
		if err != nil {
			t.Fatal(err)
		}
		instances[i] = inst
	}

	pr, _ := m.Registry.Lookup("PositionReport")
	mkPR := func(ts event.Time, vid, lane int64) *event.Event {
		return event.MustNew(pr, ts, event.Int64(vid), event.Int64(lane), event.Int64(int64(ts)))
	}
	// t=0: car 1 on lane 0 switches context to congestion (effective
	// for t>0) and is itself a "new traveling car" (but congestion is
	// not active at t=0, so no toll under push-down semantics).
	// t=30: car 1 reports again (lane 1): has a predecessor, no toll.
	// t=30: car 2 reports first time: new traveling car, toll.
	// t=60: car 3 on exit lane 4: no toll.
	stream := [][]*event.Event{
		{mkPR(0, 1, 0)},
		{mkPR(30, 1, 1), mkPR(30, 2, 1)},
		{mkPR(60, 3, 4)},
	}
	var outputs []*event.Event
	for _, batch := range stream {
		now := batch[0].End()
		pool := batch
		var trans []algebra.Transition
		for _, inst := range instances {
			if withRouting && !inst.Active() {
				continue
			}
			var derived []*event.Event
			derived, trans = inst.Exec(now, pool, event.HeapAlloc{}, nil, trans)
			if len(derived) > 0 {
				pool = append(append([]*event.Event(nil), pool...), derived...)
				outputs = append(outputs, derived...)
			}
		}
		for _, tr := range trans {
			vec.Apply(tr, m.Default.Index)
		}
	}
	return outputs
}

func TestTollPipelineOptimized(t *testing.T) {
	outputs := runToll(t, Optimized(), true)
	var tolls, ntc []*event.Event
	for _, e := range outputs {
		switch e.TypeName() {
		case "TollNotification":
			tolls = append(tolls, e)
		case "NewTravelingCar":
			ntc = append(ntc, e)
		}
	}
	// Context windows scope their queries (§3.4): the congestion
	// window opens after t=0, so car 1's t=0 report is outside the
	// window and car 1 counts as newly traveling at t=30, alongside
	// car 2. Car 3 is on the exit lane and is filtered.
	if len(ntc) != 2 || ntc[0].At(0).Int != 1 || ntc[1].At(0).Int != 2 {
		t.Fatalf("new traveling cars = %v", ntc)
	}
	if len(tolls) != 2 || tolls[0].At(0).Int != 1 || tolls[1].At(0).Int != 2 || tolls[0].At(2).Int != 5 {
		t.Fatalf("tolls = %v", tolls)
	}
}

func TestTollPipelineChainsWithinTransaction(t *testing.T) {
	// The NewTravelingCar derived at t=30 must produce its
	// TollNotification in the same transaction (combined plan, §4.2),
	// which TestTollPipelineOptimized already observes; here we check
	// the derived event's interval and arrival survive the chain.
	outputs := runToll(t, Optimized(), true)
	for _, e := range outputs {
		if e.TypeName() == "TollNotification" {
			if e.Time.Start != 30 || e.Time.End != 30 {
				t.Errorf("toll interval = %v", e.Time)
			}
		}
	}
}

// runTollStream is runToll with a caller-supplied stream builder.
// The builder receives the plan's registry because event schemas are
// matched by pointer identity.
func runTollStream(t *testing.T, opts Options, withRouting bool, mkStream func(reg *event.Registry) [][]*event.Event) []*event.Event {
	t.Helper()
	p := buildPlan(t, tollModel, opts)
	m := p.Model
	stream := mkStream(m.Registry)
	vec := algebra.NewVector(m.Default.Index)
	instances := make([]*Instance, len(p.Queries))
	for i, qp := range p.Queries {
		inst, err := qp.NewInstance(vec, 0)
		if err != nil {
			t.Fatal(err)
		}
		instances[i] = inst
	}
	var outputs []*event.Event
	for _, batch := range stream {
		now := batch[0].End()
		pool := batch
		var trans []algebra.Transition
		for _, inst := range instances {
			if withRouting && !inst.Active() {
				continue
			}
			var derived []*event.Event
			derived, trans = inst.Exec(now, pool, event.HeapAlloc{}, nil, trans)
			if len(derived) > 0 {
				pool = append(append([]*event.Event(nil), pool...), derived...)
				outputs = append(outputs, derived...)
			}
		}
		for _, tr := range trans {
			vec.Apply(tr, m.Default.Index)
		}
	}
	return outputs
}

func TestNonOptimizedSameTollOutputs(t *testing.T) {
	// A workload where no match spans the context boundary: the
	// switch trigger (car 99) never reports again, and all other
	// activity happens strictly inside the congestion window. Both
	// plan shapes must then produce identical outputs; only their
	// cost differs (Theorem 1 compares cost, not semantics).
	stream := func(reg *event.Registry) [][]*event.Event {
		pr, _ := reg.Lookup("PositionReport")
		mkPR := func(ts event.Time, vid, lane int64) *event.Event {
			return event.MustNew(pr, ts, event.Int64(vid), event.Int64(lane), event.Int64(int64(ts)))
		}
		return [][]*event.Event{
			{mkPR(0, 99, 0)},                 // switch to congestion
			{mkPR(30, 2, 1)},                 // new traveling car
			{mkPR(60, 2, 1), mkPR(60, 3, 4)}, // car 2 has predecessor; car 3 exits
		}
	}
	opt := runTollStream(t, Optimized(), true, stream)
	non := runTollStream(t, NonOptimized(), false, stream)
	if len(opt) != len(non) {
		t.Fatalf("optimized %d outputs (%v), non-optimized %d (%v)", len(opt), opt, len(non), non)
	}
	// The two runs use separately compiled models, so schemas differ
	// by pointer; compare the rendered events.
	for i := range opt {
		if opt[i].String() != non[i].String() {
			t.Errorf("output %d differs: %v vs %v", i, opt[i], non[i])
		}
	}
	if len(opt) != 2 { // NewTravelingCar + TollNotification for car 2
		t.Errorf("outputs = %v", opt)
	}
}

func TestInstanceActiveFollowsVector(t *testing.T) {
	p := buildPlan(t, tollModel, Optimized())
	m := p.Model
	vec := algebra.NewVector(m.Default.Index)
	var tollInst *Instance
	for _, qp := range p.Queries {
		if strings.Contains(qp.Query.Name, "TollNotification") {
			inst, err := qp.NewInstance(vec, 0)
			if err != nil {
				t.Fatal(err)
			}
			tollInst = inst
		}
	}
	if tollInst.Active() {
		t.Error("toll plan active in clear context")
	}
	cong, _ := m.ContextByName("congestion")
	vec.Apply(algebra.Transition{Kind: algebra.TransInit, Context: cong.Index, At: 1}, m.Default.Index)
	if !tollInst.Active() {
		t.Error("toll plan inactive in congestion context")
	}
}

func TestInstanceMaskOverride(t *testing.T) {
	p := buildPlan(t, tollModel, Optimized())
	m := p.Model
	vec := algebra.NewVector(m.Default.Index)
	clear, _ := m.ContextByName("clear")
	cong, _ := m.ContextByName("congestion")
	union := clear.Mask() | cong.Mask()
	inst, err := p.Queries[0].NewInstance(vec, union)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Mask != union {
		t.Errorf("mask = %b, want %b", inst.Mask, union)
	}
	if !inst.Active() {
		t.Error("widened instance should be active in default context")
	}
}

func TestInstanceResetDropsHistory(t *testing.T) {
	p := buildPlan(t, tollModel, Optimized())
	m := p.Model
	vec := algebra.NewVector(m.Default.Index)
	cong, _ := m.ContextByName("congestion")
	vec.Apply(algebra.Transition{Kind: algebra.TransInit, Context: cong.Index, At: 0}, m.Default.Index)

	var ntcPlan *QueryPlan
	for _, qp := range p.Queries {
		if strings.Contains(qp.Query.Name, "NewTravelingCar") {
			ntcPlan = qp
		}
	}
	inst, err := ntcPlan.NewInstance(vec, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := m.Registry.Lookup("PositionReport")
	e := event.MustNew(pr, 10, event.Int64(1), event.Int64(1), event.Int64(10))
	inst.Exec(10, []*event.Event{e}, event.HeapAlloc{}, nil, nil)
	if f := inst.Footprint(); f.NegBuffered == 0 {
		t.Fatal("negation buffer empty after event")
	}
	inst.Reset()
	if f := inst.Footprint(); f.Retained() != 0 {
		t.Error("reset kept state")
	}
	if inst.PatternStats().EventsSeen != 1 {
		t.Error("stats should survive reset")
	}
}

func TestBaselineOptions(t *testing.T) {
	o := Baseline()
	if o.PushDown || !o.EagerFilters {
		t.Errorf("Baseline() = %+v", o)
	}
	p := buildPlan(t, tollModel, o)
	m := p.Model
	vec := algebra.NewVector(m.Default.Index)
	inst, err := p.Queries[0].NewInstance(vec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline instances are never suspended.
	if !inst.Active() {
		t.Error("baseline instance inactive")
	}
}

func TestNewFusedInstanceValidation(t *testing.T) {
	p := buildPlan(t, tollModel, Optimized())
	m := p.Model
	vec := algebra.NewVector(m.Default.Index)
	// Window queries cannot fuse.
	var windowQP *QueryPlan
	var deriveQP *QueryPlan
	for _, qp := range p.Queries {
		if qp.Query.IsWindowQuery() {
			windowQP = qp
		} else if deriveQP == nil {
			deriveQP = qp
		}
	}
	if _, err := windowQP.NewFusedInstance(vec, 0, []*model.Query{windowQP.Query}); err == nil {
		t.Error("window query fused")
	}
	// Fusing a derive query with a second member works and derives
	// both heads.
	second := deriveQP.Query
	inst, err := deriveQP.NewFusedInstance(vec, 0, []*model.Query{deriveQP.Query, second})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.projects) != 2 {
		t.Errorf("projections = %d", len(inst.projects))
	}
}
