package plan

import (
	"fmt"

	"github.com/caesar-cep/caesar/internal/wire"
)

// Save serializes the instance's mutable operator state — the pattern
// kernel and, for TUMBLE queries, the aggregation accumulators — into
// enc. Window gates, filters and projection heads are stateless (they
// read the partition's context vector, which the runtime serializes
// separately) and are rebuilt from the plan on restore. Events bound
// inside partial matches are interned through tab so aliasing survives
// the round trip.
func (in *Instance) Save(enc *wire.Enc, tab *wire.EventTable) error {
	if err := in.pattern.Save(enc, tab); err != nil {
		return fmt.Errorf("plan: %s: %w", in.Plan.Query.Name, err)
	}
	enc.Bool(in.agg != nil)
	if in.agg != nil {
		in.agg.Save(enc)
	}
	return nil
}

// Load restores state saved by Save into a freshly built instance of
// the same plan. The instance must have been constructed by the same
// QueryPlan shape (the snapshot fingerprint one layer up guards this).
func (in *Instance) Load(d *wire.Dec, evs *wire.RestoredEvents) error {
	if err := in.pattern.Load(d, evs); err != nil {
		return fmt.Errorf("plan: %s: %w", in.Plan.Query.Name, err)
	}
	hasAgg := d.Bool()
	if hasAgg != (in.agg != nil) {
		return fmt.Errorf("plan: %s: snapshot aggregate presence mismatch (snapshot %v, plan %v)",
			in.Plan.Query.Name, hasAgg, in.agg != nil)
	}
	if in.agg != nil {
		if err := in.agg.Load(d); err != nil {
			return fmt.Errorf("plan: %s: %w", in.Plan.Query.Name, err)
		}
	}
	return d.Err()
}
