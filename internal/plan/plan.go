// Package plan translates a compiled CAESAR model into executable
// query plans (paper §4.2): each query becomes a chain of CAESAR
// algebra operators per Table 1, and producer/consumer query plans
// are combined by topologically ordering them so derived events flow
// into downstream patterns within the same stream transaction.
//
// Two plan shapes exist:
//
//   - Optimized (paper Fig. 6b): the context window is pushed down
//     below the whole chain (a WindowGate — the stream router skips
//     the plan entirely while its context is inactive) and WHERE
//     conjuncts are evaluated eagerly inside the pattern operator.
//
//   - Non-optimized (paper Fig. 6a): the pattern consumes every
//     event regardless of context, a separate Filter operator applies
//     the WHERE conjuncts to completed matches, and a WindowFilter
//     discards matches while the context is inactive. This shape is
//     the baseline of the Fig. 11(b) experiment.
package plan

import (
	"fmt"
	"sort"

	"github.com/caesar-cep/caesar/internal/algebra"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

// DefaultHorizon is the pattern matching horizon applied when a
// query has no WITHIN clause; see DESIGN.md ("extensions").
const DefaultHorizon = 300

// Options configures plan construction.
type Options struct {
	// PushDown enables the context window push-down strategy (§5.2).
	PushDown bool
	// EagerFilters folds WHERE conjuncts into the pattern operator.
	// Plans built for the non-optimized baseline disable it.
	EagerFilters bool
	// DefaultHorizon overrides DefaultHorizon when positive.
	DefaultHorizon int64
	// DisableNegIndex turns off the negation-buffer hash index (an
	// ablation knob; see the negation-index benchmarks).
	DisableNegIndex bool
	// LegacyKernel runs patterns on the preserved per-combination
	// kernel instead of the shared-run automaton (differential
	// testing and ablation benchmarks).
	LegacyKernel bool
}

// Optimized returns the options of the fully optimized plan shape.
func Optimized() Options { return Options{PushDown: true, EagerFilters: true} }

// NonOptimized returns the options of the Fig. 6a shape: neither
// push-down nor eager filters (the "non-optimized query plan" of the
// Fig. 11(b) experiment).
func NonOptimized() Options { return Options{} }

// Baseline returns the options of the context-independent
// state-of-the-art engines ([34, 5] in §7.3): predicates are pushed
// into the pattern automaton as those systems do, but context windows
// never suspend anything.
func Baseline() Options { return Options{EagerFilters: true} }

// QueryPlan is the logical plan of one query.
type QueryPlan struct {
	Query   *model.Query
	Opts    Options
	Horizon int64

	// prog is the query's pattern compiled into an automaton program
	// (algebra.CompileProgram). Build compiles it once; every
	// partition instance — including fused multi-query instances —
	// shares the immutable program instead of recompiling the filter
	// schedule and transition classification per partition.
	prog *algebra.Program
}

// Plan is the combined query plan of a whole model: one QueryPlan
// per query, topologically sorted so that every producer precedes
// its consumers (§4.2 phase 2).
type Plan struct {
	Model   *model.Model
	Queries []*QueryPlan
	Opts    Options
}

// Build translates a model into a combined plan.
func Build(m *model.Model, opts Options) (*Plan, error) {
	horizon := opts.DefaultHorizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	p := &Plan{Model: m, Opts: opts}
	order, err := topoOrder(m)
	if err != nil {
		return nil, err
	}
	for _, q := range order {
		h := q.Within
		if h <= 0 {
			h = horizon
		}
		if err := validateTrailingNegation(q); err != nil {
			return nil, err
		}
		qp := &QueryPlan{Query: q, Opts: opts, Horizon: h}
		qp.prog, err = algebra.CompileProgram(patternSpec(qp))
		if err != nil {
			return nil, fmt.Errorf("plan: %s: %w", q.Name, err)
		}
		p.Queries = append(p.Queries, qp)
	}
	return p, nil
}

// patternSpec assembles the pattern operator spec of one query under
// the plan's options.
func patternSpec(qp *QueryPlan) algebra.PatternSpec {
	q := qp.Query
	spec := algebra.PatternSpec{
		Steps:           q.Pattern.Steps,
		Negs:            q.Pattern.Negs,
		NumSlots:        q.Env.Len(),
		Horizon:         qp.Horizon,
		DisableNegIndex: qp.Opts.DisableNegIndex,
		LegacyKernel:    qp.Opts.LegacyKernel,
	}
	if qp.Opts.EagerFilters {
		spec.Filters = q.Filters
	}
	return spec
}

// validateTrailingNegation requires an explicit WITHIN for queries
// whose negation trails the last positive step: without a bound, the
// emission deadline would be undefined (§4.1: "temporal constraints
// must define the time interval within which the negated event may
// not occur").
func validateTrailingNegation(q *model.Query) error {
	n := len(q.Pattern.Steps)
	for _, neg := range q.Pattern.Negs {
		if neg.Anchor == n && q.Within <= 0 {
			return fmt.Errorf("plan: %s: trailing negation requires a WITHIN clause", q.Name)
		}
	}
	return nil
}

// topoOrder sorts queries so producers precede consumers, breaking
// ties by query ID for determinism. The model compiler already
// rejected cycles.
func topoOrder(m *model.Model) ([]*model.Query, error) {
	visited := make(map[int]bool)
	var order []*model.Query
	var visit func(q *model.Query)
	visit = func(q *model.Query) {
		if visited[q.ID] {
			return
		}
		visited[q.ID] = true
		producers := make(map[int]*model.Query)
		for _, s := range q.Pattern.Steps {
			for _, p := range m.DerivedBy(s.Schema.Name()) {
				producers[p.ID] = p
			}
		}
		ids := make([]int, 0, len(producers))
		for id := range producers {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			visit(producers[id])
		}
		order = append(order, q)
	}
	for _, q := range m.Queries {
		visit(q)
	}
	return order, nil
}

// Instance is one executable instantiation of a QueryPlan, bound to
// a partition's context vector. Instances are stateful (the pattern
// operator holds partial matches) and single-goroutine.
type Instance struct {
	Plan *QueryPlan

	gate      *algebra.WindowGate
	pattern   *algebra.Pattern
	filter    *algebra.Filter        // non-eager shape only
	winFilter *algebra.WindowFilter  // non-pushed-down shape only
	projects  []*algebra.Project     // plain DERIVE queries (several when fused)
	agg       *algebra.Aggregate     // TUMBLE DERIVE queries
	action    *algebra.ContextAction // window queries

	// Mask is the context mask gating this instance. The optimizer's
	// workload-sharing pass widens it when identical queries from
	// overlapping contexts are merged.
	Mask uint64

	matchScratch []*algebra.Match
	stage2       []*algebra.Match
}

// NewInstance binds the plan to a partition context vector. mask
// overrides the query's own context mask when non-zero (used by the
// sharing optimizer); pass 0 to use the query's mask.
func (qp *QueryPlan) NewInstance(vec *algebra.Vector, mask uint64) (*Instance, error) {
	q := qp.Query
	if mask == 0 {
		mask = q.Mask
	}
	inst := &Instance{Plan: qp, Mask: mask}

	if qp.prog == nil {
		// Plans constructed outside Build (tests) compile on demand.
		prog, err := algebra.CompileProgram(patternSpec(qp))
		if err != nil {
			return nil, fmt.Errorf("plan: %s: %w", q.Name, err)
		}
		qp.prog = prog
	}
	inst.pattern = algebra.NewPatternFromProgram(qp.prog)

	if !qp.Opts.EagerFilters {
		inst.filter = algebra.NewFilter(q.Filters)
	}
	if qp.Opts.PushDown {
		inst.gate = algebra.NewWindowGate(mask, vec)
	} else {
		inst.winFilter = algebra.NewWindowFilter(mask, vec)
	}

	switch {
	case q.IsWindowQuery():
		act, err := algebra.NewContextAction(q.Action, q.Target.Index, mask, vec)
		if err != nil {
			return nil, fmt.Errorf("plan: %s: %w", q.Name, err)
		}
		inst.action = act
	case q.Tumble > 0:
		agg, err := algebra.NewAggregate(q.Out, q.Aggs, q.Tumble)
		if err != nil {
			return nil, fmt.Errorf("plan: %s: %w", q.Name, err)
		}
		inst.agg = agg
	default:
		pr, err := algebra.NewProject(q.Out, q.Args)
		if err != nil {
			return nil, fmt.Errorf("plan: %s: %w", q.Name, err)
		}
		inst.projects = []*algebra.Project{pr}
	}
	return inst, nil
}

// NewFusedInstance binds the plan to a partition vector like
// NewInstance, but attaches the projection heads of every member
// query to the single shared pattern (the MQO pattern fusion of
// §5.3). The members must have been grouped by the optimizer
// (identical pattern, filters, horizon and context mask); the first
// member is this plan's own query.
func (qp *QueryPlan) NewFusedInstance(vec *algebra.Vector, mask uint64, members []*model.Query) (*Instance, error) {
	inst, err := qp.NewInstance(vec, mask)
	if err != nil {
		return nil, err
	}
	if inst.projects == nil {
		return nil, fmt.Errorf("plan: %s: only plain DERIVE queries can fuse", qp.Query.Name)
	}
	for _, m := range members[1:] {
		pr, err := algebra.NewProject(m.Out, m.Args)
		if err != nil {
			return nil, fmt.Errorf("plan: %s: %w", m.Name, err)
		}
		inst.projects = append(inst.projects, pr)
	}
	return inst, nil
}

// Active reports whether the instance's context window currently
// holds. With push-down enabled the stream router consults this to
// suspend the whole plan (constant cost); without it the instance is
// always fed.
func (in *Instance) Active() bool {
	if in.gate != nil {
		return in.gate.Open()
	}
	return true
}

// Exec runs one stream transaction through the plan: Advance expires
// state and flushes trailing negations, Process consumes the batch,
// then filters, the context window check (non-optimized shape) and
// the final projection or context action run. Derived-event records
// are taken from alloc (the runtime passes its per-worker arena; pass
// event.HeapAlloc{} for GC-managed output). It appends derived events
// to evOut and transitions to trOut and returns both.
func (in *Instance) Exec(now event.Time, batch []*event.Event, alloc event.Allocator, evOut []*event.Event, trOut []algebra.Transition) ([]*event.Event, []algebra.Transition) {
	if in.gate != nil {
		batch = in.gate.Process(batch)
		if batch == nil {
			return evOut, trOut
		}
	}
	if in.agg != nil {
		// Flush aggregation windows that closed before this
		// transaction so downstream plans consume the results now.
		evOut = in.agg.Advance(now, alloc, evOut)
	}
	matches := in.pattern.Advance(now, in.matchScratch[:0])
	matches = in.pattern.Process(batch, matches)
	in.matchScratch = matches
	if len(matches) == 0 {
		return evOut, trOut
	}
	// all is the full emission set; once the projection heads below
	// have materialized derived events, the matches (including the
	// ones the filters drop) recycle into the pattern's arena.
	all := matches
	if in.filter != nil {
		matches = in.filter.Process(matches, in.stage2[:0])
		in.stage2 = matches
	}
	if in.winFilter != nil {
		dst := matches[:0]
		matches = in.winFilter.Process(matches, dst)
	}
	if len(matches) > 0 {
		for _, pr := range in.projects {
			evOut = pr.Process(matches, alloc, evOut)
		}
		if in.agg != nil {
			evOut = in.agg.Process(matches, alloc, evOut)
		}
		if in.action != nil {
			trOut = in.action.Process(now, matches, trOut)
		}
	}
	in.pattern.Release(all)
	return evOut, trOut
}

// Reset discards the instance's pattern and aggregation state
// (context history); the runtime calls it when the query's context
// window ends (§6.2).
func (in *Instance) Reset() {
	in.pattern.Reset()
	if in.agg != nil {
		in.agg.Reset()
	}
}

// PatternStats exposes the underlying pattern counters.
func (in *Instance) PatternStats() algebra.PatternStats { return in.pattern.Stats() }

// Footprint reports retained state sizes (see Pattern.MemoryFootprint).
func (in *Instance) Footprint() algebra.Footprint {
	return in.pattern.MemoryFootprint()
}

// ArenaChunks reports the pattern arena's lifetime slab allocations
// (see Pattern.ArenaChunks).
func (in *Instance) ArenaChunks() int { return in.pattern.ArenaChunks() }
