package linearroad

import (
	"fmt"
	"math/rand"

	"github.com/caesar-cep/caesar/internal/event"
)

// PhaseKind is the ground-truth road condition of a segment.
type PhaseKind int

const (
	// Clear traffic: few fast cars.
	Clear PhaseKind = iota
	// Congestion: many slow cars.
	Congestion
	// Accident: two cars stopped at the same position (implies the
	// segment is also slow).
	Accident
)

func (k PhaseKind) String() string {
	switch k {
	case Clear:
		return "clear"
	case Congestion:
		return "congestion"
	case Accident:
		return "accident"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase is one scripted condition interval [Start, End) in seconds.
type Phase struct {
	Kind  PhaseKind
	Start int64
	End   int64
}

// Script returns the phase schedule of one unidirectional segment.
// Uncovered times are Clear.
type Script func(road, seg int) []Phase

// Config parameterizes the generator. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	Roads    int
	Segments int
	// Duration of the simulation in seconds (the benchmark runs 3
	// hours = 10800 s; experiments use compressed durations).
	Duration int64
	// ReportEvery is the position report interval (30 s in [9]).
	ReportEvery int64
	// StatEvery is the width of the model's SegStat aggregation
	// window (the TUMBLE 60 clause in ModelSource). The generator
	// itself emits no statistics — the engine derives them — but
	// tests and experiments use this to bound transition lag.
	StatEvery int64
	// ClearCars / CongestionCars are the car populations per segment
	// in the respective phases (congestion must reach the >= 40
	// deriving threshold).
	ClearCars      int
	CongestionCars int
	// Ramp scales populations linearly over time: 1 = flat, 2 =
	// double by the end (Fig. 10(b): "event rate gradually increases
	// during 3 hours").
	Ramp float64
	// Script is the per-segment phase schedule; nil uses
	// DefaultScript(Duration).
	Script Script
	Seed   int64
}

// DefaultConfig is a laptop-scale benchmark setup.
func DefaultConfig() Config {
	return Config{
		Roads:          1,
		Segments:       20,
		Duration:       1800,
		ReportEvery:    30,
		StatEvery:      60,
		ClearCars:      8,
		CongestionCars: 50,
		Ramp:           1.5,
		Seed:           1,
	}
}

// DefaultCongestionStart returns the start of the scripted congestion
// phase (it runs to the end of the stream).
func DefaultCongestionStart(duration int64) int64 { return duration * 2 / 5 }

// DefaultAccidentWindow returns the scripted accident phase of the
// accident segments (seg%5 == 2). The window is aligned to report
// boundaries and kept at least four report intervals long so the
// stopped-car detection (two consecutive zero-speed reports) can
// observe it even on compressed runs; ok=false if the duration is too
// short to fit one.
func DefaultAccidentWindow(duration int64) (start, end int64, ok bool) {
	start = duration * 17 / 100 / 30 * 30
	end = duration * 28 / 100
	if end < start+120 {
		end = start + 120
	}
	if cong := DefaultCongestionStart(duration); end > cong {
		end = cong
	}
	return start, end, end > start
}

// DefaultScript reproduces the shape of paper Fig. 10(b), scaled to
// the configured duration: every segment is congested for the final
// 60% of the run; segments with seg%5 == 2 additionally suffer an
// accident per DefaultAccidentWindow.
func DefaultScript(duration int64) Script {
	return func(road, seg int) []Phase {
		ps := []Phase{{Kind: Congestion, Start: DefaultCongestionStart(duration), End: duration}}
		if seg%5 == 2 {
			if start, end, ok := DefaultAccidentWindow(duration); ok {
				ps = append(ps, Phase{Kind: Accident, Start: start, End: end})
			}
		}
		return ps
	}
}

// UniformWindows returns a Script giving every segment n critical
// phase windows of the given length, evenly spaced over the run —
// the "uniform context window distribution" of §7.3.1.
func UniformWindows(duration int64, n int, length int64, kind PhaseKind) Script {
	return WindowsAt(uniformStarts(duration, n, length), length, kind)
}

func uniformStarts(duration int64, n int, length int64) []int64 {
	starts := make([]int64, 0, n)
	if n <= 0 {
		return starts
	}
	gap := duration / int64(n)
	for i := 0; i < n; i++ {
		s := int64(i)*gap + gap/2 - length/2
		if s < 0 {
			s = 0
		}
		if s+length > duration {
			s = duration - length
		}
		starts = append(starts, s)
	}
	return starts
}

// WindowsAt returns a Script placing one window of the given kind
// and length at each start time, for every segment.
func WindowsAt(starts []int64, length int64, kind PhaseKind) Script {
	return func(road, seg int) []Phase {
		ps := make([]Phase, 0, len(starts))
		for _, s := range starts {
			ps = append(ps, Phase{Kind: kind, Start: s, End: s + length})
		}
		return ps
	}
}

// phaseAt resolves the scripted condition at time t. Accident wins
// over congestion when phases overlap.
func phaseAt(ps []Phase, t int64) PhaseKind {
	kind := Clear
	for _, p := range ps {
		if p.Start <= t && t < p.End {
			if p.Kind == Accident {
				return Accident
			}
			kind = p.Kind
		}
	}
	return kind
}

// Generate produces the benchmark event stream, sorted by time. The
// registry must come from the compiled traffic model (ModelSource) so
// schema pointers match the engine's.
func Generate(cfg Config, reg *event.Registry) ([]*event.Event, error) {
	if cfg.Roads < 1 || cfg.Segments < 1 || cfg.Duration < 1 {
		return nil, fmt.Errorf("linearroad: roads, segments and duration must be positive")
	}
	if cfg.ReportEvery < 1 || cfg.StatEvery < cfg.ReportEvery {
		return nil, fmt.Errorf("linearroad: need 0 < ReportEvery <= StatEvery")
	}
	if cfg.Ramp <= 0 {
		cfg.Ramp = 1
	}
	pr, ok := reg.Lookup("PositionReport")
	if !ok {
		return nil, fmt.Errorf("linearroad: registry lacks PositionReport (use the ModelSource registry)")
	}
	script := cfg.Script
	if script == nil {
		script = DefaultScript(cfg.Duration)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*event.Event

	for road := 0; road < cfg.Roads; road++ {
		for seg := 0; seg < cfg.Segments; seg++ {
			phases := script(road, seg)
			segRng := rand.New(rand.NewSource(cfg.Seed ^ int64(road*7919+seg)*2654435761 + 1))
			out = append(out, genSegment(cfg, pr, road, seg, phases, segRng)...)
		}
	}
	_ = rng
	event.SortByTime(out)
	return out, nil
}

// genSegment simulates one unidirectional segment.
func genSegment(cfg Config, pr *event.Schema, road, seg int, phases []Phase, rng *rand.Rand) []*event.Event {
	var out []*event.Event
	vidBase := int64(road)*1_000_000 + int64(seg)*10_000
	stopPos := int64(seg*5280 + 100)

	for t := int64(0); t < cfg.Duration; t += cfg.ReportEvery {
		kind := phaseAt(phases, t)
		ramp := 1 + (cfg.Ramp-1)*float64(t)/float64(cfg.Duration)
		var cars int
		switch kind {
		case Congestion:
			cars = int(float64(cfg.CongestionCars) * ramp)
		default:
			// Clear and accident phases carry the light population:
			// an accident stops cars but does not by itself push the
			// segment over the congestion car-count threshold, so the
			// accident and congestion contexts stay separable.
			cars = int(float64(cfg.ClearCars) * ramp)
		}
		if cars < 2 {
			cars = 2
		}
		for k := 0; k < cars; k++ {
			vid := vidBase + int64(k)
			var speed int64
			lane := int64(k % ExitLane) // lanes 0..3
			if k%11 == 10 {
				lane = ExitLane
			}
			switch kind {
			case Clear:
				speed = 45 + int64(rng.Intn(25))
			case Congestion:
				speed = 10 + int64(rng.Intn(25))
			case Accident:
				if k < 2 {
					speed = 0
				} else {
					speed = 5 + int64(rng.Intn(20))
				}
			}
			pos := stopPos + int64(k)*10
			if kind == Accident && k < 2 {
				pos = stopPos
			}
			out = append(out, event.MustNew(pr, event.Time(t),
				event.Int64(vid), event.Int64(int64(road)), event.Int64(lane),
				event.Int64(0), event.Int64(int64(seg)), event.Int64(pos),
				event.Int64(speed), event.Int64(t)))
		}
	}
	return out
}

// CountByType tallies a generated stream for reporting (Fig. 10).
func CountByType(evs []*event.Event) map[string]int {
	out := map[string]int{}
	for _, e := range evs {
		out[e.TypeName()]++
	}
	return out
}
