// Package linearroad is the Linear Road benchmark substrate (paper
// §7.1, [9]) rebuilt as a deterministic, seeded simulator plus the
// CAESAR workload over it: vehicles on multi-segment expressways emit
// position reports every 30 seconds; segments pass through clear,
// congestion and accident phases; the workload derives toll
// notifications (real tolls during congestion, zero tolls otherwise)
// and accident warnings.
//
// Substitution note (see DESIGN.md): the original benchmark ships a
// 1.7 GB trace from the MIT traffic simulator; this package generates
// an equivalent-schema stream whose phase structure (Fig. 10(b):
// accident around minutes 30-50, congestion from minute 70) and event
// rate ramp are parameterized, which is exactly what the CAESAR
// experiments vary. Aggregated SegStat events stand in for the
// roadside aggregation that context deriving queries consume, because
// the CAESAR grammar (Fig. 4) has no aggregation operator.
package linearroad

import (
	"fmt"
	"strings"
)

// ExitLane is the lane number of the exit ramp; cars on it are never
// tolled (the paper's lane != "exit" predicate).
const ExitLane = 4

// ModelSource renders the CAESAR model of the traffic application
// with the processing workload replicated `replicas` times (the
// paper simulates low, average and high query workloads by
// replicating the benchmark's event queries, §7.1). Each replica
// derives a distinct toll constant so replicas are genuine separate
// queries that the sharing optimizer cannot merge.
func ModelSource(replicas int) string {
	if replicas < 1 {
		replicas = 1
	}
	var b strings.Builder
	b.WriteString(`# Linear Road traffic management (paper Figs. 1 and 3)
EVENT PositionReport(vid int, xway int, lane int, dir int, seg int, pos int, speed int, sec int)
EVENT SegStat(seg int, cnt int, avgSpeed float, stopped int, sec int)
EVENT StoppedCar(vid int, pos int, seg int, sec int)
EVENT TollNotification(vid int, seg int, sec int, toll int)
EVENT AccidentWarning(vid int, seg int, sec int, q int)

CONTEXT clear DEFAULT
CONTEXT congestion
CONTEXT accident

# --- context deriving queries (Fig. 1 transition network) ---

# Per-segment traffic statistics, aggregated from raw position
# reports over one-minute tumbling windows; every context transition
# condition below reads them. The query runs in every context.
DERIVE SegStat(p.seg, count(), avg(p.speed), sum(p.speed = 0), p.sec)
PATTERN PositionReport p
TUMBLE 60
CONTEXT clear, congestion, accident

SWITCH CONTEXT congestion
PATTERN SegStat s
WHERE s.cnt >= 40 AND s.avgSpeed < 40
CONTEXT clear

SWITCH CONTEXT clear
PATTERN SegStat s
WHERE s.cnt < 40 AND s.avgSpeed >= 40 AND s.stopped = 0
CONTEXT congestion

# A stopped car: two consecutive reports of the same vehicle at the
# same position with zero speed (the benchmark's accident condition,
# detected from raw position reports).
DERIVE StoppedCar(p2.vid, p2.pos, p2.seg, p2.sec)
PATTERN SEQ(PositionReport p1, PositionReport p2)
WHERE p1.vid = p2.vid AND p1.pos = p2.pos AND p1.speed = 0 AND p2.speed = 0 AND p2.sec = p1.sec + 30
WITHIN 35
CONTEXT clear, congestion

INITIATE CONTEXT accident
PATTERN StoppedCar s
CONTEXT clear, congestion

TERMINATE CONTEXT accident
PATTERN SegStat s
WHERE s.stopped = 0
CONTEXT accident
`)
	// Zero toll while the road is clear or blocked by an accident
	// (the benchmark requires zero toll outside congestion). This is
	// base workload, not replicated: the paper's scaling experiments
	// replicate the queries of the *critical* contexts, which can be
	// suspended elsewhere (§7.3.1).
	fmt.Fprintf(&b, `
DERIVE TollNotification(p2.vid, p2.seg, p2.sec, 0)
PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != %d
WITHIN 90
CONTEXT clear, accident
`, ExitLane)
	for i := 0; i < replicas; i++ {
		// Real toll during congestion for newly traveling cars
		// (paper Fig. 3 queries 1+2 folded into one query).
		fmt.Fprintf(&b, `
DERIVE TollNotification(p2.vid, p2.seg, p2.sec, %d)
PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != %d
WITHIN 90
CONTEXT congestion
`, 5+i, ExitLane)
		// Accident warnings for every traveling car in the segment.
		fmt.Fprintf(&b, `
DERIVE AccidentWarning(p.vid, p.seg, p.sec, %d)
PATTERN PositionReport p
WHERE p.lane != %d
CONTEXT accident
`, i, ExitLane)
	}
	return b.String()
}

// PartitionBy returns the stream partition key of the traffic model:
// one unidirectional road segment (§6.2).
func PartitionBy() []string { return []string{"xway", "dir", "seg"} }
