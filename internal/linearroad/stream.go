package linearroad

import (
	"fmt"
	"math/rand"

	"github.com/caesar-cep/caesar/internal/event"
)

// Stream is the batch-oriented traffic generator: it emits one
// report tick per NextBatch directly into an event slab arena, so
// feeding the engine allocates nothing per event in steady state —
// the arena recycles slabs as the engine's watermark advances.
//
// Stream reproduces Generate byte for byte: each segment draws from
// its own deterministic rng (seeded exactly as Generate seeds it),
// so per-segment random sequences are unaffected by the tick-major
// emission order, and ticks are emitted in (road, seg, car) order —
// the order Generate's stable sort preserves.
type Stream struct {
	cfg   Config
	pr    *event.Schema
	segs  []streamSeg
	arena *event.Arena
	t     int64
	epoch uint64
}

// streamSeg is one unidirectional segment's generator state.
type streamSeg struct {
	road, seg int
	phases    []Phase
	seed      int64
	rng       *rand.Rand
	vidBase   int64
	stopPos   int64
}

// NewStream validates cfg and builds a batch source over the
// registry's PositionReport schema (same contract as Generate).
func NewStream(cfg Config, reg *event.Registry) (*Stream, error) {
	if cfg.Roads < 1 || cfg.Segments < 1 || cfg.Duration < 1 {
		return nil, fmt.Errorf("linearroad: roads, segments and duration must be positive")
	}
	if cfg.ReportEvery < 1 || cfg.StatEvery < cfg.ReportEvery {
		return nil, fmt.Errorf("linearroad: need 0 < ReportEvery <= StatEvery")
	}
	if cfg.Ramp <= 0 {
		cfg.Ramp = 1
	}
	pr, ok := reg.Lookup("PositionReport")
	if !ok {
		return nil, fmt.Errorf("linearroad: registry lacks PositionReport (use the ModelSource registry)")
	}
	script := cfg.Script
	if script == nil {
		script = DefaultScript(cfg.Duration)
	}
	s := &Stream{cfg: cfg, pr: pr, arena: event.NewArena(0)}
	for road := 0; road < cfg.Roads; road++ {
		for seg := 0; seg < cfg.Segments; seg++ {
			seed := cfg.Seed ^ int64(road*7919+seg)*2654435761 + 1
			s.segs = append(s.segs, streamSeg{
				road:    road,
				seg:     seg,
				phases:  script(road, seg),
				seed:    seed,
				rng:     rand.New(rand.NewSource(seed)),
				vidBase: int64(road)*1_000_000 + int64(seg)*10_000,
				stopPos: int64(seg*5280 + 100),
			})
		}
	}
	return s, nil
}

// NextBatch implements event.BatchSource: one report tick (every
// segment's cars) per call, trivially tick-aligned.
func (s *Stream) NextBatch(b *event.Batch) bool {
	b.Epoch = s.epoch
	b.Events = b.Events[:0]
	if s.t >= s.cfg.Duration {
		return false
	}
	s.epoch++
	t := s.t
	s.t += s.cfg.ReportEvery
	for i := range s.segs {
		s.segs[i].emit(&s.cfg, s.pr, s.arena, t, b)
	}
	return s.t < s.cfg.Duration
}

// emit appends one segment's reports for tick t, mirroring
// genSegment's inner loop with arena-carved events.
func (g *streamSeg) emit(cfg *Config, pr *event.Schema, a *event.Arena, t int64, b *event.Batch) {
	kind := phaseAt(g.phases, t)
	ramp := 1 + (cfg.Ramp-1)*float64(t)/float64(cfg.Duration)
	var cars int
	switch kind {
	case Congestion:
		cars = int(float64(cfg.CongestionCars) * ramp)
	default:
		cars = int(float64(cfg.ClearCars) * ramp)
	}
	if cars < 2 {
		cars = 2
	}
	rng := g.rng
	for k := 0; k < cars; k++ {
		var speed int64
		lane := int64(k % ExitLane)
		if k%11 == 10 {
			lane = ExitLane
		}
		switch kind {
		case Clear:
			speed = 45 + int64(rng.Intn(25))
		case Congestion:
			speed = 10 + int64(rng.Intn(25))
		case Accident:
			if k < 2 {
				speed = 0
			} else {
				speed = 5 + int64(rng.Intn(20))
			}
		}
		pos := g.stopPos + int64(k)*10
		if kind == Accident && k < 2 {
			pos = g.stopPos
		}
		e := a.Alloc(pr, event.Point(event.Time(t)), 8)
		e.Values[0] = event.Int64(g.vidBase + int64(k))
		e.Values[1] = event.Int64(int64(g.road))
		e.Values[2] = event.Int64(lane)
		e.Values[3] = event.Int64(0)
		e.Values[4] = event.Int64(int64(g.seg))
		e.Values[5] = event.Int64(pos)
		e.Values[6] = event.Int64(speed)
		e.Values[7] = event.Int64(t)
		b.Events = append(b.Events, e)
	}
}

// ReclaimBefore implements event.Reclaimer by recycling arena slabs
// fully below t.
func (s *Stream) ReclaimBefore(t event.Time) int { return s.arena.ReclaimBefore(t) }

// ArenaChunks reports (allocated, reclaimed) arena slab counts.
func (s *Stream) ArenaChunks() (chunks, reclaimed int) {
	return s.arena.Chunks(), s.arena.Reclaimed()
}

// Reset rewinds the stream for another identical replay, re-seeding
// every segment rng in place and keeping the arena warm — repeated
// benchmark passes allocate nothing. All sealed slabs are recycled:
// a Reset caller asserts the previous replay's events are no longer
// referenced (application time restarts at 0, so the engine's
// forward-moving watermark could never reclaim them).
func (s *Stream) Reset() {
	s.t = 0
	s.epoch = 0
	s.arena.Reset()
	for i := range s.segs {
		s.segs[i].rng.Seed(s.segs[i].seed)
	}
}
