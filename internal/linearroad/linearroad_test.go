package linearroad

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/runtime"
)

func compileLR(t testing.TB, replicas int) *model.Model {
	t.Helper()
	m, err := model.CompileSource(ModelSource(replicas))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelSourceCompiles(t *testing.T) {
	for _, replicas := range []int{1, 3, 10} {
		m := compileLR(t, replicas)
		want := 7 + 2*replicas
		if len(m.Queries) != want {
			t.Errorf("replicas=%d: queries = %d, want %d", replicas, len(m.Queries), want)
		}
		if m.Default.Name != "clear" {
			t.Errorf("default = %s", m.Default.Name)
		}
	}
	// replicas < 1 clamps to 1.
	if m := compileLR(t, 0); len(m.Queries) != 9 {
		t.Errorf("clamped replicas queries = %d", len(m.Queries))
	}
}

func TestGenerateValidation(t *testing.T) {
	m := compileLR(t, 1)
	bad := DefaultConfig()
	bad.Roads = 0
	if _, err := Generate(bad, m.Registry); err == nil {
		t.Error("zero roads accepted")
	}
	bad = DefaultConfig()
	bad.StatEvery = 10 // < ReportEvery
	if _, err := Generate(bad, m.Registry); err == nil {
		t.Error("StatEvery < ReportEvery accepted")
	}
	if _, err := Generate(DefaultConfig(), event.NewRegistry()); err == nil {
		t.Error("foreign registry accepted")
	}
}

func TestGenerateStreamShape(t *testing.T) {
	m := compileLR(t, 1)
	cfg := DefaultConfig()
	cfg.Segments = 10
	cfg.Duration = 600
	evs, err := Generate(cfg, m.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("empty stream")
	}
	last := event.Time(-1)
	counts := CountByType(evs)
	for _, e := range evs {
		if e.End() < last {
			t.Fatal("stream not sorted")
		}
		last = e.End()
	}
	// The stream carries raw position reports only; statistics are
	// derived by the engine's SegStat aggregation query.
	if counts["PositionReport"] == 0 || len(counts) != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// Expected volume: per segment, one report per car per interval.
	if counts["PositionReport"] < cfg.Segments*2*int(cfg.Duration/cfg.ReportEvery) {
		t.Errorf("implausibly few reports: %v", counts)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := compileLR(t, 1)
	cfg := DefaultConfig()
	cfg.Segments = 4
	cfg.Duration = 300
	a, _ := Generate(cfg, m.Registry)
	b, _ := Generate(cfg, m.Registry)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("event %d differs", i)
		}
	}
	cfg.Seed = 2
	c, _ := Generate(cfg, m.Registry)
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if !a[i].Equal(c[i]) {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestRampGrowsEventRate(t *testing.T) {
	m := compileLR(t, 1)
	cfg := DefaultConfig()
	cfg.Segments = 5
	cfg.Duration = 1200
	cfg.Ramp = 2
	cfg.Script = func(road, seg int) []Phase { return nil } // all clear
	evs, err := Generate(cfg, m.Registry)
	if err != nil {
		t.Fatal(err)
	}
	half := event.Time(cfg.Duration / 2)
	var early, late int
	for _, e := range evs {
		if e.TypeName() != "PositionReport" {
			continue
		}
		if e.End() < half {
			early++
		} else {
			late++
		}
	}
	if late <= early {
		t.Errorf("ramp did not grow rate: early=%d late=%d", early, late)
	}
}

// runLR executes the benchmark end to end and returns outputs.
func runLR(t testing.TB, replicas int, cfg Config, mode runtime.Mode) (*runtime.Stats, Config) {
	t.Helper()
	m := compileLR(t, replicas)
	opts := plan.Optimized()
	if mode == runtime.ContextIndependent {
		opts = plan.Baseline()
	}
	p, err := plan.Build(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := runtime.New(runtime.Config{
		Plan:           p,
		Mode:           mode,
		PartitionBy:    PartitionBy(),
		Workers:        4,
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := Generate(cfg, m.Registry)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(event.NewSliceSource(evs))
	if err != nil {
		t.Fatal(err)
	}
	return st, cfg
}

func TestBenchmarkSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Segments = 10
	cfg.Duration = 900
	st, _ := runLR(t, 1, cfg, runtime.ContextAware)

	if st.PerType["TollNotification"] == 0 {
		t.Fatal("no tolls derived")
	}
	if st.PerType["AccidentWarning"] == 0 {
		t.Fatal("no accident warnings derived")
	}
	if st.Transitions == 0 || st.SuspendedSkips == 0 {
		t.Errorf("transitions=%d suspensions=%d", st.Transitions, st.SuspendedSkips)
	}

	// Real tolls (toll > 0) happen only while congestion is scripted
	// (with slack for the SegStat-driven transition lag: the stat
	// aggregation window plus the transaction that flushes it);
	// warnings only around accident windows; zero tolls only outside
	// congestion.
	congStart := DefaultCongestionStart(cfg.Duration)
	accStart, accEnd, ok := DefaultAccidentWindow(cfg.Duration)
	if !ok {
		t.Fatal("no accident window at this duration")
	}
	slack := 2*cfg.StatEvery + cfg.ReportEvery + 2
	for _, e := range st.Outputs {
		sec, _ := e.Get("sec")
		switch e.TypeName() {
		case "TollNotification":
			toll, _ := e.Get("toll")
			if toll.Int > 0 && sec.Int < congStart {
				t.Errorf("real toll before congestion: %v", e)
			}
			if toll.Int <= 0 && sec.Int >= congStart+slack {
				t.Errorf("zero toll during congestion: %v", e)
			}
		case "AccidentWarning":
			if sec.Int < accStart || sec.Int > accEnd+slack {
				t.Errorf("warning outside accident window: %v", e)
			}
		}
	}
}

func TestContextAwareBeatsContextIndependent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Segments = 6
	cfg.Duration = 600
	ca, _ := runLR(t, 3, cfg, runtime.ContextAware)
	ci, _ := runLR(t, 3, cfg, runtime.ContextIndependent)
	if ci.InstanceExecs <= 2*ca.InstanceExecs {
		t.Errorf("CI execs %d not clearly above CA execs %d", ci.InstanceExecs, ca.InstanceExecs)
	}
}

func TestUniformWindowsScript(t *testing.T) {
	s := UniformWindows(1000, 4, 100, Congestion)
	ps := s(0, 0)
	if len(ps) != 4 {
		t.Fatalf("phases = %v", ps)
	}
	for i, p := range ps {
		if p.Kind != Congestion || p.End-p.Start != 100 {
			t.Errorf("phase %d = %+v", i, p)
		}
		if p.Start < 0 || p.End > 1000 {
			t.Errorf("phase %d out of range: %+v", i, p)
		}
		if i > 0 && p.Start < ps[i-1].End {
			t.Errorf("windows overlap: %v", ps)
		}
	}
}

func TestPhaseAtPrecedence(t *testing.T) {
	ps := []Phase{
		{Kind: Congestion, Start: 0, End: 100},
		{Kind: Accident, Start: 40, End: 60},
	}
	if phaseAt(ps, 10) != Congestion || phaseAt(ps, 50) != Accident || phaseAt(ps, 70) != Congestion {
		t.Error("phase precedence wrong")
	}
	if phaseAt(ps, 200) != Clear {
		t.Error("uncovered time not clear")
	}
	if Clear.String() != "clear" || Congestion.String() != "congestion" || Accident.String() != "accident" {
		t.Error("PhaseKind strings")
	}
}
