package linearroad

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
)

func streamRegistry(t *testing.T) *event.Registry {
	t.Helper()
	m, err := model.CompileSource(ModelSource(1))
	if err != nil {
		t.Fatal(err)
	}
	return m.Registry
}

// drainStream collects every batch without reclaiming, so the arena
// events stay valid for comparison.
func drainStream(s *Stream) []*event.Event {
	var out []*event.Event
	var b event.Batch
	for {
		more := s.NextBatch(&b)
		out = append(out, b.Events...)
		if !more {
			return out
		}
	}
}

// TestStreamMatchesGenerate: the batch generator must emit the exact
// event sequence of the slice generator — same order, same values —
// so engine results over either source are interchangeable.
func TestStreamMatchesGenerate(t *testing.T) {
	reg := streamRegistry(t)
	cfg := DefaultConfig()
	cfg.Segments = 4
	cfg.Duration = 600

	want, err := Generate(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(s)
	if len(got) != len(want) {
		t.Fatalf("stream emitted %d events, generator %d", len(got), len(want))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("event %d diverges:\n gen: %v\nstream: %v", i, want[i], got[i])
		}
	}

	// A Reset replay is identical and allocates no new slabs.
	chunks, _ := s.ArenaChunks()
	s.Reset()
	got2 := drainStream(s)
	if len(got2) != len(want) {
		t.Fatalf("reset replay emitted %d events, want %d", len(got2), len(want))
	}
	for i := range want {
		if !want[i].Equal(got2[i]) {
			t.Fatalf("reset replay diverges at event %d", i)
		}
	}
	if chunks2, _ := s.ArenaChunks(); chunks2 != chunks {
		t.Fatalf("reset replay grew the arena: %d -> %d slabs", chunks, chunks2)
	}
}

func TestStreamValidation(t *testing.T) {
	reg := streamRegistry(t)
	cfg := DefaultConfig()
	cfg.ReportEvery = 0
	if _, err := NewStream(cfg, reg); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestStreamTickAlignment: every batch is exactly one report tick, so
// the batch protocol's no-split obligation holds trivially.
func TestStreamTickAlignment(t *testing.T) {
	reg := streamRegistry(t)
	cfg := DefaultConfig()
	cfg.Segments = 3
	cfg.Duration = 300
	s, err := NewStream(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	var b event.Batch
	for {
		more := s.NextBatch(&b)
		for _, e := range b.Events[1:] {
			if e.End() != b.Events[0].End() {
				t.Fatalf("batch mixes ticks %d and %d", b.Events[0].End(), e.End())
			}
		}
		if !more {
			break
		}
	}
}
