package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/caesar-cep/caesar/internal/metrics"
	"github.com/caesar-cep/caesar/internal/runtime"
)

// Runner regenerates one figure.
type Runner func(Scale) (*Table, error)

// Registry maps figure ids to runners.
var registry = map[string]Runner{
	"10a":     Fig10a,
	"10b":     Fig10b,
	"11a":     Fig11a,
	"11b":     Fig11b,
	"12a":     Fig12a,
	"12b":     Fig12b,
	"12c":     Fig12c,
	"12d":     Fig12d,
	"13":      Fig13,
	"14a":     Fig14a,
	"14b":     Fig14b,
	"14c":     Fig14c,
	"summary": Summary,
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run regenerates one figure by id.
func Run(id string, s Scale) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, IDs())
	}
	return r(s)
}

// RunAll regenerates every figure and prints each as it completes.
func RunAll(s Scale, w io.Writer) error {
	for _, id := range IDs() {
		t, err := Run(id, s)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		t.Print(w)
	}
	return nil
}

// Summary reproduces the paper's headline claim: context-aware
// processing is on average ~8x faster than context-independent
// processing. It averages the win ratio over a spread of workload
// sizes.
func Summary(s Scale) (*Table, error) {
	t := &Table{
		ID:     "summary",
		Title:  "Headline: average win of CA over CI",
		Header: []string{"queries", "win ratio (latency)", "effort ratio"},
	}
	var latSum, effSum float64
	var n int
	for q := 4; q <= s.MaxQueries; q += 4 {
		ca, err := runLR(lrRun{
			replicas: q, roads: 1, mode: runtime.ContextAware, pushDown: true,
			script:   criticalScript(s.LRDuration),
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		ci, err := runLR(lrRun{
			replicas: q, roads: 1, mode: runtime.ContextIndependent,
			script:   criticalScript(s.LRDuration),
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		win := metrics.WinRatio(ci.MaxLatency, ca.MaxLatency)
		eff := float64(effort(ci)) / float64(effort(ca))
		latSum += win
		effSum += eff
		n++
		t.AddRow(fmt.Sprint(q), fmtRatio(win), fmtRatio(eff))
	}
	if n > 0 {
		t.AddRow("avg", fmtRatio(latSum/float64(n)), fmtRatio(effSum/float64(n)))
	}
	t.Notes = append(t.Notes, "paper: 8-fold faster on average than the context-independent solution")
	return t, nil
}
