// Package experiments regenerates every table and figure of the
// CAESAR evaluation (paper §7). Each FigNN function runs the
// corresponding parameter sweep and returns a Table whose rows mirror
// the series the paper plots; cmd/experiments prints them and
// bench_test.go wraps them as Go benchmarks.
//
// Absolute numbers differ from the paper's testbed (Java on a 16-core
// VM vs. this Go implementation); the reproduced quantity is the
// shape: who wins, by roughly what factor, and where crossovers fall.
// EXPERIMENTS.md records paper-reported vs. measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/linearroad"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/pam"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/runtime"
)

// Scale sizes a sweep. Quick completes in seconds for tests and
// benchmarks; Full approaches the paper's proportions.
type Scale struct {
	Name string
	// LRDuration is the simulated stream duration in seconds
	// (the paper's streams cover 3 hours).
	LRDuration int64
	// LRSegments is the number of segments per road.
	LRSegments int
	// Workers is the engine worker pool size.
	Workers int
	// MaxQueries bounds query-count sweeps.
	MaxQueries int
	// MaxRoads bounds road-count sweeps.
	MaxRoads int
	// MaxOps bounds the optimizer plan-size sweep.
	MaxOps int
	// MaxOverlap bounds the overlapping-window sweep.
	MaxOverlap int
}

// Quick is the test/benchmark scale.
func Quick() Scale {
	return Scale{
		Name:       "quick",
		LRDuration: 420,
		LRSegments: 4,
		Workers:    4,
		MaxQueries: 8,
		MaxRoads:   3,
		MaxOps:     18,
		MaxOverlap: 12,
	}
}

// Full is the paper-proportioned scale used by cmd/experiments.
func Full() Scale {
	return Scale{
		Name:       "full",
		LRDuration: 1800,
		LRSegments: 10,
		Workers:    4,
		MaxQueries: 20,
		MaxRoads:   8,
		MaxOps:     24,
		MaxOverlap: 45,
	}
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table to w in aligned-column form.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

func fmtRatio(r float64) string { return fmt.Sprintf("%.2f", r) }

// lrRun configures one Linear Road engine execution.
type lrRun struct {
	replicas int
	roads    int
	mode     runtime.Mode
	sharing  bool
	pushDown bool
	script   linearroad.Script
	duration int64
	segments int
	workers  int
	pacing   time.Duration
}

// runLR compiles the traffic model, generates the stream and runs it,
// returning the stats.
func runLR(r lrRun) (*runtime.Stats, error) {
	m, err := model.CompileSource(linearroad.ModelSource(r.replicas))
	if err != nil {
		return nil, err
	}
	opts := plan.Optimized()
	switch {
	case r.mode == runtime.ContextIndependent:
		opts = plan.Baseline()
	case !r.pushDown:
		opts = plan.NonOptimized()
	}
	p, err := plan.Build(m, opts)
	if err != nil {
		return nil, err
	}
	eng, err := runtime.New(runtime.Config{
		Plan:        p,
		Mode:        r.mode,
		Sharing:     r.sharing,
		PartitionBy: linearroad.PartitionBy(),
		Workers:     r.workers,
		Pacing:      r.pacing,
	})
	if err != nil {
		return nil, err
	}
	cfg := linearroad.DefaultConfig()
	cfg.Roads = r.roads
	cfg.Segments = r.segments
	cfg.Duration = r.duration
	cfg.Script = r.script
	evs, err := linearroad.Generate(cfg, m.Registry)
	if err != nil {
		return nil, err
	}
	return eng.Run(event.NewSliceSource(evs))
}

// runPAM runs the physical activity monitoring workload.
func runPAM(replicas int, mode runtime.Mode, duration int64, workers int) (*runtime.Stats, error) {
	m, err := model.CompileSource(pam.ModelSource(replicas))
	if err != nil {
		return nil, err
	}
	opts := plan.Optimized()
	if mode == runtime.ContextIndependent {
		opts = plan.Baseline()
	}
	p, err := plan.Build(m, opts)
	if err != nil {
		return nil, err
	}
	eng, err := runtime.New(runtime.Config{
		Plan:        p,
		Mode:        mode,
		PartitionBy: pam.PartitionBy(),
		Workers:     workers,
	})
	if err != nil {
		return nil, err
	}
	cfg := pam.DefaultConfig()
	cfg.Duration = duration
	evs, err := pam.Generate(cfg, m.Registry)
	if err != nil {
		return nil, err
	}
	return eng.Run(event.NewSliceSource(evs))
}

// effort is the machine-independent cost proxy used alongside wall-
// clock latency: events delivered to active plan instances. Wall
// latency is what the paper reports; effort makes the tables
// reproducible on loaded CI machines.
func effort(st *runtime.Stats) uint64 { return st.EventsFed }
