package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny is an even smaller scale than Quick for unit tests.
func tiny() Scale {
	return Scale{
		Name:       "tiny",
		LRDuration: 300,
		LRSegments: 3,
		Workers:    2,
		MaxQueries: 4,
		MaxRoads:   3,
		MaxOps:     17,
		MaxOverlap: 8,
	}
}

func mustRun(t *testing.T, id string) *Table {
	t.Helper()
	tab, err := Run(id, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig"+id && id != "summary" {
		t.Errorf("table id = %s", tab.ID)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for i, r := range tab.Rows {
		if len(r) != len(tab.Header) {
			t.Errorf("%s row %d has %d cells, header has %d", id, i, len(r), len(tab.Header))
		}
	}
	return tab
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", tiny()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"10a", "10b", "11a", "11b", "12a", "12b", "12c", "12d", "13", "14a", "14b", "14c", "summary"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestFig10a(t *testing.T) {
	tab := mustRun(t, "10a")
	// One row per segment; every segment has position reports.
	if len(tab.Rows) != tiny().LRSegments {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	sawWarnings := false
	for _, r := range tab.Rows {
		if cellFloat(t, r[1]) <= 0 {
			t.Errorf("segment %s has no reports", r[0])
		}
		if cellFloat(t, r[4]) > 0 {
			sawWarnings = true
			if r[0] != "2" {
				t.Errorf("warnings on non-accident segment %s", r[0])
			}
		}
	}
	if !sawWarnings {
		t.Error("no accident warnings anywhere")
	}
}

func TestFig10b(t *testing.T) {
	tab := mustRun(t, "10b")
	// Warnings only in the scripted accident minutes; real tolls only
	// after the congestion phase begins.
	congMinute := float64(tiny().LRDuration) * 0.4 / 60
	for _, r := range tab.Rows {
		minute := cellFloat(t, r[0])
		real := cellFloat(t, r[3])
		if real > 0 && minute < congMinute-1 {
			t.Errorf("real tolls at minute %v before congestion", minute)
		}
	}
}

func TestFig11a(t *testing.T) {
	tab := mustRun(t, "11a")
	// Exhaustive explored states grow monotonically (exponentially).
	var prev float64
	for i, r := range tab.Rows {
		states := cellFloat(t, r[5])
		if i > 0 && states <= prev {
			t.Errorf("exhaustive states not growing: %v after %v", states, prev)
		}
		prev = states
	}
	// Greedy states stay tiny.
	last := tab.Rows[len(tab.Rows)-1]
	if cellFloat(t, last[6]) > 100 {
		t.Errorf("greedy states = %s", last[6])
	}
}

func TestFig11b(t *testing.T) {
	tab := mustRun(t, "11b")
	// Optimized effort is below non-optimized effort at every scale.
	for _, r := range tab.Rows {
		opt, non := cellFloat(t, r[3]), cellFloat(t, r[4])
		if opt >= non {
			t.Errorf("roads %s: optimized effort %v not below %v", r[0], opt, non)
		}
	}
}

func TestFig12a(t *testing.T) {
	tab := mustRun(t, "12a")
	// CI does strictly more work than CA at every workload size.
	for _, r := range tab.Rows {
		if cellFloat(t, r[4]) <= 1 {
			t.Errorf("queries %s: effort ratio %s not above 1", r[0], r[4])
		}
	}
	// Effort ratio grows with the workload (the CI replication cost).
	first := cellFloat(t, tab.Rows[0][4])
	last := cellFloat(t, tab.Rows[len(tab.Rows)-1][4])
	if last <= first {
		t.Errorf("effort ratio did not grow: %v -> %v", first, last)
	}
}

func TestFig12c(t *testing.T) {
	tab := mustRun(t, "12c")
	// More suspendable coverage => larger effort ratio: the first row
	// (90% suspendable) must beat the last (25%).
	first := cellFloat(t, tab.Rows[0][5])
	last := cellFloat(t, tab.Rows[len(tab.Rows)-1][5])
	if first <= last {
		t.Errorf("effort ratio not decreasing with coverage: %v -> %v", first, last)
	}
}

func TestFig12d(t *testing.T) {
	mustRun(t, "12d")
}

func TestFig13(t *testing.T) {
	tab := mustRun(t, "13")
	// Pos-skew windows sit in the low-rate ramp start: they cover
	// fewer events than neg-skew windows, so pos-skew effort is
	// lowest and neg-skew highest.
	for _, r := range tab.Rows {
		pos, neg := cellFloat(t, r[5]), cellFloat(t, r[6])
		if pos >= neg {
			t.Errorf("queries %s: pos-skew effort %v not below neg-skew %v", r[0], pos, neg)
		}
	}
}

func TestFig14a(t *testing.T) {
	tab := mustRun(t, "14a")
	for _, r := range tab.Rows {
		if cellFloat(t, r[5]) <= 1 {
			t.Errorf("windows %s: sharing effort ratio %s not above 1", r[0], r[5])
		}
	}
	// Gain grows with the number of overlapping windows.
	first := cellFloat(t, tab.Rows[0][5])
	last := cellFloat(t, tab.Rows[len(tab.Rows)-1][5])
	if last <= first {
		t.Errorf("sharing gain did not grow with overlap count: %v -> %v", first, last)
	}
}

func TestFig14b(t *testing.T) {
	tab := mustRun(t, "14b")
	// Gain grows with overlap length.
	first := cellFloat(t, tab.Rows[0][4])
	last := cellFloat(t, tab.Rows[len(tab.Rows)-1][4])
	if last <= first {
		t.Errorf("sharing gain did not grow with overlap length: %v -> %v", first, last)
	}
}

func TestFig14c(t *testing.T) {
	tab := mustRun(t, "14c")
	for _, r := range tab.Rows {
		if cellFloat(t, r[4]) <= 1 {
			t.Errorf("queries %s: effort ratio %s not above 1", r[0], r[4])
		}
	}
}

func TestSummary(t *testing.T) {
	tab := mustRun(t, "summary")
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "avg" {
		t.Fatalf("no average row: %v", last)
	}
	if cellFloat(t, last[2]) <= 1.5 {
		t.Errorf("average CA/CI effort ratio %s implausibly low", last[2])
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "bbbb"},
		Notes:  []string{"note"},
	}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "# note") {
		t.Errorf("print output:\n%s", out)
	}
}

func TestPlacementString(t *testing.T) {
	if Uniform.String() != "uniform" || PosSkew.String() != "poisson-pos-skew" || NegSkew.String() != "poisson-neg-skew" {
		t.Error("placement strings")
	}
}

func TestOverlapSpecGeometry(t *testing.T) {
	o := overlapSpec{Windows: 4, Length: 100, Overlap: 60, QueriesPer: 2, Rate: 2, Workers: 1}
	st := o.starts()
	if len(st) != 4 || st[1]-st[0] != 40 {
		t.Errorf("starts = %v", st)
	}
	if mc := o.maxConcurrent(); mc != 3 {
		t.Errorf("max concurrent = %d, want 3", mc)
	}
	if d := o.duration(); d != st[3]+100+10 {
		t.Errorf("duration = %d", d)
	}
}

func TestFig12b(t *testing.T) {
	tab := mustRun(t, "12b")
	for _, r := range tab.Rows {
		if cellFloat(t, r[4]) <= 1 {
			t.Errorf("roads %s: effort ratio %s not above 1", r[0], r[4])
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	s := tiny()
	s.MaxQueries = 4
	s.MaxOverlap = 4
	s.MaxOps = 16
	var buf bytes.Buffer
	if err := RunAll(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range IDs() {
		if id == "summary" {
			continue
		}
		if !strings.Contains(out, "== fig"+id+":") {
			t.Errorf("RunAll output missing figure %s", id)
		}
	}
}

func TestScalePresets(t *testing.T) {
	q, f := Quick(), Full()
	if q.Name != "quick" || f.Name != "full" {
		t.Error("preset names")
	}
	if q.LRDuration >= f.LRDuration || q.MaxQueries >= f.MaxQueries {
		t.Error("quick not smaller than full")
	}
}
