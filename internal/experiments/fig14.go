package experiments

import (
	"fmt"
	"strings"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/metrics"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/pam"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/runtime"
)

// overlapSpec parameterizes the synthetic overlapping-context-window
// workload of §7.3.2 (paper defaults: 30 windows of 15 minutes each,
// overlapping by 10 minutes, 4 event queries per window).
type overlapSpec struct {
	// Windows is the number of context types/windows.
	Windows int
	// Length is each window's duration in seconds.
	Length int64
	// Overlap is the length shared by consecutive windows.
	Overlap int64
	// QueriesPer is the (identical, shareable) workload per window.
	QueriesPer int
	// Rate is the number of data events per second.
	Rate    int
	Workers int
}

// modelSource renders the CAESAR model: one context per window, all
// initiated/terminated by control events, each carrying the same
// QueriesPer join queries (identical across contexts, so the sharing
// optimizer can merge them).
func (o overlapSpec) modelSource() string {
	var b strings.Builder
	b.WriteString(`EVENT W(seg int, idx int, op int)
EVENT P(seg int, v int, sec int)
EVENT R(seg int, v int, q int)

CONTEXT idle DEFAULT
`)
	for i := 0; i < o.Windows; i++ {
		fmt.Fprintf(&b, "CONTEXT k%d\n", i)
	}
	all := make([]string, 0, o.Windows+1)
	all = append(all, "idle")
	for i := 0; i < o.Windows; i++ {
		all = append(all, fmt.Sprintf("k%d", i))
	}
	for i := 0; i < o.Windows; i++ {
		fmt.Fprintf(&b, `
INITIATE CONTEXT k%d
PATTERN W w
WHERE w.idx = %d AND w.op = 1
CONTEXT %s
`, i, i, strings.Join(all, ", "))
		fmt.Fprintf(&b, `
TERMINATE CONTEXT k%d
PATTERN W w
WHERE w.idx = %d AND w.op = 0
CONTEXT k%d
`, i, i, i)
		for j := 0; j < o.QueriesPer; j++ {
			fmt.Fprintf(&b, `
DERIVE R(p2.seg, p2.v, %d)
PATTERN SEQ(P p1, P p2)
WHERE p1.v = p2.v AND p2.sec = p1.sec + 1 AND p2.v >= %d
WITHIN 5
CONTEXT k%d
`, j, j, i)
		}
	}
	return b.String()
}

// starts returns each window's start time: consecutive windows are
// staggered by Length-Overlap.
func (o overlapSpec) starts() []int64 {
	gap := o.Length - o.Overlap
	if gap < 1 {
		gap = 1
	}
	out := make([]int64, o.Windows)
	for i := range out {
		out[i] = int64(i) * gap
	}
	return out
}

// duration is the stream length covering all windows plus margin.
func (o overlapSpec) duration() int64 {
	st := o.starts()
	return st[len(st)-1] + o.Length + 10
}

// maxConcurrent reports the peak number of simultaneously open
// windows (the paper's "number of overlapping context windows").
func (o overlapSpec) maxConcurrent() int {
	st := o.starts()
	best := 0
	for _, s := range st {
		n := 0
		for _, s2 := range st {
			if s2 <= s && s < s2+o.Length {
				n++
			}
		}
		if n > best {
			best = n
		}
	}
	return best
}

// stream builds the control + data stream against the model registry.
func (o overlapSpec) stream(reg *event.Registry) ([]*event.Event, error) {
	w, ok := reg.Lookup("W")
	if !ok {
		return nil, fmt.Errorf("experiments: registry lacks W")
	}
	p, ok := reg.Lookup("P")
	if !ok {
		return nil, fmt.Errorf("experiments: registry lacks P")
	}
	var evs []*event.Event
	for i, s := range o.starts() {
		evs = append(evs,
			event.MustNew(w, event.Time(s), event.Int64(0), event.Int64(int64(i)), event.Int64(1)),
			event.MustNew(w, event.Time(s+o.Length), event.Int64(0), event.Int64(int64(i)), event.Int64(0)))
	}
	d := o.duration()
	for t := int64(0); t < d; t++ {
		for v := 0; v < o.Rate; v++ {
			evs = append(evs, event.MustNew(p, event.Time(t),
				event.Int64(0), event.Int64(int64(v)), event.Int64(t)))
		}
	}
	event.SortByTime(evs)
	return evs, nil
}

// run executes the workload with or without sharing.
func (o overlapSpec) run(sharing bool) (*runtime.Stats, error) {
	m, err := model.CompileSource(o.modelSource())
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		return nil, err
	}
	eng, err := runtime.New(runtime.Config{
		Plan:        p,
		Mode:        runtime.ContextAware,
		Sharing:     sharing,
		PartitionBy: []string{"seg"},
		Workers:     o.Workers,
	})
	if err != nil {
		return nil, err
	}
	evs, err := o.stream(m.Registry)
	if err != nil {
		return nil, err
	}
	return eng.Run(event.NewSliceSource(evs))
}

func (o overlapSpec) compare() (shared, nonShared *runtime.Stats, err error) {
	shared, err = o.run(true)
	if err != nil {
		return nil, nil, err
	}
	nonShared, err = o.run(false)
	if err != nil {
		return nil, nil, err
	}
	return shared, nonShared, nil
}

// baseOverlap derives the scaled default workload from the paper's
// "30 windows x 15 min, overlapping by 10 min, 4 queries each".
func baseOverlap(s Scale) overlapSpec {
	return overlapSpec{
		Windows:    min(10, s.MaxOverlap),
		Length:     270,
		Overlap:    240,
		QueriesPer: 4,
		Rate:       12,
		Workers:    s.Workers,
	}
}

// Fig14a reproduces "varying the number of overlapping context
// windows" (paper Fig. 14(a)): shared versus non-shared maximal
// latency as the peak overlap grows.
func Fig14a(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig14a",
		Title:  "Shared vs. non-shared: number of overlapping windows",
		Header: []string{"windows", "max concurrent", "shared", "non-shared", "win ratio", "effort ratio"},
	}
	for n := 4; n <= s.MaxOverlap; n += 4 {
		o := baseOverlap(s)
		o.Windows = n
		// Keep every window overlapping its neighbors regardless of
		// count: constant stagger, so concurrency grows with n.
		o.Length = 30 * int64(n)
		o.Overlap = o.Length - 20
		sh, non, err := o.compare()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(o.maxConcurrent()),
			fmtDur(sh.MaxLatency), fmtDur(non.MaxLatency),
			fmtRatio(metrics.WinRatio(non.MaxLatency, sh.MaxLatency)),
			fmtRatio(float64(non.InstanceExecs)/float64(sh.InstanceExecs)))
	}
	t.Notes = append(t.Notes, "paper: sharing wins 10x when 45 windows overlap")
	return t, nil
}

// Fig14b reproduces "varying the length of context window overlap"
// (paper Fig. 14(b)).
func Fig14b(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig14b",
		Title:  "Shared vs. non-shared: overlap length",
		Header: []string{"overlap (s)", "shared", "non-shared", "win ratio", "effort ratio"},
	}
	for _, overlap := range []int64{0, 60, 120, 180, 240} {
		o := baseOverlap(s)
		o.Overlap = overlap
		sh, non, err := o.compare()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(overlap),
			fmtDur(sh.MaxLatency), fmtDur(non.MaxLatency),
			fmtRatio(metrics.WinRatio(non.MaxLatency, sh.MaxLatency)),
			fmtRatio(float64(non.InstanceExecs)/float64(sh.InstanceExecs)))
	}
	t.Notes = append(t.Notes,
		"paper: the gain grows linearly with overlap; 6x at 15 min overlap of 30 windows")
	return t, nil
}

// Fig14c reproduces "shared workload size" (paper Fig. 14(c)): shared
// versus non-shared as the per-window query workload grows, on the
// synthetic LR-like workload and on PAM (paper runs both).
func Fig14c(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig14c",
		Title:  "Shared vs. non-shared: shared workload size",
		Header: []string{"queries/window", "shared", "non-shared", "win ratio", "effort ratio", "PAM shared", "PAM non-shared"},
	}
	for q := 2; q <= min(10, s.MaxQueries); q += 2 {
		o := baseOverlap(s)
		o.QueriesPer = q
		sh, non, err := o.compare()
		if err != nil {
			return nil, err
		}
		psh, pnon, err := pamSharing(q, s)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(q),
			fmtDur(sh.MaxLatency), fmtDur(non.MaxLatency),
			fmtRatio(metrics.WinRatio(non.MaxLatency, sh.MaxLatency)),
			fmtRatio(float64(effort(non))/float64(effort(sh))),
			fmtDur(psh.MaxLatency), fmtDur(pnon.MaxLatency))
	}
	t.Notes = append(t.Notes, "paper: sharing wins 9x at 10 shareable queries per window (LR)")
	return t, nil
}

// pamSharing runs the activity workload with a query set duplicated
// across the exercising and peak contexts so sharing has material to
// merge.
func pamSharing(queriesPer int, s Scale) (shared, nonShared *runtime.Stats, err error) {
	var b strings.Builder
	b.WriteString(pam.ModelSource(1))
	for j := 0; j < queriesPer; j++ {
		for _, ctx := range []string{"exercising", "peak"} {
			fmt.Fprintf(&b, `
DERIVE Summary(r.subj, r.cadence, r.sec, %d)
PATTERN Reading r
WHERE r.cadence >= %d
CONTEXT %s
`, 2000+j, 40+j, ctx)
		}
	}
	src := b.String()
	run := func(sharing bool) (*runtime.Stats, error) {
		m, err := model.CompileSource(src)
		if err != nil {
			return nil, err
		}
		p, err := plan.Build(m, plan.Optimized())
		if err != nil {
			return nil, err
		}
		eng, err := runtime.New(runtime.Config{
			Plan:        p,
			Sharing:     sharing,
			PartitionBy: pam.PartitionBy(),
			Workers:     s.Workers,
		})
		if err != nil {
			return nil, err
		}
		cfg := pam.DefaultConfig()
		cfg.Duration = s.LRDuration
		evs, err := pam.Generate(cfg, m.Registry)
		if err != nil {
			return nil, err
		}
		return eng.Run(event.NewSliceSource(evs))
	}
	shared, err = run(true)
	if err != nil {
		return nil, nil, err
	}
	nonShared, err = run(false)
	if err != nil {
		return nil, nil, err
	}
	return shared, nonShared, nil
}
