package experiments

import (
	"fmt"
	"sort"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/linearroad"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/runtime"
)

// fig10Run executes the benchmark once with output collection and
// returns the stats plus the generated input events.
func fig10Run(s Scale) (*runtime.Stats, []*event.Event, error) {
	m, err := model.CompileSource(linearroad.ModelSource(1))
	if err != nil {
		return nil, nil, err
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		return nil, nil, err
	}
	eng, err := runtime.New(runtime.Config{
		Plan:           p,
		PartitionBy:    linearroad.PartitionBy(),
		Workers:        s.Workers,
		CollectOutputs: true,
	})
	if err != nil {
		return nil, nil, err
	}
	cfg := linearroad.DefaultConfig()
	cfg.Roads = 1
	cfg.Segments = s.LRSegments
	cfg.Duration = s.LRDuration
	evs, err := linearroad.Generate(cfg, m.Registry)
	if err != nil {
		return nil, nil, err
	}
	st, err := eng.Run(event.NewSliceSource(evs))
	if err != nil {
		return nil, nil, err
	}
	return st, evs, nil
}

// Fig10a reproduces "events per road segment": for each segment of
// one road, the number of position reports, zero toll notifications,
// real toll notifications and accident warnings over the whole run
// (paper Fig. 10(a)).
func Fig10a(s Scale) (*Table, error) {
	st, input, err := fig10Run(s)
	if err != nil {
		return nil, err
	}
	type counts struct{ pos, zero, real, warn int }
	perSeg := map[int64]*counts{}
	at := func(seg int64) *counts {
		c := perSeg[seg]
		if c == nil {
			c = &counts{}
			perSeg[seg] = c
		}
		return c
	}
	for _, e := range input {
		if e.TypeName() == "PositionReport" {
			seg, _ := e.Get("seg")
			at(seg.Int).pos++
		}
	}
	for _, e := range st.Outputs {
		seg, _ := e.Get("seg")
		switch e.TypeName() {
		case "TollNotification":
			toll, _ := e.Get("toll")
			if toll.Int > 0 {
				at(seg.Int).real++
			} else {
				at(seg.Int).zero++
			}
		case "AccidentWarning":
			at(seg.Int).warn++
		}
	}
	segs := make([]int64, 0, len(perSeg))
	for seg := range perSeg {
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	t := &Table{
		ID:     "fig10a",
		Title:  "Events per road segment (1 road)",
		Header: []string{"segment", "position reports", "zero tolls", "real tolls", "accident warnings"},
	}
	for _, seg := range segs {
		c := perSeg[seg]
		t.AddRow(fmt.Sprint(seg), fmt.Sprint(c.pos), fmt.Sprint(c.zero), fmt.Sprint(c.real), fmt.Sprint(c.warn))
	}
	t.Notes = append(t.Notes,
		"accidents are scripted on segments with seg%5==2; congestion covers the final 60% of the run on every segment")
	return t, nil
}

// Fig10b reproduces "events per minute" for one accident segment:
// the per-minute counts visualize the application contexts — accident
// warnings only during the accident window, zero tolls before the
// congestion phase, real tolls during it (paper Fig. 10(b)).
func Fig10b(s Scale) (*Table, error) {
	st, input, err := fig10Run(s)
	if err != nil {
		return nil, err
	}
	const seg = 2 // scripted accident segment
	minutes := int(s.LRDuration/60) + 1
	type counts struct{ pos, zero, real, warn int }
	perMin := make([]counts, minutes)
	bucket := func(t event.Time) int {
		b := int(int64(t) / 60)
		if b >= minutes {
			b = minutes - 1
		}
		return b
	}
	for _, e := range input {
		if e.TypeName() != "PositionReport" {
			continue
		}
		sv, _ := e.Get("seg")
		if sv.Int != seg {
			continue
		}
		perMin[bucket(e.End())].pos++
	}
	for _, e := range st.Outputs {
		sv, _ := e.Get("seg")
		if sv.Int != seg {
			continue
		}
		b := bucket(e.End())
		switch e.TypeName() {
		case "TollNotification":
			toll, _ := e.Get("toll")
			if toll.Int > 0 {
				perMin[b].real++
			} else {
				perMin[b].zero++
			}
		case "AccidentWarning":
			perMin[b].warn++
		}
	}
	t := &Table{
		ID:     "fig10b",
		Title:  fmt.Sprintf("Events per minute, segment %d", seg),
		Header: []string{"minute", "position reports", "zero tolls", "real tolls", "accident warnings"},
	}
	for m := 0; m < minutes; m++ {
		c := perMin[m]
		t.AddRow(fmt.Sprint(m), fmt.Sprint(c.pos), fmt.Sprint(c.zero), fmt.Sprint(c.real), fmt.Sprint(c.warn))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("accident window scripted at [%d%%, %d%%) of the run; congestion from %d%%",
			17, 28, 40))
	return t, nil
}
