package experiments

import (
	"fmt"

	"github.com/caesar-cep/caesar/internal/linearroad"
	"github.com/caesar-cep/caesar/internal/metrics"
	"github.com/caesar-cep/caesar/internal/runtime"
)

// criticalScript reproduces the §7.3.1 workload setup: two critical
// non-overlapping context windows (3 minutes each in the paper's 3 h
// stream, proportionally scaled here). The replicated query workload
// is active only inside them and suspendable everywhere else.
func criticalScript(duration int64) linearroad.Script {
	length := duration / 10
	if length < 120 {
		length = 120
	}
	return linearroad.UniformWindows(duration, 2, length, linearroad.Congestion)
}

// Fig12a reproduces "scaling event query workload" (paper Fig.
// 12(a)): maximal latency of context-aware versus context-independent
// processing as the number of event queries grows, on both the Linear
// Road (LR) and physical activity monitoring (PAM) workloads.
func Fig12a(s Scale) (*Table, error) {
	t := &Table{
		ID:    "fig12a",
		Title: "Max latency vs. event query workload (CA vs. CI)",
		Header: []string{"queries", "LR CA", "LR CI", "LR win", "LR effort ratio",
			"PAM CA", "PAM CI", "PAM win"},
	}
	for q := 2; q <= s.MaxQueries; q += 2 {
		ca, err := runLR(lrRun{
			replicas: q, roads: 1, mode: runtime.ContextAware, pushDown: true,
			script:   criticalScript(s.LRDuration),
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		ci, err := runLR(lrRun{
			replicas: q, roads: 1, mode: runtime.ContextIndependent,
			script:   criticalScript(s.LRDuration),
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		pca, err := runPAM(q, runtime.ContextAware, s.LRDuration, s.Workers)
		if err != nil {
			return nil, err
		}
		pci, err := runPAM(q, runtime.ContextIndependent, s.LRDuration, s.Workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(q),
			fmtDur(ca.MaxLatency), fmtDur(ci.MaxLatency),
			fmtRatio(metrics.WinRatio(ci.MaxLatency, ca.MaxLatency)),
			fmtRatio(float64(effort(ci))/float64(effort(ca))),
			fmtDur(pca.MaxLatency), fmtDur(pci.MaxLatency),
			fmtRatio(metrics.WinRatio(pci.MaxLatency, pca.MaxLatency)))
	}
	t.Notes = append(t.Notes,
		"paper: CA ~8x faster than CI at 10 queries (LR); same win at 20 queries (PAM)")
	return t, nil
}

// Fig12b reproduces "varying event stream rates" (paper Fig. 12(b)):
// maximal latency of CA vs. CI as the number of roads grows.
func Fig12b(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig12b",
		Title:  "Max latency vs. event stream rate (number of roads)",
		Header: []string{"roads", "CA", "CI", "win ratio", "effort ratio"},
	}
	for roads := 2; roads <= min(s.MaxRoads, 7); roads++ {
		ca, err := runLR(lrRun{
			replicas: 6, roads: roads, mode: runtime.ContextAware, pushDown: true,
			script:   criticalScript(s.LRDuration),
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		ci, err := runLR(lrRun{
			replicas: 6, roads: roads, mode: runtime.ContextIndependent,
			script:   criticalScript(s.LRDuration),
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(roads), fmtDur(ca.MaxLatency), fmtDur(ci.MaxLatency),
			fmtRatio(metrics.WinRatio(ci.MaxLatency, ca.MaxLatency)),
			fmtRatio(float64(effort(ci))/float64(effort(ca))))
	}
	t.Notes = append(t.Notes, "paper: CA 9x faster than CI at 7 roads")
	return t, nil
}

// coverageScript builds a Script whose critical (congestion) windows
// cover the given fraction of the run, split into n windows; outside
// them the complex workload is suspendable. It returns the script,
// the effective per-window length (clamped to one SegStat period so
// the deriving queries can observe the window), and the suspendable
// stream fraction.
func coverageScript(duration int64, n int, covered float64) (linearroad.Script, int64, float64) {
	if n < 1 {
		n = 1
	}
	length := int64(covered * float64(duration) / float64(n))
	if length < 60 {
		length = 60
	}
	suspendable := 1 - float64(length*int64(n))/float64(duration)
	return linearroad.UniformWindows(duration, n, length, linearroad.Congestion), length, suspendable
}

// Fig12c reproduces "varying context window lengths" (paper Fig.
// 12(c)): the win ratio of CA over CI as the critical windows grow,
// annotated with the percentage of the stream during which the
// complex workload may be suspended.
func Fig12c(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig12c",
		Title:  "Win ratio vs. context window length",
		Header: []string{"window len (s)", "suspendable %", "CA", "CI", "win ratio", "effort ratio"},
	}
	const windows = 2
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75} {
		script, length, suspendable := coverageScript(s.LRDuration, windows, frac)
		ca, err := runLR(lrRun{
			replicas: 6, roads: 1, mode: runtime.ContextAware, pushDown: true, script: script,
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		ci, err := runLR(lrRun{
			replicas: 6, roads: 1, mode: runtime.ContextIndependent, script: script,
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(length),
			fmt.Sprintf("%.0f%%", 100*suspendable),
			fmtDur(ca.MaxLatency), fmtDur(ci.MaxLatency),
			fmtRatio(metrics.WinRatio(ci.MaxLatency, ca.MaxLatency)),
			fmtRatio(float64(effort(ci))/float64(effort(ca))))
	}
	t.Notes = append(t.Notes,
		"paper: win ratio exceeds 3 when suspendable coverage exceeds 80%, ~1 below 50%")
	return t, nil
}

// Fig12d reproduces "varying the number of context windows" (paper
// Fig. 12(d)): the win ratio as the number of critical windows grows
// at fixed per-window length.
func Fig12d(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig12d",
		Title:  "Win ratio vs. number of context windows",
		Header: []string{"windows", "suspendable %", "CA", "CI", "win ratio", "effort ratio"},
	}
	length := s.LRDuration / 20
	if length < 60 {
		length = 60
	}
	for _, n := range []int{1, 2, 4, 6} {
		script := linearroad.UniformWindows(s.LRDuration, n, length, linearroad.Congestion)
		suspendable := 1 - float64(length*int64(n))/float64(s.LRDuration)
		ca, err := runLR(lrRun{
			replicas: 6, roads: 1, mode: runtime.ContextAware, pushDown: true, script: script,
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		ci, err := runLR(lrRun{
			replicas: 6, roads: 1, mode: runtime.ContextIndependent, script: script,
			duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.0f%%", 100*suspendable),
			fmtDur(ca.MaxLatency), fmtDur(ci.MaxLatency),
			fmtRatio(metrics.WinRatio(ci.MaxLatency, ca.MaxLatency)),
			fmtRatio(float64(effort(ci))/float64(effort(ca))))
	}
	t.Notes = append(t.Notes,
		"paper: win ratio exceeds 2 above 80% suspendable coverage, ~1 below 50%")
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
