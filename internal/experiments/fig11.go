package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/caesar-cep/caesar/internal/metrics"
	"github.com/caesar-cep/caesar/internal/optimizer"
	"github.com/caesar-cep/caesar/internal/runtime"
)

// Fig11a reproduces the optimizer search comparison (paper Fig.
// 11(a)): CPU time of the exhaustive (context-independent) plan
// search versus the greedy context-aware search as the number of
// operators in the plan grows. The exhaustive column grows
// exponentially; the greedy one stays flat.
func Fig11a(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig11a",
		Title:  "Optimizer search time vs. plan size",
		Header: []string{"operators", "exhaustive", "greedy", "speedup", "log2(speedup)", "exh states", "greedy states"},
	}
	start := 16
	if s.MaxOps < start {
		start = s.MaxOps
	}
	for n := start; n <= s.MaxOps; n++ {
		ops := optimizer.SyntheticPlan(n, 1)
		t0 := time.Now()
		ex, err := optimizer.ExhaustiveSearch(ops)
		if err != nil {
			return nil, err
		}
		exDur := time.Since(t0)
		t1 := time.Now()
		var gr optimizer.SearchResult
		// The greedy search is so fast that a single call is below
		// timer resolution; amortize over repetitions.
		const reps = 2000
		for i := 0; i < reps; i++ {
			gr, err = optimizer.GreedySearch(ops)
			if err != nil {
				return nil, err
			}
		}
		grDur := time.Since(t1) / reps
		if grDur <= 0 {
			grDur = time.Nanosecond
		}
		speedup := float64(exDur) / float64(grDur)
		t.AddRow(fmt.Sprint(n), fmtDur(exDur), fmtDur(grDur),
			fmt.Sprintf("%.0f", speedup), fmt.Sprintf("%.1f", math.Log2(speedup)),
			fmt.Sprint(ex.Explored), fmt.Sprint(gr.Explored))
	}
	t.Notes = append(t.Notes,
		"paper: exhaustive grows exponentially; CAESAR's greedy search is 2^12-fold faster at 24 operators")
	return t, nil
}

// Fig11b reproduces the L-factor experiment (paper Fig. 11(b)): the
// maximal latency of the optimized (context-window pushed down)
// versus the non-optimized query plan as the number of roads grows,
// and the largest road count each sustains under the latency
// constraint.
func Fig11b(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig11b",
		Title:  "L-factor: max latency vs. number of roads",
		Header: []string{"roads", "optimized", "non-optimized", "opt effort", "non-opt effort"},
	}
	var scales []int
	var optLat, nonLat []time.Duration
	// Best of three trials per point: the non-optimized plan's large
	// pattern state makes single runs GC-noisy.
	best := func(run lrRun) (time.Duration, uint64, error) {
		var lat time.Duration
		var eff uint64
		for trial := 0; trial < 3; trial++ {
			st, err := runLR(run)
			if err != nil {
				return 0, 0, err
			}
			if trial == 0 || st.MaxLatency < lat {
				lat = st.MaxLatency
			}
			eff = effort(st)
		}
		return lat, eff, nil
	}
	for roads := 2; roads <= s.MaxRoads; roads++ {
		// One worker: latency then tracks total work monotonically,
		// which is what the L-factor crossover needs.
		run := lrRun{
			replicas: 3, roads: roads, mode: runtime.ContextAware, pushDown: true,
			duration: s.LRDuration, segments: s.LRSegments, workers: 1,
		}
		optL, optE, err := best(run)
		if err != nil {
			return nil, err
		}
		run.pushDown = false
		nonL, nonE, err := best(run)
		if err != nil {
			return nil, err
		}
		scales = append(scales, roads)
		optLat = append(optLat, optL)
		nonLat = append(nonLat, nonL)
		t.AddRow(fmt.Sprint(roads), fmtDur(optL), fmtDur(nonL),
			fmt.Sprint(optE), fmt.Sprint(nonE))
	}
	// The paper's constraint is the benchmark's 5 s on their testbed.
	// Our absolute latencies are different, so the constraint is
	// scaled to the measurement range: the non-optimized latency at
	// two thirds of the road sweep. Under it the non-optimized plan
	// sustains about two thirds of the roads and the optimized plan
	// more — the paper's 7-vs-5 relation at our scale.
	if len(optLat) > 0 {
		constraint := nonLat[(len(nonLat)-1)*2/3] + nonLat[(len(nonLat)-1)*2/3]/20
		lOpt := metrics.LFactor(scales, optLat, constraint)
		lNon := metrics.LFactor(scales, nonLat, constraint)
		t.Notes = append(t.Notes,
			fmt.Sprintf("constraint %s (scaled stand-in for the benchmark's 5 s): L-factor optimized=%d, non-optimized=%d",
				fmtDur(constraint), lOpt, lNon),
			"paper: optimized sustains 7 roads, non-optimized 5 under the 5 s constraint")
	}
	return t, nil
}
