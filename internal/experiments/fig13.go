package experiments

import (
	"fmt"

	"github.com/caesar-cep/caesar/internal/linearroad"
	"github.com/caesar-cep/caesar/internal/runtime"
)

// Placement positions the critical context windows over the run
// (paper Fig. 13): uniformly, clustered at the start (Poisson with
// positive skew — lambda at the first second), or clustered at the
// end (negative skew — lambda at the last second).
type Placement int

const (
	// Uniform spreads windows evenly.
	Uniform Placement = iota
	// PosSkew clusters windows at the beginning of the run, where
	// the ramping stream rate is still low.
	PosSkew
	// NegSkew clusters windows at the end, where the rate peaks.
	NegSkew
)

func (p Placement) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case PosSkew:
		return "poisson-pos-skew"
	case NegSkew:
		return "poisson-neg-skew"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// placementScript builds the window schedule: n windows of the given
// length, placed per the distribution. Clustered placements pack the
// windows back to back at the respective end of the run.
func placementScript(duration int64, n int, length int64, p Placement) linearroad.Script {
	starts := make([]int64, 0, n)
	switch p {
	case Uniform:
		return linearroad.UniformWindows(duration, n, length, linearroad.Congestion)
	case PosSkew:
		for i := 0; i < n; i++ {
			starts = append(starts, int64(i)*length)
		}
	case NegSkew:
		for i := 0; i < n; i++ {
			s := duration - int64(n-i)*length
			if s < 0 {
				s = 0
			}
			starts = append(starts, s)
		}
	}
	return linearroad.WindowsAt(starts, length, linearroad.Congestion)
}

// Fig13 reproduces "evaluating diverse context window distributions"
// (paper Fig. 13): maximal context-aware latency as the query
// workload grows, under the three window placements. The stream rate
// ramps up over the run, so placement decides how many events the
// critical windows cover.
func Fig13(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Max latency vs. queries under window placement distributions",
		Header: []string{"queries", "uniform", "pos-skew", "neg-skew", "uniform effort", "pos effort", "neg effort"},
	}
	const windows = 2
	length := s.LRDuration / 10
	if length < 60 {
		length = 60
	}
	for q := 4; q <= s.MaxQueries; q += 4 {
		row := []string{fmt.Sprint(q)}
		var efforts []string
		for _, p := range []Placement{Uniform, PosSkew, NegSkew} {
			st, err := runLR(lrRun{
				replicas: q, roads: 1, mode: runtime.ContextAware, pushDown: true,
				script:   placementScript(s.LRDuration, windows, length, p),
				duration: s.LRDuration, segments: s.LRSegments, workers: s.Workers,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(st.MaxLatency))
			efforts = append(efforts, fmt.Sprint(effort(st)))
		}
		row = append(row, efforts...)
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: at 20 queries, uniform is 1.8x faster than pos-skew and 11x slower than neg-skew",
		"mechanism here: the event rate ramps up, so windows at the start cover the fewest events")
	return t, nil
}
