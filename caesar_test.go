package caesar

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const thermostatSrc = `
EVENT Reading(sensor int, temp int, sec int)
EVENT Alarm(sensor int, temp int)

CONTEXT normal DEFAULT
CONTEXT overheated

SWITCH CONTEXT overheated
PATTERN Reading r
WHERE r.temp > 90
CONTEXT normal

SWITCH CONTEXT normal
PATTERN Reading r
WHERE r.temp < 70
CONTEXT overheated

DERIVE Alarm(r.sensor, r.temp)
PATTERN Reading r
CONTEXT overheated
`

func thermostatStream(t *testing.T, eng *Engine) *SliceSource {
	t.Helper()
	s, ok := eng.Registry().Lookup("Reading")
	if !ok {
		t.Fatal("no Reading schema")
	}
	mk := func(ts Time, sensor, temp int64) *Event {
		e, err := NewEvent(s, ts, Int64(sensor), Int64(temp), Int64(int64(ts)))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	evs := []*Event{
		mk(1, 7, 50),
		mk(2, 7, 95), // switch to overheated (effective for t>2)
		mk(3, 7, 96), // alarm
		mk(4, 7, 92), // alarm
		mk(5, 7, 60), // alarm (still overheated at t=5), then switch back
		mk(6, 7, 55), // no alarm
	}
	SortByTime(evs)
	return NewSliceSource(evs)
}

func TestPublicAPIQuickstart(t *testing.T) {
	eng, err := NewFromSource(thermostatSrc, Config{
		PartitionBy:    []string{"sensor"},
		Workers:        2,
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(thermostatStream(t, eng))
	if err != nil {
		t.Fatal(err)
	}
	if st.PerType["Alarm"] != 3 {
		t.Fatalf("alarms = %d, want 3 (outputs %v)", st.PerType["Alarm"], st.Outputs)
	}
	if st.SuspendedSkips == 0 {
		t.Error("alarm plan never suspended in normal context")
	}
}

// TestTelemetryFacade exercises the public telemetry surface: a
// registry and tracer wired through Config, scraped over the HTTP
// handler after a run.
func TestTelemetryFacade(t *testing.T) {
	reg := NewTelemetryRegistry()
	var slowLog strings.Builder
	eng, err := NewFromSource(thermostatSrc, Config{
		PartitionBy: []string{"sensor"},
		Workers:     2,
		Telemetry:   reg,
		Tracer:      NewTracer(time.Nanosecond, &slowLog), // everything is "slow"
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(thermostatStream(t, eng))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(TelemetryHandler(reg))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"caesar_events_total 6",
		`caesar_context_activations_total{context="overheated"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if cs := st.Contexts["overheated"]; cs.Activations != 1 || cs.Suspensions != 1 {
		t.Errorf("overheated window stats = %+v", cs)
	}
	if !strings.Contains(slowLog.String(), "slow txn") {
		t.Errorf("tracer logged nothing at 1ns threshold: %q", slowLog.String())
	}
	if st.TxnMax <= 0 {
		t.Error("txn timing not populated with tracer attached")
	}
}

func TestParseModelAndNew(t *testing.T) {
	m, err := ParseModel(thermostatSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Queries) != 3 {
		t.Fatalf("queries = %d", len(m.Queries))
	}
	eng, err := New(m, Config{PartitionBy: []string{"sensor"}})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Model() != m {
		t.Error("engine model mismatch")
	}
	if eng.Plan() == nil || len(eng.Plan().Queries) != 3 {
		t.Error("plan missing")
	}
}

func TestParseModelError(t *testing.T) {
	_, err := ParseModel("EVENT A(x int)\nDERIVE A(1)\nPATTERN A a")
	if err == nil || !strings.Contains(err.Error(), "context") {
		t.Errorf("bad model accepted: %v", err)
	}
}

func TestConfigValidationAtFacade(t *testing.T) {
	if _, err := NewFromSource(thermostatSrc, Config{ContextIndependent: true, Sharing: true}); err == nil {
		t.Error("CI+sharing accepted")
	}
	if _, err := NewFromSource(thermostatSrc, Config{ContextIndependent: true, DisablePushDown: true}); err == nil {
		t.Error("CI+disable-pushdown accepted")
	}
}

func TestEngineReusableAcrossRuns(t *testing.T) {
	eng, err := NewFromSource(thermostatSrc, Config{
		PartitionBy:    []string{"sensor"},
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := eng.Run(thermostatStream(t, eng))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := eng.Run(thermostatStream(t, eng))
	if err != nil {
		t.Fatal(err)
	}
	if st1.OutputCount != st2.OutputCount {
		t.Errorf("runs differ: %d vs %d outputs", st1.OutputCount, st2.OutputCount)
	}
}

func TestLinearRoadFacade(t *testing.T) {
	eng, err := NewFromSource(LinearRoadModel(1), Config{
		PartitionBy:    LinearRoadPartitionBy(),
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := LinearRoadDefaults()
	cfg.Segments = 4
	cfg.Duration = 600
	evs, err := GenerateLinearRoad(cfg, eng.Registry())
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(NewSliceSource(evs))
	if err != nil {
		t.Fatal(err)
	}
	if st.PerType["TollNotification"] == 0 {
		t.Error("no tolls")
	}
	ss := eng.SharingStats()
	if ss.Before != ss.After {
		t.Errorf("sharing off but stats shrank: %+v", ss)
	}
}

func TestPAMFacade(t *testing.T) {
	eng, err := NewFromSource(PAMModel(2), Config{
		PartitionBy:    PAMPartitionBy(),
		Sharing:        true,
		CollectOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PAMDefaults()
	cfg.Duration = 600
	evs, err := GeneratePAM(cfg, eng.Registry())
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(NewSliceSource(evs))
	if err != nil {
		t.Fatal(err)
	}
	if st.OutputCount == 0 {
		t.Error("no outputs")
	}
}
