// Command lrgen generates a Linear Road benchmark event stream in
// the engine's line format (TypeName|time|values...).
//
// Usage:
//
//	lrgen -roads 1 -segments 20 -duration 1800 -seed 1 > traffic.evs
//	lrgen -model > traffic.caesar     # print the matching CAESAR model
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/linearroad"
	"github.com/caesar-cep/caesar/internal/model"
)

func main() {
	roads := flag.Int("roads", 1, "number of expressways")
	segments := flag.Int("segments", 20, "segments per road")
	duration := flag.Int64("duration", 1800, "simulated seconds")
	replicas := flag.Int("replicas", 1, "query workload replication in the model")
	seed := flag.Int64("seed", 1, "generator seed")
	printModel := flag.Bool("model", false, "print the CAESAR model instead of events")
	flag.Parse()

	src := linearroad.ModelSource(*replicas)
	if *printModel {
		fmt.Print(src)
		return
	}
	m, err := model.CompileSource(src)
	if err != nil {
		fail(err)
	}
	cfg := linearroad.DefaultConfig()
	cfg.Roads = *roads
	cfg.Segments = *segments
	cfg.Duration = *duration
	cfg.Seed = *seed
	evs, err := linearroad.Generate(cfg, m.Registry)
	if err != nil {
		fail(err)
	}
	w := event.NewWriter(os.Stdout)
	for _, e := range evs {
		if err := w.Write(e); err != nil {
			fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "lrgen: %d events over %d s (%d roads x %d segments)\n",
		len(evs), *duration, *roads, *segments)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lrgen:", err)
	os.Exit(1)
}
