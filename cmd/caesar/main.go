// Command caesar runs a CAESAR model over an event stream and prints
// the derived complex events plus run statistics.
//
// Usage:
//
//	caesar -model traffic.caesar -partition-by xway,dir,seg < traffic.evs
//	lrgen | caesar -model <(lrgen -model) -partition-by xway,dir,seg -quiet
//
// Flags select the execution strategy the paper evaluates:
// -baseline runs the context-independent strategy, -no-pushdown keeps
// context windows above the patterns, -share merges the workloads of
// overlapping contexts.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/caesar-cep/caesar/internal/core"
	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/server"
	"github.com/caesar-cep/caesar/internal/telemetry"
)

func main() {
	modelPath := flag.String("model", "", "path to the .caesar model file (required)")
	partitionBy := flag.String("partition-by", "", "comma-separated partition key attributes")
	baseline := flag.Bool("baseline", false, "run the context-independent baseline")
	noPushdown := flag.Bool("no-pushdown", false, "disable context window push-down")
	share := flag.Bool("share", false, "enable context workload sharing")
	workers := flag.Int("workers", 4, "worker pool size (legacy pipeline; ignored when -shards > 1)")
	shards := flag.Int("shards", 1, "engine shards, each owning its partitions end to end (1 = classic pipeline, 0 = GOMAXPROCS)")
	pacing := flag.Duration("pacing", 0, "wall time per application time unit (0 = as fast as possible)")
	readAhead := flag.Int("read-ahead", 0, "ingest read-ahead ring depth in batches (0 = default)")
	noPipeline := flag.Bool("no-pipeline", false, "disable the pipelined ingest path (decode inline with dispatch)")
	heapDerived := flag.Bool("heap-derived", false, "construct derived events on the GC heap instead of the worker slab arenas")
	durableDir := flag.String("durable-dir", "", "directory for the input WAL and state checkpoints; a re-run over the same directory recovers and resumes")
	ckptEvery := flag.Int("checkpoint-interval", 0, "ticks between state checkpoints (0 = default; used with -durable-dir)")
	walSync := flag.String("wal-sync", "tick", "WAL fsync cadence: 'tick', 'async', or a tick count N (used with -durable-dir)")
	quiet := flag.Bool("quiet", false, "suppress derived events, print stats only")
	dot := flag.Bool("dot", false, "print the model's context transition network as Graphviz DOT and exit")
	listen := flag.String("listen", "", "serve stream sessions on this TCP address instead of stdin/stdout")
	admin := flag.String("admin", "", "serve /metrics, /statusz, /tracez, /healthz, /buildz and /debug/pprof on this HTTP address")
	traceSample := flag.Int("trace-sample", 0, "stage-trace one in N ticks for /tracez (0 = off; 1 = every tick; used with -admin)")
	flag.Parse()

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "caesar: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*modelPath)
	if err != nil {
		fail(err)
	}
	m, err := model.CompileSource(string(src))
	if err != nil {
		fail(err)
	}
	if *dot {
		fmt.Print(m.DOT())
		return
	}
	var keys []string
	if *partitionBy != "" {
		keys = strings.Split(*partitionBy, ",")
	}
	engCfg := core.Config{
		ContextIndependent:  *baseline,
		Sharing:             *share,
		DisablePushDown:     *noPushdown,
		PartitionBy:         keys,
		Workers:             *workers,
		Shards:              *shards,
		Pacing:              *pacing,
		ReadAhead:           *readAhead,
		DisablePipeline:     *noPipeline,
		DisableDerivedArena: *heapDerived,
		DurableDir:          *durableDir,
		CheckpointEvery:     *ckptEvery,
		WALSync:             parseWALSync(*walSync),
	}
	if *traceSample > 0 {
		engCfg.Stages = telemetry.NewStageTracer(*traceSample, 0)
	}
	if *listen != "" {
		serve(m, *listen, *admin, engCfg)
		return
	}
	out := event.NewWriter(os.Stdout)
	cfg := engCfg
	if *admin != "" {
		reg := telemetry.NewRegistry()
		cfg.Telemetry = reg
		cfg.Health = telemetry.NewHealth()
		startAdmin(*admin, telemetry.NewHandler(telemetry.Admin{
			Registry: reg,
			Stages:   cfg.Stages,
			Health:   cfg.Health,
			Build:    telemetry.BuildInfo{Config: cfg.Summary()},
		}))
	}
	if !*quiet {
		var mu sync.Mutex
		cfg.OnOutput = func(e *event.Event) {
			// Called concurrently from worker goroutines.
			mu.Lock()
			_ = out.Write(e)
			mu.Unlock()
		}
	}
	eng, err := core.NewEngine(m, cfg)
	if err != nil {
		fail(err)
	}
	r := event.NewReader(os.Stdin, m.Registry)
	start := time.Now()
	st, err := eng.Run(r)
	if err != nil {
		fail(err)
	}
	_ = out.Flush()
	fmt.Fprintf(os.Stderr,
		"caesar: %d events in, %d derived, %d partitions, %d transitions\n",
		st.Events, st.OutputCount, st.Partitions, st.Transitions)
	fmt.Fprintf(os.Stderr,
		"caesar: max latency %v, mean %v, suspended-plan skips %d, wall %v\n",
		st.MaxLatency.Round(time.Microsecond), st.MeanLatency.Round(time.Microsecond),
		st.SuspendedSkips, time.Since(start).Round(time.Millisecond))
	for _, ty := range sortedKeys(st.PerType) {
		fmt.Fprintf(os.Stderr, "caesar:   %s: %d\n", ty, st.PerType[ty])
	}
}

// serve runs the TCP session server (see internal/server): each
// connection streams events in and derived events out.
func serve(m *model.Model, addr, admin string, engCfg core.Config) {
	if admin != "" {
		engCfg.Health = telemetry.NewHealth()
	}
	srv, err := server.New(server.Config{
		Model:  m,
		Engine: engCfg,
	})
	if err != nil {
		fail(err)
	}
	if admin != "" {
		startAdmin(admin, srv.AdminHandler())
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "caesar: serving stream sessions on %s\n", l.Addr())
	if err := srv.Serve(l); err != nil {
		fail(err)
	}
}

// startAdmin serves the telemetry admin surface on its own goroutine
// and announces the bound address (":0" picks a free port).
func startAdmin(addr string, h http.Handler) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "caesar: admin on %s\n", l.Addr())
	go func() {
		if err := http.Serve(l, h); err != nil {
			fmt.Fprintln(os.Stderr, "caesar: admin:", err)
		}
	}()
}

// parseWALSync maps the -wal-sync flag onto core.Config.WALSync:
// "tick" fsyncs every tick, "async" leaves flushing to the OS, and a
// number N fsyncs every N ticks.
func parseWALSync(s string) int {
	switch s {
	case "tick", "":
		return 0
	case "async":
		return -1
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		fail(fmt.Errorf("-wal-sync must be 'tick', 'async' or a positive tick count, got %q", s))
	}
	return n
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "caesar:", err)
	os.Exit(1)
}
