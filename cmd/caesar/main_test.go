package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCmd compiles a command of this module into dir and returns the
// binary path.
func buildCmd(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// cmd/caesar -> module root is two levels up.
	return filepath.Dir(filepath.Dir(dir))
}

// TestPipelineEndToEnd drives the full CLI workflow: lrgen generates
// a model and a stream, caesar runs the stream against the model.
func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	lrgen := buildCmd(t, dir, "./cmd/lrgen")
	caesarBin := buildCmd(t, dir, "./cmd/caesar")

	modelOut, err := exec.Command(lrgen, "-model").Output()
	if err != nil {
		t.Fatalf("lrgen -model: %v", err)
	}
	modelPath := filepath.Join(dir, "traffic.caesar")
	if err := os.WriteFile(modelPath, modelOut, 0o644); err != nil {
		t.Fatal(err)
	}

	genCmd := exec.Command(lrgen, "-roads", "1", "-segments", "4", "-duration", "600")
	events, err := genCmd.Output()
	if err != nil {
		t.Fatalf("lrgen: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("lrgen produced no events")
	}

	run := exec.Command(caesarBin, "-model", modelPath, "-partition-by", "xway,dir,seg", "-quiet")
	run.Stdin = bytes.NewReader(events)
	var stderr bytes.Buffer
	run.Stderr = &stderr
	if err := run.Run(); err != nil {
		t.Fatalf("caesar: %v\n%s", err, stderr.String())
	}
	logs := stderr.String()
	for _, want := range []string{"derived", "TollNotification", "suspended-plan skips"} {
		if !strings.Contains(logs, want) {
			t.Errorf("caesar stderr missing %q:\n%s", want, logs)
		}
	}

	// Baseline mode runs too and reports zero suspensions.
	base := exec.Command(caesarBin, "-model", modelPath, "-partition-by", "xway,dir,seg", "-quiet", "-baseline")
	base.Stdin = bytes.NewReader(events)
	stderr.Reset()
	base.Stderr = &stderr
	if err := base.Run(); err != nil {
		t.Fatalf("caesar -baseline: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "suspended-plan skips 0") {
		t.Errorf("baseline should suspend nothing:\n%s", stderr.String())
	}

	// DOT export.
	dot := exec.Command(caesarBin, "-model", modelPath, "-dot")
	dotOut, err := dot.Output()
	if err != nil {
		t.Fatalf("caesar -dot: %v", err)
	}
	if !strings.Contains(string(dotOut), "digraph caesar") {
		t.Errorf("dot output:\n%s", dotOut)
	}
}

// TestAdminEndpointSmoke replays a short paced Linear Road stream
// with -admin enabled and scrapes /metrics and /statusz while the
// run is live.
func TestAdminEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	lrgen := buildCmd(t, dir, "./cmd/lrgen")
	caesarBin := buildCmd(t, dir, "./cmd/caesar")

	modelOut, err := exec.Command(lrgen, "-model").Output()
	if err != nil {
		t.Fatalf("lrgen -model: %v", err)
	}
	modelPath := filepath.Join(dir, "traffic.caesar")
	if err := os.WriteFile(modelPath, modelOut, 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := exec.Command(lrgen, "-roads", "1", "-segments", "4", "-duration", "400").Output()
	if err != nil {
		t.Fatalf("lrgen: %v", err)
	}

	// Pacing stretches the replay to ~2s of wall time so the scrape
	// below observes a live run.
	run := exec.Command(caesarBin, "-model", modelPath, "-partition-by", "xway,dir,seg",
		"-quiet", "-admin", "127.0.0.1:0", "-pacing", "5ms")
	run.Stdin = bytes.NewReader(events)
	stderrPipe, err := run.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	defer run.Wait()
	defer run.Process.Kill()

	sc := bufio.NewScanner(stderrPipe)
	var addr string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "caesar: admin on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatal("admin address not announced on stderr")
	}
	go func() { // keep draining so the child never blocks on stderr
		for sc.Scan() {
		}
	}()

	metrics := scrape(t, "http://"+addr+"/metrics", "caesar_events_total")
	for _, want := range []string{
		"caesar_events_total",
		"caesar_worker_txns_total",
		`caesar_txn_latency_ns{worker="0",quantile="0.99"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	statusz := scrape(t, "http://"+addr+"/statusz", "caesar_events_total")
	if !strings.Contains(statusz, "caesar_worker_txns_total") {
		t.Errorf("/statusz missing worker counters: %s", statusz)
	}
}

// TestTraceHealthEndpointSmoke replays a paced stream with stage
// tracing on and scrapes /tracez, /healthz and /buildz while the run
// is live: the flight recorder must hold sane per-stage timelines and
// the health probes must report the run as alive.
func TestTraceHealthEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	lrgen := buildCmd(t, dir, "./cmd/lrgen")
	caesarBin := buildCmd(t, dir, "./cmd/caesar")

	modelOut, err := exec.Command(lrgen, "-model").Output()
	if err != nil {
		t.Fatalf("lrgen -model: %v", err)
	}
	modelPath := filepath.Join(dir, "traffic.caesar")
	if err := os.WriteFile(modelPath, modelOut, 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := exec.Command(lrgen, "-roads", "1", "-segments", "4", "-duration", "400").Output()
	if err != nil {
		t.Fatalf("lrgen: %v", err)
	}

	// Sharded runtime, every tick sampled, paced so scrapes observe a
	// live run with spans in flight.
	run := exec.Command(caesarBin, "-model", modelPath, "-partition-by", "xway,dir,seg",
		"-quiet", "-admin", "127.0.0.1:0", "-pacing", "5ms", "-shards", "2", "-trace-sample", "1")
	run.Stdin = bytes.NewReader(events)
	stderrPipe, err := run.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	defer run.Wait()
	defer run.Process.Kill()

	sc := bufio.NewScanner(stderrPipe)
	var addr string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "caesar: admin on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatal("admin address not announced on stderr")
	}
	go func() { // keep draining so the child never blocks on stderr
		for sc.Scan() {
		}
	}()

	// /tracez: wait until the recorder holds timelines with an exec
	// stage, then check the JSON shape end to end.
	body := scrape(t, "http://"+addr+"/tracez", `"exec"`)
	var tz struct {
		Enabled    bool `json:"enabled"`
		SampleRate int  `json:"sample_rate"`
		Spans      int  `json:"spans"`
		Stages     map[string]struct {
			Count int   `json:"count"`
			P50   int64 `json:"p50_ns"`
			Max   int64 `json:"max_ns"`
		} `json:"stages"`
		Recent []map[string]any `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &tz); err != nil {
		t.Fatalf("/tracez is not JSON: %v\n%s", err, body)
	}
	if !tz.Enabled || tz.SampleRate != 1 {
		t.Errorf("/tracez enabled=%v sample_rate=%d, want true/1", tz.Enabled, tz.SampleRate)
	}
	if tz.Spans == 0 || len(tz.Recent) == 0 {
		t.Errorf("/tracez recorded nothing: spans=%d recent=%d", tz.Spans, len(tz.Recent))
	}
	for _, st := range []string{"route", "ring_wait", "exec"} {
		h, ok := tz.Stages[st]
		if !ok || h.Count == 0 {
			t.Errorf("/tracez stage %q missing or empty: %+v", st, h)
			continue
		}
		if h.P50 < 0 || h.Max <= 0 || h.Max > int64(time.Minute) {
			t.Errorf("/tracez stage %q has insane latencies: %+v", st, h)
		}
	}
	for _, tl := range tz.Recent {
		stages, ok := tl["stages_ns"].(map[string]any)
		if !ok || len(stages) == 0 {
			t.Errorf("/tracez timeline without stages: %v", tl)
		}
	}

	// /healthz: a live run reports OK with engine/watermark/shards
	// probes.
	hz := scrape(t, "http://"+addr+"/healthz", `"engine"`)
	var rep struct {
		OK     bool `json:"ok"`
		Probes map[string]struct {
			OK     bool   `json:"ok"`
			Detail string `json:"detail"`
		} `json:"probes"`
	}
	if err := json.Unmarshal([]byte(hz), &rep); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, hz)
	}
	if !rep.OK {
		t.Errorf("/healthz not ok during live run: %s", hz)
	}
	for _, want := range []string{"engine", "watermark", "shards"} {
		if p, ok := rep.Probes[want]; !ok || !p.OK {
			t.Errorf("/healthz probe %q missing or failing: %s", want, hz)
		}
	}

	// /buildz: build metadata plus the engine config summary.
	bz := scrape(t, "http://"+addr+"/buildz", `"go_version"`)
	var build struct {
		Config map[string]string `json:"config"`
	}
	if err := json.Unmarshal([]byte(bz), &build); err != nil {
		t.Fatalf("/buildz is not JSON: %v\n%s", err, bz)
	}
	if build.Config["shards"] != "2" || build.Config["trace_sample_rate"] != "1" {
		t.Errorf("/buildz config wrong: %v", build.Config)
	}
}

// scrape polls the URL until the body contains want (the run may not
// have registered its metrics yet) or a deadline passes.
func scrape(t *testing.T, url, want string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		res, err := http.Get(url)
		if err == nil {
			b, rerr := io.ReadAll(res.Body)
			res.Body.Close()
			if rerr == nil {
				last = string(b)
				if strings.Contains(last, want) {
					return last
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("scrape %s: %q never appeared; last body:\n%s", url, want, last)
	return ""
}

// outLines splits captured stdout into complete lines: a SIGKILL can
// truncate the final buffered write mid-line, so whatever follows the
// last newline is dropped ("" when the output ended cleanly).
func outLines(s string) []string {
	lines := strings.Split(s, "\n")
	return lines[:len(lines)-1]
}

// TestDurableKillResume is the durability smoke test at the CLI
// surface: a paced toll run with -durable-dir is SIGKILLed mid-stream,
// then resumed over the same directory with the stream re-fed. The
// killed run's stdout must be a prefix of an uninterrupted reference
// run's output and the resumed run's a suffix (the overlap between the
// last durable point and the kill re-delivers — the documented
// at-least-once output contract; the stdout sink is buffered, so the
// killed run may also trail the WAL).
func TestDurableKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	lrgen := buildCmd(t, dir, "./cmd/lrgen")
	caesarBin := buildCmd(t, dir, "./cmd/caesar")

	modelOut, err := exec.Command(lrgen, "-model").Output()
	if err != nil {
		t.Fatalf("lrgen -model: %v", err)
	}
	modelPath := filepath.Join(dir, "traffic.caesar")
	if err := os.WriteFile(modelPath, modelOut, 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := exec.Command(lrgen, "-roads", "1", "-segments", "4", "-duration", "600").Output()
	if err != nil {
		t.Fatalf("lrgen: %v", err)
	}

	// -shards 2 keeps stdout deterministic: with an output consumer
	// attached, the sharded runtime delivers through the ordered merge
	// layer.
	base := []string{"-model", modelPath, "-partition-by", "xway,dir,seg", "-shards", "2"}
	durable := append(append([]string{}, base...),
		"-durable-dir", filepath.Join(dir, "durable"), "-checkpoint-interval", "64", "-wal-sync", "tick")

	ref := exec.Command(caesarBin, base...)
	ref.Stdin = bytes.NewReader(events)
	var refOut, refErr bytes.Buffer
	ref.Stdout, ref.Stderr = &refOut, &refErr
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, refErr.String())
	}
	want := outLines(refOut.String())
	if len(want) == 0 {
		t.Fatal("reference run derived nothing")
	}

	// Killed run: pacing stretches the replay to ~3s so the SIGKILL
	// lands mid-stream.
	kill := exec.Command(caesarBin, append(append([]string{}, durable...), "-pacing", "5ms")...)
	kill.Stdin = bytes.NewReader(events)
	var killOut, killErr bytes.Buffer
	kill.Stdout, kill.Stderr = &killOut, &killErr
	if err := kill.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	_ = kill.Process.Kill()
	if err := kill.Wait(); err == nil {
		t.Fatal("run exited cleanly before the kill; raise -pacing")
	}
	r1 := outLines(killOut.String())
	if len(r1) > len(want) || strings.Join(r1, "\n") != strings.Join(want[:len(r1)], "\n") {
		t.Errorf("killed run's %d output lines are not a prefix of the reference's %d", len(r1), len(want))
	}

	// Resumed run: same directory, same stream, no fault.
	res := exec.Command(caesarBin, durable...)
	res.Stdin = bytes.NewReader(events)
	var resOut, resErr bytes.Buffer
	res.Stdout, res.Stderr = &resOut, &resErr
	if err := res.Run(); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, resErr.String())
	}
	r2 := outLines(resOut.String())
	if len(r2) == 0 {
		t.Fatal("resumed run derived nothing")
	}
	if len(r2) > len(want) || strings.Join(r2, "\n") != strings.Join(want[len(want)-len(r2):], "\n") {
		t.Errorf("resumed run's %d output lines are not a suffix of the reference's %d", len(r2), len(want))
	}
	if !strings.Contains(resErr.String(), "derived") {
		t.Errorf("resumed run printed no stats:\n%s", resErr.String())
	}
}

func TestCaesarUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	caesarBin := buildCmd(t, dir, "./cmd/caesar")
	if err := exec.Command(caesarBin).Run(); err == nil {
		t.Error("missing -model accepted")
	}
	if err := exec.Command(caesarBin, "-model", "/nonexistent.caesar").Run(); err == nil {
		t.Error("missing model file accepted")
	}
}

func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	expBin := buildCmd(t, dir, "./cmd/experiments")
	out, err := exec.Command(expBin, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "12a") {
		t.Errorf("-list output: %s", out)
	}
	if err := exec.Command(expBin, "-fig", "nope", "-scale", "quick").Run(); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := exec.Command(expBin, "-fig", "10a", "-scale", "bogus").Run(); err == nil {
		t.Error("unknown scale accepted")
	}
	fig, err := exec.Command(expBin, "-fig", "10a", "-scale", "quick").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fig), "== fig10a:") {
		t.Errorf("figure output: %s", fig)
	}
}
